// Distributed-tracing protocol suite.
//
// Three contracts, in order:
//   * wire round trips: the optional trace-context block on request
//     payloads and the kSpans/kStatus payloads survive serialization
//     bit-for-bit, and every malformed variant (truncation, bad version,
//     corrupt enum, implausible counts) raises WireError instead of
//     misparsing;
//   * determinism: enabling tracing changes no deterministic byte — an
//     untraced request payload is byte-identical to a pre-tracing one,
//     and a traced fleet run returns the same oasys.result.v1 bytes as an
//     untraced one (the CLI-level cross of jobs x workers x daemon lives
//     in check_trace_determinism.cmake);
//   * failure windows: a worker that crashes or wedges mid-cycle has
//     already flushed its receive markers, so the merged timeline shows
//     what the dead worker had accepted (the satellite regression for
//     partial span flushing).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/span.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/status.h"
#include "shard/coordinator.h"
#include "shard/wire.h"
#include "synth/result_json.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "yield/service.h"
#include "yield/yield.h"

#ifndef OASYS_CLI_PATH
#error "test_trace_wire requires OASYS_CLI_PATH (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace oasys;

// ---- trace-context wire round trips -----------------------------------------

TEST(TraceContextWire, PresentContextRoundTrips) {
  shard::Writer w;
  shard::put_trace_context(w, {0xfeedbeefcafe1234ull, 0x0ddball});
  shard::Reader r(w.bytes());
  const shard::TraceContext ctx = shard::get_trace_context(r);
  r.expect_end();
  EXPECT_EQ(ctx.trace_id, 0xfeedbeefcafe1234ull);
  EXPECT_EQ(ctx.span_id, 0x0ddball);
  EXPECT_TRUE(ctx.present());
}

TEST(TraceContextWire, AbsentContextWritesNoBytes) {
  // The byte-identity contract starts here: tracing off adds nothing to
  // the payload, so a traced-capable coordinator and a pre-tracing one
  // emit identical request frames.
  shard::Writer w;
  shard::put_trace_context(w, {});
  EXPECT_TRUE(w.bytes().empty());

  shard::Reader r(w.bytes());
  const shard::TraceContext ctx = shard::get_trace_context(r);
  EXPECT_FALSE(ctx.present());
  EXPECT_EQ(ctx.span_id, 0u);
}

TEST(TraceContextWire, UntracedRequestPayloadMatchesPreTracingBytes) {
  const core::OpAmpSpec spec = synth::paper_test_cases()[0];
  shard::Writer pre;  // what a pre-tracing coordinator wrote
  pre.u64(7);
  shard::put_spec(pre, spec);

  shard::Writer post;  // same request through the trace-aware path
  post.u64(7);
  shard::put_spec(post, spec);
  shard::put_trace_context(post, {0, 0});

  EXPECT_EQ(pre.bytes(), post.bytes());
}

TEST(TraceContextWire, RejectsUnknownVersion) {
  shard::Writer w;
  w.u8(shard::kTraceContextVersion + 1);
  w.u64(1);
  w.u64(2);
  shard::Reader r(w.bytes());
  EXPECT_THROW(shard::get_trace_context(r), shard::WireError);
}

TEST(TraceContextWire, RejectsZeroTraceIdInPresentBlock) {
  shard::Writer w;
  w.u8(shard::kTraceContextVersion);
  w.u64(0);  // "present but no trace" is a contradiction, not a default
  w.u64(2);
  shard::Reader r(w.bytes());
  EXPECT_THROW(shard::get_trace_context(r), shard::WireError);
}

TEST(TraceContextWire, RejectsTruncatedContext) {
  shard::Writer w;
  shard::put_trace_context(w, {0x1111, 0x2222});
  const std::string full = w.bytes();
  // Every strict prefix (except the empty one, which means "absent") must
  // fail loudly rather than yield a half-read context.
  for (std::size_t len = 1; len < full.size(); ++len) {
    shard::Reader r(std::string_view(full).substr(0, len));
    EXPECT_THROW(shard::get_trace_context(r), shard::WireError)
        << "prefix length " << len;
  }
}

// ---- span-set wire round trips ----------------------------------------------

obs::TraceEvent sample_event(obs::TraceEvent::Kind kind, int i) {
  obs::TraceEvent e;
  e.kind = kind;
  e.depth = i;
  e.name = "span-" + std::to_string(i);
  e.scope = "scope";
  e.code = i % 2 == 0 ? "ok" : "";
  e.detail = "detail text";
  e.index = static_cast<std::uint64_t>(i);
  e.seconds = 0.125 * i;
  e.ts_us = 1'000'000 + static_cast<std::uint64_t>(i);
  e.tid = static_cast<std::uint64_t>(i % 3);
  e.trace_id = 0xabcdef;
  e.span_id = 0x1234 + static_cast<std::uint64_t>(i);
  return e;
}

TEST(SpanSetWire, RoundTripsEveryField) {
  shard::SpanSet in;
  in.trace_id = 0xabcdef;
  in.shard = 3;
  in.events.push_back(sample_event(obs::TraceEvent::Kind::kSpanBegin, 0));
  in.events.push_back(sample_event(obs::TraceEvent::Kind::kSpanEnd, 1));
  in.events.push_back(sample_event(obs::TraceEvent::Kind::kInstant, 2));

  shard::Writer w;
  shard::put_span_set(w, in);
  shard::Reader r(w.bytes());
  const shard::SpanSet out = shard::get_span_set(r);
  r.expect_end();

  EXPECT_EQ(out.trace_id, in.trace_id);
  EXPECT_EQ(out.shard, in.shard);
  ASSERT_EQ(out.events.size(), in.events.size());
  for (std::size_t i = 0; i < in.events.size(); ++i) {
    const obs::TraceEvent& a = in.events[i];
    const obs::TraceEvent& b = out.events[i];
    EXPECT_EQ(b.kind, a.kind) << i;
    EXPECT_EQ(b.depth, a.depth) << i;
    EXPECT_EQ(b.name, a.name) << i;
    EXPECT_EQ(b.scope, a.scope) << i;
    EXPECT_EQ(b.code, a.code) << i;
    EXPECT_EQ(b.detail, a.detail) << i;
    EXPECT_EQ(b.index, a.index) << i;
    EXPECT_EQ(b.seconds, a.seconds) << i;
    EXPECT_EQ(b.ts_us, a.ts_us) << i;
    EXPECT_EQ(b.tid, a.tid) << i;
    EXPECT_EQ(b.trace_id, a.trace_id) << i;
    EXPECT_EQ(b.span_id, a.span_id) << i;
  }
}

TEST(SpanSetWire, RejectsCorruptEventKind) {
  shard::SpanSet in;
  in.trace_id = 1;
  in.events.push_back(sample_event(obs::TraceEvent::Kind::kInstant, 0));
  shard::Writer w;
  shard::put_span_set(w, in);
  std::string bytes = w.take();
  // The event kind is the first byte after trace_id/shard/count.
  bytes[24] = 0x7f;
  shard::Reader r(bytes);
  EXPECT_THROW(shard::get_span_set(r), shard::WireError);
}

TEST(SpanSetWire, RejectsImplausibleEventCount) {
  shard::Writer w;
  w.u64(1);  // trace_id
  w.u64(0);  // shard
  w.u64(shard::kMaxPayload);  // count no real payload could hold
  shard::Reader r(w.bytes());
  EXPECT_THROW(shard::get_span_set(r), shard::WireError);
}

TEST(SpanSetWire, RejectsTruncatedPayload) {
  shard::SpanSet in;
  in.trace_id = 9;
  in.events.push_back(sample_event(obs::TraceEvent::Kind::kSpanEnd, 0));
  shard::Writer w;
  shard::put_span_set(w, in);
  const std::string full = w.bytes();
  shard::Reader r(std::string_view(full).substr(0, full.size() - 3));
  EXPECT_THROW(shard::get_span_set(r), shard::WireError);
}

// ---- status-report wire round trips -----------------------------------------

TEST(StatusWire, RoundTripsEveryField) {
  serve::StatusReport in;
  in.uptime_s = 12.5;
  in.draining = true;
  in.sessions_total = 7;
  in.sessions_active = 2;
  in.requests_total = 40;
  in.batches = 5;
  in.in_flight = 3;
  in.shared_cache_size = 17;
  in.shared_cache_capacity = 256;
  in.shared_cache_hits = 9;
  in.shared_cache_misses = 31;
  in.respawns = 1;
  in.worker_timeouts = 2;
  in.worker_errors = 4;
  serve::WorkerStatus wk;
  wk.shard = 1;
  wk.pid = 4242;
  wk.alive = true;
  wk.in_flight_cycles = 1;
  wk.requests_served = 19;
  wk.respawns = 1;
  wk.backoff_s = 0.1;
  in.workers.push_back(wk);

  shard::Writer w;
  serve::put_status_report(w, in);
  shard::Reader r(w.bytes());
  const serve::StatusReport out = serve::get_status_report(r);
  r.expect_end();

  EXPECT_EQ(out.uptime_s, in.uptime_s);
  EXPECT_EQ(out.draining, in.draining);
  EXPECT_EQ(out.sessions_total, in.sessions_total);
  EXPECT_EQ(out.sessions_active, in.sessions_active);
  EXPECT_EQ(out.requests_total, in.requests_total);
  EXPECT_EQ(out.batches, in.batches);
  EXPECT_EQ(out.in_flight, in.in_flight);
  EXPECT_EQ(out.shared_cache_size, in.shared_cache_size);
  EXPECT_EQ(out.shared_cache_capacity, in.shared_cache_capacity);
  EXPECT_EQ(out.shared_cache_hits, in.shared_cache_hits);
  EXPECT_EQ(out.shared_cache_misses, in.shared_cache_misses);
  EXPECT_EQ(out.respawns, in.respawns);
  EXPECT_EQ(out.worker_timeouts, in.worker_timeouts);
  EXPECT_EQ(out.worker_errors, in.worker_errors);
  ASSERT_EQ(out.workers.size(), 1u);
  EXPECT_EQ(out.workers[0].shard, wk.shard);
  EXPECT_EQ(out.workers[0].pid, wk.pid);
  EXPECT_EQ(out.workers[0].alive, wk.alive);
  EXPECT_EQ(out.workers[0].retired, wk.retired);
  EXPECT_EQ(out.workers[0].in_flight_cycles, wk.in_flight_cycles);
  EXPECT_EQ(out.workers[0].requests_served, wk.requests_served);
  EXPECT_EQ(out.workers[0].respawns, wk.respawns);
  EXPECT_EQ(out.workers[0].backoff_s, wk.backoff_s);
}

TEST(StatusWire, RejectsImplausibleWorkerCount) {
  serve::StatusReport in;
  shard::Writer w;
  serve::put_status_report(w, in);
  std::string bytes = w.take();
  // Overwrite the trailing worker count (last 8 bytes) with an absurd one.
  for (std::size_t i = bytes.size() - 8; i < bytes.size(); ++i) {
    bytes[i] = '\xff';
  }
  shard::Reader r(bytes);
  EXPECT_THROW(serve::get_status_report(r), shard::WireError);
}

TEST(StatusWire, JsonCarriesSchemaAndHitRatio) {
  serve::StatusReport s;
  s.shared_cache_hits = 3;
  s.shared_cache_misses = 1;
  const std::string json = serve::status_json(s);
  EXPECT_NE(json.find("\"schema\": \"oasys.status.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"hit_ratio\": 0.75"), std::string::npos);
  EXPECT_DOUBLE_EQ(s.shared_cache_hit_ratio(), 0.75);
}

// ---- frame-type acceptance --------------------------------------------------

TEST(TraceFrames, DecoderAcceptsSpansAndStatusFrames) {
  shard::FrameDecoder dec;
  dec.feed(shard::frame_bytes(shard::FrameType::kSpans, "payload"));
  dec.feed(shard::frame_bytes(shard::FrameType::kStatus, ""));
  shard::Frame f;
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.type, shard::FrameType::kSpans);
  EXPECT_EQ(f.payload, "payload");
  ASSERT_TRUE(dec.next(&f));
  EXPECT_EQ(f.type, shard::FrameType::kStatus);
  EXPECT_FALSE(dec.next(&f));
  EXPECT_FALSE(dec.mid_frame());
}

TEST(TraceFrames, DecoderRejectsTypePastStatus) {
  shard::FrameDecoder dec;
  dec.feed(shard::frame_bytes(
      static_cast<shard::FrameType>(
          static_cast<std::uint32_t>(shard::FrameType::kStatus) + 1),
      ""));
  shard::Frame f;
  EXPECT_THROW(dec.next(&f), shard::WireError);
}

// ---- id minting and context scoping -----------------------------------------

TEST(TraceIds, MintedIdsAreNonzeroAndSpanIdsDeterministic) {
  const std::uint64_t trace = obs::mint_trace_id();
  EXPECT_NE(trace, 0u);
  EXPECT_EQ(obs::span_id_for(trace, 0), obs::span_id_for(trace, 0));
  EXPECT_NE(obs::span_id_for(trace, 0), obs::span_id_for(trace, 1));
  EXPECT_NE(obs::span_id_for(trace, 0), 0u);
}

TEST(TraceIds, ScopedContextNestsAndRestores) {
  EXPECT_EQ(obs::current_trace_id(), 0u);
  {
    obs::ScopedTraceContext outer(10, 20);
    EXPECT_EQ(obs::current_trace_id(), 10u);
    EXPECT_EQ(obs::current_span_id(), 20u);
    {
      obs::ScopedTraceContext inner(30, 40);
      EXPECT_EQ(obs::current_trace_id(), 30u);
      EXPECT_EQ(obs::current_span_id(), 40u);
    }
    EXPECT_EQ(obs::current_trace_id(), 10u);
    EXPECT_EQ(obs::current_span_id(), 20u);
  }
  EXPECT_EQ(obs::current_trace_id(), 0u);
}

// ---- traced fleet runs ------------------------------------------------------

struct ScopedEnv {
  std::string name;
  ScopedEnv(const char* n, const char* value) : name(n) {
    ::setenv(n, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

// Drains the process-global collector so a prior test's events never leak
// into this one's timeline (and vice versa).
struct ScopedGlobalTracing {
  ScopedGlobalTracing() {
    obs::drain_global_trace();
    obs::set_tracing_enabled(true);
  }
  ~ScopedGlobalTracing() {
    obs::set_tracing_enabled(false);
    obs::drain_global_trace();
  }
};

shard::ShardOptions traced_shard_options(std::size_t workers,
                                         std::uint64_t trace_id) {
  shard::ShardOptions o;
  o.workers = workers;
  o.worker_command = OASYS_CLI_PATH;
  o.trace_id = trace_id;
  return o;
}

std::vector<yield::Request> mixed_requests() {
  std::vector<yield::Request> requests;
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    yield::Request synth_req;
    synth_req.spec = spec;
    requests.push_back(synth_req);
  }
  yield::Request yield_req;
  yield_req.spec = synth::paper_test_cases()[0];
  yield_req.is_yield = true;
  yield_req.params.samples = 4;
  yield_req.params.seed = 3;
  requests.push_back(yield_req);
  return requests;
}

TEST(TracedShard, WorkersReturnCorrelatedSpanSets) {
  ScopedGlobalTracing tracing;
  const std::uint64_t trace_id = obs::mint_trace_id();
  const tech::Technology t = tech::five_micron();
  const std::vector<yield::Request> requests = mixed_requests();

  const shard::ShardReport report = shard::run_sharded_requests(
      t, {}, requests, traced_shard_options(2, trace_id));
  ASSERT_TRUE(report.infra_ok());

  // Every worker flushes at least its receive markers and its compute
  // spans, all under the coordinator's trace id.
  ASSERT_FALSE(report.worker_spans.empty());
  std::size_t recv_markers = 0;
  std::size_t request_spans = 0;
  for (const shard::SpanSet& set : report.worker_spans) {
    EXPECT_EQ(set.trace_id, trace_id);
    EXPECT_LT(set.shard, 2u);
    for (const obs::TraceEvent& e : set.events) {
      if (e.name == "request.recv") {
        ++recv_markers;
        EXPECT_EQ(e.trace_id, trace_id);
        // The recv marker's span id matches the coordinator's derivation
        // for that sequence number — correlation without a round trip.
        EXPECT_EQ(e.span_id, obs::span_id_for(trace_id, e.index));
      }
      if (e.kind == obs::TraceEvent::Kind::kSpanEnd &&
          (e.name == "yield_service/request.synth" ||
           e.name == "yield_service/request.yield")) {
        ++request_spans;
        EXPECT_EQ(e.trace_id, trace_id);
        EXPECT_NE(e.ts_us, 0u);
      }
    }
  }
  EXPECT_EQ(recv_markers, requests.size());
  EXPECT_EQ(request_spans, requests.size());

  // The coordinator's own lane carries one routing marker per request.
  const std::vector<obs::TraceEvent> local = obs::drain_global_trace();
  std::size_t route_markers = 0;
  for (const obs::TraceEvent& e : local) {
    if (e.name == "request.route") {
      ++route_markers;
      EXPECT_EQ(e.trace_id, trace_id);
    }
  }
  EXPECT_EQ(route_markers, requests.size());
}

TEST(TracedShard, TracingChangesNoResultBytes) {
  const tech::Technology t = tech::five_micron();
  const std::vector<yield::Request> requests = mixed_requests();

  const shard::ShardReport plain = shard::run_sharded_requests(
      t, {}, requests, traced_shard_options(2, 0));
  ASSERT_TRUE(plain.infra_ok());

  ScopedGlobalTracing tracing;
  const shard::ShardReport traced = shard::run_sharded_requests(
      t, {}, requests, traced_shard_options(2, obs::mint_trace_id()));
  ASSERT_TRUE(traced.infra_ok());

  EXPECT_TRUE(plain.worker_spans.empty());
  EXPECT_FALSE(traced.worker_spans.empty());
  ASSERT_EQ(plain.outcomes.size(), traced.outcomes.size());
  for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
    ASSERT_TRUE(plain.outcomes[i].ok());
    ASSERT_TRUE(traced.outcomes[i].ok());
    if (requests[i].is_yield) {
      EXPECT_EQ(yield::yield_result_json(traced.outcomes[i].yield),
                yield::yield_result_json(plain.outcomes[i].yield))
          << i;
    } else {
      EXPECT_EQ(synth::result_json(traced.outcomes[i].result),
                synth::result_json(plain.outcomes[i].result))
          << i;
    }
  }
}

// The satellite regression: a worker killed mid-cycle must leave its
// receive markers in the merged timeline.  The worker flushes a kSpans
// frame right after reading kRun — before any synthesis — so the crash
// hook (which fires just before the victim spec's result write) cannot
// take the failure window's spans down with it.
TEST(TracedShard, CrashedWorkerStillDeliversItsReceiveMarkers) {
  const ScopedEnv crash("OASYS_SHARD_TEST_CRASH", "B");
  ScopedGlobalTracing tracing;
  const std::uint64_t trace_id = obs::mint_trace_id();
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  std::vector<yield::Request> requests(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    requests[i].spec = specs[i];
  }

  const shard::ShardReport report = shard::run_sharded_requests(
      t, {}, requests, traced_shard_options(2, trace_id));
  EXPECT_FALSE(report.infra_ok());

  std::size_t victim_shard = 2;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name == "B") victim_shard = report.outcomes[i].shard;
  }
  ASSERT_LT(victim_shard, 2u);

  // The dead worker's receive markers made it back before the crash.
  bool victim_recv_b = false;
  for (const shard::SpanSet& set : report.worker_spans) {
    if (set.shard != victim_shard) continue;
    EXPECT_EQ(set.trace_id, trace_id);
    for (const obs::TraceEvent& e : set.events) {
      if (e.name == "request.recv" && e.scope == "B") victim_recv_b = true;
    }
  }
  EXPECT_TRUE(victim_recv_b)
      << "the crashed worker's receive markers are missing from the "
         "timeline";

  // The coordinator marks the failure itself in its own lane.
  bool failure_marker = false;
  for (const obs::TraceEvent& e : obs::drain_global_trace()) {
    if (e.name == "worker.failed" && e.index == victim_shard) {
      failure_marker = true;
      EXPECT_EQ(e.trace_id, trace_id);
    }
  }
  EXPECT_TRUE(failure_marker);
}

// Same contract for the deadline path: a wedged worker is SIGKILLed with
// no chance to flush anything else, so the pre-compute flush is the only
// reason its markers exist at all.
TEST(TracedShard, WedgeKilledWorkerStillDeliversItsReceiveMarkers) {
  const ScopedEnv crash("OASYS_SHARD_TEST_CRASH", "A:wedge");
  ScopedGlobalTracing tracing;
  const std::uint64_t trace_id = obs::mint_trace_id();
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  std::vector<yield::Request> requests(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    requests[i].spec = specs[i];
  }

  shard::ShardOptions o = traced_shard_options(2, trace_id);
  o.worker_timeout_s = 1.0;
  const shard::ShardReport report =
      shard::run_sharded_requests(t, {}, requests, o);
  EXPECT_FALSE(report.infra_ok());

  std::size_t victim_shard = 2;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name == "A") victim_shard = report.outcomes[i].shard;
  }
  ASSERT_LT(victim_shard, 2u);
  ASSERT_TRUE(report.workers[victim_shard].timed_out);

  bool victim_recv_a = false;
  for (const shard::SpanSet& set : report.worker_spans) {
    if (set.shard != victim_shard) continue;
    for (const obs::TraceEvent& e : set.events) {
      if (e.name == "request.recv" && e.scope == "A") victim_recv_a = true;
    }
  }
  EXPECT_TRUE(victim_recv_a)
      << "the wedged worker's receive markers are missing from the "
         "timeline";

  bool timeout_marker = false;
  for (const obs::TraceEvent& e : obs::drain_global_trace()) {
    if (e.name == "worker.failed" && e.index == victim_shard &&
        e.code == "timeout") {
      timeout_marker = true;
    }
  }
  EXPECT_TRUE(timeout_marker);
}

// ---- daemon-served tracing --------------------------------------------------

// Daemon leg of the determinism cross: a traced batch served by a
// resident `oasys serve` pool returns byte-identical results to an
// untraced local run, the daemon forwards the workers' span sets to the
// traced client, and kStatus answers with live fleet state while the
// daemon is up.
TEST(TracedServe, DaemonServedTraceMatchesLocalBytesAndAnswersStatus) {
  const tech::Technology t = tech::five_micron();
  std::vector<yield::Request> requests = mixed_requests();

  yield::YieldService local(t, {});
  const std::vector<yield::Outcome> expected = local.run_mixed(requests);

  serve::ServeOptions so;
  so.socket_path = "/tmp/oasys-trace-test-" + std::to_string(::getpid()) +
                   ".sock";
  so.workers = 2;
  so.worker_command = OASYS_CLI_PATH;
  serve::Server server(t, {}, so);
  std::thread th([&server] { server.run(); });

  ScopedGlobalTracing tracing;
  const std::uint64_t trace_id = obs::mint_trace_id();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].trace_id = trace_id;
    requests[i].span_id = obs::span_id_for(trace_id, i);
  }

  serve::MixedConnectReport report;
  serve::StatusReport status;
  try {
    // The first connect races the daemon's bind.
    for (int attempt = 0;; ++attempt) {
      try {
        report = serve::run_connected_mixed(so.socket_path, t, {}, requests);
        break;
      } catch (const std::runtime_error& e) {
        if (attempt >= 1000 || std::string(e.what()).find(
                                   "cannot connect") == std::string::npos) {
          throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    status = serve::fetch_status(so.socket_path);
  } catch (...) {
    server.request_stop();
    th.join();
    ::unlink(so.socket_path.c_str());
    throw;
  }
  server.request_stop();
  th.join();
  ::unlink(so.socket_path.c_str());

  ASSERT_EQ(report.outcomes.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(report.outcomes[i].ok()) << report.outcomes[i].error;
    if (requests[i].is_yield) {
      EXPECT_EQ(yield::yield_result_json(report.outcomes[i].yield),
                yield::yield_result_json(expected[i].yield))
          << i;
    } else {
      EXPECT_EQ(synth::result_json(report.outcomes[i].result),
                synth::result_json(expected[i].result))
          << i;
    }
  }

  // The daemon forwarded the workers' span sets, correlated by trace id,
  // with every request's receive marker present.
  ASSERT_FALSE(report.worker_spans.empty());
  std::size_t recv_markers = 0;
  for (const shard::SpanSet& set : report.worker_spans) {
    EXPECT_EQ(set.trace_id, trace_id);
    for (const obs::TraceEvent& e : set.events) {
      if (e.name == "request.recv") ++recv_markers;
    }
  }
  EXPECT_EQ(recv_markers, requests.size());

  // Live fleet state over the admin frame.
  ASSERT_EQ(status.workers.size(), 2u);
  EXPECT_EQ(status.requests_total, requests.size());
  EXPECT_EQ(status.batches, 1u);
  EXPECT_EQ(status.in_flight, 0u);
  std::uint64_t served = 0;
  for (const serve::WorkerStatus& wk : status.workers) {
    EXPECT_TRUE(wk.alive);
    EXPECT_GT(wk.pid, 0);
    served += wk.requests_served;
  }
  EXPECT_EQ(served, requests.size());
}

// ---- chrome trace-event export ----------------------------------------------

TEST(ChromeTrace, MergedTimelineCarriesLanesAndCorrelation) {
  obs::TraceProcess coordinator;
  coordinator.pid = 0;
  coordinator.name = "coordinator";
  coordinator.events.push_back(
      sample_event(obs::TraceEvent::Kind::kInstant, 1));

  obs::TraceProcess worker;
  worker.pid = 1;
  worker.name = "worker 0";
  worker.events.push_back(sample_event(obs::TraceEvent::Kind::kSpanEnd, 2));

  const std::string json =
      obs::trace_chrome_json({coordinator, worker}, 0xabcdefull);
  // Lane metadata, one complete event, one instant, and the trace id.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"0000000000abcdef\""),
            std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

}  // namespace
