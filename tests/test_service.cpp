// Service-layer tests.
//
// The load-bearing guarantee is golden equivalence: SynthesisService must
// return bit-for-bit what a direct synthesize_opamp call returns — on the
// cold path (computed through the queue), the warm path (copied out of the
// LRU cache), and the dedup-joined path (one computation shared by
// identical in-flight requests) — at every jobs setting.  "Bit-for-bit" is
// checked through the IEEE-754 bit patterns of every sized device and
// every predicted-performance axis, not through approximate comparison.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/lru_cache.h"
#include "service/service.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"

namespace oasys {
namespace {

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_perf_bits_equal(const core::OpAmpPerformance& a,
                            const core::OpAmpPerformance& b) {
  EXPECT_EQ(bits(a.gain_db), bits(b.gain_db));
  EXPECT_EQ(bits(a.gbw), bits(b.gbw));
  EXPECT_EQ(bits(a.pm_deg), bits(b.pm_deg));
  EXPECT_EQ(bits(a.slew), bits(b.slew));
  EXPECT_EQ(bits(a.swing_pos), bits(b.swing_pos));
  EXPECT_EQ(bits(a.swing_neg), bits(b.swing_neg));
  EXPECT_EQ(bits(a.offset), bits(b.offset));
  EXPECT_EQ(bits(a.icmr_lo), bits(b.icmr_lo));
  EXPECT_EQ(bits(a.icmr_hi), bits(b.icmr_hi));
  EXPECT_EQ(bits(a.power), bits(b.power));
  EXPECT_EQ(bits(a.area), bits(b.area));
  EXPECT_EQ(bits(a.cmrr_db), bits(b.cmrr_db));
  EXPECT_EQ(bits(a.psrr_db), bits(b.psrr_db));
  EXPECT_EQ(bits(a.noise_in), bits(b.noise_in));
}

void expect_design_bits_equal(const synth::OpAmpDesign& a,
                              const synth::OpAmpDesign& b) {
  EXPECT_EQ(a.style, b.style);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.soft_violations, b.soft_violations);
  EXPECT_EQ(a.stage1_cascode, b.stage1_cascode);
  EXPECT_EQ(a.stage2_cascode_load, b.stage2_cascode_load);
  EXPECT_EQ(a.stage2_cascode_gm, b.stage2_cascode_gm);
  EXPECT_EQ(a.tail_cascode, b.tail_cascode);
  EXPECT_EQ(a.has_level_shifter, b.has_level_shifter);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].role, b.devices[i].role);
    EXPECT_EQ(a.devices[i].type, b.devices[i].type);
    EXPECT_EQ(bits(a.devices[i].w), bits(b.devices[i].w));
    EXPECT_EQ(bits(a.devices[i].l), bits(b.devices[i].l));
    EXPECT_EQ(a.devices[i].m, b.devices[i].m);
    EXPECT_EQ(bits(a.devices[i].id), bits(b.devices[i].id));
    EXPECT_EQ(bits(a.devices[i].vov), bits(b.devices[i].vov));
  }
  EXPECT_EQ(bits(a.cc), bits(b.cc));
  EXPECT_EQ(bits(a.rref), bits(b.rref));
  EXPECT_EQ(bits(a.iref), bits(b.iref));
  EXPECT_EQ(bits(a.itail), bits(b.itail));
  EXPECT_EQ(bits(a.i2), bits(b.i2));
  EXPECT_EQ(bits(a.ils), bits(b.ils));
  EXPECT_EQ(a.vb_cascode_n.has_value(), b.vb_cascode_n.has_value());
  if (a.vb_cascode_n && b.vb_cascode_n) {
    EXPECT_EQ(bits(*a.vb_cascode_n), bits(*b.vb_cascode_n));
  }
  EXPECT_EQ(a.vb_cascode_p.has_value(), b.vb_cascode_p.has_value());
  if (a.vb_cascode_p && b.vb_cascode_p) {
    EXPECT_EQ(bits(*a.vb_cascode_p), bits(*b.vb_cascode_p));
  }
  expect_perf_bits_equal(a.predicted, b.predicted);
}

void expect_result_bits_equal(const synth::SynthesisResult& a,
                              const synth::SynthesisResult& b) {
  EXPECT_EQ(a.spec.canonical_string(), b.spec.canonical_string());
  EXPECT_EQ(a.selection.best, b.selection.best);
  EXPECT_EQ(a.selection.ranking, b.selection.ranking);
  EXPECT_EQ(a.selection.summary, b.selection.summary);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    expect_design_bits_equal(a.candidates[i], b.candidates[i]);
  }
}

// The paper's three cases plus GBW/gain variants: enough distinct keys to
// exercise eviction and queue bounds, each still a valid spec.
std::vector<core::OpAmpSpec> six_specs() {
  std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  core::OpAmpSpec a2 = synth::spec_case_a();
  a2.name = "A2";
  a2.gbw_min *= 1.25;
  core::OpAmpSpec b2 = synth::spec_case_b();
  b2.name = "B2";
  b2.gain_min_db += 3.0;
  core::OpAmpSpec c2 = synth::spec_case_a();
  c2.name = "A3";
  c2.slew_min *= 1.5;
  specs.push_back(a2);
  specs.push_back(b2);
  specs.push_back(c2);
  return specs;
}

// ---- golden equivalence ----------------------------------------------------

TEST(ServiceGolden, ColdWarmAndDedupMatchDirectSynthesisAtJobs124) {
  const std::vector<core::OpAmpSpec> specs = six_specs();
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    synth::SynthOptions opts;
    opts.jobs = jobs;

    std::vector<synth::SynthesisResult> direct;
    direct.reserve(specs.size());
    for (const auto& s : specs) {
      direct.push_back(synth::synthesize_opamp(tech5(), s, opts));
    }

    service::SynthesisService svc(tech5(), opts, {});
    // Cold: everything computed through the queue.
    const auto cold = svc.run_batch(specs);
    ASSERT_EQ(cold.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      expect_result_bits_equal(cold[i], direct[i]);
    }
    // Warm: everything served from the LRU cache.
    const auto warm = svc.run_batch(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      expect_result_bits_equal(warm[i], direct[i]);
    }
    const service::ServiceStats st = svc.stats();
    EXPECT_EQ(st.misses, specs.size());
    EXPECT_EQ(st.hits, specs.size());
    EXPECT_EQ(st.dedup_joins, 0u);

    // Dedup: each spec twice in one batch joins the in-flight computation.
    service::SynthesisService svc2(tech5(), opts, {});
    std::vector<core::OpAmpSpec> doubled;
    for (const auto& s : specs) {
      doubled.push_back(s);
      doubled.push_back(s);
    }
    const auto joined = svc2.run_batch(doubled);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      expect_result_bits_equal(joined[2 * i], direct[i]);
      expect_result_bits_equal(joined[2 * i + 1], direct[i]);
    }
    const service::ServiceStats st2 = svc2.stats();
    EXPECT_EQ(st2.misses, specs.size());
    EXPECT_EQ(st2.dedup_joins, specs.size());
    EXPECT_EQ(st2.hits, 0u);
  }
}

TEST(ServiceGolden, RunBatchMatchesSynthesizeOpampBatch) {
  const std::vector<core::OpAmpSpec> specs = six_specs();
  synth::SynthOptions opts;
  const auto batch = synth::synthesize_opamp_batch(tech5(), specs, opts);
  service::SynthesisService svc(tech5(), opts, {});
  const auto served = svc.run_batch(specs);
  ASSERT_EQ(batch.size(), served.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_result_bits_equal(served[i], batch[i]);
  }
}

// ---- async API -------------------------------------------------------------

TEST(ServiceAsync, SubmitWaitAndSingleRedemption) {
  service::SynthesisService svc(tech5());
  const service::Ticket t1 = svc.submit(synth::spec_case_a());
  const service::Ticket t2 = svc.submit(synth::spec_case_a());  // join
  EXPECT_NE(t1.id, t2.id);

  const synth::SynthesisResult r1 = svc.wait(t1);
  const synth::SynthesisResult r2 = svc.wait(t2);
  expect_result_bits_equal(r1, r2);
  EXPECT_TRUE(r1.success());

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.requests, 2u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.dedup_joins, 1u);

  EXPECT_THROW(svc.wait(t1), std::out_of_range);           // one-shot
  EXPECT_THROW(svc.wait(service::Ticket{9999}), std::out_of_range);
}

TEST(ServiceAsync, WaitFromAnotherThreadCompletes) {
  service::SynthesisService svc(tech5());
  const service::Ticket t = svc.submit(synth::spec_case_b());
  synth::SynthesisResult from_thread;
  std::thread waiter([&] { from_thread = svc.wait(t); });
  waiter.join();
  expect_result_bits_equal(from_thread,
                           synth::synthesize_opamp(tech5(),
                                                   synth::spec_case_b()));
}

// ---- cache and queue behaviour --------------------------------------------

TEST(Service, NoCacheRecomputesEveryBatchButStaysEquivalent) {
  service::ServiceOptions sopts;
  sopts.cache_enabled = false;
  service::SynthesisService svc(tech5(), {}, sopts);
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  const auto first = svc.run_batch(specs);
  const auto second = svc.run_batch(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_result_bits_equal(first[i], second[i]);
  }
  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, 2 * specs.size());
  EXPECT_EQ(st.cache_size, 0u);
}

TEST(Service, BoundedQueueDrainsInlineUnderBackpressure) {
  service::ServiceOptions sopts;
  sopts.queue_capacity = 2;
  service::SynthesisService svc(tech5(), {}, sopts);
  const std::vector<core::OpAmpSpec> specs = six_specs();
  std::vector<service::Ticket> tickets;
  for (const auto& s : specs) tickets.push_back(svc.submit(s));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_result_bits_equal(svc.wait(tickets[i]),
                             synth::synthesize_opamp(tech5(), specs[i]));
  }
  const service::ServiceStats st = svc.stats();
  EXPECT_LE(st.queue_high_water, 2u);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_EQ(st.misses, specs.size());
}

TEST(Service, LruEvictionForcesRecompute) {
  service::ServiceOptions sopts;
  sopts.cache_capacity = 2;
  service::SynthesisService svc(tech5(), {}, sopts);
  const core::OpAmpSpec a = synth::spec_case_a();
  const core::OpAmpSpec b = synth::spec_case_b();
  const core::OpAmpSpec c = synth::spec_case_c();

  svc.run_batch({a, b});   // cache: {b, a}
  svc.run_batch({c});      // evicts a -> cache: {c, b}
  svc.run_batch({b});      // hit
  const auto again = svc.run_batch({a});  // miss: recomputed
  expect_result_bits_equal(again[0],
                           synth::synthesize_opamp(tech5(), a));

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.evictions, 2u);  // a displaced by c, then c displaced by a
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 4u);
  EXPECT_EQ(st.cache_size, 2u);
}

TEST(Service, StatsCountersAreConsistent) {
  service::SynthesisService svc(tech5());
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  svc.run_batch(specs);
  svc.run_batch(specs);
  std::vector<core::OpAmpSpec> doubled = {specs[0], specs[0]};
  svc.run_batch(doubled);

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.requests, st.hits + st.misses + st.dedup_joins);
  EXPECT_EQ(st.latency.count, st.requests);
  EXPECT_LE(st.latency.min_s, st.latency.mean_s);
  EXPECT_LE(st.latency.mean_s, st.latency.max_s);
  EXPECT_GE(st.latency.min_s, 0.0);
  // Percentiles come from the shared histogram: ordered and clamped to the
  // exact [min, max] the service observed.
  EXPECT_GE(st.latency.p50_s, st.latency.min_s);
  EXPECT_LE(st.latency.p50_s, st.latency.p95_s);
  EXPECT_LE(st.latency.p95_s, st.latency.max_s);
}

TEST(Service, RequestKeyIgnoresJobsButSeesOtherOptions) {
  synth::SynthOptions serial;
  serial.jobs = 1;
  synth::SynthOptions wide;
  wide.jobs = 8;
  service::SynthesisService a(tech5(), serial, {});
  service::SynthesisService b(tech5(), wide, {});
  EXPECT_EQ(a.request_key(synth::spec_case_a()),
            b.request_key(synth::spec_case_a()));

  synth::SynthOptions norules;
  norules.rules_enabled = false;
  service::SynthesisService c(tech5(), norules, {});
  EXPECT_NE(a.request_key(synth::spec_case_a()),
            c.request_key(synth::spec_case_a()));
  EXPECT_NE(a.request_key(synth::spec_case_a()),
            a.request_key(synth::spec_case_b()));
}

// ---- LruCache unit behaviour ----------------------------------------------

TEST(LruCache, EvictsInLeastRecentlyUsedOrder) {
  service::LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  ASSERT_NE(cache.get("a"), nullptr);  // promotes a over b
  cache.put("c", 3);                   // evicts b, the LRU entry
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  cache.put("d", 4);  // evicts a: c was promoted by the later put
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_TRUE(cache.contains("d"));
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(LruCache, PutOverwritesAndPromotesExistingKey) {
  service::LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("a", 10);  // overwrite, promote; no eviction
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(*cache.get("a"), 10);
  cache.put("c", 3);  // evicts b
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("a"));
}

TEST(LruCache, ZeroCapacityStoresNothing) {
  service::LruCache<std::string, int> cache(0);
  cache.put("a", 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(cache.evictions(), 0u);
}

}  // namespace
}  // namespace oasys
