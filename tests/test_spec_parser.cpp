#include <gtest/gtest.h>

#include "core/spec_parser.h"
#include "synth/test_cases.h"
#include "util/units.h"

namespace oasys::core {
namespace {

TEST(SpecParser, ParsesAllFieldsWithUnits) {
  const char* text = R"(
# comment
name       demo
gain_db    70
gbw_mhz    2.5
pm_deg     45
slew_v_us  2
cload_pf   10
swing_pos_v 3.5
swing_neg_v 3
offset_mv  2
icmr_lo_v  -2
icmr_hi_v  2
power_mw   10
area_um2   50000
cmrr_db    60
)";
  const SpecParseResult r = parse_opamp_spec(text);
  ASSERT_TRUE(r.ok()) << r.log.to_string();
  EXPECT_EQ(r.spec.name, "demo");
  EXPECT_DOUBLE_EQ(r.spec.gain_min_db, 70.0);
  EXPECT_DOUBLE_EQ(r.spec.gbw_min, 2.5e6);
  EXPECT_DOUBLE_EQ(r.spec.slew_min, 2e6);
  EXPECT_DOUBLE_EQ(r.spec.cload, 10e-12);
  EXPECT_DOUBLE_EQ(r.spec.swing_pos, 3.5);
  EXPECT_DOUBLE_EQ(r.spec.offset_max, 2e-3);
  EXPECT_DOUBLE_EQ(r.spec.icmr_lo, -2.0);
  EXPECT_DOUBLE_EQ(r.spec.power_max, 10e-3);
  EXPECT_NEAR(r.spec.area_max, 50000e-12, 1e-18);
  EXPECT_DOUBLE_EQ(r.spec.cmrr_min_db, 60.0);
}

TEST(SpecParser, RoundTripsPaperCases) {
  for (const OpAmpSpec& spec : synth::paper_test_cases()) {
    const std::string text = to_spec_text(spec);
    const SpecParseResult r = parse_opamp_spec(text);
    ASSERT_TRUE(r.ok()) << spec.name << ": " << r.log.to_string();
    EXPECT_EQ(r.spec.name, spec.name);
    EXPECT_NEAR(r.spec.gain_min_db, spec.gain_min_db, 1e-9);
    EXPECT_NEAR(r.spec.gbw_min, spec.gbw_min, spec.gbw_min * 1e-9);
    EXPECT_NEAR(r.spec.slew_min, spec.slew_min, spec.slew_min * 1e-9);
    EXPECT_NEAR(r.spec.cload, spec.cload, spec.cload * 1e-9);
    EXPECT_NEAR(r.spec.offset_max, spec.offset_max, 1e-12);
    EXPECT_NEAR(r.spec.power_max, spec.power_max, 1e-12);
    EXPECT_NEAR(r.spec.icmr_lo, spec.icmr_lo, 1e-12);
    EXPECT_NEAR(r.spec.icmr_hi, spec.icmr_hi, 1e-12);
  }
}

TEST(SpecParser, UnknownKeyIsError) {
  const SpecParseResult r =
      parse_opamp_spec("cload_pf 10\nbogus 3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.log.contains_code("spec-parse"));
}

TEST(SpecParser, BadValueIsError) {
  EXPECT_FALSE(parse_opamp_spec("cload_pf ten\n").ok());
  EXPECT_FALSE(parse_opamp_spec("cload_pf\n").ok());
}

TEST(SpecParser, ValidationRunsAfterParse) {
  // Parses cleanly but violates spec sanity (no load).
  const SpecParseResult r = parse_opamp_spec("gain_db 60\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.log.contains_code("spec-invalid"));
}

TEST(SpecParser, MissingFileReportsIo) {
  const SpecParseResult r = load_opamp_spec_file("/no/such/file.spec");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.log.contains_code("spec-io"));
}

}  // namespace
}  // namespace oasys::core
