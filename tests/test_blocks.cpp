#include <gtest/gtest.h>

#include "blocks/bias_chain.h"
#include "blocks/current_mirror.h"
#include "blocks/diff_pair.h"
#include "blocks/gm_stage.h"
#include "blocks/level_shifter.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::blocks {
namespace {

using tech::Technology;
using util::ua;
using util::um;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

// ---- current mirror -----------------------------------------------------------

TEST(Mirror, SimpleStyleMeetsEasySpec) {
  CurrentMirrorSpec s;
  s.type = mos::MosType::kNmos;
  s.iin = ua(20.0);
  s.iout = ua(20.0);
  s.compliance_max = 0.4;
  const CurrentMirrorDesign d =
      design_mirror_style(tech5(), s, MirrorStyle::kSimple);
  ASSERT_TRUE(d.feasible) << d.log.to_string();
  EXPECT_EQ(d.devices.size(), 2u);
  EXPECT_LE(d.compliance, s.compliance_max);
  EXPECT_GT(d.rout, 0.0);
  // Equal currents -> equal widths.
  EXPECT_DOUBLE_EQ(d.devices[0].w, d.devices[1].w);
}

TEST(Mirror, CascodeFollowsPaperHeuristic) {
  // "fix the length of two devices at their minimum size, and require the
  // width of all four devices to be equal."
  CurrentMirrorSpec s;
  s.type = mos::MosType::kNmos;
  s.iin = ua(20.0);
  s.iout = ua(20.0);
  s.compliance_max = 1.6;
  const CurrentMirrorDesign d =
      design_mirror_style(tech5(), s, MirrorStyle::kCascode);
  ASSERT_TRUE(d.feasible) << d.log.to_string();
  ASSERT_EQ(d.devices.size(), 4u);
  const auto* inc = &d.devices[2];
  const auto* outc = &d.devices[3];
  EXPECT_DOUBLE_EQ(inc->l, tech5().lmin);
  EXPECT_DOUBLE_EQ(outc->l, tech5().lmin);
  EXPECT_DOUBLE_EQ(d.devices[0].w, inc->w);
  EXPECT_DOUBLE_EQ(d.devices[1].w, outc->w);
}

TEST(Mirror, CascodeBeatsSimpleOnRout) {
  CurrentMirrorSpec s;
  s.type = mos::MosType::kNmos;
  s.iin = ua(20.0);
  s.iout = ua(20.0);
  s.compliance_max = 1.6;
  s.vds_out_nominal = 3.0;  // output device sits far from the diode's Vds
  const auto simple = design_mirror_style(tech5(), s, MirrorStyle::kSimple);
  const auto cascode =
      design_mirror_style(tech5(), s, MirrorStyle::kCascode);
  ASSERT_TRUE(simple.feasible);
  ASSERT_TRUE(cascode.feasible);
  EXPECT_GT(cascode.rout, 10.0 * simple.rout);
  EXPECT_DOUBLE_EQ(cascode.current_error_frac, 0.0);
  EXPECT_NE(simple.current_error_frac, 0.0);
}

TEST(Mirror, SelectionPrefersSmallerAreaWhenBothWork) {
  CurrentMirrorSpec s;
  s.type = mos::MosType::kNmos;
  s.iin = ua(20.0);
  s.iout = ua(20.0);
  s.compliance_max = 1.6;  // both styles fit
  const CurrentMirrorDesign d = design_current_mirror(tech5(), s);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.style, MirrorStyle::kSimple);  // 2 devices beat 4 on area
}

TEST(Mirror, HighRoutForcesCascode) {
  CurrentMirrorSpec s;
  s.type = mos::MosType::kNmos;
  s.iin = ua(20.0);
  s.iout = ua(20.0);
  s.compliance_max = 1.6;
  s.rout_min = 100e6;  // simple style would need absurd channel length
  const CurrentMirrorDesign d = design_current_mirror(tech5(), s);
  ASSERT_TRUE(d.feasible) << d.log.to_string();
  EXPECT_EQ(d.style, MirrorStyle::kCascode);
  EXPECT_GE(d.rout, s.rout_min);
}

TEST(Mirror, TightComplianceForcesSimple) {
  CurrentMirrorSpec s;
  s.type = mos::MosType::kNmos;
  s.iin = ua(20.0);
  s.iout = ua(20.0);
  s.compliance_max = 0.3;  // cascode needs VT + 2 Vov > 0.3
  const CurrentMirrorDesign d = design_current_mirror(tech5(), s);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.style, MirrorStyle::kSimple);
}

TEST(Mirror, InfeasibleWhenBothStylesFail) {
  CurrentMirrorSpec s;
  s.type = mos::MosType::kNmos;
  s.iin = ua(20.0);
  s.iout = ua(20.0);
  s.compliance_max = 0.05;  // nothing fits
  const CurrentMirrorDesign d = design_current_mirror(tech5(), s);
  EXPECT_FALSE(d.feasible);
  EXPECT_TRUE(d.log.has_errors());
}

TEST(Mirror, RatioScalesOutputWidth) {
  CurrentMirrorSpec s;
  s.type = mos::MosType::kPmos;
  s.iin = ua(10.0);
  s.iout = ua(40.0);
  s.compliance_max = 0.5;
  const CurrentMirrorDesign d =
      design_mirror_style(tech5(), s, MirrorStyle::kSimple);
  ASSERT_TRUE(d.feasible);
  EXPECT_NEAR(d.devices[1].w / d.devices[0].w, 4.0, 1e-9);
}

TEST(Mirror, BadSpecRejected) {
  CurrentMirrorSpec s;
  s.iin = 0.0;
  s.iout = ua(10.0);
  EXPECT_FALSE(design_current_mirror(tech5(), s).feasible);
  s.iin = ua(1.0);
  s.iout = ua(100.0);  // ratio 100 unmatchable
  EXPECT_FALSE(design_current_mirror(tech5(), s).feasible);
}

// ---- diff pair -----------------------------------------------------------------

TEST(DiffPair, SizesForGm) {
  DiffPairSpec s;
  s.gm = 100e-6;
  s.itail = ua(20.0);
  s.l = um(5.0);
  const DiffPairDesign d = design_diff_pair(tech5(), s);
  ASSERT_TRUE(d.feasible) << d.log.to_string();
  EXPECT_EQ(d.devices.size(), 2u);
  EXPECT_DOUBLE_EQ(d.devices[0].w, d.devices[1].w);
  // vov = 2 Id / gm = 0.2.
  EXPECT_NEAR(d.vov, 0.2, 1e-9);
  // Sized W/L reproduces gm through the square law.
  const double wl = d.devices[0].w / d.devices[0].l;
  const double gm_check =
      std::sqrt(2.0 * tech5().nmos.kp * wl * ua(10.0));
  EXPECT_NEAR(gm_check, s.gm, s.gm * 1e-6);
}

TEST(DiffPair, CascodeAddsDevicesAndRout) {
  DiffPairSpec s;
  s.gm = 100e-6;
  s.itail = ua(20.0);
  s.l = um(5.0);
  const DiffPairDesign simple = design_diff_pair(tech5(), s);
  s.style = DiffPairStyle::kCascode;
  const DiffPairDesign casc = design_diff_pair(tech5(), s);
  ASSERT_TRUE(casc.feasible);
  EXPECT_EQ(casc.devices.size(), 4u);
  EXPECT_GT(casc.rout_drain, 20.0 * simple.rout_drain);
  EXPECT_GT(casc.branch_headroom, simple.branch_headroom);
}

TEST(DiffPair, RejectsSubthresholdGm) {
  DiffPairSpec s;
  s.gm = 1e-3;  // needs vov = 20 mV at 20 uA
  s.itail = ua(20.0);
  s.l = um(5.0);
  const DiffPairDesign d = design_diff_pair(tech5(), s);
  EXPECT_FALSE(d.feasible);
  EXPECT_TRUE(d.log.contains_code("diffpair-gm"));
}

TEST(DiffPair, RejectsHugeOverdrive) {
  DiffPairSpec s;
  s.gm = 10e-6;  // vov = 2 V at 20 uA
  s.itail = ua(20.0);
  s.l = um(5.0);
  EXPECT_FALSE(design_diff_pair(tech5(), s).feasible);
}

// ---- gm stage -------------------------------------------------------------------

TEST(GmStage, SizesForGmAndSwing) {
  GmStageSpec s;
  s.gm = 300e-6;
  s.id = ua(60.0);
  s.l = um(5.0);
  s.vov_max = 0.5;
  const GmStageDesign d = design_gm_stage(tech5(), s);
  ASSERT_TRUE(d.feasible) << d.log.to_string();
  EXPECT_EQ(d.devices.size(), 1u);
  EXPECT_NEAR(d.vov, 0.4, 1e-9);
  EXPECT_NEAR(d.swing_loss, d.vov, 1e-12);
}

TEST(GmStage, SwingBudgetEnforced) {
  GmStageSpec s;
  s.gm = 100e-6;
  s.id = ua(60.0);  // vov = 1.2 V
  s.l = um(5.0);
  s.vov_max = 0.5;
  const GmStageDesign d = design_gm_stage(tech5(), s);
  EXPECT_FALSE(d.feasible);
  EXPECT_TRUE(d.log.contains_code("gmstage-swing"));
}

TEST(GmStage, CascodeRaisesRoutCostsSwing) {
  GmStageSpec s;
  s.gm = 300e-6;
  s.id = ua(60.0);
  s.l = um(5.0);
  s.vov_max = 0.5;
  const GmStageDesign cs = design_gm_stage(tech5(), s);
  s.style = GmStageStyle::kCascode;
  const GmStageDesign casc = design_gm_stage(tech5(), s);
  ASSERT_TRUE(casc.feasible);
  EXPECT_EQ(casc.devices.size(), 2u);
  EXPECT_GT(casc.rout, 10.0 * cs.rout);
  EXPECT_NEAR(casc.swing_loss, 2.0 * cs.swing_loss, 1e-12);
}

// ---- level shifter ----------------------------------------------------------------

TEST(LevelShifter, RealizesShift) {
  LevelShifterSpec s;
  s.shift = 1.2;  // VT 0.9 + vov 0.3
  s.cload = 0.5e-12;
  s.pole_min = 10e6;
  const LevelShifterDesign d = design_level_shifter(tech5(), s);
  ASSERT_TRUE(d.feasible) << d.log.to_string();
  EXPECT_NEAR(d.shift, 1.2, 1e-9);
  EXPECT_GE(d.pole, s.pole_min * 0.99);
  EXPECT_GT(d.ibias, 0.0);
}

TEST(LevelShifter, RejectsShiftBelowThreshold) {
  LevelShifterSpec s;
  s.shift = 0.92;  // barely above VT 0.9
  const LevelShifterDesign d = design_level_shifter(tech5(), s);
  EXPECT_FALSE(d.feasible);
  EXPECT_TRUE(d.log.contains_code("ls-shift"));
}

TEST(LevelShifter, NmosShiftIncludesBodyEffect) {
  LevelShifterSpec s;
  s.type = mos::MosType::kNmos;
  s.shift = 1.5;
  s.vsb = 3.0;  // body effect raises VT, so vov is what remains
  const LevelShifterDesign d = design_level_shifter(tech5(), s);
  ASSERT_TRUE(d.feasible);
  const double vt = mos::threshold(tech5().nmos, 3.0);
  EXPECT_NEAR(d.vov, 1.5 - vt, 1e-9);
}

// ---- bias chain -------------------------------------------------------------------

TEST(BiasChain, SimpleTailOnly) {
  BiasChainSpec s;
  s.iref = ua(25.0);
  s.taps.push_back({"M5", mos::MosType::kNmos, ua(50.0), false, 0.5, 0.0});
  const BiasChainDesign d = design_bias_chain(tech5(), s);
  ASSERT_TRUE(d.feasible) << d.log.to_string();
  // MB1 + tap.
  EXPECT_EQ(d.devices.size(), 2u);
  EXPECT_FALSE(d.has_vbp_branch);
  EXPECT_FALSE(d.has_cascode_stack);
  EXPECT_GT(d.rref, 0.0);
  // Tap width is ratio * reference width.
  EXPECT_NEAR(d.devices[1].w / d.devices[0].w, 2.0, 1e-9);
  EXPECT_NEAR(d.vbn, tech5().vss + tech5().nmos.vt0 + d.vov, 1e-9);
}

TEST(BiasChain, CascodeTapAddsStack) {
  BiasChainSpec s;
  s.iref = ua(25.0);
  s.taps.push_back({"M5", mos::MosType::kNmos, ua(50.0), true, 1.6, 0.0});
  const BiasChainDesign d = design_bias_chain(tech5(), s);
  ASSERT_TRUE(d.feasible) << d.log.to_string();
  EXPECT_TRUE(d.has_cascode_stack);
  // MB1, MB1C, M5, M5C.
  EXPECT_EQ(d.devices.size(), 4u);
  EXPECT_GT(d.vbn2, d.vbn);
}

TEST(BiasChain, PmosTapAddsVbpBranch) {
  BiasChainSpec s;
  s.iref = ua(25.0);
  s.taps.push_back({"MLSB", mos::MosType::kPmos, ua(10.0), false, 0.0, 0.0});
  const BiasChainDesign d = design_bias_chain(tech5(), s);
  ASSERT_TRUE(d.feasible) << d.log.to_string();
  EXPECT_TRUE(d.has_vbp_branch);
  // MB1, MB2, MB3, MLSB.
  EXPECT_EQ(d.devices.size(), 4u);
  EXPECT_LT(d.vbp, tech5().vdd);
  EXPECT_NEAR(d.ibias_total, 2.0 * s.iref, 1e-12);
}

TEST(BiasChain, RoutTargetLengthensChannel) {
  BiasChainSpec lo;
  lo.iref = ua(25.0);
  lo.taps.push_back({"M5", mos::MosType::kNmos, ua(25.0), false, 0.5, 0.0});
  const BiasChainDesign d_lo = design_bias_chain(tech5(), lo);
  BiasChainSpec hi = lo;
  hi.taps[0].rout_min = 3e6;  // needs L ~ 13 um, within the length limit
  const BiasChainDesign d_hi = design_bias_chain(tech5(), hi);
  ASSERT_TRUE(d_lo.feasible);
  ASSERT_TRUE(d_hi.feasible);
  EXPECT_GT(d_hi.devices[0].l, d_lo.devices[0].l);
  EXPECT_GE(d_hi.tap_rout[0], 3e6 * 0.999);
}

TEST(BiasChain, ImpossibleComplianceFails) {
  BiasChainSpec s;
  s.iref = ua(25.0);
  s.taps.push_back({"M5", mos::MosType::kNmos, ua(25.0), false, 0.05, 0.0});
  EXPECT_FALSE(design_bias_chain(tech5(), s).feasible);
}

TEST(BiasChain, IdealReferenceSkipsResistor) {
  BiasChainSpec s;
  s.style = BiasStyle::kIdealReference;
  s.iref = ua(25.0);
  s.taps.push_back({"M5", mos::MosType::kNmos, ua(25.0), false, 0.5, 0.0});
  const BiasChainDesign d = design_bias_chain(tech5(), s);
  ASSERT_TRUE(d.feasible);
  EXPECT_DOUBLE_EQ(d.rref, 0.0);
}

}  // namespace
}  // namespace oasys::blocks
