// Unit tests for the tolerance-tier comparator (tests/tolcmp.h): the
// restricted JSON parser, oasys.tol.v1 document parsing (including the
// "nan"/"inf"/"-inf" string encoding), envelope resolution with the "*"
// default, and the comparison semantics the tolerance-golden ctest
// depends on — worst-offender ranking, exact pins, and metric-set
// mismatches as violations.
#include "tolcmp.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace {

using namespace oasys::tolcmp;

// A minimal well-formed document; tests mutate copies of it.
std::string doc(const std::string& metrics, const std::string& tol) {
  return "{\n"
         "  \"schema\": \"oasys.tol.v1\",\n"
         "  \"subject\": \"opamp_B\",\n"
         "  \"tech\": \"builtin\",\n"
         "  \"tran\": {\"mode\": \"adaptive\", \"rtol\": 0.001, "
         "\"atol\": 1e-06},\n"
         "  \"metrics\": {" + metrics + "},\n"
         "  \"tol\": {" + tol + "}\n"
         "}\n";
}

TEST(TolcmpJson, ParsesNestedDocument) {
  const JsonValue v = parse_json(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"x\\n\"}, \"d\": true, "
      "\"e\": null}");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->find("c")->string, "x\n");
  EXPECT_TRUE(v.find("d")->boolean);
  EXPECT_EQ(v.find("e")->kind, JsonValue::Kind::kNull);
}

TEST(TolcmpJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": 1e}"), std::runtime_error);
}

TEST(TolcmpDocument, ParsesMetricsAndEnvelopes) {
  const TolDocument d = parse_tol_document(
      doc("\"slew\": 2.5e6, \"gain_db\": 87.5",
          "\"slew\": {\"abs\": 0, \"rel\": 0.02}, "
          "\"*\": {\"abs\": 1e-9, \"rel\": 1e-6}"));
  EXPECT_EQ(d.subject, "opamp_B");
  EXPECT_EQ(d.tran_mode, "adaptive");
  EXPECT_DOUBLE_EQ(d.tran_rtol, 1e-3);
  ASSERT_NE(d.metric("slew"), nullptr);
  EXPECT_DOUBLE_EQ(*d.metric("slew"), 2.5e6);
  // Own entry wins; the "*" default covers the rest; no entry at all
  // pins exactly.
  EXPECT_DOUBLE_EQ(d.envelope("slew").rel, 0.02);
  EXPECT_DOUBLE_EQ(d.envelope("gain_db").rel, 1e-6);
  const TolDocument bare =
      parse_tol_document(doc("\"x\": 1", ""));
  EXPECT_DOUBLE_EQ(bare.envelope("x").abs, 0.0);
  EXPECT_DOUBLE_EQ(bare.envelope("x").rel, 0.0);
}

TEST(TolcmpDocument, NonFiniteValuesTravelAsStrings) {
  const TolDocument d = parse_tol_document(
      doc("\"a\": \"nan\", \"b\": \"inf\", \"c\": \"-inf\"", ""));
  EXPECT_TRUE(std::isnan(*d.metric("a")));
  EXPECT_EQ(*d.metric("b"), std::numeric_limits<double>::infinity());
  EXPECT_EQ(*d.metric("c"), -std::numeric_limits<double>::infinity());
}

TEST(TolcmpDocument, RejectsWrongSchemaAndMissingSections) {
  EXPECT_THROW(parse_tol_document("{\"schema\": \"oasys.result.v1\"}"),
               std::runtime_error);
  EXPECT_THROW(parse_tol_document(
                   "{\"schema\": \"oasys.tol.v1\", \"subject\": \"s\", "
                   "\"tech\": \"t\"}"),
               std::runtime_error);
}

TEST(TolcmpCompare, PassesInsideEnvelopeAndReportsWorst) {
  const TolDocument g = parse_tol_document(
      doc("\"slew\": 1000.0, \"power\": 2.0",
          "\"*\": {\"abs\": 0, \"rel\": 0.01}"));
  const TolDocument c = parse_tol_document(
      doc("\"slew\": 1005.0, \"power\": 2.001",
          "\"*\": {\"abs\": 0, \"rel\": 0.01}"));
  const CompareReport r = compare_documents(g, c);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.offenders.empty());
  EXPECT_EQ(r.compared, 2u);
  // slew is at 50% of its envelope, power at 5% — slew is the worst.
  EXPECT_EQ(r.worst.metric, "slew");
  EXPECT_NEAR(r.worst.ratio, 0.5, 1e-12);
}

TEST(TolcmpCompare, ViolationsSortWorstFirst) {
  const TolDocument g = parse_tol_document(
      doc("\"a\": 100.0, \"b\": 100.0",
          "\"*\": {\"abs\": 0, \"rel\": 0.01}"));
  const TolDocument c = parse_tol_document(
      doc("\"a\": 102.0, \"b\": 110.0",
          "\"*\": {\"abs\": 0, \"rel\": 0.01}"));
  const CompareReport r = compare_documents(g, c);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.offenders.size(), 2u);
  EXPECT_EQ(r.offenders[0].metric, "b");  // 10x over beats 2x over
  EXPECT_EQ(r.offenders[1].metric, "a");
  EXPECT_NEAR(r.offenders[0].ratio, 10.0, 1e-9);
}

TEST(TolcmpCompare, ExactPinAdmitsNoError) {
  const TolDocument g =
      parse_tol_document(doc("\"monotonic\": 1", ""));
  const TolDocument same =
      parse_tol_document(doc("\"monotonic\": 1", ""));
  const TolDocument off =
      parse_tol_document(doc("\"monotonic\": 0", ""));
  EXPECT_TRUE(compare_documents(g, same).ok);
  const CompareReport r = compare_documents(g, off);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.offenders.size(), 1u);
  EXPECT_EQ(r.offenders[0].ratio,
            std::numeric_limits<double>::infinity());
}

TEST(TolcmpCompare, NanMatchesNanOnly) {
  const TolDocument g = parse_tol_document(
      doc("\"x\": \"nan\"", "\"*\": {\"abs\": 1, \"rel\": 1}"));
  const TolDocument nan_c = parse_tol_document(
      doc("\"x\": \"nan\"", "\"*\": {\"abs\": 1, \"rel\": 1}"));
  const TolDocument num_c = parse_tol_document(
      doc("\"x\": 0.5", "\"*\": {\"abs\": 1, \"rel\": 1}"));
  EXPECT_TRUE(compare_documents(g, nan_c).ok);
  // A generous envelope never excuses a finiteness mismatch.
  EXPECT_FALSE(compare_documents(g, num_c).ok);
  EXPECT_FALSE(compare_documents(num_c, g).ok);
}

TEST(TolcmpCompare, InfinityMustMatchSign) {
  const TolDocument g = parse_tol_document(doc("\"x\": \"inf\"", ""));
  EXPECT_TRUE(
      compare_documents(g, parse_tol_document(doc("\"x\": \"inf\"", "")))
          .ok);
  EXPECT_FALSE(
      compare_documents(g, parse_tol_document(doc("\"x\": \"-inf\"", "")))
          .ok);
}

TEST(TolcmpCompare, MetricSetMismatchIsViolation) {
  const TolDocument g = parse_tol_document(
      doc("\"a\": 1.0, \"b\": 2.0", "\"*\": {\"abs\": 1, \"rel\": 1}"));
  const TolDocument missing = parse_tol_document(
      doc("\"a\": 1.0", "\"*\": {\"abs\": 1, \"rel\": 1}"));
  const TolDocument extra = parse_tol_document(
      doc("\"a\": 1.0, \"b\": 2.0, \"c\": 3.0",
          "\"*\": {\"abs\": 1, \"rel\": 1}"));
  EXPECT_FALSE(compare_documents(g, missing).ok);
  EXPECT_FALSE(compare_documents(g, extra).ok);
}

TEST(TolcmpCompare, MetadataMismatchIsViolation) {
  const TolDocument g = parse_tol_document(doc("\"a\": 1.0", ""));
  TolDocument c = g;
  c.tran_mode = "fixed";
  EXPECT_FALSE(compare_documents(g, c).ok);
  c = g;
  c.subject = "other";
  EXPECT_FALSE(compare_documents(g, c).ok);
}

}  // namespace
