// tolcmp — standalone tolerance-golden checker.
//
//   tolcmp GOLDEN CANDIDATE
//
// Compares two oasys.tol.v1 documents under the *golden's* envelopes
// (tests/tolcmp.h).  Exit 0 when every metric lands inside its envelope,
// 1 on any violation (each one printed, worst first), 2 on usage or
// parse errors.  The passing path prints the worst-offender headroom so
// a tolerance review can see how tight the suite is running, not just
// that it passed.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "tolcmp.h"

namespace {

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

void print_offender(const oasys::tolcmp::Offender& o) {
  if (!o.reason.empty()) {
    std::fprintf(stderr, "  %-20s %s\n", o.metric.c_str(),
                 o.reason.c_str());
    return;
  }
  std::fprintf(stderr,
               "  %-20s golden %.17g candidate %.17g |err| %.3g allowed "
               "%.3g (%.2fx over)\n",
               o.metric.c_str(), o.golden, o.candidate, o.error, o.allowed,
               o.ratio);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oasys::tolcmp;

  if (argc != 3) {
    std::fprintf(stderr, "usage: tolcmp GOLDEN CANDIDATE\n");
    return 2;
  }

  std::string golden_text;
  std::string candidate_text;
  if (!read_file(argv[1], &golden_text)) {
    std::fprintf(stderr, "tolcmp: cannot read '%s'\n", argv[1]);
    return 2;
  }
  if (!read_file(argv[2], &candidate_text)) {
    std::fprintf(stderr, "tolcmp: cannot read '%s'\n", argv[2]);
    return 2;
  }

  TolDocument golden;
  TolDocument candidate;
  try {
    golden = parse_tol_document(golden_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tolcmp: %s: %s\n", argv[1], e.what());
    return 2;
  }
  try {
    candidate = parse_tol_document(candidate_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tolcmp: %s: %s\n", argv[2], e.what());
    return 2;
  }

  const CompareReport report = compare_documents(golden, candidate);
  if (!report.ok) {
    std::fprintf(stderr, "tolcmp: %s: %zu violation(s):\n",
                 golden.subject.c_str(), report.offenders.size());
    for (const Offender& o : report.offenders) print_offender(o);
    return 1;
  }
  std::printf("tolcmp: %s ok (%zu metrics; worst %s at %.1f%% of "
              "envelope)\n",
              golden.subject.c_str(), report.compared,
              report.worst.metric.c_str(), report.worst.ratio * 100.0);
  return 0;
}
