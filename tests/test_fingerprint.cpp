// Canonical-fingerprint tests: cache keys must be stable (equal inputs
// collide however their fields were populated — permuted spec files, NaN
// payloads, signed zeros) and collision-free across genuinely different
// inputs (bit-pattern tokens, not printf rounding).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/spec_parser.h"
#include "synth/opamp_design.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/fingerprint.h"

namespace oasys {
namespace {

// ---- util::Fingerprint primitives ----------------------------------------

TEST(Fingerprint, CanonDoubleCollapsesNansAndZeros) {
  EXPECT_EQ(util::canon_double(std::nan("")), "nan");
  EXPECT_EQ(util::canon_double(std::nan("1")), util::canon_double(std::nan("2")));
  EXPECT_EQ(util::canon_double(-std::numeric_limits<double>::quiet_NaN()),
            "nan");
  EXPECT_EQ(util::canon_double(0.0), util::canon_double(-0.0));
  EXPECT_EQ(util::canon_double(std::numeric_limits<double>::infinity()),
            "inf");
  EXPECT_EQ(util::canon_double(-std::numeric_limits<double>::infinity()),
            "-inf");
}

TEST(Fingerprint, CanonDoubleSeparatesCloseValues) {
  const double a = 1.0;
  const double b = std::nextafter(1.0, 2.0);
  EXPECT_NE(util::canon_double(a), util::canon_double(b));
  EXPECT_NE(util::canon_double(1e-12), util::canon_double(1.0000001e-12));
}

TEST(Fingerprint, FieldOrderDoesNotMatter) {
  util::Fingerprint a;
  a.field("x", 1.5).field("y", 2.5).field("flag", true);
  util::Fingerprint b;
  b.field("flag", true).field("y", 2.5).field("x", 1.5);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Fingerprint, DistinctFieldsChangeHash) {
  util::Fingerprint a;
  a.field("x", 1.5);
  util::Fingerprint b;
  b.field("x", 1.5 + 1e-15);
  EXPECT_NE(a.str(), b.str());
  EXPECT_NE(a.hash(), b.hash());
}

// ---- OpAmpSpec -------------------------------------------------------------

TEST(SpecFingerprint, PermutedSpecFilesCollide) {
  const core::SpecParseResult a = core::parse_opamp_spec(
      "name P\ngain_db 70\ngbw_mhz 2\npm_deg 45\ncload_pf 10\n");
  const core::SpecParseResult b = core::parse_opamp_spec(
      "cload_pf 10\npm_deg 45\ngbw_mhz 2\ngain_db 70\nname P\n");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.spec.canonical_string(), b.spec.canonical_string());
  EXPECT_EQ(a.spec.hash(), b.spec.hash());
}

TEST(SpecFingerprint, RoundTripThroughSpecTextCollides) {
  // to_spec_text renders designer units (%.6g); a spec built from such
  // text must fingerprint like the re-parsed one.
  const core::OpAmpSpec spec = synth::spec_case_b();
  const core::SpecParseResult r =
      core::parse_opamp_spec(core::to_spec_text(spec));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(spec.canonical_string(), r.spec.canonical_string());
}

TEST(SpecFingerprint, DifferingSpecsDoNotCollide) {
  const core::OpAmpSpec a = synth::spec_case_a();
  core::OpAmpSpec b = a;
  b.gbw_min = std::nextafter(a.gbw_min, a.gbw_min * 2.0);
  EXPECT_NE(a.canonical_string(), b.canonical_string());
  EXPECT_NE(a.hash(), b.hash());

  core::OpAmpSpec renamed = a;
  renamed.name = "A2";
  EXPECT_NE(a.canonical_string(), renamed.canonical_string());
}

TEST(SpecFingerprint, NanAndSignedZeroFieldsAreStable) {
  core::OpAmpSpec a = synth::spec_case_a();
  core::OpAmpSpec b = a;
  a.noise_max = std::nan("1");
  b.noise_max = std::nan("2");
  EXPECT_EQ(a.canonical_string(), b.canonical_string());
  a.noise_max = 0.0;
  b.noise_max = -0.0;
  EXPECT_EQ(a.canonical_string(), b.canonical_string());
}

// ---- Technology and SynthOptions ------------------------------------------

TEST(TechFingerprint, BuiltinProcessesDiffer) {
  const tech::Technology t5 = tech::five_micron();
  const tech::Technology t3 = tech::three_micron();
  EXPECT_EQ(t5.canonical_string(), tech::five_micron().canonical_string());
  EXPECT_NE(t5.canonical_string(), t3.canonical_string());
  EXPECT_NE(t5.hash(), t3.hash());
}

TEST(TechFingerprint, DeviceParameterChangesAreVisible) {
  tech::Technology t = tech::five_micron();
  tech::Technology u = t;
  u.nmos.vt0 = std::nextafter(t.nmos.vt0, 10.0);
  EXPECT_NE(t.canonical_string(), u.canonical_string());
}

TEST(OptionsFingerprint, JobsExcludedOtherKnobsIncluded) {
  synth::SynthOptions a;
  synth::SynthOptions b;
  b.jobs = 7;  // results are jobs-invariant, so the key must be too
  EXPECT_EQ(canonical_string(a), canonical_string(b));
  EXPECT_EQ(hash(a), hash(b));

  synth::SynthOptions c;
  c.rules_enabled = false;
  EXPECT_NE(canonical_string(a), canonical_string(c));
  synth::SynthOptions d;
  d.iref = a.iref * 1.5;
  EXPECT_NE(canonical_string(a), canonical_string(d));
  synth::SynthOptions e;
  e.max_patches = a.max_patches + 1;
  EXPECT_NE(canonical_string(a), canonical_string(e));
}

}  // namespace
}  // namespace oasys
