// Sub-block designs closed through the simulator: every designer's
// first-order predictions (mirrored current, output resistance, compliance,
// pair gm) are checked against the Level-1 simulator across parameter
// grids.  This is the contract that makes plan predictions trustworthy.
#include <gtest/gtest.h>

#include <cmath>

#include "blocks/current_mirror.h"
#include "blocks/diff_pair.h"
#include "netlist/circuit.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::blocks {
namespace {

using ckt::Circuit;
using ckt::Waveform;
using tech::Technology;
using util::ua;
using util::um;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

// ---- current mirror: design -> simulate -------------------------------------

struct MirrorCase {
  double iin_ua;
  double ratio;
  MirrorStyle style;
};

class MirrorSim : public ::testing::TestWithParam<MirrorCase> {};

TEST_P(MirrorSim, MirroredCurrentAndRoutMatchPredictions) {
  const Technology& t = tech5();
  const MirrorCase& mc = GetParam();

  CurrentMirrorSpec spec;
  spec.type = mos::MosType::kNmos;
  spec.iin = ua(mc.iin_ua);
  spec.iout = ua(mc.iin_ua) * mc.ratio;
  spec.compliance_max = mc.style == MirrorStyle::kCascode ? 1.8 : 0.5;
  spec.vds_out_nominal = 2.5;
  const CurrentMirrorDesign d = design_mirror_style(t, spec, mc.style);
  ASSERT_TRUE(d.feasible) << d.log.to_string();

  // Testbench: reference current into the diode, output held at 2.5 V by
  // an ideal source so its branch current reads the mirrored current.
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto g = c.node("g");
  const auto o = c.node("o");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(t.vdd));
  c.add_isource("IREF", vdd, g, Waveform::dc(spec.iin));
  c.add_vsource("VOUT", o, ckt::kGround, Waveform::ac(2.5, 1.0));
  auto place = [&](const SizedDevice& dev, ckt::NodeId drain,
                   ckt::NodeId gate, ckt::NodeId src) {
    c.add_mosfet(dev.role, drain, gate, src, ckt::kGround,
                 dev.type, dev.w, dev.l, dev.m);
  };
  if (mc.style == MirrorStyle::kSimple) {
    place(d.devices[0], g, g, ckt::kGround);   // diode
    place(d.devices[1], o, g, ckt::kGround);   // output
  } else {
    const auto a1 = c.node("a1");
    const auto c1 = c.node("c1");
    place(d.devices[0], a1, a1, ckt::kGround);  // bottom diode
    place(d.devices[2], g, g, a1);              // top diode (input enters g)
    place(d.devices[1], c1, a1, ckt::kGround);  // bottom output
    place(d.devices[3], o, g, c1);              // top output
  }

  const sim::OpResult op = sim::dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);
  const sim::MnaLayout layout(c);
  // VOUT branch sinks the mirrored current (flows into the + node).
  const double iout =
      -op.solution[layout.branch_index(*c.find_vsource("VOUT"))];
  // Mirrored within the style's systematic error plus a small band.
  const double tolerance =
      spec.iout * (std::abs(d.current_error_frac) + 0.06);
  EXPECT_NEAR(iout, spec.iout, tolerance);

  // Output resistance via AC: rout = v / i at the output source.
  const sim::AcResult ac = sim::ac_analysis(c, t, op, {1.0});
  ASSERT_TRUE(ac.ok);
  const std::complex<double> ib =
      ac.solutions[0][layout.branch_index(*c.find_vsource("VOUT"))];
  const double rout_sim = 1.0 / std::abs(ib);
  // Simulator includes (1+lambda*Vds) corrections the design equations
  // drop; agreement within 2x is the contract.
  EXPECT_GT(rout_sim, d.rout * 0.5);
  EXPECT_LT(rout_sim, d.rout * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MirrorSim,
    ::testing::Values(MirrorCase{5.0, 1.0, MirrorStyle::kSimple},
                      MirrorCase{20.0, 1.0, MirrorStyle::kSimple},
                      MirrorCase{20.0, 4.0, MirrorStyle::kSimple},
                      MirrorCase{100.0, 0.5, MirrorStyle::kSimple},
                      MirrorCase{5.0, 1.0, MirrorStyle::kCascode},
                      MirrorCase{20.0, 1.0, MirrorStyle::kCascode},
                      MirrorCase{20.0, 2.0, MirrorStyle::kCascode},
                      MirrorCase{100.0, 1.0, MirrorStyle::kCascode}),
    [](const auto& info) {
      const MirrorCase& mc = info.param;
      return std::string(mc.style == MirrorStyle::kSimple ? "simple"
                                                          : "cascode") +
             std::to_string(static_cast<int>(mc.iin_ua)) + "u_r" +
             std::to_string(static_cast<int>(mc.ratio * 10));
    });

TEST(MirrorSim, CascodeHoldsCurrentAcrossVds) {
  // Property: the cascode's output current barely moves across the
  // compliance range, while the simple mirror's drifts with lambda.
  const Technology& t = tech5();
  CurrentMirrorSpec spec;
  spec.type = mos::MosType::kNmos;
  spec.iin = ua(20.0);
  spec.iout = ua(20.0);
  spec.compliance_max = 1.8;
  spec.vds_out_nominal = 2.5;

  auto drift = [&](MirrorStyle style) {
    const CurrentMirrorDesign d = design_mirror_style(t, spec, style);
    EXPECT_TRUE(d.feasible);
    Circuit c;
    const auto vdd = c.node("vdd");
    const auto g = c.node("g");
    const auto o = c.node("o");
    c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(t.vdd));
    c.add_isource("IREF", vdd, g, Waveform::dc(spec.iin));
    c.add_vsource("VOUT", o, ckt::kGround, Waveform::dc(2.0));
    auto place = [&](const SizedDevice& dev, ckt::NodeId drain,
                     ckt::NodeId gate, ckt::NodeId src) {
      c.add_mosfet(dev.role, drain, gate, src, ckt::kGround, dev.type,
                   dev.w, dev.l, dev.m);
    };
    if (style == MirrorStyle::kSimple) {
      place(d.devices[0], g, g, ckt::kGround);
      place(d.devices[1], o, g, ckt::kGround);
    } else {
      const auto a1 = c.node("a1");
      const auto c1 = c.node("c1");
      place(d.devices[0], a1, a1, ckt::kGround);
      place(d.devices[2], g, g, a1);
      place(d.devices[1], c1, a1, ckt::kGround);
      place(d.devices[3], o, g, c1);
    }
    const sim::MnaLayout layout(c);
    const std::size_t vout_idx = *c.find_vsource("VOUT");
    double i_lo = 0.0, i_hi = 0.0;
    for (const double v : {2.0, 4.0}) {
      c.vsource(vout_idx).wave = Waveform::dc(v);
      const sim::OpResult op = sim::dc_operating_point(c, t);
      EXPECT_TRUE(op.converged);
      const double i = -op.solution[layout.branch_index(vout_idx)];
      (v == 2.0 ? i_lo : i_hi) = i;
    }
    return std::abs(i_hi - i_lo) / spec.iout;
  };

  const double drift_simple = drift(MirrorStyle::kSimple);
  const double drift_cascode = drift(MirrorStyle::kCascode);
  EXPECT_GT(drift_simple, 0.02);        // lambda is visible
  EXPECT_LT(drift_cascode, 0.005);      // cascode hides it
  EXPECT_LT(drift_cascode, drift_simple / 5.0);
}

// ---- differential pair: design -> simulate -----------------------------------

class DiffPairSim : public ::testing::TestWithParam<double> {};

TEST_P(DiffPairSim, SimulatedGmMatchesTarget) {
  const Technology& t = tech5();
  const double gm_target = GetParam();

  DiffPairSpec spec;
  spec.gm = gm_target;
  spec.itail = ua(30.0);
  spec.l = um(5.0);
  const DiffPairDesign d = design_diff_pair(t, spec);
  ASSERT_TRUE(d.feasible) << d.log.to_string();

  // Bias one pair device at Id = itail/2, Vds safely in saturation, and
  // read back gm from the device operating info.
  Circuit c;
  const auto dnode = c.node("d");
  const auto gnode = c.node("g");
  c.add_vsource("VD", dnode, ckt::kGround, Waveform::dc(2.0));
  c.add_vsource("VG", gnode, ckt::kGround, Waveform::dc(0.0));
  c.add_mosfet("M1", dnode, gnode, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, d.devices[0].w, d.devices[0].l);
  // Find VG that gives Id = itail/2 (bisection on the branch current).
  const sim::MnaLayout layout(c);
  const std::size_t vg_idx = *c.find_vsource("VG");
  const std::size_t vd_idx = *c.find_vsource("VD");
  double lo = t.nmos.vt0, hi = t.nmos.vt0 + 1.0;
  sim::OpResult op;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    c.vsource(vg_idx).wave = Waveform::dc(mid);
    op = sim::dc_operating_point(c, t);
    ASSERT_TRUE(op.converged);
    const double id = -op.solution[layout.branch_index(vd_idx)];
    (id < spec.itail / 2.0 ? lo : hi) = mid;
  }
  EXPECT_EQ(op.devices[0].region, mos::Region::kSaturation);
  // gm at the target current matches the design target within the CLM
  // correction (~ lambda*Vds ~ 7%).
  EXPECT_NEAR(op.devices[0].gm, gm_target, gm_target * 0.10);
}

INSTANTIATE_TEST_SUITE_P(Gms, DiffPairSim,
                         ::testing::Values(80e-6, 150e-6, 250e-6));

}  // namespace
}  // namespace oasys::blocks
