// Stress suite for daemon-mode serving: many concurrent sessions, a
// worker that keeps dying, and a shared cache too small for the working
// set.  The invariant under load is the same as at rest — every answered
// spec is bit-for-bit what a local synthesis returns, every fault is a
// deterministic per-spec error, and the daemon always drains.
//
// Runs under the `stress` and `tsan` ctest labels; the TSan CI job execs
// the instrumented CLI as the worker pool, so the coordinator/client
// locking and the session protocol get checked under real contention.
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/server.h"
#include "service/service.h"
#include "synth/oasys.h"
#include "synth/result_json.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/text.h"

namespace oasys {
namespace {

std::string test_socket_path() {
  static int counter = 0;
  return util::format("/tmp/oasys-serve-stress-%d-%d.sock",
                      static_cast<int>(::getpid()), counter++);
}

serve::ServeOptions serve_options(std::size_t workers,
                                  const std::string& socket) {
  serve::ServeOptions o;
  o.socket_path = socket;
  o.workers = workers;
  o.worker_command = OASYS_CLI_PATH;
  return o;
}

struct DaemonThread {
  serve::Server server;
  std::thread th;
  int rc = -1;

  explicit DaemonThread(serve::ServeOptions options)
      : server(tech::five_micron(), {}, std::move(options)) {
    th = std::thread([this] { rc = server.run(); });
  }
  int stop() {
    server.request_stop();
    if (th.joinable()) th.join();
    return rc;
  }
  ~DaemonThread() {
    server.request_stop();
    if (th.joinable()) th.join();
    ::unlink(server.options().socket_path.c_str());
  }
};

serve::ConnectReport connected_batch_retry(
    const std::string& socket, const tech::Technology& t,
    const std::vector<core::OpAmpSpec>& specs) {
  for (int attempt = 0;; ++attempt) {
    try {
      return serve::run_connected_batch(socket, t, {}, specs);
    } catch (const std::runtime_error& e) {
      if (attempt >= 1000 ||
          std::string(e.what()).find("cannot connect") == std::string::npos) {
        throw;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

struct ScopedEnv {
  std::string name;
  ScopedEnv(const char* n, const char* value) : name(n) {
    ::setenv(n, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

TEST(ServeStress, ConcurrentSessionsStayExact) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  service::SynthesisService reference(t, {});
  const std::vector<synth::SynthesisResult> expected =
      reference.run_batch(specs);
  std::vector<std::string> expected_json;
  expected_json.reserve(expected.size());
  for (const synth::SynthesisResult& r : expected) {
    expected_json.push_back(synth::result_json(r));
  }

  const std::string socket = test_socket_path();
  DaemonThread daemon(serve_options(2, socket));

  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 5;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      try {
        for (int b = 0; b < kBatchesPerThread; ++b) {
          const serve::ConnectReport report =
              connected_batch_retry(socket, t, specs);
          if (report.outcomes.size() != specs.size()) {
            failures[c] = "short outcome vector";
            return;
          }
          for (std::size_t i = 0; i < specs.size(); ++i) {
            if (!report.outcomes[i].ok()) {
              failures[c] = report.outcomes[i].error;
              return;
            }
            if (synth::result_json(report.outcomes[i].result) !=
                expected_json[i]) {
              failures[c] = util::format(
                  "client %d batch %d spec %zu drifted from the local "
                  "result",
                  c, b, i);
              return;
            }
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& th : clients) th.join();
  for (int c = 0; c < kThreads; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  const serve::ServeStats st = daemon.server.stats();
  EXPECT_EQ(st.sessions, static_cast<std::uint64_t>(kThreads) *
                             kBatchesPerThread);
  EXPECT_EQ(st.batches, st.sessions);
  EXPECT_EQ(st.respawns, 0u);
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeStress, RepeatedWorkerDeathsRespawnDeterministically) {
  const ScopedEnv crash("OASYS_SHARD_TEST_CRASH", "A:recv");
  const tech::Technology t = tech::five_micron();
  const core::OpAmpSpec poison = synth::paper_test_cases()[0];  // "A"
  ASSERT_EQ(poison.name, "A");

  const std::string socket = test_socket_path();
  DaemonThread daemon(serve_options(1, socket));

  // Every request for the poison spec kills the worker on receipt; each
  // must come back as the same deterministic error, each death must
  // respawn, and the daemon must keep serving through all of it.
  for (int round = 0; round < 3; ++round) {
    const serve::ConnectReport report =
        connected_batch_retry(socket, t, {poison});
    ASSERT_EQ(report.outcomes.size(), 1u) << "round " << round;
    EXPECT_FALSE(report.outcomes[0].ok()) << "round " << round;
    EXPECT_NE(
        report.outcomes[0].error.find("died before returning a result"),
        std::string::npos)
        << "round " << round << ": " << report.outcomes[0].error;
  }

  // The hook only matches the poison spec: the respawned worker serves
  // everything else, bit-for-bit.  (This batch also forces the final
  // respawn to land — the error answer above arrives before the backoff
  // timer replaces the dead worker.)
  const core::OpAmpSpec healthy = synth::paper_test_cases()[1];
  const serve::ConnectReport after =
      connected_batch_retry(socket, t, {healthy});
  ASSERT_TRUE(after.outcomes[0].ok()) << after.outcomes[0].error;
  EXPECT_EQ(synth::result_json(after.outcomes[0].result),
            synth::result_json(synth::synthesize_opamp(t, healthy, {})));
  EXPECT_GE(daemon.server.stats().respawns, 3u);
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeStress, TinySharedCacheChurnsWithoutDrift) {
  const tech::Technology t = tech::five_micron();
  // Four distinct keys (same numerics, distinct names) against a
  // two-entry shared tier: sequential passes evict constantly, and every
  // answer — shared hit, worker private-cache hit, or recompute — must
  // be identical.
  std::vector<core::OpAmpSpec> variants;
  std::vector<std::string> expected_json;
  for (int v = 0; v < 4; ++v) {
    core::OpAmpSpec spec = synth::paper_test_cases()[0];
    spec.name = util::format("A-churn-%d", v);
    expected_json.push_back(
        synth::result_json(synth::synthesize_opamp(t, spec, {})));
    variants.push_back(std::move(spec));
  }

  const std::string socket = test_socket_path();
  serve::ServeOptions o = serve_options(2, socket);
  o.shared_cache_capacity = 2;
  DaemonThread daemon(std::move(o));

  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const serve::ConnectReport report =
          connected_batch_retry(socket, t, {variants[v]});
      ASSERT_TRUE(report.outcomes[0].ok())
          << "pass " << pass << " variant " << v << ": "
          << report.outcomes[0].error;
      EXPECT_EQ(synth::result_json(report.outcomes[0].result),
                expected_json[v])
          << "pass " << pass << " variant " << v;
    }
  }
  const serve::ServeStats st = daemon.server.stats();
  EXPECT_EQ(st.sessions, 8u);
  EXPECT_GE(st.shared_cache_misses, 4u);
  EXPECT_EQ(daemon.stop(), 0);
}

}  // namespace
}  // namespace oasys
