// Shard-aware conformance + fault-path suite for src/shard/.
//
// The contract under test: `shard` is `batch` across processes.  Every
// ok() outcome must be bit-for-bit what a single SynthesisService returns
// (compared via the canonical oasys.result.v1 rendering), at every worker
// count; merged deterministic metrics must be worker-count-invariant; a
// worker that dies mid-batch must surface as per-spec errors plus a
// non-ok report, never as a hang or a silent partial success; and the
// wire layer must reject malformed bytes instead of crashing on them.
//
// Process-spawning tests exec the real CLI binary (OASYS_CLI_PATH, wired
// by CMake), so the conversation exercised here is exactly the shipped
// one.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/service.h"
#include "shard/coordinator.h"
#include "shard/wire.h"
#include "shard/worker.h"
#include "spice/sim_options.h"
#include "synth/oasys.h"
#include "synth/result_json.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/fingerprint.h"
#include "yield/service.h"
#include "yield/yield.h"

namespace oasys {
namespace {

// ---- wire primitives --------------------------------------------------------

TEST(WireScalars, RoundTripAllTypes) {
  shard::Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f64(-1.5e-12);
  w.str("two-stage");
  w.boolean(true);
  w.boolean(false);

  shard::Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -1.5e-12);
  EXPECT_EQ(r.str(), "two-stage");
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(WireScalars, DoublesCarryExactBitPatterns) {
  // The determinism contract needs bit-for-bit doubles: NaN payloads,
  // signed zero, infinities, and denormals must all survive the wire.
  const double nan_payload =
      std::bit_cast<double>(0x7ff80000dead0001ull);
  const std::vector<double> values = {
      0.0,    -0.0,
      nan_payload, std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -1.7976931348623157e308, 5e-6};
  shard::Writer w;
  for (const double v : values) w.f64(v);
  shard::Reader r(w.bytes());
  for (const double v : values) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(WireScalars, ReaderRejectsTruncationAndTrailingBytes) {
  shard::Writer w;
  w.u32(7);
  shard::Reader short_read(w.bytes());
  EXPECT_THROW(short_read.u64(), shard::WireError);

  shard::Reader trailing(w.bytes());
  trailing.u8();
  EXPECT_THROW(trailing.expect_end(), shard::WireError);

  // A string whose declared length exceeds the remaining bytes.
  shard::Writer bad;
  bad.u64(1000);  // length prefix
  bad.u8('x');
  shard::Reader r(bad.bytes());
  EXPECT_THROW(r.str(), shard::WireError);
}

// ---- struct round trips -----------------------------------------------------

TEST(WireStructs, SpecRoundTripsCanonically) {
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    shard::Writer w;
    shard::put_spec(w, spec);
    shard::Reader r(w.bytes());
    const core::OpAmpSpec back = shard::get_spec(r);
    r.expect_end();
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.canonical_string(), spec.canonical_string());
  }
}

TEST(WireStructs, SpecPreservesAdversarialDoubles) {
  core::OpAmpSpec spec = synth::paper_test_cases()[0];
  spec.noise_max = std::bit_cast<double>(0x7ff80000dead0001ull);  // NaN
  spec.offset_max = -0.0;
  spec.area_max = std::numeric_limits<double>::infinity();
  shard::Writer w;
  shard::put_spec(w, spec);
  shard::Reader r(w.bytes());
  const core::OpAmpSpec back = shard::get_spec(r);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.noise_max),
            std::bit_cast<std::uint64_t>(spec.noise_max));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.offset_max),
            std::bit_cast<std::uint64_t>(spec.offset_max));
  EXPECT_EQ(back.area_max, spec.area_max);
  // And the canonical fingerprint — the routing key — is unchanged.
  EXPECT_EQ(back.canonical_string(), spec.canonical_string());
}

TEST(WireStructs, TechnologyRoundTripsCanonically) {
  for (const tech::Technology& t :
       {tech::five_micron(), tech::three_micron()}) {
    shard::Writer w;
    shard::put_technology(w, t);
    shard::Reader r(w.bytes());
    const tech::Technology back = shard::get_technology(r);
    r.expect_end();
    EXPECT_EQ(back.canonical_string(), t.canonical_string());
  }
}

TEST(WireStructs, OptionsRoundTrip) {
  synth::SynthOptions o;
  o.rules_enabled = false;
  o.max_patches = 7;
  o.iref = 12.5e-6;
  o.pm_grace_deg = 3.25;
  o.jobs = 5;
  shard::Writer w;
  shard::put_synth_options(w, o);
  shard::Reader r(w.bytes());
  const synth::SynthOptions back = shard::get_synth_options(r);
  r.expect_end();
  EXPECT_EQ(synth::canonical_string(back), synth::canonical_string(o));
  EXPECT_EQ(back.jobs, o.jobs);  // jobs is outside the fingerprint

  service::ServiceOptions so;
  so.cache_enabled = false;
  so.cache_capacity = 3;
  so.queue_capacity = 9;
  shard::Writer w2;
  shard::put_service_options(w2, so);
  shard::Reader r2(w2.bytes());
  const service::ServiceOptions sback = shard::get_service_options(r2);
  r2.expect_end();
  EXPECT_EQ(sback.cache_enabled, so.cache_enabled);
  EXPECT_EQ(sback.cache_capacity, so.cache_capacity);
  EXPECT_EQ(sback.queue_capacity, so.queue_capacity);
}

TEST(WireStructs, OptionsCarryTranModeInWireAndFingerprint) {
  // The transient mode is semantically meaningful: it must survive the
  // wire (so a worker simulates in the coordinator's mode) and change the
  // options fingerprint (so fixed and adaptive results never share a
  // cache entry or a golden comparison).
  synth::SynthOptions o;
  o.tran_mode = sim::TranMode::kAdaptive;
  o.tran_rtol = 5e-4;
  o.tran_atol = 2e-7;
  shard::Writer w;
  shard::put_synth_options(w, o);
  shard::Reader r(w.bytes());
  const synth::SynthOptions back = shard::get_synth_options(r);
  r.expect_end();
  EXPECT_EQ(back.tran_mode, o.tran_mode);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.tran_rtol),
            std::bit_cast<std::uint64_t>(o.tran_rtol));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.tran_atol),
            std::bit_cast<std::uint64_t>(o.tran_atol));
  EXPECT_EQ(util::fnv1a64(synth::canonical_string(back)),
            util::fnv1a64(synth::canonical_string(o)));

  synth::SynthOptions fixed = o;
  fixed.tran_mode = sim::TranMode::kFixed;
  EXPECT_NE(synth::canonical_string(fixed), synth::canonical_string(o));
  synth::SynthOptions loose = o;
  loose.tran_rtol = 1e-2;
  EXPECT_NE(synth::canonical_string(loose), synth::canonical_string(o));
}

TEST(WireStructs, ResultRoundTripsBitForBit) {
  const tech::Technology t = tech::five_micron();
  const synth::SynthesisResult result =
      synth::synthesize_opamp(t, synth::paper_test_cases()[1], {});
  shard::Writer w;
  shard::put_result(w, result);
  shard::Reader r(w.bytes());
  const synth::SynthesisResult back = shard::get_result(r);
  r.expect_end();
  // Canonical rendering equality == bitwise equality of everything the
  // determinism contract covers.
  EXPECT_EQ(synth::result_json(back), synth::result_json(result));
  // The narrative travels too (it is just excluded from the rendering).
  EXPECT_EQ(back.candidates.size(), result.candidates.size());
  for (std::size_t i = 0; i < back.candidates.size(); ++i) {
    EXPECT_EQ(back.candidates[i].log.to_string(),
              result.candidates[i].log.to_string());
    EXPECT_EQ(back.candidates[i].trace.events.size(),
              result.candidates[i].trace.events.size());
  }
}

TEST(WireStructs, MetricsSnapshotRoundTrips) {
  obs::Registry::global().counter("wiretest.counter").add(42);
  obs::Registry::global().gauge("wiretest.gauge").set(2.5);
  obs::Registry::global()
      .duration_histogram("wiretest.hist")
      .observe(1e-3);
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  shard::Writer w;
  shard::put_metrics_snapshot(w, snap);
  shard::Reader r(w.bytes());
  const obs::MetricsSnapshot back = shard::get_metrics_snapshot(r);
  r.expect_end();
  ASSERT_EQ(back.entries.size(), snap.entries.size());
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].name, snap.entries[i].name);
    EXPECT_EQ(back.entries[i].kind, snap.entries[i].kind);
    EXPECT_EQ(back.entries[i].deterministic, snap.entries[i].deterministic);
    EXPECT_EQ(back.entries[i].counter, snap.entries[i].counter);
    EXPECT_EQ(back.entries[i].gauge, snap.entries[i].gauge);
    EXPECT_EQ(back.entries[i].histogram.counts,
              snap.entries[i].histogram.counts);
    EXPECT_EQ(back.entries[i].histogram.sum, snap.entries[i].histogram.sum);
  }
}

TEST(WireStructs, YieldParamsRoundTripWithoutTheJobsKnob) {
  yield::YieldParams p;
  p.samples = 200;
  p.seed = 0xfeedfacecafebeefull;
  p.jobs = 7;
  shard::Writer w;
  shard::put_yield_params(w, p);
  shard::Reader r(w.bytes());
  const yield::YieldParams back = shard::get_yield_params(r);
  r.expect_end();
  EXPECT_EQ(back.samples, p.samples);
  EXPECT_EQ(back.seed, p.seed);
  // jobs is a local execution knob, never wire state: the receiver
  // applies its own configuration.
  EXPECT_EQ(back.jobs, 0u);
}

TEST(WireStructs, YieldParamsRejectsCorruptSampleCounts) {
  for (const std::uint64_t samples :
       {std::uint64_t{0}, std::uint64_t{0x80000000ull},
        ~std::uint64_t{0}}) {
    shard::Writer w;
    w.u64(samples);
    w.u64(1);  // seed
    shard::Reader r(w.bytes());
    EXPECT_THROW(shard::get_yield_params(r), shard::WireError)
        << samples;
  }
}

TEST(WireStructs, YieldResultRoundTripsBitForBit) {
  const tech::Technology t = tech::five_micron();
  yield::YieldParams p;
  p.samples = 12;
  p.seed = 5;
  const yield::YieldResult result =
      yield::run_yield(t, synth::paper_test_cases()[1], p);
  shard::Writer w;
  shard::put_yield_result(w, result);
  shard::Reader r(w.bytes());
  const yield::YieldResult back = shard::get_yield_result(r);
  r.expect_end();
  // Canonical rendering equality covers the full determinism contract:
  // the embedded synthesis, every counter, and every metric double.
  EXPECT_EQ(yield::yield_result_json(back),
            yield::yield_result_json(result));
  EXPECT_EQ(back.ok, result.ok);
  EXPECT_EQ(back.pass_count, result.pass_count);
  EXPECT_EQ(back.metrics.size(), result.metrics.size());
}

TEST(WireStructs, ConfigRoundTripsAndChecksVersion) {
  shard::WorkerConfig c;
  c.shard = 3;
  c.tech = tech::three_micron();
  c.synth.iref = 10e-6;
  c.service.cache_capacity = 17;
  c.tech_hash = util::fnv1a64(c.tech.canonical_string());
  c.opts_hash = util::fnv1a64(synth::canonical_string(c.synth));
  shard::Writer w;
  shard::put_config(w, c);
  shard::Reader r(w.bytes());
  const shard::WorkerConfig back = shard::get_config(r);
  r.expect_end();
  EXPECT_EQ(back.shard, c.shard);
  EXPECT_EQ(back.tech.canonical_string(), c.tech.canonical_string());
  EXPECT_EQ(back.tech_hash, c.tech_hash);
  EXPECT_EQ(back.opts_hash, c.opts_hash);

  shard::WorkerConfig bad = c;
  bad.version = shard::kWireVersion + 1;
  shard::Writer w2;
  shard::put_config(w2, bad);
  shard::Reader r2(w2.bytes());
  EXPECT_THROW(shard::get_config(r2), shard::WireError);
}

// ---- frame I/O --------------------------------------------------------------

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  int read_fd() const { return fds[0]; }
  int write_fd() const { return fds[1]; }
  void close_read() {
    if (fds[0] >= 0) ::close(fds[0]);
    fds[0] = -1;
  }
  void close_write() {
    if (fds[1] >= 0) ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(WireFrames, RoundTripAndCleanEof) {
  Pipe p;
  ASSERT_TRUE(
      shard::write_frame(p.write_fd(), shard::FrameType::kRequest, "abc"));
  ASSERT_TRUE(shard::write_frame(p.write_fd(), shard::FrameType::kDone, ""));
  p.close_write();
  shard::Frame f;
  ASSERT_TRUE(shard::read_frame(p.read_fd(), &f));
  EXPECT_EQ(f.type, shard::FrameType::kRequest);
  EXPECT_EQ(f.payload, "abc");
  ASSERT_TRUE(shard::read_frame(p.read_fd(), &f));
  EXPECT_EQ(f.type, shard::FrameType::kDone);
  // Clean EOF at a frame boundary: absence of a frame, not an error.
  EXPECT_FALSE(shard::read_frame(p.read_fd(), &f));
}

TEST(WireFrames, RejectsBadMagic) {
  Pipe p;
  const char garbage[] = "this is not a frame header at all.......";
  ASSERT_EQ(::write(p.write_fd(), garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  p.close_write();
  shard::Frame f;
  EXPECT_THROW(shard::read_frame(p.read_fd(), &f), shard::WireError);
}

TEST(WireFrames, RejectsTruncationMidFrame) {
  Pipe p;
  shard::Writer header;
  header.u32(shard::kWireMagic);
  header.u32(static_cast<std::uint32_t>(shard::FrameType::kResult));
  header.u64(100);  // promises 100 payload bytes...
  const std::string& bytes = header.bytes();
  ASSERT_EQ(::write(p.write_fd(), bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  const char partial[] = "only a few";  // ...delivers 10
  ASSERT_EQ(::write(p.write_fd(), partial, 10), 10);
  p.close_write();
  shard::Frame f;
  EXPECT_THROW(shard::read_frame(p.read_fd(), &f), shard::WireError);
}

TEST(WireFrames, RejectsOversizedLength) {
  Pipe p;
  shard::Writer header;
  header.u32(shard::kWireMagic);
  header.u32(static_cast<std::uint32_t>(shard::FrameType::kResult));
  header.u64(shard::kMaxPayload + 1);
  const std::string& bytes = header.bytes();
  ASSERT_EQ(::write(p.write_fd(), bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  p.close_write();
  shard::Frame f;
  EXPECT_THROW(shard::read_frame(p.read_fd(), &f), shard::WireError);
}

// ---- shard key stability ----------------------------------------------------

TEST(ShardKey, Mix64PinnedValues) {
  // Pinned outputs: the router's partition must never move between
  // builds, platforms, or PRs — a silent change would strand every
  // distributed cache.
  EXPECT_EQ(util::mix64(0), 0u);
  EXPECT_EQ(util::mix64(1), 0x5692161d100b05e5ull);
  EXPECT_EQ(util::fnv1a64("caseA"), 0xa88f593b05ebd1b0ull);
  EXPECT_EQ(util::shard_index(util::fnv1a64("caseA"), 4), 3u);
  EXPECT_EQ(util::shard_index(util::fnv1a64("caseB"), 4), 0u);
}

TEST(ShardKey, SingleShardAbsorbsEverything) {
  for (std::uint64_t h : {0ull, 1ull, 0xffffffffffffffffull, 12345ull}) {
    EXPECT_EQ(util::shard_index(h, 1), 0u);
  }
}

TEST(ShardKey, PartitionIsReasonablyBalanced) {
  // FNV's low bits are weakly mixed; the mix64 finalizer is what makes
  // `% workers` usable.  1000 distinct keys over 4 shards: every shard
  // should see a healthy fraction (an unmixed FNV modulo would not).
  std::vector<std::size_t> load(4, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "spec-" + std::to_string(i);
    ++load[util::shard_index(util::fnv1a64(key), 4)];
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(load[i], 150u) << "shard " << i << " underloaded";
    EXPECT_LT(load[i], 350u) << "shard " << i << " overloaded";
  }
}

TEST(ShardKey, RouteMatchesServiceRequestKey) {
  // Routing and caching must agree on key bytes, or identical requests
  // stop co-locating and per-shard hit/miss behavior becomes
  // worker-count-dependent.
  const tech::Technology t = tech::five_micron();
  synth::SynthOptions opts;
  service::SynthesisService svc(t, opts);
  const std::string prefix =
      t.canonical_string() + "|" + synth::canonical_string(opts) + "|";
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    EXPECT_EQ(prefix + spec.canonical_string(), svc.request_key(spec));
    const std::size_t s2 = shard::route(svc.request_key(spec), 2);
    const std::size_t s4 = shard::route(svc.request_key(spec), 4);
    EXPECT_LT(s2, 2u);
    EXPECT_LT(s4, 4u);
  }
}

// ---- cross-process conformance ----------------------------------------------

shard::ShardOptions cli_shard_options(std::size_t workers) {
  shard::ShardOptions o;
  o.workers = workers;
  o.worker_command = OASYS_CLI_PATH;
  return o;
}

std::vector<core::OpAmpSpec> conformance_specs() {
  // The paper corpus plus repeats: repeats exercise each worker's private
  // cache, and their outcomes must be byte-identical to the originals'.
  std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  specs.push_back(specs[0]);
  specs.push_back(specs[1]);
  specs.push_back(specs[0]);
  return specs;
}

TEST(ShardConformance, BitwiseEquivalentToServiceAtEveryWorkerCount) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = conformance_specs();

  service::SynthesisService reference(t, {});
  const std::vector<synth::SynthesisResult> expected =
      reference.run_batch(specs);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    const shard::ShardReport report =
        shard::run_sharded_batch(t, {}, specs, cli_shard_options(workers));
    ASSERT_TRUE(report.infra_ok()) << "workers=" << workers;
    ASSERT_EQ(report.outcomes.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(report.outcomes[i].ok())
          << "workers=" << workers << " spec " << i << ": "
          << report.outcomes[i].error;
      EXPECT_EQ(synth::result_json(report.outcomes[i].result),
                synth::result_json(expected[i]))
          << "workers=" << workers << " spec " << i;
    }
    // Identical requests co-locate: every repeat is served by its home
    // shard's single-flight dedup (all requests land before the drain),
    // never recomputed.
    std::uint64_t deduped = 0;
    std::uint64_t misses = 0;
    for (const shard::WorkerSummary& w : report.workers) {
      deduped += w.stats.hits + w.stats.dedup_joins;
      misses += w.stats.misses;
    }
    EXPECT_EQ(deduped, 3u) << "workers=" << workers;
    EXPECT_EQ(misses, specs.size() - 3) << "workers=" << workers;
  }
}

TEST(ShardConformance, AdaptiveTranBitwiseEquivalentAtEveryWorkerCount) {
  // The adaptive integrator's step sequence is private to each transient,
  // so sharding must not perturb it: adaptive results are bit-for-bit the
  // local service's at every worker count, exactly like fixed-mode ones.
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = conformance_specs();
  synth::SynthOptions opts;
  opts.tran_mode = sim::TranMode::kAdaptive;
  opts.tran_rtol = 1e-3;
  opts.tran_atol = 1e-6;

  // The engine reads the process-default slots (SynthOptions carries the
  // resolved values for the wire and the fingerprint; workers apply them
  // via apply_config_defaults).  Mirror that application locally for the
  // in-process reference, and restore afterwards.
  const sim::TranMode saved_mode = sim::tran_mode_default();
  const sim::TranTolerance saved_tol = sim::tran_tolerance_default();
  sim::set_tran_mode_default(opts.tran_mode);
  sim::set_tran_tolerance_default(opts.tran_rtol, opts.tran_atol);

  service::SynthesisService reference(t, opts);
  const std::vector<synth::SynthesisResult> expected =
      reference.run_batch(specs);

  sim::set_tran_mode_default(saved_mode);
  sim::set_tran_tolerance_default(saved_tol.rtol, saved_tol.atol);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    const shard::ShardReport report =
        shard::run_sharded_batch(t, opts, specs, cli_shard_options(workers));
    ASSERT_TRUE(report.infra_ok()) << "workers=" << workers;
    ASSERT_EQ(report.outcomes.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(report.outcomes[i].ok())
          << "workers=" << workers << " spec " << i << ": "
          << report.outcomes[i].error;
      EXPECT_EQ(synth::result_json(report.outcomes[i].result),
                synth::result_json(expected[i]))
          << "workers=" << workers << " spec " << i;
    }
  }
}

// Comparable view of the deterministic section of a merged snapshot.
std::vector<std::string> deterministic_lines(
    const obs::MetricsSnapshot& snap) {
  std::vector<std::string> lines;
  for (const obs::MetricEntry& e : snap.entries) {
    if (!e.deterministic) continue;
    std::string line = e.name + "=";
    switch (e.kind) {
      case obs::MetricKind::kCounter:
        line += std::to_string(e.counter);
        break;
      case obs::MetricKind::kGauge:
        line += std::to_string(e.gauge);
        break;
      case obs::MetricKind::kHistogram:
        line += std::to_string(e.histogram.count) + "/" +
                std::to_string(e.histogram.sum);
        for (const std::uint64_t c : e.histogram.counts) {
          line += "," + std::to_string(c);
        }
        break;
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

TEST(ShardConformance, MergedDeterministicMetricsAreWorkerCountInvariant) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = conformance_specs();

  std::vector<std::vector<std::string>> sections;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const shard::ShardReport report =
        shard::run_sharded_batch(t, {}, specs, cli_shard_options(workers));
    ASSERT_TRUE(report.infra_ok());
    sections.push_back(deterministic_lines(report.merged_metrics));

    // The reflags that make invariance possible: exec.regions (one drain
    // per worker) and every shard.<i>.* entry live in the timing section.
    for (const obs::MetricEntry& e : report.merged_metrics.entries) {
      if (e.name == "exec.regions" ||
          e.name.rfind("shard.", 0) == 0) {
        EXPECT_FALSE(e.deterministic) << e.name;
      }
    }
    // Per-shard counters cover every worker and sum to the workload.
    std::uint64_t routed = 0;
    for (std::size_t i = 0; i < workers; ++i) {
      const obs::MetricEntry* req = report.merged_metrics.find(
          "shard." + std::to_string(i) + ".requests");
      ASSERT_NE(req, nullptr) << "workers=" << workers << " shard " << i;
      routed += req->counter;
    }
    EXPECT_EQ(routed, specs.size());
  }
  EXPECT_FALSE(sections[0].empty());
  EXPECT_EQ(sections[0], sections[1]);
  EXPECT_EQ(sections[0], sections[2]);
}

TEST(ShardConformance, MixedYieldBatchBitwiseEquivalentAtEveryWorkerCount) {
  const tech::Technology t = tech::five_micron();
  // Mixed traffic with repeats: synth and yield of the same spec must
  // co-locate (plain-key routing), and a repeated yield request must be
  // answered from its home worker's yield cache with identical bytes.
  std::vector<yield::Request> requests;
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    yield::Request synth_req;
    synth_req.spec = spec;
    requests.push_back(synth_req);
    yield::Request yield_req;
    yield_req.spec = spec;
    yield_req.is_yield = true;
    yield_req.params.samples = 12;
    yield_req.params.seed = 5;
    requests.push_back(yield_req);
  }
  requests.push_back(requests[1]);  // repeated yield request

  yield::YieldService reference(t, {});
  const std::vector<yield::Outcome> expected =
      reference.run_mixed(requests);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    const shard::ShardReport report = shard::run_sharded_requests(
        t, {}, requests, cli_shard_options(workers));
    ASSERT_TRUE(report.infra_ok()) << "workers=" << workers;
    ASSERT_EQ(report.outcomes.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const shard::ShardOutcome& o = report.outcomes[i];
      ASSERT_TRUE(o.ok()) << "workers=" << workers << " request " << i
                          << ": " << o.error;
      ASSERT_EQ(o.is_yield, requests[i].is_yield);
      if (o.is_yield) {
        EXPECT_EQ(yield::yield_result_json(o.yield),
                  yield::yield_result_json(expected[i].yield))
            << "workers=" << workers << " request " << i;
      } else {
        EXPECT_EQ(synth::result_json(o.result),
                  synth::result_json(expected[i].result))
            << "workers=" << workers << " request " << i;
      }
    }
    // Co-location: the synth and yield requests for one spec always land
    // on the same shard.
    for (std::size_t i = 0; i + 1 < report.outcomes.size(); i += 2) {
      EXPECT_EQ(report.outcomes[i].shard, report.outcomes[i + 1].shard)
          << "workers=" << workers << " pair " << i;
    }
  }
}

TEST(ShardConformance, MoreWorkersThanSpecsStillConforms) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = {synth::paper_test_cases()[0]};
  const shard::ShardReport report =
      shard::run_sharded_batch(t, {}, specs, cli_shard_options(6));
  ASSERT_TRUE(report.infra_ok());
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].ok());
  EXPECT_EQ(synth::result_json(report.outcomes[0].result),
            synth::result_json(
                synth::synthesize_opamp(t, specs[0], {})));
}

// ---- fault paths ------------------------------------------------------------

struct ScopedEnv {
  std::string name;
  ScopedEnv(const char* n, const char* value) : name(n) {
    ::setenv(n, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

TEST(ShardFaults, WorkerKilledMidBatchFailsItsSpecsOnly) {
  const ScopedEnv crash("OASYS_SHARD_TEST_CRASH", "B");
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  const shard::ShardReport report =
      shard::run_sharded_batch(t, {}, specs, cli_shard_options(2));

  EXPECT_FALSE(report.infra_ok());
  ASSERT_EQ(report.outcomes.size(), specs.size());
  std::size_t victim_shard = specs.size();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name == "B") victim_shard = report.outcomes[i].shard;
  }
  ASSERT_LT(victim_shard, 2u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const shard::ShardOutcome& o = report.outcomes[i];
    if (specs[i].name == "B") {
      // The crash fires before B's kResult: B must be an error, never a
      // partial success.
      EXPECT_FALSE(o.ok());
      EXPECT_NE(o.error.find("died before returning"), std::string::npos)
          << o.error;
    } else if (o.shard != victim_shard) {
      // Healthy shards are unaffected.
      EXPECT_TRUE(o.ok()) << o.error;
    }
  }
  const shard::WorkerSummary& victim = report.workers[victim_shard];
  EXPECT_FALSE(victim.ok());
  EXPECT_FALSE(victim.protocol_ok);
  ASSERT_TRUE(WIFEXITED(victim.exit_status));
  EXPECT_EQ(WEXITSTATUS(victim.exit_status), shard::kCrashHookExitCode);
}

TEST(ShardFaults, WorkerKilledOnReceiveFailsItsWholeShard) {
  const ScopedEnv crash("OASYS_SHARD_TEST_CRASH", "A:recv");
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  const shard::ShardReport report =
      shard::run_sharded_batch(t, {}, specs, cli_shard_options(2));

  EXPECT_FALSE(report.infra_ok());
  std::size_t victim_shard = 2;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name == "A") victim_shard = report.outcomes[i].shard;
  }
  ASSERT_LT(victim_shard, 2u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const shard::ShardOutcome& o = report.outcomes[i];
    if (o.shard == victim_shard) {
      EXPECT_FALSE(o.ok()) << specs[i].name;
    } else {
      EXPECT_TRUE(o.ok()) << o.error;
    }
  }
}

void noop_sigpipe_handler(int) {}

TEST(ShardFaults, CallerSigpipeHandlerSurvivesTheBatch) {
  // run_sharded_batch ignores SIGPIPE for the duration of the run so a
  // dying worker surfaces as EPIPE, but an embedding application's own
  // handler must be back in place when it returns.
  using Handler = void (*)(int);
  const Handler prev = std::signal(SIGPIPE, &noop_sigpipe_handler);
  ASSERT_NE(prev, SIG_ERR);
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = {synth::paper_test_cases()[0]};
  const shard::ShardReport report =
      shard::run_sharded_batch(t, {}, specs, cli_shard_options(1));
  EXPECT_TRUE(report.infra_ok());
  const Handler after = std::signal(SIGPIPE, prev);
  EXPECT_EQ(after, &noop_sigpipe_handler);
}

TEST(ShardFaults, WedgedWorkerIsKilledAtTheDeadline) {
  // A worker that is alive but silent (the `:wedge` hook parks it in a
  // pause() loop before its first result) must not block collection
  // forever: with --worker-timeout armed the coordinator kills it at the
  // deadline and answers its specs with a deterministic timeout error.
  const ScopedEnv crash("OASYS_SHARD_TEST_CRASH", "A:wedge");
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  shard::ShardOptions o = cli_shard_options(2);
  o.worker_timeout_s = 1.0;
  const shard::ShardReport report =
      shard::run_sharded_batch(t, {}, specs, o);

  EXPECT_FALSE(report.infra_ok());
  std::size_t victim_shard = 2;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name == "A") victim_shard = report.outcomes[i].shard;
  }
  ASSERT_LT(victim_shard, 2u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const shard::ShardOutcome& out = report.outcomes[i];
    if (out.shard == victim_shard) {
      EXPECT_FALSE(out.ok()) << specs[i].name;
      EXPECT_NE(out.error.find("timed out"), std::string::npos)
          << out.error;
    } else {
      EXPECT_TRUE(out.ok()) << out.error;
    }
  }
  const shard::WorkerSummary& victim = report.workers[victim_shard];
  EXPECT_FALSE(victim.ok());
  EXPECT_TRUE(victim.timed_out);
  // The deadline kill is SIGKILL, so the wait status records a signal.
  EXPECT_TRUE(WIFSIGNALED(victim.exit_status));
}

TEST(ShardFaults, GarbageSpeakingWorkerIsRejectedNotCrashedOn) {
  // /bin/echo prints its argument and exits: the coordinator reads bytes
  // that are not a frame, and must fail that worker cleanly.
  if (::access("/bin/echo", X_OK) != 0) GTEST_SKIP();
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  shard::ShardOptions o = cli_shard_options(1);
  o.worker_command = "/bin/echo";
  const shard::ShardReport report =
      shard::run_sharded_batch(t, {}, specs, o);
  EXPECT_FALSE(report.infra_ok());
  for (const shard::ShardOutcome& out : report.outcomes) {
    EXPECT_FALSE(out.ok());
  }
}

TEST(ShardFaults, NonexecutableWorkerCommandFailsCleanly) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = {synth::paper_test_cases()[0]};
  shard::ShardOptions o = cli_shard_options(2);
  o.worker_command = "/nonexistent/oasys-worker";
  const shard::ShardReport report =
      shard::run_sharded_batch(t, {}, specs, o);
  EXPECT_FALSE(report.infra_ok());
  EXPECT_FALSE(report.outcomes[0].ok());
  for (const shard::WorkerSummary& w : report.workers) {
    EXPECT_FALSE(w.ok());
    // exec failure exits 127 in the forked child.
    ASSERT_TRUE(WIFEXITED(w.exit_status));
    EXPECT_EQ(WEXITSTATUS(w.exit_status), 127);
  }
}

TEST(ShardFaults, InvalidOptionsThrow) {
  const tech::Technology t = tech::five_micron();
  shard::ShardOptions zero = cli_shard_options(0);
  EXPECT_THROW(shard::run_sharded_batch(t, {}, {}, zero),
               std::invalid_argument);
  shard::ShardOptions no_cmd = cli_shard_options(1);
  no_cmd.worker_command.clear();
  EXPECT_THROW(shard::run_sharded_batch(t, {}, {}, no_cmd),
               std::invalid_argument);
}

// ---- worker-side rejection of malformed input -------------------------------

// Feeds raw bytes to worker_main as its stdin and returns its exit code.
// All writes land before the call, so the single-threaded read phase of
// the worker cannot deadlock (error paths write nothing to out).
int run_worker_on_bytes(const std::string& bytes) {
  Pipe in;
  Pipe out;
  EXPECT_EQ(::write(in.write_fd(), bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  in.close_write();
  const int rc = shard::worker_main(in.read_fd(), out.write_fd());
  out.close_write();
  return rc;
}

std::string piped_frame_bytes(shard::FrameType type, const std::string& payload) {
  Pipe p;
  EXPECT_TRUE(shard::write_frame(p.write_fd(), type, payload));
  p.close_write();
  std::string all;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(p.read_fd(), buf, sizeof(buf))) > 0) {
    all.append(buf, static_cast<std::size_t>(n));
  }
  return all;
}

TEST(ShardWorker, RejectsGarbageInsteadOfCrashing) {
  EXPECT_NE(run_worker_on_bytes("complete garbage, not a frame at all"), 0);
}

TEST(ShardWorker, RejectsTruncatedConfig) {
  std::string bytes =
      piped_frame_bytes(shard::FrameType::kConfig, std::string(40, '\0'));
  EXPECT_NE(run_worker_on_bytes(bytes), 0);
  // Truncation mid-frame, too.
  bytes.resize(bytes.size() / 2);
  EXPECT_NE(run_worker_on_bytes(bytes), 0);
}

TEST(ShardWorker, RejectsWrongFirstFrame) {
  EXPECT_NE(run_worker_on_bytes(piped_frame_bytes(shard::FrameType::kRun, "")),
            0);
}

TEST(ShardWorker, RefusesOnFingerprintMismatch) {
  shard::WorkerConfig c;
  c.tech = tech::five_micron();
  c.tech_hash = util::fnv1a64(c.tech.canonical_string()) ^ 1;  // drifted
  c.opts_hash = util::fnv1a64(synth::canonical_string(c.synth));
  shard::Writer w;
  shard::put_config(w, c);
  EXPECT_NE(run_worker_on_bytes(
                piped_frame_bytes(shard::FrameType::kConfig, w.bytes())),
            0);
}

TEST(ShardWorker, EofBeforeRunIsAnError) {
  shard::WorkerConfig c;
  c.tech = tech::five_micron();
  c.tech_hash = util::fnv1a64(c.tech.canonical_string());
  c.opts_hash = util::fnv1a64(synth::canonical_string(c.synth));
  shard::Writer w;
  shard::put_config(w, c);
  EXPECT_NE(run_worker_on_bytes(
                piped_frame_bytes(shard::FrameType::kConfig, w.bytes())),
            0);
}

}  // namespace
}  // namespace oasys
