// Golden-equivalence tests for SimWorkspace buffer reuse: every analysis
// must produce bit-for-bit identical numbers whether its scratch buffers
// are fresh, reused, external, or absent, and at every --jobs setting.
// The AC and DC baselines below replicate the exact pre-workspace code
// shape (per-iteration allocation, by-value LU) so the equivalence is
// checked against the arithmetic this repo shipped before workspace reuse.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "numeric/interpolate.h"
#include "numeric/linear.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/noise.h"
#include "spice/small_signal.h"
#include "spice/sweep.h"
#include "spice/tran.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::sim {
namespace {

using ckt::Circuit;
using ckt::Waveform;
using tech::Technology;
using util::um;
using Cplx = std::complex<double>;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

// A differential-pair amplifier with a mirror load, bias chain, and output
// stage — big enough (multi-device, MOS caps) that the workspace buffers
// see realistic fill patterns, small enough to keep the suite fast.
Circuit amp_circuit() {
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto inp = c.node("inp");
  const auto inn = c.node("inn");
  const auto tail = c.node("tail");
  const auto d1 = c.node("d1");
  const auto out = c.node("out");
  const auto vbn = c.node("vbn");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(t.vdd));
  c.add_vsource("VIP", inp, ckt::kGround, Waveform::ac(2.5, 0.5, 0.0));
  c.add_vsource("VIN", inn, ckt::kGround, Waveform::ac(2.5, 0.5, 180.0));
  c.add_isource("IB", vdd, vbn, Waveform::dc(util::ua(20.0)));
  c.add_mosfet("MB", vbn, vbn, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(50.0), um(10.0));
  c.add_mosfet("MT", tail, vbn, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(100.0), um(10.0));
  c.add_mosfet("M1", d1, inp, tail, ckt::kGround, mos::MosType::kNmos,
               um(60.0), um(5.0));
  c.add_mosfet("M2", out, inn, tail, ckt::kGround, mos::MosType::kNmos,
               um(60.0), um(5.0));
  c.add_mosfet("M3", d1, d1, vdd, vdd, mos::MosType::kPmos, um(30.0),
               um(5.0));
  c.add_mosfet("M4", out, d1, vdd, vdd, mos::MosType::kPmos, um(30.0),
               um(5.0));
  c.add_capacitor("CL", out, ckt::kGround, 5e-12);
  return c;
}

// The stiff circuit from DcHomotopy.SteppingRescuesCrippledNewton: with the
// Newton budget cut low the solver falls through to the continuation
// strategies, so a workspace threaded through is reused across all three.
Circuit stiff_circuit() {
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto vbn = c.node("vbn");
  const auto vbn2 = c.node("vbn2");
  const auto out = c.node("out");
  const auto mid = c.node("mid");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(10.0));
  c.add_resistor("RREF", vdd, vbn2, 300e3);
  c.add_mosfet("MB1", vbn, vbn, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(50.0), um(10.0));
  c.add_mosfet("MB2", vbn2, vbn2, vbn, ckt::kGround, mos::MosType::kNmos,
               um(50.0), um(5.0));
  c.add_mosfet("M5", mid, vbn, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(100.0), um(10.0));
  c.add_mosfet("M6", out, mid, vdd, vdd, mos::MosType::kPmos, um(200.0),
               um(5.0));
  c.add_mosfet("M7", out, vbn, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(100.0), um(10.0));
  c.add_resistor("RMID", vdd, mid, 200e3);
  return c;
}

void expect_same_op(const OpResult& a, const OpResult& b) {
  ASSERT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.solution, b.solution);  // element-wise bit-for-bit
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].id, b.devices[i].id);
    EXPECT_EQ(a.devices[i].gm, b.devices[i].gm);
    EXPECT_EQ(a.devices[i].gds, b.devices[i].gds);
  }
}

// ---- DC -----------------------------------------------------------------------

TEST(WorkspaceGoldenDc, WithWithoutAndReusedWorkspaceIdentical) {
  const Circuit c = amp_circuit();
  const OpResult plain = dc_operating_point(c, tech5());
  ASSERT_TRUE(plain.converged);

  SimWorkspace ws;
  const OpResult fresh = dc_operating_point(c, tech5(), {}, &ws);
  expect_same_op(plain, fresh);

  // Dirty the workspace on a different (differently sized) circuit, then
  // reuse it: buffers resize and results stay identical.
  const Circuit other = stiff_circuit();
  (void)dc_operating_point(other, tech5(), {}, &ws);
  const OpResult reused = dc_operating_point(c, tech5(), {}, &ws);
  expect_same_op(plain, reused);
}

TEST(WorkspaceGoldenDc, ContinuationStrategiesIdenticalWithWorkspace) {
  const Circuit c = stiff_circuit();
  OpOptions crippled;
  crippled.max_iterations = 16;  // plain Newton fails; continuation rescues
  const OpResult plain = dc_operating_point(c, tech5(), crippled);
  ASSERT_TRUE(plain.converged);
  ASSERT_NE(plain.strategy, "newton");

  SimWorkspace ws;
  const OpResult with_ws = dc_operating_point(c, tech5(), crippled, &ws);
  expect_same_op(plain, with_ws);
}

TEST(WorkspaceGoldenDc, MatchesPreWorkspaceByValueNewton) {
  // Replicate the seed's warm Newton loop exactly: fresh Jacobian, residual,
  // RHS, and step vectors per iteration, by-value LU.  The workspace path
  // must match it bit for bit.
  const Circuit c = amp_circuit();
  const OpResult cold = dc_operating_point(c, tech5());
  ASSERT_TRUE(cold.converged);
  OpOptions warm;
  warm.initial_guess = cold.solution;

  NonlinearSystem sys(c, tech5());
  const std::size_t n = sys.layout().size();
  const std::size_t nv = sys.layout().num_node_unknowns();
  std::vector<double> x = warm.initial_guess;
  NonlinearSystem::EvalOptions eval_opts;
  eval_opts.gmin = warm.gmin;
  bool converged = false;
  for (int iter = 0; iter < warm.max_iterations && !converged; ++iter) {
    num::RealMatrix jac(n, n);
    std::vector<double> f(n);
    sys.eval(x, eval_opts, &jac, &f);
    auto lu = num::lu_factor(std::move(jac));
    ASSERT_FALSE(lu.singular);
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -f[i];
    const std::vector<double> dx = num::lu_solve(lu, rhs);
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nv; ++i) {
      max_dv = std::max(max_dv, std::abs(dx[i]));
    }
    double scale = 1.0;
    if (max_dv > warm.vlimit_step) scale = warm.vlimit_step / max_dv;
    for (std::size_t i = 0; i < n; ++i) x[i] += scale * dx[i];
    if (max_dv < warm.vntol) {
      sys.eval(x, eval_opts, nullptr, &f);
      double max_node_residual = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        max_node_residual = std::max(max_node_residual, std::abs(f[i]));
      }
      if (max_node_residual < warm.abstol) converged = true;
    }
  }
  ASSERT_TRUE(converged);

  SimWorkspace ws;
  const OpResult prod = dc_operating_point(c, tech5(), warm, &ws);
  ASSERT_TRUE(prod.converged);
  EXPECT_EQ(prod.solution, x);
}

TEST(WorkspaceGoldenDc, ContinuationKnobDefaultsMatchClassicSchedule) {
  // The OpOptions continuation knobs default to the values that were
  // hard-coded before they became tunable; a default-constructed run and an
  // explicitly-set run must be the same solve.
  OpOptions defaults;
  EXPECT_EQ(defaults.gmin_step_start, 1e-2);
  EXPECT_EQ(defaults.gmin_step_ratio, 0.1);
  EXPECT_EQ(defaults.source_step_initial, 0.1);
  EXPECT_EQ(defaults.source_step_max, 0.25);
  EXPECT_EQ(defaults.source_step_min, 1e-3);

  const Circuit c = stiff_circuit();
  OpOptions crippled;
  crippled.max_iterations = 16;
  OpOptions explicit_opts = crippled;
  explicit_opts.gmin_step_start = 1e-2;
  explicit_opts.gmin_step_ratio = 0.1;
  explicit_opts.source_step_initial = 0.1;
  explicit_opts.source_step_max = 0.25;
  explicit_opts.source_step_min = 1e-3;
  const OpResult a = dc_operating_point(c, tech5(), crippled);
  const OpResult b = dc_operating_point(c, tech5(), explicit_opts);
  ASSERT_TRUE(a.converged);
  expect_same_op(a, b);
}

// ---- AC -----------------------------------------------------------------------

TEST(WorkspaceGoldenAc, BitwiseIdenticalAcrossJobs) {
  const Circuit c = amp_circuit();
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  const auto freqs = num::logspace(10.0, 1e8, 41);

  const AcResult serial = ac_analysis(c, tech5(), op, freqs, 1);
  ASSERT_TRUE(serial.ok) << serial.error;
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    const AcResult r = ac_analysis(c, tech5(), op, freqs, jobs);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.solutions, serial.solutions) << "jobs=" << jobs;
  }
}

TEST(WorkspaceGoldenAc, MatchesPreWorkspacePerPointSolve) {
  // Replicate the seed's AC loop exactly: a fresh complex matrix per
  // frequency point, element-wise fill, by-value factor and solve.
  const Circuit c = amp_circuit();
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  const auto freqs = num::logspace(10.0, 1e8, 41);

  NonlinearSystem sys(c, tech5());
  const MnaLayout& layout = sys.layout();
  const std::size_t n = layout.size();
  num::RealMatrix g, cap;
  build_small_signal_matrices(c, layout, op, &g, &cap);
  std::vector<Cplx> rhs(n, Cplx{});
  for (std::size_t k = 0; k < c.vsources().size(); ++k) {
    const auto& v = c.vsources()[k];
    if (v.wave.ac_mag() != 0.0) {
      const double ph = util::rad(v.wave.ac_phase_deg());
      rhs[layout.branch_index(k)] = std::polar(v.wave.ac_mag(), ph);
    }
  }
  std::vector<std::vector<Cplx>> expected(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double w = util::kTwoPi * freqs[i];
    num::ComplexMatrix y(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t col = 0; col < n; ++col) {
        y(r, col) = Cplx(g(r, col), w * cap(r, col));
      }
    }
    auto lu = num::lu_factor(std::move(y));
    ASSERT_FALSE(lu.singular);
    expected[i] = num::lu_solve(lu, rhs);
  }

  for (const std::size_t jobs :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const AcResult r = ac_analysis(c, tech5(), op, freqs, jobs);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.solutions, expected) << "jobs=" << jobs;
  }
}

// ---- Transient ----------------------------------------------------------------

TEST(WorkspaceGoldenTran, RepeatRunsBitwiseIdentical) {
  const Circuit c = amp_circuit();
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  TranOptions to;
  to.tstop = 1e-6;
  to.dt = 1e-8;
  const TranResult a = transient(c, tech5(), op, to);
  const TranResult b = transient(c, tech5(), op, to);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.states, b.states);
}

// ---- Sweeps -------------------------------------------------------------------

TEST(WorkspaceGoldenSweep, AcAndTranSweepsJobsInvariant) {
  Circuit c = amp_circuit();
  const std::vector<double> values = {2.3, 2.4, 2.5, 2.6, 2.7};
  const auto freqs = num::logspace(1e3, 1e7, 9);
  TranOptions to;
  to.tstop = 2e-7;
  to.dt = 1e-8;

  const AcSweepResult ac1 =
      ac_sweep_vsource(c, tech5(), "VIP", values, freqs, {}, 1);
  ASSERT_TRUE(ac1.ok) << ac1.error;
  const TranSweepResult tr1 =
      tran_sweep_vsource(c, tech5(), "VIP", values, to, {}, 1);
  ASSERT_TRUE(tr1.ok) << tr1.error;

  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    const AcSweepResult ac =
        ac_sweep_vsource(c, tech5(), "VIP", values, freqs, {}, jobs);
    ASSERT_TRUE(ac.ok) << ac.error;
    ASSERT_EQ(ac.points.size(), ac1.points.size());
    for (std::size_t i = 0; i < ac.points.size(); ++i) {
      EXPECT_EQ(ac.points[i].solutions, ac1.points[i].solutions)
          << "jobs=" << jobs << " point=" << i;
      EXPECT_EQ(ac.ops[i].solution, ac1.ops[i].solution);
    }
    const TranSweepResult tr =
        tran_sweep_vsource(c, tech5(), "VIP", values, to, {}, jobs);
    ASSERT_TRUE(tr.ok) << tr.error;
    ASSERT_EQ(tr.runs.size(), tr1.runs.size());
    for (std::size_t i = 0; i < tr.runs.size(); ++i) {
      EXPECT_EQ(tr.runs[i].states, tr1.runs[i].states)
          << "jobs=" << jobs << " point=" << i;
    }
  }

  // dc_sweep_vsource reuses one workspace across all warm-started points;
  // identical to point-by-point calls without one.
  const DcSweepResult sweep =
      dc_sweep_vsource(c, tech5(), "VIP", values);
  ASSERT_TRUE(sweep.ok) << sweep.error;
  OpOptions warm;
  const auto src = c.find_vsource("VIP");
  ASSERT_TRUE(src.has_value());
  for (std::size_t i = 0; i < values.size(); ++i) {
    Circuit local = c;
    local.vsource(*src).wave = local.vsource(*src).wave.with_dc(values[i]);
    const OpResult ref = dc_operating_point(local, tech5(), warm);
    ASSERT_TRUE(ref.converged);
    EXPECT_EQ(sweep.points[i].solution, ref.solution) << "point=" << i;
    warm.initial_guess = ref.solution;
  }
}

// ---- Device eval: scalar vs batch ---------------------------------------

// The batched SoA device path must be bit-for-bit interchangeable with the
// scalar reference in every analysis, at every jobs setting.  These tests
// run each analysis twice with the mode forced and compare the results
// element-wise with EXPECT_EQ — no tolerances anywhere.

OpOptions with_mode(DeviceEval mode) {
  OpOptions o;
  o.device_eval = mode;
  return o;
}

TEST(DeviceEvalGolden, DcScalarAndBatchBitwiseIdentical) {
  SimWorkspace ws_s, ws_b;
  for (const Circuit& c : {amp_circuit(), stiff_circuit()}) {
    const OpResult scalar = dc_operating_point(
        c, tech5(), with_mode(DeviceEval::kScalar), &ws_s);
    const OpResult batch = dc_operating_point(
        c, tech5(), with_mode(DeviceEval::kBatch), &ws_b);
    ASSERT_TRUE(scalar.converged);
    expect_same_op(scalar, batch);
  }
}

TEST(DeviceEvalGolden, ContinuationStrategiesIdenticalUnderBatch) {
  // Crippled Newton falls through gmin stepping / source stepping; the
  // whole continuation schedule must follow the same trajectory.
  const Circuit c = stiff_circuit();
  OpOptions scalar = with_mode(DeviceEval::kScalar);
  scalar.max_iterations = 16;
  OpOptions batch = with_mode(DeviceEval::kBatch);
  batch.max_iterations = 16;
  const OpResult a = dc_operating_point(c, tech5(), scalar);
  const OpResult b = dc_operating_point(c, tech5(), batch);
  ASSERT_TRUE(a.converged);
  ASSERT_NE(a.strategy, "newton");
  expect_same_op(a, b);
}

TEST(DeviceEvalGolden, AcAndNoiseIdenticalFromBatchOperatingPoint) {
  const Circuit c = amp_circuit();
  const OpResult op_s =
      dc_operating_point(c, tech5(), with_mode(DeviceEval::kScalar));
  const OpResult op_b =
      dc_operating_point(c, tech5(), with_mode(DeviceEval::kBatch));
  ASSERT_TRUE(op_s.converged);
  ASSERT_TRUE(op_b.converged);
  const auto freqs = num::logspace(10.0, 1e8, 31);

  const AcResult ac_s = ac_analysis(c, tech5(), op_s, freqs, 1);
  ASSERT_TRUE(ac_s.ok) << ac_s.error;
  for (const std::size_t jobs :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const AcResult ac_b = ac_analysis(c, tech5(), op_b, freqs, jobs);
    ASSERT_TRUE(ac_b.ok) << ac_b.error;
    EXPECT_EQ(ac_b.solutions, ac_s.solutions) << "jobs=" << jobs;
  }

  const auto out = c.find_node("out");
  ASSERT_TRUE(out.has_value());
  const NoiseResult n_s = noise_analysis(c, tech5(), op_s, *out, freqs);
  const NoiseResult n_b = noise_analysis(c, tech5(), op_b, *out, freqs);
  ASSERT_TRUE(n_s.ok) << n_s.error;
  ASSERT_TRUE(n_b.ok) << n_b.error;
  EXPECT_EQ(n_s.output_psd, n_b.output_psd);
}

TEST(DeviceEvalGolden, TransientScalarAndBatchBitwiseIdentical) {
  const Circuit c = amp_circuit();
  const OpResult op =
      dc_operating_point(c, tech5(), with_mode(DeviceEval::kScalar));
  ASSERT_TRUE(op.converged);
  TranOptions to_s;
  to_s.tstop = 1e-6;
  to_s.dt = 1e-8;
  TranOptions to_b = to_s;
  to_s.device_eval = DeviceEval::kScalar;
  to_b.device_eval = DeviceEval::kBatch;
  const TranResult a = transient(c, tech5(), op, to_s);
  const TranResult b = transient(c, tech5(), op, to_b);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.states, b.states);
}

TEST(DeviceEvalGolden, SweepsIdenticalAcrossModesAndJobs) {
  Circuit c = amp_circuit();
  const std::vector<double> values = {2.3, 2.4, 2.5, 2.6, 2.7};
  const auto freqs = num::logspace(1e3, 1e7, 9);
  TranOptions to;
  to.tstop = 2e-7;
  to.dt = 1e-8;

  const AcSweepResult ac_ref = ac_sweep_vsource(
      c, tech5(), "VIP", values, freqs, with_mode(DeviceEval::kScalar), 1);
  ASSERT_TRUE(ac_ref.ok) << ac_ref.error;
  const TranSweepResult tr_ref = tran_sweep_vsource(
      c, tech5(), "VIP", values, to, with_mode(DeviceEval::kScalar), 1);
  ASSERT_TRUE(tr_ref.ok) << tr_ref.error;

  for (const std::size_t jobs :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const AcSweepResult ac = ac_sweep_vsource(
        c, tech5(), "VIP", values, freqs, with_mode(DeviceEval::kBatch),
        jobs);
    ASSERT_TRUE(ac.ok) << ac.error;
    for (std::size_t i = 0; i < ac.points.size(); ++i) {
      EXPECT_EQ(ac.ops[i].solution, ac_ref.ops[i].solution)
          << "jobs=" << jobs << " point=" << i;
      EXPECT_EQ(ac.points[i].solutions, ac_ref.points[i].solutions)
          << "jobs=" << jobs << " point=" << i;
    }
    const TranSweepResult tr = tran_sweep_vsource(
        c, tech5(), "VIP", values, to, with_mode(DeviceEval::kBatch), jobs);
    ASSERT_TRUE(tr.ok) << tr.error;
    for (std::size_t i = 0; i < tr.runs.size(); ++i) {
      EXPECT_EQ(tr.runs[i].states, tr_ref.runs[i].states)
          << "jobs=" << jobs << " point=" << i;
    }
  }
}

TEST(DeviceEvalGolden, WarmStartedDcSweepIdenticalUnderBatch) {
  Circuit c = amp_circuit();
  const std::vector<double> values = {2.3, 2.4, 2.5, 2.6, 2.7};
  const DcSweepResult scalar = dc_sweep_vsource(
      c, tech5(), "VIP", values, with_mode(DeviceEval::kScalar));
  const DcSweepResult batch = dc_sweep_vsource(
      c, tech5(), "VIP", values, with_mode(DeviceEval::kBatch));
  ASSERT_TRUE(scalar.ok) << scalar.error;
  ASSERT_TRUE(batch.ok) << batch.error;
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(batch.points[i].solution, scalar.points[i].solution)
        << "point=" << i;
  }
}

}  // namespace
}  // namespace oasys::sim
