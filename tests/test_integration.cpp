// End-to-end integration: synthesize -> build netlist -> simulate -> the
// measured performance agrees with the plan's predictions within the bands
// a first-order design flow can promise (this is the paper's SPICE
// verification loop, Table 2).
#include <gtest/gtest.h>

#include "netlist/spice_writer.h"
#include "spice/dc.h"
#include "synth/netlist_builder.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::synth {
namespace {

using tech::Technology;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

const SynthesisResult& synth_for(const core::OpAmpSpec& spec) {
  static std::map<std::string, SynthesisResult> cache;
  auto it = cache.find(spec.name);
  if (it == cache.end()) {
    it = cache.emplace(spec.name, synthesize_opamp(tech5(), spec)).first;
  }
  return it->second;
}

const MeasuredOpAmp& measure_for(const core::OpAmpSpec& spec) {
  static std::map<std::string, MeasuredOpAmp> cache;
  auto it = cache.find(spec.name);
  if (it == cache.end()) {
    const SynthesisResult& r = synth_for(spec);
    if (!r.success()) {
      MeasuredOpAmp failed;
      failed.error = "synthesis failed for case " + spec.name;
      it = cache.emplace(spec.name, std::move(failed)).first;
    } else {
      it =
          cache.emplace(spec.name, measure_opamp(*r.best(), tech5())).first;
    }
  }
  return it->second;
}

// ---- netlist structure ---------------------------------------------------------

TEST(Netlist, BuildsForAllCases) {
  for (const auto& spec : paper_test_cases()) {
    const SynthesisResult& r = synth_for(spec);
    ASSERT_TRUE(r.success()) << spec.name;
    ckt::Circuit c;
    const BuiltOpAmp nodes = build_opamp(*r.best(), tech5(), c);
    EXPECT_GT(c.mosfets().size(), 4u) << spec.name;
    EXPECT_NE(nodes.out, ckt::kGround);
    // Every device in the design appears in the netlist.
    EXPECT_EQ(c.mosfets().size(), r.best()->devices.size()) << spec.name;
  }
}

TEST(Netlist, NoDanglingNodesInStandaloneDeck) {
  for (const auto& spec : paper_test_cases()) {
    const SynthesisResult& r = synth_for(spec);
    ASSERT_TRUE(r.success());
    ckt::Circuit c = build_standalone_opamp(*r.best(), tech5());
    EXPECT_TRUE(c.dangling_nodes().empty())
        << spec.name << ": "
        << (c.dangling_nodes().empty() ? "" : c.dangling_nodes()[0]);
  }
}

TEST(Netlist, SpiceDeckExports) {
  const SynthesisResult& r = synth_for(spec_case_a());
  ASSERT_TRUE(r.success());
  const ckt::Circuit c = build_standalone_opamp(*r.best(), tech5());
  const std::string deck = to_spice_deck(c, tech5());
  EXPECT_NE(deck.find("MM1"), std::string::npos);
  EXPECT_NE(deck.find(".MODEL"), std::string::npos);
}

// ---- simulation closes the loop ---------------------------------------------------

class MeasuredCase : public ::testing::TestWithParam<int> {
 protected:
  core::OpAmpSpec spec() const { return paper_test_cases()[GetParam()]; }
};

TEST_P(MeasuredCase, OperatingPointSaturatesSignalDevices) {
  const MeasuredOpAmp& m = measure_for(spec());
  ASSERT_TRUE(m.ok) << m.error;
  // The signal-path devices must sit in saturation at the nulled OP.
  for (const char* role : {"M1", "M2", "ML_out", "M5"}) {
    for (const auto& bad : m.non_saturated) {
      EXPECT_NE(bad, role) << "case " << spec().name;
    }
  }
}

TEST_P(MeasuredCase, GainWithinBandOfPrediction) {
  const SynthesisResult& r = synth_for(spec());
  const MeasuredOpAmp& m = measure_for(spec());
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_NEAR(m.perf.gain_db, r.best()->predicted.gain_db, 6.0)
      << "case " << spec().name;
}

TEST_P(MeasuredCase, GbwWithinBandOfPrediction) {
  const SynthesisResult& r = synth_for(spec());
  const MeasuredOpAmp& m = measure_for(spec());
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_GT(m.perf.gbw, 0.0);
  EXPECT_NEAR(m.perf.gbw / r.best()->predicted.gbw, 1.0, 0.40)
      << "case " << spec().name;
}

TEST_P(MeasuredCase, MeetsGainSpecInSimulation) {
  const MeasuredOpAmp& m = measure_for(spec());
  ASSERT_TRUE(m.ok);
  EXPECT_GE(m.perf.gain_db, spec().gain_min_db - 2.0)
      << "case " << spec().name;
}

TEST_P(MeasuredCase, PowerWithinBudget) {
  const MeasuredOpAmp& m = measure_for(spec());
  ASSERT_TRUE(m.ok);
  EXPECT_LE(m.perf.power, spec().power_max * 1.1) << spec().name;
  EXPECT_GT(m.perf.power, 0.0);
}

INSTANTIATE_TEST_SUITE_P(PaperCases, MeasuredCase,
                         ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           return std::string("case") +
                                  paper_test_cases()[info.param].name;
                         });

TEST(MeasuredOffset, OtaOffsetMatchesMirrorPrediction) {
  // Case A selects the one-stage OTA whose systematic offset comes from
  // the mirror Vds mismatch; the simulator must reproduce it within a
  // factor of ~2 (same physics, first-order estimate).
  const SynthesisResult& r = synth_for(spec_case_a());
  ASSERT_TRUE(r.success());
  ASSERT_EQ(r.best()->style, OpAmpStyle::kOneStageOta);
  const MeasuredOpAmp& m = measure_for(spec_case_a());
  ASSERT_TRUE(m.ok);
  EXPECT_GT(m.perf.offset, util::mv(0.5));
  EXPECT_LT(m.perf.offset, util::mv(25.0));
}

TEST(MeasuredOffset, TwoStageOffsetSmall) {
  const SynthesisResult& r = synth_for(spec_case_b());
  ASSERT_TRUE(r.success());
  const MeasuredOpAmp& m = measure_for(spec_case_b());
  ASSERT_TRUE(m.ok);
  EXPECT_LT(m.perf.offset, util::mv(3.0));
}

TEST(MeasuredSlew, MeetsSpecWithinBand) {
  const MeasuredOpAmp& m = measure_for(spec_case_a());
  ASSERT_TRUE(m.ok);
  EXPECT_GT(m.perf.slew, spec_case_a().slew_min * 0.7);
}

TEST(MeasuredSwing, CaseBReachesLargeSwing) {
  const MeasuredOpAmp& m = measure_for(spec_case_b());
  ASSERT_TRUE(m.ok);
  EXPECT_GE(m.perf.swing_pos, 3.2);
  EXPECT_GE(m.perf.swing_neg, 3.2);
}

}  // namespace
}  // namespace oasys::synth

namespace oasys::synth {
namespace {

// Property sweep: synthesize across a spec grid and close every design
// through the simulator.  This is the tool's core contract — the plans'
// first-order predictions hold up in verification across the design space,
// not just on the three paper cases.
struct GridSpec {
  double gain_db;
  double gbw_mhz;
  double slew_v_us;
  double cl_pf;
};

class SynthesisGrid : public ::testing::TestWithParam<GridSpec> {};

TEST_P(SynthesisGrid, SimulationTracksPrediction) {
  const GridSpec& g = GetParam();
  core::OpAmpSpec spec;
  spec.name = "grid";
  spec.gain_min_db = g.gain_db;
  spec.gbw_min = util::mhz(g.gbw_mhz);
  spec.pm_min_deg = 45.0;
  spec.slew_min = util::v_per_us(g.slew_v_us);
  spec.cload = util::pf(g.cl_pf);
  spec.icmr_lo = -1.0;
  spec.icmr_hi = 1.0;

  const SynthesisResult r = synthesize_opamp(tech5(), spec);
  ASSERT_TRUE(r.success()) << "gain " << g.gain_db;
  MeasureOptions mo;
  mo.measure_icmr = false;  // keep the sweep fast
  mo.measure_slew = false;
  const MeasuredOpAmp m = measure_opamp(*r.best(), tech5(), mo);
  ASSERT_TRUE(m.ok) << m.error;

  EXPECT_NEAR(m.perf.gain_db, r.best()->predicted.gain_db, 7.0)
      << r.best()->style_name();
  EXPECT_NEAR(m.perf.gbw / r.best()->predicted.gbw, 1.0, 0.45)
      << r.best()->style_name();
  // The spec axes themselves hold in simulation (gain is a hard floor;
  // GBW gets the usual verification band).
  EXPECT_GE(m.perf.gain_db, spec.gain_min_db - 2.0);
  EXPECT_GE(m.perf.gbw, spec.gbw_min * 0.7);
  // Every signal-path device stays saturated.
  for (const char* role : {"M1", "M2", "M5"}) {
    for (const auto& bad : m.non_saturated) {
      EXPECT_NE(bad, role) << r.best()->style_name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SynthesisGrid,
    ::testing::Values(GridSpec{40.0, 0.5, 0.5, 20.0},
                      GridSpec{50.0, 1.0, 1.0, 10.0},
                      GridSpec{60.0, 2.0, 2.0, 10.0},
                      GridSpec{70.0, 1.0, 1.0, 5.0},
                      GridSpec{80.0, 3.0, 3.0, 5.0},
                      GridSpec{90.0, 2.0, 2.0, 10.0},
                      GridSpec{100.0, 4.0, 4.0, 5.0},
                      GridSpec{105.0, 1.0, 1.0, 5.0}),
    [](const auto& info) {
      return std::string("g") +
             std::to_string(static_cast<int>(info.param.gain_db)) + "c" +
             std::to_string(static_cast<int>(info.param.cl_pf));
    });

}  // namespace
}  // namespace oasys::synth
