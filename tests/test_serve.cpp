// Daemon-mode serving suite for src/serve/.
//
// The contract under test: `oasys serve` changes where a batch runs,
// never what it returns.  A connected batch must be bit-for-bit what a
// local SynthesisService produces, at every worker count, across many
// consecutive requests on one daemon (that persistence is the feature);
// the shared result-cache tier must answer repeats without touching a
// worker; and every fault — a worker killed mid-cycle, a worker wedged
// past its deadline, a drain racing in-flight work — must surface as
// deterministic per-spec errors or a clean stop, never as a hang.
//
// Library-level tests run the Server in-process on a thread with real
// `oasys shard-worker --session` children (OASYS_CLI_PATH, wired by
// CMake); the CLI-level test execs the shipped daemon and client and
// compares stdout bytes.  Every test here is hang-prone by construction,
// so the suite carries a hard ctest TIMEOUT.
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/server.h"
#include "service/service.h"
#include "spice/sim_options.h"
#include "shard/wire.h"
#include "synth/oasys.h"
#include "synth/result_json.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/fingerprint.h"
#include "util/text.h"
#include "yield/service.h"
#include "yield/yield.h"

namespace oasys {
namespace {

std::string test_socket_path() {
  static int counter = 0;
  return util::format("/tmp/oasys-serve-test-%d-%d.sock",
                      static_cast<int>(::getpid()), counter++);
}

serve::ServeOptions serve_options(std::size_t workers,
                                  const std::string& socket) {
  serve::ServeOptions o;
  o.socket_path = socket;
  o.workers = workers;
  o.worker_command = OASYS_CLI_PATH;
  return o;
}

// In-process daemon: the Server runs on its own thread; stop() drains it
// and returns run()'s exit code.  The destructor always drains, so a
// failing ASSERT never leaks the worker pool.
struct DaemonThread {
  serve::Server server;
  std::thread th;
  int rc = -1;

  explicit DaemonThread(serve::ServeOptions options,
                        synth::SynthOptions synth_opts = {})
      : server(tech::five_micron(), synth_opts, std::move(options)) {
    th = std::thread([this] { rc = server.run(); });
  }
  int stop() {
    server.request_stop();
    if (th.joinable()) th.join();
    return rc;
  }
  ~DaemonThread() {
    server.request_stop();
    if (th.joinable()) th.join();
    ::unlink(server.options().socket_path.c_str());
  }
};

// The daemon binds its socket on the run() thread, so the first client
// can race it; retry the connection-refused window only.
serve::ConnectReport connected_batch_retry(
    const std::string& socket, const tech::Technology& t,
    const synth::SynthOptions& opts,
    const std::vector<core::OpAmpSpec>& specs) {
  for (int attempt = 0;; ++attempt) {
    try {
      return serve::run_connected_batch(socket, t, opts, specs);
    } catch (const std::runtime_error& e) {
      if (attempt >= 1000 ||
          std::string(e.what()).find("cannot connect") == std::string::npos) {
        throw;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

// True once a raw connect to the socket succeeds (the probe session
// closes immediately, which the daemon treats as an idle disconnect).
bool wait_listening(const std::string& path, int attempts = 1000) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) return false;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int i = 0; i < attempts; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd >= 0) {
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        ::close(fd);
        return true;
      }
      ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

struct ScopedEnv {
  std::string name;
  ScopedEnv(const char* n, const char* value) : name(n) {
    ::setenv(n, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

const obs::MetricEntry* find_counter(const obs::MetricsSnapshot& snap,
                                     const char* name) {
  const obs::MetricEntry* e = snap.find(name);
  EXPECT_NE(e, nullptr) << name;
  if (e != nullptr) {
    EXPECT_EQ(e->kind, obs::MetricKind::kCounter) << name;
    // Daemon counters depend on the daemon's history, never this batch.
    EXPECT_FALSE(e->deterministic) << name;
  }
  return e;
}

// ---- conformance ------------------------------------------------------------

TEST(ServeConformance, ByteIdenticalAcrossWorkerCountsAndRequests) {
  const tech::Technology t = tech::five_micron();
  // The paper corpus plus repeats, as in the shard conformance suite:
  // repeats exercise the cache tiers and must answer identically.
  std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  specs.push_back(specs[0]);
  specs.push_back(specs[1]);
  specs.push_back(specs[0]);

  service::SynthesisService reference(t, {});
  const std::vector<synth::SynthesisResult> expected =
      reference.run_batch(specs);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    const std::string socket = test_socket_path();
    DaemonThread daemon(serve_options(workers, socket));

    // Three consecutive requests on one daemon: the first fills both
    // cache tiers, the rest must replay identical bytes from them.
    serve::ConnectReport last;
    for (int request = 0; request < 3; ++request) {
      last = connected_batch_retry(socket, t, {}, specs);
      ASSERT_EQ(last.outcomes.size(), specs.size());
      for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(last.outcomes[i].ok())
            << "workers=" << workers << " request " << request << " spec "
            << i << ": " << last.outcomes[i].error;
        EXPECT_EQ(synth::result_json(last.outcomes[i].result),
                  synth::result_json(expected[i]))
            << "workers=" << workers << " request " << request << " spec "
            << i;
      }
    }

    // Shared-tier accounting is worker-count-invariant: request 1 misses
    // every lookup (results land only after dispatch), requests 2 and 3
    // hit every one.
    const serve::ServeStats st = daemon.server.stats();
    EXPECT_EQ(st.sessions, 3u) << "workers=" << workers;
    EXPECT_EQ(st.batches, 3u) << "workers=" << workers;
    EXPECT_EQ(st.shared_cache_misses, specs.size()) << "workers=" << workers;
    EXPECT_EQ(st.shared_cache_hits, 2 * specs.size())
        << "workers=" << workers;
    EXPECT_EQ(st.respawns, 0u) << "workers=" << workers;
    EXPECT_EQ(st.worker_timeouts, 0u) << "workers=" << workers;

    // The same counters ride along in the merged kMetrics frame.
    const obs::MetricEntry* batches =
        find_counter(last.metrics, "serve.batches");
    if (batches != nullptr) EXPECT_EQ(batches->counter, 3u);
    const obs::MetricEntry* hits =
        find_counter(last.metrics, "serve.shared_cache.hits");
    if (hits != nullptr) EXPECT_EQ(hits->counter, 2 * specs.size());

    EXPECT_EQ(daemon.stop(), 0) << "workers=" << workers;
  }
}

TEST(ServeConformance, SecondIdenticalBatchIsServedFromTheSharedTier) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  service::SynthesisService reference(t, {});
  const std::vector<synth::SynthesisResult> expected =
      reference.run_batch(specs);

  const std::string socket = test_socket_path();
  DaemonThread daemon(serve_options(2, socket));

  connected_batch_retry(socket, t, {}, specs);
  const serve::ConnectReport second =
      connected_batch_retry(socket, t, {}, specs);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(second.outcomes[i].ok()) << second.outcomes[i].error;
    EXPECT_EQ(synth::result_json(second.outcomes[i].result),
              synth::result_json(expected[i]));
  }
  // Every lookup hit, so no worker saw the second batch: the summed
  // worker service stats for it are empty.
  EXPECT_EQ(second.stats.requests, 0u);
  const serve::ServeStats st = daemon.server.stats();
  EXPECT_EQ(st.shared_cache_hits, specs.size());
  EXPECT_EQ(st.shared_cache_misses, specs.size());
  const obs::MetricEntry* hits =
      find_counter(second.metrics, "serve.shared_cache.hits");
  if (hits != nullptr) EXPECT_EQ(hits->counter, specs.size());
  EXPECT_EQ(daemon.stop(), 0);
}

serve::MixedConnectReport connected_mixed_retry(
    const std::string& socket, const tech::Technology& t,
    const synth::SynthOptions& opts,
    const std::vector<yield::Request>& requests) {
  for (int attempt = 0;; ++attempt) {
    try {
      return serve::run_connected_mixed(socket, t, opts, requests);
    } catch (const std::runtime_error& e) {
      if (attempt >= 1000 ||
          std::string(e.what()).find("cannot connect") == std::string::npos) {
        throw;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

TEST(ServeConformance, MixedYieldTrafficByteIdenticalToLocalService) {
  const tech::Technology t = tech::five_micron();
  // Synth + yield of each paper case, plus a repeated yield request: the
  // daemon must answer with exactly a local YieldService's bytes, and the
  // repeat must come from the shared tier with the yield frame type.
  std::vector<yield::Request> requests;
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    yield::Request synth_req;
    synth_req.spec = spec;
    requests.push_back(synth_req);
    yield::Request yield_req;
    yield_req.spec = spec;
    yield_req.is_yield = true;
    yield_req.params.samples = 12;
    yield_req.params.seed = 5;
    requests.push_back(yield_req);
  }

  yield::YieldService reference(t, {});
  const std::vector<yield::Outcome> expected =
      reference.run_mixed(requests);

  for (const std::size_t workers : {1u, 2u}) {
    const std::string socket = test_socket_path();
    DaemonThread daemon(serve_options(workers, socket));

    // Two consecutive mixed batches: the first fills both cache tiers,
    // the second must replay identical bytes without touching a worker.
    serve::MixedConnectReport last;
    for (int request = 0; request < 2; ++request) {
      last = connected_mixed_retry(socket, t, {}, requests);
      ASSERT_EQ(last.outcomes.size(), requests.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const yield::Outcome& o = last.outcomes[i];
        ASSERT_TRUE(o.ok()) << "workers=" << workers << " request "
                            << request << " item " << i << ": " << o.error;
        ASSERT_EQ(o.is_yield, requests[i].is_yield);
        EXPECT_EQ(yield::outcome_json(o), yield::outcome_json(expected[i]))
            << "workers=" << workers << " request " << request << " item "
            << i;
      }
    }
    // The repeat was answered entirely from the shared tier.
    EXPECT_EQ(last.stats.requests, 0u) << "workers=" << workers;
    const serve::ServeStats st = daemon.server.stats();
    EXPECT_EQ(st.shared_cache_misses, requests.size())
        << "workers=" << workers;
    EXPECT_EQ(st.shared_cache_hits, requests.size())
        << "workers=" << workers;
    EXPECT_EQ(daemon.stop(), 0) << "workers=" << workers;
  }
}

TEST(ServeConformance, AdaptiveTranByteIdenticalToLocal) {
  // Daemon-vs-local for the adaptive transient: the serving path adds
  // worker processes, a shared cache tier, and the wire in between, and
  // none of that may perturb a single adaptive step.  Daemon answers are
  // bit-for-bit the local service's.
  const tech::Technology t = tech::five_micron();
  std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  specs.push_back(specs[0]);  // repeat: adaptive results cache like fixed

  synth::SynthOptions opts;
  opts.tran_mode = sim::TranMode::kAdaptive;
  opts.tran_rtol = 1e-3;
  opts.tran_atol = 1e-6;

  // Apply the mode locally the way a worker's apply_config_defaults does,
  // run the in-process reference, then restore.
  const sim::TranMode saved_mode = sim::tran_mode_default();
  const sim::TranTolerance saved_tol = sim::tran_tolerance_default();
  sim::set_tran_mode_default(opts.tran_mode);
  sim::set_tran_tolerance_default(opts.tran_rtol, opts.tran_atol);
  service::SynthesisService reference(t, opts);
  const std::vector<synth::SynthesisResult> expected =
      reference.run_batch(specs);
  sim::set_tran_mode_default(saved_mode);
  sim::set_tran_tolerance_default(saved_tol.rtol, saved_tol.atol);

  const std::string socket = test_socket_path();
  DaemonThread daemon(serve_options(2, socket), opts);
  // Two requests: the second replays the first's bytes from the shared
  // tier, so a nondeterministic adaptive run would show up as a diff
  // between request 1 (computed) and the local reference.
  for (int request = 0; request < 2; ++request) {
    const serve::ConnectReport report =
        connected_batch_retry(socket, t, opts, specs);
    ASSERT_EQ(report.outcomes.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(report.outcomes[i].ok())
          << "request " << request << " spec " << i << ": "
          << report.outcomes[i].error;
      EXPECT_EQ(synth::result_json(report.outcomes[i].result),
                synth::result_json(expected[i]))
          << "request " << request << " spec " << i;
    }
  }
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeConformance, ConfigFingerprintMismatchIsRefused) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = {synth::paper_test_cases()[0]};
  const std::string socket = test_socket_path();
  DaemonThread daemon(serve_options(1, socket));
  ASSERT_TRUE(wait_listening(socket));

  synth::SynthOptions drifted;
  drifted.iref = 12.5e-6;  // not what the daemon was started with
  try {
    serve::run_connected_batch(socket, t, drifted, specs);
    FAIL() << "mismatched options were accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos)
        << e.what();
  }
  // The refusal is per-session; a matching client still works.
  const serve::ConnectReport ok =
      connected_batch_retry(socket, t, {}, specs);
  ASSERT_TRUE(ok.outcomes[0].ok()) << ok.outcomes[0].error;
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeConformance, InvalidOptionsThrow) {
  serve::ServeOptions no_socket = serve_options(2, "");
  EXPECT_THROW(serve::Server(tech::five_micron(), {}, no_socket),
               std::invalid_argument);
  serve::ServeOptions zero = serve_options(0, test_socket_path());
  EXPECT_THROW(serve::Server(tech::five_micron(), {}, zero),
               std::invalid_argument);
  serve::ServeOptions no_cmd = serve_options(1, test_socket_path());
  no_cmd.worker_command.clear();
  EXPECT_THROW(serve::Server(tech::five_micron(), {}, no_cmd),
               std::invalid_argument);
  serve::ServeOptions long_path =
      serve_options(1, "/tmp/" + std::string(200, 'x'));
  EXPECT_THROW(serve::Server(tech::five_micron(), {}, long_path),
               std::invalid_argument);
}

// ---- fault paths ------------------------------------------------------------

TEST(ServeFaults, KilledWorkerAnswersDeterministicallyAndRespawns) {
  const ScopedEnv crash("OASYS_SHARD_TEST_CRASH", "A");
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  const std::string socket = test_socket_path();
  DaemonThread daemon(serve_options(1, socket));

  // First request: the (only) worker exits before returning A's result.
  // A must come back as a deterministic error, never a hang or a partial
  // success; the specs that died with it error the same way.
  const serve::ConnectReport first =
      connected_batch_retry(socket, t, {}, specs);
  ASSERT_EQ(first.outcomes.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name != "A") continue;
    EXPECT_FALSE(first.outcomes[i].ok());
    EXPECT_NE(first.outcomes[i].error.find("died before returning a result"),
              std::string::npos)
        << first.outcomes[i].error;
  }
  EXPECT_GE(daemon.server.stats().worker_errors, 1u);

  // Second request: a fresh key (same numerics, new name, so nothing is
  // cached and the crash hook does not match) must be computed by the
  // respawned worker.
  core::OpAmpSpec fresh = synth::paper_test_cases()[1];
  fresh.name = "B-respawned";
  const serve::ConnectReport second =
      connected_batch_retry(socket, t, {}, {fresh});
  ASSERT_EQ(second.outcomes.size(), 1u);
  ASSERT_TRUE(second.outcomes[0].ok()) << second.outcomes[0].error;
  EXPECT_EQ(synth::result_json(second.outcomes[0].result),
            synth::result_json(synth::synthesize_opamp(t, fresh, {})));

  const serve::ServeStats st = daemon.server.stats();
  EXPECT_GE(st.respawns, 1u);
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeFaults, WedgedWorkerIsKilledAtTheDeadlineNotWaitedOn) {
  const ScopedEnv crash("OASYS_SHARD_TEST_CRASH", "A:wedge");
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  const std::string socket = test_socket_path();
  serve::ServeOptions o = serve_options(1, socket);
  o.worker_timeout_s = 1.0;
  DaemonThread daemon(std::move(o));

  // The worker wedges (alive but silent) before its first result.  The
  // deadline must kill it and answer every in-flight spec; without the
  // deadline this call would never return.
  const serve::ConnectReport report =
      connected_batch_retry(socket, t, {}, specs);
  ASSERT_EQ(report.outcomes.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_FALSE(report.outcomes[i].ok()) << specs[i].name;
    EXPECT_NE(report.outcomes[i].error.find("timed out before returning"),
              std::string::npos)
        << report.outcomes[i].error;
  }
  const serve::ServeStats st = daemon.server.stats();
  EXPECT_EQ(st.worker_timeouts, 1u);
  const obs::MetricEntry* timeouts =
      find_counter(report.metrics, "serve.worker_timeouts");
  if (timeouts != nullptr) EXPECT_EQ(timeouts->counter, 1u);
  // Stopping with the replacement spawn still pending must drain, not
  // hang on a worker that no longer exists.
  EXPECT_EQ(daemon.stop(), 0);
}

// ---- drain ------------------------------------------------------------------

TEST(ServeDrain, StopMidCycleAnswersInFlightWorkThenExits) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  service::SynthesisService reference(t, {});
  const std::vector<synth::SynthesisResult> expected =
      reference.run_batch(specs);

  const std::string socket = test_socket_path();
  DaemonThread daemon(serve_options(2, socket));
  ASSERT_TRUE(wait_listening(socket));

  // Raw client, so the stop can be interposed mid-conversation: the
  // first frame back proves the cycle is dispatched, and stopping right
  // then exercises drain with submitted work still in flight.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket.c_str(), socket.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  {
    shard::WorkerConfig config;
    config.tech = t;
    config.tech_hash = util::fnv1a64(t.canonical_string());
    config.opts_hash = util::fnv1a64(synth::canonical_string(config.synth));
    shard::Writer w;
    shard::put_config(w, config);
    ASSERT_TRUE(
        shard::write_frame(fd, shard::FrameType::kConfig, w.bytes()));
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    shard::Writer w;
    w.u64(i);
    shard::put_spec(w, specs[i]);
    ASSERT_TRUE(
        shard::write_frame(fd, shard::FrameType::kRequest, w.bytes()));
  }
  ASSERT_TRUE(shard::write_frame(fd, shard::FrameType::kRun, {}));

  std::vector<bool> have(specs.size(), false);
  std::vector<std::string> got(specs.size());
  bool done = false;
  bool stopped = false;
  shard::Frame frame;
  while (!done) {
    ASSERT_TRUE(shard::read_frame(fd, &frame))
        << "daemon closed the connection before answering the cycle";
    if (!stopped) {
      daemon.server.request_stop();
      stopped = true;
    }
    switch (frame.type) {
      case shard::FrameType::kResult: {
        shard::Reader r(frame.payload);
        const std::uint64_t seq = r.u64();
        ASSERT_LT(seq, specs.size());
        ASSERT_FALSE(have[seq]);
        ASSERT_TRUE(r.boolean()) << "spec " << seq << " failed: " << r.str();
        got[seq] = synth::result_json(shard::get_result(r));
        have[seq] = true;
        break;
      }
      case shard::FrameType::kMetrics:
        break;
      case shard::FrameType::kDone:
        done = true;
        break;
      default:
        FAIL() << "unexpected frame type "
               << static_cast<unsigned>(frame.type);
    }
  }
  ::close(fd);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(have[i]) << "spec " << i << " never answered";
    EXPECT_EQ(got[i], synth::result_json(expected[i])) << "spec " << i;
  }
  EXPECT_EQ(daemon.stop(), 0);
  EXPECT_GE(daemon.server.stats().drain_seconds, 0.0);
  // The socket is unlinked at drain: new clients are turned away.
  EXPECT_THROW(serve::run_connected_batch(socket, t, {}, specs),
               std::runtime_error);
}

// ---- CLI end to end ---------------------------------------------------------

struct CliProc {
  pid_t pid = -1;
  int out_fd = -1;
};

CliProc spawn_cli(const std::vector<std::string>& args) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<std::string> argv_store = args;
    std::vector<char*> argv;
    std::string exe = OASYS_CLI_PATH;
    argv.push_back(exe.data());
    for (std::string& a : argv_store) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(exe.c_str(), argv.data());
    std::_Exit(127);
  }
  ::close(fds[1]);
  return CliProc{pid, fds[0]};
}

std::string drain_fd(int fd) {
  std::string all;
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0 ||
         (n < 0 && errno == EINTR)) {
    if (n > 0) all.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return all;
}

int wait_cli(pid_t pid) {
  int status = -1;
  pid_t r;
  do {
    r = ::waitpid(pid, &status, 0);
  } while (r < 0 && errno == EINTR);
  return status;
}

struct CliResult {
  int status = -1;
  std::string out;
};

CliResult run_cli(const std::vector<std::string>& args) {
  const CliProc p = spawn_cli(args);
  CliResult r;
  r.out = drain_fd(p.out_fd);
  r.status = wait_cli(p.pid);
  return r;
}

TEST(ServeCli, ConnectOutputByteIdenticalToLocalBatch) {
  const CliResult local = run_cli({"batch", OASYS_SPEC_DIR, "--no-stats"});
  ASSERT_TRUE(WIFEXITED(local.status));
  ASSERT_EQ(WEXITSTATUS(local.status), 0);
  ASSERT_FALSE(local.out.empty());

  for (const char* workers : {"1", "2", "4"}) {
    const std::string socket = test_socket_path();
    const CliProc daemon =
        spawn_cli({"serve", "--socket", socket, "--workers", workers});
    if (!wait_listening(socket)) {
      ::kill(daemon.pid, SIGKILL);
      wait_cli(daemon.pid);
      ::close(daemon.out_fd);
      FAIL() << "daemon never started listening on " << socket;
    }

    // Three consecutive requests against one resident pool, each
    // byte-identical to the local batch (both under --no-stats, which
    // drops the timing-bearing footer from each).
    for (int request = 0; request < 3; ++request) {
      const CliResult got = run_cli(
          {"batch", OASYS_SPEC_DIR, "--connect", socket, "--no-stats"});
      ASSERT_TRUE(WIFEXITED(got.status)) << "workers=" << workers;
      EXPECT_EQ(WEXITSTATUS(got.status), 0) << "workers=" << workers;
      EXPECT_EQ(got.out, local.out)
          << "workers=" << workers << " request " << request;
    }

    ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);
    const int status = wait_cli(daemon.pid);
    ASSERT_TRUE(WIFEXITED(status)) << "workers=" << workers;
    EXPECT_EQ(WEXITSTATUS(status), 0) << "workers=" << workers;
    const std::string daemon_out = drain_fd(daemon.out_fd);
    EXPECT_NE(daemon_out.find("oasys serve:"), std::string::npos);
    EXPECT_NE(daemon_out.find("drained in"), std::string::npos);
    ::unlink(socket.c_str());
  }
}

}  // namespace
}  // namespace oasys
