// Golden regression suite: canonical result JSON pinned byte-for-byte.
//
// The corpus is every shipped spec (specs/*.spec) under every shipped
// technology file (tech/*.tech).  Each synthesis result renders through
// synth::result_json (oasys.result.v1: %.17g doubles, fixed field order,
// no timing, no prose) and must equal the checked-in golden exactly — a
// single changed bit anywhere in the sized schematic, the selection, or
// the predicted performance fails the suite.
//
// When a change is *intentional* (a designer improvement that moves the
// numbers), regenerate and commit the goldens:
//
//   build/tools/oasys golden specs --tech tech/cmos5.tech --dir tests/golden
//   build/tools/oasys golden specs --tech tech/cmos3.tech --dir tests/golden
//
// and explain the delta in the commit message.  A diff you cannot explain
// is a regression, not a refresh.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/spec_parser.h"
#include "synth/oasys.h"
#include "synth/result_json.h"
#include "tech/tech_parser.h"
#include "yield/yield.h"

namespace oasys {
namespace {

struct GoldenCase {
  const char* tech;  // stem under tech/
  const char* spec;  // stem under specs/
};

std::string source_path(const std::string& rel) {
  return std::string(OASYS_SOURCE_DIR) + "/" + rel;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

class GoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTest, ResultJsonMatchesGoldenByteForByte) {
  const GoldenCase& c = GetParam();

  const tech::ParseResult tr = tech::load_tech_file(
      source_path(std::string("tech/") + c.tech + ".tech"));
  ASSERT_TRUE(tr.ok()) << tr.log.to_string();
  const core::SpecParseResult sr = core::load_opamp_spec_file(
      source_path(std::string("specs/") + c.spec + ".spec"));
  ASSERT_TRUE(sr.ok()) << sr.log.to_string();

  const synth::SynthesisResult result =
      synth::synthesize_opamp(tr.technology, sr.spec, {});
  const std::string rendered = synth::result_json(result) + "\n";

  const std::string golden_rel = std::string("tests/golden/") + c.tech +
                                 "_" + c.spec + ".json";
  std::string golden;
  ASSERT_TRUE(read_file(source_path(golden_rel), &golden))
      << "missing golden " << golden_rel
      << " — regenerate with: oasys golden specs/" << c.spec
      << ".spec --tech tech/" << c.tech << ".tech --dir tests/golden";

  EXPECT_EQ(rendered, golden)
      << "synthesis output drifted from " << golden_rel
      << ".  If the change is intentional, regenerate with `oasys golden "
         "specs --tech tech/"
      << c.tech << ".tech --dir tests/golden` and commit the diff.";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GoldenTest,
    ::testing::Values(GoldenCase{"cmos5", "caseA"},
                      GoldenCase{"cmos5", "caseB"},
                      GoldenCase{"cmos5", "caseC"},
                      GoldenCase{"cmos3", "caseA"},
                      GoldenCase{"cmos3", "caseB"},
                      GoldenCase{"cmos3", "caseC"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.tech) + "_" + info.param.spec;
    });

// Yield goldens: the full Monte-Carlo analysis pinned byte-for-byte at a
// fixed (samples, seed).  A drift here means the RNG streams, the sample
// measurement bench, or the statistics reduction changed.  Regenerate
// intentional changes with:
//
//   build/tools/oasys golden specs/caseA.spec specs/caseB.spec
//       --tech tech/cmos5.tech --yield-samples 16 --yield-seed 1
//       --dir tests/golden
//
// (one command line; wrapped here for width)
class YieldGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(YieldGoldenTest, YieldJsonMatchesGoldenByteForByte) {
  const GoldenCase& c = GetParam();

  const tech::ParseResult tr = tech::load_tech_file(
      source_path(std::string("tech/") + c.tech + ".tech"));
  ASSERT_TRUE(tr.ok()) << tr.log.to_string();
  const core::SpecParseResult sr = core::load_opamp_spec_file(
      source_path(std::string("specs/") + c.spec + ".spec"));
  ASSERT_TRUE(sr.ok()) << sr.log.to_string();

  yield::YieldParams params;
  params.samples = 16;
  params.seed = 1;
  const yield::YieldResult result =
      yield::run_yield(tr.technology, sr.spec, params);
  const std::string rendered = yield::yield_result_json(result) + "\n";

  const std::string golden_rel = std::string("tests/golden/") + c.tech +
                                 "_" + c.spec + "_yield.json";
  std::string golden;
  ASSERT_TRUE(read_file(source_path(golden_rel), &golden))
      << "missing golden " << golden_rel;

  EXPECT_EQ(rendered, golden)
      << "yield output drifted from " << golden_rel
      << ".  If the change is intentional, regenerate with `oasys golden "
         "specs/"
      << c.spec << ".spec --tech tech/" << c.tech
      << ".tech --yield-samples 16 --yield-seed 1 --dir tests/golden` "
         "and commit the diff.";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, YieldGoldenTest,
    ::testing::Values(GoldenCase{"cmos5", "caseA"},
                      GoldenCase{"cmos5", "caseB"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.tech) + "_" + info.param.spec;
    });

// The rendering itself must be stable against representation quirks the
// goldens cannot witness directly.
TEST(ResultJson, EscapesAndNullsAreWellFormed) {
  synth::SynthesisResult r;
  r.spec.name = "quote\" backslash\\ control\x01";
  const std::string json = synth::result_json(r);
  EXPECT_NE(json.find("quote\\\" backslash\\\\ control\\u0001"),
            std::string::npos);
  // No selected style renders as JSON null, not as an empty string.
  EXPECT_NE(json.find("\"best_index\": null"), std::string::npos);
}

}  // namespace
}  // namespace oasys
