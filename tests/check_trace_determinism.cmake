# Tracing byte-identity check (ctest script).
#
# Contract: enabling distributed tracing changes no deterministic output
# byte.  For every cell of the {--jobs 1/2/4} x {local batch, shard
# --workers 1/2/4} matrix this script runs the same mixed synthesis/yield
# workload untraced and traced (--trace-json to a side file), then
# asserts
#   * the traced run's stdout equals the untraced run's stdout once the
#     timing-class "trace written to ..." notice is stripped — summary
#     tables, yield percentages, every deterministic byte;
#   * the deterministic section of the metrics JSON (everything before
#     "timing") is byte-identical traced vs untraced;
#   * the traced run actually produced a non-empty trace file (the check
#     must not pass vacuously because tracing silently no-oped).
# The daemon leg of the same cross lives in test_trace_wire.cpp
# (TracedServe) and the CI perf job's served-trace export.
#
# Expects: OASYS_CLI (path to the oasys binary), SPEC_DIR (directory of
# .spec files), WORK_DIR (writable scratch directory).

# One row of the matrix: run `${mode_args}` untraced and traced and
# compare.  `tag` names the scratch files.
function(check_cell tag)
  set(mode_args ${ARGN})
  execute_process(
    COMMAND ${OASYS_CLI} ${mode_args}
            --metrics-json ${WORK_DIR}/trace_det_${tag}_plain.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE plain_out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "untraced run ${tag} failed (exit ${rc})")
  endif()
  execute_process(
    COMMAND ${OASYS_CLI} ${mode_args}
            --metrics-json ${WORK_DIR}/trace_det_${tag}_traced.json
            --trace-json ${WORK_DIR}/trace_det_${tag}.trace.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE traced_out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "traced run ${tag} failed (exit ${rc})")
  endif()

  # Strip the timing-class stdout notices: the traced run's trace-file
  # announcement, and the metrics-file announcement on both sides (the
  # two runs write metrics to different scratch paths).
  string(REGEX REPLACE "metrics written to [^\n]*\n" "" plain_out
         "${plain_out}")
  string(REGEX REPLACE "metrics written to [^\n]*\n" "" traced_out
         "${traced_out}")
  string(REGEX REPLACE "trace written to [^\n]*\n" "" traced_stripped
         "${traced_out}")
  if(NOT traced_stripped STREQUAL plain_out)
    message(FATAL_ERROR
            "tracing changed stdout bytes in cell ${tag}:\n"
            "--- untraced ---\n${plain_out}\n"
            "--- traced (notice stripped) ---\n${traced_stripped}")
  endif()
  if(traced_stripped STREQUAL traced_out)
    message(FATAL_ERROR
            "traced run ${tag} never announced its trace file — did "
            "--trace-json silently no-op?")
  endif()

  # Deterministic metrics section: byte-identical traced vs untraced.
  foreach(side plain traced)
    file(READ ${WORK_DIR}/trace_det_${tag}_${side}.json doc)
    string(FIND "${doc}" "\"timing\"" cut)
    if(cut EQUAL -1)
      message(FATAL_ERROR
              "metrics JSON (${tag}, ${side}) has no timing section")
    endif()
    string(SUBSTRING "${doc}" 0 ${cut} det_${side})
  endforeach()
  if(NOT det_traced STREQUAL det_plain)
    message(FATAL_ERROR
            "tracing changed deterministic metrics in cell ${tag}:\n"
            "--- untraced ---\n${det_plain}\n"
            "--- traced ---\n${det_traced}")
  endif()

  # The trace file must exist and carry events — no vacuous pass.
  file(READ ${WORK_DIR}/trace_det_${tag}.trace.json trace_doc)
  string(FIND "${trace_doc}" "\"traceEvents\"" has_events)
  string(FIND "${trace_doc}" "\"ph\": \"X\"" has_span)
  if(has_events EQUAL -1 OR has_span EQUAL -1)
    message(FATAL_ERROR
            "trace file for cell ${tag} is empty or malformed:\n"
            "${trace_doc}")
  endif()
endfunction()

foreach(jobs 1 2 4)
  check_cell(batch_j${jobs}
             batch ${SPEC_DIR} --yield-samples 6 --jobs ${jobs} --no-stats)
endforeach()
foreach(workers 1 2 4)
  check_cell(shard_w${workers}
             shard ${SPEC_DIR} --yield-samples 6 --workers ${workers}
             --jobs 1 --no-stats)
endforeach()

message(STATUS
        "tracing changed no deterministic byte across jobs 1/2/4 and "
        "workers 1/2/4")
