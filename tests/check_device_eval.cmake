# Scalar-vs-batch conformance through the CLI (ctest script).
#
# Runs the same synthesis + verification once with --device-eval scalar and
# once with --device-eval batch and asserts the stdout reports are
# byte-identical.  The two MOS evaluation paths are bit-for-bit equivalent
# by contract (see src/spice/sim_options.h), so every simulated number in
# the report — operating points, gains, margins — must survive the switch
# unchanged.
#
# Expects: OASYS_CLI (path to the oasys binary), SPEC (spec file),
# WORK_DIR (writable scratch directory).
foreach(mode scalar batch)
  execute_process(
    COMMAND ${OASYS_CLI} --spec ${SPEC} --verify --device-eval ${mode}
    RESULT_VARIABLE rc
    OUTPUT_FILE ${WORK_DIR}/device_eval_${mode}.out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "oasys --device-eval ${mode} failed (exit ${rc})")
  endif()
  file(READ ${WORK_DIR}/device_eval_${mode}.out out_${mode})
endforeach()

if(NOT out_batch STREQUAL out_scalar)
  message(FATAL_ERROR
          "stdout differs between --device-eval scalar and batch:\n"
          "--- scalar ---\n${out_scalar}\n--- batch ---\n${out_batch}")
endif()
message(STATUS "scalar and batch device-eval reports are byte-identical")
