// Overhead proof for the disabled-mode observability hot path.
//
// Same counting operator new/delete scheme as test_alloc_free.cpp: with no
// trace sink installed and global tracing off, spans, instants, counter
// adds, gauge updates, and histogram observes must perform zero heap
// allocations — that is the contract that lets OBS_SPAN and the metric
// handles sit inside the Newton and plan-execution hot loops.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/metrics.h"
#include "obs/span.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = align;
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) throw std::bad_alloc();
  return p;
}

template <typename Fn>
std::size_t count_allocations(const Fn& body) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  body();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace oasys::obs {
namespace {

TEST(ObsAlloc, DisabledSpansAreAllocationFree) {
  ASSERT_FALSE(tracing_enabled());
  const std::size_t allocs = count_allocations([] {
    for (int i = 0; i < 1000; ++i) {
      OBS_SPAN("hot/loop");
      Span named("scope", "runtime-name");  // two-arg form joins lazily
      emit_instant("step.ok", "scope", "code", "detail", 7);
    }
  });
  EXPECT_EQ(allocs, 0u)
      << "disabled-mode spans performed heap allocations";
}

TEST(ObsAlloc, MetricUpdatesAreAllocationFree) {
  // Registration allocates (by design, once per name); updates through the
  // cached references must not.
  Registry registry;
  Counter& c = registry.counter("hot.counter");
  Gauge& g = registry.gauge("hot.gauge");
  Histogram& h =
      registry.count_histogram("hot.hist", {1.0, 4.0, 16.0, 64.0});
  const std::size_t allocs = count_allocations([&] {
    for (int i = 0; i < 1000; ++i) {
      c.add();
      g.set_max(static_cast<double>(i));
      h.observe(static_cast<double>(i % 100));
    }
  });
  EXPECT_EQ(allocs, 0u) << "metric updates performed heap allocations";
}

}  // namespace
}  // namespace oasys::obs
