// Observability subsystem: registry semantics, span tracing, the plan
// narrative mirror, and the cross-jobs determinism contract the JSON
// exporter splits its sections on.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/plan.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"

namespace oasys {
namespace {

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

// ---- counters / gauges / histograms -----------------------------------------

TEST(ObsMetrics, CounterAddsAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeSetMaxKeepsRunningMaximum) {
  obs::Gauge g;
  g.set_max(3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set(2.0);  // plain set overwrites
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(ObsMetrics, GaugeSetMinKeepsRunningMinimumWithUnsetSentinel) {
  obs::Gauge g;
  // 0.0 is the reset value and doubles as "unset": the first set_min
  // always lands, even when it is larger than zero.
  g.set_min(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set_min(6.0);  // larger: ignored
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set_min(1.5);  // smaller: kept
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set_min(9.0);  // reset returns to "unset", not to "minimum is 0"
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(ObsMetrics, MergeSnapshotsCombinesMinGaugesSkippingUnset) {
  // Three workers: one never ran the adaptive integrator (gauge still at
  // the 0.0 unset sentinel), two report different low-water marks.  The
  // merged value is the true minimum over the workers that reported.
  obs::MetricEntry e;
  e.name = "tran.adaptive.min_dt";
  e.kind = obs::MetricKind::kGauge;
  e.gauge_merge = obs::GaugeMerge::kMin;
  e.deterministic = true;
  obs::MetricsSnapshot idle, w1, w2;
  e.gauge = 0.0;
  idle.entries = {e};
  e.gauge = 3e-9;
  w1.entries = {e};
  e.gauge = 7e-10;
  w2.entries = {e};
  const obs::MetricsSnapshot merged =
      obs::merge_snapshots({idle, w1, w2});
  const obs::MetricEntry* m = merged.find("tran.adaptive.min_dt");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->gauge, 7e-10);
  EXPECT_EQ(m->gauge_merge, obs::GaugeMerge::kMin);
  EXPECT_TRUE(m->deterministic);

  // All-unset parts merge to unset, not to a phantom minimum.
  const obs::MetricsSnapshot all_idle =
      obs::merge_snapshots({idle, idle});
  EXPECT_DOUBLE_EQ(all_idle.find("tran.adaptive.min_dt")->gauge, 0.0);
}

TEST(ObsMetrics, MergeSnapshotsRejectsGaugeMergeModeDrift) {
  obs::MetricEntry e;
  e.name = "g";
  e.kind = obs::MetricKind::kGauge;
  e.gauge = 1.0;
  e.gauge_merge = obs::GaugeMerge::kMax;
  obs::MetricsSnapshot a;
  a.entries = {e};
  e.gauge_merge = obs::GaugeMerge::kMin;
  obs::MetricsSnapshot b;
  b.entries = {e};
  EXPECT_THROW(obs::merge_snapshots({a, b}), std::logic_error);
}

TEST(ObsMetrics, HistogramBucketsStatsAndOverflow) {
  obs::Histogram h({1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(s.counts[0], 2u);      // 0.5, 1.0 (bounds are inclusive)
  EXPECT_EQ(s.counts[1], 1u);      // 1.5
  EXPECT_EQ(s.counts[2], 1u);      // 3.0
  EXPECT_EQ(s.counts[3], 1u);      // 100.0 overflows
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 106.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 21.2);
}

TEST(ObsMetrics, HistogramQuantilesAreOrderedAndClamped) {
  obs::Histogram h(obs::Histogram::exponential_bounds(1.0, 1024.0, 2.0));
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const obs::HistogramSnapshot s = h.snapshot();
  const double p50 = s.quantile(0.5);
  const double p95 = s.quantile(0.95);
  EXPECT_GE(p50, s.min);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, s.max);
  // Bucket interpolation keeps the estimates in the right neighborhood.
  EXPECT_GT(p50, 20.0);
  EXPECT_LT(p50, 80.0);
  EXPECT_GT(p95, 64.0);
  // Degenerate quantiles clamp to the observed extremes.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), s.min);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), s.max);
  const obs::HistogramSnapshot empty = obs::Histogram({1.0}).snapshot();
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ObsMetrics, ExponentialBoundsLadder) {
  const std::vector<double> b = obs::Histogram::exponential_bounds(1.0, 8.0,
                                                                   2.0);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  EXPECT_THROW(obs::Histogram::exponential_bounds(0.0, 8.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(obs::Histogram::exponential_bounds(1.0, 8.0, 1.0),
               std::invalid_argument);
}

// ---- registry ----------------------------------------------------------------

TEST(ObsRegistry, SameNameReturnsSameObject) {
  obs::Registry r;
  obs::Counter& a = r.counter("x");
  obs::Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = r.gauge("g");
  obs::Gauge& g2 = r.gauge("g");
  EXPECT_EQ(&g1, &g2);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::Registry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::logic_error);
  EXPECT_THROW(r.histogram("x", {1.0}, true), std::logic_error);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  obs::Registry r;
  obs::Counter& c = r.counter("c");
  obs::Histogram& h = r.count_histogram("h", {1.0, 2.0});
  c.add(5);
  h.observe(1.5);
  r.reset();
  EXPECT_EQ(&r.counter("c"), &c);  // address stable across reset
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(ObsRegistry, SnapshotIsSortedAndCarriesDeterminismFlags) {
  obs::Registry r;
  r.counter("b.count");
  r.gauge("a.gauge");
  r.duration_histogram("c.seconds");
  r.count_histogram("d.sizes", {1.0, 2.0});
  const obs::MetricsSnapshot s = r.snapshot();
  ASSERT_EQ(s.entries.size(), 4u);
  for (std::size_t i = 1; i < s.entries.size(); ++i) {
    EXPECT_LT(s.entries[i - 1].name, s.entries[i].name);
  }
  EXPECT_TRUE(s.find("b.count")->deterministic);
  EXPECT_FALSE(s.find("a.gauge")->deterministic);
  EXPECT_FALSE(s.find("c.seconds")->deterministic);
  EXPECT_TRUE(s.find("d.sizes")->deterministic);
  EXPECT_EQ(s.find("nope"), nullptr);
}

// ---- spans -------------------------------------------------------------------

TEST(ObsSpan, NestedSpansEmitBalancedEventsWithDepths) {
  obs::TraceBuffer buf;
  {
    obs::ScopedSink sink(&buf);
    obs::Span outer("outer");
    {
      obs::Span inner("scope", "inner");
      obs::emit_instant("tick", "inner", "", "note");
    }
  }
  const auto& ev = buf.events();
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_EQ(ev[0].kind, obs::TraceEvent::Kind::kSpanBegin);
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[0].depth, 0);
  EXPECT_EQ(ev[1].kind, obs::TraceEvent::Kind::kSpanBegin);
  EXPECT_EQ(ev[1].name, "scope/inner");
  EXPECT_EQ(ev[1].depth, 1);
  EXPECT_EQ(ev[2].kind, obs::TraceEvent::Kind::kInstant);
  EXPECT_EQ(ev[2].name, "tick");
  EXPECT_EQ(ev[3].kind, obs::TraceEvent::Kind::kSpanEnd);
  EXPECT_EQ(ev[3].name, "scope/inner");
  EXPECT_GE(ev[3].seconds, 0.0);
  EXPECT_EQ(ev[4].kind, obs::TraceEvent::Kind::kSpanEnd);
  EXPECT_EQ(ev[4].name, "outer");
}

TEST(ObsSpan, SpanClosesOnThrow) {
  obs::TraceBuffer buf;
  obs::ScopedSink sink(&buf);
  try {
    obs::Span span("doomed");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  ASSERT_EQ(buf.events().size(), 2u);
  EXPECT_EQ(buf.events()[1].kind, obs::TraceEvent::Kind::kSpanEnd);
  EXPECT_EQ(buf.events()[1].name, "doomed");
  // The next span starts back at depth 0: unwinding restored the counter.
  obs::Span after("after");
  ASSERT_EQ(buf.events().size(), 3u);
  EXPECT_EQ(buf.events()[2].depth, 0);
}

TEST(ObsSpan, GlobalCollectorDrainsOnce) {
  obs::set_tracing_enabled(true);
  { OBS_SPAN("collected"); }
  obs::set_tracing_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::drain_global_trace();
  ASSERT_GE(events.size(), 2u);
  bool saw_begin = false;
  for (const auto& e : events) {
    if (e.kind == obs::TraceEvent::Kind::kSpanBegin &&
        e.name == "collected") {
      saw_begin = true;
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(obs::drain_global_trace().empty());  // drained means drained
}

TEST(ObsSpan, InactiveSpanReportsInactive) {
  ASSERT_FALSE(obs::tracing_enabled());
  obs::Span span("idle");
  EXPECT_FALSE(span.active());
  span.note("dropped");  // must be a safe no-op
}

// ---- plan narrative mirror ---------------------------------------------------

struct MirrorContext : core::DesignContext {
  explicit MirrorContext(const tech::Technology& t) : DesignContext(t) {}
};

TEST(ObsPlan, ExecutionTraceAndSpanStreamCarryTheSameNarrative) {
  core::Plan<MirrorContext> plan("mirror");
  plan.add_step("warmup", [](MirrorContext&) {
    return core::StepStatus::success();
  });
  plan.add_step("fragile", [](MirrorContext& ctx) {
    if (ctx.bump("tries") < 2) {
      return core::StepStatus::fail("too-cold", "needs a retry");
    }
    return core::StepStatus::success();
  });
  plan.add_rule("warm-it-up", [](MirrorContext&,
                                 const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
    if (f.code != "too-cold") return std::nullopt;
    return core::PatchAction::retry_step("warming");
  });

  obs::TraceBuffer buf;
  core::ExecutionTrace trace;
  {
    obs::ScopedSink sink(&buf);
    MirrorContext ctx(tech5());
    trace = core::execute_plan(plan, ctx);
  }
  ASSERT_TRUE(trace.success);
  EXPECT_EQ(trace.rules_fired, 1);

  // Every ExecutionTrace event has a same-named instant in the span
  // stream, in order: one stream, two renderers.
  std::vector<const obs::TraceEvent*> instants;
  for (const auto& e : buf.events()) {
    if (e.kind == obs::TraceEvent::Kind::kInstant) instants.push_back(&e);
  }
  ASSERT_EQ(instants.size(), trace.events.size());
  const std::map<core::TraceEvent::Kind, std::string> names = {
      {core::TraceEvent::Kind::kStepOk, "step.ok"},
      {core::TraceEvent::Kind::kStepFailed, "step.failed"},
      {core::TraceEvent::Kind::kRuleFired, "rule.fired"},
      {core::TraceEvent::Kind::kAborted, "plan.aborted"},
      {core::TraceEvent::Kind::kExhausted, "plan.exhausted"},
  };
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(instants[i]->name, names.at(trace.events[i].kind));
    EXPECT_EQ(instants[i]->scope, trace.events[i].step_name);
    EXPECT_EQ(instants[i]->code, trace.events[i].code);
    EXPECT_EQ(instants[i]->index, trace.events[i].step_index);
  }

  // The span stream adds structure on top: a plan span around step spans.
  ASSERT_FALSE(buf.events().empty());
  EXPECT_EQ(buf.events().front().name, "plan/mirror");
  EXPECT_EQ(buf.events().back().name, "plan/mirror");
  int step_spans = 0;
  for (const auto& e : buf.events()) {
    if (e.kind == obs::TraceEvent::Kind::kSpanBegin &&
        e.name.rfind("step/", 0) == 0) {
      ++step_spans;
    }
  }
  EXPECT_EQ(step_spans, trace.steps_executed);
}

// ---- exporters ---------------------------------------------------------------

TEST(ObsExport, JsonSplitsDeterministicFromTiming) {
  obs::Registry r;
  r.counter("det.count").add(3);
  r.gauge("sched.lanes").set(2.0);
  r.count_histogram("det.sizes", {1.0, 2.0}).observe(1.0);
  r.duration_histogram("time.seconds").observe(0.25);
  const std::string json = obs::metrics_json(r.snapshot());
  EXPECT_NE(json.find("\"schema\": \"oasys.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"det.count\": 3"), std::string::npos);
  // The deterministic section precedes the timing section, and the
  // scheduling-derived entries land in the latter.
  const std::size_t det = json.find("\"deterministic\"");
  const std::size_t timing = json.find("\"timing\"");
  ASSERT_NE(det, std::string::npos);
  ASSERT_NE(timing, std::string::npos);
  EXPECT_LT(det, timing);
  EXPECT_GT(json.find("\"sched.lanes\""), timing);
  EXPECT_GT(json.find("\"time.seconds\""), timing);
  EXPECT_LT(json.find("\"det.sizes\""), timing);
}

TEST(ObsExport, TraceTextRendersSpansAndInstants) {
  obs::TraceBuffer buf;
  {
    obs::ScopedSink sink(&buf);
    obs::Span outer("outer");
    obs::emit_instant("step.ok", "derive", "", "fine", 3);
  }
  const std::string text = obs::trace_text(buf.events());
  EXPECT_NE(text.find("> outer"), std::string::npos);
  EXPECT_NE(text.find("< outer"), std::string::npos);
  EXPECT_NE(text.find("step.ok"), std::string::npos);
  EXPECT_NE(text.find("derive"), std::string::npos);
}

// ---- cross-jobs determinism --------------------------------------------------

// The deterministic projection of a snapshot: every counter value and
// every deterministic histogram's exact contents.  Durations and gauges
// are excluded by the same flag the JSON exporter splits on.
std::map<std::string, std::string> deterministic_projection(
    const obs::MetricsSnapshot& snap) {
  std::map<std::string, std::string> out;
  for (const auto& e : snap.entries) {
    if (!e.deterministic) continue;
    if (e.kind == obs::MetricKind::kCounter) {
      out[e.name] = std::to_string(e.counter);
    } else if (e.kind == obs::MetricKind::kHistogram) {
      std::string v = std::to_string(e.histogram.count) + "|" +
                      std::to_string(e.histogram.sum) + "|" +
                      std::to_string(e.histogram.min) + "|" +
                      std::to_string(e.histogram.max);
      for (const auto c : e.histogram.counts) {
        v += "|" + std::to_string(c);
      }
      out[e.name] = v;
    } else {
      out[e.name] = std::to_string(e.gauge);
    }
  }
  return out;
}

TEST(ObsDeterminism, NonDurationMetricsAreIdenticalAcrossJobs) {
  obs::Registry& reg = obs::Registry::global();
  const std::vector<core::OpAmpSpec> specs = {synth::spec_case_a(),
                                              synth::spec_case_b()};

  // One synthesis batch plus one full measurement per jobs setting: plan
  // executor, all three sim engines, and the executor lanes all run.
  auto workload = [&](std::size_t jobs) {
    synth::SynthOptions opts;
    opts.jobs = jobs;
    const auto results = synth::synthesize_opamp_batch(tech5(), specs, opts);
    for (const auto& r : results) {
      if (!r.success()) continue;
      synth::MeasureOptions mo;
      mo.jobs = jobs;
      const synth::MeasuredOpAmp m = synth::measure_opamp(*r.best(), tech5(),
                                                          mo);
      ASSERT_TRUE(m.ok) << m.error;
    }
  };

  reg.reset();
  workload(1);
  const std::map<std::string, std::string> reference =
      deterministic_projection(reg.snapshot());
  ASSERT_FALSE(reference.empty());
  EXPECT_GT(reference.count("sim.newton.iterations"), 0u);
  EXPECT_GT(reference.count("plan.steps_executed"), 0u);

  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    reg.reset();
    workload(jobs);
    const std::map<std::string, std::string> got =
        deterministic_projection(reg.snapshot());
    EXPECT_EQ(got, reference) << "deterministic metrics diverged at jobs="
                              << jobs;
  }
}

}  // namespace
}  // namespace oasys
