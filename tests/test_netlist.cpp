#include <gtest/gtest.h>

#include "netlist/circuit.h"
#include "netlist/spice_writer.h"
#include "netlist/waveform.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::ckt {
namespace {

using util::um;

// ---- waveforms --------------------------------------------------------------

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(2.5);
  EXPECT_DOUBLE_EQ(w.dc_value(), 2.5);
  EXPECT_DOUBLE_EQ(w.value(0.0), 2.5);
  EXPECT_DOUBLE_EQ(w.value(1e9), 2.5);
  EXPECT_DOUBLE_EQ(w.ac_mag(), 0.0);
}

TEST(Waveform, AcCarriesPhasor) {
  const Waveform w = Waveform::ac(1.0, 0.5, 180.0);
  EXPECT_DOUBLE_EQ(w.dc_value(), 1.0);
  EXPECT_DOUBLE_EQ(w.ac_mag(), 0.5);
  EXPECT_DOUBLE_EQ(w.ac_phase_deg(), 180.0);
}

TEST(Waveform, PulseShape) {
  const Waveform w = Waveform::pulse(0.0, 1.0, /*delay=*/1.0, /*rise=*/1.0,
                                     /*fall=*/1.0, /*width=*/2.0,
                                     /*period=*/10.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 0.0);   // before delay
  EXPECT_DOUBLE_EQ(w.value(1.5), 0.5);   // mid-rise
  EXPECT_DOUBLE_EQ(w.value(3.0), 1.0);   // on
  EXPECT_DOUBLE_EQ(w.value(4.5), 0.5);   // mid-fall
  EXPECT_DOUBLE_EQ(w.value(6.0), 0.0);   // off
  EXPECT_DOUBLE_EQ(w.value(11.5), 0.5);  // periodic repeat
  EXPECT_DOUBLE_EQ(w.dc_value(), 0.0);   // DC analyses see v1
}

TEST(Waveform, SineShape) {
  const Waveform w = Waveform::sine(1.0, 0.5, 1e3, /*delay=*/1e-3);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.0);  // before delay: offset
  EXPECT_NEAR(w.value(1e-3 + 0.25e-3), 1.5, 1e-9);  // quarter period
  EXPECT_THROW(Waveform::sine(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Waveform, WithDcAndWithAc) {
  const Waveform w = Waveform::ac(1.0, 0.5).with_dc(2.0).with_ac(0.25, 90.0);
  EXPECT_DOUBLE_EQ(w.dc_value(), 2.0);
  EXPECT_DOUBLE_EQ(w.ac_mag(), 0.25);
  EXPECT_DOUBLE_EQ(w.ac_phase_deg(), 90.0);
}

// ---- circuit ----------------------------------------------------------------

TEST(Circuit, NodeInterning) {
  Circuit c;
  const NodeId a = c.node("A");
  EXPECT_EQ(c.node("a"), a);  // case-insensitive
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_NE(c.node("b"), a);
  EXPECT_EQ(c.num_nodes(), 3u);  // ground + a + b
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_TRUE(c.find_node("a").has_value());
  EXPECT_FALSE(c.find_node("zzz").has_value());
}

TEST(Circuit, RejectsInvalidElements) {
  Circuit c;
  const NodeId a = c.node("a");
  EXPECT_THROW(c.add_resistor("R1", a, kGround, 0.0),
               std::invalid_argument);
  EXPECT_THROW(c.add_resistor("R1", a, kGround, -5.0),
               std::invalid_argument);
  EXPECT_THROW(c.add_capacitor("C1", a, kGround, 0.0),
               std::invalid_argument);
  EXPECT_THROW(c.add_mosfet("M1", a, a, kGround, kGround,
                            mos::MosType::kNmos, 0.0, 1e-6),
               std::invalid_argument);
  EXPECT_THROW(c.add_mosfet("M1", a, a, kGround, kGround,
                            mos::MosType::kNmos, 1e-6, 1e-6, 0),
               std::invalid_argument);
}

TEST(Circuit, RejectsDuplicateNames) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_resistor("R1", a, kGround, 1e3);
  EXPECT_THROW(c.add_resistor("R1", a, kGround, 2e3),
               std::invalid_argument);
  // Different element kinds still share the namespace.
  EXPECT_THROW(c.add_capacitor("R1", a, kGround, 1e-12),
               std::invalid_argument);
}

TEST(Circuit, SourceLookupAndMutation) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V1", a, kGround, Waveform::dc(1.0));
  c.add_vsource("V2", a, kGround, Waveform::dc(2.0));
  ASSERT_TRUE(c.find_vsource("V2").has_value());
  EXPECT_EQ(*c.find_vsource("V2"), 1u);
  EXPECT_FALSE(c.find_vsource("V9").has_value());
  c.vsource(1).wave = Waveform::dc(3.0);
  EXPECT_DOUBLE_EQ(c.vsources()[1].wave.dc_value(), 3.0);
  EXPECT_THROW(c.vsource(5), std::out_of_range);
}

TEST(Circuit, DanglingNodeDetection) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add_resistor("R1", a, b, 1e3);
  c.add_resistor("R2", a, kGround, 1e3);
  const auto dangling = c.dangling_nodes();
  ASSERT_EQ(dangling.size(), 1u);
  EXPECT_EQ(dangling[0], "b");
}

TEST(Circuit, ElementCount) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_resistor("R1", a, kGround, 1e3);
  c.add_capacitor("C1", a, kGround, 1e-12);
  c.add_vsource("V1", a, kGround, Waveform::dc(1.0));
  c.add_isource("I1", a, kGround, Waveform::dc(1e-6));
  c.add_mosfet("M1", a, a, kGround, kGround, mos::MosType::kNmos, um(10.0),
               um(5.0));
  EXPECT_EQ(c.num_elements(), 5u);
}

// ---- SPICE writer --------------------------------------------------------------

TEST(SpiceWriter, DeckContainsAllElements) {
  const tech::Technology t = tech::five_micron();
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId out = c.node("out");
  c.add_vsource("DD", vdd, kGround, Waveform::dc(5.0));
  c.add_resistor("L", vdd, out, 10e3);
  c.add_capacitor("LOAD", out, kGround, 1e-12);
  c.add_isource("B", vdd, out, Waveform::dc(1e-6));
  c.add_mosfet("1", out, out, kGround, kGround, mos::MosType::kNmos,
               um(20.0), um(5.0));
  const std::string deck = to_spice_deck(c, t);
  EXPECT_NE(deck.find("VDD vdd 0 DC 5"), std::string::npos);
  EXPECT_NE(deck.find("RL vdd out 10k"), std::string::npos);
  EXPECT_NE(deck.find("CLOAD out 0 1p"), std::string::npos);
  EXPECT_NE(deck.find("IB vdd out DC 1u"), std::string::npos);
  EXPECT_NE(deck.find("M1 out out 0 0 nmos1"), std::string::npos);
  EXPECT_NE(deck.find(".MODEL nmos1 NMOS"), std::string::npos);
  EXPECT_NE(deck.find(".MODEL pmos1 PMOS"), std::string::npos);
  EXPECT_NE(deck.find(".END"), std::string::npos);
}

TEST(SpiceWriter, AcCardEmitted) {
  const tech::Technology t = tech::five_micron();
  Circuit c;
  const NodeId in = c.node("in");
  c.add_vsource("IN", in, kGround, Waveform::ac(1.0, 0.5, 180.0));
  c.add_resistor("1", in, kGround, 1e3);
  const std::string deck = to_spice_deck(c, t);
  EXPECT_NE(deck.find("VIN in 0 DC 1 AC 500m 180"), std::string::npos);
}

TEST(SpiceWriter, ModelCardsCarryLevel1Parameters) {
  const tech::Technology t = tech::five_micron();
  const std::string cards = spice_model_cards(t);
  EXPECT_NE(cards.find("LEVEL=1"), std::string::npos);
  EXPECT_NE(cards.find("VTO=800m"), std::string::npos);
  EXPECT_NE(cards.find("KP=24u"), std::string::npos);
  EXPECT_NE(cards.find("GAMMA=400m"), std::string::npos);
}

}  // namespace
}  // namespace oasys::ckt
