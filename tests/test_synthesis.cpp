// Designer-level tests: plans produce self-consistent sized designs whose
// first-order predictions meet the specs, and the patch rules make the
// structural moves the paper describes.
#include <gtest/gtest.h>

#include "synth/oasys.h"
#include "synth/report.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::synth {
namespace {

using tech::Technology;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

// ---- case A: ordinary spec -------------------------------------------------

TEST(CaseA, OneStageIsFeasible) {
  const OpAmpDesign d = design_one_stage_ota(tech5(), spec_case_a());
  ASSERT_TRUE(d.feasible) << d.trace.to_string();
  EXPECT_FALSE(d.stage1_cascode);
  EXPECT_EQ(d.soft_violations, 0);
  EXPECT_GE(d.predicted.gain_db, 45.0);
  EXPECT_GE(d.predicted.gbw, util::mhz(1.0));
  EXPECT_GE(d.predicted.slew, util::v_per_us(1.0));
}

TEST(CaseA, TwoStageAlsoFeasibleButBigger) {
  const OpAmpDesign ota = design_one_stage_ota(tech5(), spec_case_a());
  const OpAmpDesign ts = design_two_stage(tech5(), spec_case_a());
  ASSERT_TRUE(ota.feasible) << ota.trace.to_string();
  ASSERT_TRUE(ts.feasible) << ts.trace.to_string();
  EXPECT_GT(ts.predicted.area, ota.predicted.area);
}

TEST(CaseA, SelectionPicksOneStage) {
  const SynthesisResult r = synthesize_opamp(tech5(), spec_case_a());
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.best()->style, OpAmpStyle::kOneStageOta);
}

// ---- case B: one-stage knocked out -------------------------------------------

TEST(CaseB, OneStageFails) {
  const OpAmpDesign d = design_one_stage_ota(tech5(), spec_case_b());
  EXPECT_FALSE(d.feasible) << d.trace.to_string();
}

TEST(CaseB, TwoStageSucceedsWithoutCascoding) {
  const OpAmpDesign d = design_two_stage(tech5(), spec_case_b());
  ASSERT_TRUE(d.feasible) << d.trace.to_string();
  EXPECT_FALSE(d.stage2_cascode_gm);
  EXPECT_GE(d.predicted.gain_db, 70.0);
  EXPECT_GE(d.predicted.swing_pos, 3.5);
  EXPECT_GE(d.predicted.swing_neg, 3.5);
  EXPECT_LE(d.predicted.offset, util::mv(2.0));
}

TEST(CaseB, SelectionPicksTwoStage) {
  const SynthesisResult r = synthesize_opamp(tech5(), spec_case_b());
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.best()->style, OpAmpStyle::kTwoStage);
}

// ---- case C: aggressive spec, structural rules fire ----------------------------

TEST(CaseC, TwoStageCascodesAndShifts) {
  const OpAmpDesign d = design_two_stage(tech5(), spec_case_c());
  ASSERT_TRUE(d.feasible) << d.trace.to_string();
  // The paper's case C: cascoded input bias + cascoded load mirror +
  // level shifter.
  EXPECT_TRUE(d.stage1_cascode);
  EXPECT_TRUE(d.has_level_shifter);
  EXPECT_GE(d.predicted.gain_db, 100.0);
  EXPECT_GT(d.trace.rules_fired, 0);
}

TEST(CaseC, SelectionPicksTwoStage) {
  const SynthesisResult r = synthesize_opamp(tech5(), spec_case_c());
  ASSERT_TRUE(r.success());
  EXPECT_EQ(r.best()->style, OpAmpStyle::kTwoStage);
}

// ---- structural invariants -----------------------------------------------------

TEST(Designs, DeviceRolesAreUnique) {
  for (const auto& spec : paper_test_cases()) {
    const SynthesisResult r = synthesize_opamp(tech5(), spec);
    ASSERT_TRUE(r.success()) << spec.name;
    const OpAmpDesign& d = *r.best();
    std::set<std::string> roles;
    for (const auto& dev : d.devices) {
      EXPECT_TRUE(roles.insert(dev.role).second)
          << "duplicate role " << dev.role << " in case " << spec.name;
      EXPECT_GE(dev.w, tech5().wmin * 0.999) << dev.role;
      EXPECT_GE(dev.l, tech5().lmin * 0.999) << dev.role;
    }
  }
}

TEST(Designs, PredictedPerformanceMeetsSpecAxes) {
  for (const auto& spec : paper_test_cases()) {
    const SynthesisResult r = synthesize_opamp(tech5(), spec);
    ASSERT_TRUE(r.success()) << spec.name;
    const OpAmpDesign& d = *r.best();
    const auto checks = core::check_spec(spec, d.predicted, 0.02);
    // Soft violations (first-cut accepts) are allowed; anything else is a
    // designer bug.
    EXPECT_LE(core::violation_count(checks), d.soft_violations)
        << spec.name;
  }
}

TEST(Designs, RulesDisabledDegradesCaseC) {
  SynthOptions opts;
  opts.rules_enabled = false;
  const OpAmpDesign d = design_two_stage(tech5(), spec_case_c(), opts);
  EXPECT_FALSE(d.feasible);  // cascoding rules unavailable
}

TEST(Designs, ReportRendersWithoutCrashing) {
  const SynthesisResult r = synthesize_opamp(tech5(), spec_case_a());
  ASSERT_TRUE(r.success());
  const std::string report = synthesis_report(r);
  EXPECT_NE(report.find("selected design"), std::string::npos);
  EXPECT_NE(report.find("M1"), std::string::npos);
  const std::string table = comparison_table(*r.best(), nullptr);
  EXPECT_NE(table.find("gain (dB)"), std::string::npos);
}

// ---- gain sweep: topology changes (Figure 7 mechanics) ---------------------------

TEST(GainSweep, OtaSwitchesToCascodeAtHighGain) {
  core::OpAmpSpec spec = spec_case_a();
  spec.swing_pos = spec.swing_neg = 0.0;  // let gain drive the structure
  spec.offset_max = 0.0;
  spec.power_max = 0.0;
  spec.gain_min_db = 40.0;
  const OpAmpDesign low = design_one_stage_ota(tech5(), spec);
  ASSERT_TRUE(low.feasible) << low.trace.to_string();
  EXPECT_FALSE(low.stage1_cascode);

  spec.gain_min_db = 75.0;
  const OpAmpDesign high = design_one_stage_ota(tech5(), spec);
  ASSERT_TRUE(high.feasible) << high.trace.to_string();
  EXPECT_TRUE(high.stage1_cascode);
}

TEST(GainSweep, AreaGrowsWithGainForSimpleOta) {
  core::OpAmpSpec spec = spec_case_a();
  spec.swing_pos = spec.swing_neg = 0.0;
  spec.offset_max = 0.0;
  spec.power_max = 0.0;
  double prev_area = 0.0;
  for (double gain = 40.0; gain <= 50.0; gain += 5.0) {
    spec.gain_min_db = gain;
    const OpAmpDesign d = design_one_stage_ota(tech5(), spec);
    ASSERT_TRUE(d.feasible) << gain;
    if (!d.stage1_cascode && prev_area > 0.0) {
      EXPECT_GE(d.predicted.area, prev_area * 0.99) << gain;
    }
    prev_area = d.predicted.area;
  }
}

}  // namespace
}  // namespace oasys::synth
