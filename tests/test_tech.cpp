#include <gtest/gtest.h>

#include "tech/builtin.h"
#include "tech/tech_parser.h"
#include "tech/technology.h"
#include "util/units.h"

namespace oasys::tech {
namespace {

using util::um;

TEST(Technology, FiveMicronValidates) {
  const Technology t = five_micron();
  EXPECT_FALSE(t.validate().has_errors());
  EXPECT_EQ(t.name, "cmos5");
  EXPECT_DOUBLE_EQ(t.supply_span(), 10.0);
  EXPECT_DOUBLE_EQ(t.mid_supply(), 0.0);
  EXPECT_DOUBLE_EQ(t.lmin, um(5.0));
}

TEST(Technology, ThreeMicronValidates) {
  const Technology t = three_micron();
  EXPECT_FALSE(t.validate().has_errors());
  EXPECT_LT(t.lmin, five_micron().lmin);
  EXPECT_GT(t.cox, five_micron().cox);  // thinner oxide, more capacitance
}

TEST(Technology, LambdaScalesInverselyWithLength) {
  const Technology t = five_micron();
  const double l5 = t.nmos.lambda_at(um(5.0));
  const double l10 = t.nmos.lambda_at(um(10.0));
  EXPECT_NEAR(l5, 0.035, 1e-12);
  EXPECT_NEAR(l5 / l10, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.nmos.lambda_at(0.0), 0.0);
}

TEST(Technology, DeviceAreaIncludesDiffusions) {
  const Technology t = five_micron();
  const double w = um(10.0);
  const double l = um(5.0);
  EXPECT_DOUBLE_EQ(t.device_area(w, l),
                   w * l + 2.0 * w * t.drain_ext);
  EXPECT_GT(t.device_area(w, l), w * l);
}

TEST(Technology, CapacitorArea) {
  const Technology t = five_micron();
  // cox ~ 0.406 fF/um^2, so 1 pF needs ~2463 um^2.
  EXPECT_NEAR(util::in_um2(t.capacitor_area(util::pf(1.0))), 2463.0, 10.0);
}

TEST(Technology, ValidateCatchesBadSupplies) {
  Technology t = five_micron();
  t.vss = t.vdd + 1.0;
  EXPECT_TRUE(t.validate().has_errors());
}

TEST(Technology, ValidateCatchesNonPositiveDimensions) {
  Technology t = five_micron();
  t.lmin = 0.0;
  EXPECT_TRUE(t.validate().has_errors());
}

TEST(Technology, ValidateWarnsOnInconsistentCox) {
  Technology t = five_micron();
  t.cox *= 3.0;  // no longer eps_ox / tox
  const auto log = t.validate();
  EXPECT_FALSE(log.has_errors());
  EXPECT_TRUE(log.has_warnings());
}

// ---- parser ------------------------------------------------------------------

TEST(TechParser, RoundTripsBuiltins) {
  for (const Technology& t : {five_micron(), three_micron()}) {
    const std::string text = to_tech_text(t);
    const ParseResult r = parse_tech(text);
    ASSERT_TRUE(r.ok()) << r.log.to_string();
    const Technology& u = r.technology;
    EXPECT_EQ(u.name, t.name);
    EXPECT_NEAR(u.vdd, t.vdd, 1e-9);
    EXPECT_NEAR(u.vss, t.vss, 1e-9);
    EXPECT_NEAR(u.lmin, t.lmin, 1e-12);
    EXPECT_NEAR(u.tox, t.tox, 1e-15);
    EXPECT_NEAR(u.cox, t.cox, t.cox * 1e-5);
    EXPECT_NEAR(u.nmos.kp, t.nmos.kp, t.nmos.kp * 1e-5);
    EXPECT_NEAR(u.nmos.vt0, t.nmos.vt0, 1e-9);
    EXPECT_NEAR(u.nmos.lambda_l, t.nmos.lambda_l, 1e-12);
    EXPECT_NEAR(u.pmos.cgdo, t.pmos.cgdo, t.pmos.cgdo * 1e-5);
    EXPECT_NEAR(u.pmos.cj, t.pmos.cj, t.pmos.cj * 1e-5);
    EXPECT_NEAR(u.nmos.mobility, t.nmos.mobility, t.nmos.mobility * 1e-5);
  }
}

TEST(TechParser, UnitsAreConverted) {
  const char* text = R"(
[process]
name test
vdd_v 5
vss_v -5
lmin_um 5
wmin_um 5
drain_ext_um 7
tox_a 850
cox_ff_um2 0.406
[nmos]
vt0_v 0.8
kp_ua_v2 24
gamma_sqrt_v 0.4
phi_v 0.6
lambda_l_um_v 0.1
[pmos]
vt0_v 0.9
kp_ua_v2 9.3
phi_v 0.6
)";
  const ParseResult r = parse_tech(text);
  ASSERT_TRUE(r.ok()) << r.log.to_string();
  EXPECT_NEAR(r.technology.lmin, 5e-6, 1e-12);
  EXPECT_NEAR(r.technology.tox, 850e-10, 1e-15);
  EXPECT_NEAR(r.technology.cox, 0.406e-3, 1e-9);  // fF/um^2 -> F/m^2
  EXPECT_NEAR(r.technology.nmos.kp, 24e-6, 1e-12);
  EXPECT_NEAR(r.technology.nmos.lambda_l, 0.1e-6, 1e-15);
}

TEST(TechParser, CommentsAndBlanksIgnored) {
  const std::string base = to_tech_text(five_micron());
  const std::string with_noise = "# leading comment\n\n" + base +
                                 "\n# trailing\n";
  EXPECT_TRUE(parse_tech(with_noise).ok());
}

TEST(TechParser, UnknownKeyIsError) {
  const std::string text = to_tech_text(five_micron()) + "\nbogus_key 1\n";
  const ParseResult r = parse_tech(text);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.log.contains_code("tech-parse"));
}

TEST(TechParser, KeyOutsideSectionIsError) {
  const ParseResult r = parse_tech("vdd_v 5\n");
  EXPECT_FALSE(r.ok());
}

TEST(TechParser, BadNumberIsError) {
  const ParseResult r = parse_tech("[process]\nvdd_v abc\n");
  EXPECT_FALSE(r.ok());
}

TEST(TechParser, UnknownSectionIsError) {
  const ParseResult r = parse_tech("[bipolar]\n");
  EXPECT_FALSE(r.ok());
}

TEST(TechParser, MissingFileReportsIoError) {
  const ParseResult r = load_tech_file("/nonexistent/path.tech");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.log.contains_code("tech-io"));
}

TEST(TechParser, IncompleteTechFailsValidation) {
  // Parses fine but validation catches the absent parameters.
  const ParseResult r = parse_tech("[process]\nname x\nvdd_v 5\nvss_v -5\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.log.contains_code("tech-invalid"));
}

}  // namespace
}  // namespace oasys::tech
