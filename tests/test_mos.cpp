#include <gtest/gtest.h>

#include <cmath>

#include "mos/design_eqs.h"
#include "mos/level1.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::mos {
namespace {

using tech::Technology;
using util::um;

class Level1Test : public ::testing::Test {
 protected:
  Technology t = tech::five_micron();
  Geometry g{um(50.0), um(5.0), 1};
};

TEST_F(Level1Test, CutoffBelowThreshold) {
  const CoreEval e = evaluate_core(t.nmos, g, {0.5, 2.0, 0.0});
  EXPECT_EQ(e.region, Region::kCutoff);
  EXPECT_DOUBLE_EQ(e.id, 0.0);
  EXPECT_DOUBLE_EQ(e.gm, 0.0);
}

TEST_F(Level1Test, SaturationSquareLaw) {
  // vgs - vt = 0.2, vds = 2.0 > vov -> saturation.
  const double vov = 0.2;
  const CoreEval e =
      evaluate_core(t.nmos, g, {t.nmos.vt0 + vov, 2.0, 0.0});
  EXPECT_EQ(e.region, Region::kSaturation);
  const double beta = t.nmos.kp * g.wl_ratio();
  const double lambda = t.nmos.lambda_at(g.l);
  const double expected = 0.5 * beta * vov * vov * (1.0 + lambda * 2.0);
  EXPECT_NEAR(e.id, expected, expected * 1e-12);
  EXPECT_NEAR(e.gm, beta * vov * (1.0 + lambda * 2.0), e.gm * 1e-12);
  EXPECT_NEAR(e.gds, 0.5 * beta * vov * vov * lambda, e.gds * 1e-12);
}

TEST_F(Level1Test, TriodeRegion) {
  const double vov = 0.5;
  const CoreEval e =
      evaluate_core(t.nmos, g, {t.nmos.vt0 + vov, 0.1, 0.0});
  EXPECT_EQ(e.region, Region::kTriode);
  EXPECT_GT(e.id, 0.0);
  EXPECT_GT(e.gds, e.gm);  // deep triode: channel acts like a resistor
}

TEST_F(Level1Test, ContinuousAcrossTriodeSaturationBoundary) {
  const double vov = 0.3;
  const double vgs = t.nmos.vt0 + vov;
  const CoreEval below = evaluate_core(t.nmos, g, {vgs, vov - 1e-9, 0.0});
  const CoreEval above = evaluate_core(t.nmos, g, {vgs, vov + 1e-9, 0.0});
  EXPECT_NEAR(below.id, above.id, above.id * 1e-6);
  EXPECT_NEAR(below.gm, above.gm, above.gm * 1e-6);
  // gds is discontinuous in slope only, not value, for Level-1 with the
  // CLM factor kept in triode.
  EXPECT_NEAR(below.gds, above.gds, above.gds * 0.05 + 1e-9);
}

TEST_F(Level1Test, BodyEffectRaisesThreshold) {
  const double vt0 = threshold(t.nmos, 0.0);
  const double vt2 = threshold(t.nmos, 2.0);
  EXPECT_NEAR(vt0, t.nmos.vt0, 1e-12);
  EXPECT_GT(vt2, vt0);
  const double expected =
      t.nmos.vt0 + t.nmos.gamma * (std::sqrt(t.nmos.phi + 2.0) -
                                   std::sqrt(t.nmos.phi));
  EXPECT_NEAR(vt2, expected, 1e-12);
}

TEST_F(Level1Test, GmbPositiveWithReverseBodyBias) {
  // vbs = -2 raises the threshold; overdrive is relative to the shifted VT.
  const CoreEval e =
      evaluate_core(t.nmos, g, {threshold(t.nmos, 2.0) + 0.3, 1.0, -2.0});
  EXPECT_EQ(e.region, Region::kSaturation);
  EXPECT_GT(e.gmb, 0.0);
  EXPECT_LT(e.gmb, e.gm);
}

TEST_F(Level1Test, DerivativesMatchFiniteDifference) {
  const CoreBias bias{t.nmos.vt0 + 0.25, 0.8, -1.0};
  const CoreEval e = evaluate_core(t.nmos, g, bias);
  const double h = 1e-7;
  CoreBias b2 = bias;
  b2.vgs += h;
  EXPECT_NEAR((evaluate_core(t.nmos, g, b2).id - e.id) / h, e.gm,
              e.gm * 1e-4);
  b2 = bias;
  b2.vds += h;
  EXPECT_NEAR((evaluate_core(t.nmos, g, b2).id - e.id) / h, e.gds,
              e.gds * 1e-3);
  b2 = bias;
  b2.vbs += h;
  EXPECT_NEAR((evaluate_core(t.nmos, g, b2).id - e.id) / h, e.gmb,
              e.gmb * 1e-3);
}

// ---- terminal frame -------------------------------------------------------

TEST_F(Level1Test, TerminalNmosMatchesCore) {
  const double vgs = t.nmos.vt0 + 0.3;
  const TerminalEval te =
      evaluate_terminal(t.nmos, MosType::kNmos, g, vgs, 2.0, 0.0, 0.0);
  const CoreEval ce = evaluate_core(t.nmos, g, {vgs, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(te.id_ds, ce.id);
  EXPECT_DOUBLE_EQ(te.di_dvg, ce.gm);
  EXPECT_DOUBLE_EQ(te.di_dvd, ce.gds);
  EXPECT_FALSE(te.swapped);
}

TEST_F(Level1Test, TerminalPmosSignConvention) {
  // PMOS with source at 5 V, gate pulled low, drain at 0: conducts with
  // current flowing source->drain, i.e. id_ds < 0.
  const TerminalEval te = evaluate_terminal(t.pmos, MosType::kPmos, g,
                                            /*vg=*/3.5, /*vd=*/0.0,
                                            /*vs=*/5.0, /*vb=*/5.0);
  EXPECT_EQ(te.region, Region::kSaturation);
  EXPECT_LT(te.id_ds, 0.0);
  EXPECT_GT(te.gm, 0.0);
}

TEST_F(Level1Test, TerminalSwapsWhenVdsNegative) {
  const double vgs = t.nmos.vt0 + 0.4;
  // Same device, drain and source exchanged: current reverses exactly.
  const TerminalEval fwd =
      evaluate_terminal(t.nmos, MosType::kNmos, g, vgs, 1.0, 0.0, 0.0);
  // Terminals exchanged: the channel source is now the 0 V node (the
  // "drain" pin), so the same gate voltage gives the mirror-image current.
  const TerminalEval rev =
      evaluate_terminal(t.nmos, MosType::kNmos, g, vgs, 0.0, 1.0, 0.0);
  EXPECT_TRUE(rev.swapped);
  EXPECT_NEAR(rev.id_ds, -fwd.id_ds, std::abs(fwd.id_ds) * 1e-12);
}

TEST_F(Level1Test, TerminalDerivativesFiniteDifference) {
  // Check all four terminal derivatives, including a swapped case.
  struct Case {
    double vg, vd, vs, vb;
    MosType type;
  };
  const Case cases[] = {
      {1.3, 2.0, 0.0, -1.0, MosType::kNmos},
      {1.3, 0.2, 0.0, 0.0, MosType::kNmos},
      {1.5, 0.0, 2.0, 0.0, MosType::kNmos},  // swapped
      {3.5, 0.0, 5.0, 5.0, MosType::kPmos},
  };
  for (const auto& c : cases) {
    const tech::MosParams& p =
        c.type == MosType::kNmos ? t.nmos : t.pmos;
    const TerminalEval e =
        evaluate_terminal(p, c.type, g, c.vg, c.vd, c.vs, c.vb);
    const double h = 1e-7;
    auto fd = [&](double dg, double dd, double ds, double db) {
      const TerminalEval e2 = evaluate_terminal(
          p, c.type, g, c.vg + dg, c.vd + dd, c.vs + ds, c.vb + db);
      return (e2.id_ds - e.id_ds) / h;
    };
    const double tol = 1e-4 * std::max(std::abs(e.id_ds) / 0.01, 1e-9);
    EXPECT_NEAR(fd(h, 0, 0, 0), e.di_dvg, tol) << "vg";
    EXPECT_NEAR(fd(0, h, 0, 0), e.di_dvd, tol) << "vd";
    EXPECT_NEAR(fd(0, 0, h, 0), e.di_dvs, tol) << "vs";
    EXPECT_NEAR(fd(0, 0, 0, h), e.di_dvb, tol) << "vb";
  }
}

// ---- capacitances ------------------------------------------------------------

TEST_F(Level1Test, GateCapsByRegion) {
  const double cox_total = t.cox * g.w * g.l;
  const GateCaps sat = gate_caps(t.nmos, t.cox, g, Region::kSaturation);
  EXPECT_NEAR(sat.cgs, (2.0 / 3.0) * cox_total + t.nmos.cgso * g.w, 1e-18);
  EXPECT_NEAR(sat.cgd, t.nmos.cgdo * g.w, 1e-20);
  const GateCaps tri = gate_caps(t.nmos, t.cox, g, Region::kTriode);
  EXPECT_NEAR(tri.cgs, tri.cgd, 1e-18);  // symmetric split
  const GateCaps off = gate_caps(t.nmos, t.cox, g, Region::kCutoff);
  EXPECT_NEAR(off.cgb, cox_total, 1e-18);
}

TEST_F(Level1Test, JunctionCapShrinksWithReverseBias) {
  const double area = t.diffusion_area(g.w);
  const double perim = t.diffusion_perimeter(g.w);
  const double c0 = junction_cap(t.nmos, area, perim, 0.0);
  const double c5 = junction_cap(t.nmos, area, perim, 5.0);
  EXPECT_GT(c0, c5);
  EXPECT_GT(c5, 0.0);
  // Forward bias clamps rather than blowing up.
  const double cfwd = junction_cap(t.nmos, area, perim, -10.0);
  EXPECT_TRUE(std::isfinite(cfwd));
}

// ---- design equations ------------------------------------------------------------

TEST(DesignEqs, SquareLawInverses) {
  const double kp = 24e-6;
  const double id = 10e-6;
  const double vov = 0.2;
  const double wl = wl_for_current(kp, id, vov);
  EXPECT_NEAR(vov_from_current(kp, id, wl), vov, 1e-12);
  const double gm = gm_from_id_vov(id, vov);
  EXPECT_NEAR(wl_for_gm(kp, gm, id), wl, wl * 1e-12);
  EXPECT_NEAR(id_for_gm_vov(gm, vov), id, 1e-18);
}

TEST(DesignEqs, DesignedDeviceMatchesLevel1) {
  // Size a device for a target (id, vov); the Level-1 model must agree.
  const Technology t = tech::five_micron();
  const double id = 20e-6;
  const double vov = 0.25;
  const double l = um(10.0);
  const double w = width_for_current(t, t.nmos, l, id, vov);
  const CoreEval e =
      evaluate_core(t.nmos, {w, l, 1}, {t.nmos.vt0 + vov, vov, 0.0});
  // At vds = vov (edge of saturation), CLM factor is 1 + lambda*vov.
  EXPECT_NEAR(e.id, id * (1.0 + t.nmos.lambda_at(l) * vov), id * 1e-6);
}

TEST(DesignEqs, WidthClampsAtMinimum) {
  const Technology t = tech::five_micron();
  bool clamped = false;
  const double w =
      width_for_current(t, t.nmos, t.lmin, 0.05e-6, 0.5, &clamped);
  EXPECT_TRUE(clamped);
  EXPECT_DOUBLE_EQ(w, t.wmin);
}

TEST(DesignEqs, LengthForLambda) {
  const Technology t = tech::five_micron();
  const double l = length_for_lambda(t, t.nmos, 0.01);
  EXPECT_NEAR(l, t.nmos.lambda_l / 0.01, 1e-12);
  // Large lambda targets clamp to lmin.
  EXPECT_DOUBLE_EQ(length_for_lambda(t, t.nmos, 1.0), t.lmin);
}

TEST(DesignEqs, RoutComposition) {
  EXPECT_NEAR(rout_sat(0.02, 10e-6), 5e6, 1.0);
  EXPECT_NEAR(parallel(1e6, 1e6), 5e5, 1.0);
  const double casc = rout_cascode(100e-6, 1e6, 2e6);
  EXPECT_GT(casc, 100e-6 * 1e6 * 2e6);  // gm*ro*ro dominates
}

TEST(DesignEqs, InvalidInputsThrow) {
  EXPECT_THROW(wl_for_current(0.0, 1e-6, 0.2), std::invalid_argument);
  EXPECT_THROW(gm_from_id_vov(1e-6, 0.0), std::invalid_argument);
  EXPECT_THROW(rout_sat(0.02, 0.0), std::invalid_argument);
  EXPECT_THROW(parallel(-1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace oasys::mos
