# Cross-process conformance check for sharded serving (ctest script).
#
# Pins the tentpole contract end to end, through the shipped CLI:
#   1. `oasys shard --workers k` stdout is BYTE-IDENTICAL to `oasys batch`
#      for k in 1, 2, 4 (both under --no-stats, which drops the
#      timing-bearing footer from each).
#   2. The deterministic section of the shard --metrics-json export is
#      byte-identical across those worker counts (per-shard counters and
#      exec.regions live in the timing section, by design).
#
# Expects: OASYS_CLI (path to the oasys binary), SPEC_DIR (directory of
# .spec files), TECH (technology file), WORK_DIR (writable scratch).
execute_process(
  COMMAND ${OASYS_CLI} batch ${SPEC_DIR} --tech ${TECH} --no-stats
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE batch_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "oasys batch failed (exit ${rc})")
endif()

foreach(workers 1 2 4)
  execute_process(
    COMMAND ${OASYS_CLI} shard ${SPEC_DIR} --tech ${TECH} --no-stats
            --workers ${workers}
            --metrics-json ${WORK_DIR}/shard_metrics_w${workers}.json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE shard_out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "oasys shard --workers ${workers} failed "
                        "(exit ${rc})")
  endif()
  # --metrics-json appends its confirmation line to stdout; the byte
  # comparison covers everything before it (the full summary output).
  string(FIND "${shard_out}" "metrics written to" cut)
  if(cut EQUAL -1)
    message(FATAL_ERROR "shard run did not confirm its metrics export")
  endif()
  string(SUBSTRING "${shard_out}" 0 ${cut} shard_summary)
  if(NOT shard_summary STREQUAL batch_out)
    message(FATAL_ERROR
            "shard --workers ${workers} output differs from batch:\n"
            "--- batch ---\n${batch_out}\n"
            "--- shard ---\n${shard_summary}")
  endif()

  file(READ ${WORK_DIR}/shard_metrics_w${workers}.json doc)
  string(FIND "${doc}" "\"timing\"" mcut)
  if(mcut EQUAL -1)
    message(FATAL_ERROR "shard metrics JSON has no timing section")
  endif()
  string(SUBSTRING "${doc}" 0 ${mcut} prefix)
  set(det_${workers} "${prefix}")
endforeach()

foreach(workers 2 4)
  if(NOT det_${workers} STREQUAL det_1)
    message(FATAL_ERROR
            "merged deterministic metrics differ between --workers 1 and "
            "--workers ${workers}:\n--- workers 1 ---\n${det_1}\n"
            "--- workers ${workers} ---\n${det_${workers}}")
  endif()
endforeach()

message(STATUS "shard output byte-identical to batch at --workers 1/2/4; "
               "merged deterministic metrics invariant")
