// Stress suite (ctest label: stress): SynthesisService under genuine
// multi-threaded contention, with a cache small enough to force
// evictions while requests are in flight.
//
// The sanitizer CI jobs run this under ASan/UBSan and TSan, which is the
// point: the assertions here are mostly "still correct under fire" —
// every wait() returns the bit-exact result direct synthesis produces,
// and the counter identities hold — while the sanitizers watch the
// interleavings themselves.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/service.h"
#include "synth/oasys.h"
#include "synth/result_json.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"

namespace oasys {
namespace {

constexpr std::size_t kThreads = 8;

// A workload wider than the cache: the paper corpus plus perturbed
// variants (distinct canonical keys), so a 4-entry LRU must evict while
// other threads still hold tickets to the displaced keys.
std::vector<core::OpAmpSpec> stress_specs() {
  std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  const std::size_t base = specs.size();
  for (std::size_t v = 1; v <= 3; ++v) {
    for (std::size_t i = 0; i < base; ++i) {
      core::OpAmpSpec s = specs[i];
      s.name += "-v" + std::to_string(v);
      s.gbw_min *= 1.0 + 0.01 * static_cast<double>(v);
      specs.push_back(s);
    }
  }
  return specs;  // 12 distinct keys
}

synth::SynthOptions serial_opts() {
  // Each synthesis runs serially; the concurrency under test is the
  // 8 caller threads hammering the service, not the executor beneath it.
  synth::SynthOptions o;
  o.jobs = 1;
  return o;
}

TEST(ServiceStress, EightThreadsSmallCacheBitExactResults) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = stress_specs();
  const synth::SynthOptions opts = serial_opts();

  // Reference renderings, computed serially up front.
  std::vector<std::string> expected;
  expected.reserve(specs.size());
  for (const core::OpAmpSpec& s : specs) {
    expected.push_back(
        synth::result_json(synth::synthesize_opamp(t, s, opts)));
  }

  service::ServiceOptions sopts;
  sopts.cache_capacity = 4;  // 12 distinct keys -> guaranteed evictions
  sopts.queue_capacity = 8;  // small bound -> inline drains under load
  service::SynthesisService svc(t, opts, sopts);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      // Each thread walks the workload from a different phase, so at any
      // instant different threads want different keys and the small LRU
      // churns.  3 rounds: cold, partially cached, repeatedly evicted.
      for (int round = 0; round < 3; ++round) {
        for (std::size_t k = 0; k < specs.size(); ++k) {
          const std::size_t i = (tid * 5 + k) % specs.size();
          const service::Ticket ticket = svc.submit(specs[i]);
          const synth::SynthesisResult r = svc.wait(ticket);
          if (synth::result_json(r) != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0)
      << "a cached/deduped/evicted path returned different bytes than "
         "direct synthesis";

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.requests, kThreads * 3 * specs.size());
  EXPECT_EQ(st.requests, st.hits + st.misses + st.dedup_joins);
  EXPECT_GT(st.evictions, 0u) << "cache never churned; stress is not "
                                 "exercising the eviction path";
  EXPECT_LE(st.cache_size, sopts.cache_capacity);
  EXPECT_EQ(st.latency.count, st.requests);
}

TEST(ServiceStress, MixedSubmittersAndDrainersKeepCountersConsistent) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = stress_specs();
  const synth::SynthOptions opts = serial_opts();

  service::ServiceOptions sopts;
  sopts.cache_capacity = 2;
  sopts.queue_capacity = 4;
  service::SynthesisService svc(t, opts, sopts);

  // Half the threads batch-submit then wait; half drain aggressively.
  // Tickets are redeemed exactly once each, so every submit must resolve.
  std::vector<std::thread> threads;
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      if (tid % 2 == 0) {
        std::vector<service::Ticket> tickets;
        for (std::size_t k = 0; k < specs.size(); ++k) {
          tickets.push_back(svc.submit(specs[(tid + k) % specs.size()]));
        }
        for (const service::Ticket& ticket : tickets) {
          (void)svc.wait(ticket);
        }
      } else {
        for (int j = 0; j < 50; ++j) svc.drain();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.requests, (kThreads / 2) * specs.size());
  EXPECT_EQ(st.requests, st.hits + st.misses + st.dedup_joins);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_EQ(st.latency.count, st.requests);
}

}  // namespace
}  // namespace oasys
