#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "numeric/interpolate.h"
#include "numeric/linear.h"
#include "numeric/matrix.h"
#include "numeric/rootfind.h"

namespace oasys::num {
namespace {

// ---- matrix ----------------------------------------------------------------

TEST(Matrix, BasicAccess) {
  RealMatrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(Matrix, OutOfRangeThrows) {
  RealMatrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(m(0, 2), std::out_of_range);
}

TEST(Matrix, Identity) {
  const auto id = RealMatrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Multiply) {
  RealMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  const auto y = m.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_THROW(m.multiply({1.0}), std::invalid_argument);
}

// ---- LU ---------------------------------------------------------------------

TEST(Lu, SolvesSmallSystem) {
  RealMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const auto x = solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  RealMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  RealMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  const auto f = lu_factor(a);
  EXPECT_TRUE(f.singular);
  // Both solve entry points throw the same type so callers can catch
  // consistently (lu_solve used to throw std::invalid_argument while
  // solve threw std::runtime_error).
  EXPECT_THROW(lu_solve(f, {1.0, 1.0}), SingularMatrixError);
  EXPECT_THROW(solve(a, {1.0, 1.0}), SingularMatrixError);
  // SingularMatrixError remains catchable as the historical base type.
  EXPECT_THROW(solve(a, {1.0, 1.0}), std::runtime_error);
}

TEST(Lu, DetectsSingularComplex) {
  using C = std::complex<double>;
  ComplexMatrix a(2, 2);
  a(0, 0) = C(1.0, 1.0);
  a(0, 1) = C(2.0, 2.0);
  a(1, 0) = C(2.0, 2.0);
  a(1, 1) = C(4.0, 4.0);  // row 1 = 2 * row 0
  const auto f = lu_factor(a);
  EXPECT_TRUE(f.singular);
  const std::vector<C> b = {C(1.0, 0.0), C(1.0, 0.0)};
  EXPECT_THROW(lu_solve(f, b), SingularMatrixError);
  EXPECT_THROW(solve(a, b), SingularMatrixError);
}

TEST(Lu, RhsSizeMismatchStaysInvalidArgument) {
  // Size mismatch is a caller bug, not a numerical condition; it keeps the
  // std::invalid_argument contract and is never conflated with
  // singularity.
  RealMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const auto f = lu_factor(a);
  ASSERT_FALSE(f.singular);
  EXPECT_THROW(lu_solve(f, {1.0}), std::invalid_argument);
}

TEST(Lu, RandomRoundTrip) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 12);
    RealMatrix a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t r = 0; r < n; ++r) {
      x_true[r] = u(rng);
      for (std::size_t c = 0; c < n; ++c) a(r, c) = u(rng);
      a(r, r) += 4.0;  // keep well conditioned
    }
    const auto b = a.multiply(x_true);
    const auto x = solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<double>;
  ComplexMatrix a(2, 2);
  a(0, 0) = C(1.0, 1.0);
  a(0, 1) = C(0.0, -1.0);
  a(1, 0) = C(2.0, 0.0);
  a(1, 1) = C(1.0, 0.0);
  const std::vector<C> x_true = {C(1.0, -1.0), C(0.5, 2.0)};
  const auto b = a.multiply(x_true);
  const auto x = solve(a, b);
  EXPECT_NEAR(std::abs(x[0] - x_true[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - x_true[1]), 0.0, 1e-12);
}

TEST(Lu, NonSquareThrows) {
  RealMatrix a(2, 3);
  EXPECT_THROW(lu_factor(a), std::invalid_argument);
}

TEST(Lu, MaxAbs) {
  EXPECT_DOUBLE_EQ(max_abs(std::vector<double>{1.0, -3.0, 2.0}), 3.0);
  EXPECT_DOUBLE_EQ(max_abs(std::vector<double>{}), 0.0);
}

// ---- in-place LU -----------------------------------------------------------

TEST(LuInPlace, MatchesByValueBitForBit) {
  // The by-value API is a wrapper over the in-place kernel; both must yield
  // exactly the same factors, permutations, and solutions — including when
  // the in-place factors object is reused across systems of varying size.
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  LuFactors<double> f;  // reused across trials: the steady-state hot path
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 6);
    RealMatrix a(n, n);
    std::vector<double> b(n);
    for (std::size_t r = 0; r < n; ++r) {
      b[r] = u(rng);
      for (std::size_t c = 0; c < n; ++c) a(r, c) = u(rng);
    }
    const auto by_value = lu_factor(a);
    RealMatrix scratch = a;  // in-place consumes its argument
    lu_factor_in_place(&scratch, &f);
    EXPECT_EQ(f.singular, by_value.singular);
    EXPECT_DOUBLE_EQ(f.min_pivot_magnitude, by_value.min_pivot_magnitude);
    EXPECT_EQ(f.perm, by_value.perm);
    EXPECT_EQ(f.pivots, by_value.pivots);
    ASSERT_EQ(f.lu.rows(), n);
    for (std::size_t k = 0; k < n * n; ++k) {
      EXPECT_EQ(f.lu.data()[k], by_value.lu.data()[k]);
    }
    if (f.singular) continue;
    const auto x_by_value = lu_solve(by_value, b);
    std::vector<double> x_in_place = b;
    lu_solve_in_place(f, &x_in_place);
    EXPECT_EQ(x_by_value, x_in_place);
  }
}

TEST(LuInPlace, MatchesByValueBitForBitComplex) {
  using C = std::complex<double>;
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  LuFactors<C> f;
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial % 4);
    ComplexMatrix a(n, n);
    std::vector<C> b(n);
    for (std::size_t r = 0; r < n; ++r) {
      b[r] = C(u(rng), u(rng));
      for (std::size_t c = 0; c < n; ++c) a(r, c) = C(u(rng), u(rng));
    }
    const auto by_value = lu_factor(a);
    ComplexMatrix scratch = a;
    lu_factor_in_place(&scratch, &f);
    EXPECT_EQ(f.singular, by_value.singular);
    EXPECT_EQ(f.perm, by_value.perm);
    EXPECT_EQ(f.pivots, by_value.pivots);
    for (std::size_t k = 0; k < n * n; ++k) {
      EXPECT_EQ(f.lu.data()[k], by_value.lu.data()[k]);
    }
    if (f.singular) continue;
    const auto x_by_value = lu_solve(by_value, b);
    std::vector<C> x_in_place = b;
    lu_solve_in_place(f, &x_in_place);
    EXPECT_EQ(x_by_value, x_in_place);
  }
}

TEST(LuInPlace, SingularIsFlaggedAndSolveThrows) {
  RealMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  LuFactors<double> f;
  lu_factor_in_place(&a, &f);
  EXPECT_TRUE(f.singular);
  std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW(lu_solve_in_place(f, &b), SingularMatrixError);
}

TEST(LuInPlace, NonSquareThrows) {
  RealMatrix a(2, 3);
  LuFactors<double> f;
  EXPECT_THROW(lu_factor_in_place(&a, &f), std::invalid_argument);
}

TEST(LuInPlace, RhsSizeMismatchThrows) {
  RealMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  LuFactors<double> f;
  lu_factor_in_place(&a, &f);
  ASSERT_FALSE(f.singular);
  std::vector<double> b = {1.0};
  EXPECT_THROW(lu_solve_in_place(f, &b), std::invalid_argument);
}

TEST(LuInPlace, StorageAdoptionRoundTrip) {
  // lu_factor_in_place swaps the caller's matrix with the factors' buffer:
  // after the first call the caller holds an empty matrix, after the second
  // the previous factor storage — so a refill-and-refactor loop settles
  // into recycling the same two buffers.
  LuFactors<double> f;
  RealMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  lu_factor_in_place(&a, &f);
  EXPECT_EQ(a.rows(), 0u);  // adopted f's initial (empty) buffer
  std::vector<double> x = {5.0, 10.0};
  lu_solve_in_place(f, &x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);

  a = RealMatrix(2, 2);  // the caller-side "refill before next call" guard
  a(0, 0) = 1.0;
  a(1, 1) = 4.0;
  lu_factor_in_place(&a, &f);
  EXPECT_EQ(a.rows(), 2u);  // got the first call's factor buffer back
  x = {3.0, 8.0};
  lu_solve_in_place(f, &x);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

// ---- root finding ---------------------------------------------------------------

TEST(RootFind, BisectSimple) {
  const auto r = bisect([](double x) { return x * x - 4.0; }, 0.0, 10.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 2.0, 1e-9);
}

TEST(RootFind, BisectNoSignChange) {
  EXPECT_FALSE(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0)
                   .has_value());
}

TEST(RootFind, BisectEndpointRoot) {
  RootOptions o;
  o.ftol = 1e-15;
  const auto r = bisect([](double x) { return x; }, 0.0, 1.0, o);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(RootFind, NewtonBisectConvergesFast) {
  const auto r = newton_bisect(
      [](double x) { return std::exp(x) - 3.0; }, -5.0, 5.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, std::log(3.0), 1e-9);
}

TEST(RootFind, NewtonBisectStaysBracketed) {
  // Steep function where raw Newton would overshoot.
  const auto r = newton_bisect(
      [](double x) { return std::tanh(20.0 * (x - 0.3)); }, -1.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 0.3, 1e-6);
}

TEST(RootFind, BracketExpands) {
  const auto b =
      bracket_root([](double x) { return x - 50.0; }, -1.0, 1.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(b->first, 50.0);
  EXPECT_GE(b->second, 50.0);
}

TEST(RootFind, BracketGivesUp) {
  EXPECT_FALSE(bracket_root([](double) { return 1.0; }, -1.0, 1.0, 5)
                   .has_value());
}

TEST(RootFind, GoldenMinimize) {
  const double x =
      golden_minimize([](double v) { return (v - 1.5) * (v - 1.5); }, -10.0,
                      10.0, 1e-10);
  EXPECT_NEAR(x, 1.5, 1e-7);
}

// ---- interpolation ------------------------------------------------------------------

TEST(Interp, LinearInterior) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 25.0);
}

TEST(Interp, LinearClampsOutside) {
  const std::vector<double> xs = {0.0, 1.0};
  const std::vector<double> ys = {3.0, 7.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, -1.0), 3.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 2.0), 7.0);
}

TEST(Interp, SizeMismatchThrows) {
  EXPECT_THROW(interp_linear({1.0}, {}, 0.5), std::invalid_argument);
  EXPECT_THROW(interp_linear({}, {}, 0.5), std::invalid_argument);
}

TEST(Interp, SemilogIsLinearInDecades) {
  const std::vector<double> xs = {1.0, 10.0, 100.0};
  const std::vector<double> ys = {0.0, -20.0, -40.0};
  // Halfway in log space between 1 and 10 is sqrt(10).
  EXPECT_NEAR(interp_semilogx(xs, ys, std::sqrt(10.0)), -10.0, 1e-9);
  EXPECT_THROW(interp_semilogx({0.0, 1.0}, {1.0, 2.0}, 0.5),
               std::invalid_argument);
}

TEST(Interp, FirstCrossing) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {10.0, 6.0, 2.0, -2.0};
  const auto c = first_crossing(xs, ys, 4.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(*c, 1.5, 1e-12);
  const auto zero = first_crossing(xs, ys, 0.0);
  ASSERT_TRUE(zero.has_value());
  EXPECT_NEAR(*zero, 2.5, 1e-12);
  EXPECT_FALSE(first_crossing(xs, ys, 100.0).has_value());
}

TEST(Interp, LogspaceEndpointsAndMonotone) {
  const auto v = logspace(1.0, 1e6, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_NEAR(v.front(), 1.0, 1e-12);
  EXPECT_NEAR(v.back(), 1e6, 1e-6);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
  EXPECT_NEAR(v[1] / v[0], 10.0, 1e-9);
  EXPECT_THROW(logspace(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, 2.0, 1), std::invalid_argument);
}

TEST(Interp, Linspace) {
  const auto v = linspace(-1.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
}

}  // namespace
}  // namespace oasys::num
