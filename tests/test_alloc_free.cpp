// Zero-allocation proof for the dense simulation kernels.
//
// Replaces global operator new/delete with counting versions, runs each
// kernel loop twice, and asserts the second pass performs zero heap
// allocations: the first pass grows the workspace buffers, after which the
// Newton iteration and the per-frequency AC solve must be steady-state
// allocation-free.  Everything inside a counted region is plain arithmetic
// on preallocated storage — no gtest assertions, no string building.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <new>
#include <vector>

#include "netlist/circuit.h"
#include "numeric/interpolate.h"
#include "numeric/linear.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/small_signal.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = align;
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) throw std::bad_alloc();
  return p;
}

// Runs `body` with allocation counting enabled and returns the count.
template <typename Fn>
std::size_t count_allocations(const Fn& body) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  body();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace oasys::sim {
namespace {

using ckt::Circuit;
using ckt::Waveform;
using util::um;
using Cplx = std::complex<double>;

// A MOS amplifier with enough devices to exercise realistic stamping.
Circuit amp_circuit(const tech::Technology& t) {
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto mid = c.node("mid");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(t.vdd));
  c.add_vsource("VIN", in, ckt::kGround, Waveform::ac(1.2, 1.0));
  c.add_mosfet("M1", mid, in, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(50.0), um(5.0));
  c.add_resistor("R1", vdd, mid, 50e3);
  c.add_mosfet("M2", out, mid, vdd, vdd, mos::MosType::kPmos, um(100.0),
               um(5.0));
  c.add_resistor("R2", out, ckt::kGround, 100e3);
  c.add_capacitor("CC", mid, out, 2e-12);
  c.add_capacitor("CL", out, ckt::kGround, 10e-12);
  return c;
}

TEST(AllocFree, NewtonKernelLoopIsAllocationFreeWhenWarm) {
  const tech::Technology t = tech::five_micron();
  const Circuit c = amp_circuit(t);
  const OpResult op = dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);

  NonlinearSystem sys(c, t);
  const std::size_t n = sys.layout().size();
  const std::size_t nv = sys.layout().num_node_unknowns();
  SimWorkspace ws;
  NonlinearSystem::EvalOptions eval_opts;
  std::vector<double> x(n);

  // One converged Newton solve from a flat start, exactly the kernel loop
  // dc_operating_point runs: eval, in-place factor, in-place solve, damped
  // update, convergence check.  The factor adopts the Jacobian's storage by
  // swap, so two buffers rotate between ws.jac and ws.lu; a multi-iteration
  // first pass primes both, after which the rotation is allocation-free.
  bool converged = false;
  const OpOptions opts;
  auto newton_pass = [&] {
    for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
    converged = false;
    for (int iter = 0; iter < opts.max_iterations && !converged; ++iter) {
      sys.eval(x, eval_opts, &ws.jac, &ws.residual);
      num::lu_factor_in_place(&ws.jac, &ws.lu);
      if (ws.lu.singular) return;
      ws.step.resize(n);
      for (std::size_t i = 0; i < n; ++i) ws.step[i] = -ws.residual[i];
      num::lu_solve_in_place(ws.lu, &ws.step);
      double max_dv = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        max_dv = std::max(max_dv, std::abs(ws.step[i]));
      }
      double scale = 1.0;
      if (max_dv > opts.vlimit_step) scale = opts.vlimit_step / max_dv;
      for (std::size_t i = 0; i < n; ++i) x[i] += scale * ws.step[i];
      if (max_dv < opts.vntol) {
        sys.eval(x, eval_opts, nullptr, &ws.residual);
        double max_node_residual = 0.0;
        for (std::size_t i = 0; i < nv; ++i) {
          max_node_residual =
              std::max(max_node_residual, std::abs(ws.residual[i]));
        }
        if (max_node_residual < opts.abstol) converged = true;
      }
    }
  };

  newton_pass();  // first pass grows every workspace buffer
  ASSERT_TRUE(converged);
  const std::size_t allocs = count_allocations(newton_pass);
  ASSERT_TRUE(converged);
  EXPECT_EQ(allocs, 0u)
      << "warm Newton kernel loop performed heap allocations";
}

TEST(AllocFree, BatchedDeviceEvalNewtonLoopIsAllocationFreeWhenWarm) {
  // Same warm Newton kernel loop as above, but through the SoA batch
  // device path: re-biasing the device table, running the batch kernel,
  // and stamping from the flat arrays must all be allocation-free once
  // the table and workspace have their steady sizes.
  const tech::Technology t = tech::five_micron();
  const Circuit c = amp_circuit(t);
  NonlinearSystem sys(c, t);
  const std::size_t n = sys.layout().size();
  const std::size_t nv = sys.layout().num_node_unknowns();
  SimWorkspace ws;
  NonlinearSystem::EvalOptions eval_opts;
  eval_opts.device_eval = DeviceEval::kBatch;
  std::vector<double> x(n);

  bool converged = false;
  const OpOptions opts;
  auto newton_pass = [&] {
    sys.build_device_table(&ws.devices);  // in-place refresh at steady size
    for (std::size_t i = 0; i < n; ++i) x[i] = 0.0;
    converged = false;
    for (int iter = 0; iter < opts.max_iterations && !converged; ++iter) {
      sys.eval(x, eval_opts, &ws.jac, &ws.residual, nullptr, &ws.devices);
      num::lu_factor_in_place(&ws.jac, &ws.lu);
      if (ws.lu.singular) return;
      ws.step.resize(n);
      for (std::size_t i = 0; i < n; ++i) ws.step[i] = -ws.residual[i];
      num::lu_solve_in_place(ws.lu, &ws.step);
      double max_dv = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        max_dv = std::max(max_dv, std::abs(ws.step[i]));
      }
      double scale = 1.0;
      if (max_dv > opts.vlimit_step) scale = opts.vlimit_step / max_dv;
      for (std::size_t i = 0; i < n; ++i) x[i] += scale * ws.step[i];
      if (max_dv < opts.vntol) {
        sys.eval(x, eval_opts, nullptr, &ws.residual, nullptr, &ws.devices);
        double max_node_residual = 0.0;
        for (std::size_t i = 0; i < nv; ++i) {
          max_node_residual =
              std::max(max_node_residual, std::abs(ws.residual[i]));
        }
        if (max_node_residual < opts.abstol) converged = true;
      }
    }
  };

  newton_pass();  // grows the workspace buffers and the device table
  ASSERT_TRUE(converged);
  const std::size_t allocs = count_allocations(newton_pass);
  ASSERT_TRUE(converged);
  EXPECT_EQ(allocs, 0u)
      << "warm batched-device-eval Newton loop performed heap allocations";
}

TEST(AllocFree, AcSweepKernelLoopIsAllocationFreeWhenWarm) {
  const tech::Technology t = tech::five_micron();
  const Circuit c = amp_circuit(t);
  const OpResult op = dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);

  NonlinearSystem sys(c, t);
  const MnaLayout& layout = sys.layout();
  const std::size_t n = layout.size();
  num::RealMatrix g, cap;
  build_small_signal_matrices(c, layout, op, &g, &cap);
  const double* g_flat = g.data();
  const double* cap_flat = cap.data();
  std::vector<Cplx> rhs(n, Cplx{});
  for (std::size_t k = 0; k < c.vsources().size(); ++k) {
    const auto& v = c.vsources()[k];
    if (v.wave.ac_mag() != 0.0) {
      const double ph = util::rad(v.wave.ac_phase_deg());
      rhs[layout.branch_index(k)] = std::polar(v.wave.ac_mag(), ph);
    }
  }
  const std::vector<double> freqs = num::logspace(1.0, 1e8, 50);

  // The per-lane AC loop from ac_analysis: one reused complex matrix and
  // factorization, solutions solved in place into preallocated slots.
  num::ComplexMatrix y;
  num::LuFactors<Cplx> lu;
  std::vector<std::vector<Cplx>> solutions(freqs.size(),
                                           std::vector<Cplx>(n));
  bool singular = false;
  auto ac_pass = [&] {
    singular = false;
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      const double w = util::kTwoPi * freqs[i];
      if (y.rows() != n || y.cols() != n) y = num::ComplexMatrix(n, n);
      Cplx* yd = y.data();
      for (std::size_t k = 0; k < n * n; ++k) {
        yd[k] = Cplx(g_flat[k], w * cap_flat[k]);
      }
      num::lu_factor_in_place(&y, &lu);
      if (lu.singular) {
        singular = true;
        return;
      }
      std::vector<Cplx>& sol = solutions[i];
      sol = rhs;  // same size: copies into existing storage
      num::lu_solve_in_place(lu, &sol);
    }
  };

  ac_pass();  // first pass grows the matrix, factor, and pivot buffers
  ASSERT_FALSE(singular);
  const std::size_t allocs = count_allocations(ac_pass);
  ASSERT_FALSE(singular);
  EXPECT_EQ(allocs, 0u)
      << "warm AC sweep kernel loop performed heap allocations";
}

}  // namespace
}  // namespace oasys::sim
