// Tolerance-tier golden comparison (oasys.tol.v1).
//
// The byte-exact golden suite (tests/golden/, test_golden.cpp) pins
// outputs that are bit-deterministic by contract.  Adaptive-transient
// measurements are deterministic on one build but *tolerance-equal*
// across compilers and architectures, so they get their own tier: each
// golden document carries the measured metrics AND the per-metric
// acceptance envelopes a candidate must satisfy —
//
//   |candidate - golden| <= abs + rel * |golden|
//
// Envelopes living in the golden file itself means the comparator needs
// no out-of-band configuration, and loosening a tolerance is a reviewed
// golden-file diff, never a hidden harness change.  A document may carry
// a "*" envelope as the default for metrics without their own entry;
// abs == rel == 0 pins a value exactly (integer/boolean metrics).
//
// Non-finite values are first-class: JSON has no literals for them, so
// the documents carry the strings "nan" / "inf" / "-inf".  Two NaNs
// compare equal (the golden says "this metric is expected to be
// undefined"); mismatched finiteness is always a violation no matter the
// envelope.
//
// Header-only and dependency-free (a restricted JSON parser is included)
// so both the gtest suite and the standalone `tolcmp` checker build from
// this one file.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace oasys::tolcmp {

// ---- restricted JSON ---------------------------------------------------

// Just enough JSON for oasys.tol.v1: objects, strings, numbers, bools,
// null.  Arrays are parsed (future-proofing) but unused by the schema.
// Object member order is preserved so reports list metrics in document
// order.  Throws std::runtime_error with a byte offset on malformed
// input.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v.kind = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = string_body();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.kind = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = string_body();
      return v;
    }
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      v.kind = JsonValue::Kind::kNumber;
      const std::size_t start = pos_;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
            d == 'e' || d == 'E') {
          ++pos_;
        } else {
          break;
        }
      }
      if (pos_ == start) fail("bad number");
      std::size_t used = 0;
      try {
        v.number = std::stod(text_.substr(start, pos_ - start), &used);
      } catch (const std::exception&) {
        fail("bad number");
      }
      if (used != pos_ - start) fail("bad number");
      return v;
    }
    fail("unexpected character");
  }

  // Parses a string literal (opening quote still pending).  Only the
  // escapes the generator emits are supported; anything exotic is a
  // malformed document.
  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: fail("unsupported escape");
        }
        continue;
      }
      out += c;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline JsonValue parse_json(const std::string& text) {
  return detail::Parser(text).parse();
}

// ---- oasys.tol.v1 ------------------------------------------------------

struct Envelope {
  double abs = 0.0;
  double rel = 0.0;
};

struct TolDocument {
  std::string subject;
  std::string tech;
  std::string tran_mode;
  double tran_rtol = 0.0;
  double tran_atol = 0.0;
  // Document order preserved: reports walk metrics in the order the
  // golden file lists them.
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, Envelope>> tol;

  const double* metric(const std::string& name) const {
    for (const auto& [k, v] : metrics) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  // Envelope lookup: the metric's own entry, else the "*" default, else
  // exact (abs == rel == 0).
  Envelope envelope(const std::string& name) const {
    const Envelope* star = nullptr;
    for (const auto& [k, v] : tol) {
      if (k == name) return v;
      if (k == "*") star = &v;
    }
    return star != nullptr ? *star : Envelope{};
  }
};

// A numeric field: a JSON number, or the strings "nan"/"inf"/"-inf".
inline double tol_number(const JsonValue& v, const std::string& what) {
  if (v.kind == JsonValue::Kind::kNumber) return v.number;
  if (v.kind == JsonValue::Kind::kString) {
    if (v.string == "nan") return std::numeric_limits<double>::quiet_NaN();
    if (v.string == "inf") return std::numeric_limits<double>::infinity();
    if (v.string == "-inf") return -std::numeric_limits<double>::infinity();
  }
  throw std::runtime_error(what + ": expected a number or \"nan\"/\"inf\"/"
                                  "\"-inf\"");
}

inline TolDocument parse_tol_document(const std::string& text) {
  const JsonValue root = parse_json(text);
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("tol document: root is not an object");
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != "oasys.tol.v1") {
    throw std::runtime_error("tol document: schema is not oasys.tol.v1");
  }
  TolDocument doc;
  auto req_string = [&](const char* key) -> std::string {
    const JsonValue* v = root.find(key);
    if (v == nullptr || v->kind != JsonValue::Kind::kString) {
      throw std::runtime_error(std::string("tol document: missing string "
                                           "field '") + key + "'");
    }
    return v->string;
  };
  doc.subject = req_string("subject");
  doc.tech = req_string("tech");

  const JsonValue* tran = root.find("tran");
  if (tran == nullptr || tran->kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("tol document: missing 'tran' object");
  }
  const JsonValue* mode = tran->find("mode");
  if (mode == nullptr || mode->kind != JsonValue::Kind::kString) {
    throw std::runtime_error("tol document: missing tran.mode");
  }
  doc.tran_mode = mode->string;
  const JsonValue* rtol = tran->find("rtol");
  const JsonValue* atol = tran->find("atol");
  if (rtol == nullptr || atol == nullptr) {
    throw std::runtime_error("tol document: missing tran.rtol/atol");
  }
  doc.tran_rtol = tol_number(*rtol, "tran.rtol");
  doc.tran_atol = tol_number(*atol, "tran.atol");

  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("tol document: missing 'metrics' object");
  }
  for (const auto& [k, v] : metrics->object) {
    doc.metrics.emplace_back(k, tol_number(v, "metrics." + k));
  }

  const JsonValue* tol = root.find("tol");
  if (tol == nullptr || tol->kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("tol document: missing 'tol' object");
  }
  for (const auto& [k, v] : tol->object) {
    if (v.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("tol document: tol." + k +
                               " is not an object");
    }
    const JsonValue* abs = v.find("abs");
    const JsonValue* rel = v.find("rel");
    if (abs == nullptr || rel == nullptr) {
      throw std::runtime_error("tol document: tol." + k +
                               " needs abs and rel");
    }
    Envelope e;
    e.abs = tol_number(*abs, "tol." + k + ".abs");
    e.rel = tol_number(*rel, "tol." + k + ".rel");
    doc.tol.emplace_back(k, e);
  }
  return doc;
}

// ---- comparison --------------------------------------------------------

struct Offender {
  std::string metric;
  double golden = 0.0;
  double candidate = 0.0;
  double error = 0.0;    // |candidate - golden| (inf for shape mismatches)
  double allowed = 0.0;  // abs + rel * |golden|
  // error / allowed: > 1 is a violation; the worst offender is the
  // largest ratio.  Exact pins (allowed == 0) report inf on any error.
  double ratio = 0.0;
  std::string reason;  // empty for plain envelope violations
};

struct CompareReport {
  bool ok = true;
  // Every violation, worst (largest ratio) first.
  std::vector<Offender> offenders;
  // Worst *checked* metric even when everything passes — "how much
  // headroom is left" is the number a tolerance review wants.
  Offender worst;
  std::size_t compared = 0;
};

// Compares candidate against golden under the golden's envelopes.
// Metadata (subject, tech, tran mode) must match exactly; metric sets
// must be identical (a missing or extra metric is a violation, not a
// skip); each value must land inside its envelope.  NaN golden expects
// NaN candidate; infinite golden expects the same infinity.
inline CompareReport compare_documents(const TolDocument& golden,
                                       const TolDocument& candidate) {
  CompareReport report;
  const double inf = std::numeric_limits<double>::infinity();

  auto add = [&](Offender o) {
    report.ok = false;
    report.offenders.push_back(std::move(o));
  };
  auto meta = [&](const std::string& field, const std::string& g,
                  const std::string& c) {
    if (g == c) return;
    Offender o;
    o.metric = field;
    o.error = inf;
    o.ratio = inf;
    o.reason = field + " mismatch: golden '" + g + "' vs candidate '" + c +
               "'";
    add(std::move(o));
  };
  meta("subject", golden.subject, candidate.subject);
  meta("tech", golden.tech, candidate.tech);
  meta("tran.mode", golden.tran_mode, candidate.tran_mode);

  for (const auto& [name, gval] : golden.metrics) {
    const double* cptr = candidate.metric(name);
    if (cptr == nullptr) {
      Offender o;
      o.metric = name;
      o.golden = gval;
      o.candidate = std::numeric_limits<double>::quiet_NaN();
      o.error = inf;
      o.ratio = inf;
      o.reason = "metric missing from candidate";
      add(std::move(o));
      continue;
    }
    const double cval = *cptr;
    const Envelope env = golden.envelope(name);

    Offender o;
    o.metric = name;
    o.golden = gval;
    o.candidate = cval;
    o.allowed = env.abs + env.rel * std::abs(gval);

    const bool gnan = std::isnan(gval);
    const bool cnan = std::isnan(cval);
    if (gnan || cnan) {
      if (gnan && cnan) {
        // Both undefined: a match by contract, error 0.
        o.error = 0.0;
        o.ratio = 0.0;
      } else {
        o.error = inf;
        o.ratio = inf;
        o.reason = gnan ? "golden is nan, candidate is not"
                        : "candidate is nan, golden is not";
      }
    } else if (std::isinf(gval) || std::isinf(cval)) {
      if (gval == cval) {
        o.error = 0.0;
        o.ratio = 0.0;
      } else {
        o.error = inf;
        o.ratio = inf;
        o.reason = "non-finite mismatch";
      }
    } else {
      o.error = std::abs(cval - gval);
      o.ratio = o.allowed > 0.0 ? o.error / o.allowed
                                : (o.error == 0.0 ? 0.0 : inf);
    }

    ++report.compared;
    if (report.compared == 1 || o.ratio > report.worst.ratio) {
      report.worst = o;
    }
    if (o.ratio > 1.0 || !o.reason.empty()) add(std::move(o));
  }

  for (const auto& [name, cval] : candidate.metrics) {
    if (golden.metric(name) != nullptr) continue;
    Offender o;
    o.metric = name;
    o.golden = std::numeric_limits<double>::quiet_NaN();
    o.candidate = cval;
    o.error = inf;
    o.ratio = inf;
    o.reason = "metric not present in golden";
    add(std::move(o));
  }

  std::stable_sort(report.offenders.begin(), report.offenders.end(),
                   [](const Offender& a, const Offender& b) {
                     return a.ratio > b.ratio;
                   });
  return report;
}

}  // namespace oasys::tolcmp
