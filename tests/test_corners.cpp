// Cross-process and process-corner robustness: the same spec synthesized
// in a different technology, and nominal designs re-verified under
// slow/fast corner derating (the paper's Sec. 2.1 point that process
// spread dominates analog design).
#include <gtest/gtest.h>

#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::synth {
namespace {

using tech::Corner;
using tech::Technology;

TEST(CornerModel, DeratingDirections) {
  const Technology tt = tech::five_micron();
  const Technology ss = tech::at_corner(tt, Corner::kSlow);
  const Technology ff = tech::at_corner(tt, Corner::kFast);
  EXPECT_LT(ss.nmos.kp, tt.nmos.kp);
  EXPECT_GT(ss.nmos.vt0, tt.nmos.vt0);
  EXPECT_GT(ff.pmos.kp, tt.pmos.kp);
  EXPECT_LT(ff.pmos.vt0, tt.pmos.vt0);
  EXPECT_EQ(ss.name, "cmos5-ss");
  EXPECT_EQ(ff.name, "cmos5-ff");
  // Typical passthrough.
  EXPECT_EQ(tech::at_corner(tt, Corner::kTypical).name, tt.name);
  EXPECT_FALSE(ss.validate().has_errors());
}

TEST(CrossProcess, CaseAPortsToThreeMicron) {
  // The framework reads everything from the technology description: the
  // same spec must synthesize in the 3 um process without code changes.
  const Technology t3 = tech::three_micron();
  const SynthesisResult r = synthesize_opamp(t3, spec_case_a());
  ASSERT_TRUE(r.success());
  const MeasuredOpAmp m = measure_opamp(*r.best(), t3);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_GE(m.perf.gain_db, spec_case_a().gain_min_db - 2.0);
  EXPECT_GE(m.perf.gbw, spec_case_a().gbw_min * 0.7);
}

TEST(CrossProcess, ThreeMicronIsSmaller) {
  const SynthesisResult r5 =
      synthesize_opamp(tech::five_micron(), spec_case_a());
  const SynthesisResult r3 =
      synthesize_opamp(tech::three_micron(), spec_case_a());
  ASSERT_TRUE(r5.success());
  ASSERT_TRUE(r3.success());
  EXPECT_LT(r3.best()->predicted.area, r5.best()->predicted.area);
}

class CornerCase : public ::testing::TestWithParam<Corner> {};

TEST_P(CornerCase, NominalDesignSurvivesCorner) {
  // Synthesize at typical; re-simulate the *same sized design* with the
  // corner-derated device parameters.  The design margins (15% on GBW and
  // slew) must absorb the corner spread for the key axes.
  const Technology tt = tech::five_micron();
  const Technology corner_tech = tech::at_corner(tt, GetParam());
  const core::OpAmpSpec spec = spec_case_b();
  const SynthesisResult r = synthesize_opamp(tt, spec);
  ASSERT_TRUE(r.success());

  MeasureOptions mo;
  mo.measure_icmr = false;
  const MeasuredOpAmp m = measure_opamp(*r.best(), corner_tech, mo);
  ASSERT_TRUE(m.ok) << m.error << " at corner "
                    << tech::to_string(GetParam());
  // Gain is lambda-dominated and barely moves; GBW tracks sqrt(KP).
  EXPECT_GE(m.perf.gain_db, spec.gain_min_db - 3.0);
  EXPECT_GE(m.perf.gbw, spec.gbw_min * 0.80);
  EXPECT_GT(m.perf.pm_deg, 35.0);
  // Bias currents shift with VGS across corners but stay bounded.
  EXPECT_LT(m.perf.power, spec.power_max);
}

INSTANTIATE_TEST_SUITE_P(Corners, CornerCase,
                         ::testing::Values(Corner::kSlow, Corner::kFast),
                         [](const auto& info) {
                           return std::string(tech::to_string(info.param));
                         });

TEST(CornerEnumeration, ParallelMatchesSerialPerCorner) {
  // The parallel corner enumerator must hand back, slot for slot, exactly
  // what a serial measure_opamp at that corner produces.
  const Technology tt = tech::five_micron();
  const SynthesisResult r = synthesize_opamp(tt, spec_case_b());
  ASSERT_TRUE(r.success());

  MeasureOptions mo;
  mo.measure_slew = false;
  mo.measure_icmr = false;
  const std::vector<Corner> corners = {Corner::kSlow, Corner::kTypical,
                                       Corner::kFast};
  const std::vector<MeasuredOpAmp> par =
      measure_across_corners(*r.best(), tt, corners, mo, 8);
  ASSERT_EQ(par.size(), corners.size());
  for (std::size_t i = 0; i < corners.size(); ++i) {
    const MeasuredOpAmp serial =
        measure_opamp(*r.best(), tech::at_corner(tt, corners[i]), mo);
    ASSERT_EQ(par[i].ok, serial.ok) << tech::to_string(corners[i]);
    EXPECT_EQ(par[i].perf.gain_db, serial.perf.gain_db);
    EXPECT_EQ(par[i].perf.gbw, serial.perf.gbw);
    EXPECT_EQ(par[i].perf.pm_deg, serial.perf.pm_deg);
    EXPECT_EQ(par[i].perf.power, serial.perf.power);
    EXPECT_EQ(par[i].bode.phase_deg, serial.bode.phase_deg);
  }
}

}  // namespace
}  // namespace oasys::synth
