#include <gtest/gtest.h>

#include <cmath>

#include "netlist/circuit.h"
#include "spice/dc.h"
#include "spice/sweep.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::sim {
namespace {

using ckt::Circuit;
using ckt::Waveform;
using tech::Technology;
using util::um;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

TEST(DcLinear, VoltageDivider) {
  Circuit c;
  const auto vin = c.node("in");
  const auto mid = c.node("mid");
  c.add_vsource("V1", vin, ckt::kGround, Waveform::dc(10.0));
  c.add_resistor("R1", vin, mid, 1e3);
  c.add_resistor("R2", mid, ckt::kGround, 3e3);
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  MnaLayout layout(c);
  EXPECT_NEAR(op.voltage(layout, mid), 7.5, 1e-6);
  // Branch current flows pos->neg through the source: -10/4k.
  EXPECT_NEAR(op.branch_current(layout, 0), -2.5e-3, 1e-9);
}

TEST(DcLinear, CurrentSourceIntoResistor) {
  Circuit c;
  const auto n = c.node("n");
  c.add_isource("I1", ckt::kGround, n, Waveform::dc(1e-3));
  c.add_resistor("R1", n, ckt::kGround, 2e3);
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  MnaLayout layout(c);
  EXPECT_NEAR(op.voltage(layout, n), 2.0, 1e-6);
}

TEST(DcLinear, SupplyPowerBookkeeping) {
  Circuit c;
  const auto n = c.node("n");
  c.add_vsource("V1", n, ckt::kGround, Waveform::dc(5.0));
  c.add_resistor("R1", n, ckt::kGround, 1e3);
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  MnaLayout layout(c);
  EXPECT_NEAR(supply_power(c, layout, op), 25e-3, 1e-9);
}

TEST(DcLinear, CapacitorIsOpenAtDc) {
  Circuit c;
  const auto a = c.node("a");
  const auto b = c.node("b");
  c.add_vsource("V1", a, ckt::kGround, Waveform::dc(1.0));
  c.add_resistor("R1", a, b, 1e3);
  c.add_capacitor("C1", b, ckt::kGround, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  MnaLayout layout(c);
  // No DC path through the cap: node b floats up to the source value.
  EXPECT_NEAR(op.voltage(layout, b), 1.0, 1e-3);
}

// ---- MOS circuits -------------------------------------------------------------

TEST(DcMos, DiodeConnectedDevice) {
  const Technology& t = tech5();
  Circuit c;
  const auto d = c.node("d");
  const auto vdd = c.node("vdd");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_resistor("R1", vdd, d, 100e3);
  c.add_mosfet("M1", d, d, ckt::kGround, ckt::kGround, mos::MosType::kNmos,
               um(50.0), um(5.0));
  const OpResult op = dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);
  MnaLayout layout(c);
  const double vgs = op.voltage(layout, d);
  // Current through R equals the device current; VGS above threshold.
  EXPECT_GT(vgs, t.nmos.vt0);
  EXPECT_LT(vgs, 2.0);
  const double ir = (5.0 - vgs) / 100e3;
  EXPECT_NEAR(op.devices[0].id, ir, ir * 1e-3);
  EXPECT_EQ(op.devices[0].region, mos::Region::kSaturation);
}

TEST(DcMos, SimpleCurrentMirrorCopiesCurrent) {
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto g = c.node("g");
  const auto o = c.node("o");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_isource("IREF", vdd, g, Waveform::dc(util::ua(20.0)));
  c.add_mosfet("M1", g, g, ckt::kGround, ckt::kGround, mos::MosType::kNmos,
               um(50.0), um(10.0));
  c.add_mosfet("M2", o, g, ckt::kGround, ckt::kGround, mos::MosType::kNmos,
               um(50.0), um(10.0));
  c.add_resistor("RL", vdd, o, 50e3);
  const OpResult op = dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);
  MnaLayout layout(c);
  const double iout = (5.0 - op.voltage(layout, o)) / 50e3;
  // Mirrored within channel-length-modulation error (< ~5%).
  EXPECT_NEAR(iout, util::ua(20.0), util::ua(1.5));
}

TEST(DcMos, CmosInverterTransfersLogicLevels) {
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_vsource("VIN", in, ckt::kGround, Waveform::dc(0.0));
  c.add_mosfet("MN", out, in, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(10.0), um(5.0));
  c.add_mosfet("MP", out, in, vdd, vdd, mos::MosType::kPmos, um(25.0),
               um(5.0));
  MnaLayout layout(c);

  const OpResult low = dc_operating_point(c, t);
  ASSERT_TRUE(low.converged);
  EXPECT_GT(low.voltage(layout, out), 4.9);  // input low -> output high

  c.vsource(*c.find_vsource("VIN")).wave = Waveform::dc(5.0);
  const OpResult high = dc_operating_point(c, t);
  ASSERT_TRUE(high.converged);
  EXPECT_LT(high.voltage(layout, out), 0.1);
}

TEST(DcMos, KclResidualIsTiny) {
  // Property: at a converged OP the nodal residual is below abstol.
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto g = c.node("g");
  const auto o = c.node("o");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_isource("IREF", vdd, g, Waveform::dc(util::ua(10.0)));
  c.add_mosfet("M1", g, g, ckt::kGround, ckt::kGround, mos::MosType::kNmos,
               um(20.0), um(5.0));
  c.add_mosfet("M2", o, g, ckt::kGround, ckt::kGround, mos::MosType::kNmos,
               um(20.0), um(5.0));
  c.add_resistor("RL", vdd, o, 100e3);
  const OpResult op = dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);

  NonlinearSystem sys(c, t);
  std::vector<double> f;
  NonlinearSystem::EvalOptions eo;
  sys.eval(op.solution, eo, nullptr, &f);
  for (std::size_t i = 0; i < sys.layout().num_node_unknowns(); ++i) {
    EXPECT_LT(std::abs(f[i]), 1e-8) << "node " << i;
  }
}

TEST(DcMos, WarmStartConvergesFaster) {
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto g = c.node("g");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_isource("IREF", vdd, g, Waveform::dc(util::ua(10.0)));
  c.add_mosfet("M1", g, g, ckt::kGround, ckt::kGround, mos::MosType::kNmos,
               um(20.0), um(5.0));
  const OpResult cold = dc_operating_point(c, t);
  ASSERT_TRUE(cold.converged);
  OpOptions warm_opts;
  warm_opts.initial_guess = cold.solution;
  const OpResult warm = dc_operating_point(c, t, warm_opts);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.total_iterations, cold.total_iterations);
}

// ---- sweeps ------------------------------------------------------------------

TEST(DcSweep, InverterTransferCurveIsMonotone) {
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_vsource("VIN", in, ckt::kGround, Waveform::dc(0.0));
  c.add_mosfet("MN", out, in, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(10.0), um(5.0));
  c.add_mosfet("MP", out, in, vdd, vdd, mos::MosType::kPmos, um(25.0),
               um(5.0));
  std::vector<double> values;
  for (double v = 0.0; v <= 5.0 + 1e-9; v += 0.25) values.push_back(v);
  const DcSweepResult sweep = dc_sweep_vsource(c, t, "VIN", values);
  ASSERT_TRUE(sweep.ok) << sweep.error;
  MnaLayout layout(c);
  const auto vout = sweep.node_voltages(layout, out);
  for (std::size_t i = 1; i < vout.size(); ++i) {
    EXPECT_LE(vout[i], vout[i - 1] + 1e-6);
  }
  // Source restored after the sweep.
  EXPECT_DOUBLE_EQ(c.vsources()[*c.find_vsource("VIN")].wave.dc_value(),
                   0.0);
}

TEST(DcSweep, UnknownSourceFails) {
  Circuit c;
  c.add_resistor("R", c.node("a"), ckt::kGround, 1e3);
  const Technology& t = tech5();
  const DcSweepResult sweep = dc_sweep_vsource(c, t, "NOPE", {0.0});
  EXPECT_FALSE(sweep.ok);
}

}  // namespace
}  // namespace oasys::sim

namespace oasys::sim {
namespace {

TEST(DcHomotopy, SteppingRescuesCrippledNewton) {
  // A stiff multi-device circuit (diode stack + mirror + gain stage) with
  // the per-solve Newton budget cut low: the plain attempt must fail and a
  // continuation strategy must still find the operating point.
  const tech::Technology& t = tech::five_micron();
  ckt::Circuit c;
  const auto vdd = c.node("vdd");
  const auto vbn = c.node("vbn");
  const auto vbn2 = c.node("vbn2");
  const auto out = c.node("out");
  const auto mid = c.node("mid");
  c.add_vsource("VDD", vdd, ckt::kGround, ckt::Waveform::dc(10.0));
  c.add_resistor("RREF", vdd, vbn2, 300e3);
  c.add_mosfet("MB1", vbn, vbn, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, util::um(50.0), util::um(10.0));
  c.add_mosfet("MB2", vbn2, vbn2, vbn, ckt::kGround, mos::MosType::kNmos,
               util::um(50.0), util::um(5.0));
  c.add_mosfet("M5", mid, vbn, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, util::um(100.0), util::um(10.0));
  c.add_mosfet("M6", out, mid, vdd, vdd, mos::MosType::kPmos,
               util::um(200.0), util::um(5.0));
  c.add_mosfet("M7", out, vbn, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, util::um(100.0), util::um(10.0));
  c.add_resistor("RMID", vdd, mid, 200e3);

  OpOptions crippled;
  crippled.max_iterations = 16;  // too few for cold Newton on this circuit
  const OpResult op = dc_operating_point(c, t, crippled);
  ASSERT_TRUE(op.converged);
  EXPECT_NE(op.strategy, "newton");

  // The full-budget solve agrees with the continuation result.
  const OpResult ref = dc_operating_point(c, t);
  ASSERT_TRUE(ref.converged);
  MnaLayout layout(c);
  EXPECT_NEAR(op.voltage(layout, out), ref.voltage(layout, out), 1e-4);
  EXPECT_NEAR(op.voltage(layout, vbn), ref.voltage(layout, vbn), 1e-4);
}

TEST(DcHomotopy, AllStrategiesDisabledFailsGracefully) {
  const tech::Technology& t = tech::five_micron();
  ckt::Circuit c;
  const auto vdd = c.node("vdd");
  const auto d = c.node("d");
  c.add_vsource("VDD", vdd, ckt::kGround, ckt::Waveform::dc(5.0));
  c.add_resistor("R1", vdd, d, 100e3);
  c.add_mosfet("M1", d, d, ckt::kGround, ckt::kGround, mos::MosType::kNmos,
               util::um(50.0), util::um(5.0));
  OpOptions opts;
  opts.max_iterations = 1;  // guaranteed failure
  opts.try_gmin_stepping = false;
  opts.try_source_stepping = false;
  const OpResult op = dc_operating_point(c, t, opts);
  EXPECT_FALSE(op.converged);
  EXPECT_FALSE(op.solution.empty());  // best iterate still reported
}

}  // namespace
}  // namespace oasys::sim
