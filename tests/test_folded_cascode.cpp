// Folded-cascode style: designer invariants and end-to-end simulator
// agreement for the paper's named future-work topology.
#include <gtest/gtest.h>

#include "synth/folded_cascode_designer.h"
#include "synth/netlist_builder.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::synth {
namespace {

using tech::Technology;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

core::OpAmpSpec fc_spec() {
  core::OpAmpSpec s;
  s.name = "fc";
  s.gain_min_db = 75.0;
  s.gbw_min = util::mhz(4.0);
  s.pm_min_deg = 60.0;
  s.slew_min = util::v_per_us(4.0);
  s.cload = util::pf(5.0);
  s.swing_pos = 2.5;
  s.swing_neg = 2.5;
  s.icmr_lo = -1.0;
  s.icmr_hi = 3.0;  // near-rail top: the style's niche
  return s;
}

TEST(FoldedCascode, FeasibleForItsNiche) {
  const OpAmpDesign d = design_folded_cascode(tech5(), fc_spec());
  ASSERT_TRUE(d.feasible) << d.trace.to_string();
  EXPECT_EQ(d.style, OpAmpStyle::kFoldedCascode);
  EXPECT_GE(d.predicted.gain_db, 75.0);
  EXPECT_GE(d.predicted.icmr_hi, 3.0);
  EXPECT_DOUBLE_EQ(d.cc, 0.0);  // load compensated, no Miller cap
  EXPECT_TRUE(d.vb_cascode_p.has_value());
}

TEST(FoldedCascode, DeviceRolesComplete) {
  const OpAmpDesign d = design_folded_cascode(tech5(), fc_spec());
  ASSERT_TRUE(d.feasible);
  for (const char* role : {"M1", "M2", "M5", "MF3", "MF4", "MFC1", "MFC2",
                           "MLF_in", "MLF_out", "MLF_inc", "MLF_outc"}) {
    EXPECT_NE(d.device(role), nullptr) << role;
  }
}

TEST(FoldedCascode, NetlistBuildsWithoutDanglingNodes) {
  const OpAmpDesign d = design_folded_cascode(tech5(), fc_spec());
  ASSERT_TRUE(d.feasible);
  ckt::Circuit c = build_standalone_opamp(d, tech5());
  EXPECT_TRUE(c.dangling_nodes().empty());
  EXPECT_EQ(c.mosfets().size(), d.devices.size());
}

TEST(FoldedCascode, SimulatorAgreesWithPredictions) {
  const OpAmpDesign d = design_folded_cascode(tech5(), fc_spec());
  ASSERT_TRUE(d.feasible);
  const MeasuredOpAmp m = measure_opamp(d, tech5());
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.non_saturated.empty())
      << (m.non_saturated.empty() ? "" : m.non_saturated.front());
  EXPECT_NEAR(m.perf.gain_db, d.predicted.gain_db, 6.0);
  EXPECT_NEAR(m.perf.gbw / d.predicted.gbw, 1.0, 0.4);
  EXPECT_NEAR(m.perf.pm_deg, d.predicted.pm_deg, 12.0);
  EXPECT_GE(m.perf.slew, fc_spec().slew_min * 0.8);
  EXPECT_LT(m.perf.offset, util::mv(2.0));
}

TEST(FoldedCascode, GainCeilingIsHonest) {
  core::OpAmpSpec s = fc_spec();
  s.gain_min_db = 100.0;  // beyond one folded stage in this process
  const OpAmpDesign d = design_folded_cascode(tech5(), s);
  EXPECT_FALSE(d.feasible);
  EXPECT_TRUE(d.log.has_errors());
}

TEST(FoldedCascode, SwingBudgetRespected) {
  core::OpAmpSpec s = fc_spec();
  s.swing_pos = 4.9;  // two Vdsat in 100 mV of headroom is impossible
  const OpAmpDesign d = design_folded_cascode(tech5(), s);
  EXPECT_FALSE(d.feasible);
}

TEST(FoldedCascode, EntersSelectionAsThirdStyle) {
  const SynthesisResult r = synthesize_opamp(tech5(), fc_spec());
  ASSERT_EQ(r.candidates.size(), 3u);
  bool found = false;
  for (const auto& c : r.candidates) {
    if (c.style == OpAmpStyle::kFoldedCascode) found = c.feasible;
  }
  EXPECT_TRUE(found);
  ASSERT_TRUE(r.success());
}

TEST(FoldedCascode, PaperCasesUnaffected) {
  // Adding the style must not steal the paper's selections: A stays
  // one-stage, B and C stay two-stage (area bias).
  const SynthesisResult a = synthesize_opamp(tech5(), spec_case_a());
  ASSERT_TRUE(a.success());
  EXPECT_EQ(a.best()->style, OpAmpStyle::kOneStageOta);
  const SynthesisResult b = synthesize_opamp(tech5(), spec_case_b());
  ASSERT_TRUE(b.success());
  EXPECT_EQ(b.best()->style, OpAmpStyle::kTwoStage);
  const SynthesisResult c = synthesize_opamp(tech5(), spec_case_c());
  ASSERT_TRUE(c.success());
  EXPECT_EQ(c.best()->style, OpAmpStyle::kTwoStage);
}

// Property sweep: across its gain range the style's designs stay
// self-consistent.
class FoldedCascodeSweep : public ::testing::TestWithParam<double> {};

TEST_P(FoldedCascodeSweep, InvariantsAcrossGain) {
  core::OpAmpSpec s = fc_spec();
  s.gain_min_db = GetParam();
  const OpAmpDesign d = design_folded_cascode(tech5(), s);
  if (!d.feasible) return;
  EXPECT_GE(d.predicted.gain_db, s.gain_min_db);
  EXPECT_GE(d.predicted.slew, s.slew_min);
  // Balance: the fold sources carry tail current each.
  EXPECT_NEAR(d.i2, d.itail, 1e-12);
  for (const auto& dev : d.devices) {
    EXPECT_GE(dev.w, tech5().wmin * 0.999) << dev.role;
  }
}

INSTANTIATE_TEST_SUITE_P(Gains, FoldedCascodeSweep,
                         ::testing::Values(40.0, 55.0, 70.0, 80.0, 85.0));

}  // namespace
}  // namespace oasys::synth
