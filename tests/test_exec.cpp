// Work-executor tests: deterministic result placement (jobs 1 vs jobs N),
// exception propagation out of pool tasks, nested-region safety, and
// end-to-end parallel-vs-serial equivalence of the synthesis and
// simulation paths wired through it.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "exec/bounded_fifo.h"
#include "exec/executor.h"
#include "numeric/interpolate.h"
#include "spice/ac.h"
#include "spice/sweep.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys {
namespace {

// ---- primitives -----------------------------------------------------------

TEST(ThreadPool, ExecutesSubmittedTasks) {
  exec::ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == 8; });
  EXPECT_EQ(done, 8);
}

TEST(ThreadPool, WorkersReportPoolContext) {
  std::atomic<bool> inside{false};
  std::atomic<bool> done{false};
  exec::ThreadPool pool(1);
  pool.submit([&] {
    inside = exec::in_pool_worker();
    done = true;
  });
  while (!done) std::this_thread::yield();
  EXPECT_TRUE(inside);
  EXPECT_FALSE(exec::in_pool_worker());
}

TEST(BoundedFifo, FifoOrderAndCapacityRefusal) {
  exec::BoundedFifo<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // full: refused, caller owns backpressure
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(4));  // space again
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_EQ(q.try_pop().value(), 4);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedFifo, PopAllDrainsInOrderAndHighWaterSticks) {
  exec::BoundedFifo<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_EQ(q.high_water(), 5u);
  const std::vector<int> all = q.pop_all();
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.high_water(), 5u);  // high water survives the drain
  EXPECT_TRUE(q.try_push(9));
  EXPECT_EQ(q.pop_all(), std::vector<int>{9});
}

TEST(BoundedFifo, ZeroCapacityClampsToOne) {
  exec::BoundedFifo<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedFifo, ConcurrentProducersLoseNothing) {
  exec::BoundedFifo<int> q(256);
  std::thread a([&] {
    for (int i = 0; i < 100; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
  });
  std::thread b([&] {
    for (int i = 100; i < 200; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
  });
  a.join();
  b.join();
  std::vector<int> all = q.pop_all();
  ASSERT_EQ(all.size(), 200u);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 200; ++i) EXPECT_EQ(all[i], i);
}

TEST(Jobs, DefaultAndOverride) {
  EXPECT_GE(exec::hardware_jobs(), 1u);
  EXPECT_EQ(exec::default_jobs(), exec::hardware_jobs());
  exec::set_default_jobs(3);
  EXPECT_EQ(exec::default_jobs(), 3u);
  EXPECT_EQ(exec::resolve_jobs(0), 3u);
  EXPECT_EQ(exec::resolve_jobs(7), 7u);
  exec::set_default_jobs(0);
  EXPECT_EQ(exec::default_jobs(), exec::hardware_jobs());
}

TEST(ParallelFor, ResultsLandByIndex) {
  const std::size_t n = 1000;
  std::vector<double> serial(n), threaded(n);
  auto body_into = [](std::vector<double>& out) {
    return [&out](std::size_t i) {
      out[i] = std::sin(static_cast<double>(i)) * 3.25 + 1.0 / (i + 1.0);
    };
  };
  exec::parallel_for(n, body_into(serial), 1);
  exec::parallel_for(n, body_into(threaded), 8);
  EXPECT_EQ(serial, threaded);  // bit-for-bit, not approximately
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce) {
  const std::size_t n = 513;
  std::vector<std::atomic<int>> hits(n);
  exec::parallel_for(
      n, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyAndSingle) {
  int calls = 0;
  exec::parallel_for(0, [&](std::size_t) { ++calls; }, 8);
  EXPECT_EQ(calls, 0);
  exec::parallel_for(1, [&](std::size_t) { ++calls; }, 8);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesLowestIndexException) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    try {
      exec::parallel_for(
          100,
          [](std::size_t i) {
            if (i == 23 || i == 77) {
              throw std::runtime_error("boom " + std::to_string(i));
            }
          },
          jobs);
      FAIL() << "expected an exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 23") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelFor, RemainingIndicesStillRunAfterThrow) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(50);
    EXPECT_THROW(exec::parallel_for(
                     50,
                     [&](std::size_t i) {
                       hits[i].fetch_add(1);
                       if (i == 0) throw std::runtime_error("first");
                     },
                     jobs),
                 std::runtime_error);
    int total = 0;
    for (auto& h : hits) total += h.load();
    EXPECT_EQ(total, 50) << "jobs=" << jobs;
  }
}

TEST(ParallelFor, NestedRegionsDoNotDeadlock) {
  std::vector<std::vector<int>> grid(16, std::vector<int>(16, 0));
  exec::parallel_for(
      16,
      [&](std::size_t i) {
        exec::parallel_for(
            16, [&](std::size_t j) { grid[i][j] = static_cast<int>(i * j); },
            4);
      },
      4);
  EXPECT_EQ(grid[3][5], 15);
  EXPECT_EQ(grid[15][15], 225);
}

TEST(ParallelInvoke, HeterogeneousTasksFillSlots) {
  int a = 0;
  double b = 0.0;
  std::string c;
  exec::invoke_all(
      4, [&] { a = 42; }, [&] { b = 2.5; }, [&] { c = "done"; });
  EXPECT_EQ(a, 42);
  EXPECT_DOUBLE_EQ(b, 2.5);
  EXPECT_EQ(c, "done");
}

// ---- end-to-end equivalence ------------------------------------------------

TEST(ParallelSynthesis, IdenticalToSerial) {
  const tech::Technology t = tech::five_micron();
  for (const auto& spec :
       {synth::spec_case_a(), synth::spec_case_b(), synth::spec_case_c()}) {
    synth::SynthOptions serial_opts;
    serial_opts.jobs = 1;
    synth::SynthOptions par_opts;
    par_opts.jobs = 8;
    const synth::SynthesisResult serial =
        synth::synthesize_opamp(t, spec, serial_opts);
    const synth::SynthesisResult par =
        synth::synthesize_opamp(t, spec, par_opts);

    ASSERT_EQ(serial.candidates.size(), par.candidates.size());
    EXPECT_EQ(serial.selection.best, par.selection.best);
    EXPECT_EQ(serial.selection.ranking, par.selection.ranking);
    for (std::size_t i = 0; i < serial.candidates.size(); ++i) {
      const auto& cs = serial.candidates[i];
      const auto& cp = par.candidates[i];
      EXPECT_EQ(cs.feasible, cp.feasible);
      EXPECT_EQ(cs.predicted.area, cp.predicted.area);
      EXPECT_EQ(cs.predicted.gbw, cp.predicted.gbw);
      ASSERT_EQ(cs.devices.size(), cp.devices.size());
      for (std::size_t k = 0; k < cs.devices.size(); ++k) {
        EXPECT_EQ(cs.devices[k].w, cp.devices[k].w);
        EXPECT_EQ(cs.devices[k].l, cp.devices[k].l);
      }
    }
  }
}

TEST(ParallelSynthesis, BatchMatchesPerSpecCalls) {
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = {
      synth::spec_case_a(), synth::spec_case_b(), synth::spec_case_c()};
  synth::SynthOptions opts;
  opts.jobs = 8;
  const auto batch = synth::synthesize_opamp_batch(t, specs, opts);
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    synth::SynthOptions serial;
    serial.jobs = 1;
    const auto one = synth::synthesize_opamp(t, specs[i], serial);
    EXPECT_EQ(batch[i].selection.best, one.selection.best);
    ASSERT_TRUE(batch[i].success());
    EXPECT_EQ(batch[i].best()->predicted.area, one.best()->predicted.area);
  }
}

TEST(ParallelAc, PointPathIdenticalToSerial) {
  const tech::Technology t = tech::five_micron();
  const synth::SynthesisResult r =
      synth::synthesize_opamp(t, synth::spec_case_b());
  ASSERT_TRUE(r.success());

  synth::MeasureOptions serial;
  serial.jobs = 1;
  serial.measure_slew = false;
  serial.measure_icmr = false;
  synth::MeasureOptions par = serial;
  par.jobs = 8;
  const synth::MeasuredOpAmp ms = synth::measure_opamp(*r.best(), t, serial);
  const synth::MeasuredOpAmp mp = synth::measure_opamp(*r.best(), t, par);
  ASSERT_TRUE(ms.ok) << ms.error;
  ASSERT_TRUE(mp.ok) << mp.error;
  EXPECT_EQ(ms.perf.gain_db, mp.perf.gain_db);
  EXPECT_EQ(ms.perf.gbw, mp.perf.gbw);
  EXPECT_EQ(ms.perf.pm_deg, mp.perf.pm_deg);
  EXPECT_EQ(ms.bode.gain_db, mp.bode.gain_db);
  EXPECT_EQ(ms.bode.phase_deg, mp.bode.phase_deg);
}

TEST(ParallelSweep, AcSweepIdenticalAcrossJobs) {
  // Common-source stage: VIN sweeps the gate bias; each point is an
  // independent op + AC solve.
  const tech::Technology t = tech::five_micron();
  ckt::Circuit c;
  const ckt::NodeId in = c.node("in");
  const ckt::NodeId out = c.node("out");
  const ckt::NodeId vdd = c.node("vdd");
  c.add_vsource("VDD", vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
  c.add_vsource("VIN", in, ckt::kGround, ckt::Waveform::ac(1.2, 1.0, 0.0));
  c.add_resistor("RL", vdd, out, 50e3);
  c.add_mosfet("M1", out, in, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, 50e-6, 5e-6);
  c.add_capacitor("CL", out, ckt::kGround, 1e-12);

  const std::vector<double> values = {1.0, 1.1, 1.2, 1.3, 1.4};
  const std::vector<double> freqs = num::logspace(1e3, 1e8, 31);
  const sim::AcSweepResult s1 =
      sim::ac_sweep_vsource(c, t, "VIN", values, freqs, {}, 1);
  const sim::AcSweepResult s8 =
      sim::ac_sweep_vsource(c, t, "VIN", values, freqs, {}, 8);
  ASSERT_TRUE(s1.ok) << s1.error;
  ASSERT_TRUE(s8.ok) << s8.error;
  ASSERT_EQ(s1.points.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(s1.ops[i].solution, s8.ops[i].solution);
    ASSERT_EQ(s1.points[i].solutions.size(), freqs.size());
    EXPECT_EQ(s1.points[i].solutions, s8.points[i].solutions);
  }
}

TEST(ParallelSweep, TranSweepIdenticalAcrossJobs) {
  const tech::Technology t = tech::five_micron();
  ckt::Circuit c;
  const ckt::NodeId in = c.node("in");
  const ckt::NodeId out = c.node("out");
  c.add_vsource("VIN", in, ckt::kGround, ckt::Waveform::dc(1.0));
  c.add_resistor("R1", in, out, 10e3);
  c.add_capacitor("C1", out, ckt::kGround, 1e-9);

  sim::TranOptions to;
  to.tstop = 50e-6;
  to.dt = 1e-6;
  const std::vector<double> values = {0.5, 1.0, 1.5, 2.0};
  const sim::TranSweepResult s1 =
      sim::tran_sweep_vsource(c, t, "VIN", values, to, {}, 1);
  const sim::TranSweepResult s8 =
      sim::tran_sweep_vsource(c, t, "VIN", values, to, {}, 8);
  ASSERT_TRUE(s1.ok) << s1.error;
  ASSERT_TRUE(s8.ok) << s8.error;
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(s1.runs[i].states, s8.runs[i].states);
  }
}

TEST(ParallelSweep, ReportsLowestFailingIndex) {
  const tech::Technology t = tech::five_micron();
  ckt::Circuit c;
  const ckt::NodeId in = c.node("in");
  c.add_vsource("VIN", in, ckt::kGround, ckt::Waveform::dc(1.0));
  c.add_resistor("R1", in, ckt::kGround, 10e3);
  const sim::AcSweepResult s =
      sim::ac_sweep_vsource(c, t, "MISSING", {1.0}, {1e3}, {}, 4);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.error.find("MISSING"), std::string::npos);
}

}  // namespace
}  // namespace oasys
