// Yield subsystem suite (src/yield/).
//
// The contract under test is the determinism chain the serving stack
// leans on: analyze_yield is a pure function of (technology, synthesis,
// samples, seed) — bit-for-bit identical at every jobs setting and on
// the cached path — and run_mixed answers mixed synth/yield traffic in
// submission order with exactly those bytes.  Everything here compares
// canonical yield_result_json renderings, the same bytes the golden
// suite, the shard conformance check, and the daemon share.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "synth/oasys.h"
#include "synth/result_json.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "yield/service.h"
#include "yield/yield.h"

namespace oasys {
namespace {

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

yield::YieldParams params(int samples, std::uint64_t seed,
                          std::size_t jobs = 1) {
  yield::YieldParams p;
  p.samples = samples;
  p.seed = seed;
  p.jobs = jobs;
  return p;
}

// ---- determinism ------------------------------------------------------------

TEST(YieldDeterminism, BitIdenticalAcrossJobsCounts) {
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    const std::string reference = yield::yield_result_json(
        yield::run_yield(tech5(), spec, params(24, 7, 1)));
    for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
      EXPECT_EQ(yield::yield_result_json(yield::run_yield(
                    tech5(), spec, params(24, 7, jobs))),
                reference)
          << spec.name << " diverged at jobs " << jobs;
    }
  }
}

TEST(YieldDeterminism, SeedAndSampleCountChangeTheResult) {
  const core::OpAmpSpec spec = synth::paper_test_cases()[1];
  const std::string base = yield::yield_result_json(
      yield::run_yield(tech5(), spec, params(24, 7)));
  EXPECT_NE(yield::yield_result_json(
                yield::run_yield(tech5(), spec, params(24, 8))),
            base);
  EXPECT_NE(yield::yield_result_json(
                yield::run_yield(tech5(), spec, params(23, 7))),
            base);
}

TEST(YieldDeterminism, AnalyzeMatchesRunYieldOnSharedSynthesis) {
  // run_yield = synthesize_opamp + analyze_yield, nothing more.
  const core::OpAmpSpec spec = synth::paper_test_cases()[0];
  const synth::SynthesisResult synthesis =
      synth::synthesize_opamp(tech5(), spec, {});
  EXPECT_EQ(yield::yield_result_json(
                yield::analyze_yield(tech5(), synthesis, params(16, 3))),
            yield::yield_result_json(
                yield::run_yield(tech5(), spec, params(16, 3))));
}

// ---- result shape -----------------------------------------------------------

TEST(YieldResult, CountsAndMetricsAreConsistent) {
  const core::OpAmpSpec spec = synth::paper_test_cases()[0];
  const yield::YieldResult r =
      yield::run_yield(tech5(), spec, params(32, 1));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.samples_requested, 32);
  EXPECT_EQ(r.seed, 1u);
  EXPECT_LE(r.samples_converged, r.samples_requested);
  EXPECT_LE(r.pass_count,
            static_cast<std::uint64_t>(r.samples_converged));
  EXPECT_DOUBLE_EQ(r.yield,
                   static_cast<double>(r.pass_count) / 32.0);
  ASSERT_FALSE(r.metrics.empty());
  for (const yield::MetricStats& m : r.metrics) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_LE(m.min, m.p05);
    EXPECT_LE(m.p05, m.p50);
    EXPECT_LE(m.p50, m.p95);
    EXPECT_LE(m.p95, m.max);
    EXPECT_GE(m.sigma, 0.0);
    EXPECT_LE(m.pass, static_cast<std::uint64_t>(r.samples_converged));
    if (!m.constrained) {
      // Unconstrained axes pass by definition.
      EXPECT_EQ(m.pass, static_cast<std::uint64_t>(r.samples_converged));
    }
  }
  // A constrained metric can never pass more often than the overall
  // yield's conjunction allows.
  for (const yield::MetricStats& m : r.metrics) {
    if (m.constrained) {
      EXPECT_GE(m.pass, r.pass_count);
    }
  }
}

TEST(YieldResult, InfeasibleSynthesisFailsCleanly) {
  core::OpAmpSpec spec = synth::paper_test_cases()[0];
  spec.gain_min_db = 500.0;  // no style can reach this
  const yield::YieldResult r =
      yield::run_yield(tech5(), spec, params(8, 1));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(YieldResult, RejectsNonPositiveSampleCount) {
  const core::OpAmpSpec spec = synth::paper_test_cases()[0];
  const synth::SynthesisResult synthesis =
      synth::synthesize_opamp(tech5(), spec, {});
  const yield::YieldResult r =
      yield::analyze_yield(tech5(), synthesis, params(0, 1));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(YieldResult, JsonExtendsTheSynthesisDocument) {
  const core::OpAmpSpec spec = synth::paper_test_cases()[0];
  const yield::YieldResult r =
      yield::run_yield(tech5(), spec, params(8, 1));
  const std::string json = yield::yield_result_json(r);
  EXPECT_NE(json.find("oasys.result.v1"), std::string::npos);
  EXPECT_NE(json.find("\"yield\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\": 8"), std::string::npos);
}

TEST(YieldParams, JobsNeverSplitsTheCanonicalKey) {
  EXPECT_EQ(params(16, 3, 1).canonical_string(),
            params(16, 3, 4).canonical_string());
  EXPECT_NE(params(16, 3).canonical_string(),
            params(16, 4).canonical_string());
  EXPECT_NE(params(16, 3).canonical_string(),
            params(17, 3).canonical_string());
}

// ---- counters ---------------------------------------------------------------

TEST(YieldObservability, DeterministicCountersAdvance) {
  const auto counter = [](const obs::MetricsSnapshot& snap,
                          const char* name) -> std::uint64_t {
    const obs::MetricEntry* e = snap.find(name);
    return e == nullptr ? 0 : e->counter;
  };
  const obs::MetricsSnapshot before = obs::Registry::global().snapshot();
  const yield::YieldResult r = yield::run_yield(
      tech5(), synth::paper_test_cases()[0], params(8, 1));
  ASSERT_TRUE(r.ok) << r.error;
  const obs::MetricsSnapshot after = obs::Registry::global().snapshot();
  EXPECT_EQ(counter(after, "yield.requests"),
            counter(before, "yield.requests") + 1);
  EXPECT_EQ(counter(after, "yield.samples"),
            counter(before, "yield.samples") + 8);
  EXPECT_EQ(counter(after, "yield.samples_converged"),
            counter(before, "yield.samples_converged") +
                static_cast<std::uint64_t>(r.samples_converged));
  EXPECT_EQ(counter(after, "yield.samples_passed"),
            counter(before, "yield.samples_passed") + r.pass_count);
}

// ---- YieldService mixed traffic ---------------------------------------------

std::vector<yield::Request> mixed_requests() {
  const std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  std::vector<yield::Request> requests;
  for (const core::OpAmpSpec& spec : specs) {
    yield::Request synth_req;
    synth_req.spec = spec;
    requests.push_back(synth_req);
    yield::Request yield_req;
    yield_req.spec = spec;
    yield_req.is_yield = true;
    yield_req.params = params(12, 5);
    requests.push_back(yield_req);
  }
  return requests;
}

TEST(YieldService, MixedBatchMatchesDirectCallsInSubmissionOrder) {
  const std::vector<yield::Request> requests = mixed_requests();
  yield::YieldService svc(tech5());
  const std::vector<yield::Outcome> outcomes = svc.run_mixed(requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].is_yield, requests[i].is_yield);
    if (requests[i].is_yield) {
      EXPECT_EQ(yield::yield_result_json(outcomes[i].yield),
                yield::yield_result_json(yield::run_yield(
                    tech5(), requests[i].spec, requests[i].params)));
    } else {
      EXPECT_EQ(synth::result_json(outcomes[i].result),
                synth::result_json(synth::synthesize_opamp(
                    tech5(), requests[i].spec, {})));
    }
  }
}

TEST(YieldService, RepeatedYieldRequestIsACacheHitWithIdenticalBytes) {
  yield::Request request;
  request.spec = synth::paper_test_cases()[0];
  request.is_yield = true;
  request.params = params(12, 5);
  yield::YieldService svc(tech5());
  const std::vector<yield::Outcome> first = svc.run_mixed({request});
  const service::ServiceStats mid = svc.stats();
  const std::vector<yield::Outcome> second = svc.run_mixed({request});
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  ASSERT_TRUE(first[0].ok());
  ASSERT_TRUE(second[0].ok());
  EXPECT_EQ(yield::yield_result_json(second[0].yield),
            yield::yield_result_json(first[0].yield));
  // The repeat costs no new synthesis: the underlying service answers
  // from its LRU, and the yield analysis answers from the yield cache.
  const service::ServiceStats end = svc.stats();
  EXPECT_EQ(end.misses, mid.misses);
  EXPECT_GT(end.hits, mid.hits);
}

TEST(YieldService, DistinctParamsAreDistinctCacheEntries) {
  yield::Request request;
  request.spec = synth::paper_test_cases()[0];
  request.is_yield = true;
  request.params = params(12, 5);
  yield::Request other = request;
  other.params = params(12, 6);
  yield::YieldService svc(tech5());
  const std::vector<yield::Outcome> outcomes =
      svc.run_mixed({request, other});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_NE(svc.yield_key(request.spec, request.params),
            svc.yield_key(other.spec, other.params));
  EXPECT_NE(yield::yield_result_json(outcomes[0].yield),
            yield::yield_result_json(outcomes[1].yield));
}

TEST(YieldService, InfeasibleYieldIsAnOutcomeNotAnException) {
  yield::Request request;
  request.spec = synth::paper_test_cases()[0];
  request.spec.gain_min_db = 500.0;
  request.is_yield = true;
  request.params = params(8, 1);
  yield::YieldService svc(tech5());
  const std::vector<yield::Outcome> outcomes = svc.run_mixed({request});
  ASSERT_EQ(outcomes.size(), 1u);
  // The computation ran to completion; infeasibility lives inside the
  // yield result, mirroring how synthesis treats infeasible specs.
  ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error;
  EXPECT_FALSE(outcomes[0].yield.ok);
  EXPECT_FALSE(outcomes[0].yield.error.empty());
}

}  // namespace
}  // namespace oasys
