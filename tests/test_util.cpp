#include <gtest/gtest.h>

#include "util/diagnostics.h"
#include "util/table.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::util {
namespace {

// ---- units ---------------------------------------------------------------

TEST(Units, ScaleHelpersRoundTrip) {
  EXPECT_DOUBLE_EQ(um(5.0), 5e-6);
  EXPECT_DOUBLE_EQ(in_um(um(5.0)), 5.0);
  EXPECT_DOUBLE_EQ(pf(3.2), 3.2e-12);
  EXPECT_DOUBLE_EQ(in_pf(pf(3.2)), 3.2);
  EXPECT_DOUBLE_EQ(ua(25.0), 25e-6);
  EXPECT_DOUBLE_EQ(in_ua(ua(25.0)), 25.0);
  EXPECT_DOUBLE_EQ(mhz(2.0), 2e6);
  EXPECT_DOUBLE_EQ(in_mhz(mhz(2.0)), 2.0);
  EXPECT_DOUBLE_EQ(v_per_us(1.0), 1e6);
  EXPECT_DOUBLE_EQ(in_v_per_us(v_per_us(3.0)), 3.0);
}

TEST(Units, AreaConversion) {
  // 1 um^2 = 1e-12 m^2.
  EXPECT_DOUBLE_EQ(in_um2(1e-12), 1.0);
  EXPECT_DOUBLE_EQ(in_um2(um(10.0) * um(20.0)), 200.0);
}

TEST(Units, Decibels) {
  EXPECT_DOUBLE_EQ(db20(10.0), 20.0);
  EXPECT_DOUBLE_EQ(db20(100.0), 40.0);
  EXPECT_DOUBLE_EQ(db20(-10.0), 20.0);  // magnitude
  EXPECT_NEAR(from_db20(40.0), 100.0, 1e-9);
  EXPECT_NEAR(from_db20(db20(1234.5)), 1234.5, 1e-6);
  EXPECT_DOUBLE_EQ(db10(100.0), 20.0);
}

TEST(Units, Angles) {
  EXPECT_NEAR(deg(kPi), 180.0, 1e-12);
  EXPECT_NEAR(rad(90.0), kPi / 2.0, 1e-12);
  EXPECT_NEAR(deg(rad(37.0)), 37.0, 1e-12);
}

TEST(Units, ThermalVoltageAtRoomTemperature) {
  EXPECT_NEAR(kThermalVoltage, 0.02585, 1e-4);
}

TEST(Units, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 1e-2));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

// ---- text ------------------------------------------------------------------

TEST(Text, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t x\r\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(Text, Split) {
  EXPECT_EQ(split("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,b;;c", ",;"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split("   ").empty());
  EXPECT_EQ(split("one"), (std::vector<std::string>{"one"}));
}

TEST(Text, SplitLines) {
  const auto lines = split_lines("a\nb\r\n\nc");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");  // CR stripped
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], "c");
}

TEST(Text, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("AbC1!"), "abc1!");
  EXPECT_TRUE(starts_with("hello world", "hello"));
  EXPECT_FALSE(starts_with("hello", "hello world"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Text, ParseDouble) {
  ASSERT_TRUE(parse_double("3.5").has_value());
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double("  -1e-3 "), -1e-3);
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
}

TEST(Text, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Text, EngineeringNotation) {
  EXPECT_EQ(eng(0.0), "0");
  EXPECT_EQ(eng(3.2e-12), "3.2p");
  EXPECT_EQ(eng(1e-6), "1u");
  EXPECT_EQ(eng(2.5e3), "2.5k");
  EXPECT_EQ(eng(4.7e6), "4.7meg");
  EXPECT_EQ(eng(1.0), "1");
  EXPECT_EQ(eng(-3e-3), "-3m");
}

// ---- diagnostics -------------------------------------------------------------

TEST(Diagnostics, SeverityFiltering) {
  DiagnosticLog log;
  EXPECT_FALSE(log.has_errors());
  log.info("step", "chose Cc");
  log.warning("tight", "marginal headroom");
  EXPECT_FALSE(log.has_errors());
  EXPECT_TRUE(log.has_warnings());
  log.error("gain-shortfall", "cannot reach 100 dB");
  EXPECT_TRUE(log.has_errors());
  ASSERT_NE(log.first_error(), nullptr);
  EXPECT_EQ(log.first_error()->code, "gain-shortfall");
  EXPECT_EQ(log.size(), 3u);
}

TEST(Diagnostics, ContainsCodeAndAppend) {
  DiagnosticLog a;
  a.info("one", "first");
  DiagnosticLog b;
  b.error("two", "second");
  a.append(b);
  EXPECT_TRUE(a.contains_code("one"));
  EXPECT_TRUE(a.contains_code("two"));
  EXPECT_FALSE(a.contains_code("three"));
  EXPECT_EQ(a.size(), 2u);
}

TEST(Diagnostics, Rendering) {
  DiagnosticLog log;
  log.warning("code-x", "message y");
  const std::string s = log.to_string();
  EXPECT_NE(s.find("warning"), std::string::npos);
  EXPECT_NE(s.find("code-x"), std::string::npos);
  EXPECT_NE(s.find("message y"), std::string::npos);
}

// ---- table ---------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Header and two rows plus rule line.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Every line has the same width.
  std::size_t first_nl = s.find('\n');
  const std::string header = s.substr(0, first_nl);
  EXPECT_NE(header.find("name"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, RejectsOversizeRows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, SeparatorRendersRule) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // Two rule lines: one under the header, one mid-table -> 5 lines total.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

}  // namespace
}  // namespace oasys::util
