// Fully differential OTA (paper Sec. 5, "fully differential styles"):
// designer invariants, the common-mode feedback loop's correctness and
// stability, and simulator agreement on the differential axes.
#include <gtest/gtest.h>

#include "synth/fd_ota.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::synth {
namespace {

using tech::Technology;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

core::OpAmpSpec fd_spec() {
  core::OpAmpSpec s;
  s.name = "fd";
  s.gain_min_db = 45.0;
  s.gbw_min = util::mhz(2.0);
  s.slew_min = util::v_per_us(2.0);
  s.cload = util::pf(5.0);
  s.swing_pos = 1.0;
  s.swing_neg = 1.0;
  s.icmr_lo = -1.0;
  s.icmr_hi = 1.0;
  return s;
}

TEST(FdOta, FeasibleWithCmfbNetwork) {
  const FdOtaDesign d = design_fd_ota(tech5(), fd_spec());
  ASSERT_TRUE(d.feasible) << d.trace.to_string();
  // The CMFB machinery is part of the design.
  for (const char* role :
       {"M1", "M2", "ML3", "ML4", "M5", "SF1", "SF2", "SFB1", "SFB2",
        "MC1", "MC2", "MC3", "MC4", "MC5", "MB1"}) {
    EXPECT_NE(d.device(role), nullptr) << role;
  }
  EXPECT_GT(d.rcm, 0.0);
  EXPECT_GT(d.i_cmfb, 0.0);
  // Fully differential: no systematic offset by symmetry.
  EXPECT_DOUBLE_EQ(d.predicted.offset, 0.0);
  // Symmetric swing bound (CMFB pins the common mode).
  EXPECT_DOUBLE_EQ(d.predicted.swing_pos, d.predicted.swing_neg);
}

TEST(FdOta, NetlistHasNoDanglingNodes) {
  const FdOtaDesign d = design_fd_ota(tech5(), fd_spec());
  ASSERT_TRUE(d.feasible);
  ckt::Circuit c;
  const BuiltFdOta nodes = build_fd_ota(d, tech5(), c);
  c.add_vsource("VDD", nodes.vdd, ckt::kGround,
                ckt::Waveform::dc(tech5().vdd));
  c.add_vsource("VSS", nodes.vss, ckt::kGround,
                ckt::Waveform::dc(tech5().vss));
  c.add_vsource("VIP", nodes.inp, ckt::kGround, ckt::Waveform::dc(0.0));
  c.add_vsource("VIN", nodes.inn, ckt::kGround, ckt::Waveform::dc(0.0));
  c.add_capacitor("CLP", nodes.outp, ckt::kGround, 5e-12);
  c.add_capacitor("CLM", nodes.outm, ckt::kGround, 5e-12);
  EXPECT_TRUE(c.dangling_nodes().empty());
}

TEST(FdOta, SimulatorAgreesOnDifferentialAxes) {
  const FdOtaDesign d = design_fd_ota(tech5(), fd_spec());
  ASSERT_TRUE(d.feasible);
  const MeasuredFdOta m = measure_fd_ota(d, tech5());
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_NEAR(m.gain_db, d.predicted.gain_db, 5.0);
  EXPECT_NEAR(m.gbw / d.predicted.gbw, 1.0, 0.35);
  EXPECT_GE(m.swing_pos, d.predicted.swing_pos * 0.9);
  EXPECT_GE(m.swing_neg, d.predicted.swing_neg * 0.9);
}

TEST(FdOta, CommonModeLoopRegulatesAndSettles) {
  const FdOtaDesign d = design_fd_ota(tech5(), fd_spec());
  ASSERT_TRUE(d.feasible);
  const MeasuredFdOta m = measure_fd_ota(d, tech5());
  ASSERT_TRUE(m.ok) << m.error;
  // Output common mode held near mid-supply by the CMFB loop.
  EXPECT_LT(m.cm_error, 0.20);
  // A common-mode input step must not destabilize the loop.
  EXPECT_TRUE(m.cm_loop_settles);
}

TEST(FdOta, SymmetryGivesHugeCmrr) {
  const FdOtaDesign d = design_fd_ota(tech5(), fd_spec());
  ASSERT_TRUE(d.feasible);
  const MeasuredFdOta m = measure_fd_ota(d, tech5());
  ASSERT_TRUE(m.ok);
  // With perfectly matched halves the differential output rejects CM
  // drive almost completely (mismatch is what limits real CMRR).
  EXPECT_GT(m.cmrr_db, 100.0);
}

TEST(FdOta, SwingBudgetEnforced) {
  core::OpAmpSpec s = fd_spec();
  s.swing_pos = 4.95;  // beyond the single-Vdsat load headroom
  EXPECT_FALSE(design_fd_ota(tech5(), s).feasible);
  s = fd_spec();
  s.swing_neg = 4.0;  // below the pair's floor
  EXPECT_FALSE(design_fd_ota(tech5(), s).feasible);
}

TEST(FdOta, GainCeilingHonest) {
  core::OpAmpSpec s = fd_spec();
  s.gain_min_db = 80.0;  // single simple stage cannot reach this
  EXPECT_FALSE(design_fd_ota(tech5(), s).feasible);
}

class FdSweep : public ::testing::TestWithParam<double> {};

TEST_P(FdSweep, SlewScalesTailCurrent) {
  core::OpAmpSpec s = fd_spec();
  s.slew_min = util::v_per_us(GetParam());
  const FdOtaDesign d = design_fd_ota(tech5(), s);
  ASSERT_TRUE(d.feasible) << d.trace.to_string();
  // Per-side slew = itail / (2 CL), with the design margin on top.
  EXPECT_GE(d.itail, 2.0 * s.slew_min * s.cload * 0.99);
  EXPECT_GE(d.predicted.slew, s.slew_min);
}

INSTANTIATE_TEST_SUITE_P(Slews, FdSweep,
                         ::testing::Values(1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace oasys::synth
