// Deterministic byte-mutation fuzz harness for the wire protocol.
//
// The wire layer's contract (src/shard/wire.h) is that readers treat the
// peer as untrusted: any malformed frame must surface as WireError —
// never a crash, hang, over-read, or silent misparse.  The unit tests in
// test_shard.cpp/test_trace_wire.cpp pin hand-picked malformations; this
// harness sweeps the space mechanically.  Starting from valid kRequest,
// kYieldRequest, kSpans, and kStatus frames it applies seeded byte
// flips, u64 splices, and truncation prefixes (util::RngStream, so every
// run — including under ASan/UBSan/TSan — replays the identical
// mutation sequence) and asserts each mutant either parses cleanly or
// throws WireError.  Anything else (another exception type, a signal, an
// infinite loop caught by the ctest timeout) is a finding.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/spec.h"
#include "obs/span.h"
#include "serve/status.h"
#include "shard/wire.h"
#include "util/rng.h"
#include "yield/yield.h"

namespace {

using namespace oasys;
using shard::Frame;
using shard::FrameDecoder;
using shard::FrameType;
using shard::Reader;
using shard::WireError;
using shard::Writer;

// ---- valid base frames -------------------------------------------------

core::OpAmpSpec base_spec() {
  core::OpAmpSpec spec;
  spec.name = "fuzz-subject";
  spec.gain_min_db = 80.0;
  spec.gbw_min = 2e6;
  spec.pm_min_deg = 50.0;
  spec.slew_min = 2e6;
  spec.cload = 5e-12;
  spec.swing_pos = 3.5;
  spec.swing_neg = 3.5;
  spec.icmr_lo = -1.0;
  spec.icmr_hi = 2.0;
  spec.power_max = 5e-3;
  return spec;
}

shard::TraceContext base_trace() {
  shard::TraceContext ctx;
  ctx.trace_id = 0x1122334455667788ull;
  ctx.span_id = 0x99aabbccddeeff01ull;
  return ctx;
}

std::string request_frame() {
  Writer w;
  w.u64(7);
  shard::put_spec(w, base_spec());
  shard::put_trace_context(w, base_trace());
  return shard::frame_bytes(FrameType::kRequest, w.bytes());
}

std::string yield_request_frame() {
  Writer w;
  w.u64(9);
  shard::put_spec(w, base_spec());
  yield::YieldParams params;
  params.samples = 64;
  params.seed = 3;
  shard::put_yield_params(w, params);
  shard::put_trace_context(w, base_trace());
  return shard::frame_bytes(FrameType::kYieldRequest, w.bytes());
}

std::string spans_frame() {
  shard::SpanSet set;
  set.trace_id = 0x1122334455667788ull;
  set.shard = 2;
  obs::TraceEvent begin;
  begin.kind = obs::TraceEvent::Kind::kSpanBegin;
  begin.depth = 1;
  begin.name = "synth/style";
  begin.scope = "caseB";
  obs::TraceEvent end = begin;
  end.kind = obs::TraceEvent::Kind::kSpanEnd;
  end.seconds = 0.0125;
  obs::TraceEvent instant;
  instant.kind = obs::TraceEvent::Kind::kInstant;
  instant.name = "rule-fired";
  instant.code = "increase-tail-current";
  instant.index = 4;
  set.events = {begin, instant, end};
  Writer w;
  shard::put_span_set(w, set);
  return shard::frame_bytes(FrameType::kSpans, w.bytes());
}

std::string status_frame() {
  serve::StatusReport st;
  st.uptime_s = 12.5;
  st.sessions_total = 4;
  st.sessions_active = 1;
  st.requests_total = 64;
  st.batches = 6;
  st.shared_cache_size = 32;
  st.shared_cache_capacity = 256;
  st.shared_cache_hits = 20;
  st.shared_cache_misses = 44;
  serve::WorkerStatus ws;
  ws.shard = 0;
  ws.pid = 1234;
  ws.alive = true;
  ws.requests_served = 40;
  st.workers = {ws, ws};
  st.workers[1].shard = 1;
  st.workers[1].alive = false;
  st.workers[1].pid = -1;
  Writer w;
  serve::put_status_report(w, st);
  return shard::frame_bytes(FrameType::kStatus, w.bytes());
}

// ---- parse mirror ------------------------------------------------------

// Typed payload parse for every frame type a mutation can produce (a
// flipped type byte can turn a kRequest into anything).  Mirrors the
// real readers: worker::decode_request for requests, the coordinator's
// kSpans/kMetrics/kResult paths, the stat client's kStatus path.  Types
// whose payloads real readers never parse (kRun, kDone) are opaque.
void typed_parse(const Frame& frame) {
  Reader r(frame.payload);
  switch (frame.type) {
    case FrameType::kRequest:
    case FrameType::kYieldRequest: {
      r.u64();  // sequence id
      shard::get_spec(r);
      if (frame.type == FrameType::kYieldRequest) {
        shard::get_yield_params(r);
      }
      shard::get_trace_context(r);
      r.expect_end();
      break;
    }
    case FrameType::kSpans: {
      shard::get_span_set(r);
      r.expect_end();
      break;
    }
    case FrameType::kStatus: {
      // Empty payload is the admin *request*; a non-empty one is the
      // daemon's report.
      if (!frame.payload.empty()) {
        serve::get_status_report(r);
        r.expect_end();
      }
      break;
    }
    case FrameType::kConfig: {
      shard::get_config(r);
      r.expect_end();
      break;
    }
    case FrameType::kResult: {
      r.u64();
      shard::get_result(r);
      r.expect_end();
      break;
    }
    case FrameType::kYieldResult: {
      r.u64();
      shard::get_yield_result(r);
      r.expect_end();
      break;
    }
    case FrameType::kMetrics: {
      shard::get_metrics_snapshot(r);
      shard::get_service_stats(r);
      r.expect_end();
      break;
    }
    case FrameType::kError: {
      r.str();
      r.expect_end();
      break;
    }
    case FrameType::kRun:
    case FrameType::kDone:
      break;
  }
}

enum class Outcome { kParsed, kRejected, kIncomplete };

// Feeds one byte stream through the incremental decoder plus the typed
// payload parsers.  The harness's core assertion is structural: the only
// ways out are a clean parse, a WireError, or "need more bytes" — any
// other exception propagates and fails the test, any memory error is
// the sanitizer legs' kill, any hang is the ctest timeout's.
Outcome exercise(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  bool parsed_any = false;
  try {
    Frame frame;
    while (decoder.next(&frame)) {
      typed_parse(frame);
      parsed_any = true;
    }
  } catch (const WireError&) {
    return Outcome::kRejected;
  }
  if (decoder.mid_frame()) return Outcome::kIncomplete;
  return parsed_any ? Outcome::kParsed : Outcome::kIncomplete;
}

struct FuzzStats {
  std::uint64_t parsed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t incomplete = 0;

  void record(Outcome o) {
    switch (o) {
      case Outcome::kParsed: ++parsed; break;
      case Outcome::kRejected: ++rejected; break;
      case Outcome::kIncomplete: ++incomplete; break;
    }
  }
};

std::vector<std::pair<const char*, std::string>> base_frames() {
  return {{"kRequest", request_frame()},
          {"kYieldRequest", yield_request_frame()},
          {"kSpans", spans_frame()},
          {"kStatus", status_frame()}};
}

}  // namespace

TEST(WireFuzz, BaseFramesParseCleanly) {
  for (const auto& [name, bytes] : base_frames()) {
    EXPECT_EQ(exercise(bytes), Outcome::kParsed) << name;
  }
}

// Single- and multi-byte corruptions at RngStream-chosen offsets.  Every
// (frame, iteration) pair gets its own stream, so a failure report's
// seed pair replays the exact mutant.
TEST(WireFuzz, ByteMutationsNeverEscapeWireError) {
  constexpr int kIterations = 1500;
  FuzzStats stats;
  std::uint64_t stream_id = 0;
  for (const auto& [name, base] : base_frames()) {
    for (int iter = 0; iter < kIterations; ++iter) {
      util::RngStream rng(0xf022eu, stream_id++);
      std::string bytes = base;
      const int flips = 1 + static_cast<int>(rng.next_u64() % 4);
      for (int f = 0; f < flips; ++f) {
        const std::size_t at = rng.next_u64() % bytes.size();
        const std::uint8_t delta =
            static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
        bytes[at] = static_cast<char>(
            static_cast<std::uint8_t>(bytes[at]) ^ delta);
      }
      stats.record(exercise(bytes));
    }
  }
  // The sweep must actually exercise both sides of the contract: most
  // mutants are rejected, but some (e.g. a flipped bit inside a double)
  // still parse — both are correct outcomes.
  EXPECT_GT(stats.rejected, 0u);
  EXPECT_GT(stats.parsed, 0u);
  SCOPED_TRACE(::testing::Message()
               << "parsed " << stats.parsed << " rejected "
               << stats.rejected << " incomplete " << stats.incomplete);
}

// Aligned and unaligned u64 splices: overwrites length/count/id fields
// wholesale, the way a torn write or interleaved stream would.
TEST(WireFuzz, U64SplicesNeverEscapeWireError) {
  constexpr int kIterations = 600;
  FuzzStats stats;
  std::uint64_t stream_id = 1u << 20;
  for (const auto& [name, base] : base_frames()) {
    for (int iter = 0; iter < kIterations; ++iter) {
      util::RngStream rng(0x5011cebu, stream_id++);
      std::string bytes = base;
      if (bytes.size() < 8) continue;
      const std::size_t at = rng.next_u64() % (bytes.size() - 7);
      std::uint64_t v = rng.next_u64();
      // Bias toward pathological values: huge lengths, zero, small ints.
      switch (rng.next_u64() % 4) {
        case 0: v = ~0ull; break;
        case 1: v = 0; break;
        case 2: v %= 1024; break;
        default: break;
      }
      for (int b = 0; b < 8; ++b) {
        bytes[at + b] = static_cast<char>((v >> (8 * b)) & 0xff);
      }
      stats.record(exercise(bytes));
    }
  }
  EXPECT_GT(stats.rejected, 0u);
}

// Every truncation prefix of every base frame: a half-written frame from
// a crashed peer must read as "incomplete" (the decoder asks for more
// bytes) or as a WireError once a length field lies — never as a parse
// of garbage and never as a crash.
TEST(WireFuzz, TruncationPrefixesAreIncompleteOrRejected) {
  for (const auto& [name, base] : base_frames()) {
    for (std::size_t len = 0; len < base.size(); ++len) {
      const Outcome o = exercise(base.substr(0, len));
      EXPECT_NE(o, Outcome::kParsed)
          << name << " truncated to " << len << " bytes parsed cleanly";
    }
  }
}

// Concatenated streams with a corrupt tail: valid frames already drained
// from the decoder stay delivered; the corruption surfaces on the later
// frame only.  This is the coordinator's actual failure mode — a worker
// answers correctly for a while, then crashes mid-write.
TEST(WireFuzz, ValidPrefixThenCorruptTail) {
  const std::string good = request_frame();
  util::RngStream rng(0xdeadu, 0);
  for (int iter = 0; iter < 200; ++iter) {
    std::string tail = spans_frame();
    const std::size_t at = rng.next_u64() % tail.size();
    tail[at] = static_cast<char>(static_cast<std::uint8_t>(tail[at]) ^
                                 (1 + rng.next_u64() % 255));
    FrameDecoder decoder;
    decoder.feed(good + tail);
    Frame frame;
    bool first_ok = false;
    try {
      if (decoder.next(&frame)) {
        typed_parse(frame);
        first_ok = true;
        while (decoder.next(&frame)) typed_parse(frame);
      }
    } catch (const WireError&) {
      // The tail's corruption is allowed to reject — but only after the
      // valid leading frame came through intact.
    }
    EXPECT_TRUE(first_ok) << "valid leading frame lost at iter " << iter;
  }
}
