#include <gtest/gtest.h>

#include "baseline/random_sizer.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::baseline {
namespace {

using tech::Technology;
using util::um;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

TEST(FlatEval, ReasonableSizingScoresReasonably) {
  // A hand-built sensible two-stage sizing evaluates to plausible numbers.
  FlatSizing s;
  s.w1 = um(100.0);
  s.l1 = um(5.0);
  s.w3 = um(60.0);
  s.l3 = um(5.0);
  s.w5 = um(60.0);
  s.l5 = um(10.0);
  s.w6 = um(400.0);
  s.l6 = um(5.0);
  s.w7 = um(100.0);
  s.l7 = um(5.0);
  s.i5 = util::ua(10.0);
  s.i6 = util::ua(60.0);
  s.cc = util::pf(3.0);
  const auto p = evaluate_flat_two_stage(tech5(), synth::spec_case_b(), s);
  EXPECT_GT(p.gain_db, 50.0);
  EXPECT_LT(p.gain_db, 120.0);
  EXPECT_GT(p.gbw, util::khz(200.0));
  EXPECT_GT(p.pm_deg, 0.0);
  EXPECT_GT(p.swing_pos, 2.0);
  EXPECT_GT(p.power, 0.0);
  EXPECT_GT(p.area, 0.0);
}

TEST(FlatEval, GainGrowsWithLength) {
  FlatSizing s;
  s.w1 = um(100.0);
  s.l1 = um(5.0);
  s.w3 = um(60.0);
  s.l3 = um(5.0);
  s.w5 = um(60.0);
  s.l5 = um(10.0);
  s.w6 = um(400.0);
  s.l6 = um(5.0);
  s.w7 = um(100.0);
  s.l7 = um(5.0);
  s.i5 = util::ua(10.0);
  s.i6 = util::ua(60.0);
  s.cc = util::pf(3.0);
  const auto short_l =
      evaluate_flat_two_stage(tech5(), synth::spec_case_b(), s);
  FlatSizing s2 = s;
  s2.l1 = um(10.0);
  s2.w1 = um(200.0);  // same W/L
  s2.l6 = um(10.0);
  s2.w6 = um(800.0);
  const auto long_l =
      evaluate_flat_two_stage(tech5(), synth::spec_case_b(), s2);
  EXPECT_GT(long_l.gain_db, short_l.gain_db);
}

TEST(RandomSearch, Deterministic) {
  BaselineOptions o;
  o.seed = 42;
  o.max_evaluations = 500;
  const BaselineResult a =
      random_search_two_stage(tech5(), synth::spec_case_a(), o);
  const BaselineResult b =
      random_search_two_stage(tech5(), synth::spec_case_a(), o);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.best_violations, b.best_violations);
}

TEST(RandomSearch, EventuallyFindsEasySpec) {
  // A deliberately loose spec: random search should succeed.
  core::OpAmpSpec easy;
  easy.name = "easy";
  easy.cload = util::pf(10.0);
  easy.gain_min_db = 40.0;
  easy.gbw_min = util::khz(200.0);
  easy.pm_min_deg = 30.0;
  BaselineOptions o;
  o.seed = 7;
  o.max_evaluations = 20000;
  const BaselineResult r = random_search_two_stage(tech5(), easy, o);
  EXPECT_TRUE(r.success) << "best violations: " << r.best_violations;
  EXPECT_GT(r.evaluations, 0);
}

TEST(RandomSearch, StrugglesOnTightSpec) {
  // The paper's case C axes are far beyond unstructured sampling within a
  // small budget — this is the knowledge-vs-search story.
  BaselineOptions o;
  o.seed = 11;
  o.max_evaluations = 2000;
  const BaselineResult r =
      random_search_two_stage(tech5(), synth::spec_case_c(), o);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.best_violations, 0);
}

TEST(RandomSearch, BudgetRespected) {
  BaselineOptions o;
  o.seed = 3;
  o.max_evaluations = 100;
  const BaselineResult r =
      random_search_two_stage(tech5(), synth::spec_case_c(), o);
  EXPECT_LE(r.evaluations, 100);
}

}  // namespace
}  // namespace oasys::baseline
