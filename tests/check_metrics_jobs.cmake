# Cross-jobs determinism check for the metrics export (ctest script).
#
# Runs one synthesis + verification of the same spec at --jobs 1, 2, and 4
# and asserts the "deterministic" section of the metrics JSON is
# byte-identical across the three runs.  The "timing" section (durations,
# scheduling-derived gauges) is allowed to differ — that split is the
# contract documented in src/obs/export.h.
#
# Expects: OASYS_CLI (path to the oasys binary), SPEC (spec file),
# WORK_DIR (writable scratch directory).
foreach(jobs 1 2 4)
  execute_process(
    COMMAND ${OASYS_CLI} --spec ${SPEC} --verify --jobs ${jobs}
            --metrics-json ${WORK_DIR}/metrics_jobs${jobs}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "oasys --jobs ${jobs} failed (exit ${rc})")
  endif()
  file(READ ${WORK_DIR}/metrics_jobs${jobs}.json doc)
  string(FIND "${doc}" "\"timing\"" cut)
  if(cut EQUAL -1)
    message(FATAL_ERROR "metrics JSON at jobs=${jobs} has no timing section")
  endif()
  # Everything before the timing section: the schema line plus the full
  # deterministic section.
  string(SUBSTRING "${doc}" 0 ${cut} prefix)
  set(det_${jobs} "${prefix}")
endforeach()

foreach(jobs 2 4)
  if(NOT det_${jobs} STREQUAL det_1)
    message(FATAL_ERROR
            "deterministic metrics differ between --jobs 1 and "
            "--jobs ${jobs}:\n--- jobs 1 ---\n${det_1}\n"
            "--- jobs ${jobs} ---\n${det_${jobs}}")
  endif()
endforeach()
message(STATUS "deterministic metrics identical at --jobs 1/2/4")
