# Tolerance-tier golden verification (ctest script).
#
# Three layers, all through the shipped CLI and the standalone tolcmp
# checker:
#   1. Determinism self-check: `oasys golden --tol` regenerated twice in
#      one environment is BYTE-IDENTICAL to itself — the adaptive
#      transient is deterministic on one build; the envelopes only absorb
#      cross-compiler drift.
#   2. Envelope check: every committed golden in tests/golden/tol/ is
#      compared against the regenerated document with tolcmp, under the
#      envelopes the golden itself declares.
#   3. File-set check: regeneration produces exactly the committed file
#      set — a new subject without its committed golden (or a committed
#      golden whose subject vanished) fails loudly.
#
# Expects: OASYS_CLI (path to the oasys binary), TOLCMP (path to the
# tolcmp binary), GOLDEN_DIR (committed tests/golden/tol), WORK_DIR
# (writable scratch directory).
foreach(round 1 2)
  set(dir ${WORK_DIR}/tol_regen_${round})
  file(REMOVE_RECURSE ${dir})
  file(MAKE_DIRECTORY ${dir})
  execute_process(
    COMMAND ${OASYS_CLI} golden --tol --dir ${dir}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "oasys golden --tol failed (exit ${rc}):\n${err}")
  endif()
endforeach()

# 1. Byte-identity of the two regeneration rounds.
file(GLOB round1 RELATIVE ${WORK_DIR}/tol_regen_1
     ${WORK_DIR}/tol_regen_1/*.json)
list(SORT round1)
if(round1 STREQUAL "")
  message(FATAL_ERROR "golden --tol produced no documents")
endif()
foreach(name ${round1})
  file(READ ${WORK_DIR}/tol_regen_1/${name} a)
  file(READ ${WORK_DIR}/tol_regen_2/${name} b)
  if(NOT a STREQUAL b)
    message(FATAL_ERROR
            "determinism self-check failed: ${name} differs between two "
            "regenerations in the same environment")
  endif()
endforeach()
message(STATUS "determinism self-check: ${round1} byte-identical across "
               "two regenerations")

# 3. (checked before 2 so a set mismatch reports completely, not on the
# first missing file) Regenerated and committed file sets must match.
file(GLOB committed RELATIVE ${GOLDEN_DIR} ${GOLDEN_DIR}/*.json)
list(SORT committed)
if(NOT committed STREQUAL round1)
  message(FATAL_ERROR
          "tolerance golden file sets differ\n"
          "committed (${GOLDEN_DIR}): ${committed}\n"
          "regenerated: ${round1}\n"
          "regenerate with: oasys golden --tol --dir tests/golden/tol")
endif()

# 2. Every committed golden holds its envelopes against the regeneration.
foreach(name ${committed})
  execute_process(
    COMMAND ${TOLCMP} ${GOLDEN_DIR}/${name} ${WORK_DIR}/tol_regen_1/${name}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "tolerance envelope violated for ${name} (tolcmp exit "
            "${rc}):\n${out}${err}\n"
            "inspect the diff, then regenerate with: oasys golden --tol "
            "--dir tests/golden/tol")
  endif()
  string(STRIP "${out}" out)
  message(STATUS "${out}")
endforeach()
