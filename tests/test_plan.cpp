#include <gtest/gtest.h>

#include <limits>

#include "core/context.h"
#include "core/plan.h"
#include "core/selector.h"
#include "core/spec.h"
#include "tech/builtin.h"

namespace oasys::core {
namespace {

struct TestContext : DesignContext {
  explicit TestContext(const tech::Technology& t) : DesignContext(t) {}
};

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

// ---- context ----------------------------------------------------------------

TEST(Context, VariableStore) {
  TestContext ctx(tech5());
  EXPECT_FALSE(ctx.has("x"));
  EXPECT_THROW(ctx.get("x"), std::out_of_range);
  EXPECT_DOUBLE_EQ(ctx.get_or("x", 7.0), 7.0);
  ctx.set("x", 3.0);
  EXPECT_TRUE(ctx.has("x"));
  EXPECT_DOUBLE_EQ(ctx.get("x"), 3.0);
  ctx.set("x", 4.0);  // overwrite
  EXPECT_DOUBLE_EQ(ctx.get("x"), 4.0);
}

TEST(Context, Counters) {
  TestContext ctx(tech5());
  EXPECT_EQ(ctx.count("rule"), 0);
  EXPECT_EQ(ctx.bump("rule"), 1);
  EXPECT_EQ(ctx.bump("rule"), 2);
  EXPECT_EQ(ctx.count("rule"), 2);
  EXPECT_EQ(ctx.count("other"), 0);
}

// ---- plan execution ------------------------------------------------------------

TEST(Plan, StraightLineSuccess) {
  Plan<TestContext> plan("p");
  plan.add_step("a", [](TestContext& ctx) {
    ctx.set("a", 1.0);
    return StepStatus::success();
  });
  plan.add_step("b", [](TestContext& ctx) {
    ctx.set("b", ctx.get("a") + 1.0);
    return StepStatus::success();
  });
  TestContext ctx(tech5());
  const ExecutionTrace trace = execute_plan(plan, ctx);
  EXPECT_TRUE(trace.success);
  EXPECT_EQ(trace.steps_executed, 2);
  EXPECT_EQ(trace.rules_fired, 0);
  EXPECT_DOUBLE_EQ(ctx.get("b"), 2.0);
}

TEST(Plan, FailureWithNoRuleAborts) {
  Plan<TestContext> plan("p");
  plan.add_step("fail", [](TestContext&) {
    return StepStatus::fail("boom", "always fails");
  });
  TestContext ctx(tech5());
  const ExecutionTrace trace = execute_plan(plan, ctx);
  EXPECT_FALSE(trace.success);
  EXPECT_NE(trace.abort_reason.find("boom"), std::string::npos);
}

TEST(Plan, RuleRetriesStep) {
  // The classic pattern: a step fails until a rule adjusts a variable.
  Plan<TestContext> plan("p");
  plan.add_step("check", [](TestContext& ctx) {
    if (ctx.get_or("x", 0.0) < 3.0) {
      return StepStatus::fail("too-small", "x below threshold");
    }
    return StepStatus::success();
  });
  plan.add_rule("grow-x",
                [](TestContext& ctx, const StepFailure& f)
                    -> std::optional<PatchAction> {
                  if (f.code != "too-small") return std::nullopt;
                  ctx.set("x", ctx.get_or("x", 0.0) + 1.0);
                  return PatchAction::retry_step("grew x");
                });
  TestContext ctx(tech5());
  const ExecutionTrace trace = execute_plan(plan, ctx);
  EXPECT_TRUE(trace.success);
  EXPECT_EQ(trace.rules_fired, 3);
  EXPECT_TRUE(trace.rule_fired("grow-x"));
  EXPECT_DOUBLE_EQ(ctx.get("x"), 3.0);
}

TEST(Plan, RuleRestartsAtEarlierStep) {
  // Mirrors the paper's gain-partition example: a late failure skews an
  // early decision and re-runs the plan from there.
  Plan<TestContext> plan("p");
  const std::size_t idx_partition =
      plan.add_step("partition", [](TestContext& ctx) {
        ctx.set("gain1", ctx.get_or("skew", 10.0));
        return StepStatus::success();
      });
  plan.add_step("verify", [](TestContext& ctx) {
    if (ctx.get("gain1") < 15.0) {
      return StepStatus::fail("gain-shortfall", "stage 1 too weak");
    }
    return StepStatus::success();
  });
  plan.add_rule("skew-partition",
                [idx_partition](TestContext& ctx, const StepFailure& f)
                    -> std::optional<PatchAction> {
                  if (f.code != "gain-shortfall") return std::nullopt;
                  if (ctx.bump("skews") > 1) return std::nullopt;
                  ctx.set("skew", 20.0);
                  return PatchAction::restart_at(idx_partition, "skewed");
                });
  TestContext ctx(tech5());
  const ExecutionTrace trace = execute_plan(plan, ctx);
  EXPECT_TRUE(trace.success);
  EXPECT_DOUBLE_EQ(ctx.get("gain1"), 20.0);
  // partition ran twice, verify twice.
  EXPECT_EQ(trace.steps_executed, 4);
}

TEST(Plan, RuleCanAbort) {
  Plan<TestContext> plan("p");
  plan.add_step("fail", [](TestContext&) {
    return StepStatus::fail("fatal", "nope");
  });
  plan.add_rule("give-up",
                [](TestContext&, const StepFailure& f)
                    -> std::optional<PatchAction> {
                  if (f.code != "fatal") return std::nullopt;
                  return PatchAction::abort("inherent limitation");
                });
  TestContext ctx(tech5());
  const ExecutionTrace trace = execute_plan(plan, ctx);
  EXPECT_FALSE(trace.success);
  EXPECT_NE(trace.abort_reason.find("give-up"), std::string::npos);
}

TEST(Plan, RuleCanAcceptAndContinue) {
  Plan<TestContext> plan("p");
  plan.add_step("strict", [](TestContext&) {
    return StepStatus::fail("minor", "slightly off");
  });
  plan.add_step("after", [](TestContext& ctx) {
    ctx.set("reached", 1.0);
    return StepStatus::success();
  });
  plan.add_rule("accept",
                [](TestContext&, const StepFailure&)
                    -> std::optional<PatchAction> {
                  return PatchAction::proceed("first-cut accept");
                });
  TestContext ctx(tech5());
  const ExecutionTrace trace = execute_plan(plan, ctx);
  EXPECT_TRUE(trace.success);
  EXPECT_DOUBLE_EQ(ctx.get("reached"), 1.0);
}

TEST(Plan, PatchBudgetBoundsInfiniteLoops) {
  Plan<TestContext> plan("p");
  plan.add_step("fail", [](TestContext&) {
    return StepStatus::fail("loop", "never fixed");
  });
  plan.add_rule("useless",
                [](TestContext&, const StepFailure&)
                    -> std::optional<PatchAction> {
                  return PatchAction::retry_step("try again");
                });
  TestContext ctx(tech5());
  ExecutorOptions opts;
  opts.max_patches = 5;
  const ExecutionTrace trace = execute_plan(plan, ctx, opts);
  EXPECT_FALSE(trace.success);
  EXPECT_EQ(trace.rules_fired, 5);
  EXPECT_NE(trace.abort_reason.find("budget"), std::string::npos);
}

TEST(Plan, RulesCanBeDisabledForAblation) {
  Plan<TestContext> plan("p");
  plan.add_step("fail-once", [](TestContext& ctx) {
    if (ctx.get_or("fixed", 0.0) == 0.0) {
      return StepStatus::fail("needs-fix", "");
    }
    return StepStatus::success();
  });
  plan.add_rule("fix",
                [](TestContext& ctx, const StepFailure&)
                    -> std::optional<PatchAction> {
                  ctx.set("fixed", 1.0);
                  return PatchAction::retry_step("fixed");
                });
  TestContext with_rules(tech5());
  EXPECT_TRUE(execute_plan(plan, with_rules).success);
  TestContext without_rules(tech5());
  ExecutorOptions opts;
  opts.rules_enabled = false;
  EXPECT_FALSE(execute_plan(plan, without_rules, opts).success);
}

TEST(Plan, FirstMatchingRuleWins) {
  Plan<TestContext> plan("p");
  plan.add_step("fail", [](TestContext& ctx) {
    if (ctx.get_or("done", 0.0) != 0.0) return StepStatus::success();
    return StepStatus::fail("f", "");
  });
  plan.add_rule("first",
                [](TestContext& ctx, const StepFailure&)
                    -> std::optional<PatchAction> {
                  ctx.set("done", 1.0);
                  ctx.set("who", 1.0);
                  return PatchAction::retry_step("first");
                });
  plan.add_rule("second",
                [](TestContext& ctx, const StepFailure&)
                    -> std::optional<PatchAction> {
                  ctx.set("done", 1.0);
                  ctx.set("who", 2.0);
                  return PatchAction::retry_step("second");
                });
  TestContext ctx(tech5());
  EXPECT_TRUE(execute_plan(plan, ctx).success);
  EXPECT_DOUBLE_EQ(ctx.get("who"), 1.0);
}

TEST(Plan, StepIndexLookup) {
  Plan<TestContext> plan("p");
  plan.add_step("alpha", [](TestContext&) { return StepStatus::success(); });
  plan.add_step("beta", [](TestContext&) { return StepStatus::success(); });
  EXPECT_EQ(plan.step_index("beta"), 1u);
  EXPECT_THROW(plan.step_index("gamma"), std::out_of_range);
}

TEST(Plan, TraceRendering) {
  Plan<TestContext> plan("p");
  plan.add_step("s", [](TestContext&) {
    return StepStatus::fail("code-z", "detail-z");
  });
  TestContext ctx(tech5());
  const ExecutionTrace trace = execute_plan(plan, ctx);
  const std::string s = trace.to_string();
  EXPECT_NE(s.find("code-z"), std::string::npos);
  EXPECT_NE(s.find("plan failed"), std::string::npos);
}

// ---- spec checking ------------------------------------------------------------

TEST(Spec, ValidationCatchesNonsense) {
  OpAmpSpec s;
  s.cload = 0.0;
  EXPECT_TRUE(s.validate().has_errors());
  s.cload = 1e-12;
  s.pm_min_deg = 95.0;
  EXPECT_TRUE(s.validate().has_errors());
  s.pm_min_deg = 60.0;
  s.icmr_lo = 2.0;
  s.icmr_hi = -2.0;
  EXPECT_TRUE(s.validate().has_errors());
  s.icmr_lo = -2.0;
  s.icmr_hi = 2.0;
  EXPECT_FALSE(s.validate().has_errors());
}

TEST(Spec, CheckCountsViolations) {
  OpAmpSpec s;
  s.cload = 1e-12;
  s.gain_min_db = 60.0;
  s.gbw_min = 1e6;
  s.offset_max = 1e-3;
  OpAmpPerformance p;
  p.gain_db = 65.0;   // ok
  p.gbw = 0.5e6;      // violated
  p.offset = 2e-3;    // violated
  const auto checks = check_spec(s, p);
  EXPECT_EQ(violation_count(checks), 2);
}

TEST(Spec, ToleranceLoosensBounds) {
  OpAmpSpec s;
  s.cload = 1e-12;
  s.gbw_min = 1e6;
  OpAmpPerformance p;
  p.gbw = 0.95e6;
  EXPECT_EQ(violation_count(check_spec(s, p, 0.0)), 1);
  EXPECT_EQ(violation_count(check_spec(s, p, 0.10)), 0);
}

TEST(Spec, UnconstrainedAxesNeverViolate) {
  OpAmpSpec s;
  s.cload = 1e-12;  // everything else unconstrained
  OpAmpPerformance p;  // all zeros
  EXPECT_EQ(violation_count(check_spec(s, p)), 0);
}

// ---- selector ---------------------------------------------------------------------

TEST(Selector, PrefersFewestViolationsThenArea) {
  std::vector<StyleScore> scores = {
      {"big-clean", true, 0, 9e-9},
      {"small-clean", true, 0, 5e-9},
      {"tiny-dirty", true, 1, 1e-9},
      {"broken", false, 0, 1e-10},
  };
  const SelectionResult r = select_style(scores);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 1u);  // small-clean
  ASSERT_EQ(r.ranking.size(), 3u);
  EXPECT_EQ(r.ranking[0], 1u);
  EXPECT_EQ(r.ranking[1], 0u);
  EXPECT_EQ(r.ranking[2], 2u);
  EXPECT_NE(r.summary.find("selected"), std::string::npos);
}

TEST(Selector, NanAreaRanksWorst) {
  // A degenerate designer can hand selection a feasible candidate whose
  // predicted area is NaN; `<` on NaN breaks strict weak ordering (UB in
  // std::stable_sort) and used to scramble the ranking.  Non-finite area
  // must rank behind every finite competitor, never win, never crash.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const SelectionResult r = select_style({
      {"nan-area", true, 0, nan},
      {"clean", true, 0, 5e-9},
      {"dirty", true, 1, 1e-9},
      {"inf-area", true, 0, std::numeric_limits<double>::infinity()},
  });
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 1u);  // clean: finite area, no violations
  ASSERT_EQ(r.ranking.size(), 4u);
  EXPECT_EQ(r.ranking[0], 1u);
  // Both non-finite areas sit behind clean but ahead of the violating
  // candidate, keeping their input order (stable sort).
  EXPECT_EQ(r.ranking[1], 0u);
  EXPECT_EQ(r.ranking[2], 3u);
  EXPECT_EQ(r.ranking[3], 2u);
}

TEST(Selector, AllNanAreasStillSelectDeterministically) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const SelectionResult r = select_style({
      {"a", true, 0, nan},
      {"b", true, 0, nan},
      {"c", true, 0, nan},
  });
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 0u);  // stable: input order preserved
  ASSERT_EQ(r.ranking.size(), 3u);
  EXPECT_EQ(r.ranking[0], 0u);
  EXPECT_EQ(r.ranking[1], 1u);
  EXPECT_EQ(r.ranking[2], 2u);
}

TEST(Selector, NoFeasibleCandidates) {
  const SelectionResult r = select_style({{"a", false, 0, 1.0}});
  EXPECT_FALSE(r.best.has_value());
  EXPECT_TRUE(r.ranking.empty());
}

TEST(Selector, FirstCutBeatsNothing) {
  const SelectionResult r = select_style({
      {"infeasible", false, 0, 1.0},
      {"first-cut", true, 2, 2.0},
  });
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 1u);
}

}  // namespace
}  // namespace oasys::core
