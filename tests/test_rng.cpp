// Contract tests for util::RngStream, the counter-based deterministic
// generator underneath yield analysis and mismatch sampling.
//
// The contract the rest of the repo leans on:
//  * a stream is a pure function of (seed, stream index) — no global or
//    cross-stream state, so any partitioning of samples over threads,
//    shard workers, or chunk sizes reproduces bit-identically;
//  * the first draws of pinned (seed, stream) pairs are golden — any
//    change to the construction is a breaking change to every cached or
//    pinned yield document and must show up here first;
//  * distinct streams are statistically independent (smoke-level check);
//  * gaussians are deterministic and have the right moments.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace oasys::util {
namespace {

struct GoldenStream {
  std::uint64_t seed;
  std::uint64_t stream;
  std::uint64_t draws[64];
};

// First 64 raw draws for four (seed, stream) pairs, pinned at the
// introduction of the stream API.  Regenerate only on a deliberate,
// documented break of the RNG contract.
const GoldenStream kGolden[] = {
    {1, 0,
     {0x04bd3fdc83305435ull, 0x29caee7c0b3d1513ull, 0x0c3147f496916426ull,
      0xc7b451b89d4a92a2ull, 0x63c84b95b720eb09ull, 0xd031b76812fff966ull,
      0x1beb832194192b9cull, 0xe7b8650fdb05b19aull, 0xfff508ac535a80f7ull,
      0x40e1d666a21e282dull, 0xb84b3d97459d2198ull, 0xa9e33e1dbe418940ull,
      0xd0aa078c0e80d074ull, 0x4d72a5ccbc72fce0ull, 0x70a3aa5a0ac99e8full,
      0x420b927f066ff5bcull, 0x2cbbea3a34b89a10ull, 0xd6d4c55b6e4ebef5ull,
      0x4a0f35774710b1f8ull, 0xa73a5b338ee7ae7full, 0x39638e452e60b1a7ull,
      0x1b15f1531c08d979ull, 0xa926134223072236ull, 0xd2590854d17b7dcaull,
      0x45cb4f8276bb5519ull, 0xd2e0633f824d522aull, 0x0445a245ed532058ull,
      0xf83c1b9ee7aae6adull, 0x4fddd4d1f766a295ull, 0x04ca588c395ccaafull,
      0x3e93e680a39c3513ull, 0x04cf03c214fae76aull, 0x0e739b9f5708da83ull,
      0x7aeb0ea6e406eb49ull, 0x1c917814c170456cull, 0x204dd2187e6322bfull,
      0xc2377de9285520d1ull, 0xa6ddebc2d846625dull, 0x355504df46150dfcull,
      0x513b4acfc981a8b8ull, 0xf712964b52c22b84ull, 0xd04ae5c7a1408615ull,
      0x7ec953e20f8cdc78ull, 0x99e47edcb27e9229ull, 0x0245583179a9cf0eull,
      0xe481adadb4287a3bull, 0x0a8a6680b4c4dc5cull, 0x68865ac273127addull,
      0x05fb772600cbe8a0ull, 0x6a3d52e3b63b2f7aull, 0xff7fb778f549e70bull,
      0x2ca2bc5af4e4b1c9ull, 0xd2fd9be864e107e5ull, 0x0a8d02547c099997ull,
      0x1ae63baeaa9545c5ull, 0x7c2ecce0d72fc184ull, 0xee338759731a1698ull,
      0x1aa1bdf93ef6ae47ull, 0xd001fadbd3303fc9ull, 0x0da6f62bf266423eull,
      0xa71d1e3244aa1bbeull, 0xd6dca31f235153bbull, 0x09363e22daf76840ull,
      0x331942f0ab8dc47aull}},
    {1, 1,
     {0x732dc1759a8ace81ull, 0xe549da577b4f4ab2ull, 0x840b2a2080156975ull,
      0x94e2c9b789fa5c78ull, 0x6a8d40c4292e297eull, 0xfd27de90ec9b95baull,
      0x91d82306bc0ae464ull, 0xb57a31187ca0784cull, 0x1ee7e403e7182f7full,
      0x048c5ccaec1be96eull, 0xea0de2b00f36e898ull, 0x58d55f14d6967b58ull,
      0xffdc9b9bdf545c4bull, 0x022755260929e088ull, 0xd61309c816ad1c32ull,
      0xa46f3ef841c45be0ull, 0x761f9e7101a02ae7ull, 0x3ba13a8172a7c7b5ull,
      0xcb98e9fd58dfaebaull, 0xa5e55f99c453b1d9ull, 0x7708da75eb5740b7ull,
      0x49505215cf18dd88ull, 0x3922da79ad6bc54aull, 0xf5f4739501c2f59aull,
      0x371deeee5bda1490ull, 0x0511deb930a1b5f6ull, 0xcf1878633049dfbfull,
      0xa3f0ff7d6583f681ull, 0xcf552dc31f83efa2ull, 0xf6b71c94a645187dull,
      0x4b940e65a9550171ull, 0xd9a4cc00d7f11d65ull, 0xb5248f2744de04b7ull,
      0x3d0977fb188b5ca9ull, 0xfd2e7df75d59aa7aull, 0x16bf8a8036f8eb24ull,
      0xac1a0b643fae9381ull, 0x15e9a83f2a5a3a00ull, 0x76a86f18377e8c12ull,
      0x1961f55d80614fabull, 0xd568c4227d2874dbull, 0xdf256c365b9e8310ull,
      0xdc5e3a7d9830dda3ull, 0x77c794041fac83ccull, 0x4ca705a4a606b9c2ull,
      0x2ce8eee429d2b99bull, 0x674d34be3a79c5e2ull, 0x36f953bfcba47b10ull,
      0x74cc4e2818d6ad93ull, 0xbd03795b2ad600f9ull, 0x30b9dbe0073acc27ull,
      0x6aff7f8daa37cf41ull, 0xf4df010bed9959ebull, 0x68da389b019db73aull,
      0x00333bd828d8363full, 0x02491d4ff780d0d9ull, 0x5356835067fa2b22ull,
      0x85c1ee469bc04ecaull, 0x537d8931e89289d3ull, 0x5a6fdbe77c6a4c37ull,
      0xad71fca7aaeee136ull, 0xd513eef29a2806afull, 0xcac185dcc9b64ff6ull,
      0x06106d12e411f7cdull}},
    {42, 7,
     {0xa44df4b57bf36a6aull, 0x0ebcb6bcf7f48aefull, 0xdada6bcda51de095ull,
      0x2c282e06392b9e7full, 0xe3b562b9c93329dcull, 0xc9cfc12d857bd737ull,
      0xda099d4b8ebdee8eull, 0xb1e10400ecc7d6ddull, 0xd645436c1722e749ull,
      0xe152c68fcfbbdcf9ull, 0x7103fb0ad4944af8ull, 0x6080d7f1b4edf274ull,
      0x5b372ec85c16a9f2ull, 0xb16f5ef0d8b9c849ull, 0xd7a1a93b0eeb90ccull,
      0x49caeb55323e44faull, 0xc23b78cfc0eb736bull, 0x81d7849d7fb4dd26ull,
      0xeb1fb5578c9310beull, 0x5fcab3bd3f437e48ull, 0x6ee2e966e56d3eb1ull,
      0xf81bf8f9c2cd8c4aull, 0x9720997d4bae47c2ull, 0x9cf3f2f4ded0b1f3ull,
      0x641ce1e3d88f9626ull, 0xc7677f546f7b7759ull, 0xe4f386bcfba2b270ull,
      0x63bee44d3b8fbb23ull, 0x3eee50e5c2cd4b0aull, 0xa1c4706fef306315ull,
      0x828c82283d3a6fe5ull, 0xb9c02fe61d49b8fdull, 0x73e3b40a274e447cull,
      0xa287a1becb354772ull, 0xfca1f840f859a7e2ull, 0x56a43caa7d99a9aaull,
      0x0590d442ce89dd15ull, 0x638d8e275fe37445ull, 0x9d4c6eb52867d326ull,
      0x1dfc06057c4d06abull, 0xdf2bbb4857e9909cull, 0xc803e78b0d2de2edull,
      0x033b61634bef07fcull, 0x982967909cf462d0ull, 0xaade6a99866dfdc7ull,
      0x8e186ade34c98b69ull, 0x3242c176b47f2ddcull, 0x50258d808d456c35ull,
      0x42bc8006ec61eb02ull, 0xad9eb119ded72964ull, 0x7dd9c1047e32f609ull,
      0xa8074fb0d5a22276ull, 0xeead02aaf01c61e8ull, 0x6916bc93470adde7ull,
      0x3eb5f1e56a805f20ull, 0x944fe1af44a84447ull, 0x49809fea82784f66ull,
      0x4e2e9dc0ca02f727ull, 0x3c64eb9d10d72bfaull, 0x79e74dcc9ddce159ull,
      0xbdbdb7437fbdeb3cull, 0xa01f3f9800021389ull, 0xc479224f58a33f1eull,
      0x70fffa24982bba4eull}},
    {0xDEADBEEFull, 123456789,
     {0xc4d8854fad28973bull, 0xab7851454ea73467ull, 0x64ee60791974817eull,
      0x4c257b23fabcb569ull, 0xbf07669ab874a254ull, 0x6c8d0249f224bfeaull,
      0xca3cfae559292a5full, 0x96111b5260a59190ull, 0x742c19ab7ff3b72dull,
      0x408a5612f3b4e76aull, 0x16cd162189c1a947ull, 0xe59a32196f6fd5c0ull,
      0x5a82b52fc226edb6ull, 0x1e3ae4b203a961f9ull, 0x6e007bb385b6d332ull,
      0xd0c22ad17c073b28ull, 0x351dbc5ccbb58c0aull, 0xcd3d8977343a67bcull,
      0x05adc8aea0561e77ull, 0xdba1bf31a20fb4c0ull, 0x9e43dd7230ad63cfull,
      0xe1b5cd7fcf86994aull, 0xeb12a3d5736562e5ull, 0xb9966f5370090b79ull,
      0x6830964a974f3447ull, 0x2f0b9eef12a33c45ull, 0x9c277cadceaf39abull,
      0x1621d6ac9563b81dull, 0x719e94f95bf9e49bull, 0x8bc77c00a58508b1ull,
      0x4ce880b9dcb424bfull, 0x84b2d96d810e2585ull, 0x01a4a1de02971eefull,
      0x0d86ae6447623fedull, 0xdeefcee033b1ef3full, 0x27733a451317100aull,
      0x3c30487a6eb240b7ull, 0x34aa64a378eaa8beull, 0xfc28bc900f90118eull,
      0x74be6fb677db3316ull, 0x3cdca8d5cd97dcc3ull, 0x83e75d3abce98df3ull,
      0x34539f11b82284efull, 0x44668f89eb3e1c37ull, 0x2693ed29fd469ebdull,
      0xbfe69b2aff85921eull, 0x83dcf4e5c87c37dfull, 0x6a9e44aaa5929f70ull,
      0x2aaddf2fb6cc9a75ull, 0x164b30aad96413b9ull, 0x805fa18e98273563ull,
      0x74657f25a378a00eull, 0x0058dcaae62a0652ull, 0x784d922f71f44761ull,
      0xe2cb6ba80d07362aull, 0xa4dc2efa67f56188ull, 0x2a5beb351f9c7d71ull,
      0xad10b0ebf7235900ull, 0x84a1a503c9625a7aull, 0x86e39af315771989ull,
      0xe86c5465ae134e3full, 0x0b61fc75b5130ac3ull, 0x70a237cd35c169e4ull,
      0xe60f9c2eb00b5decull}}};

TEST(RngStream, GoldenFirst64Draws) {
  for (const GoldenStream& g : kGolden) {
    RngStream r(g.seed, g.stream);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(g.draws[i], r.next_u64())
          << "seed=" << g.seed << " stream=" << g.stream << " draw=" << i;
    }
  }
}

TEST(RngStream, PureFunctionOfSeedAndStream) {
  // A reconstructed stream replays exactly; interleaving draws from other
  // streams cannot perturb it (no shared state anywhere).
  RngStream a(99, 5);
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(a.next_u64());

  RngStream b(99, 5);
  RngStream noise1(99, 6);
  RngStream noise2(7, 5);
  for (int i = 0; i < 32; ++i) {
    (void)noise1.next_u64();
    (void)noise2.next_gauss();
    EXPECT_EQ(expected[static_cast<std::size_t>(i)], b.next_u64());
  }
}

TEST(RngStream, AdjacentStreamsAndSeedsDiffer) {
  // Full-avalanche mixing of both inputs: nearby (seed, stream) pairs
  // must not share any of their first draws.
  RngStream base(1, 0);
  const std::uint64_t first = base.next_u64();
  for (std::uint64_t d = 1; d <= 16; ++d) {
    RngStream s(1, d);
    RngStream t(1 + d, 0);
    EXPECT_NE(first, s.next_u64());
    EXPECT_NE(first, t.next_u64());
  }
}

TEST(RngStream, StreamIndependenceSmoke) {
  // First uniform of 4096 consecutive streams: mean near 1/2, variance
  // near 1/12, and negligible lag-1 correlation across stream index.
  // Statistical smoke, not proof — bounds are loose enough to be stable.
  const int n = 4096;
  std::vector<double> first(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    RngStream r(2026, static_cast<std::uint64_t>(i));
    first[static_cast<std::size_t>(i)] = r.next_double();
  }
  double mean = 0.0;
  for (double v : first) mean += v;
  mean /= n;
  double var = 0.0, lag1 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = first[static_cast<std::size_t>(i)] - mean;
    var += d * d;
    if (i > 0) {
      lag1 += d * (first[static_cast<std::size_t>(i - 1)] - mean);
    }
  }
  var /= n;
  lag1 /= (n - 1) * var;
  EXPECT_NEAR(mean, 0.5, 0.02);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
  EXPECT_LT(std::abs(lag1), 0.06);
}

TEST(RngStream, UniformRangeContract) {
  RngStream r(3, 3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, GaussMomentsAndDeterminism) {
  RngStream r(11, 0);
  const int n = 20000;
  double mean = 0.0, m2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gauss();
    EXPECT_TRUE(std::isfinite(g));
    mean += g;
    m2 += g * g;
  }
  mean /= n;
  m2 /= n;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(m2 - mean * mean, 1.0, 0.05);

  // Bit-identical replay, including the cached second Box-Muller value.
  RngStream p(11, 0), q(11, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.next_gauss(), q.next_gauss());
  }
}

}  // namespace
}  // namespace oasys::util
