#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interpolate.h"
#include "spice/ac.h"
#include "spice/measure.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::sim {
namespace {

using ckt::Circuit;
using ckt::Waveform;
using tech::Technology;
using util::kTwoPi;
using util::um;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

TEST(Ac, RcLowpassPoleAndPhase) {
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("V1", in, ckt::kGround, Waveform::ac(0.0, 1.0));
  const double r = 1e3;
  const double cap = 1e-9;  // pole at 159 kHz
  c.add_resistor("R1", in, out, r);
  c.add_capacitor("C1", out, ckt::kGround, cap);
  const double fp = 1.0 / (kTwoPi * r * cap);

  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  const AcResult ac =
      ac_analysis(c, tech5(), op, {fp / 100.0, fp, fp * 100.0});
  ASSERT_TRUE(ac.ok) << ac.error;
  MnaLayout layout(c);
  // Far below the pole: unity gain, ~0 phase.
  EXPECT_NEAR(std::abs(ac.voltage(layout, 0, out)), 1.0, 1e-3);
  // At the pole: -3 dB and -45 degrees.
  const auto vp = ac.voltage(layout, 1, out);
  EXPECT_NEAR(util::db20(std::abs(vp)), -3.0103, 0.01);
  EXPECT_NEAR(util::deg(std::arg(vp)), -45.0, 0.1);
  // Two decades above: -40 dB.
  EXPECT_NEAR(util::db20(std::abs(ac.voltage(layout, 2, out))), -40.0, 0.1);
}

TEST(Ac, CommonSourceAmpGainMatchesSmallSignal) {
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  // Bias the gate in saturation; AC ride on the gate.
  c.add_vsource("VIN", in, ckt::kGround, Waveform::ac(1.2, 1.0));
  c.add_mosfet("M1", out, in, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(50.0), um(5.0));
  const double rl = 50e3;
  c.add_resistor("RL", vdd, out, rl);

  const OpResult op = dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);
  ASSERT_EQ(op.devices[0].region, mos::Region::kSaturation);
  const double gm = op.devices[0].gm;
  const double gds = op.devices[0].gds;
  const double expected_gain = gm * (rl / (1.0 + gds * rl));

  const AcResult ac = ac_analysis(c, t, op, {10.0});
  ASSERT_TRUE(ac.ok);
  MnaLayout layout(c);
  const auto v = ac.voltage(layout, 0, out);
  EXPECT_NEAR(std::abs(v), expected_gain, expected_gain * 1e-3);
  // Inverting stage: phase ~180.
  EXPECT_NEAR(std::abs(util::deg(std::arg(v))), 180.0, 0.5);
}

TEST(Ac, FailsWithoutConvergedOp) {
  Circuit c;
  c.add_resistor("R", c.node("a"), ckt::kGround, 1e3);
  OpResult bad;
  bad.converged = false;
  const AcResult ac = ac_analysis(c, tech5(), bad, {1.0});
  EXPECT_FALSE(ac.ok);
}

TEST(Ac, RejectsNonPositiveFrequency) {
  Circuit c;
  const auto n = c.node("n");
  c.add_vsource("V", n, ckt::kGround, Waveform::ac(0.0, 1.0));
  c.add_resistor("R", n, ckt::kGround, 1e3);
  const OpResult op = dc_operating_point(c, tech5());
  const AcResult ac = ac_analysis(c, tech5(), op, {0.0});
  EXPECT_FALSE(ac.ok);
}

// ---- measurement layer --------------------------------------------------------

TEST(Measure, BodeAndMetricsOfRcCascade) {
  // Two RC poles: DC gain 0 dB, f1 = 159 kHz, f2 = 1.59 MHz (buffered by
  // ideal separation through a big impedance ratio).
  Circuit c;
  const auto in = c.node("in");
  const auto n1 = c.node("n1");
  const auto n2 = c.node("n2");
  c.add_vsource("V1", in, ckt::kGround, Waveform::ac(0.0, 1.0));
  c.add_resistor("R1", in, n1, 1e3);
  c.add_capacitor("C1", n1, ckt::kGround, 1e-9);
  c.add_resistor("R2", n1, n2, 1e6);  // light loading of the first section
  c.add_capacitor("C2", n2, ckt::kGround, 1e-13);

  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  const auto freqs = num::logspace(1e3, 1e8, 101);
  const AcResult ac = ac_analysis(c, tech5(), op, freqs);
  ASSERT_TRUE(ac.ok);
  MnaLayout layout(c);
  const BodeSeries bode = bode_of_node(ac, layout, n2);
  const LoopMetrics m = loop_metrics(bode);
  EXPECT_NEAR(m.dc_gain_db, 0.0, 0.1);
  ASSERT_TRUE(m.bandwidth_3db.has_value());
  EXPECT_NEAR(*m.bandwidth_3db, 159e3, 8e3);
  // Phase is unwrapped: far above both poles it approaches -180.
  EXPECT_LT(bode.phase_deg.back(), -150.0);
}

TEST(Measure, IntegratorUnityGainAndPhaseMargin) {
  // R-C integrator from a 0 dB reference at f = 1/(2 pi R C): unity-gain
  // crossing with 90 degrees of margin.
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("V1", in, ckt::kGround, Waveform::ac(0.0, 1000.0));
  // Gain 1000 at DC rolled off by one pole at 100 Hz -> ugf ~ 100 kHz.
  c.add_resistor("R1", in, out, 1.59e3);
  c.add_capacitor("C1", out, ckt::kGround, 1e-6);

  const OpResult op = dc_operating_point(c, tech5());
  const auto freqs = num::logspace(1.0, 1e7, 141);
  const AcResult ac = ac_analysis(c, tech5(), op, freqs);
  ASSERT_TRUE(ac.ok);
  MnaLayout layout(c);
  const LoopMetrics m = loop_metrics(bode_of_node(ac, layout, out));
  ASSERT_TRUE(m.unity_gain_freq.has_value());
  EXPECT_NEAR(*m.unity_gain_freq, 1000.0 / (util::kTwoPi * 1.59e3 * 1e-6),
              *m.unity_gain_freq * 0.05);
  ASSERT_TRUE(m.phase_margin_deg.has_value());
  EXPECT_NEAR(*m.phase_margin_deg, 90.0, 2.0);
}

TEST(Measure, InvertingSeedSignCannotFlipPhaseSeries) {
  // Inverting two-pole response: the DC phase sits at the ±180° branch
  // point, and rounding in the first sample's imaginary part decides which
  // principal value comes back.  Seeding the unwrap from the raw value
  // used to shift the whole series by 360° between the two rounding
  // outcomes; the seed must now be canonical (near +180°) either way.
  Circuit c;
  const auto out = c.node("out");
  c.add_resistor("R1", out, ckt::kGround, 1.0);
  c.add_vsource("VREF", out, ckt::kGround, Waveform::dc(0.0));
  const MnaLayout layout(c);
  const int out_idx = layout.node_index(out);
  ASSERT_GE(out_idx, 0);

  const std::vector<double> freqs = num::logspace(1.0, 1e6, 61);
  auto two_pole = [&](std::complex<double> first_sample) {
    AcResult ac;
    ac.ok = true;
    ac.freqs = freqs;
    for (const double f : freqs) {
      const std::complex<double> h =
          -100.0 / ((std::complex<double>(1.0, f / 1e2)) *
                    (std::complex<double>(1.0, f / 1e5)));
      std::vector<std::complex<double>> sol(layout.size());
      sol[static_cast<std::size_t>(out_idx)] = h;
      ac.solutions.push_back(std::move(sol));
    }
    ac.solutions[0][static_cast<std::size_t>(out_idx)] = first_sample;
    return ac;
  };

  // Same magnitude, imaginary part rounded to opposite signs: principal
  // values +179.4° vs -179.4°.
  const AcResult plus = two_pole({-100.0, 1.0});
  const AcResult minus = two_pole({-100.0, -1.0});
  const BodeSeries bp = bode_of_node(plus, layout, out);
  const BodeSeries bm = bode_of_node(minus, layout, out);

  // Both series seed near +180° (fold into the DC reference) ...
  EXPECT_NEAR(bp.phase_deg.front(), 180.0, 1.0);
  EXPECT_NEAR(bm.phase_deg.front(), 180.0, 1.0);
  // ... and track each other everywhere, instead of differing by 360°.
  ASSERT_EQ(bp.phase_deg.size(), bm.phase_deg.size());
  for (std::size_t i = 0; i < bp.phase_deg.size(); ++i) {
    EXPECT_NEAR(bp.phase_deg[i], bm.phase_deg[i], 1.2) << "at index " << i;
  }
  // Far above both poles the accumulated lag approaches 360° total,
  // i.e. the unwrapped series ends near 180 - 180 = 0 ... -180 band.
  EXPECT_LT(bp.phase_deg.back(), 10.0);

  // The derived loop metrics agree between the two rounding outcomes.
  const LoopMetrics mp = loop_metrics(bp);
  const LoopMetrics mm = loop_metrics(bm);
  ASSERT_TRUE(mp.phase_margin_deg.has_value());
  ASSERT_TRUE(mm.phase_margin_deg.has_value());
  EXPECT_NEAR(*mp.phase_margin_deg, *mm.phase_margin_deg, 1.5);
}

TEST(Measure, NonInvertingSeedUnaffectedByFold) {
  Circuit c;
  const auto out = c.node("out");
  c.add_resistor("R1", out, ckt::kGround, 1.0);
  c.add_vsource("VREF", out, ckt::kGround, Waveform::dc(0.0));
  const MnaLayout layout(c);
  const int out_idx = layout.node_index(out);
  ASSERT_GE(out_idx, 0);

  AcResult ac;
  ac.ok = true;
  ac.freqs = {1.0, 10.0};
  for (const double im : {-0.01, -0.1}) {
    std::vector<std::complex<double>> sol(layout.size());
    sol[static_cast<std::size_t>(out_idx)] = {10.0, im};
    ac.solutions.push_back(std::move(sol));
  }
  const BodeSeries b = bode_of_node(ac, layout, out);
  // A non-inverting response with a touch of lag keeps its small negative
  // phase; the branch-point fold must not touch it.
  EXPECT_NEAR(b.phase_deg.front(), -0.057, 0.01);
  EXPECT_LT(b.phase_deg.front(), 0.0);
}

TEST(Measure, FirstCrossingNoneWhenGainBelowUnity) {
  BodeSeries b;
  b.freqs = {1.0, 10.0, 100.0};
  b.gain_db = {-5.0, -10.0, -20.0};
  b.phase_deg = {0.0, -30.0, -60.0};
  const LoopMetrics m = loop_metrics(b);
  EXPECT_FALSE(m.unity_gain_freq.has_value());
  EXPECT_FALSE(m.phase_margin_deg.has_value());
}

}  // namespace
}  // namespace oasys::sim
