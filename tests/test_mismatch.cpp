// Random-mismatch analysis: the Monte-Carlo offset of synthesized op amps
// matches the analytic area-law prediction, and both scale the right way
// with device area.
#include <gtest/gtest.h>

#include "synth/mismatch.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::synth {
namespace {

using tech::Technology;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

TEST(MismatchModel, SigmaVtAreaLaw) {
  const tech::MosParams& p = tech5().nmos;
  const double s1 = p.sigma_vt(util::um(10.0), util::um(10.0));
  const double s4 = p.sigma_vt(util::um(40.0), util::um(10.0));
  EXPECT_NEAR(s1, 30e-3 * 1e-6 / 1e-5, 1e-9);  // 3 mV at 100 um^2
  EXPECT_NEAR(s1 / s4, 2.0, 1e-9);             // 4x area -> half sigma
  EXPECT_DOUBLE_EQ(p.sigma_vt(0.0, 1.0), 0.0);
}

TEST(MismatchModel, PredictionCoversPairAndLoad) {
  const SynthesisResult r = synthesize_opamp(tech5(), spec_case_a());
  ASSERT_TRUE(r.success());
  const double sigma = predict_random_offset_sigma(*r.best(), tech5());
  // 5 um devices at these sizes: a few hundred uV to a few mV.
  EXPECT_GT(sigma, util::mv(0.05));
  EXPECT_LT(sigma, util::mv(5.0));
}

TEST(MismatchMonteCarlo, MatchesPredictionWithinBand) {
  const SynthesisResult r = synthesize_opamp(tech5(), spec_case_a());
  ASSERT_TRUE(r.success());
  const double predicted = predict_random_offset_sigma(*r.best(), tech5());

  MismatchOptions opts;
  opts.samples = 60;
  opts.seed = 42;
  const MismatchResult mc = monte_carlo_offset(*r.best(), tech5(), opts);
  ASSERT_TRUE(mc.ok) << mc.error;
  EXPECT_GE(mc.samples, 50);
  // Sample sigma of 60 draws carries ~10% statistical error; the analytic
  // model additionally ignores tail/bias contributions: 2x band.
  EXPECT_GT(mc.sigma_offset, predicted * 0.5);
  EXPECT_LT(mc.sigma_offset, predicted * 2.0);
  // The mean recovers the systematic offset (the simulator's value sits
  // about 2x above the first-order prediction; see the integration tests).
  EXPECT_NEAR(std::abs(mc.mean_offset), r.best()->predicted.offset,
              std::max(2.0 * r.best()->predicted.offset, util::mv(5.0)));
}

TEST(MismatchMonteCarlo, Deterministic) {
  const SynthesisResult r = synthesize_opamp(tech5(), spec_case_a());
  ASSERT_TRUE(r.success());
  MismatchOptions opts;
  opts.samples = 10;
  opts.seed = 7;
  const MismatchResult a = monte_carlo_offset(*r.best(), tech5(), opts);
  const MismatchResult b = monte_carlo_offset(*r.best(), tech5(), opts);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_DOUBLE_EQ(a.sigma_offset, b.sigma_offset);
  EXPECT_DOUBLE_EQ(a.mean_offset, b.mean_offset);
}

TEST(MismatchMonteCarlo, InfeasibleDesignRejected) {
  OpAmpDesign d;
  d.feasible = false;
  EXPECT_FALSE(monte_carlo_offset(d, tech5()).ok);
}

TEST(MismatchMonteCarlo, TwoStageAlsoConverges) {
  const SynthesisResult r = synthesize_opamp(tech5(), spec_case_b());
  ASSERT_TRUE(r.success());
  MismatchOptions opts;
  opts.samples = 20;
  opts.seed = 3;
  const MismatchResult mc = monte_carlo_offset(*r.best(), tech5(), opts);
  ASSERT_TRUE(mc.ok) << mc.error;
  // Random offset dominates the (near-zero) systematic offset of the
  // balanced two-stage design.
  EXPECT_GT(mc.sigma_offset, std::abs(mc.mean_offset) * 0.5);
  EXPECT_LT(mc.sigma_offset, util::mv(10.0));
}

}  // namespace
}  // namespace oasys::synth
