#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "spice/measure.h"
#include "spice/tran.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::sim {
namespace {

using ckt::Circuit;
using ckt::Waveform;
using tech::Technology;
using util::um;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

TEST(Tran, RcChargingCurve) {
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  const double r = 1e3;
  const double cap = 1e-9;
  const double tau = r * cap;
  c.add_vsource("V1", in, ckt::kGround,
                Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.add_resistor("R1", in, out, r);
  c.add_capacitor("C1", out, ckt::kGround, cap);

  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  TranOptions to;
  to.tstop = 5.0 * tau;
  to.dt = tau / 100.0;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok) << tr.error;
  MnaLayout layout(c);
  // v(t) = 1 - exp(-t/tau): check at 1, 2, 3 tau.
  for (int k = 1; k <= 3; ++k) {
    const double t_check = k * tau;
    std::size_t idx = 0;
    for (std::size_t i = 0; i < tr.time.size(); ++i) {
      if (std::abs(tr.time[i] - t_check) <
          std::abs(tr.time[idx] - t_check)) {
        idx = i;
      }
    }
    const double expected = 1.0 - std::exp(-tr.time[idx] / tau);
    EXPECT_NEAR(tr.voltage(layout, idx, out), expected, 2e-3) << k;
  }
}

TEST(Tran, BackwardEulerAlsoConverges) {
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("V1", in, ckt::kGround,
                Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, ckt::kGround, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 5e-6;
  to.dt = 1e-8;
  to.trapezoidal = false;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok);
  MnaLayout layout(c);
  EXPECT_NEAR(tr.voltage(layout, tr.time.size() - 1, out), 1.0, 1e-2);
}

TEST(Tran, SineSteadyState) {
  // RC well below the pole: output follows the input closely.
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("V1", in, ckt::kGround, Waveform::sine(0.0, 1.0, 1e3));
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, ckt::kGround, 1e-9);  // pole at 159 kHz
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 2e-3;  // two periods
  to.dt = 1e-6;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok);
  MnaLayout layout(c);
  // Peak of the output close to 1.
  double peak = 0.0;
  for (std::size_t i = tr.time.size() / 2; i < tr.time.size(); ++i) {
    peak = std::max(peak, tr.voltage(layout, i, out));
  }
  EXPECT_NEAR(peak, 1.0, 0.02);
}

TEST(Tran, MosSourceFollowerTracksStep) {
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_vsource("VIN", in, ckt::kGround,
                Waveform::pulse(2.5, 3.5, 1e-7, 1e-8, 1e-8, 5e-6, 10e-6));
  c.add_mosfet("M1", vdd, in, out, ckt::kGround, mos::MosType::kNmos,
               um(100.0), um(5.0));
  c.add_resistor("RS", out, ckt::kGround, 20e3);
  c.add_capacitor("CLOAD", out, ckt::kGround, 1e-12);

  const OpResult op = dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);
  TranOptions to;
  to.tstop = 4e-6;
  to.dt = 5e-9;
  const TranResult tr = transient(c, t, op, to);
  ASSERT_TRUE(tr.ok) << tr.error;
  MnaLayout layout(c);
  const double v_start = tr.voltage(layout, 0, out);
  const double v_end = tr.voltage(layout, tr.time.size() - 1, out);
  // The follower gain is gm/(gm + gmb + 1/RS) < 1 (body effect plus the
  // resistive load); the step must transfer with that attenuation.
  EXPECT_GT(v_end - v_start, 0.6);
  EXPECT_LT(v_end - v_start, 1.0);
}

TEST(Tran, SlewMeasurement) {
  // A current-limited source charging a cap: slew = I/C exactly.
  Circuit c;
  const auto out = c.node("out");
  c.add_isource("I1", ckt::kGround, out, Waveform::dc(1e-6));
  c.add_capacitor("C1", out, ckt::kGround, 1e-9);
  c.add_resistor("Rbig", out, ckt::kGround, 1e12);
  OpOptions oo;
  oo.try_gmin_stepping = false;
  oo.try_source_stepping = false;
  // Start from zero state rather than the (huge) DC solution.
  OpResult op;
  op.converged = true;
  op.solution.assign(MnaLayout(c).size(), 0.0);

  TranOptions to;
  to.tstop = 1e-4;
  to.dt = 1e-6;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok);
  MnaLayout layout(c);
  const auto slew = slew_rate(tr, layout, out);
  ASSERT_TRUE(slew.has_value());
  // 1000 V/s with a small first-step startup transient allowed.
  EXPECT_NEAR(slew->rising, 1e-6 / 1e-9, 50.0);
  EXPECT_NEAR(slew->falling, 0.0, 1.0);
}

TEST(Tran, SettlingTime) {
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  const double tau = 1e-6;
  c.add_vsource("V1", in, ckt::kGround,
                Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, ckt::kGround, tau / 1e3);
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 10.0 * tau;
  to.dt = tau / 50.0;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok);
  MnaLayout layout(c);
  const auto ts = settling_time(tr, layout, out, 1.0, 0.01);
  ASSERT_TRUE(ts.has_value());
  // 1% settling of a single pole: 4.6 tau.
  EXPECT_NEAR(*ts, 4.6 * tau, 0.5 * tau);
}

TEST(Tran, RejectsBadOptions) {
  Circuit c;
  c.add_resistor("R", c.node("a"), ckt::kGround, 1e3);
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 0.0;
  to.dt = 1e-9;
  EXPECT_FALSE(transient(c, tech5(), op, to).ok);
}

// ---- fixed-step final-step handling -----------------------------------

// The RC charging fixture shared by the final-step and adaptive tests.
void build_rc(Circuit* c, double r, double cap) {
  const auto in = c->node("in");
  const auto out = c->node("out");
  c->add_vsource("V1", in, ckt::kGround,
                 Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c->add_resistor("R1", in, out, r);
  c->add_capacitor("C1", out, ckt::kGround, cap);
}

TEST(Tran, FixedStepLandsExactlyOnTstop) {
  // tstop deliberately NOT an integer multiple of dt: the final step must
  // shorten and land the last sample exactly on tstop (previously the
  // waveform ended one partial step short).
  Circuit c;
  build_rc(&c, 1e3, 1e-9);  // tau = 1 us
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  for (const double tstop : {5.05e-6, 4.999e-6, 1.1e-7}) {
    TranOptions to;
    to.tstop = tstop;
    to.dt = 3e-8;
    const TranResult tr = transient(c, tech5(), op, to);
    ASSERT_TRUE(tr.ok) << tr.error;
    // Exact landing, not merely close: measurement windows clamp to
    // tstop, so the sample must exist at that very coordinate.
    EXPECT_EQ(tr.time.back(), tstop) << tstop;
    // Every step but the last is the configured dt; the last only
    // shrinks, never stretches.
    for (std::size_t i = 1; i + 1 < tr.time.size(); ++i) {
      EXPECT_NEAR(tr.time[i] - tr.time[i - 1], to.dt, 1e-18);
    }
    EXPECT_LE(tr.time.back() - tr.time[tr.time.size() - 2],
              to.dt + 1e-18);
  }
}

TEST(Tran, FixedStepFinalStepPinsSettlingMetric) {
  // Settling detection reads the tail of the waveform; with the final
  // sample exactly on tstop the measured settling time is stable against
  // awkward tstop/dt ratios.
  Circuit c;
  const double tau = 1e-6;
  build_rc(&c, 1e3, tau / 1e3);
  const OpResult op = dc_operating_point(c, tech5());
  MnaLayout layout(c);
  const auto out = c.node("out");
  for (const double tstop : {10.0 * tau, 10.37 * tau}) {
    TranOptions to;
    to.tstop = tstop;
    to.dt = tau / 50.0;
    const TranResult tr = transient(c, tech5(), op, to);
    ASSERT_TRUE(tr.ok);
    const auto ts = settling_time(tr, layout, out, 1.0, 0.01);
    ASSERT_TRUE(ts.has_value());
    EXPECT_NEAR(*ts, 4.6 * tau, 0.5 * tau) << tstop;
  }
}

// ---- adaptive stepping -------------------------------------------------

TranOptions adaptive_options(double tstop, double dt) {
  TranOptions to;
  to.tstop = tstop;
  to.dt = dt;
  to.mode = TranMode::kAdaptive;
  return to;
}

TEST(Tran, AdaptiveMatchesFixedOnRcCharging) {
  Circuit c;
  const double tau = 1e-6;
  build_rc(&c, 1e3, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  const TranResult tr =
      transient(c, tech5(), op, adaptive_options(5.0 * tau, tau / 100.0));
  ASSERT_TRUE(tr.ok) << tr.error;
  MnaLayout layout(c);
  const auto out = c.node("out");
  // Dense output against the analytic curve at arbitrary (non-sample)
  // coordinates: the default tolerances keep the local error near 1e-3,
  // so a 5e-3 envelope has margin without masking a broken controller.
  for (const double frac : {0.3, 0.9, 1.7, 2.6, 4.2}) {
    const double t = frac * tau;
    const double expected = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(tr.voltage_at(layout, out, t), expected, 5e-3) << frac;
  }
  EXPECT_EQ(tr.time.back(), 5.0 * tau);
}

TEST(Tran, AdaptiveTakesFarFewerSteps) {
  // The acceptance bar from the issue: >= 5x fewer transient steps than
  // the fixed reference on a smooth settling waveform, at equal quality
  // (quality is pinned by AdaptiveMatchesFixedOnRcCharging above).
  Circuit c;
  const double tau = 1e-6;
  build_rc(&c, 1e3, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  // A 20-tau window models a real settling measurement: the interesting
  // dynamics occupy the first few tau and the rest is flat tail, which
  // is exactly where fixed stepping burns its samples.
  TranOptions fixed;
  fixed.tstop = 20.0 * tau;
  fixed.dt = tau / 100.0;
  const TranResult ref = transient(c, tech5(), op, fixed);
  const TranResult adap =
      transient(c, tech5(), op, adaptive_options(20.0 * tau, tau / 100.0));
  ASSERT_TRUE(ref.ok);
  ASSERT_TRUE(adap.ok);
  EXPECT_GE(ref.time.size(), 5 * adap.time.size())
      << "fixed " << ref.time.size() << " samples vs adaptive "
      << adap.time.size();
}

TEST(Tran, AdaptiveIsBitwiseRepeatable) {
  Circuit c;
  build_rc(&c, 1e3, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  const TranOptions to = adaptive_options(5e-6, 1e-8);
  const TranResult a = transient(c, tech5(), op, to);
  const TranResult b = transient(c, tech5(), op, to);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  // The controller is serial and deterministic: two runs of the same
  // problem agree to the last bit, not merely to tolerance.
  ASSERT_EQ(a.time.size(), b.time.size());
  for (std::size_t i = 0; i < a.time.size(); ++i) {
    EXPECT_EQ(a.time[i], b.time[i]) << i;
  }
  ASSERT_EQ(a.states.size(), b.states.size());
  for (std::size_t i = 0; i < a.states.size(); ++i) {
    EXPECT_EQ(a.states[i], b.states[i]) << i;
  }
}

TEST(Tran, AdaptiveLandsExactlyOnTstop) {
  Circuit c;
  build_rc(&c, 1e3, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  for (const double tstop : {5e-6, 5.137e-6}) {
    const TranResult tr =
        transient(c, tech5(), op, adaptive_options(tstop, 1e-8));
    ASSERT_TRUE(tr.ok) << tr.error;
    EXPECT_EQ(tr.time.back(), tstop);
  }
}

TEST(Tran, AdaptiveRejectsAndRecoversOnSharpEdge) {
  // Stiff fixture: a long flat stretch (the controller grows the step to
  // dt_max) ending in a near-instant edge.  Hitting the edge with a huge
  // step must *reject* — shrink, retry, converge — and the deterministic
  // counters must show it happened.
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  const double tau = 1e-6;
  c.add_vsource("V1", in, ckt::kGround,
                Waveform::pulse(0.0, 1.0, 50.0 * tau, 1e-9, 1e-9,
                                100.0 * tau, 200.0 * tau));
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, ckt::kGround, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);

  const obs::MetricsSnapshot before = obs::Registry::global().snapshot();
  const TranResult tr =
      transient(c, tech5(), op, adaptive_options(100.0 * tau, tau / 10.0));
  ASSERT_TRUE(tr.ok) << tr.error;
  const obs::MetricsSnapshot after = obs::Registry::global().snapshot();

  auto counter = [](const obs::MetricsSnapshot& s, const char* name) {
    const obs::MetricEntry* e = s.find(name);
    return e != nullptr ? e->counter : 0u;
  };
  EXPECT_GT(counter(after, "tran.adaptive.rejects"),
            counter(before, "tran.adaptive.rejects"))
      << "the sharp edge never forced a step rejection";
  EXPECT_GT(counter(after, "tran.adaptive.steps"),
            counter(before, "tran.adaptive.steps"));
  const obs::MetricEntry* min_dt = after.find("tran.adaptive.min_dt");
  ASSERT_NE(min_dt, nullptr);
  EXPECT_GT(min_dt->gauge, 0.0);
  EXPECT_TRUE(min_dt->deterministic);

  // The edge must be resolved, not stepped over: the output transitions
  // to ~1 V after the edge and the curve around the edge is sampled
  // finely (some step well below the flat-region dt_max).
  MnaLayout layout(c);
  EXPECT_NEAR(tr.voltage_at(layout, out, 60.0 * tau), 1.0, 5e-3);
  EXPECT_NEAR(tr.voltage_at(layout, out, 45.0 * tau), 0.0, 5e-3);
  double min_step = 1e9;
  for (std::size_t i = 1; i < tr.time.size(); ++i) {
    min_step = std::min(min_step, tr.time[i] - tr.time[i - 1]);
  }
  EXPECT_LT(min_step, tau / 10.0);
}

TEST(Tran, AdaptiveHonorsExplicitTolerances) {
  // A looser rtol must not take *more* steps than a tighter one.
  Circuit c;
  build_rc(&c, 1e3, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions loose = adaptive_options(5e-6, 1e-8);
  loose.rtol = 1e-2;
  loose.atol = 1e-5;
  TranOptions tight = adaptive_options(5e-6, 1e-8);
  tight.rtol = 1e-5;
  tight.atol = 1e-8;
  const TranResult lr = transient(c, tech5(), op, loose);
  const TranResult tr = transient(c, tech5(), op, tight);
  ASSERT_TRUE(lr.ok);
  ASSERT_TRUE(tr.ok);
  EXPECT_LE(lr.time.size(), tr.time.size());
  EXPECT_GT(tr.time.size(), 2u);
}

TEST(Tran, DenseOutputInterpolatesBetweenSamples) {
  Circuit c;
  build_rc(&c, 1e3, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 5e-6;
  to.dt = 1e-7;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok);
  MnaLayout layout(c);
  const auto out = c.node("out");
  // At a sample coordinate voltage_at equals the sample; between samples
  // it lies between the bracketing values.
  EXPECT_EQ(tr.voltage_at(layout, out, tr.time[10]),
            tr.voltage(layout, 10, out));
  const double mid = 0.5 * (tr.time[10] + tr.time[11]);
  const double v = tr.voltage_at(layout, out, mid);
  const double lo = std::min(tr.voltage(layout, 10, out),
                             tr.voltage(layout, 11, out));
  const double hi = std::max(tr.voltage(layout, 10, out),
                             tr.voltage(layout, 11, out));
  EXPECT_GE(v, lo);
  EXPECT_LE(v, hi);
}

TEST(Tran, TranModeParsingAndResolution) {
  TranMode m = TranMode::kDefault;
  EXPECT_TRUE(parse_tran_mode("fixed", &m));
  EXPECT_EQ(m, TranMode::kFixed);
  EXPECT_TRUE(parse_tran_mode("adaptive", &m));
  EXPECT_EQ(m, TranMode::kAdaptive);
  EXPECT_FALSE(parse_tran_mode("banana", &m));
  EXPECT_STREQ(to_string(TranMode::kAdaptive), "adaptive");

  // Explicit selection resolves as itself; kDefault resolves to the
  // process default; restoring the default brings back fixed (the
  // permanent reference mode).
  const TranMode saved = tran_mode_default();
  set_tran_mode_default(TranMode::kAdaptive);
  EXPECT_EQ(resolve_tran_mode(TranMode::kDefault), TranMode::kAdaptive);
  EXPECT_EQ(resolve_tran_mode(TranMode::kFixed), TranMode::kFixed);
  set_tran_mode_default(TranMode::kDefault);
  EXPECT_EQ(resolve_tran_mode(TranMode::kDefault), TranMode::kFixed);
  set_tran_mode_default(saved);

  // Tolerance defaults: settable, and a non-positive component restores
  // that component's initial value.
  const TranTolerance initial = tran_tolerance_default();
  set_tran_tolerance_default(1e-4, 1e-7);
  EXPECT_DOUBLE_EQ(tran_tolerance_default().rtol, 1e-4);
  EXPECT_DOUBLE_EQ(tran_tolerance_default().atol, 1e-7);
  set_tran_tolerance_default(0.0, 0.0);
  EXPECT_DOUBLE_EQ(tran_tolerance_default().rtol, initial.rtol);
  EXPECT_DOUBLE_EQ(tran_tolerance_default().atol, initial.atol);
}

TEST(Tran, AdaptiveRespectsProcessDefaultMode) {
  // opts.mode == kDefault defers to the process default, which is how
  // the CLI's --tran-mode reaches every measurement in the process.
  Circuit c;
  build_rc(&c, 1e3, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 5e-6;
  to.dt = 1e-8;  // 500 fixed steps

  const TranMode saved = tran_mode_default();
  set_tran_mode_default(TranMode::kAdaptive);
  const TranResult adap = transient(c, tech5(), op, to);
  set_tran_mode_default(TranMode::kFixed);
  const TranResult fixed = transient(c, tech5(), op, to);
  set_tran_mode_default(saved);

  ASSERT_TRUE(adap.ok);
  ASSERT_TRUE(fixed.ok);
  EXPECT_LT(adap.time.size(), fixed.time.size());
}

}  // namespace
}  // namespace oasys::sim
