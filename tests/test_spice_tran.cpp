#include <gtest/gtest.h>

#include <cmath>

#include "spice/measure.h"
#include "spice/tran.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::sim {
namespace {

using ckt::Circuit;
using ckt::Waveform;
using tech::Technology;
using util::um;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

TEST(Tran, RcChargingCurve) {
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  const double r = 1e3;
  const double cap = 1e-9;
  const double tau = r * cap;
  c.add_vsource("V1", in, ckt::kGround,
                Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.add_resistor("R1", in, out, r);
  c.add_capacitor("C1", out, ckt::kGround, cap);

  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  TranOptions to;
  to.tstop = 5.0 * tau;
  to.dt = tau / 100.0;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok) << tr.error;
  MnaLayout layout(c);
  // v(t) = 1 - exp(-t/tau): check at 1, 2, 3 tau.
  for (int k = 1; k <= 3; ++k) {
    const double t_check = k * tau;
    std::size_t idx = 0;
    for (std::size_t i = 0; i < tr.time.size(); ++i) {
      if (std::abs(tr.time[i] - t_check) <
          std::abs(tr.time[idx] - t_check)) {
        idx = i;
      }
    }
    const double expected = 1.0 - std::exp(-tr.time[idx] / tau);
    EXPECT_NEAR(tr.voltage(layout, idx, out), expected, 2e-3) << k;
  }
}

TEST(Tran, BackwardEulerAlsoConverges) {
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("V1", in, ckt::kGround,
                Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, ckt::kGround, 1e-9);
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 5e-6;
  to.dt = 1e-8;
  to.trapezoidal = false;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok);
  MnaLayout layout(c);
  EXPECT_NEAR(tr.voltage(layout, tr.time.size() - 1, out), 1.0, 1e-2);
}

TEST(Tran, SineSteadyState) {
  // RC well below the pole: output follows the input closely.
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("V1", in, ckt::kGround, Waveform::sine(0.0, 1.0, 1e3));
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, ckt::kGround, 1e-9);  // pole at 159 kHz
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 2e-3;  // two periods
  to.dt = 1e-6;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok);
  MnaLayout layout(c);
  // Peak of the output close to 1.
  double peak = 0.0;
  for (std::size_t i = tr.time.size() / 2; i < tr.time.size(); ++i) {
    peak = std::max(peak, tr.voltage(layout, i, out));
  }
  EXPECT_NEAR(peak, 1.0, 0.02);
}

TEST(Tran, MosSourceFollowerTracksStep) {
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_vsource("VIN", in, ckt::kGround,
                Waveform::pulse(2.5, 3.5, 1e-7, 1e-8, 1e-8, 5e-6, 10e-6));
  c.add_mosfet("M1", vdd, in, out, ckt::kGround, mos::MosType::kNmos,
               um(100.0), um(5.0));
  c.add_resistor("RS", out, ckt::kGround, 20e3);
  c.add_capacitor("CLOAD", out, ckt::kGround, 1e-12);

  const OpResult op = dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);
  TranOptions to;
  to.tstop = 4e-6;
  to.dt = 5e-9;
  const TranResult tr = transient(c, t, op, to);
  ASSERT_TRUE(tr.ok) << tr.error;
  MnaLayout layout(c);
  const double v_start = tr.voltage(layout, 0, out);
  const double v_end = tr.voltage(layout, tr.time.size() - 1, out);
  // The follower gain is gm/(gm + gmb + 1/RS) < 1 (body effect plus the
  // resistive load); the step must transfer with that attenuation.
  EXPECT_GT(v_end - v_start, 0.6);
  EXPECT_LT(v_end - v_start, 1.0);
}

TEST(Tran, SlewMeasurement) {
  // A current-limited source charging a cap: slew = I/C exactly.
  Circuit c;
  const auto out = c.node("out");
  c.add_isource("I1", ckt::kGround, out, Waveform::dc(1e-6));
  c.add_capacitor("C1", out, ckt::kGround, 1e-9);
  c.add_resistor("Rbig", out, ckt::kGround, 1e12);
  OpOptions oo;
  oo.try_gmin_stepping = false;
  oo.try_source_stepping = false;
  // Start from zero state rather than the (huge) DC solution.
  OpResult op;
  op.converged = true;
  op.solution.assign(MnaLayout(c).size(), 0.0);

  TranOptions to;
  to.tstop = 1e-4;
  to.dt = 1e-6;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok);
  MnaLayout layout(c);
  const auto slew = slew_rate(tr, layout, out);
  ASSERT_TRUE(slew.has_value());
  // 1000 V/s with a small first-step startup transient allowed.
  EXPECT_NEAR(slew->rising, 1e-6 / 1e-9, 50.0);
  EXPECT_NEAR(slew->falling, 0.0, 1.0);
}

TEST(Tran, SettlingTime) {
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  const double tau = 1e-6;
  c.add_vsource("V1", in, ckt::kGround,
                Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.add_resistor("R1", in, out, 1e3);
  c.add_capacitor("C1", out, ckt::kGround, tau / 1e3);
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 10.0 * tau;
  to.dt = tau / 50.0;
  const TranResult tr = transient(c, tech5(), op, to);
  ASSERT_TRUE(tr.ok);
  MnaLayout layout(c);
  const auto ts = settling_time(tr, layout, out, 1.0, 0.01);
  ASSERT_TRUE(ts.has_value());
  // 1% settling of a single pole: 4.6 tau.
  EXPECT_NEAR(*ts, 4.6 * tau, 0.5 * tau);
}

TEST(Tran, RejectsBadOptions) {
  Circuit c;
  c.add_resistor("R", c.node("a"), ckt::kGround, 1e3);
  const OpResult op = dc_operating_point(c, tech5());
  TranOptions to;
  to.tstop = 0.0;
  to.dt = 1e-9;
  EXPECT_FALSE(transient(c, tech5(), op, to).ok);
}

}  // namespace
}  // namespace oasys::sim
