// Comparator synthesis: the framework's reuse story (paper Sec. 5 future
// work, "more sub-block types (e.g., comparators)").  Same sub-block
// designers, a delay/resolution-oriented plan, transient verification.
#include <gtest/gtest.h>

#include "synth/comparator.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::synth {
namespace {

using tech::Technology;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

ComparatorSpec nominal_spec() {
  ComparatorSpec cs;
  cs.name = "nominal";
  cs.resolution = util::mv(10.0);
  cs.tprop_max = util::us(2.0);
  cs.cload = util::pf(2.0);
  cs.out_high = 1.5;
  cs.out_low = -0.5;
  cs.icmr_lo = -1.0;
  cs.icmr_hi = 0.5;
  return cs;
}

TEST(ComparatorSpecTest, Validation) {
  ComparatorSpec cs = nominal_spec();
  EXPECT_FALSE(cs.validate().has_errors());
  cs.resolution = 0.0;
  EXPECT_TRUE(cs.validate().has_errors());
  cs = nominal_spec();
  cs.out_high = cs.out_low;
  EXPECT_TRUE(cs.validate().has_errors());
  cs = nominal_spec();
  cs.tprop_max = -1.0;
  EXPECT_TRUE(cs.validate().has_errors());
}

TEST(ComparatorDesignTest, NominalSpecFeasible) {
  const ComparatorDesign d = design_comparator(tech5(), nominal_spec());
  ASSERT_TRUE(d.feasible) << d.amp.trace.to_string();
  // Gain must turn the resolution into the logic swing.
  const double needed =
      util::db20((d.spec.out_high - d.spec.out_low) / d.spec.resolution);
  EXPECT_GE(d.gain_db, needed);
  // Predicted delay within the budget, offset within half the resolution.
  EXPECT_LE(d.delay, d.spec.tprop_max);
  EXPECT_LE(d.offset, 0.5 * d.spec.resolution);
  EXPECT_GT(d.power, 0.0);
  EXPECT_FALSE(d.amp.devices.empty());
}

TEST(ComparatorDesignTest, NoCompensationCapacitor) {
  // The comparator is used open loop: its plan must never spend area on a
  // Miller capacitor (the key translation difference vs the op amp).
  const ComparatorDesign d = design_comparator(tech5(), nominal_spec());
  ASSERT_TRUE(d.feasible);
  EXPECT_DOUBLE_EQ(d.amp.cc, 0.0);
}

TEST(ComparatorDesignTest, FineResolutionCascodes) {
  ComparatorSpec cs = nominal_spec();
  cs.resolution = util::mv(2.0);
  cs.out_low = -0.5;  // leave the cascode enough output floor
  const ComparatorDesign d = design_comparator(tech5(), cs);
  ASSERT_TRUE(d.feasible) << d.amp.trace.to_string();
  EXPECT_TRUE(d.amp.stage1_cascode);
  // Cascode load equalizes mirror Vds: systematic offset goes away.
  EXPECT_LE(d.offset, util::mv(0.5));
}

TEST(ComparatorDesignTest, ImpossibleOutputLowFails) {
  ComparatorSpec cs = nominal_spec();
  cs.out_low = -4.5;  // below the pair's saturation floor
  const ComparatorDesign d = design_comparator(tech5(), cs);
  EXPECT_FALSE(d.feasible);
}

TEST(ComparatorDesignTest, PowerBudgetTrimsThenFails) {
  ComparatorSpec cs = nominal_spec();
  cs.power_max = util::mw(0.9);
  const ComparatorDesign ok = design_comparator(tech5(), cs);
  EXPECT_TRUE(ok.feasible);
  cs.power_max = 1e-6;  // 1 uW: impossible
  const ComparatorDesign bad = design_comparator(tech5(), cs);
  EXPECT_FALSE(bad.feasible);
}

TEST(ComparatorMeasureTest, TransientDelaysWithinBand) {
  const ComparatorDesign d = design_comparator(tech5(), nominal_spec());
  ASSERT_TRUE(d.feasible);
  const MeasuredComparator m = measure_comparator(d, tech5());
  ASSERT_TRUE(m.ok) << m.error;
  // Rising delay against the plan's budget; the falling edge additionally
  // pays overdrive recovery (a real large-signal effect the first-order
  // plan does not model), so it gets a 2x band.
  EXPECT_LE(m.delay_rising, d.spec.tprop_max);
  EXPECT_LE(m.delay_falling, 2.0 * d.spec.tprop_max);
  // Logic levels reached.
  EXPECT_GE(m.out_high, d.spec.out_high);
  EXPECT_LE(m.out_low, d.spec.out_low);
  // Measured systematic offset stays inside the resolution.
  EXPECT_LT(m.offset, d.spec.resolution);
}

TEST(ComparatorMeasureTest, InfeasibleDesignRejected) {
  ComparatorDesign d;
  d.feasible = false;
  const MeasuredComparator m = measure_comparator(d, tech5());
  EXPECT_FALSE(m.ok);
}

// Property sweep: the designer holds its invariants across a spec grid.
class ComparatorSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ComparatorSweep, DesignsMeetFirstOrderInvariants) {
  const auto [res_mv, tprop_us, cl_pf] = GetParam();
  ComparatorSpec cs = nominal_spec();
  cs.resolution = util::mv(res_mv);
  cs.tprop_max = util::us(tprop_us);
  cs.cload = util::pf(cl_pf);
  const ComparatorDesign d = design_comparator(tech5(), cs);
  if (!d.feasible) {
    // Must have a recorded reason.
    EXPECT_TRUE(d.amp.log.has_errors());
    return;
  }
  EXPECT_LE(d.delay, cs.tprop_max);
  EXPECT_LE(d.offset, 0.5 * cs.resolution);
  for (const auto& dev : d.amp.devices) {
    EXPECT_GE(dev.w, tech5().wmin * 0.999) << dev.role;
    EXPECT_GE(dev.l, tech5().lmin * 0.999) << dev.role;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ComparatorSweep,
    ::testing::Combine(::testing::Values(5.0, 10.0, 25.0),   // resolution mV
                       ::testing::Values(1.0, 2.0, 5.0),     // tprop us
                       ::testing::Values(1.0, 2.0, 5.0)));   // CL pF

}  // namespace
}  // namespace oasys::synth
