// Equivalence and derivative suite for the batched (SoA) MOS path.
//
// The batch kernel's contract is bit-for-bit identity with the scalar
// Level-1 reference (mos::evaluate_core), so every comparison here is
// EXPECT_EQ on doubles — no tolerances.  The suite covers the kernel
// itself over dense bias grids and exact region boundaries, the device
// table build (constants, mismatch, geometry validation), the full MNA
// eval (Jacobian, residual, DeviceOp capture), the misuse guards, and the
// sim.device_eval.* counters.  The finite-difference tests at the bottom
// pin the *scalar* derivatives to the model's own current — the batch
// path inherits them through bitwise identity.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "mos/level1.h"
#include "mos/level1_batch.h"
#include "netlist/circuit.h"
#include "obs/metrics.h"
#include "spice/dc.h"
#include "spice/mna.h"
#include "spice/sim_options.h"
#include "spice/workspace.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::mos {
namespace {

using tech::MosParams;
using tech::Technology;
using util::um;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

// Loads every grid point as one slot of a batch (same device constants in
// each slot), evaluates, and checks each slot against the scalar core.
void expect_batch_matches_scalar(const MosParams& p, const Geometry& g,
                                 double dvt,
                                 const std::vector<CoreBias>& biases) {
  CoreEvalBatch b;
  b.resize(biases.size());
  for (std::size_t i = 0; i < biases.size(); ++i) {
    b.load_device(i, p, g, dvt);
    b.vgs[i] = biases[i].vgs;
    b.vds[i] = biases[i].vds;
    b.vbs[i] = biases[i].vbs;
  }
  evaluate_core_batch(&b);

  MosParams eff = p;
  eff.vt0 += dvt;  // the scalar path's mismatch application
  for (std::size_t i = 0; i < biases.size(); ++i) {
    const CoreEval e = evaluate_core(eff, g, biases[i]);
    EXPECT_EQ(b.region_at(i), e.region) << "slot " << i;
    EXPECT_EQ(b.id[i], e.id) << "slot " << i;
    EXPECT_EQ(b.gm[i], e.gm) << "slot " << i;
    EXPECT_EQ(b.gds[i], e.gds) << "slot " << i;
    EXPECT_EQ(b.gmb[i], e.gmb) << "slot " << i;
    EXPECT_EQ(b.vth[i], e.vth) << "slot " << i;
    EXPECT_EQ(b.vov[i], e.vov) << "slot " << i;
    EXPECT_EQ(b.vdsat[i], e.vdsat) << "slot " << i;
  }
}

std::vector<CoreBias> dense_bias_grid() {
  std::vector<CoreBias> biases;
  for (double vgs = -1.0; vgs <= 6.0; vgs += 0.25) {
    for (double vds = 0.0; vds <= 5.0; vds += 0.25) {
      for (double vbs = -3.0; vbs <= 0.0; vbs += 0.5) {
        biases.push_back({vgs, vds, vbs});
      }
    }
  }
  return biases;
}

TEST(BatchCore, MatchesScalarOnDenseGridNmos) {
  expect_batch_matches_scalar(tech5().nmos, {um(50.0), um(5.0), 1}, 0.0,
                              dense_bias_grid());
}

TEST(BatchCore, MatchesScalarOnDenseGridPmosParams) {
  // The core is frame-agnostic; PMOS parameters exercise different
  // kp/gamma/lambda magnitudes through the same expressions.
  expect_batch_matches_scalar(tech5().pmos, {um(30.0), um(5.0), 1}, 0.0,
                              dense_bias_grid());
}

TEST(BatchCore, MatchesScalarWithMultiplicityAndMismatch) {
  expect_batch_matches_scalar(tech5().nmos, {um(20.0), um(10.0), 4}, 0.0,
                              dense_bias_grid());
  expect_batch_matches_scalar(tech5().nmos, {um(50.0), um(5.0), 1}, 7.5e-3,
                              dense_bias_grid());
}

TEST(BatchCore, MatchesScalarAtExactRegionBoundaries) {
  const MosParams& p = tech5().nmos;
  const Geometry g{um(50.0), um(5.0), 1};
  // vsb = 0 leaves vth == vt0 exactly, so these biases sit *on* the
  // region predicates, where a reordered comparison would flip a branch.
  const std::vector<CoreBias> biases = {
      {p.vt0 + 0.5, 0.5, 0.0},    // vds == vov: triode/saturation edge
      {p.vt0, 1.0, 0.0},          // vov == 0: cutoff edge
      {p.vt0 + 1e-15, 1.0, 0.0},  // one ulp-ish above threshold
      {p.vt0 + 0.5, 0.0, 0.0},    // vds == 0 in triode
      {p.vt0 + 0.5, 1.0, p.phi - 0.01},   // phi + vsb == kMinArg exactly
      {p.vt0 + 0.5, 1.0, p.phi - 0.005},  // clamped body-bias branch
      {p.vt0 + 0.5, 1.0, p.phi},          // arg clamps at zero vsb margin
  };
  expect_batch_matches_scalar(p, g, 0.0, biases);
}

TEST(BatchCore, MatchesScalarWhenBetaIsZero) {
  MosParams p = tech5().nmos;
  p.kp = 0.0;  // beta <= 0 forces cutoff regardless of bias
  expect_batch_matches_scalar(
      p, {um(50.0), um(5.0), 1}, 0.0,
      {{p.vt0 + 1.0, 2.0, 0.0}, {p.vt0 + 0.5, 0.1, -1.0}});
}

TEST(BatchCore, LoadDevicePrecomputesEffectiveParams) {
  const MosParams& p = tech5().nmos;
  const Geometry g{um(40.0), um(8.0), 3};
  CoreEvalBatch b;
  b.resize(2);
  b.load_device(0, p, g, 0.0);
  b.load_device(1, p, g, 0.01);
  EXPECT_EQ(b.w[0], g.w);
  EXPECT_EQ(b.l[0], g.l);
  EXPECT_EQ(b.m[0], 3.0);
  EXPECT_EQ(b.kp[0], p.kp);
  EXPECT_EQ(b.gamma[0], p.gamma);
  EXPECT_EQ(b.phi[0], p.phi);
  EXPECT_EQ(b.vt0[0], p.vt0);
  EXPECT_EQ(b.vt0[1], p.vt0 + 0.01);
  EXPECT_EQ(b.sqrt_phi[0], std::sqrt(p.phi));
  EXPECT_EQ(b.lambda[0], p.lambda_at(g.l));
}

TEST(BatchCore, ResizeSetsEverySlotCount) {
  CoreEvalBatch b;
  b.resize(8);
  EXPECT_EQ(b.size(), 8u);
  b.resize(3);  // shrinking the logical size keeps the arrays consistent
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.region.size(), 3u);
  EXPECT_EQ(b.id.size(), 3u);
  EXPECT_FALSE(b.empty());
}

// ---- Geometry validation (satellite: no more silent 0.0 W/L) ------------

TEST(GeometryValidation, WlRatioThrowsOnInvalidGeometry) {
  EXPECT_THROW((Geometry{0.0, um(5.0), 1}.wl_ratio()), std::invalid_argument);
  EXPECT_THROW((Geometry{um(50.0), 0.0, 1}.wl_ratio()),
               std::invalid_argument);
  EXPECT_THROW((Geometry{um(50.0), -um(5.0), 1}.wl_ratio()),
               std::invalid_argument);
  EXPECT_THROW((Geometry{um(50.0), um(5.0), 0}.wl_ratio()),
               std::invalid_argument);
  const double nan = std::nan("");
  EXPECT_THROW((Geometry{nan, um(5.0), 1}.wl_ratio()), std::invalid_argument);
  EXPECT_EQ((Geometry{um(50.0), um(5.0), 2}.wl_ratio()), (50.0 / 5.0) * 2.0);
}

TEST(GeometryValidation, LoadDeviceRejectsInvalidGeometry) {
  CoreEvalBatch b;
  b.resize(1);
  EXPECT_THROW(b.load_device(0, tech5().nmos, {0.0, um(5.0), 1}),
               std::invalid_argument);
  EXPECT_THROW(b.load_device(0, tech5().nmos, {um(50.0), um(5.0), -2}),
               std::invalid_argument);
}

TEST(GeometryValidation, ValidateGeometryMessageNamesField) {
  try {
    validate_geometry({um(50.0), 0.0, 1});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("l must be"), std::string::npos);
  }
}

// ---- Finite-difference derivative consistency (scalar reference) --------

// Central difference of the model current along one bias axis.
double fd_id(const MosParams& p, const Geometry& g, CoreBias bias,
             double CoreBias::* axis, double h) {
  CoreBias lo = bias, hi = bias;
  lo.*axis -= h;
  hi.*axis += h;
  return (evaluate_core(p, g, hi).id - evaluate_core(p, g, lo).id) /
         (2.0 * h);
}

void expect_derivatives_match_fd(const CoreBias& bias, double rel_tol) {
  const MosParams& p = tech5().nmos;
  const Geometry g{um(50.0), um(5.0), 1};
  const double h = 1e-7;
  const CoreEval e = evaluate_core(p, g, bias);
  const double gm_fd = fd_id(p, g, bias, &CoreBias::vgs, h);
  const double gds_fd = fd_id(p, g, bias, &CoreBias::vds, h);
  const double gmb_fd = fd_id(p, g, bias, &CoreBias::vbs, h);
  EXPECT_NEAR(e.gm, gm_fd, rel_tol * std::abs(gm_fd) + 1e-12);
  EXPECT_NEAR(e.gds, gds_fd, rel_tol * std::abs(gds_fd) + 1e-12);
  EXPECT_NEAR(e.gmb, gmb_fd, rel_tol * std::abs(gmb_fd) + 1e-12);
}

TEST(ScalarDerivatives, MatchFiniteDifferenceInSaturationInterior) {
  const MosParams& p = tech5().nmos;
  expect_derivatives_match_fd({p.vt0 + 0.5, 2.0, -1.0}, 1e-5);
}

TEST(ScalarDerivatives, MatchFiniteDifferenceInTriodeInterior) {
  const MosParams& p = tech5().nmos;
  expect_derivatives_match_fd({p.vt0 + 0.8, 0.2, -0.5}, 1e-5);
}

TEST(ScalarDerivatives, ContinuousAtSaturationTriodeBoundary) {
  // At vds == vdsat the region flips, but keeping the CLM factor in triode
  // makes id, gm, and gds all continuous — so the central difference
  // (which straddles the boundary) still matches the analytic values, just
  // with the one-sided curvature jump in the error term.
  const MosParams& p = tech5().nmos;
  const Geometry g{um(50.0), um(5.0), 1};
  const CoreBias bias{p.vt0 + 0.5, 0.5, 0.0};  // vds exactly vdsat
  const CoreEval e = evaluate_core(p, g, bias);
  ASSERT_EQ(e.vdsat, bias.vds);
  ASSERT_EQ(e.region, Region::kSaturation);  // boundary belongs to sat
  expect_derivatives_match_fd(bias, 1e-3);
}

TEST(ScalarDerivatives, GmVanishesAtThresholdBoundary) {
  // At vgs == vth the device is cutoff with id = gm = 0; the square law
  // approaching from above gives dId/dVgs -> 0, so the FD slope must go
  // to zero with h — the derivative is consistent, not clamped.
  const MosParams& p = tech5().nmos;
  const Geometry g{um(50.0), um(5.0), 1};
  const CoreBias bias{p.vt0, 1.0, 0.0};
  const CoreEval e = evaluate_core(p, g, bias);
  ASSERT_EQ(e.region, Region::kCutoff);
  ASSERT_EQ(e.vov, 0.0);
  const double h = 1e-7;
  const double beta = p.kp * g.wl_ratio();
  const double gm_fd = fd_id(p, g, bias, &CoreBias::vgs, h);
  EXPECT_NEAR(gm_fd, 0.0, beta * h);  // O(h) from the one-sided quadratic
  EXPECT_EQ(e.gm, 0.0);
}

}  // namespace
}  // namespace oasys::mos

namespace oasys::sim {
namespace {

using ckt::Circuit;
using ckt::Waveform;
using util::um;

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

// NMOS + PMOS + a floating body connection: exercises the sign flip, the
// D/S swap, and ground (-1) node indices through both eval paths.
Circuit two_stage_circuit() {
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto mid = c.node("mid");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(tech5().vdd));
  c.add_vsource("VIN", in, ckt::kGround, Waveform::ac(1.2, 1.0));
  c.add_mosfet("M1", mid, in, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(50.0), um(5.0));
  c.add_resistor("R1", vdd, mid, 50e3);
  c.add_mosfet("M2", out, mid, vdd, vdd, mos::MosType::kPmos, um(100.0),
               um(5.0), 2);
  c.add_resistor("R2", out, ckt::kGround, 100e3);
  c.add_capacitor("CL", out, ckt::kGround, 10e-12);
  return c;
}

void expect_same_eval(const NonlinearSystem& sys,
                      const std::vector<double>& x, DeviceTable* table) {
  const std::size_t n = sys.layout().size();
  NonlinearSystem::EvalOptions scalar_opts;
  scalar_opts.device_eval = DeviceEval::kScalar;
  NonlinearSystem::EvalOptions batch_opts;
  batch_opts.device_eval = DeviceEval::kBatch;

  num::RealMatrix js(n, n), jb(n, n);
  std::vector<double> fs(n), fb(n);
  std::vector<DeviceOp> ops_s, ops_b;
  sys.eval(x, scalar_opts, &js, &fs, &ops_s);
  sys.eval(x, batch_opts, &jb, &fb, &ops_b, table);

  EXPECT_EQ(fs, fb);
  const double* ds = js.data();
  const double* db = jb.data();
  for (std::size_t k = 0; k < n * n; ++k) {
    EXPECT_EQ(ds[k], db[k]) << "jacobian entry " << k;
  }
  ASSERT_EQ(ops_s.size(), ops_b.size());
  for (std::size_t i = 0; i < ops_s.size(); ++i) {
    const DeviceOp& a = ops_s[i];
    const DeviceOp& b = ops_b[i];
    EXPECT_EQ(a.region, b.region) << "device " << i;
    EXPECT_EQ(a.vgs, b.vgs);
    EXPECT_EQ(a.vds, b.vds);
    EXPECT_EQ(a.vbs, b.vbs);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.vth, b.vth);
    EXPECT_EQ(a.vov, b.vov);
    EXPECT_EQ(a.vdsat, b.vdsat);
    EXPECT_EQ(a.gm, b.gm);
    EXPECT_EQ(a.gds, b.gds);
    EXPECT_EQ(a.gmb, b.gmb);
    EXPECT_EQ(a.id_ds, b.id_ds);
    EXPECT_EQ(a.di_dvg, b.di_dvg);
    EXPECT_EQ(a.di_dvd, b.di_dvd);
    EXPECT_EQ(a.di_dvs, b.di_dvs);
    EXPECT_EQ(a.di_dvb, b.di_dvb);
    EXPECT_EQ(a.cgs, b.cgs);
    EXPECT_EQ(a.cgd, b.cgd);
    EXPECT_EQ(a.cgb, b.cgb);
    EXPECT_EQ(a.cdb, b.cdb);
    EXPECT_EQ(a.csb, b.csb);
  }
}

TEST(BatchMna, EvalMatchesScalarBitwise) {
  const Circuit c = two_stage_circuit();
  NonlinearSystem sys(c, tech5());
  DeviceTable table;
  sys.build_device_table(&table);
  ASSERT_EQ(table.size(), 2u);

  // At the converged operating point...
  OpOptions scalar_only;
  scalar_only.device_eval = DeviceEval::kScalar;
  const OpResult op = dc_operating_point(c, tech5(), scalar_only);
  ASSERT_TRUE(op.converged);
  expect_same_eval(sys, op.solution, &table);

  // ...at a flat start (vds == 0 everywhere)...
  expect_same_eval(sys, std::vector<double>(sys.layout().size(), 0.0), &table);

  // ...and at a deliberately scrambled bias that reverses vds on both
  // devices, driving the D/S-swap unwinding.
  std::vector<double> scrambled(sys.layout().size(), 0.0);
  for (std::size_t i = 0; i < scrambled.size(); ++i) {
    scrambled[i] = (i % 2 == 0) ? 4.0 : -1.5;
  }
  expect_same_eval(sys, scrambled, &table);
}

TEST(BatchMna, MismatchShiftFlowsThroughTable) {
  Circuit c = two_stage_circuit();
  c.set_mosfet_dvt("M1", 4e-3);
  NonlinearSystem sys(c, tech5());
  DeviceTable table;
  sys.build_device_table(&table);
  OpOptions scalar_only;
  scalar_only.device_eval = DeviceEval::kScalar;
  const OpResult op = dc_operating_point(c, tech5(), scalar_only);
  ASSERT_TRUE(op.converged);
  expect_same_eval(sys, op.solution, &table);
}

TEST(BatchMna, BatchWithoutTableThrows) {
  const Circuit c = two_stage_circuit();
  NonlinearSystem sys(c, tech5());
  const std::size_t n = sys.layout().size();
  NonlinearSystem::EvalOptions opts;
  opts.device_eval = DeviceEval::kBatch;
  std::vector<double> x(n, 0.0), f(n);
  EXPECT_THROW(sys.eval(x, opts, nullptr, &f), std::logic_error);

  // A table built for a different device count is rejected too.
  DeviceTable stale;
  stale.batch.resize(5);
  EXPECT_THROW(sys.eval(x, opts, nullptr, &f, nullptr, &stale),
               std::logic_error);
}

TEST(BatchMna, DeviceEvalCountersCountBatchesOnly) {
  const Circuit c = two_stage_circuit();
  NonlinearSystem sys(c, tech5());
  DeviceTable table;
  sys.build_device_table(&table);
  const std::size_t n = sys.layout().size();
  std::vector<double> x(n, 1.0), f(n);

  auto& batches = obs::Registry::global().counter("sim.device_eval.batches");
  auto& devices = obs::Registry::global().counter("sim.device_eval.devices");
  const std::uint64_t b0 = batches.value();
  const std::uint64_t d0 = devices.value();

  NonlinearSystem::EvalOptions opts;
  opts.device_eval = DeviceEval::kScalar;
  sys.eval(x, opts, nullptr, &f);
  EXPECT_EQ(batches.value(), b0);  // scalar path never touches them
  EXPECT_EQ(devices.value(), d0);

  opts.device_eval = DeviceEval::kBatch;
  sys.eval(x, opts, nullptr, &f, nullptr, &table);
  sys.eval(x, opts, nullptr, &f, nullptr, &table);
  EXPECT_EQ(batches.value(), b0 + 2);
  EXPECT_EQ(devices.value(), d0 + 2 * table.size());
}

// ---- Runtime default resolution -----------------------------------------

TEST(DeviceEvalDefault, ResolvesAndParses) {
  // The built-in default is the batch path (OASYS_DEVICE_EVAL is not set
  // in the test environment).
  EXPECT_EQ(device_eval_default(), DeviceEval::kBatch);
  EXPECT_EQ(resolve_device_eval(DeviceEval::kDefault), DeviceEval::kBatch);
  EXPECT_EQ(resolve_device_eval(DeviceEval::kScalar), DeviceEval::kScalar);

  set_device_eval_default(DeviceEval::kScalar);
  EXPECT_EQ(device_eval_default(), DeviceEval::kScalar);
  EXPECT_EQ(resolve_device_eval(DeviceEval::kDefault), DeviceEval::kScalar);
  set_device_eval_default(DeviceEval::kDefault);  // restore built-in
  EXPECT_EQ(device_eval_default(), DeviceEval::kBatch);

  DeviceEval mode = DeviceEval::kDefault;
  EXPECT_TRUE(parse_device_eval("scalar", &mode));
  EXPECT_EQ(mode, DeviceEval::kScalar);
  EXPECT_TRUE(parse_device_eval("batch", &mode));
  EXPECT_EQ(mode, DeviceEval::kBatch);
  EXPECT_FALSE(parse_device_eval("banana", &mode));
  EXPECT_EQ(mode, DeviceEval::kBatch);  // untouched on failure
  EXPECT_STREQ(to_string(DeviceEval::kScalar), "scalar");
  EXPECT_STREQ(to_string(DeviceEval::kBatch), "batch");
}

}  // namespace
}  // namespace oasys::sim
