// Noise analysis: analytic checks (resistor 4kTR, the kT/C theorem, MOS
// channel noise), plus the synthesized op amps' noise closed through the
// simulator against the designers' thermal predictions.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interpolate.h"
#include "spice/noise.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::sim {
namespace {

using ckt::Circuit;
using ckt::Waveform;
using tech::Technology;
using util::um;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

constexpr double kFourKT = 4.0 * util::kBoltzmann * util::kRoomTempK;

TEST(Noise, ResistorJohnsonNoise) {
  // A resistor to ground: output voltage PSD = 4kTR, flat.
  Circuit c;
  const auto n = c.node("n");
  const double r = 100e3;
  c.add_resistor("R1", n, ckt::kGround, r);
  // A second huge resistor keeps the node from being shunt-only.
  c.add_resistor("R2", n, ckt::kGround, 1e12);
  const OpResult op = dc_operating_point(c, tech5());
  ASSERT_TRUE(op.converged);
  const NoiseResult nr =
      noise_analysis(c, tech5(), op, n, {10.0, 1e3, 1e6});
  ASSERT_TRUE(nr.ok) << nr.error;
  for (const double psd : nr.output_psd) {
    EXPECT_NEAR(psd, kFourKT * r, kFourKT * r * 1e-3);
  }
}

TEST(Noise, ParallelResistorsCombine) {
  // Two resistors in parallel: PSD = 4kT * (R1 || R2).
  Circuit c;
  const auto n = c.node("n");
  c.add_resistor("R1", n, ckt::kGround, 50e3);
  c.add_resistor("R2", n, ckt::kGround, 200e3);
  const OpResult op = dc_operating_point(c, tech5());
  const NoiseResult nr = noise_analysis(c, tech5(), op, n, {1e3});
  ASSERT_TRUE(nr.ok);
  EXPECT_NEAR(nr.output_psd[0], kFourKT * 40e3, kFourKT * 40e3 * 1e-3);
}

TEST(Noise, KtOverCTheorem) {
  // RC lowpass: integrated output noise = sqrt(kT/C), independent of R.
  for (const double r : {1e3, 100e3}) {
    Circuit c;
    const auto n = c.node("n");
    const double cap = 10e-12;
    c.add_resistor("R1", n, ckt::kGround, r);
    c.add_capacitor("C1", n, ckt::kGround, cap);
    const OpResult op = dc_operating_point(c, tech5());
    // Integrate well past the pole.
    const double fp = 1.0 / (util::kTwoPi * r * cap);
    const NoiseResult nr = noise_analysis(
        c, tech5(), op, n, num::logspace(fp * 1e-3, fp * 1e3, 241));
    ASSERT_TRUE(nr.ok);
    const double expected =
        std::sqrt(util::kBoltzmann * util::kRoomTempK / cap);
    EXPECT_NEAR(nr.integrated_rms(), expected, expected * 0.03)
        << "R = " << r;
  }
}

TEST(Noise, MosChannelThermalNoise) {
  // Common-source amp: output PSD ~ (4kT*2/3*gm + 4kT/RL) * Rout^2.
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_vsource("VIN", in, ckt::kGround, Waveform::dc(1.2));
  c.add_mosfet("M1", out, in, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(50.0), um(5.0));
  const double rl = 50e3;
  c.add_resistor("RL", vdd, out, rl);
  const OpResult op = dc_operating_point(c, t);
  ASSERT_TRUE(op.converged);
  const double gm = op.devices[0].gm;
  const double gds = op.devices[0].gds;
  const double rout = 1.0 / (1.0 / rl + gds);
  // High enough that flicker is negligible, low enough to be in-band.
  const NoiseResult nr = noise_analysis(c, t, op, out, {10e6});
  ASSERT_TRUE(nr.ok);
  const double expected =
      (kFourKT * (2.0 / 3.0) * gm + kFourKT / rl) * rout * rout;
  EXPECT_NEAR(nr.output_psd[0], expected, expected * 0.05);
}

TEST(Noise, FlickerDominatesAtLowFrequency) {
  const Technology& t = tech5();
  Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_vsource("VDD", vdd, ckt::kGround, Waveform::dc(5.0));
  c.add_vsource("VIN", in, ckt::kGround, Waveform::dc(1.2));
  c.add_mosfet("M1", out, in, ckt::kGround, ckt::kGround,
               mos::MosType::kNmos, um(50.0), um(5.0));
  c.add_resistor("RL", vdd, out, 50e3);
  const OpResult op = dc_operating_point(c, t);
  const NoiseResult nr =
      noise_analysis(c, t, op, out, {10.0, 100.0, 1e7});
  ASSERT_TRUE(nr.ok);
  // 1/f: a decade down in frequency is a decade up in PSD.
  EXPECT_NEAR(nr.output_psd[0] / nr.output_psd[1], 10.0, 1.5);
  // Far above the corner the PSD flattens (thermal floor).
  EXPECT_LT(nr.output_psd[2], nr.output_psd[1]);
  // The ranked contributors include M1's flicker at the last frequency.
  ASSERT_FALSE(nr.top_contributors.empty());
}

TEST(Noise, RejectsBadInputs) {
  Circuit c;
  const auto n = c.node("n");
  c.add_resistor("R1", n, ckt::kGround, 1e3);
  OpResult bad;
  bad.converged = false;
  EXPECT_FALSE(noise_analysis(c, tech5(), bad, n, {1.0}).ok);
  const OpResult op = dc_operating_point(c, tech5());
  EXPECT_FALSE(noise_analysis(c, tech5(), op, ckt::kGround, {1.0}).ok);
  EXPECT_FALSE(noise_analysis(c, tech5(), op, n, {0.0}).ok);
}

// ---- synthesized op amps --------------------------------------------------

TEST(OpAmpNoise, MeasuredWhiteNoiseNearPrediction) {
  using namespace oasys::synth;
  const SynthesisResult r = synthesize_opamp(tech5(), spec_case_b());
  ASSERT_TRUE(r.success());
  MeasureOptions mo;
  mo.measure_slew = false;
  mo.measure_icmr = false;
  const MeasuredOpAmp m = measure_opamp(*r.best(), tech5(), mo);
  ASSERT_TRUE(m.ok) << m.error;
  ASSERT_TRUE(m.noise.ok) << m.noise.error;
  EXPECT_GT(m.perf.noise_in, 0.0);
  // The designer predicts thermal-only noise; the measurement at 0.3*GBW
  // includes residual flicker, so allow [0.7x, 3x].
  const double pred = r.best()->predicted.noise_in;
  EXPECT_GT(m.perf.noise_in, pred * 0.7);
  EXPECT_LT(m.perf.noise_in, pred * 3.0);
}

TEST(OpAmpNoise, NoiseSpecDrivesUpInputGm) {
  using namespace oasys::synth;
  core::OpAmpSpec spec = spec_case_a();
  const OpAmpDesign loose = design_one_stage_ota(tech5(), spec);
  ASSERT_TRUE(loose.feasible);
  ASSERT_GT(loose.predicted.noise_in, 0.0);

  // Demand half the noise the unconstrained design achieves.
  spec.noise_max = 0.5 * loose.predicted.noise_in;
  spec.power_max = 0.0;  // let the current rise
  const OpAmpDesign tight = design_one_stage_ota(tech5(), spec);
  ASSERT_TRUE(tight.feasible) << tight.trace.to_string();
  EXPECT_TRUE(tight.trace.rule_fired("raise-gm1-for-noise"));
  EXPECT_LE(tight.predicted.noise_in, spec.noise_max * 1.001);
  EXPECT_GT(tight.itail, loose.itail);  // the noise was paid for in power
}

TEST(OpAmpNoise, ImpossibleNoiseSpecFails) {
  using namespace oasys::synth;
  core::OpAmpSpec spec = spec_case_a();
  spec.noise_max = 1e-9;  // 1 nV/rtHz in 5 um CMOS at these currents: no
  const OpAmpDesign d = design_one_stage_ota(tech5(), spec);
  EXPECT_FALSE(d.feasible);
}

}  // namespace
}  // namespace oasys::sim
