// Level-0 synthesis: the successive-approximation A/D converter of the
// paper's Figure 1, translating converter specs down the hierarchy into
// comparator and passive-network specs, verified by running behavioural
// conversions against the simulated comparator.
#include <gtest/gtest.h>

#include "synth/sar_adc.h"
#include "tech/builtin.h"
#include "util/units.h"

namespace oasys::synth {
namespace {

using tech::Technology;

const Technology& tech5() {
  static const Technology t = tech::five_micron();
  return t;
}

SarAdcSpec nominal_spec() {
  SarAdcSpec s;
  s.name = "adc8";
  s.bits = 8;
  s.sample_rate = util::khz(20.0);
  s.vin_lo = -2.0;
  s.vin_hi = 2.0;
  return s;
}

TEST(SarAdcSpecTest, Validation) {
  SarAdcSpec s = nominal_spec();
  EXPECT_FALSE(s.validate().has_errors());
  s.bits = 1;
  EXPECT_TRUE(s.validate().has_errors());
  s = nominal_spec();
  s.sample_rate = 0.0;
  EXPECT_TRUE(s.validate().has_errors());
  s = nominal_spec();
  s.vin_hi = s.vin_lo;
  EXPECT_TRUE(s.validate().has_errors());
}

TEST(SarAdcDesignTest, NominalEightBit) {
  const SarAdcDesign d = design_sar_adc(tech5(), nominal_spec());
  ASSERT_TRUE(d.feasible) << d.trace.to_string();
  // Level translation: comparator resolution is half the LSB.
  EXPECT_NEAR(d.lsb, 4.0 / 256.0, 1e-12);
  EXPECT_NEAR(d.comparator.spec.resolution, 0.5 * d.lsb, 1e-12);
  // Timing adds up: sample window + bits * bit window <= conversion time.
  EXPECT_LE(d.t_sample + d.spec.bits * d.t_bit, d.t_conv * 1.001);
  // Capacitor array: unit at the matching floor or above, total = 2^N.
  EXPECT_GE(d.unit_cap, 50e-15 * 0.999);
  EXPECT_NEAR(d.total_cap, d.unit_cap * 256.0, 1e-18);
  EXPECT_GT(d.switch_ron_max, 100.0);
  EXPECT_GT(d.area, d.comparator.area);  // caps cost real area
}

TEST(SarAdcDesignTest, MoreBitsTightenEverything) {
  SarAdcSpec s10 = nominal_spec();
  s10.bits = 10;
  const SarAdcDesign d8 = design_sar_adc(tech5(), nominal_spec());
  const SarAdcDesign d10 = design_sar_adc(tech5(), s10);
  ASSERT_TRUE(d8.feasible);
  ASSERT_TRUE(d10.feasible) << d10.trace.to_string();
  EXPECT_LT(d10.lsb, d8.lsb);
  EXPECT_LT(d10.comparator.spec.resolution, d8.comparator.spec.resolution);
  EXPECT_GT(d10.total_cap, d8.total_cap);
  EXPECT_LT(d10.switch_ron_max, d8.switch_ron_max);
}

TEST(SarAdcDesignTest, AbsurdRateFails) {
  SarAdcSpec s = nominal_spec();
  s.sample_rate = util::mhz(50.0);  // 6 ns per bit in 5 um CMOS
  const SarAdcDesign d = design_sar_adc(tech5(), s);
  EXPECT_FALSE(d.feasible);
  EXPECT_TRUE(d.log.has_errors());
}

TEST(SarAdcDesignTest, RepartitionRuleFires) {
  // A rate just past the comparator's half-window ability should be saved
  // by the bit-window repartition rule (70% to the comparator).
  SarAdcSpec s = nominal_spec();
  s.sample_rate = util::khz(38.0);
  const SarAdcDesign d = design_sar_adc(tech5(), s);
  if (d.feasible && d.trace.rules_fired > 0) {
    EXPECT_TRUE(d.trace.rule_fired("repartition-bit-window"));
  }
  // Either way the outcome must be recorded coherently.
  EXPECT_EQ(d.feasible, d.trace.success);
}

TEST(SarAdcMeasureTest, EightBitRampConverts) {
  const SarAdcDesign d = design_sar_adc(tech5(), nominal_spec());
  ASSERT_TRUE(d.feasible);
  const MeasuredSarAdc m = measure_sar_adc(d, tech5(), 17);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_EQ(m.points_tested, 17);
  // Static accuracy: within 1 LSB of ideal quantization over the ramp.
  EXPECT_LE(m.max_code_error_lsb, 1);
  EXPECT_TRUE(m.monotonic);
  // Dynamic: the real comparator decides within the per-bit budget.
  EXPECT_TRUE(m.timing_met);
  EXPECT_GT(m.comparator_tprop, 0.0);
}

TEST(SarAdcMeasureTest, InfeasibleDesignRejected) {
  SarAdcDesign d;
  d.feasible = false;
  EXPECT_FALSE(measure_sar_adc(d, tech5()).ok);
}

class SarAdcSweep : public ::testing::TestWithParam<int> {};

TEST_P(SarAdcSweep, ConvertsAcrossResolutions) {
  SarAdcSpec s = nominal_spec();
  s.bits = GetParam();
  s.sample_rate = util::khz(10.0);
  const SarAdcDesign d = design_sar_adc(tech5(), s);
  ASSERT_TRUE(d.feasible) << d.trace.to_string();
  const MeasuredSarAdc m = measure_sar_adc(d, tech5(), 9);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_LE(m.max_code_error_lsb, 1) << s.bits << " bits";
  EXPECT_TRUE(m.monotonic);
}

INSTANTIATE_TEST_SUITE_P(Bits, SarAdcSweep, ::testing::Values(4, 6, 8));

}  // namespace
}  // namespace oasys::synth
