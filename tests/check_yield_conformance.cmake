# Cross-process conformance check for yield analysis (ctest script).
#
# Pins the yield determinism contract end to end, through the shipped CLI:
#   1. `oasys yield --json` is BYTE-IDENTICAL at --jobs 1, 2, 4 (any
#      partitioning of the sample space sees the same counter-based
#      draws).
#   2. `oasys shard --yield-samples N --workers k` stdout is
#      BYTE-IDENTICAL to `oasys batch --yield-samples N` for k in 1, 2, 4
#      (both under --no-stats, which drops the timing-bearing footer).
#
# Expects: OASYS_CLI (path to the oasys binary), SPEC_DIR (directory of
# .spec files), TECH (technology file), WORK_DIR (writable scratch).
execute_process(
  COMMAND ${OASYS_CLI} yield ${SPEC_DIR}/caseA.spec --tech ${TECH}
          --samples 8 --seed 3 --jobs 1 --json
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE yield_jobs1)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "oasys yield --jobs 1 failed (exit ${rc})")
endif()
foreach(jobs 2 4)
  execute_process(
    COMMAND ${OASYS_CLI} yield ${SPEC_DIR}/caseA.spec --tech ${TECH}
            --samples 8 --seed 3 --jobs ${jobs} --json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE yield_out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "oasys yield --jobs ${jobs} failed (exit ${rc})")
  endif()
  if(NOT yield_out STREQUAL yield_jobs1)
    message(FATAL_ERROR
            "yield --jobs ${jobs} output differs from --jobs 1:\n"
            "--- jobs 1 ---\n${yield_jobs1}\n"
            "--- jobs ${jobs} ---\n${yield_out}")
  endif()
endforeach()

execute_process(
  COMMAND ${OASYS_CLI} batch ${SPEC_DIR} --tech ${TECH} --no-stats
          --yield-samples 8 --yield-seed 3
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE batch_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "oasys batch --yield-samples failed (exit ${rc})")
endif()
if(NOT batch_out MATCHES "yield")
  message(FATAL_ERROR "batch --yield-samples printed no yield column:\n"
                      "${batch_out}")
endif()

foreach(workers 1 2 4)
  execute_process(
    COMMAND ${OASYS_CLI} shard ${SPEC_DIR} --tech ${TECH} --no-stats
            --yield-samples 8 --yield-seed 3 --workers ${workers}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE shard_out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "oasys shard --yield-samples --workers ${workers} "
                        "failed (exit ${rc})")
  endif()
  if(NOT shard_out STREQUAL batch_out)
    message(FATAL_ERROR
            "shard --workers ${workers} yield output differs from batch:\n"
            "--- batch ---\n${batch_out}\n"
            "--- shard ---\n${shard_out}")
  endif()
endforeach()

message(STATUS "yield --json byte-identical at --jobs 1/2/4; "
               "shard yield output byte-identical to batch at "
               "--workers 1/2/4")
