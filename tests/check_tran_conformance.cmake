# Adaptive-transient determinism through the CLI (ctest script).
#
# The adaptive integrator is tolerance-equal to fixed stepping but must be
# BIT-DETERMINISTIC against itself: the step-size controller runs serially
# inside one transient, so `--tran-mode adaptive` output may never depend
# on the thread count.  This script pins that end to end:
#   1. `oasys --spec S --verify --tran-mode adaptive` stdout is
#      byte-identical at --jobs 1, 2, 4.
#   2. The adaptive report differs from the fixed-step report (the two
#      modes are distinct engines; if they ever produced identical bytes
#      the mode plumbing would be dead).
#
# Expects: OASYS_CLI (path to the oasys binary), SPEC (spec file),
# WORK_DIR (writable scratch directory).
foreach(jobs 1 2 4)
  execute_process(
    COMMAND ${OASYS_CLI} --spec ${SPEC} --verify --tran-mode adaptive
            --jobs ${jobs}
    RESULT_VARIABLE rc
    OUTPUT_FILE ${WORK_DIR}/tran_adaptive_j${jobs}.out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "oasys --tran-mode adaptive --jobs ${jobs} failed (exit ${rc})")
  endif()
  file(READ ${WORK_DIR}/tran_adaptive_j${jobs}.out out_j${jobs})
endforeach()

if(NOT out_j1 STREQUAL out_j2 OR NOT out_j1 STREQUAL out_j4)
  message(FATAL_ERROR
          "adaptive transient output differs across --jobs 1/2/4:\n"
          "--- jobs 1 ---\n${out_j1}\n--- jobs 2 ---\n${out_j2}\n"
          "--- jobs 4 ---\n${out_j4}")
endif()
message(STATUS "adaptive transient report byte-identical at --jobs 1/2/4")

execute_process(
  COMMAND ${OASYS_CLI} --spec ${SPEC} --verify --tran-mode fixed
  RESULT_VARIABLE rc
  OUTPUT_FILE ${WORK_DIR}/tran_fixed.out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "oasys --tran-mode fixed failed (exit ${rc})")
endif()
file(READ ${WORK_DIR}/tran_fixed.out out_fixed)
if(out_fixed STREQUAL out_j1)
  message(FATAL_ERROR
          "fixed and adaptive reports are byte-identical — the transient "
          "mode selection is not reaching the simulator")
endif()
message(STATUS "fixed and adaptive engines produce distinct reports")
