// Client half of daemon-mode serving: runs one batch through a running
// `oasys serve` daemon over its unix-domain socket.
//
// The conversation is the shard wire protocol as a session: kConfig
// (carrying the client's technology/options fingerprints, which the
// daemon verifies against its own before serving), kRequest per spec,
// kRun, then kResult per spec, kMetrics, kDone.  Outcomes come back in
// submission order and are bit-for-bit what a local `oasys batch` (and
// therefore a direct synthesize_opamp call) produces for the same specs
// — daemon serving changes where the work runs, never what it returns.
#pragma once

#include <string>
#include <vector>

#include "core/spec.h"
#include "obs/metrics.h"
#include "serve/status.h"
#include "service/service.h"
#include "shard/wire.h"
#include "synth/oasys.h"
#include "tech/technology.h"
#include "yield/service.h"

namespace oasys::serve {

struct ConnectReport {
  // One per spec, submission order; ok() items are byte-identical to the
  // local batch path.
  std::vector<service::BatchOutcome> outcomes;
  // The daemon's merged snapshot: per-cycle worker deltas plus `serve.*`
  // daemon counters (all flagged non-deterministic — they depend on the
  // daemon's history, not this batch).
  obs::MetricsSnapshot metrics;
  // Cumulative worker service counters summed across the workers that
  // served this batch.  count/min/mean/max of the latency summary merge;
  // the percentile fields do not and are left 0.
  service::ServiceStats stats;
  // Worker span sets forwarded by the daemon; populated only when the
  // batch ran with a trace id.  Timing-class data.
  std::vector<shard::SpanSet> worker_spans;
};

// ConnectReport for a mixed synthesis/yield cycle: one yield::Outcome per
// request, submission order.  ok() items are bit-identical to what the
// local yield::YieldService produces for the same requests.
struct MixedConnectReport {
  std::vector<yield::Outcome> outcomes;
  obs::MetricsSnapshot metrics;
  service::ServiceStats stats;
  // Worker span sets forwarded by the daemon, arrival order; populated
  // only when the requests carried trace ids (trace_id != 0 on Request).
  // Timing-class data — never part of the result bytes.
  std::vector<shard::SpanSet> worker_spans;
};

// Connects, runs one mixed synthesis/yield cycle, disconnects.  Each
// request travels as kRequest or kYieldRequest and is answered by the
// matching result frame type (a mismatch is a protocol error and
// throws).  Throws std::runtime_error when the daemon is unreachable,
// refuses the configuration (kError), or breaks the protocol; per-request
// failures are ordinary outcomes, never thrown.
MixedConnectReport run_connected_mixed(
    const std::string& socket_path, const tech::Technology& tech,
    const synth::SynthOptions& synth_opts,
    const std::vector<yield::Request>& requests);

// Synthesis-only wrapper over run_connected_mixed.  Throws under the
// same conditions; per-spec failures (including deterministic
// worker-death errors) are ordinary outcomes, never thrown.  A nonzero
// trace_id tags every request with it (span ids derived from the
// submission index) so worker spans come back correlated; 0 leaves the
// wire payloads byte-identical to an untraced run.
ConnectReport run_connected_batch(const std::string& socket_path,
                                  const tech::Technology& tech,
                                  const synth::SynthOptions& synth_opts,
                                  const std::vector<core::OpAmpSpec>& specs,
                                  std::uint64_t trace_id = 0);

// Admin introspection: connects, sends one empty kStatus frame, and
// returns the daemon's StatusReport.  Needs no technology — the daemon
// answers kStatus before kConfig.  Throws std::runtime_error when the
// daemon is unreachable or answers with anything but a kStatus.
StatusReport fetch_status(const std::string& socket_path);

}  // namespace oasys::serve
