// Client half of daemon-mode serving: runs one batch through a running
// `oasys serve` daemon over its unix-domain socket.
//
// The conversation is the shard wire protocol as a session: kConfig
// (carrying the client's technology/options fingerprints, which the
// daemon verifies against its own before serving), kRequest per spec,
// kRun, then kResult per spec, kMetrics, kDone.  Outcomes come back in
// submission order and are bit-for-bit what a local `oasys batch` (and
// therefore a direct synthesize_opamp call) produces for the same specs
// — daemon serving changes where the work runs, never what it returns.
#pragma once

#include <string>
#include <vector>

#include "core/spec.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "synth/oasys.h"
#include "tech/technology.h"

namespace oasys::serve {

struct ConnectReport {
  // One per spec, submission order; ok() items are byte-identical to the
  // local batch path.
  std::vector<service::BatchOutcome> outcomes;
  // The daemon's merged snapshot: per-cycle worker deltas plus `serve.*`
  // daemon counters (all flagged non-deterministic — they depend on the
  // daemon's history, not this batch).
  obs::MetricsSnapshot metrics;
  // Cumulative worker service counters summed across the workers that
  // served this batch.  count/min/mean/max of the latency summary merge;
  // the percentile fields do not and are left 0.
  service::ServiceStats stats;
};

// Connects, runs the batch, disconnects.  Throws std::runtime_error when
// the daemon is unreachable, refuses the configuration (kError), or
// breaks the protocol; per-spec failures (including deterministic
// worker-death errors) are ordinary outcomes, never thrown.
ConnectReport run_connected_batch(const std::string& socket_path,
                                  const tech::Technology& tech,
                                  const synth::SynthOptions& synth_opts,
                                  const std::vector<core::OpAmpSpec>& specs);

}  // namespace oasys::serve
