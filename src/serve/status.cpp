#include "serve/status.h"

#include <sstream>

#include "util/table.h"
#include "util/text.h"

namespace oasys::serve {

namespace {

using util::format;

std::string num(double v) { return format("%.17g", v); }

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

const char* worker_state(const WorkerStatus& w) {
  if (w.retired) return "retired";
  if (w.alive) return "up";
  return "down";
}

}  // namespace

double StatusReport::shared_cache_hit_ratio() const {
  const std::uint64_t total = shared_cache_hits + shared_cache_misses;
  if (total == 0) return 0.0;
  return static_cast<double>(shared_cache_hits) /
         static_cast<double>(total);
}

void put_status_report(shard::Writer& w, const StatusReport& s) {
  w.f64(s.uptime_s);
  w.boolean(s.draining);
  w.u64(s.sessions_total);
  w.u64(s.sessions_active);
  w.u64(s.requests_total);
  w.u64(s.batches);
  w.u64(s.in_flight);
  w.u64(s.shared_cache_size);
  w.u64(s.shared_cache_capacity);
  w.u64(s.shared_cache_hits);
  w.u64(s.shared_cache_misses);
  w.u64(s.respawns);
  w.u64(s.worker_timeouts);
  w.u64(s.worker_errors);
  w.u64(s.workers.size());
  for (const WorkerStatus& wk : s.workers) {
    w.u64(wk.shard);
    w.u64(static_cast<std::uint64_t>(wk.pid));
    w.boolean(wk.alive);
    w.boolean(wk.retired);
    w.u64(wk.in_flight_cycles);
    w.u64(wk.requests_served);
    w.u64(wk.respawns);
    w.f64(wk.backoff_s);
  }
}

StatusReport get_status_report(shard::Reader& r) {
  StatusReport s;
  s.uptime_s = r.f64();
  s.draining = r.boolean();
  s.sessions_total = r.u64();
  s.sessions_active = r.u64();
  s.requests_total = r.u64();
  s.batches = r.u64();
  s.in_flight = r.u64();
  s.shared_cache_size = r.u64();
  s.shared_cache_capacity = r.u64();
  s.shared_cache_hits = r.u64();
  s.shared_cache_misses = r.u64();
  s.respawns = r.u64();
  s.worker_timeouts = r.u64();
  s.worker_errors = r.u64();
  const std::uint64_t n = r.u64();
  if (n > 1u << 20) {
    throw shard::WireError(util::format(
        "wire: worker status count %llu is implausible",
        static_cast<unsigned long long>(n)));
  }
  s.workers.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    WorkerStatus wk;
    wk.shard = r.u64();
    wk.pid = static_cast<std::int64_t>(r.u64());
    wk.alive = r.boolean();
    wk.retired = r.boolean();
    wk.in_flight_cycles = r.u64();
    wk.requests_served = r.u64();
    wk.respawns = r.u64();
    wk.backoff_s = r.f64();
    s.workers.push_back(wk);
  }
  return s;
}

std::string status_json(const StatusReport& s) {
  std::ostringstream os;
  os << "{\"schema\": \"oasys.status.v1\", \"uptime_s\": "
     << num(s.uptime_s)
     << ", \"draining\": " << (s.draining ? "true" : "false")
     << ", \"sessions\": {\"total\": " << s.sessions_total
     << ", \"active\": " << s.sessions_active << "}"
     << ", \"requests\": {\"total\": " << s.requests_total
     << ", \"batches\": " << s.batches << ", \"in_flight\": " << s.in_flight
     << "}"
     << ", \"shared_cache\": {\"size\": " << s.shared_cache_size
     << ", \"capacity\": " << s.shared_cache_capacity
     << ", \"hits\": " << s.shared_cache_hits
     << ", \"misses\": " << s.shared_cache_misses
     << ", \"hit_ratio\": " << num(s.shared_cache_hit_ratio()) << "}"
     << ", \"fleet\": {\"respawns\": " << s.respawns
     << ", \"worker_timeouts\": " << s.worker_timeouts
     << ", \"worker_errors\": " << s.worker_errors << "}"
     << ", \"workers\": [";
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const WorkerStatus& wk = s.workers[i];
    if (i > 0) os << ", ";
    os << "{\"shard\": " << wk.shard << ", \"pid\": " << wk.pid
       << ", \"state\": " << quote(worker_state(wk))
       << ", \"in_flight_cycles\": " << wk.in_flight_cycles
       << ", \"requests_served\": " << wk.requests_served
       << ", \"respawns\": " << wk.respawns
       << ", \"backoff_s\": " << num(wk.backoff_s) << "}";
  }
  os << "]}";
  return os.str();
}

std::string status_table(const StatusReport& s) {
  std::ostringstream os;
  os << format("uptime %.1f s · %llu session(s) active (%llu total) · ",
               s.uptime_s,
               static_cast<unsigned long long>(s.sessions_active),
               static_cast<unsigned long long>(s.sessions_total))
     << format("%llu request(s), %llu batch(es), %llu in flight\n",
               static_cast<unsigned long long>(s.requests_total),
               static_cast<unsigned long long>(s.batches),
               static_cast<unsigned long long>(s.in_flight));
  os << format(
      "shared cache %llu/%llu entries · %llu hit(s), %llu miss(es) "
      "(%.1f%% hit ratio)\n",
      static_cast<unsigned long long>(s.shared_cache_size),
      static_cast<unsigned long long>(s.shared_cache_capacity),
      static_cast<unsigned long long>(s.shared_cache_hits),
      static_cast<unsigned long long>(s.shared_cache_misses),
      s.shared_cache_hit_ratio() * 100.0);
  os << format("fleet: %llu respawn(s), %llu timeout(s), %llu worker "
               "error(s)%s\n",
               static_cast<unsigned long long>(s.respawns),
               static_cast<unsigned long long>(s.worker_timeouts),
               static_cast<unsigned long long>(s.worker_errors),
               s.draining ? " · draining" : "");
  util::Table table({"worker", "pid", "state", "cycles", "served",
                     "respawns", "backoff"});
  for (std::size_t c = 1; c <= 6; ++c) {
    table.set_align(c, util::Align::kRight);
  }
  for (const WorkerStatus& wk : s.workers) {
    table.add_row(
        {format("%llu", static_cast<unsigned long long>(wk.shard)),
         wk.pid >= 0 ? format("%lld", static_cast<long long>(wk.pid)) : "-",
         worker_state(wk),
         format("%llu", static_cast<unsigned long long>(wk.in_flight_cycles)),
         format("%llu", static_cast<unsigned long long>(wk.requests_served)),
         format("%llu", static_cast<unsigned long long>(wk.respawns)),
         format("%.2fs", wk.backoff_s)});
  }
  os << table.to_string();
  return os.str();
}

}  // namespace oasys::serve
