// Daemon-mode serving: a persistent coordinator with a resident worker
// pool.
//
// `oasys shard` pays one fork+exec fleet per batch, so at interactive
// batch sizes the spawn cost swamps the synthesis cost (see
// BENCH_shard_perf.json).  The Server keeps `oasys shard-worker
// --session` processes resident across requests: clients connect to a
// unix-domain socket, speak the shard wire frames as a session protocol
// (kConfig once, then repeated kRequest*..kRun -> kResult*..kMetrics..
// kDone cycles), and their specs route to the same worker a local
// `oasys shard` run would pick — the canonical-fingerprint routing rule
// is shared, so per-worker caches stay exact and results stay
// byte-identical to `oasys batch` at every worker count.
//
// Cache tiers.  Each worker keeps its private LRU warm across requests
// (that is the point of residence); above it the coordinator owns a
// shared result-cache tier keyed by the full request fingerprint and
// consulted before routing, so a key that repeats across requests stops
// costing one miss per worker.  Only ok() results are cached; the cached
// value is the result's exact wire bytes (plus which result frame type
// to replay — yield analyses cache under the spec key extended with
// their parameters), so a shared-tier hit replays the identical payload
// a worker would have produced.
//
// Fault model.  The event loop is poll(2)-based and single-threaded;
// every fd is non-blocking and every write is buffered, so no peer can
// wedge the coordinator.  A worker that dies mid-cycle has its in-flight
// specs answered with deterministic per-spec errors and is respawned
// with exponential backoff; a worker that is alive but silent past the
// per-worker read deadline (worker_timeout_s) is killed and handled the
// same way — a request can fail, but it can never hang.  Respawns,
// timeouts, shared-cache traffic, and drain time are exported as
// `serve.*` metrics in every client's merged kMetrics frame.
//
// Drain.  request_stop() (async-signal-safe; the CLI points SIGTERM at
// it) closes the listener, lets in-flight cycles finish and answer,
// closes idle sessions, sends every worker EOF at a cycle boundary (a
// session worker exits 0 there), reaps the pool, and returns 0 from
// run().
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "service/service.h"
#include "synth/oasys.h"
#include "tech/technology.h"

namespace oasys::serve {

struct ServeOptions {
  // Unix-domain socket path the daemon listens on.  Must fit sockaddr_un
  // (about 100 bytes); a stale file at the path is unlinked before bind.
  std::string socket_path;
  // Resident worker process count (>= 1).  Results are identical at
  // every value; only wall time and per-shard load change.
  std::size_t workers = 2;
  // Executable spawned per worker, invoked as `<worker_command>
  // shard-worker --session`.  The CLI passes its own binary path.
  std::string worker_command;
  // Per-worker service configuration (each worker owns a private cache
  // that stays warm across requests).
  service::ServiceOptions service;
  // Per-worker read deadline [s] while the worker has in-flight cycles;
  // 0 disables it.  Re-arms on every frame received, so a slow but
  // progressing worker is never killed.
  double worker_timeout_s = 30.0;
  // Coordinator-owned shared result-cache capacity in entries; 0
  // disables the shared tier (workers' private caches still apply).
  std::size_t shared_cache_capacity = 256;
  // Respawn backoff: first respawn after backoff_initial_s, doubling to
  // backoff_max_s; reset to the initial value when a worker completes a
  // cycle cleanly.
  double backoff_initial_s = 0.05;
  double backoff_max_s = 2.0;
  // Slow-query threshold [ms]; 0 disables it.  A dispatched request whose
  // worker answer arrives this long after its cycle was dispatched gets a
  // structured one-line JSON record on the daemon's stderr (timing-class
  // logging only — results and counters are untouched).
  double slow_ms = 0.0;
};

// Daemon counters, exported as `serve.*` in every merged kMetrics frame
// and readable in-process via Server::stats().
struct ServeStats {
  std::uint64_t sessions = 0;            // connections accepted
  std::uint64_t requests = 0;            // specs received across sessions
  std::uint64_t batches = 0;             // request cycles completed
  std::uint64_t shared_cache_hits = 0;   // answered before routing
  std::uint64_t shared_cache_misses = 0;
  std::uint64_t respawns = 0;            // replacement workers spawned
  std::uint64_t worker_timeouts = 0;     // deadline kills
  std::uint64_t worker_errors = 0;       // per-spec errors from dead workers
  double drain_seconds = 0.0;            // stop request -> loop exit
};

class Server {
 public:
  // Validates options (workers >= 1, non-empty socket path and worker
  // command, path short enough for sockaddr_un) and creates the
  // self-pipe request_stop() writes to.  Throws std::invalid_argument
  // on bad options, std::runtime_error on pipe failure.  The socket is
  // not bound until run().
  Server(tech::Technology tech, synth::SynthOptions synth_opts,
         ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket, spawns the pool, and serves until request_stop().
  // Returns 0 after a clean drain; throws std::runtime_error when the
  // socket cannot be bound.  Call at most once.
  int run();

  // Requests a graceful drain.  Async-signal-safe (one write(2) to the
  // self-pipe) and callable from any thread or signal handler; idempotent.
  void request_stop();

  // Counter snapshot; any thread, any time.
  ServeStats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  friend class ServerLoop;  // the run() implementation, in server.cpp

  const tech::Technology tech_;
  const synth::SynthOptions synth_opts_;
  const ServeOptions options_;

  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  mutable std::mutex stats_mu_;
  ServeStats stats_;
};

}  // namespace oasys::serve
