#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "shard/wire.h"
#include "synth/opamp_design.h"
#include "util/fingerprint.h"
#include "util/text.h"

namespace oasys::serve {

namespace {

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() + 1 > sizeof(addr.sun_path)) {
    throw std::runtime_error(
        util::format("serve: bad socket path '%s'", path.c_str()));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(
        util::format("serve: cannot connect to '%s': %s (is the daemon "
                     "running?)",
                     path.c_str(), std::strerror(err)));
  }
  return fd;
}

}  // namespace

MixedConnectReport run_connected_mixed(
    const std::string& socket_path, const tech::Technology& tech,
    const synth::SynthOptions& synth_opts,
    const std::vector<yield::Request>& requests) {
  // A daemon that exits mid-conversation must surface as a thrown error,
  // not SIGPIPE; scoped so a caller-installed handler survives.
  const shard::ScopedSigpipeIgnore sigpipe_guard;

  FdCloser sock{connect_unix(socket_path)};

  shard::WorkerConfig config;
  config.tech = tech;
  config.synth = synth_opts;
  config.tech_hash = util::fnv1a64(tech.canonical_string());
  config.opts_hash = util::fnv1a64(synth::canonical_string(synth_opts));
  // A failed write means the daemon hung up on us mid-upload — usually
  // because it refused the session and a kError frame is already waiting
  // in our receive buffer.  Stop writing, but fall through to the read
  // loop so the daemon's own explanation wins over a generic error.
  bool peer_closed = false;
  {
    shard::Writer w;
    shard::put_config(w, config);
    peer_closed =
        !shard::write_frame(sock.fd, shard::FrameType::kConfig, w.bytes());
  }
  for (std::size_t i = 0; i < requests.size() && !peer_closed; ++i) {
    shard::Writer w;
    w.u64(i);
    shard::put_spec(w, requests[i].spec);
    if (requests[i].is_yield) shard::put_yield_params(w, requests[i].params);
    // Optional trace context: absent (no extra bytes) for untraced
    // requests, so tracing off keeps payloads byte-identical.
    shard::put_trace_context(
        w, shard::TraceContext{requests[i].trace_id, requests[i].span_id});
    peer_closed = !shard::write_frame(
        sock.fd,
        requests[i].is_yield ? shard::FrameType::kYieldRequest
                             : shard::FrameType::kRequest,
        w.bytes());
  }
  if (!peer_closed) {
    peer_closed = !shard::write_frame(sock.fd, shard::FrameType::kRun, {});
  }

  MixedConnectReport report;
  report.outcomes.resize(requests.size());
  std::vector<bool> have(requests.size(), false);
  bool done = false;
  bool have_metrics = false;
  shard::Frame frame;
  while (!done && shard::read_frame(sock.fd, &frame)) {
    switch (frame.type) {
      case shard::FrameType::kError: {
        shard::Reader r(frame.payload);
        throw std::runtime_error("serve: daemon refused the request: " +
                                 r.str());
      }
      case shard::FrameType::kResult:
      case shard::FrameType::kYieldResult: {
        const bool is_yield = frame.type == shard::FrameType::kYieldResult;
        shard::Reader r(frame.payload);
        const std::uint64_t seq = r.u64();
        if (seq >= requests.size() || have[seq]) {
          throw shard::WireError(util::format(
              "serve: daemon sent an unexpected sequence id %llu",
              static_cast<unsigned long long>(seq)));
        }
        if (requests[seq].is_yield != is_yield) {
          throw shard::WireError(util::format(
              "serve: daemon answered sequence id %llu with the wrong "
              "result kind",
              static_cast<unsigned long long>(seq)));
        }
        const bool result_ok = r.boolean();
        yield::Outcome& o = report.outcomes[seq];
        o.is_yield = is_yield;
        if (!result_ok) {
          o.error = r.str();
          if (o.error.empty()) o.error = "unspecified daemon error";
        } else if (is_yield) {
          o.yield = shard::get_yield_result(r);
        } else {
          o.result = shard::get_result(r);
        }
        r.expect_end();
        have[seq] = true;
        break;
      }
      case shard::FrameType::kSpans: {
        shard::Reader r(frame.payload);
        shard::SpanSet set = shard::get_span_set(r);
        r.expect_end();
        report.worker_spans.push_back(std::move(set));
        break;
      }
      case shard::FrameType::kMetrics: {
        shard::Reader r(frame.payload);
        report.metrics = shard::get_metrics_snapshot(r);
        report.stats = shard::get_service_stats(r);
        r.expect_end();
        have_metrics = true;
        break;
      }
      case shard::FrameType::kDone: {
        shard::Reader r(frame.payload);
        r.expect_end();
        done = true;
        break;
      }
      default:
        throw shard::WireError(
            util::format("serve: daemon sent unexpected frame type %u",
                         static_cast<unsigned>(frame.type)));
    }
  }
  if (!done || !have_metrics) {
    throw std::runtime_error(
        "serve: daemon closed the connection mid-batch");
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!have[i]) {
      throw std::runtime_error(util::format(
          "serve: daemon completed the batch without answering spec %zu",
          i));
    }
  }
  return report;
}

ConnectReport run_connected_batch(const std::string& socket_path,
                                  const tech::Technology& tech,
                                  const synth::SynthOptions& synth_opts,
                                  const std::vector<core::OpAmpSpec>& specs,
                                  std::uint64_t trace_id) {
  std::vector<yield::Request> requests(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    requests[i].spec = specs[i];
    if (trace_id != 0) {
      requests[i].trace_id = trace_id;
      requests[i].span_id = obs::span_id_for(trace_id, i);
    }
  }
  MixedConnectReport mixed =
      run_connected_mixed(socket_path, tech, synth_opts, requests);
  ConnectReport report;
  report.outcomes.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    report.outcomes[i].result = std::move(mixed.outcomes[i].result);
    report.outcomes[i].error = std::move(mixed.outcomes[i].error);
  }
  report.metrics = std::move(mixed.metrics);
  report.stats = mixed.stats;
  report.worker_spans = std::move(mixed.worker_spans);
  return report;
}

StatusReport fetch_status(const std::string& socket_path) {
  const shard::ScopedSigpipeIgnore sigpipe_guard;
  FdCloser sock{connect_unix(socket_path)};
  if (!shard::write_frame(sock.fd, shard::FrameType::kStatus, {})) {
    throw std::runtime_error(
        "serve: daemon closed the connection before answering kStatus");
  }
  shard::Frame frame;
  if (!shard::read_frame(sock.fd, &frame)) {
    throw std::runtime_error(
        "serve: daemon closed the connection before answering kStatus");
  }
  if (frame.type == shard::FrameType::kError) {
    shard::Reader r(frame.payload);
    throw std::runtime_error("serve: daemon refused the request: " +
                             r.str());
  }
  if (frame.type != shard::FrameType::kStatus) {
    throw std::runtime_error(
        util::format("serve: daemon answered kStatus with frame type %u",
                     static_cast<unsigned>(frame.type)));
  }
  shard::Reader r(frame.payload);
  StatusReport report = get_status_report(r);
  r.expect_end();
  return report;
}

}  // namespace oasys::serve
