// Live daemon introspection: the kStatus admin frame's payload.
//
// A client sends an empty kStatus on the daemon socket (no kConfig
// needed — status is technology-agnostic) and the daemon answers with a
// kStatus carrying a StatusReport: per-worker health, shared-cache
// occupancy, in-flight requests, and uptime.  `oasys stat --connect S`
// renders it as a human table or as the canonical `oasys.status.v1`
// JSON document.
//
// Everything here is timing-class observability data: values change
// between calls and between runs, and nothing in a StatusReport ever
// feeds back into results or deterministic counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shard/wire.h"

namespace oasys::serve {

// One resident worker's health as the event loop sees it.
struct WorkerStatus {
  std::uint64_t shard = 0;
  std::int64_t pid = -1;            // -1 while down
  bool alive = false;
  bool retired = false;             // drained; never respawns
  std::uint64_t in_flight_cycles = 0;
  std::uint64_t requests_served = 0;  // results returned, all incarnations
  std::uint64_t respawns = 0;         // times this shard was respawned
  double backoff_s = 0.0;             // current respawn backoff
};

struct StatusReport {
  double uptime_s = 0.0;
  bool draining = false;
  std::uint64_t sessions_total = 0;   // connections accepted since start
  std::uint64_t sessions_active = 0;  // currently open
  std::uint64_t requests_total = 0;   // specs received across sessions
  std::uint64_t batches = 0;          // request cycles completed
  std::uint64_t in_flight = 0;        // dispatched, not yet answered
  std::uint64_t shared_cache_size = 0;
  std::uint64_t shared_cache_capacity = 0;
  std::uint64_t shared_cache_hits = 0;
  std::uint64_t shared_cache_misses = 0;
  std::uint64_t respawns = 0;
  std::uint64_t worker_timeouts = 0;
  std::uint64_t worker_errors = 0;
  std::vector<WorkerStatus> workers;

  // hits / (hits + misses); 0 when the shared tier has seen no traffic.
  double shared_cache_hit_ratio() const;
};

void put_status_report(shard::Writer& w, const StatusReport& s);
StatusReport get_status_report(shard::Reader& r);

// Canonical machine document (schema "oasys.status.v1", one object, no
// trailing newline).
std::string status_json(const StatusReport& s);

// Human rendering: a summary header plus one table row per worker.
std::string status_table(const StatusReport& s);

}  // namespace oasys::serve
