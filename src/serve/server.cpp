#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/status.h"
#include "service/lru_cache.h"
#include "shard/coordinator.h"
#include "shard/wire.h"
#include "synth/opamp_design.h"
#include "util/fingerprint.h"
#include "util/text.h"
#include "yield/yield.h"

namespace oasys::serve {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Drains as much of `buf` as the fd will take without blocking.  Returns
// false when the peer is gone (EPIPE, reset); the caller retires the peer.
bool flush_buffer(int fd, std::string* buf) {
  while (!buf->empty()) {
    const ssize_t n = ::write(fd, buf->data(),
                              std::min<std::size_t>(buf->size(), 1 << 16));
    if (n > 0) {
      buf->erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  return true;
}

void reap(pid_t pid) {
  if (pid < 0) return;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid, &status, 0);
  } while (r < 0 && errno == EINTR);
}

}  // namespace

// The whole event loop, built fresh by each Server::run() call.  Single
// threaded: every mutation of loop state happens on the polling thread;
// only the stats counters (guarded by the Server's mutex) are shared.
class ServerLoop {
 public:
  explicit ServerLoop(Server& server)
      : server_(server),
        options_(server.options_),
        tech_canon_(server.tech_.canonical_string()),
        opts_canon_(synth::canonical_string(server.synth_opts_)),
        key_prefix_(tech_canon_ + "|" + opts_canon_ + "|"),
        shared_cache_(options_.shared_cache_capacity) {}

  int run();

 private:
  // One dispatched client cycle on one worker: the global ids it must
  // answer before its kDone.
  struct Cycle {
    std::uint64_t session_id = 0;
    std::vector<std::uint64_t> gids;
  };

  struct Worker {
    pid_t pid = -1;
    int to_fd = -1;
    int from_fd = -1;
    std::string out_buf;          // pending bytes toward the worker
    shard::FrameDecoder decoder;  // partial bytes from the worker
    std::deque<Cycle> cycles;     // dispatched, kDone not yet seen
    bool alive = false;
    bool retired = false;  // drained and reaped; never respawns
    double deadline = 0.0;  // armed iff alive with in-flight cycles
    double backoff_s = 0.0;
    double respawn_at = 0.0;  // meaningful while !alive && !retired
    std::uint64_t served = 0;        // results returned, all incarnations
    std::uint64_t respawn_count = 0;  // times this shard was respawned
  };

  // Specs being accumulated for one worker between a session's kConfig
  // and its kRun.
  struct OpenCycle {
    std::vector<std::uint64_t> gids;
    std::string bytes;  // serialized kRequest frames, gid-keyed
  };

  struct Session {
    std::uint64_t id = 0;
    int fd = -1;
    std::string out_buf;
    shard::FrameDecoder decoder;
    bool got_config = false;
    bool run_seen = false;         // current cycle dispatched, not answered
    bool close_after_flush = false;
    std::uint64_t expected = 0;  // kRequests this cycle
    std::uint64_t returned = 0;  // kResults appended this cycle
    std::size_t outstanding = 0;  // dispatched worker cycles not yet kDone
    std::map<std::size_t, OpenCycle> open;
    std::vector<obs::MetricsSnapshot> snaps;       // per-cycle deltas
    std::vector<service::ServiceStats> wstats;     // cumulative, per worker
  };

  // Routing record for one request handed to a worker.  `key` is the
  // shared-cache key (for yield requests: the spec key extended with the
  // analysis parameters); routing always used the plain spec key.
  struct PendingSpec {
    std::uint64_t session_id = 0;
    std::uint64_t client_seq = 0;
    std::string key;
    std::size_t worker = 0;
    bool is_yield = false;
    std::string spec_name;        // for the slow-query record
    double dispatched_at = 0.0;   // stamped when the cycle ships (kRun)
  };

  // One shared-cache entry: which result frame type to replay, plus the
  // payload bytes after the sequence id (ok flag + encoded result).
  struct CachedAnswer {
    shard::FrameType type = shard::FrameType::kResult;
    std::string rest;
  };

  template <typename Fn>
  void bump(Fn&& fn) {
    std::lock_guard<std::mutex> lock(server_.stats_mu_);
    fn(server_.stats_);
  }

  Session* find_session(std::uint64_t id) {
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : &it->second;
  }

  std::string config_frame_bytes(std::size_t shard_index) const;
  void make_listener();
  void spawn(std::size_t i, bool respawn);
  void worker_gone(std::size_t i, bool timed_out, bool clean);
  void fail_worker_cycles(std::size_t i, bool timed_out);
  void handle_worker_frame(std::size_t i, const shard::Frame& frame);
  void accept_clients();
  void close_session(std::uint64_t id);
  void session_error(Session& s, const std::string& msg);
  void error_result(Session& s, std::uint64_t client_seq, bool is_yield,
                    const std::string& msg);
  // Returns false when the session entered a terminal state and later
  // buffered frames must not be processed.
  bool handle_session_frame(Session& s, const shard::Frame& frame);
  void maybe_complete(Session& s);
  void begin_drain();
  StatusReport build_status_report() const;
  void log_slow_request(const PendingSpec& p, double elapsed_s, bool ok);

  Server& server_;
  const ServeOptions& options_;
  const std::string tech_canon_;
  const std::string opts_canon_;
  const std::string key_prefix_;

  int listener_fd_ = -1;
  bool draining_ = false;
  double drain_start_ = 0.0;
  double start_time_ = 0.0;  // set when run() opens the loop
  std::vector<Worker> workers_;
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t next_gid_ = 1;
  std::map<std::uint64_t, PendingSpec> pending_;
  // Shared result tier: full request key -> the answer's frame type plus
  // its wire bytes after the sequence id, so a hit replays the identical
  // bytes a worker would have produced.  Synthesis answers key on the
  // plain request fingerprint; yield answers on that fingerprint extended
  // with the yield parameters, so both kinds for one spec coexist.
  service::LruCache<std::string, CachedAnswer> shared_cache_;
};

std::string ServerLoop::config_frame_bytes(std::size_t shard_index) const {
  shard::WorkerConfig config;
  config.shard = shard_index;
  config.tech = server_.tech_;
  config.synth = server_.synth_opts_;
  config.service = options_.service;
  config.tech_hash = util::fnv1a64(tech_canon_);
  config.opts_hash = util::fnv1a64(opts_canon_);
  shard::Writer w;
  shard::put_config(w, config);
  return shard::frame_bytes(shard::FrameType::kConfig, w.bytes());
}

void ServerLoop::make_listener() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  ::unlink(options_.socket_path.c_str());  // stale path from a prior run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(util::format("serve: cannot bind '%s': %s",
                                          options_.socket_path.c_str(),
                                          std::strerror(err)));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    throw std::runtime_error("serve: listen() failed");
  }
  listener_fd_ = fd;
}

void ServerLoop::spawn(std::size_t i, bool respawn) {
  Worker& wk = workers_[i];
  const shard::SpawnedWorker s =
      shard::spawn_worker_process(options_.worker_command, /*session=*/true);
  wk.pid = s.pid;
  wk.to_fd = s.to_fd;
  wk.from_fd = s.from_fd;
  set_nonblocking(wk.to_fd);
  set_nonblocking(wk.from_fd);
  wk.alive = true;
  // out_buf already leads with this incarnation's kConfig (set at
  // construction and again when the previous incarnation died), possibly
  // followed by cycles that queued up while the worker was down.
  if (!wk.cycles.empty() && options_.worker_timeout_s > 0.0) {
    wk.deadline = now_s() + options_.worker_timeout_s;
  }
  if (respawn) {
    ++wk.respawn_count;
    bump([](ServeStats& st) { ++st.respawns; });
  }
}

void ServerLoop::fail_worker_cycles(std::size_t i, bool timed_out) {
  Worker& wk = workers_[i];
  const std::string text = util::format(
      timed_out ? "serve worker %zu timed out before returning a result "
                  "for this spec"
                : "serve worker %zu died before returning a result for "
                  "this spec",
      i);
  for (Cycle& c : wk.cycles) {
    Session* s = find_session(c.session_id);
    for (const std::uint64_t gid : c.gids) {
      const auto it = pending_.find(gid);
      if (it == pending_.end()) continue;  // already answered
      if (s != nullptr) {
        error_result(*s, it->second.client_seq, it->second.is_yield, text);
        bump([](ServeStats& st) { ++st.worker_errors; });
      }
      pending_.erase(it);
    }
    if (s != nullptr) {
      --s->outstanding;
      maybe_complete(*s);
    }
  }
  wk.cycles.clear();
}

void ServerLoop::worker_gone(std::size_t i, bool timed_out, bool clean) {
  Worker& wk = workers_[i];
  close_fd(wk.to_fd);
  close_fd(wk.from_fd);
  reap(wk.pid);
  wk.pid = -1;
  wk.alive = false;
  wk.deadline = 0.0;
  wk.decoder = shard::FrameDecoder();
  wk.out_buf.clear();
  if (!clean) fail_worker_cycles(i, timed_out);
  if (draining_ && wk.cycles.empty()) {
    wk.retired = true;
    return;
  }
  // The next incarnation's conversation starts with kConfig; cycles
  // routed to this shard while it is down queue up behind it.
  wk.out_buf = config_frame_bytes(i);
  wk.respawn_at = now_s() + wk.backoff_s;
  wk.backoff_s = std::min(wk.backoff_s * 2.0, options_.backoff_max_s);
}

void ServerLoop::handle_worker_frame(std::size_t i,
                                     const shard::Frame& frame) {
  Worker& wk = workers_[i];
  if (options_.worker_timeout_s > 0.0 && !wk.cycles.empty()) {
    wk.deadline = now_s() + options_.worker_timeout_s;
  }
  switch (frame.type) {
    case shard::FrameType::kResult:
    case shard::FrameType::kYieldResult: {
      shard::Reader r(frame.payload);
      const std::uint64_t gid = r.u64();
      const bool result_ok = r.boolean();
      const auto it = pending_.find(gid);
      if (it == pending_.end() || it->second.worker != i) {
        throw shard::WireError(util::format(
            "unexpected sequence id %llu",
            static_cast<unsigned long long>(gid)));
      }
      if (it->second.is_yield !=
          (frame.type == shard::FrameType::kYieldResult)) {
        throw shard::WireError(util::format(
            "worker %zu answered sequence id %llu with the wrong result "
            "kind",
            i, static_cast<unsigned long long>(gid)));
      }
      // The bytes after the gid (ok flag + encoded result) pass through
      // verbatim: same binary on both ends, and the client validates on
      // parse.  Only successes are cached — errors must re-run.
      const std::string rest = frame.payload.substr(8);
      if (result_ok && shared_cache_.capacity() > 0) {
        shared_cache_.put(it->second.key, CachedAnswer{frame.type, rest});
      }
      if (Session* s = find_session(it->second.session_id)) {
        shard::Writer w;
        w.u64(it->second.client_seq);
        std::string payload = w.take();
        payload += rest;
        s->out_buf += shard::frame_bytes(frame.type, payload);
        ++s->returned;
      }
      ++wk.served;
      if (options_.slow_ms > 0.0 && it->second.dispatched_at > 0.0) {
        const double elapsed = now_s() - it->second.dispatched_at;
        if (elapsed * 1000.0 >= options_.slow_ms) {
          log_slow_request(it->second, elapsed, result_ok);
        }
      }
      pending_.erase(it);
      break;
    }
    case shard::FrameType::kSpans: {
      // Worker trace flushes belong to the front cycle's session; forward
      // verbatim so partial span sets from a worker that later dies still
      // reach the client (the failure-window guarantee).
      if (wk.cycles.empty()) {
        throw shard::WireError("kSpans with no cycle in flight");
      }
      if (Session* s = find_session(wk.cycles.front().session_id)) {
        s->out_buf += shard::frame_bytes(frame.type, frame.payload);
      }
      break;
    }
    case shard::FrameType::kMetrics: {
      if (wk.cycles.empty()) {
        throw shard::WireError("kMetrics with no cycle in flight");
      }
      shard::Reader r(frame.payload);
      obs::MetricsSnapshot snap = shard::get_metrics_snapshot(r);
      const service::ServiceStats stats = shard::get_service_stats(r);
      r.expect_end();
      if (Session* s = find_session(wk.cycles.front().session_id)) {
        s->snaps.push_back(std::move(snap));
        s->wstats.push_back(stats);
      }
      break;
    }
    case shard::FrameType::kDone: {
      if (wk.cycles.empty()) {
        throw shard::WireError("kDone with no cycle in flight");
      }
      shard::Reader r(frame.payload);
      r.expect_end();
      const Cycle cycle = std::move(wk.cycles.front());
      wk.cycles.pop_front();
      wk.backoff_s = options_.backoff_initial_s;  // it finished a cycle
      Session* s = find_session(cycle.session_id);
      // A kDone with unanswered gids is a worker protocol bug; answer
      // them deterministically rather than leaving the session waiting.
      for (const std::uint64_t gid : cycle.gids) {
        const auto it = pending_.find(gid);
        if (it == pending_.end()) continue;
        if (s != nullptr) {
          error_result(*s, it->second.client_seq, it->second.is_yield,
                       util::format("serve worker %zu completed a cycle "
                                    "without returning a result for this "
                                    "spec",
                                    i));
          bump([](ServeStats& st) { ++st.worker_errors; });
        }
        pending_.erase(it);
      }
      if (s != nullptr) {
        --s->outstanding;
        maybe_complete(*s);
      }
      if (wk.cycles.empty()) wk.deadline = 0.0;
      break;
    }
    default:
      throw shard::WireError(
          util::format("unexpected frame type %u",
                       static_cast<unsigned>(frame.type)));
  }
}

void ServerLoop::accept_clients() {
  for (;;) {
    const int fd = ::accept4(listener_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept failure: poll again
    }
    Session s;
    s.id = next_session_id_++;
    s.fd = fd;
    sessions_.emplace(s.id, std::move(s));
    bump([](ServeStats& st) { ++st.sessions; });
  }
}

void ServerLoop::close_session(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  close_fd(it->second.fd);
  // Pending specs keep computing (and populating the shared cache); their
  // results find no session and are dropped.
  sessions_.erase(it);
}

void ServerLoop::session_error(Session& s, const std::string& msg) {
  shard::Writer w;
  w.str(msg);
  s.out_buf += shard::frame_bytes(shard::FrameType::kError, w.bytes());
  s.close_after_flush = true;
}

void ServerLoop::error_result(Session& s, std::uint64_t client_seq,
                              bool is_yield, const std::string& msg) {
  shard::Writer w;
  w.u64(client_seq);
  w.boolean(false);
  w.str(msg);
  s.out_buf += shard::frame_bytes(
      is_yield ? shard::FrameType::kYieldResult : shard::FrameType::kResult,
      w.bytes());
  ++s.returned;
}

bool ServerLoop::handle_session_frame(Session& s, const shard::Frame& frame) {
  switch (frame.type) {
    case shard::FrameType::kConfig: {
      if (s.got_config) {
        session_error(s, "duplicate kConfig on one session");
        return false;
      }
      shard::Reader r(frame.payload);
      const shard::WorkerConfig config = shard::get_config(r);
      r.expect_end();
      if (config.tech_hash != util::fnv1a64(tech_canon_) ||
          config.opts_hash != util::fnv1a64(opts_canon_)) {
        session_error(s,
                      "technology/options fingerprint does not match the "
                      "daemon's configuration (restart the daemon with the "
                      "client's --tech/synthesis options, or match them)");
        return false;
      }
      s.got_config = true;
      return true;
    }
    case shard::FrameType::kRequest:
    case shard::FrameType::kYieldRequest: {
      const bool is_yield = frame.type == shard::FrameType::kYieldRequest;
      if (!s.got_config || s.run_seen) {
        session_error(s, s.run_seen
                             ? "kRequest while a cycle is still in flight "
                               "(pipelining is not supported)"
                             : "kRequest before kConfig");
        return false;
      }
      shard::Reader r(frame.payload);
      const std::uint64_t seq = r.u64();
      const core::OpAmpSpec spec = shard::get_spec(r);
      yield::YieldParams params;
      if (is_yield) params = shard::get_yield_params(r);
      const shard::TraceContext trace_ctx = shard::get_trace_context(r);
      r.expect_end();
      bump([](ServeStats& st) { ++st.requests; });
      ++s.expected;
      // Routing always uses the plain spec key, so synth and yield
      // traffic for one spec co-locate on one worker and share its
      // caches; the shared tier distinguishes them by cache key.
      const std::string route_key = key_prefix_ + spec.canonical_string();
      const std::string cache_key =
          is_yield ? route_key + "|yield;" + params.canonical_string()
                   : route_key;
      if (shared_cache_.capacity() > 0) {
        if (const CachedAnswer* cached = shared_cache_.get(cache_key)) {
          bump([](ServeStats& st) { ++st.shared_cache_hits; });
          shard::Writer w;
          w.u64(seq);
          std::string payload = w.take();
          payload += cached->rest;
          s.out_buf += shard::frame_bytes(cached->type, payload);
          ++s.returned;
          return true;
        }
        bump([](ServeStats& st) { ++st.shared_cache_misses; });
      }
      const std::size_t widx = shard::route(route_key, options_.workers);
      const std::uint64_t gid = next_gid_++;
      pending_[gid] =
          PendingSpec{s.id, seq, cache_key, widx, is_yield, spec.name, 0.0};
      OpenCycle& oc = s.open[widx];
      oc.gids.push_back(gid);
      shard::Writer w;
      w.u64(gid);
      shard::put_spec(w, spec);
      if (is_yield) shard::put_yield_params(w, params);
      // The client's trace context travels with the re-sequenced request,
      // so worker span sets correlate with the client's trace id.
      shard::put_trace_context(w, trace_ctx);
      oc.bytes += shard::frame_bytes(frame.type, w.bytes());
      return true;
    }
    case shard::FrameType::kRun: {
      if (!s.got_config || s.run_seen) {
        session_error(s, s.run_seen ? "kRun while a cycle is in flight"
                                    : "kRun before kConfig");
        return false;
      }
      shard::Reader r(frame.payload);
      r.expect_end();
      s.run_seen = true;
      const double dispatch_time = now_s();
      for (auto& [widx, oc] : s.open) {
        Worker& wk = workers_[widx];
        wk.out_buf += oc.bytes;
        wk.out_buf += shard::frame_bytes(shard::FrameType::kRun, {});
        for (const std::uint64_t gid : oc.gids) {
          const auto it = pending_.find(gid);
          if (it != pending_.end()) it->second.dispatched_at = dispatch_time;
        }
        wk.cycles.push_back(Cycle{s.id, std::move(oc.gids)});
        if (wk.alive && wk.cycles.size() == 1 &&
            options_.worker_timeout_s > 0.0) {
          wk.deadline = now_s() + options_.worker_timeout_s;
        }
        ++s.outstanding;
      }
      s.open.clear();
      maybe_complete(s);  // the all-hits case answers immediately
      return true;
    }
    case shard::FrameType::kStatus: {
      // Admin introspection: answerable at any point in the session,
      // including before kConfig — `oasys stat` needs no technology.
      shard::Reader r(frame.payload);
      r.expect_end();
      shard::Writer w;
      put_status_report(w, build_status_report());
      s.out_buf += shard::frame_bytes(shard::FrameType::kStatus, w.bytes());
      return true;
    }
    default:
      session_error(s, util::format("unexpected frame type %u from client",
                                    static_cast<unsigned>(frame.type)));
      return false;
  }
}

void ServerLoop::maybe_complete(Session& s) {
  if (!s.run_seen || s.outstanding != 0 || s.returned != s.expected) return;

  obs::MetricsSnapshot merged = obs::merge_snapshots(s.snaps);
  // Same reflag as the shard coordinator: exec.regions counts one batch
  // drain per worker cycle, so its merged total varies with the pool.
  for (obs::MetricEntry& e : merged.entries) {
    if (e.name == "exec.regions") e.deterministic = false;
  }
  const ServeStats st = server_.stats();
  const auto counter = [&merged](const char* name, std::uint64_t v) {
    obs::MetricEntry e;
    e.name = name;
    e.kind = obs::MetricKind::kCounter;
    e.deterministic = false;
    e.counter = v;
    merged.entries.push_back(std::move(e));
  };
  counter("serve.sessions", st.sessions);
  counter("serve.requests", st.requests);
  counter("serve.batches", st.batches + 1);  // counting this one
  counter("serve.shared_cache.hits", st.shared_cache_hits);
  counter("serve.shared_cache.misses", st.shared_cache_misses);
  counter("serve.respawns", st.respawns);
  counter("serve.worker_timeouts", st.worker_timeouts);
  counter("serve.worker_errors", st.worker_errors);
  std::sort(merged.entries.begin(), merged.entries.end(),
            [](const obs::MetricEntry& a, const obs::MetricEntry& b) {
              return a.name < b.name;
            });

  // Sum the cumulative per-worker service stats.  Percentiles do not
  // merge; count/min/mean/max do.
  service::ServiceStats sum;
  for (const service::ServiceStats& p : s.wstats) {
    sum.requests += p.requests;
    sum.hits += p.hits;
    sum.misses += p.misses;
    sum.dedup_joins += p.dedup_joins;
    sum.evictions += p.evictions;
    sum.queue_high_water = std::max(sum.queue_high_water,
                                    p.queue_high_water);
    sum.cache_size += p.cache_size;
    if (p.latency.count > 0) {
      if (sum.latency.count == 0 || p.latency.min_s < sum.latency.min_s) {
        sum.latency.min_s = p.latency.min_s;
      }
      sum.latency.max_s = std::max(sum.latency.max_s, p.latency.max_s);
      const double total = static_cast<double>(sum.latency.count) +
                           static_cast<double>(p.latency.count);
      sum.latency.mean_s =
          (sum.latency.mean_s * static_cast<double>(sum.latency.count) +
           p.latency.mean_s * static_cast<double>(p.latency.count)) /
          total;
      sum.latency.count += p.latency.count;
    }
  }

  shard::Writer w;
  shard::put_metrics_snapshot(w, merged);
  shard::put_service_stats(w, sum);
  s.out_buf += shard::frame_bytes(shard::FrameType::kMetrics, w.bytes());
  s.out_buf += shard::frame_bytes(shard::FrameType::kDone, {});
  bump([](ServeStats& stx) { ++stx.batches; });

  // Reset for a possible next cycle on the same connection.
  s.run_seen = false;
  s.expected = 0;
  s.returned = 0;
  s.snaps.clear();
  s.wstats.clear();
  if (draining_) s.close_after_flush = true;
}

StatusReport ServerLoop::build_status_report() const {
  StatusReport rep;
  rep.uptime_s = now_s() - start_time_;
  rep.draining = draining_;
  const ServeStats st = server_.stats();
  rep.sessions_total = st.sessions;
  rep.sessions_active = sessions_.size();
  rep.requests_total = st.requests;
  rep.batches = st.batches;
  rep.in_flight = pending_.size();
  rep.shared_cache_size = shared_cache_.size();
  rep.shared_cache_capacity = shared_cache_.capacity();
  rep.shared_cache_hits = st.shared_cache_hits;
  rep.shared_cache_misses = st.shared_cache_misses;
  rep.respawns = st.respawns;
  rep.worker_timeouts = st.worker_timeouts;
  rep.worker_errors = st.worker_errors;
  rep.workers.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& wk = workers_[i];
    WorkerStatus ws;
    ws.shard = i;
    ws.pid = static_cast<std::int64_t>(wk.pid);
    ws.alive = wk.alive;
    ws.retired = wk.retired;
    ws.in_flight_cycles = wk.cycles.size();
    ws.requests_served = wk.served;
    ws.respawns = wk.respawn_count;
    ws.backoff_s = wk.backoff_s;
    rep.workers.push_back(ws);
  }
  return rep;
}

void ServerLoop::log_slow_request(const PendingSpec& p, double elapsed_s,
                                  bool ok) {
  // One structured line per slow request, on stderr where the daemon's
  // operator logs already go.  Spec names come from user files, so the
  // only JSON-hostile bytes worth escaping are quotes and backslashes.
  std::string name;
  name.reserve(p.spec_name.size());
  for (const char c : p.spec_name) {
    if (c == '"' || c == '\\') name.push_back('\\');
    name.push_back(c);
  }
  std::fprintf(stderr,
               "{\"event\": \"slow_request\", \"ms\": %.3f, "
               "\"threshold_ms\": %.3f, \"spec\": \"%s\", "
               "\"kind\": \"%s\", \"worker\": %zu, \"session\": %llu, "
               "\"ok\": %s}\n",
               elapsed_s * 1000.0, options_.slow_ms, name.c_str(),
               p.is_yield ? "yield" : "synth", p.worker,
               static_cast<unsigned long long>(p.session_id),
               ok ? "true" : "false");
}

void ServerLoop::begin_drain() {
  if (draining_) return;
  draining_ = true;
  drain_start_ = now_s();
  close_fd(listener_fd_);
  ::unlink(options_.socket_path.c_str());
  // Sessions with a dispatched cycle get their answers first — left
  // untouched here, maybe_complete closes them once the full answer is
  // buffered.  Everything idle or mid-upload closes now (drain finishes
  // submitted work only).
  std::vector<std::uint64_t> to_close;
  for (auto& [id, s] : sessions_) {
    if (s.run_seen) continue;
    if (s.out_buf.empty()) {
      to_close.push_back(id);
    } else {
      s.close_after_flush = true;
    }
  }
  for (const std::uint64_t id : to_close) close_session(id);
  for (Worker& wk : workers_) {
    if (!wk.alive && wk.cycles.empty() && !wk.retired) wk.retired = true;
  }
}

int ServerLoop::run() {
  // write_frame-style buffered writes report a vanished peer via EPIPE;
  // scoped so an embedding application's handler survives.
  const shard::ScopedSigpipeIgnore sigpipe_guard;

  make_listener();
  start_time_ = now_s();
  workers_.resize(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_[i].backoff_s = options_.backoff_initial_s;
    workers_[i].out_buf = config_frame_bytes(i);
    spawn(i, /*respawn=*/false);
  }

  // poll entry bookkeeping: what each pollfd row refers to.
  enum class Kind { kWake, kListener, kWorker, kSession };
  struct Row {
    Kind kind;
    std::size_t index;     // worker index
    std::uint64_t id;      // session id
  };

  std::vector<pollfd> fds;
  std::vector<Row> rows;
  shard::Frame frame;

  for (;;) {
    // Exit once drained: no sessions, every worker retired.
    if (draining_ && sessions_.empty()) {
      bool all_retired = true;
      for (const Worker& wk : workers_) {
        if (!wk.retired) all_retired = false;
      }
      if (all_retired) break;
    }

    fds.clear();
    rows.clear();
    fds.push_back(pollfd{server_.wake_read_fd_, POLLIN, 0});
    rows.push_back(Row{Kind::kWake, 0, 0});
    if (listener_fd_ >= 0) {
      fds.push_back(pollfd{listener_fd_, POLLIN, 0});
      rows.push_back(Row{Kind::kListener, 0, 0});
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const Worker& wk = workers_[i];
      if (!wk.alive) continue;
      fds.push_back(pollfd{wk.from_fd, POLLIN, 0});
      rows.push_back(Row{Kind::kWorker, i, 0});
      if (!wk.out_buf.empty()) {
        fds.push_back(pollfd{wk.to_fd, POLLOUT, 0});
        rows.push_back(Row{Kind::kWorker, i, 0});
      }
    }
    for (auto& [id, s] : sessions_) {
      short events = s.close_after_flush ? 0 : POLLIN;
      if (!s.out_buf.empty()) events |= POLLOUT;
      if (events == 0) events = POLLOUT;  // flush-then-close sessions
      fds.push_back(pollfd{s.fd, events, 0});
      rows.push_back(Row{Kind::kSession, 0, id});
    }

    // Timeout: the nearest worker deadline or respawn time.
    double next_at = 0.0;
    bool have_next = false;
    const auto consider = [&](double at) {
      if (!have_next || at < next_at) {
        next_at = at;
        have_next = true;
      }
    };
    for (const Worker& wk : workers_) {
      if (wk.alive && !wk.cycles.empty() && wk.deadline > 0.0) {
        consider(wk.deadline);
      }
      if (!wk.alive && !wk.retired && (!draining_ || !wk.cycles.empty())) {
        consider(wk.respawn_at);
      }
    }
    int timeout_ms = -1;
    if (have_next) {
      const double remaining = next_at - now_s();
      timeout_ms = remaining <= 0.0
                       ? 0
                       : static_cast<int>(
                             std::min(remaining * 1000.0 + 1.0, 60000.0));
    }

    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error("serve: poll() failed");
    }

    if (rc > 0) {
      for (std::size_t n = 0; n < fds.size(); ++n) {
        const short revents = fds[n].revents;
        if (revents == 0) continue;
        const Row row = rows[n];
        switch (row.kind) {
          case Kind::kWake: {
            char buf[64];
            while (::read(server_.wake_read_fd_, buf, sizeof(buf)) > 0) {
            }
            begin_drain();
            break;
          }
          case Kind::kListener:
            if (!draining_) accept_clients();
            break;
          case Kind::kWorker: {
            Worker& wk = workers_[row.index];
            if (!wk.alive) break;  // already handled this iteration
            if (fds[n].fd == wk.to_fd) {
              if (!flush_buffer(wk.to_fd, &wk.out_buf)) {
                worker_gone(row.index, /*timed_out=*/false,
                            /*clean=*/false);
              }
              break;
            }
            if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) break;
            char buf[1 << 16];
            const ssize_t nread = ::read(wk.from_fd, buf, sizeof(buf));
            if (nread > 0) {
              wk.decoder.feed(std::string_view(buf,
                                               static_cast<std::size_t>(
                                                   nread)));
              try {
                while (wk.alive && wk.decoder.next(&frame)) {
                  handle_worker_frame(row.index, frame);
                }
              } catch (const shard::WireError&) {
                ::kill(wk.pid, SIGKILL);
                worker_gone(row.index, /*timed_out=*/false,
                            /*clean=*/false);
              }
            } else if (nread == 0 ||
                       (nread < 0 && errno != EAGAIN &&
                        errno != EWOULDBLOCK && errno != EINTR)) {
              const bool clean = draining_ && wk.cycles.empty() &&
                                 !wk.decoder.mid_frame();
              worker_gone(row.index, /*timed_out=*/false, clean);
            }
            break;
          }
          case Kind::kSession: {
            const auto it = sessions_.find(row.id);
            if (it == sessions_.end()) break;
            Session& s = it->second;
            if ((revents & POLLOUT) != 0 && !s.out_buf.empty()) {
              if (!flush_buffer(s.fd, &s.out_buf)) {
                close_session(row.id);
                break;
              }
            }
            if (s.close_after_flush) {
              if (s.out_buf.empty()) close_session(row.id);
              break;
            }
            if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
              char buf[1 << 16];
              const ssize_t nread = ::read(s.fd, buf, sizeof(buf));
              if (nread > 0) {
                s.decoder.feed(std::string_view(
                    buf, static_cast<std::size_t>(nread)));
                try {
                  while (s.decoder.next(&frame)) {
                    if (!handle_session_frame(s, frame)) break;
                  }
                } catch (const shard::WireError& e) {
                  session_error(s, std::string("malformed frame: ") +
                                       e.what());
                }
              } else if (nread == 0 ||
                         (nread < 0 && errno != EAGAIN &&
                          errno != EWOULDBLOCK && errno != EINTR)) {
                close_session(row.id);
              }
            }
            break;
          }
        }
      }
    }

    // Time-driven work: wedged-worker kills, scheduled respawns, and
    // worker EOF during drain.
    const double now = now_s();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& wk = workers_[i];
      if (wk.alive && !wk.cycles.empty() &&
          options_.worker_timeout_s > 0.0 && wk.deadline > 0.0 &&
          now >= wk.deadline) {
        ::kill(wk.pid, SIGKILL);
        bump([](ServeStats& st) { ++st.worker_timeouts; });
        worker_gone(i, /*timed_out=*/true, /*clean=*/false);
        continue;
      }
      if (!wk.alive && !wk.retired && now >= wk.respawn_at &&
          (!draining_ || !wk.cycles.empty())) {
        spawn(i, /*respawn=*/true);
        continue;
      }
      if (draining_ && !wk.alive && !wk.retired && wk.cycles.empty()) {
        wk.retired = true;
        continue;
      }
      if (draining_ && wk.alive && wk.cycles.empty() &&
          wk.out_buf.empty() && wk.to_fd >= 0) {
        // EOF at the cycle boundary: the session worker exits 0, the
        // read side sees EOF, and worker_gone retires it cleanly.
        close_fd(wk.to_fd);
      }
    }
  }

  const double drain_s = now_s() - drain_start_;
  bump([drain_s](ServeStats& st) { st.drain_seconds = drain_s; });
  return 0;
}

Server::Server(tech::Technology tech, synth::SynthOptions synth_opts,
               ServeOptions options)
    : tech_(std::move(tech)),
      synth_opts_(synth_opts),
      options_(std::move(options)) {
  if (options_.workers == 0) {
    throw std::invalid_argument("serve: workers must be >= 1");
  }
  if (options_.worker_command.empty()) {
    throw std::invalid_argument("serve: worker_command must be set");
  }
  if (options_.socket_path.empty()) {
    throw std::invalid_argument("serve: socket_path must be set");
  }
  sockaddr_un probe{};
  if (options_.socket_path.size() + 1 > sizeof(probe.sun_path)) {
    throw std::invalid_argument(
        util::format("serve: socket path '%s' exceeds the %zu-byte "
                     "sockaddr_un limit",
                     options_.socket_path.c_str(),
                     sizeof(probe.sun_path) - 1));
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("serve: pipe() failed");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
  ::fcntl(wake_read_fd_, F_SETFD, FD_CLOEXEC);
  ::fcntl(wake_write_fd_, F_SETFD, FD_CLOEXEC);
}

Server::~Server() {
  close_fd(wake_read_fd_);
  close_fd(wake_write_fd_);
}

int Server::run() {
  ServerLoop loop(*this);
  return loop.run();
}

void Server::request_stop() {
  const char byte = 1;
  const ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
  (void)ignored;
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace oasys::serve
