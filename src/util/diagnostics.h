// Diagnostics: structured success/failure reporting for design procedures.
//
// Design infeasibility is an *expected* outcome in a synthesis tool, not a
// programming error, so it is reported through values rather than
// exceptions.  A Diagnostic carries a severity, a short machine-matchable
// code (used by plan-patching rules), and a human-readable message.
// DiagnosticLog accumulates diagnostics during a design procedure.
//
// Exceptions (std::invalid_argument / std::logic_error) remain reserved for
// API misuse: malformed netlists, out-of-range indices, etc.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace oasys::util {

enum class Severity {
  kInfo,     // narrative of what a plan step decided
  kWarning,  // spec met only marginally, or a heuristic was overridden
  kError,    // a goal could not be met; triggers rule matching
};

std::string_view to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::kInfo;
  std::string code;     // short, stable, machine-matchable, e.g. "gain-shortfall"
  std::string message;  // human-readable detail

  std::string to_string() const;
};

// Append-only log of diagnostics; cheap to copy into design results.
class DiagnosticLog {
 public:
  void info(std::string code, std::string message);
  void warning(std::string code, std::string message);
  void error(std::string code, std::string message);
  void add(Diagnostic d);
  void append(const DiagnosticLog& other);

  bool has_errors() const;
  bool has_warnings() const;
  // First error diagnostic, or nullptr if none.
  const Diagnostic* first_error() const;
  bool contains_code(std::string_view code) const;

  const std::vector<Diagnostic>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  // Multi-line rendering, one diagnostic per line.
  std::string to_string() const;

 private:
  std::vector<Diagnostic> entries_;
};

}  // namespace oasys::util
