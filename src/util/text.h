// Small string utilities shared by the tech-file parser, the SPICE-deck
// writer, and report printing.  No locale dependence, ASCII only.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace oasys::util {

// Leading/trailing whitespace removed (space, tab, CR, LF).
std::string_view trim(std::string_view s);

// Split on any run of the characters in `delims`; empty fields dropped.
std::vector<std::string> split(std::string_view s,
                               std::string_view delims = " \t");

// Split into lines on '\n'; keeps empty lines; strips trailing '\r'.
std::vector<std::string> split_lines(std::string_view s);

std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

// Strict double parse of the whole (trimmed) token; nullopt on failure.
std::optional<double> parse_double(std::string_view s);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Engineering notation with a SPICE-style suffix: 3.2e-12 -> "3.2p".
std::string eng(double value, int significant_digits = 4);

}  // namespace oasys::util
