#include "util/diagnostics.h"

#include <sstream>

namespace oasys::util {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << "[" << oasys::util::to_string(severity) << "] " << code << ": "
     << message;
  return os.str();
}

void DiagnosticLog::info(std::string code, std::string message) {
  entries_.push_back({Severity::kInfo, std::move(code), std::move(message)});
}

void DiagnosticLog::warning(std::string code, std::string message) {
  entries_.push_back(
      {Severity::kWarning, std::move(code), std::move(message)});
}

void DiagnosticLog::error(std::string code, std::string message) {
  entries_.push_back({Severity::kError, std::move(code), std::move(message)});
}

void DiagnosticLog::add(Diagnostic d) { entries_.push_back(std::move(d)); }

void DiagnosticLog::append(const DiagnosticLog& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

bool DiagnosticLog::has_errors() const {
  for (const auto& e : entries_) {
    if (e.severity == Severity::kError) return true;
  }
  return false;
}

bool DiagnosticLog::has_warnings() const {
  for (const auto& e : entries_) {
    if (e.severity == Severity::kWarning) return true;
  }
  return false;
}

const Diagnostic* DiagnosticLog::first_error() const {
  for (const auto& e : entries_) {
    if (e.severity == Severity::kError) return &e;
  }
  return nullptr;
}

bool DiagnosticLog::contains_code(std::string_view code) const {
  for (const auto& e : entries_) {
    if (e.code == code) return true;
  }
  return false;
}

std::string DiagnosticLog::to_string() const {
  std::ostringstream os;
  for (const auto& e : entries_) os << e.to_string() << "\n";
  return os.str();
}

}  // namespace oasys::util
