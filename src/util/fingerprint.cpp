#include "util/fingerprint.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/text.h"

namespace oasys::util {

std::string canon_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0.0 ? "inf" : "-inf";
  if (v == 0.0) return "0";  // collapses -0.0, which compares equal to +0.0
  // Hand-rolled hex: key derivation sits on the service cache-hit path, and
  // snprintf is ~4x the cost of this loop there.
  std::uint64_t b = std::bit_cast<std::uint64_t>(v);
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[b & 0xfu];
    b >>= 4;
  }
  return std::string(buf, sizeof(buf));
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::size_t shard_index(std::uint64_t hash, std::size_t shards) {
  return static_cast<std::size_t>(mix64(hash) %
                                  static_cast<std::uint64_t>(shards));
}

Fingerprint& Fingerprint::field(std::string name, double v) {
  fields_.emplace_back(std::move(name), canon_double(v));
  return *this;
}

Fingerprint& Fingerprint::field(std::string name, std::string_view v) {
  fields_.emplace_back(std::move(name), std::string(v));
  return *this;
}

Fingerprint& Fingerprint::field(std::string name, const char* v) {
  return field(std::move(name), std::string_view(v));
}

Fingerprint& Fingerprint::field(std::string name, bool v) {
  fields_.emplace_back(std::move(name), v ? "1" : "0");
  return *this;
}

Fingerprint& Fingerprint::field(std::string name, long long v) {
  fields_.emplace_back(std::move(name), format("%lld", v));
  return *this;
}

std::string Fingerprint::str() const {
  // Sort pointers, not pairs: copying the field strings just to order them
  // would double the allocation count on the cache-hit path.
  std::vector<const std::pair<std::string, std::string>*> order;
  order.reserve(fields_.size());
  for (const auto& f : fields_) order.push_back(&f);
  std::stable_sort(order.begin(), order.end(),
                   [](const auto* a, const auto* b) {
                     return a->first < b->first;
                   });
  std::size_t total = 0;
  for (const auto* f : order) total += f->first.size() + f->second.size() + 2;
  std::string out;
  out.reserve(total);
  for (const auto* f : order) {
    out += f->first;
    out += '=';
    out += f->second;
    out += ';';
  }
  return out;
}

std::uint64_t Fingerprint::hash() const { return fnv1a64(str()); }

}  // namespace oasys::util
