// Plain-text table renderer used by the bench harnesses to print the
// paper's tables and figure data series in aligned columns.
#pragma once

#include <string>
#include <vector>

namespace oasys::util {

enum class Align { kLeft, kRight };

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one data row.  Rows shorter than the header are right-padded with
  // empty cells; longer rows throw std::invalid_argument.
  void add_row(std::vector<std::string> cells);
  // Adds a horizontal separator line at this position.
  void add_separator();

  void set_align(std::size_t column, Align align);

  std::size_t num_rows() const { return rows_.size(); }

  // Renders with a header rule and column padding, e.g.
  //   name   | gain (dB) | area
  //   -------+-----------+------
  //   caseA  |      62.1 | 6.5e3
  std::string to_string() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace oasys::util
