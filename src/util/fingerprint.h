// Canonical fingerprints for cache keys.
//
// The service layer caches synthesis results keyed by (technology, spec,
// options).  A key must be *stable*: two logically equal inputs must render
// the same bytes regardless of which code path populated their fields, of
// any NaN payload, or of the sign of a zero — and two different inputs must
// never alias.  This module provides the substrate: a canonical token per
// double (the exact IEEE-754 bit pattern in hex, with every NaN collapsed
// to one token and both zeros to "0") and a Fingerprint builder that
// renders named fields in name-sorted order (field-order-independent) and
// hashes the rendering with 64-bit FNV-1a.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace oasys::util {

// Canonical token for one double:
//  * every NaN (any payload, either sign) -> "nan"
//  * +0.0 and -0.0                        -> "0"
//  * +/- infinity                         -> "inf" / "-inf"
//  * everything else                      -> bit pattern as 16 hex digits
// Bit-pattern rendering (not %g) means distinct values never collide and
// the token never depends on locale or printf rounding.
std::string canon_double(double v);

// FNV-1a 64-bit over a byte string; the stable, dependency-free hash used
// for every fingerprint in the repo.
std::uint64_t fnv1a64(std::string_view bytes);

// SplitMix64 finalizer: a full-avalanche bijection over 64-bit values.
// FNV-1a is byte-serial and its low bits alone are weakly mixed; finalizing
// through this before any modulo keeps small-modulus partitions (the shard
// router's `hash % workers`) unbiased without changing key identity.
std::uint64_t mix64(std::uint64_t x);

// Key-space partition used by cross-process sharding: which of `shards`
// partitions a canonical fingerprint hash belongs to.  Stable by
// construction — the same hash maps to the same shard for a given shard
// count on every platform and in every process.  `shards` must be >= 1.
std::size_t shard_index(std::uint64_t hash, std::size_t shards);

// Builds `name=token;` canonical strings.  Fields are sorted by name when
// rendered, so the fingerprint does not depend on the order call sites
// append them.  Callers use distinct names, with dotted prefixes for
// nesting ("nmos.vt0"); duplicates are kept and sorted stably.
class Fingerprint {
 public:
  Fingerprint& field(std::string name, double v);
  Fingerprint& field(std::string name, std::string_view v);
  Fingerprint& field(std::string name, const char* v);
  Fingerprint& field(std::string name, bool v);
  Fingerprint& field(std::string name, long long v);

  // The canonical rendering: "a=tok;b=tok;..." in name-sorted order.
  std::string str() const;
  // fnv1a64(str()).
  std::uint64_t hash() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace oasys::util
