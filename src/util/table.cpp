#include "util/table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace oasys::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
  aligns_[0] = Align::kLeft;  // first column is usually a row label
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("row has more cells than table columns");
  }
  cells.resize(headers_.size());
  rows_.push_back({false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back({true, {}}); }

void Table::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) {
    throw std::invalid_argument("set_align: column out of range");
  }
  aligns_[column] = align;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto emit_cell = [&](std::ostringstream& os, const std::string& text,
                       std::size_t c) {
    const std::size_t pad = width[c] - text.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };
  auto emit_rule = [&](std::ostringstream& os) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      if (c) os << "-+-";
      os << std::string(width[c], '-');
    }
    os << "\n";
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << " | ";
    emit_cell(os, headers_[c], c);
  }
  os << "\n";
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_rule(os);
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c) os << " | ";
      emit_cell(os, row.cells[c], c);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace oasys::util
