#include "util/text.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace oasys::util {

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const auto b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    const auto b = s.find_first_not_of(delims, i);
    if (b == std::string_view::npos) break;
    auto e = s.find_first_of(delims, b);
    if (e == std::string_view::npos) e = s.size();
    out.emplace_back(s.substr(b, e - b));
    i = e;
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    auto e = s.find('\n', start);
    if (e == std::string_view::npos) e = s.size();
    std::string_view line = s.substr(start, e - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.emplace_back(line);
    if (e == s.size()) break;
    start = e + 1;
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string eng(double value, int significant_digits) {
  if (value == 0.0) return "0";
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  struct Suffix {
    double scale;
    const char* text;
  };
  static constexpr Suffix kSuffixes[] = {
      {1e9, "g"},  {1e6, "meg"}, {1e3, "k"},  {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"},  {1e-9, "n"}, {1e-12, "p"},
      {1e-15, "f"}};
  const double mag = std::abs(value);
  const Suffix* pick = &kSuffixes[3];  // unity
  for (const auto& s : kSuffixes) {
    if (mag >= s.scale * 0.9999999) {
      pick = &s;
      break;
    }
    pick = &s;  // falls through to the smallest suffix for tiny values
  }
  const double scaled = value / pick->scale;
  std::string num = format("%.*g", significant_digits, scaled);
  return num + pick->text;
}

}  // namespace oasys::util
