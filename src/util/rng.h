// Counter-based deterministic random streams.
//
// Monte-Carlo workloads (yield analysis, mismatch sampling) must reproduce
// bit-identically no matter how the samples are partitioned: across
// `--jobs` threads, across shard workers, across chunk sizes, across
// daemon vs. local execution.  A stateful generator shared between samples
// cannot give that — the draw a sample sees would depend on which samples
// ran before it.  `RngStream` therefore has no cross-sample state at all:
// a stream is a pure function of (seed, stream index), and every draw is a
// pure function of (seed, stream index, draw index).  Sample i always
// constructs `RngStream(seed, i)` and always sees the same values, whether
// it is the only sample evaluated or the millionth.
//
// The construction is SplitMix64 over the repo's existing full-avalanche
// finalizer `util::mix64`: the state walks a Weyl sequence (+= the golden
// gamma) and each output is the finalizer of the new state.  Seed and
// stream index are both avalanched (with distinct salts) before being
// combined, so adjacent seeds and adjacent stream indices yield unrelated
// sequences.  Uniform doubles use the top 53 bits (exactly representable,
// in [0, 1)); gaussians are Box-Muller with the second value of each pair
// cached, and the log() argument drawn from (0, 1] so it is never zero.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/fingerprint.h"

namespace oasys::util {

class RngStream {
 public:
  RngStream(std::uint64_t seed, std::uint64_t stream)
      : state_(mix64(seed ^ kSeedSalt) ^ mix64(stream ^ kStreamSalt)) {}

  // Next 64 uniform bits: advance the Weyl state, finalize.
  std::uint64_t next_u64() {
    state_ += kGamma;
    return mix64(state_);
  }

  // Uniform in [0, 1): top 53 bits scaled by 2^-53.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Standard normal via Box-Muller.  Consumes two uniforms per pair and
  // caches the second value, so draw order (and therefore every consumer
  // downstream) is fully deterministic.
  double next_gauss() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    // u1 in (0, 1] keeps log() finite; u2 in [0, 1).
    const double u1 =
        static_cast<double>((next_u64() >> 11) + 1) * 0x1.0p-53;
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double a = kTwoPi * u2;
    spare_ = r * std::sin(a);
    has_spare_ = true;
    return r * std::cos(a);
  }

 private:
  static constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ull;
  static constexpr std::uint64_t kSeedSalt = 0x5A75D9F3C1B20E4Dull;
  static constexpr std::uint64_t kStreamSalt = 0xA3C59AC2F0D9B1E7ull;
  static constexpr double kTwoPi = 6.283185307179586476925286766559;

  std::uint64_t state_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace oasys::util
