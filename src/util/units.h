// Physical constants and unit helpers used throughout OASYS.
//
// All internal quantities are SI (volts, amperes, farads, meters, hertz,
// seconds).  The helpers below exist so that design code can be written in
// the units analog designers actually think in (micrometers, picofarads,
// megahertz, V/us) without sprinkling raw powers of ten around.
#pragma once

#include <cmath>

namespace oasys::util {

// --- scale factors -------------------------------------------------------

inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;

constexpr double um(double v) { return v * kMicro; }    // micrometers -> m
constexpr double nm(double v) { return v * kNano; }     // nanometers -> m
constexpr double pf(double v) { return v * kPico; }     // picofarads -> F
constexpr double ff(double v) { return v * kFemto; }    // femtofarads -> F
constexpr double ua(double v) { return v * kMicro; }    // microamps -> A
constexpr double ma(double v) { return v * kMilli; }    // milliamps -> A
constexpr double mv(double v) { return v * kMilli; }    // millivolts -> V
constexpr double khz(double v) { return v * kKilo; }    // kilohertz -> Hz
constexpr double mhz(double v) { return v * kMega; }    // megahertz -> Hz
constexpr double mw(double v) { return v * kMilli; }    // milliwatts -> W
constexpr double us(double v) { return v * kMicro; }    // microseconds -> s
constexpr double ns(double v) { return v * kNano; }     // nanoseconds -> s
constexpr double v_per_us(double v) { return v * kMega; }  // V/us -> V/s

constexpr double in_um(double meters) { return meters / kMicro; }
constexpr double in_pf(double farads) { return farads / kPico; }
constexpr double in_ff(double farads) { return farads / kFemto; }
constexpr double in_ua(double amps) { return amps / kMicro; }
constexpr double in_mv(double volts) { return volts / kMilli; }
constexpr double in_mhz(double hertz) { return hertz / kMega; }
constexpr double in_khz(double hertz) { return hertz / kKilo; }
constexpr double in_mw(double watts) { return watts / kMilli; }
constexpr double in_v_per_us(double v_per_s) { return v_per_s / kMega; }
// Layout area: m^2 -> (um)^2, the unit used in the paper's Figure 7.
constexpr double in_um2(double m2) { return m2 / (kMicro * kMicro); }

// --- physical constants --------------------------------------------------

inline constexpr double kBoltzmann = 1.380649e-23;     // J/K
inline constexpr double kElectronCharge = 1.602176634e-19;  // C
inline constexpr double kEps0 = 8.8541878128e-12;      // F/m
inline constexpr double kEpsSiO2 = 3.9 * kEps0;        // F/m
inline constexpr double kEpsSi = 11.7 * kEps0;         // F/m
inline constexpr double kRoomTempK = 300.0;            // K
inline constexpr double kThermalVoltage =
    kBoltzmann * kRoomTempK / kElectronCharge;         // ~25.85 mV
inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

// --- decibels and angles --------------------------------------------------

// Voltage-ratio decibels: 20*log10 |x|.
inline double db20(double ratio) { return 20.0 * std::log10(std::abs(ratio)); }
inline double from_db20(double db) { return std::pow(10.0, db / 20.0); }
inline double db10(double ratio) { return 10.0 * std::log10(std::abs(ratio)); }

inline double deg(double radians) { return radians * 180.0 / kPi; }
inline double rad(double degrees) { return degrees * kPi / 180.0; }

// --- misc ----------------------------------------------------------------

// True when |a-b| <= atol + rtol*max(|a|,|b|).
inline bool approx_equal(double a, double b, double rtol = 1e-9,
                         double atol = 1e-12) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace oasys::util
