#include "service/service.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "exec/bounded_fifo.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "service/lru_cache.h"

namespace oasys::service {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Process-wide mirrors of the per-service counters, so `--metrics-json`
// sees service traffic without a SynthesisService handle.  Request/hit/miss
// splits depend only on the submitted workload (not on --jobs), so they are
// deterministic; queue depth and latency are not.
struct ServiceMetrics {
  obs::Counter& requests = obs::Registry::global().counter("service.requests");
  obs::Counter& hits = obs::Registry::global().counter("service.hits");
  obs::Counter& misses = obs::Registry::global().counter("service.misses");
  obs::Counter& dedup_joins =
      obs::Registry::global().counter("service.dedup_joins");
  obs::Counter& evictions =
      obs::Registry::global().counter("service.evictions");
  obs::Gauge& queue_high_water =
      obs::Registry::global().gauge("service.queue_high_water");
  obs::Histogram& latency =
      obs::Registry::global().duration_histogram("service.latency_seconds");

  static ServiceMetrics& get() {
    static ServiceMetrics m;
    return m;
  }
};

}  // namespace

// Lifecycle record of one distinct request key.  State moves strictly
// kQueued -> kRunning -> kDone under the service mutex; tickets keep the
// entry alive through shared_ptr, so a redeemed batch can outlive both the
// queue and the cache entry that produced it.
struct SynthesisService::Entry {
  enum class State { kQueued, kRunning, kDone };

  std::string key;
  core::OpAmpSpec spec;
  State state = State::kQueued;
  std::shared_ptr<const synth::SynthesisResult> result;
  std::exception_ptr error;
  std::uint64_t waiters = 1;     // tickets attached (1 + dedup joins)
  double service_seconds = 0.0;  // compute wall time; hits: lookup time
};

struct SynthesisService::Impl {
  explicit Impl(const ServiceOptions& opts)
      : queue(opts.queue_capacity),
        cache(opts.cache_enabled ? opts.cache_capacity : 0) {}

  mutable std::mutex mu;
  // Signaled when entries complete *and* when new work is enqueued, so a
  // wait()er parked on an empty queue re-checks for drainable work.
  std::condition_variable cv;

  exec::BoundedFifo<std::shared_ptr<Entry>> queue;
  LruCache<std::string, std::shared_ptr<const synth::SynthesisResult>> cache;
  std::unordered_map<std::string, std::shared_ptr<Entry>> inflight;
  std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> tickets;
  std::uint64_t next_ticket = 1;

  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t dedup_joins = 0;

  // Per-service latency distribution on the shared histogram type; stats()
  // derives count/min/mean/max/p50/p95 from one snapshot of it.
  obs::Histogram latency{obs::Histogram::duration_bounds()};

  // Requires mu.  One sample per request served by this entry completion
  // (dedup joins share the computation's wall time, once per waiter).
  void record_latency(double seconds, std::uint64_t samples) {
    for (std::uint64_t k = 0; k < samples; ++k) {
      latency.observe(seconds);
      ServiceMetrics::get().latency.observe(seconds);
    }
  }

  // Requires mu.
  Ticket attach_ticket(const std::shared_ptr<Entry>& entry) {
    const std::uint64_t id = next_ticket++;
    tickets.emplace(id, entry);
    return Ticket{id};
  }
};

SynthesisService::SynthesisService(tech::Technology tech,
                                   synth::SynthOptions synth_opts,
                                   ServiceOptions opts)
    : tech_(std::move(tech)),
      synth_opts_(synth_opts),
      opts_(opts),
      key_prefix_(tech_.canonical_string() + "|" +
                  canonical_string(synth_opts_) + "|"),
      impl_(std::make_unique<Impl>(opts_)) {}

SynthesisService::~SynthesisService() = default;

std::string SynthesisService::request_key(
    const core::OpAmpSpec& spec) const {
  return key_prefix_ + spec.canonical_string();
}

Ticket SynthesisService::submit(const core::OpAmpSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string key = request_key(spec);

  std::unique_lock<std::mutex> lock(impl_->mu);
  ServiceMetrics& metrics = ServiceMetrics::get();
  ++impl_->requests;
  metrics.requests.add();

  if (opts_.cache_enabled) {
    if (const auto* cached = impl_->cache.get(key)) {
      ++impl_->hits;
      metrics.hits.add();
      auto entry = std::make_shared<Entry>();
      entry->key = std::move(key);
      entry->state = Entry::State::kDone;
      entry->result = *cached;
      entry->service_seconds = seconds_since(t0);
      impl_->record_latency(entry->service_seconds, 1);
      return impl_->attach_ticket(entry);
    }
  }

  if (const auto it = impl_->inflight.find(key);
      it != impl_->inflight.end()) {
    ++impl_->dedup_joins;
    metrics.dedup_joins.add();
    ++it->second->waiters;
    return impl_->attach_ticket(it->second);
  }

  ++impl_->misses;
  metrics.misses.add();
  auto entry = std::make_shared<Entry>();
  entry->key = key;
  entry->spec = spec;
  impl_->inflight.emplace(std::move(key), entry);
  const Ticket ticket = impl_->attach_ticket(entry);

  // Backpressure: nothing drains the queue but callers, so a full queue is
  // drained inline here rather than blocking.  Another thread may refill
  // it between our drain and re-push, hence the loop.
  while (!impl_->queue.try_push(entry)) {
    lock.unlock();
    drain();
    lock.lock();
  }
  metrics.queue_high_water.set_max(
      static_cast<double>(impl_->queue.high_water()));
  lock.unlock();
  impl_->cv.notify_all();  // wake wait()ers parked on an empty queue
  return ticket;
}

void SynthesisService::drain() {
  std::vector<std::shared_ptr<Entry>> batch = impl_->queue.pop_all();
  if (batch.empty()) return;
  OBS_SPAN("service/drain");
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& e : batch) e->state = Entry::State::kRunning;
  }

  // Compute outside the service lock: one parallel_for over the batch in
  // FIFO order, results landing by index — exactly the structure (and
  // therefore exactly the numbers) of synthesize_opamp_batch.
  std::vector<synth::SynthesisResult> results(batch.size());
  std::vector<std::exception_ptr> errors(batch.size());
  std::vector<double> seconds(batch.size(), 0.0);
  exec::parallel_for(
      batch.size(),
      [&](std::size_t i) {
        const auto t0 = std::chrono::steady_clock::now();
        try {
          results[i] =
              synth::synthesize_opamp(tech_, batch[i]->spec, synth_opts_);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        seconds[i] = seconds_since(t0);
      },
      synth_opts_.jobs);

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const std::uint64_t evictions_before = impl_->cache.evictions();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Entry& e = *batch[i];
      e.service_seconds = seconds[i];
      e.error = errors[i];
      if (!e.error) {
        e.result = std::make_shared<const synth::SynthesisResult>(
            std::move(results[i]));
        // Failures (exceptions) are never cached; infeasible designs are
        // ordinary results and are.
        if (opts_.cache_enabled) impl_->cache.put(e.key, e.result);
      }
      e.state = Entry::State::kDone;
      impl_->inflight.erase(e.key);
      impl_->record_latency(seconds[i], e.waiters);
    }
    ServiceMetrics::get().evictions.add(impl_->cache.evictions() -
                                        evictions_before);
  }
  impl_->cv.notify_all();
}

synth::SynthesisResult SynthesisService::wait(const Ticket& ticket) {
  return wait(ticket, nullptr);
}

synth::SynthesisResult SynthesisService::wait(const Ticket& ticket,
                                              double* seconds_out) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const auto it = impl_->tickets.find(ticket.id);
  if (it == impl_->tickets.end()) {
    throw std::out_of_range(
        "SynthesisService::wait: unknown or already-redeemed ticket");
  }
  std::shared_ptr<Entry> entry = it->second;
  impl_->tickets.erase(it);

  for (;;) {
    if (entry->state == Entry::State::kDone) {
      if (entry->error) std::rethrow_exception(entry->error);
      if (seconds_out != nullptr) *seconds_out = entry->service_seconds;
      return *entry->result;
    }
    if (!impl_->queue.empty()) {
      // Pending work exists (possibly our own entry): compute it on this
      // thread instead of parking.
      lock.unlock();
      drain();
      lock.lock();
      continue;
    }
    // Our entry is being computed by another thread's drain (or is about
    // to be enqueued by a submit in flight); completion or new queue work
    // will signal.
    impl_->cv.wait(lock);
  }
}

std::vector<synth::SynthesisResult> SynthesisService::run_batch(
    const std::vector<core::OpAmpSpec>& specs) {
  std::vector<Ticket> tickets;
  tickets.reserve(specs.size());
  for (const auto& spec : specs) tickets.push_back(submit(spec));
  drain();
  std::vector<synth::SynthesisResult> out;
  out.reserve(specs.size());
  for (const Ticket& t : tickets) out.push_back(wait(t));
  return out;
}

std::vector<BatchOutcome> SynthesisService::run_batch_outcomes(
    const std::vector<core::OpAmpSpec>& specs) {
  std::vector<Ticket> tickets;
  tickets.reserve(specs.size());
  for (const auto& spec : specs) tickets.push_back(submit(spec));
  drain();
  std::vector<BatchOutcome> out;
  out.reserve(specs.size());
  for (const Ticket& t : tickets) {
    BatchOutcome o;
    try {
      o.result = wait(t, &o.seconds);
    } catch (const std::exception& e) {
      o.error = e.what();
    }
    out.push_back(std::move(o));
  }
  return out;
}

ServiceStats SynthesisService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ServiceStats s;
  s.requests = impl_->requests;
  s.hits = impl_->hits;
  s.misses = impl_->misses;
  s.dedup_joins = impl_->dedup_joins;
  s.evictions = impl_->cache.evictions();
  s.queue_depth = impl_->queue.size();
  s.queue_high_water = impl_->queue.high_water();
  s.cache_size = impl_->cache.size();
  const obs::HistogramSnapshot h = impl_->latency.snapshot();
  s.latency.count = h.count;
  s.latency.min_s = h.min;
  s.latency.max_s = h.max;
  s.latency.mean_s = h.mean();
  s.latency.p50_s = h.quantile(0.5);
  s.latency.p95_s = h.quantile(0.95);
  return s;
}

}  // namespace oasys::service
