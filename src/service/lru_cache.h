// Least-recently-used result cache for the synthesis service.
//
// A plain single-threaded container: the service serializes every access
// under its own mutex, so the cache carries no locks of its own.  get()
// promotes the entry to most-recently-used; put() evicts from the LRU end
// once over capacity and counts the displacements for the service's stats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace oasys::service {

template <typename Key, typename Value>
class LruCache {
 public:
  // Capacity 0 stores nothing: put() becomes a no-op (the service models
  // "cache disabled" this way without special-casing lookups).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return order_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  // Pointer to the cached value (promoted to MRU), or nullptr on miss.
  // Valid until the next put() on this cache.
  const Value* get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  // Membership probe without promotion (tests and diagnostics).
  bool contains(const Key& key) const { return index_.count(key) != 0; }

  // Inserts or overwrites; either way the entry becomes MRU.  Evicts the
  // least-recently-used entries while over capacity.
  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // front = most recently used
  std::unordered_map<Key,
                     typename std::list<std::pair<Key, Value>>::iterator>
      index_;
  std::uint64_t evictions_ = 0;
};

}  // namespace oasys::service
