// SynthesisService — the batch/server front half of the synthesis stack.
//
// The paper frames translation as the repeated, deterministic evaluation
// of stored circuit knowledge, which makes a synthesis result a pure
// function of (technology, spec, options).  The service exploits that
// purity: every request is canonicalized into a stable fingerprint key
// (util/fingerprint.h), repeats are served from a bounded LRU result
// cache, identical in-flight requests join one computation
// (single-flight), and queued work drains through the exec executor so
// every jobs setting returns bit-for-bit the numbers a direct
// synthesize_opamp call produces.
//
// Threading model: caller-driven — the service owns no threads.  submit()
// consults the cache and the in-flight table and enqueues at most one
// computation per distinct key into a bounded FIFO.  wait()/drain() pop
// the queue and execute pending requests through exec::parallel_for on
// the calling thread (plus pool helpers), so work happens on the threads
// that ask for results, the executor's determinism guarantee carries over
// unchanged, and a full queue drains inline instead of blocking.  Every
// public method is thread-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/spec.h"
#include "synth/oasys.h"
#include "tech/technology.h"

namespace oasys::service {

struct ServiceOptions {
  // Result cache; capacity counts distinct (technology, spec, options)
  // keys.  Disabling leaves single-flight dedup of in-flight requests on.
  bool cache_enabled = true;
  std::size_t cache_capacity = 256;
  // Pending-request FIFO bound.  A submit() that finds the queue full
  // drains it inline (computing queued requests) before enqueueing, so
  // the bound throttles memory, never liveness.
  std::size_t queue_capacity = 64;
};

// Aggregate over per-request service times [s], computed from the shared
// obs::Histogram the service records into.  count/min/mean/max are exact
// (tracked atomically alongside the buckets); the percentiles are
// bucket-interpolated estimates clamped to [min, max].
struct LatencySummary {
  std::uint64_t count = 0;
  double min_s = 0.0;
  double mean_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
};

// Snapshot of the service counters; see SynthesisService::stats().
struct ServiceStats {
  std::uint64_t requests = 0;     // submit() calls
  std::uint64_t hits = 0;         // served from the result cache
  std::uint64_t misses = 0;       // enqueued a fresh computation
  std::uint64_t dedup_joins = 0;  // joined an identical in-flight request
  std::uint64_t evictions = 0;    // LRU entries displaced
  std::size_t queue_depth = 0;       // pending requests right now
  std::size_t queue_high_water = 0;  // deepest the queue has been
  std::size_t cache_size = 0;        // resident cache entries
  // One sample per request: the synthesis wall time of the computation
  // that produced its result (shared by dedup joins) or the cache-lookup
  // time for hits.  Miss/join samples land when the computation finishes.
  LatencySummary latency;
};

// Handle for one submitted request; redeem exactly once with wait().
struct Ticket {
  std::uint64_t id = 0;
};

// Per-spec outcome of run_batch_outcomes().  `error` is empty when the
// synthesis ran to completion — the result may still have selected no
// feasible style, which is an ordinary result, not an error — and holds
// the exception's what() when the underlying synthesis threw.
struct BatchOutcome {
  synth::SynthesisResult result;
  std::string error;
  // Service time [s] for this request: compute wall time for misses
  // (shared by dedup joins), cache-lookup time for hits; 0 when the
  // synthesis threw.  Timing-bearing — never part of deterministic
  // output, but batch front-ends may sort their summaries by it.
  double seconds = 0.0;
  bool ok() const { return error.empty(); }
};

class SynthesisService {
 public:
  explicit SynthesisService(tech::Technology tech,
                            synth::SynthOptions synth_opts = {},
                            ServiceOptions opts = {});
  ~SynthesisService();
  SynthesisService(const SynthesisService&) = delete;
  SynthesisService& operator=(const SynthesisService&) = delete;

  // Registers a request and returns its ticket.  Cheap: a cache hit or an
  // in-flight join never computes; a fresh key is queued for the next
  // drain (inline only when the queue is full).
  Ticket submit(const core::OpAmpSpec& spec);

  // Returns the request's result, computing pending work as needed.
  // Tickets are one-shot; an unknown or already-redeemed ticket throws
  // std::out_of_range.  An exception thrown by the underlying synthesis
  // is rethrown here, once per attached ticket.
  synth::SynthesisResult wait(const Ticket& ticket);

  // wait() that also reports the request's service time [s] (see
  // BatchOutcome::seconds).  Left untouched when the synthesis throws.
  synth::SynthesisResult wait(const Ticket& ticket, double* seconds_out);

  // Computes everything queued right now; returns when it is done.
  void drain();

  // Synchronous batch: submit all, drain, wait all.  out[i] is bit-for-bit
  // what synthesize_opamp(technology(), specs[i], synth_options()) returns,
  // at every jobs setting, on the cold, warm-cache, and dedup-joined paths
  // alike (synthesis is a pure function of the fingerprint key).
  std::vector<synth::SynthesisResult> run_batch(
      const std::vector<core::OpAmpSpec>& specs);

  // run_batch with per-spec failure capture: an exception thrown by the
  // underlying synthesis becomes that spec's error string, in submission
  // order, instead of aborting the whole batch at the first wait().  The
  // ok() items are bit-for-bit what run_batch returns for them.  Batch
  // front-ends (CLI summary tables, shard workers) report through this so
  // one poisoned spec cannot mask the rest of the batch.
  std::vector<BatchOutcome> run_batch_outcomes(
      const std::vector<core::OpAmpSpec>& specs);

  // Counter snapshot; any thread, any time.
  ServiceStats stats() const;

  const tech::Technology& technology() const { return tech_; }
  const synth::SynthOptions& synth_options() const { return synth_opts_; }

  // The cache key submit() derives for a spec: technology and options
  // fingerprints plus the spec's canonical string.  Exposed for tests.
  std::string request_key(const core::OpAmpSpec& spec) const;

 private:
  struct Entry;
  struct Impl;

  const tech::Technology tech_;
  const synth::SynthOptions synth_opts_;
  const ServiceOptions opts_;
  const std::string key_prefix_;  // technology + options fingerprint
  std::unique_ptr<Impl> impl_;
};

}  // namespace oasys::service
