#include "spice/measure.h"

#include <cmath>

#include "numeric/interpolate.h"
#include "util/units.h"

namespace oasys::sim {

BodeSeries bode_of_node(const AcResult& ac, const MnaLayout& layout,
                        ckt::NodeId node) {
  BodeSeries out;
  out.freqs = ac.freqs;
  out.gain_db.reserve(ac.freqs.size());
  out.phase_deg.reserve(ac.freqs.size());
  double prev_phase = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < ac.freqs.size(); ++i) {
    const std::complex<double> v = ac.voltage(layout, i, node);
    const double mag = std::abs(v);
    out.gain_db.push_back(mag > 0.0 ? util::db20(mag) : -400.0);
    double phase = util::deg(std::arg(v));
    if (first) {
      // The principal value is ambiguous at the ±180° branch point: for an
      // inverting response the first sample sits at ±180° minus a little
      // lag, and rounding in the imaginary part decides which sign comes
      // back.  Seeding the unwrap from the raw value would then flip the
      // entire series by 360° run-to-run.  Fold the seed relative to the
      // DC reference: a first sample below −90° is re-read as lag past
      // +180° (a response cannot *lead* by more than a quarter turn at its
      // lowest sampled frequency), so inverting responses always start
      // near +180°.
      if (phase < -90.0) phase += 360.0;
    } else {
      // Unwrap: keep each step within half a turn of the previous sample.
      while (phase - prev_phase > 180.0) phase -= 360.0;
      while (phase - prev_phase < -180.0) phase += 360.0;
    }
    out.phase_deg.push_back(phase);
    prev_phase = phase;
    first = false;
  }
  return out;
}

LoopMetrics loop_metrics(const BodeSeries& bode) {
  LoopMetrics m;
  if (bode.freqs.empty()) return m;
  m.dc_gain_db = bode.gain_db.front();

  m.unity_gain_freq = num::first_crossing(bode.freqs, bode.gain_db, 0.0);
  if (m.unity_gain_freq) {
    const double phase_at_ugf =
        num::interp_semilogx(bode.freqs, bode.phase_deg, *m.unity_gain_freq);
    // The phase series is referenced to the low-frequency phase; a
    // non-inverting response starts near 0 degrees and the margin is the
    // distance of the accumulated phase lag from 180 degrees.
    const double phase_rel = phase_at_ugf - bode.phase_deg.front();
    m.phase_margin_deg = 180.0 + phase_rel;
  }

  // Gain margin: gain (dB) where accumulated phase lag reaches 180 degrees.
  {
    std::vector<double> lag(bode.phase_deg.size());
    for (std::size_t i = 0; i < lag.size(); ++i) {
      lag[i] = bode.phase_deg.front() - bode.phase_deg[i];
    }
    const auto f180 = num::first_crossing(bode.freqs, lag, 180.0);
    if (f180) {
      const double g = num::interp_semilogx(bode.freqs, bode.gain_db, *f180);
      m.gain_margin_db = -g;
    }
  }

  const auto f3db =
      num::first_crossing(bode.freqs, bode.gain_db, m.dc_gain_db - 3.0);
  if (f3db) m.bandwidth_3db = f3db;
  return m;
}

std::optional<SlewMeasurement> slew_rate(const TranResult& tran,
                                         const MnaLayout& layout,
                                         ckt::NodeId node) {
  if (tran.time.size() < 2) return std::nullopt;
  const std::vector<double> v = tran.node_waveform(layout, node);
  SlewMeasurement s;
  for (std::size_t i = 1; i < v.size(); ++i) {
    const double h = tran.time[i] - tran.time[i - 1];
    if (h <= 0.0) continue;
    const double d = (v[i] - v[i - 1]) / h;
    if (d > s.rising) s.rising = d;
    if (-d > s.falling) s.falling = -d;
  }
  return s;
}

std::optional<double> settling_time(const TranResult& tran,
                                    const MnaLayout& layout, ckt::NodeId node,
                                    double target, double tolerance) {
  if (tran.time.empty()) return std::nullopt;
  const std::vector<double> v = tran.node_waveform(layout, node);
  // Scan backwards for the last sample outside the band.
  std::size_t last_outside = v.size();  // sentinel: all inside
  for (std::size_t i = v.size(); i-- > 0;) {
    if (std::abs(v[i] - target) > tolerance) {
      last_outside = i;
      break;
    }
  }
  if (last_outside == v.size()) return tran.time.front();
  if (last_outside + 1 >= v.size()) return std::nullopt;  // never settles
  return tran.time[last_outside + 1];
}

}  // namespace oasys::sim
