// Small-signal AC analysis.
//
// Linearizes every MOSFET at a previously computed DC operating point
// (conductances gm/gds/gmb in terminal form, Meyer gate capacitances, and
// junction capacitances at the bias), then solves the complex MNA system at
// each requested frequency.  Independent sources contribute their AC
// phasors; DC-only sources are AC shorts (V) or opens (I).
#pragma once

#include <complex>
#include <vector>

#include "spice/dc.h"

namespace oasys::sim {

struct AcResult {
  bool ok = false;
  std::string error;
  std::vector<double> freqs;  // Hz
  // Phasor solution per frequency point (raw unknown vectors).
  std::vector<std::vector<std::complex<double>>> solutions;

  std::complex<double> voltage(const MnaLayout& layout, std::size_t freq_idx,
                               ckt::NodeId n) const {
    return layout.voltage(solutions.at(freq_idx), n);
  }
};

// Runs AC analysis over `freqs` (Hz, each > 0).  `op` must be a converged
// operating point for the same circuit.  Frequency points are independent
// solves and run on up to `jobs` threads (0 = exec::default_jobs(),
// 1 = serial); solutions land by point index, so the result is identical
// at every jobs setting.
AcResult ac_analysis(const ckt::Circuit& c, const tech::Technology& t,
                     const OpResult& op, const std::vector<double>& freqs,
                     std::size_t jobs = 0);

}  // namespace oasys::sim
