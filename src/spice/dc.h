// DC operating-point analysis.
//
// Newton-Raphson on the MNA residual with voltage-step damping.  When plain
// Newton fails to converge, gmin stepping and then source stepping are
// attempted (the standard SPICE homotopies), each warm-starting from the
// previous continuation point.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "spice/mna.h"
#include "spice/workspace.h"

namespace oasys::sim {

struct OpOptions {
  int max_iterations = 200;
  double vntol = 1e-6;     // voltage-update convergence tolerance [V]
  double abstol = 1e-9;    // residual-current convergence tolerance [A]
  double gmin = 1e-12;     // floor shunt conductance, always present
  double vlimit_step = 0.6;  // max node-voltage change per Newton step [V]
  bool try_gmin_stepping = true;
  bool try_source_stepping = true;
  // Continuation (homotopy) tuning.  Defaults reproduce the classic SPICE
  // schedule; sweeps and corner runs can loosen or tighten them per call.
  double gmin_step_start = 1e-2;  // initial shunt for gmin stepping [S]
  double gmin_step_ratio = 0.1;   // per-step gmin multiplier, in (0, 1)
  double source_step_initial = 0.1;  // first source-scale increment
  double source_step_max = 0.25;     // increment growth cap after success
  double source_step_min = 1e-3;     // give up when increment falls below
  // Warm start (raw unknown vector from a previous OpResult); empty = flat.
  std::vector<double> initial_guess;
  // MOS evaluation path: kDefault resolves to the process-wide default
  // (batch unless overridden — see spice/sim_options.h).  Scalar and batch
  // are bit-for-bit identical; this is purely a performance knob.
  DeviceEval device_eval = DeviceEval::kDefault;
};

struct OpResult {
  bool converged = false;
  std::string strategy;  // "newton", "gmin-step", "source-step"
  int total_iterations = 0;
  std::vector<double> solution;  // raw unknown vector (see MnaLayout)
  std::vector<DeviceOp> devices;  // parallel to circuit.mosfets()

  // Convenience accessors (require the layout used to produce `solution`).
  double voltage(const MnaLayout& layout, ckt::NodeId n) const {
    return layout.voltage(solution, n);
  }
  double branch_current(const MnaLayout& layout,
                        std::size_t vsource_pos) const {
    return solution[layout.branch_index(vsource_pos)];
  }
};

// Computes the DC operating point.  Never throws on non-convergence; check
// result.converged.  When `workspace` is non-null its buffers are reused
// across every Newton strategy (and across calls, letting warm-started
// sweeps run allocation-free in the kernel loop); results are bit-for-bit
// identical with or without one.
OpResult dc_operating_point(const ckt::Circuit& c, const tech::Technology& t,
                            const OpOptions& opts = {},
                            SimWorkspace* workspace = nullptr);

// Total power delivered by the independent sources at the operating point
// (positive = dissipated in the circuit).
double supply_power(const ckt::Circuit& c, const MnaLayout& layout,
                    const OpResult& op);

}  // namespace oasys::sim
