// DC sweep: repeated operating points while stepping one source's DC value,
// warm-starting each point from the previous solution.  Used for transfer
// curves, output-swing extraction, and offset bisection support.
#pragma once

#include <string>
#include <vector>

#include "spice/dc.h"

namespace oasys::sim {

struct DcSweepResult {
  bool ok = false;
  std::string error;
  std::vector<double> values;    // swept source DC values
  std::vector<OpResult> points;  // one converged OP per value (parallel)

  // Voltage of `node` across the sweep.
  std::vector<double> node_voltages(const MnaLayout& layout,
                                    ckt::NodeId node) const;
};

// Sweeps the DC value of the named voltage source over `values`.  The
// circuit is restored to its original state before returning.  Points that
// fail to converge abort the sweep (result.ok = false, error set).
DcSweepResult dc_sweep_vsource(ckt::Circuit& c, const tech::Technology& t,
                               const std::string& source_name,
                               const std::vector<double>& values,
                               const OpOptions& base_opts = {});

}  // namespace oasys::sim
