// Sweep drivers: repeated analyses while stepping one source's DC value.
//
//  * dc_sweep_vsource — operating points, warm-started point-to-point (the
//    warm start makes the points order-dependent, so this driver is serial
//    by construction);
//  * ac_sweep_vsource / tran_sweep_vsource — a full AC or transient run per
//    DC value.  Every point solves cold on a private copy of the circuit,
//    which makes points independent: they distribute over exec::parallel_for
//    lanes and land by index, identical at every jobs setting.
#pragma once

#include <string>
#include <vector>

#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/tran.h"

namespace oasys::sim {

struct DcSweepResult {
  bool ok = false;
  std::string error;
  std::vector<double> values;    // swept source DC values
  std::vector<OpResult> points;  // one converged OP per value (parallel)

  // Voltage of `node` across the sweep.
  std::vector<double> node_voltages(const MnaLayout& layout,
                                    ckt::NodeId node) const;
};

// Sweeps the DC value of the named voltage source over `values`.  The
// circuit is restored to its original state before returning.  Points that
// fail to converge abort the sweep (result.ok = false, error set).
DcSweepResult dc_sweep_vsource(ckt::Circuit& c, const tech::Technology& t,
                               const std::string& source_name,
                               const std::vector<double>& values,
                               const OpOptions& base_opts = {});

// One AC run per stepped DC value (bias sweeps, common-mode sweeps).
struct AcSweepResult {
  bool ok = false;
  std::string error;              // first failing point by index
  std::vector<double> values;     // swept source DC values
  std::vector<OpResult> ops;      // operating point per value (parallel)
  std::vector<AcResult> points;   // AC solution per value (parallel)
};

// Runs a cold operating point plus AC analysis over `freqs` at each DC
// value of the named source.  Points run on up to `jobs` threads
// (0 = exec::default_jobs()); a non-converged or failed point aborts with
// the lowest failing index reported in `error`.
AcSweepResult ac_sweep_vsource(const ckt::Circuit& c,
                               const tech::Technology& t,
                               const std::string& source_name,
                               const std::vector<double>& values,
                               const std::vector<double>& freqs,
                               const OpOptions& base_opts = {},
                               std::size_t jobs = 0);

// One transient run per stepped DC value (e.g. step response vs. bias).
struct TranSweepResult {
  bool ok = false;
  std::string error;
  std::vector<double> values;
  std::vector<OpResult> ops;
  std::vector<TranResult> runs;
};

// Runs a cold operating point plus transient integration at each DC value
// of the named source, with the same parallelism and failure rules as
// ac_sweep_vsource.
TranSweepResult tran_sweep_vsource(const ckt::Circuit& c,
                                   const tech::Technology& t,
                                   const std::string& source_name,
                                   const std::vector<double>& values,
                                   const TranOptions& tran_opts,
                                   const OpOptions& base_opts = {},
                                   std::size_t jobs = 0);

}  // namespace oasys::sim
