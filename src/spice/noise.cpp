#include "spice/noise.h"

#include <algorithm>
#include <cmath>

#include "numeric/linear.h"
#include "spice/small_signal.h"
#include "util/units.h"

namespace oasys::sim {

double NoiseResult::integrated_rms() const {
  double total = 0.0;
  for (std::size_t i = 1; i < freqs.size(); ++i) {
    total += 0.5 * (output_psd[i] + output_psd[i - 1]) *
             (freqs[i] - freqs[i - 1]);
  }
  return std::sqrt(total);
}

namespace {

// One noise source: a current source between two nodes with a
// frequency-dependent PSD [A^2/Hz].
struct NoiseSource {
  std::string element;
  std::string kind;
  ckt::NodeId a = ckt::kGround;  // current injected a -> b
  ckt::NodeId b = ckt::kGround;
  double white_psd = 0.0;    // frequency-independent part [A^2/Hz]
  double flicker_num = 0.0;  // flicker numerator: psd = flicker_num / f
};

std::vector<NoiseSource> collect_sources(const ckt::Circuit& c,
                                         const tech::Technology& t,
                                         const OpResult& op) {
  std::vector<NoiseSource> sources;
  const double four_kt = 4.0 * util::kBoltzmann * util::kRoomTempK;

  for (const auto& r : c.resistors()) {
    NoiseSource s;
    s.element = r.name;
    s.kind = "thermal";
    s.a = r.a;
    s.b = r.b;
    s.white_psd = four_kt / r.resistance;
    sources.push_back(s);
  }
  for (std::size_t k = 0; k < c.mosfets().size(); ++k) {
    const auto& m = c.mosfets()[k];
    const DeviceOp& d = op.devices[k];
    if (d.region == mos::Region::kCutoff) continue;
    const tech::MosParams& p =
        m.type == mos::MosType::kNmos ? t.nmos : t.pmos;
    // Channel thermal noise: 4kT*(2/3)*gm in saturation; in triode the
    // channel is a resistor of conductance gds: 4kT*gds.
    NoiseSource th;
    th.element = m.name;
    th.kind = "thermal";
    th.a = m.d;
    th.b = m.s;
    th.white_psd = d.region == mos::Region::kSaturation
                       ? four_kt * (2.0 / 3.0) * d.gm
                       : four_kt * d.gds;
    sources.push_back(th);
    // Flicker: kf * Id^af / (Cox * L^2 * f).
    if (p.kf > 0.0 && d.id > 0.0) {
      NoiseSource fl;
      fl.element = m.name;
      fl.kind = "flicker";
      fl.a = m.d;
      fl.b = m.s;
      fl.flicker_num = p.kf * std::pow(d.id, p.af) /
                       (t.cox * m.geom.l * m.geom.l);
      sources.push_back(fl);
    }
  }
  return sources;
}

}  // namespace

NoiseResult noise_analysis(const ckt::Circuit& c, const tech::Technology& t,
                           const OpResult& op, ckt::NodeId output,
                           const std::vector<double>& freqs) {
  NoiseResult result;
  if (!op.converged) {
    result.error = "operating point did not converge";
    return result;
  }
  const MnaLayout layout(c);
  const std::size_t n = layout.size();
  if (op.devices.size() != c.mosfets().size() || op.solution.size() != n) {
    result.error = "operating point does not match circuit";
    return result;
  }
  const int iout = layout.node_index(output);
  if (iout < 0) {
    result.error = "noise output node must not be ground";
    return result;
  }

  using Cplx = std::complex<double>;
  num::RealMatrix g;
  num::RealMatrix cap;
  build_small_signal_matrices(c, layout, op, &g, &cap);
  const std::vector<NoiseSource> sources = collect_sources(c, t, op);

  result.freqs = freqs;
  result.output_psd.assign(freqs.size(), 0.0);
  std::vector<double> last_contrib(sources.size(), 0.0);

  // Flat G/C views plus one reused matrix / factorization / solve buffer
  // across the whole frequency loop (one factorization, many injections).
  const double* g_flat = g.data();
  const double* cap_flat = cap.data();
  num::ComplexMatrix y(n, n);
  num::LuFactors<Cplx> lu;
  std::vector<Cplx> rhs(n);
  std::vector<Cplx> x(n);
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const double f = freqs[fi];
    if (!(f > 0.0)) {
      result.error = "noise frequency must be positive";
      return result;
    }
    const double w = util::kTwoPi * f;
    if (y.rows() != n || y.cols() != n) y = num::ComplexMatrix(n, n);
    fill_complex_mna(y.data(), g_flat, cap_flat, w, n * n);
    num::lu_factor_in_place(&y, &lu);
    if (lu.singular) {
      result.error = "singular noise matrix";
      return result;
    }
    double psd = 0.0;
    for (std::size_t si = 0; si < sources.size(); ++si) {
      const NoiseSource& s = sources[si];
      // Unit current injection a -> b (leaves a, enters b).
      std::fill(rhs.begin(), rhs.end(), Cplx{});
      const int ia = layout.node_index(s.a);
      const int ib = layout.node_index(s.b);
      if (ia >= 0) rhs[static_cast<std::size_t>(ia)] -= 1.0;
      if (ib >= 0) rhs[static_cast<std::size_t>(ib)] += 1.0;
      x = rhs;
      num::lu_solve_in_place(lu, &x);
      const double z2 = std::norm(x[static_cast<std::size_t>(iout)]);
      const double source_psd = s.white_psd + s.flicker_num / f;
      const double contrib = z2 * source_psd;
      psd += contrib;
      last_contrib[si] = contrib;
    }
    result.output_psd[fi] = psd;
  }

  // Rank contributors at the last analysis frequency.
  std::vector<std::size_t> order(sources.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return last_contrib[a] > last_contrib[b];
  });
  const std::size_t top = std::min<std::size_t>(order.size(), 8);
  for (std::size_t i = 0; i < top; ++i) {
    result.top_contributors.push_back({sources[order[i]].element,
                                       sources[order[i]].kind,
                                       last_contrib[order[i]]});
  }
  result.ok = true;
  return result;
}

}  // namespace oasys::sim
