#include "spice/mna.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace oasys::sim {

namespace {

// Registry handles for the batched device-eval path, resolved once per
// process.  Both counters are per-work-item sums (one batch per eval call,
// one unit per device slot), so they are deterministic and jobs-invariant.
struct DeviceEvalMetrics {
  obs::Counter& batches =
      obs::Registry::global().counter("sim.device_eval.batches");
  obs::Counter& devices =
      obs::Registry::global().counter("sim.device_eval.devices");

  static DeviceEvalMetrics& get() {
    static DeviceEvalMetrics m;
    return m;
  }
};

}  // namespace

MnaLayout::MnaLayout(const ckt::Circuit& c)
    : num_nodes_(c.num_nodes()),
      num_vsources_(c.vsources().size()),
      size_(num_nodes_ - 1 + num_vsources_) {
  if (num_nodes_ < 2) {
    throw std::invalid_argument("circuit has no non-ground nodes");
  }
}

int MnaLayout::node_index(ckt::NodeId n) const {
  if (n == ckt::kGround) return -1;
  if (n < 0 || static_cast<std::size_t>(n) >= num_nodes_) {
    throw std::out_of_range("node id out of range for layout");
  }
  return n - 1;
}

std::size_t MnaLayout::branch_index(std::size_t vsource_pos) const {
  if (vsource_pos >= num_vsources_) {
    throw std::out_of_range("vsource index out of range");
  }
  return num_nodes_ - 1 + vsource_pos;
}

double MnaLayout::voltage(const std::vector<double>& x,
                          ckt::NodeId n) const {
  const int i = node_index(n);
  return i < 0 ? 0.0 : x[static_cast<std::size_t>(i)];
}

std::complex<double> MnaLayout::voltage(
    const std::vector<std::complex<double>>& x, ckt::NodeId n) const {
  const int i = node_index(n);
  return i < 0 ? std::complex<double>{} : x[static_cast<std::size_t>(i)];
}

NonlinearSystem::NonlinearSystem(const ckt::Circuit& c,
                                 const tech::Technology& t)
    : circuit_(&c), tech_(&t), layout_(c) {}

void fill_device_caps(const tech::Technology& t, const ckt::Mosfet& m,
                      double vd, double vg, double vs, double vb,
                      DeviceOp* op) {
  (void)vg;
  const tech::MosParams& p =
      m.type == mos::MosType::kNmos ? t.nmos : t.pmos;
  const mos::GateCaps gc = mos::gate_caps(p, t.cox, m.geom, op->region);
  op->cgs = gc.cgs;
  op->cgd = gc.cgd;
  op->cgb = gc.cgb;
  // Junction reverse bias: for NMOS the drain junction is reverse biased
  // when vd > vb; for PMOS when vb > vd.
  const double sign = m.type == mos::MosType::kNmos ? 1.0 : -1.0;
  const double w_total = m.geom.w * m.geom.m;
  op->cdb = mos::junction_cap(p, t.diffusion_area(w_total),
                              t.diffusion_perimeter(w_total),
                              sign * (vd - vb));
  op->csb = mos::junction_cap(p, t.diffusion_area(w_total),
                              t.diffusion_perimeter(w_total),
                              sign * (vs - vb));
}

void NonlinearSystem::build_device_table(DeviceTable* table) const {
  const auto& mosfets = circuit_->mosfets();
  const std::size_t n = mosfets.size();
  table->batch.resize(n);
  table->sign.resize(n);
  table->d.resize(n);
  table->g.resize(n);
  table->s.resize(n);
  table->b.resize(n);
  table->swapped.resize(n);
  const tech::Technology& t = *tech_;
  for (std::size_t k = 0; k < n; ++k) {
    const auto& m = mosfets[k];
    const tech::MosParams& p =
        m.type == mos::MosType::kNmos ? t.nmos : t.pmos;
    try {
      table->batch.load_device(k, p, m.geom, m.dvt);
    } catch (const std::invalid_argument& err) {
      throw std::invalid_argument("device '" + m.name + "': " + err.what());
    }
    table->sign[k] = m.type == mos::MosType::kNmos ? 1.0 : -1.0;
    table->d[k] = layout_.node_index(m.d);
    table->g[k] = layout_.node_index(m.g);
    table->s[k] = layout_.node_index(m.s);
    table->b[k] = layout_.node_index(m.b);
  }
}

void NonlinearSystem::eval(const std::vector<double>& x,
                           const EvalOptions& opts, num::RealMatrix* jac,
                           std::vector<double>* residual,
                           std::vector<DeviceOp>* device_ops,
                           DeviceTable* devices) const {
  const std::size_t n = layout_.size();
  if (x.size() != n) {
    throw std::invalid_argument("eval: state vector size mismatch");
  }
  if (jac != nullptr &&
      (jac->rows() != n || jac->cols() != n)) {
    *jac = num::RealMatrix(n, n);
  } else if (jac != nullptr) {
    jac->fill(0.0);
  }
  if (residual != nullptr) residual->assign(n, 0.0);
  if (device_ops != nullptr) {
    device_ops->assign(circuit_->mosfets().size(), DeviceOp{});
  }

  auto add_f = [&](int row, double v) {
    if (row >= 0 && residual != nullptr) {
      (*residual)[static_cast<std::size_t>(row)] += v;
    }
  };
  auto add_j = [&](int row, int col, double v) {
    if (row >= 0 && col >= 0 && jac != nullptr) {
      (*jac)(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) +=
          v;
    }
  };
  auto source_value = [&](const ckt::Waveform& w) {
    const double raw =
        opts.time < 0.0 ? w.dc_value() : w.value(opts.time);
    return raw * opts.source_scale;
  };

  // Shunt gmin from every non-ground node to ground keeps the matrix
  // non-singular for floating gates and is the lever for gmin stepping.
  if (opts.gmin > 0.0) {
    for (std::size_t i = 0; i < layout_.num_node_unknowns(); ++i) {
      add_f(static_cast<int>(i), opts.gmin * x[i]);
      add_j(static_cast<int>(i), static_cast<int>(i), opts.gmin);
    }
  }

  for (const auto& r : circuit_->resistors()) {
    const double g = 1.0 / r.resistance;
    const int ia = layout_.node_index(r.a);
    const int ib = layout_.node_index(r.b);
    const double va = layout_.voltage(x, r.a);
    const double vb = layout_.voltage(x, r.b);
    const double i_ab = g * (va - vb);
    add_f(ia, i_ab);
    add_f(ib, -i_ab);
    add_j(ia, ia, g);
    add_j(ia, ib, -g);
    add_j(ib, ia, -g);
    add_j(ib, ib, g);
  }

  for (std::size_t k = 0; k < circuit_->vsources().size(); ++k) {
    const auto& v = circuit_->vsources()[k];
    const int ip = layout_.node_index(v.pos);
    const int in = layout_.node_index(v.neg);
    const int ibr = static_cast<int>(layout_.branch_index(k));
    const double i_branch = x[static_cast<std::size_t>(ibr)];
    // Branch current leaves the pos node.
    add_f(ip, i_branch);
    add_f(in, -i_branch);
    add_j(ip, ibr, 1.0);
    add_j(in, ibr, -1.0);
    // Branch equation: v(pos) - v(neg) = V.
    const double vp = layout_.voltage(x, v.pos);
    const double vn = layout_.voltage(x, v.neg);
    add_f(ibr, vp - vn - source_value(v.wave));
    add_j(ibr, ip, 1.0);
    add_j(ibr, in, -1.0);
  }

  for (const auto& i : circuit_->isources()) {
    const double value = source_value(i.wave);
    add_f(layout_.node_index(i.a), value);
    add_f(layout_.node_index(i.b), -value);
  }

  const tech::Technology& t = *tech_;
  if (opts.device_eval == DeviceEval::kBatch) {
    if (devices == nullptr ||
        devices->size() != circuit_->mosfets().size()) {
      throw std::logic_error(
          "eval: batch device path requires a device table built for this "
          "circuit (see NonlinearSystem::build_device_table)");
    }
    DeviceTable& tab = *devices;
    mos::CoreEvalBatch& bat = tab.batch;
    const std::size_t ndev = tab.size();

    // Re-bias pass: map node voltages into the NMOS-like frame per slot
    // (PMOS sign flip, then drain/source exchange when cvd < cvs), exactly
    // the frame mapping at the top of mos::evaluate_terminal.
    auto node_voltage = [&](int idx) {
      return idx < 0 ? 0.0 : x[static_cast<std::size_t>(idx)];
    };
    for (std::size_t k = 0; k < ndev; ++k) {
      const double sign = tab.sign[k];
      const double cvg = sign * node_voltage(tab.g[k]);
      double cvd = sign * node_voltage(tab.d[k]);
      double cvs = sign * node_voltage(tab.s[k]);
      const double cvb = sign * node_voltage(tab.b[k]);
      const bool swapped = cvd < cvs;
      if (swapped) std::swap(cvd, cvs);
      tab.swapped[k] = swapped ? 1 : 0;
      bat.vgs[k] = cvg - cvs;
      bat.vds[k] = cvd - cvs;
      bat.vbs[k] = cvb - cvs;
    }

    mos::evaluate_core_batch(&bat);
    DeviceEvalMetrics& dm = DeviceEvalMetrics::get();
    dm.batches.add();
    dm.devices.add(static_cast<std::uint64_t>(ndev));

    // Stamp pass, in device index order from the flat outputs — the same
    // accumulation order as the scalar loop, so every Jacobian/residual
    // sum is bit-identical.  The swap/sign unwinding below mirrors the
    // tail of mos::evaluate_terminal line for line.
    for (std::size_t k = 0; k < ndev; ++k) {
      const double sign = tab.sign[k];
      double id = bat.id[k];
      double di_dvg = bat.gm[k];
      double di_dvd = bat.gds[k];
      double di_dvs = -(bat.gm[k] + bat.gds[k] + bat.gmb[k]);
      double di_dvb = bat.gmb[k];
      if (tab.swapped[k] != 0) {
        id = -id;
        const double orig_dvd = -di_dvs;
        const double orig_dvs = -di_dvd;
        di_dvd = orig_dvd;
        di_dvs = orig_dvs;
        di_dvg = -di_dvg;
        di_dvb = -di_dvb;
      }
      const double id_ds = sign * id;

      const int id_ = tab.d[k];
      const int ig = tab.g[k];
      const int is = tab.s[k];
      const int ib = tab.b[k];

      add_f(id_, id_ds);
      add_f(is, -id_ds);
      add_j(id_, ig, di_dvg);
      add_j(id_, id_, di_dvd);
      add_j(id_, is, di_dvs);
      add_j(id_, ib, di_dvb);
      add_j(is, ig, -di_dvg);
      add_j(is, id_, -di_dvd);
      add_j(is, is, -di_dvs);
      add_j(is, ib, -di_dvb);

      if (device_ops != nullptr) {
        const auto& m = circuit_->mosfets()[k];
        const double vd = node_voltage(id_);
        const double vg = node_voltage(ig);
        const double vs = node_voltage(is);
        const double vb = node_voltage(ib);
        DeviceOp& op = (*device_ops)[k];
        op.region = bat.region_at(k);
        op.vgs = sign * (vg - vs);
        op.vds = sign * (vd - vs);
        op.vbs = sign * (vb - vs);
        op.id = std::abs(id_ds);
        op.vth = bat.vth[k];
        op.vov = bat.vov[k];
        op.vdsat = bat.vdsat[k];
        op.gm = bat.gm[k];
        op.gds = bat.gds[k];
        op.gmb = bat.gmb[k];
        op.id_ds = id_ds;
        op.di_dvg = di_dvg;
        op.di_dvd = di_dvd;
        op.di_dvs = di_dvs;
        op.di_dvb = di_dvb;
        fill_device_caps(t, m, vd, vg, vs, vb, &op);
      }
    }
    return;
  }

  for (std::size_t k = 0; k < circuit_->mosfets().size(); ++k) {
    const auto& m = circuit_->mosfets()[k];
    tech::MosParams p = m.type == mos::MosType::kNmos ? t.nmos : t.pmos;
    p.vt0 += m.dvt;  // per-device mismatch perturbation
    const double vd = layout_.voltage(x, m.d);
    const double vg = layout_.voltage(x, m.g);
    const double vs = layout_.voltage(x, m.s);
    const double vb = layout_.voltage(x, m.b);
    const mos::TerminalEval e =
        mos::evaluate_terminal(p, m.type, m.geom, vg, vd, vs, vb);

    const int id_ = layout_.node_index(m.d);
    const int ig = layout_.node_index(m.g);
    const int is = layout_.node_index(m.s);
    const int ib = layout_.node_index(m.b);

    add_f(id_, e.id_ds);
    add_f(is, -e.id_ds);
    add_j(id_, ig, e.di_dvg);
    add_j(id_, id_, e.di_dvd);
    add_j(id_, is, e.di_dvs);
    add_j(id_, ib, e.di_dvb);
    add_j(is, ig, -e.di_dvg);
    add_j(is, id_, -e.di_dvd);
    add_j(is, is, -e.di_dvs);
    add_j(is, ib, -e.di_dvb);

    if (device_ops != nullptr) {
      DeviceOp& op = (*device_ops)[k];
      op.region = e.region;
      const double sign = m.type == mos::MosType::kNmos ? 1.0 : -1.0;
      op.vgs = sign * (vg - vs);
      op.vds = sign * (vd - vs);
      op.vbs = sign * (vb - vs);
      op.id = std::abs(e.id_ds);
      op.vth = e.vth;
      op.vov = e.vov;
      op.vdsat = e.vdsat;
      op.gm = e.gm;
      op.gds = e.gds;
      op.gmb = e.gmb;
      op.id_ds = e.id_ds;
      op.di_dvg = e.di_dvg;
      op.di_dvd = e.di_dvd;
      op.di_dvs = e.di_dvs;
      op.di_dvb = e.di_dvb;
      fill_device_caps(t, m, vd, vg, vs, vb, &op);
    }
  }
}

void NonlinearSystem::stamp_linear_caps(num::RealMatrix* cmat) const {
  const std::size_t n = layout_.size();
  if (cmat->rows() != n || cmat->cols() != n) {
    *cmat = num::RealMatrix(n, n);
  }
  auto add = [&](int row, int col, double v) {
    if (row >= 0 && col >= 0) {
      (*cmat)(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) +=
          v;
    }
  };
  for (const auto& c : circuit_->capacitors()) {
    const int ia = layout_.node_index(c.a);
    const int ib = layout_.node_index(c.b);
    add(ia, ia, c.capacitance);
    add(ia, ib, -c.capacitance);
    add(ib, ia, -c.capacitance);
    add(ib, ib, c.capacitance);
  }
}

}  // namespace oasys::sim
