// Reusable scratch buffers for the Newton-based analyses.
//
// Every Newton iteration needs a Jacobian, a residual, a step vector, and
// an LU factorization; allocating them per iteration dominates runtime at
// op-amp-sized matrices, where the O(n^3) factor itself is tiny.  A
// SimWorkspace owns one set of these buffers and is threaded through the
// DC solver (and reused across timesteps by the transient solver), so a
// converged solve performs zero heap allocations in steady state.
//
// Buffers grow on first use for a given system size and are reused
// allocation-free afterwards; reuse across different circuits is safe (the
// buffers resize).  Not thread-safe: use one workspace per thread or lane
// (see exec::parallel_for_lanes).  Workspace contents never carry numeric
// state between solves — results are bit-for-bit identical whether a
// workspace is fresh, reused, or absent.
#pragma once

#include <vector>

#include "numeric/linear.h"
#include "spice/mna.h"

namespace oasys::sim {

struct SimWorkspace {
  num::RealMatrix jac;           // Newton Jacobian (eval fills/reuses)
  std::vector<double> residual;  // f(x)
  std::vector<double> step;      // RHS -f on entry to the solve, dx after
  num::LuFactors<double> lu;     // factorization of jac
  // SoA device table for the batched MOS path (DeviceEval::kBatch).
  // Rebuilt by each analysis for its own circuit before solving — cheap
  // constant fills, allocation-free at steady sizes — and re-biased in
  // place every eval.  Holds no cross-solve numeric state.
  DeviceTable devices;
};

}  // namespace oasys::sim
