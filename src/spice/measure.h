// Measurement extraction from analysis results.
//
// These are circuit-agnostic: they turn an AC solution at one node into a
// Bode series and frequency-domain figures of merit (DC gain, unity-gain
// frequency, phase margin, bandwidth), and a transient edge into a slew
// rate.  Op-amp-specific testbench wiring lives in synth/testbench.h.
#pragma once

#include <optional>
#include <vector>

#include "spice/ac.h"
#include "spice/tran.h"

namespace oasys::sim {

// Magnitude (dB) and unwrapped phase (degrees) of one node's phasor across
// the AC sweep.  Phase unwrapping removes +/-360 jumps so the phase-margin
// interpolation is well defined.
struct BodeSeries {
  std::vector<double> freqs;      // Hz
  std::vector<double> gain_db;
  std::vector<double> phase_deg;  // unwrapped
};

BodeSeries bode_of_node(const AcResult& ac, const MnaLayout& layout,
                        ckt::NodeId node);

// Frequency-domain figures of merit of an open-loop gain response.
struct LoopMetrics {
  double dc_gain_db = 0.0;
  // Frequency where |H| crosses 0 dB; nullopt when gain never reaches 0 dB.
  std::optional<double> unity_gain_freq;
  // 180 + phase at the unity-gain frequency (stability margin).
  std::optional<double> phase_margin_deg;
  // -(gain dB) where phase crosses -180; nullopt if no crossing in range.
  std::optional<double> gain_margin_db;
  // -3 dB bandwidth relative to the DC gain.
  std::optional<double> bandwidth_3db;
};

// `bode` must start at a frequency low enough to represent DC behaviour.
LoopMetrics loop_metrics(const BodeSeries& bode);

// Maximum |dV/dt| of `node` over the transient, evaluated on the rising
// (positive) or falling (negative) excursion.  Returns nullopt for a
// waveform with < 2 samples.
struct SlewMeasurement {
  double rising = 0.0;   // max positive dV/dt [V/s]
  double falling = 0.0;  // max negative dV/dt magnitude [V/s]
};
std::optional<SlewMeasurement> slew_rate(const TranResult& tran,
                                         const MnaLayout& layout,
                                         ckt::NodeId node);

// Time at which `node` first remains within +/-tolerance of `target` until
// the end of the record (settling time); nullopt if it never settles.
std::optional<double> settling_time(const TranResult& tran,
                                    const MnaLayout& layout, ckt::NodeId node,
                                    double target, double tolerance);

}  // namespace oasys::sim
