#include "spice/sweep.h"

namespace oasys::sim {

std::vector<double> DcSweepResult::node_voltages(const MnaLayout& layout,
                                                 ckt::NodeId node) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(layout.voltage(p.solution, node));
  return out;
}

DcSweepResult dc_sweep_vsource(ckt::Circuit& c, const tech::Technology& t,
                               const std::string& source_name,
                               const std::vector<double>& values,
                               const OpOptions& base_opts) {
  DcSweepResult result;
  const auto idx = c.find_vsource(source_name);
  if (!idx) {
    result.error = "no voltage source named '" + source_name + "'";
    return result;
  }
  const ckt::Waveform original = c.vsource(*idx).wave;

  OpOptions opts = base_opts;
  for (const double v : values) {
    c.vsource(*idx).wave = original.with_dc(v);
    OpResult op = dc_operating_point(c, t, opts);
    if (!op.converged) {
      c.vsource(*idx).wave = original;
      result.error = "sweep point did not converge at value " +
                     std::to_string(v);
      return result;
    }
    opts.initial_guess = op.solution;  // warm start the next point
    result.values.push_back(v);
    result.points.push_back(std::move(op));
  }
  c.vsource(*idx).wave = original;
  result.ok = true;
  return result;
}

}  // namespace oasys::sim
