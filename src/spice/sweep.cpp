#include "spice/sweep.h"

#include "exec/executor.h"

namespace oasys::sim {

std::vector<double> DcSweepResult::node_voltages(const MnaLayout& layout,
                                                 ckt::NodeId node) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(layout.voltage(p.solution, node));
  return out;
}

DcSweepResult dc_sweep_vsource(ckt::Circuit& c, const tech::Technology& t,
                               const std::string& source_name,
                               const std::vector<double>& values,
                               const OpOptions& base_opts) {
  DcSweepResult result;
  const auto idx = c.find_vsource(source_name);
  if (!idx) {
    result.error = "no voltage source named '" + source_name + "'";
    return result;
  }
  const ckt::Waveform original = c.vsource(*idx).wave;

  OpOptions opts = base_opts;
  // One workspace shared by every point of the warm-started sweep.  With
  // the batch device path this includes the SoA device table: each point
  // rebuilds its constants in place (sizes never change mid-sweep), so the
  // whole sweep stays allocation-free after the first point.
  SimWorkspace ws;
  for (const double v : values) {
    c.vsource(*idx).wave = original.with_dc(v);
    OpResult op = dc_operating_point(c, t, opts, &ws);
    if (!op.converged) {
      c.vsource(*idx).wave = original;
      result.error = "sweep point did not converge at value " +
                     std::to_string(v);
      return result;
    }
    opts.initial_guess = op.solution;  // warm start the next point
    result.values.push_back(v);
    result.points.push_back(std::move(op));
  }
  c.vsource(*idx).wave = original;
  result.ok = true;
  return result;
}

namespace {

// Shared setup for the point-parallel sweeps: per-point error slots whose
// lowest non-empty entry becomes the sweep error (deterministic regardless
// of which lane failed first in wall-clock terms).
bool collect_point_errors(const std::vector<std::string>& point_errors,
                          std::string* error) {
  for (const auto& e : point_errors) {
    if (!e.empty()) {
      *error = e;
      return false;
    }
  }
  return true;
}

}  // namespace

AcSweepResult ac_sweep_vsource(const ckt::Circuit& c,
                               const tech::Technology& t,
                               const std::string& source_name,
                               const std::vector<double>& values,
                               const std::vector<double>& freqs,
                               const OpOptions& base_opts, std::size_t jobs) {
  AcSweepResult result;
  const auto idx = c.find_vsource(source_name);
  if (!idx) {
    result.error = "no voltage source named '" + source_name + "'";
    return result;
  }
  result.values = values;
  result.ops.resize(values.size());
  result.points.resize(values.size());
  std::vector<std::string> point_errors(values.size());
  std::vector<SimWorkspace> lane_ws(exec::lane_count(values.size(), jobs));
  exec::parallel_for_lanes(
      values.size(),
      [&](std::size_t i, std::size_t lane) {
        ckt::Circuit local = c;  // private copy: sources mutate per point
        local.vsource(*idx).wave =
            local.vsource(*idx).wave.with_dc(values[i]);
        result.ops[i] = dc_operating_point(local, t, base_opts,
                                           &lane_ws[lane]);
        if (!result.ops[i].converged) {
          point_errors[i] = "sweep point did not converge at value " +
                            std::to_string(values[i]);
          return;
        }
        // Nested region: the per-frequency fan-out inside ac_analysis runs
        // inline on this lane.
        result.points[i] = ac_analysis(local, t, result.ops[i], freqs, jobs);
        if (!result.points[i].ok) {
          point_errors[i] = "AC failed at value " + std::to_string(values[i]) +
                            ": " + result.points[i].error;
        }
      },
      jobs);
  result.ok = collect_point_errors(point_errors, &result.error);
  return result;
}

TranSweepResult tran_sweep_vsource(const ckt::Circuit& c,
                                   const tech::Technology& t,
                                   const std::string& source_name,
                                   const std::vector<double>& values,
                                   const TranOptions& tran_opts,
                                   const OpOptions& base_opts,
                                   std::size_t jobs) {
  TranSweepResult result;
  const auto idx = c.find_vsource(source_name);
  if (!idx) {
    result.error = "no voltage source named '" + source_name + "'";
    return result;
  }
  result.values = values;
  result.ops.resize(values.size());
  result.runs.resize(values.size());
  std::vector<std::string> point_errors(values.size());
  std::vector<SimWorkspace> lane_ws(exec::lane_count(values.size(), jobs));
  exec::parallel_for_lanes(
      values.size(),
      [&](std::size_t i, std::size_t lane) {
        ckt::Circuit local = c;
        local.vsource(*idx).wave =
            local.vsource(*idx).wave.with_dc(values[i]);
        result.ops[i] = dc_operating_point(local, t, base_opts,
                                           &lane_ws[lane]);
        if (!result.ops[i].converged) {
          point_errors[i] = "sweep point did not converge at value " +
                            std::to_string(values[i]);
          return;
        }
        result.runs[i] = transient(local, t, result.ops[i], tran_opts);
        if (!result.runs[i].ok) {
          point_errors[i] = "transient failed at value " +
                            std::to_string(values[i]) + ": " +
                            result.runs[i].error;
        }
      },
      jobs);
  result.ok = collect_point_errors(point_errors, &result.error);
  return result;
}

}  // namespace oasys::sim
