// Small-signal noise analysis.
//
// Each resistor contributes thermal current noise 4kT/R and each saturated
// MOSFET contributes channel thermal noise 4kT*(2/3)*gm plus flicker noise
// kf*Id^af/(Cox*L^2*f), all modelled as current sources across their
// conducting terminals.  At every frequency the complex MNA matrix is
// factored once and each source's transfer impedance to the output node is
// obtained by one extra solve, so the cost is O(sources) back-substitutions
// per point.
//
// Output-referred noise is the PSD sum; input-referred noise divides by
// |H(f)|^2 of the chosen input source's transfer function, which the
// caller supplies via the differential gain response.
#pragma once

#include <string>
#include <vector>

#include "spice/ac.h"

namespace oasys::sim {

struct NoiseContribution {
  std::string element;   // element name
  std::string kind;      // "thermal" or "flicker"
  double psd = 0.0;      // output-referred [V^2/Hz] at the last frequency
};

struct NoiseResult {
  bool ok = false;
  std::string error;
  std::vector<double> freqs;          // Hz
  std::vector<double> output_psd;     // [V^2/Hz] per frequency
  // Largest contributors at the highest analysis frequency, sorted
  // descending (diagnostic for the designer's noise budget).
  std::vector<NoiseContribution> top_contributors;

  // Output-referred RMS noise integrated across the analysis band using
  // trapezoidal integration of the PSD [V].
  double integrated_rms() const;
};

// Computes output-referred noise at `output` across `freqs` for the
// circuit linearized at `op`.
NoiseResult noise_analysis(const ckt::Circuit& c, const tech::Technology& t,
                           const OpResult& op, ckt::NodeId output,
                           const std::vector<double>& freqs);

}  // namespace oasys::sim
