// Transient analysis.
//
// Fixed-step implicit integration (backward Euler or trapezoidal) with a
// Newton solve per time point.  Device capacitances are linearized at the
// start of each step (their bias dependence is weak compared to the channel
// current nonlinearity, which is handled fully by the Newton loop).  Used
// by the measurement layer for slew-rate and settling checks.
#pragma once

#include <string>
#include <vector>

#include "spice/dc.h"

namespace oasys::sim {

struct TranOptions {
  double tstop = 0.0;     // end time [s], > 0
  double dt = 0.0;        // fixed step [s], > 0
  bool trapezoidal = true;  // false = backward Euler
  int max_newton = 60;
  double vntol = 1e-6;
  double gmin = 1e-12;
  double vlimit_step = 0.6;
  // MOS evaluation path (see spice/sim_options.h); kDefault resolves to
  // the process-wide default.  Scalar and batch are bit-for-bit identical.
  DeviceEval device_eval = DeviceEval::kDefault;
};

struct TranResult {
  bool ok = false;
  std::string error;
  std::vector<double> time;  // sample instants, starting at t=0
  std::vector<std::vector<double>> states;  // raw unknown vector per sample

  double voltage(const MnaLayout& layout, std::size_t sample,
                 ckt::NodeId n) const {
    return layout.voltage(states.at(sample), n);
  }
  // Whole waveform of one node.
  std::vector<double> node_waveform(const MnaLayout& layout,
                                    ckt::NodeId n) const;
};

// Integrates from the DC operating point `op` (computed with t=0 source
// values) to tstop.
TranResult transient(const ckt::Circuit& c, const tech::Technology& t,
                     const OpResult& op, const TranOptions& opts);

}  // namespace oasys::sim
