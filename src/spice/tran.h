// Transient analysis.
//
// Implicit integration (backward Euler or trapezoidal) with a Newton solve
// per time point.  Device capacitances are linearized at the start of each
// step (their bias dependence is weak compared to the channel current
// nonlinearity, which is handled fully by the Newton loop).  Used by the
// measurement layer for slew-rate and settling checks.
//
// Two stepping strategies (TranMode, see spice/sim_options.h):
//
//  - kFixed: marches dt-sized steps with a shortened final step landing
//    exactly on tstop.  The permanent bitwise reference.
//  - kAdaptive: trapezoidal step with an independent backward-Euler solve
//    of the same step as an embedded error estimate.  The local error is
//    measured per state variable against atol + rtol*|x|, steps are
//    rejected and retried when it exceeds 1, and a PI controller picks the
//    next step size.  Serial and branch-deterministic, so the output is
//    bit-identical to itself across repeats, --jobs settings, shard worker
//    counts, and daemon-vs-local — but only tolerance-equal to kFixed.
#pragma once

#include <string>
#include <vector>

#include "spice/dc.h"

namespace oasys::sim {

struct TranOptions {
  double tstop = 0.0;     // end time [s], > 0
  double dt = 0.0;        // fixed step / initial adaptive step [s], > 0
  bool trapezoidal = true;  // false = backward Euler (fixed mode only)
  int max_newton = 60;
  double vntol = 1e-6;
  double gmin = 1e-12;
  double vlimit_step = 0.6;
  // MOS evaluation path (see spice/sim_options.h); kDefault resolves to
  // the process-wide default.  Scalar and batch are bit-for-bit identical.
  DeviceEval device_eval = DeviceEval::kDefault;
  // Stepping strategy; kDefault resolves to the process-wide default
  // (tran_mode_default(), normally kFixed).
  TranMode mode = TranMode::kDefault;
  // Adaptive error tolerances; values <= 0 resolve to the process-wide
  // defaults (tran_tolerance_default()).
  double rtol = 0.0;
  double atol = 0.0;
  // Adaptive step bounds; values <= 0 derive from the run: dt_min =
  // tstop * 1e-12, dt_max = tstop / 8.
  double dt_min = 0.0;
  double dt_max = 0.0;
  // Consecutive step rejections before the adaptive run gives up.
  int max_step_rejects = 40;
};

struct TranResult {
  bool ok = false;
  std::string error;
  std::vector<double> time;  // sample instants, starting at t=0
  std::vector<std::vector<double>> states;  // raw unknown vector per sample

  double voltage(const MnaLayout& layout, std::size_t sample,
                 ckt::NodeId n) const {
    return layout.voltage(states.at(sample), n);
  }
  // Whole waveform of one node.
  std::vector<double> node_waveform(const MnaLayout& layout,
                                    ckt::NodeId n) const;
  // Dense output: one node's voltage at an arbitrary time, linearly
  // interpolated between samples (clamped to the simulated range).  Works
  // identically on the fixed grid and the non-uniform adaptive grid, so
  // waveform-derived metrics never depend on where the controller placed
  // its samples.
  double voltage_at(const MnaLayout& layout, ckt::NodeId n, double t) const;
};

// Integrates from the DC operating point `op` (computed with t=0 source
// values) to tstop.
TranResult transient(const ckt::Circuit& c, const tech::Technology& t,
                     const OpResult& op, const TranOptions& opts);

}  // namespace oasys::sim
