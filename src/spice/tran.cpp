#include "spice/tran.h"

#include <algorithm>
#include <cmath>

#include "numeric/interpolate.h"
#include "numeric/linear.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "spice/workspace.h"

namespace oasys::sim {

namespace {

// Registry handles for the transient engine, resolved once per process.
struct TranMetrics {
  obs::Counter& runs = obs::Registry::global().counter("sim.tran.runs");
  obs::Counter& steps =
      obs::Registry::global().counter("sim.tran.steps_accepted");
  obs::Counter& iterations =
      obs::Registry::global().counter("sim.tran.newton_iterations");
  obs::Counter& rejections =
      obs::Registry::global().counter("sim.tran.step_rejections");
  obs::Counter& adaptive_steps =
      obs::Registry::global().counter("tran.adaptive.steps");
  obs::Counter& adaptive_rejects =
      obs::Registry::global().counter("tran.adaptive.rejects");
  // Smallest accepted adaptive step: a low-water gauge, merged with kMin so
  // the shard coordinator's aggregate is invariant to how requests were
  // partitioned across workers.
  obs::Gauge& adaptive_min_dt = obs::Registry::global().gauge(
      "tran.adaptive.min_dt", /*deterministic=*/true, obs::GaugeMerge::kMin);

  static TranMetrics& get() {
    static TranMetrics m;
    return m;
  }
};

}  // namespace

std::vector<double> TranResult::node_waveform(const MnaLayout& layout,
                                              ckt::NodeId n) const {
  std::vector<double> out;
  out.reserve(states.size());
  for (const auto& s : states) out.push_back(layout.voltage(s, n));
  return out;
}

double TranResult::voltage_at(const MnaLayout& layout, ckt::NodeId n,
                              double t) const {
  return num::interp_linear(time, node_waveform(layout, n), t);
}

namespace {

// Builds the capacitance matrix into `*cmat_out` (reused across timesteps):
// explicit capacitors plus device capacitances evaluated from `device_ops`
// (bias at the previous accepted time point).
void build_cap_matrix(const NonlinearSystem& sys,
                      const std::vector<DeviceOp>& device_ops,
                      num::RealMatrix* cmat_out) {
  const MnaLayout& layout = sys.layout();
  const std::size_t n = layout.size();
  num::RealMatrix& cmat = *cmat_out;
  if (cmat.rows() != n || cmat.cols() != n) {
    cmat = num::RealMatrix(n, n);
  } else {
    cmat.fill(0.0);  // stamp_linear_caps accumulates
  }
  sys.stamp_linear_caps(&cmat);
  auto add2 = [&](ckt::NodeId a, ckt::NodeId b, double value) {
    const int ia = layout.node_index(a);
    const int ib = layout.node_index(b);
    if (ia >= 0) cmat(static_cast<std::size_t>(ia),
                      static_cast<std::size_t>(ia)) += value;
    if (ib >= 0) cmat(static_cast<std::size_t>(ib),
                      static_cast<std::size_t>(ib)) += value;
    if (ia >= 0 && ib >= 0) {
      cmat(static_cast<std::size_t>(ia), static_cast<std::size_t>(ib)) -=
          value;
      cmat(static_cast<std::size_t>(ib), static_cast<std::size_t>(ia)) -=
          value;
    }
  };
  const auto& mosfets = sys.circuit().mosfets();
  for (std::size_t k = 0; k < mosfets.size(); ++k) {
    const auto& m = mosfets[k];
    const DeviceOp& d = device_ops[k];
    add2(m.g, m.s, d.cgs);
    add2(m.g, m.d, d.cgd);
    add2(m.g, m.b, d.cgb);
    add2(m.d, m.b, d.cdb);
    add2(m.s, m.b, d.csb);
  }
}

enum class StepStatus { kConverged, kNoConverge, kSingular };

// One implicit step of size h ending at `time`, shared by both stepping
// strategies: a full Newton solve of the companion-model system.  `*x_io`
// carries the initial guess in and the solution out (left mid-iteration on
// failure — callers retry from a fresh copy).  The arithmetic is the exact
// fixed-step reference sequence, so the fixed path stays bit-identical to
// what it always produced.
struct StepContext {
  NonlinearSystem& sys;
  SimWorkspace& ws;
  const num::RealMatrix& cmat;
  const TranOptions& opts;
  DeviceEval device_eval;
  std::size_t n;
  std::size_t nv;

  StepStatus solve(double time, double h, bool trapezoidal,
                   const std::vector<double>& x_prev,
                   const std::vector<double>& dvdt_prev,
                   std::vector<double>* x_io) const {
    TranMetrics& metrics = TranMetrics::get();
    std::vector<double>& x = *x_io;
    num::RealMatrix& jac = ws.jac;
    std::vector<double>& f = ws.residual;
    std::vector<double>& dx = ws.step;

    NonlinearSystem::EvalOptions eval_opts;
    eval_opts.gmin = opts.gmin;
    eval_opts.time = time;
    eval_opts.device_eval = device_eval;

    // Companion coefficients.  i_C = C dv/dt.  Backward Euler:
    // i = C (x - x_prev)/h.  Trapezoidal: i = 2C/h (x - x_prev) - C*dvdt_prev.
    const double a = trapezoidal ? 2.0 / h : 1.0 / h;
    for (int iter = 0; iter < opts.max_newton; ++iter) {
      metrics.iterations.add();
      sys.eval(x, eval_opts, &jac, &f, nullptr, &ws.devices);
      // Add capacitive currents: f += C*(a*(x - x_prev)) - hist
      // where hist = C*dvdt_prev for trapezoidal, 0 for BE.
      for (std::size_t r = 0; r < n; ++r) {
        double acc = 0.0;
        const double* crow = cmat.row(r);
        for (std::size_t col = 0; col < n; ++col) {
          const double cv = crow[col];
          if (cv != 0.0) {
            acc += cv * a * (x[col] - x_prev[col]);
            if (trapezoidal) acc -= cv * dvdt_prev[col];
          }
          if (cv != 0.0) jac(r, col) += cv * a;
        }
        f[r] += acc;
      }

      num::lu_factor_in_place(&jac, &ws.lu);
      if (ws.lu.singular) return StepStatus::kSingular;
      dx.resize(n);
      for (std::size_t i = 0; i < n; ++i) dx[i] = -f[i];
      num::lu_solve_in_place(ws.lu, &dx);
      double max_dv = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        max_dv = std::max(max_dv, std::abs(dx[i]));
      }
      double scale = 1.0;
      if (max_dv > opts.vlimit_step) scale = opts.vlimit_step / max_dv;
      for (std::size_t i = 0; i < n; ++i) x[i] += scale * dx[i];
      if (max_dv < opts.vntol) return StepStatus::kConverged;
    }
    return StepStatus::kNoConverge;
  }
};

}  // namespace

TranResult transient(const ckt::Circuit& c, const tech::Technology& t,
                     const OpResult& op, const TranOptions& opts) {
  TranMetrics& metrics = TranMetrics::get();
  metrics.runs.add();
  OBS_SPAN("sim/transient");
  TranResult result;
  if (!op.converged) {
    result.error = "initial operating point did not converge";
    return result;
  }
  if (!(opts.tstop > 0.0) || !(opts.dt > 0.0)) {
    result.error = "tstop and dt must be positive";
    return result;
  }

  NonlinearSystem sys(c, t);
  const MnaLayout& layout = sys.layout();
  const std::size_t n = layout.size();
  const std::size_t nv = layout.num_node_unknowns();

  std::vector<double> x = op.solution;
  std::vector<DeviceOp> device_ops = op.devices;
  if (device_ops.size() != c.mosfets().size()) {
    device_ops.assign(c.mosfets().size(), DeviceOp{});
  }

  result.time.push_back(0.0);
  result.states.push_back(x);

  num::RealMatrix cmat;
  build_cap_matrix(sys, device_ops, &cmat);
  std::vector<double> dvdt_prev(n, 0.0);  // starts from DC: dv/dt = 0

  // One workspace for every Newton iteration of every timestep: after the
  // first iteration the stepping loop allocates only the accepted states.
  SimWorkspace ws;
  const DeviceEval device_eval = resolve_device_eval(opts.device_eval);
  if (device_eval == DeviceEval::kBatch) {
    sys.build_device_table(&ws.devices);
  }

  const StepContext ctx{sys, ws, cmat, opts, device_eval, n, nv};
  NonlinearSystem::EvalOptions refresh_opts;
  refresh_opts.gmin = opts.gmin;
  refresh_opts.device_eval = device_eval;

  // Accepts a step ending at `time` with solution `x_new`: trapezoidal
  // history update, device-capacitance refresh at the new bias, and the
  // new sample.
  const auto accept = [&](double time, double h,
                          const std::vector<double>& x_new) {
    const std::vector<double>& x_prev = result.states.back();
    const double a = 2.0 / h;
    for (std::size_t i = 0; i < n; ++i) {
      dvdt_prev[i] = a * (x_new[i] - x_prev[i]) - dvdt_prev[i];
    }
    refresh_opts.time = time;
    sys.eval(x_new, refresh_opts, nullptr, nullptr, &device_ops, &ws.devices);
    build_cap_matrix(sys, device_ops, &cmat);
    result.time.push_back(time);
    result.states.push_back(x_new);
    metrics.steps.add();
  };

  if (resolve_tran_mode(opts.mode) == TranMode::kFixed) {
    std::size_t step = 0;
    while (result.time.back() < opts.tstop) {
      ++step;
      double time = static_cast<double>(step) * opts.dt;
      // Shortened (or snapped) final step: the last sample lands exactly
      // on tstop even when tstop is not an integer multiple of dt.
      if (time >= opts.tstop) time = opts.tstop;
      const double h = time - result.time.back();
      if (h <= 0.0) break;
      const StepStatus status = ctx.solve(time, h, opts.trapezoidal,
                                          result.states.back(), dvdt_prev, &x);
      if (status == StepStatus::kSingular) {
        result.error = "singular transient Jacobian";
        return result;
      }
      if (status == StepStatus::kNoConverge) {
        // The fixed-step integrator has no retry-with-smaller-h path, so a
        // rejected step ends the run; the counter still attributes the
        // failure mode.
        metrics.rejections.add();
        result.error = "transient Newton failed at t=" + std::to_string(time);
        return result;
      }
      if (opts.trapezoidal) {
        accept(time, h, x);
      } else {
        refresh_opts.time = time;
        sys.eval(x, refresh_opts, nullptr, nullptr, &device_ops, &ws.devices);
        build_cap_matrix(sys, device_ops, &cmat);
        result.time.push_back(time);
        result.states.push_back(x);
        metrics.steps.add();
      }
    }
    result.ok = true;
    return result;
  }

  // ---- Adaptive: trapezoidal with an embedded backward-Euler estimate ----
  //
  // Every candidate step is solved twice from the same starting point:
  // trapezoidal (second order, the propagating solution) and backward
  // Euler (first order).  Their difference is a per-variable local-error
  // estimate; the weighted max norm over the node voltages decides
  // accept/reject and feeds a PI controller for the next step size.  The
  // loop is serial with deterministic branching, so repeated runs are
  // bit-identical regardless of thread counts anywhere else in the stack.
  OBS_SPAN("tran/adaptive");
  const TranTolerance defaults = tran_tolerance_default();
  const double rtol = opts.rtol > 0.0 ? opts.rtol : defaults.rtol;
  const double atol = opts.atol > 0.0 ? opts.atol : defaults.atol;
  const double dt_min = opts.dt_min > 0.0 ? opts.dt_min : opts.tstop * 1e-12;
  const double dt_max = opts.dt_max > 0.0 ? opts.dt_max : opts.tstop / 8.0;
  double h = std::clamp(opts.dt, dt_min, dt_max);
  double norm_prev = 1.0;
  int consecutive_rejects = 0;
  std::vector<double> x_trap;
  std::vector<double> x_be;
  while (result.time.back() < opts.tstop) {
    const double t_prev = result.time.back();
    double time = t_prev + h;
    if (time >= opts.tstop) time = opts.tstop;  // exact landing
    const double h_try = time - t_prev;
    if (h_try <= 0.0) break;  // cannot advance in double precision

    const std::vector<double>& x_prev = result.states.back();
    x_trap = x_prev;
    StepStatus status =
        ctx.solve(time, h_try, /*trapezoidal=*/true, x_prev, dvdt_prev,
                  &x_trap);
    if (status == StepStatus::kSingular) {
      result.error = "singular transient Jacobian";
      return result;
    }
    double err_norm = 0.0;
    if (status == StepStatus::kConverged) {
      x_be = x_prev;
      const StepStatus be_status =
          ctx.solve(time, h_try, /*trapezoidal=*/false, x_prev, dvdt_prev,
                    &x_be);
      if (be_status == StepStatus::kSingular) {
        result.error = "singular transient Jacobian";
        return result;
      }
      if (be_status == StepStatus::kConverged) {
        for (std::size_t i = 0; i < nv; ++i) {
          const double err = std::abs(x_trap[i] - x_be[i]);
          const double weight = atol + rtol * std::abs(x_trap[i]);
          err_norm = std::max(err_norm, err / weight);
        }
      } else {
        status = StepStatus::kNoConverge;
      }
    }

    if (status == StepStatus::kConverged && err_norm <= 1.0) {
      accept(time, h_try, x_trap);
      metrics.adaptive_steps.add();
      metrics.adaptive_min_dt.set_min(h_try);
      consecutive_rejects = 0;
      // PI controller: grow on a small error estimate, damped by the
      // previous step's error so the step size doesn't oscillate.
      const double norm = std::max(err_norm, 1e-10);
      const double factor = std::clamp(
          0.9 * std::pow(norm, -0.35) * std::pow(norm_prev, 0.2), 0.2, 5.0);
      norm_prev = norm;
      h = std::clamp(h_try * factor, dt_min, dt_max);
    } else {
      metrics.adaptive_rejects.add();
      ++consecutive_rejects;
      if (consecutive_rejects > opts.max_step_rejects) {
        result.error = "adaptive transient gave up after " +
                       std::to_string(consecutive_rejects) +
                       " consecutive step rejections at t=" +
                       std::to_string(time);
        return result;
      }
      // Error too large: shrink by the estimate.  Newton failure: the step
      // was far too big for the nonlinearity — quarter it.
      const double factor =
          status == StepStatus::kConverged
              ? std::clamp(0.9 * std::pow(std::max(err_norm, 1e-10), -0.5),
                           0.1, 0.5)
              : 0.25;
      h = h_try * factor;
      if (h < dt_min) {
        result.error =
            "adaptive transient step underflow at t=" + std::to_string(time);
        return result;
      }
    }
  }
  result.ok = true;
  return result;
}

}  // namespace oasys::sim
