#include "spice/tran.h"

#include <algorithm>
#include <cmath>

#include "numeric/linear.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "spice/workspace.h"

namespace oasys::sim {

namespace {

// Registry handles for the transient engine, resolved once per process.
struct TranMetrics {
  obs::Counter& runs = obs::Registry::global().counter("sim.tran.runs");
  obs::Counter& steps =
      obs::Registry::global().counter("sim.tran.steps_accepted");
  obs::Counter& iterations =
      obs::Registry::global().counter("sim.tran.newton_iterations");
  obs::Counter& rejections =
      obs::Registry::global().counter("sim.tran.step_rejections");

  static TranMetrics& get() {
    static TranMetrics m;
    return m;
  }
};

}  // namespace

std::vector<double> TranResult::node_waveform(const MnaLayout& layout,
                                              ckt::NodeId n) const {
  std::vector<double> out;
  out.reserve(states.size());
  for (const auto& s : states) out.push_back(layout.voltage(s, n));
  return out;
}

namespace {

// Builds the capacitance matrix into `*cmat_out` (reused across timesteps):
// explicit capacitors plus device capacitances evaluated from `device_ops`
// (bias at the previous accepted time point).
void build_cap_matrix(const NonlinearSystem& sys,
                      const std::vector<DeviceOp>& device_ops,
                      num::RealMatrix* cmat_out) {
  const MnaLayout& layout = sys.layout();
  const std::size_t n = layout.size();
  num::RealMatrix& cmat = *cmat_out;
  if (cmat.rows() != n || cmat.cols() != n) {
    cmat = num::RealMatrix(n, n);
  } else {
    cmat.fill(0.0);  // stamp_linear_caps accumulates
  }
  sys.stamp_linear_caps(&cmat);
  auto add2 = [&](ckt::NodeId a, ckt::NodeId b, double value) {
    const int ia = layout.node_index(a);
    const int ib = layout.node_index(b);
    if (ia >= 0) cmat(static_cast<std::size_t>(ia),
                      static_cast<std::size_t>(ia)) += value;
    if (ib >= 0) cmat(static_cast<std::size_t>(ib),
                      static_cast<std::size_t>(ib)) += value;
    if (ia >= 0 && ib >= 0) {
      cmat(static_cast<std::size_t>(ia), static_cast<std::size_t>(ib)) -=
          value;
      cmat(static_cast<std::size_t>(ib), static_cast<std::size_t>(ia)) -=
          value;
    }
  };
  const auto& mosfets = sys.circuit().mosfets();
  for (std::size_t k = 0; k < mosfets.size(); ++k) {
    const auto& m = mosfets[k];
    const DeviceOp& d = device_ops[k];
    add2(m.g, m.s, d.cgs);
    add2(m.g, m.d, d.cgd);
    add2(m.g, m.b, d.cgb);
    add2(m.d, m.b, d.cdb);
    add2(m.s, m.b, d.csb);
  }
}

}  // namespace

TranResult transient(const ckt::Circuit& c, const tech::Technology& t,
                     const OpResult& op, const TranOptions& opts) {
  TranMetrics& metrics = TranMetrics::get();
  metrics.runs.add();
  OBS_SPAN("sim/transient");
  TranResult result;
  if (!op.converged) {
    result.error = "initial operating point did not converge";
    return result;
  }
  if (!(opts.tstop > 0.0) || !(opts.dt > 0.0)) {
    result.error = "tstop and dt must be positive";
    return result;
  }

  NonlinearSystem sys(c, t);
  const MnaLayout& layout = sys.layout();
  const std::size_t n = layout.size();
  const std::size_t nv = layout.num_node_unknowns();

  std::vector<double> x = op.solution;
  std::vector<DeviceOp> device_ops = op.devices;
  if (device_ops.size() != c.mosfets().size()) {
    device_ops.assign(c.mosfets().size(), DeviceOp{});
  }

  result.time.push_back(0.0);
  result.states.push_back(x);

  // i_C = C dv/dt.  Backward Euler: i = C (x - x_prev)/h.
  // Trapezoidal: i = 2C/h (x - x_prev) - i_prev; we track the capacitive
  // current vector iC_prev = C * dv/dt at the previous point.
  num::RealMatrix cmat;
  build_cap_matrix(sys, device_ops, &cmat);
  std::vector<double> dvdt_prev(n, 0.0);  // starts from DC: dv/dt = 0

  // One workspace for every Newton iteration of every timestep: after the
  // first iteration the stepping loop allocates only the accepted states.
  SimWorkspace ws;
  num::RealMatrix& jac = ws.jac;
  std::vector<double>& f = ws.residual;
  std::vector<double>& dx = ws.step;

  const DeviceEval device_eval = resolve_device_eval(opts.device_eval);
  if (device_eval == DeviceEval::kBatch) {
    sys.build_device_table(&ws.devices);
  }

  const std::size_t steps =
      static_cast<std::size_t>(std::ceil(opts.tstop / opts.dt));
  for (std::size_t step = 1; step <= steps; ++step) {
    const double time = std::min(static_cast<double>(step) * opts.dt,
                                 opts.tstop);
    const double h = time - result.time.back();
    if (h <= 0.0) break;
    const std::vector<double>& x_prev = result.states.back();

    NonlinearSystem::EvalOptions eval_opts;
    eval_opts.gmin = opts.gmin;
    eval_opts.time = time;
    eval_opts.device_eval = device_eval;

    // Companion coefficients.
    const double a = opts.trapezoidal ? 2.0 / h : 1.0 / h;

    bool converged = false;
    for (int iter = 0; iter < opts.max_newton; ++iter) {
      metrics.iterations.add();
      sys.eval(x, eval_opts, &jac, &f, nullptr, &ws.devices);
      // Add capacitive currents: f += C*(a*(x - x_prev)) - hist
      // where hist = C*dvdt_prev for trapezoidal, 0 for BE.
      for (std::size_t r = 0; r < n; ++r) {
        double acc = 0.0;
        const double* crow = cmat.row(r);
        for (std::size_t col = 0; col < n; ++col) {
          const double cv = crow[col];
          if (cv != 0.0) {
            acc += cv * a * (x[col] - x_prev[col]);
            if (opts.trapezoidal) acc -= cv * dvdt_prev[col];
          }
          if (cv != 0.0) jac(r, col) += cv * a;
        }
        f[r] += acc;
      }

      num::lu_factor_in_place(&jac, &ws.lu);
      if (ws.lu.singular) {
        result.error = "singular transient Jacobian";
        return result;
      }
      dx.resize(n);
      for (std::size_t i = 0; i < n; ++i) dx[i] = -f[i];
      num::lu_solve_in_place(ws.lu, &dx);
      double max_dv = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        max_dv = std::max(max_dv, std::abs(dx[i]));
      }
      double scale = 1.0;
      if (max_dv > opts.vlimit_step) scale = opts.vlimit_step / max_dv;
      for (std::size_t i = 0; i < n; ++i) x[i] += scale * dx[i];
      if (max_dv < opts.vntol) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      // The fixed-step integrator has no retry-with-smaller-h path yet, so
      // a rejected step ends the run; the counter still attributes the
      // failure mode.
      metrics.rejections.add();
      result.error = "transient Newton failed at t=" + std::to_string(time);
      return result;
    }

    // Update history for trapezoidal: dv/dt = a*(x - x_prev) - dvdt_prev.
    if (opts.trapezoidal) {
      for (std::size_t i = 0; i < n; ++i) {
        dvdt_prev[i] = a * (x[i] - x_prev[i]) - dvdt_prev[i];
      }
    }
    // Refresh device capacitances at the new bias for the next step.
    sys.eval(x, eval_opts, nullptr, nullptr, &device_ops, &ws.devices);
    build_cap_matrix(sys, device_ops, &cmat);

    result.time.push_back(time);
    result.states.push_back(x);
    metrics.steps.add();
  }
  result.ok = true;
  return result;
}

}  // namespace oasys::sim
