// Runtime simulation-engine options shared by every analysis.
//
// DeviceEval selects how MOS devices are evaluated inside the MNA
// assembly: one at a time through the scalar reference
// (`mos::evaluate_core`) or all at once through the SoA batch kernel
// (`mos::evaluate_core_batch`).  The two paths are bit-for-bit identical —
// pinned by the golden-equivalence suites — so the choice is purely a
// performance knob: it is deliberately excluded from request fingerprints
// and wire protocols, and flipping it never invalidates caches, golden
// results, or shard/serve conformance.
//
// Resolution order for an analysis call:
//   1. an explicit kScalar/kBatch in the per-call options wins;
//   2. kDefault falls back to the process-wide default, which is kBatch
//      unless overridden by set_device_eval_default() or, at first use,
//      by the environment variable OASYS_DEVICE_EVAL=scalar|batch.
#pragma once

#include <string_view>

namespace oasys::sim {

enum class DeviceEval {
  kDefault = 0,  // resolve via the process-wide default
  kScalar,       // per-device mos::evaluate_terminal (reference path)
  kBatch,        // SoA mos::evaluate_core_batch via the device table
};

// Process-wide default used wherever an analysis is invoked with kDefault.
// Thread-safe (relaxed atomic); the first read consults OASYS_DEVICE_EVAL.
DeviceEval device_eval_default();

// Overrides the process-wide default; kDefault restores the built-in
// default (kBatch).  Intended for CLI flags and tests.
void set_device_eval_default(DeviceEval mode);

// Collapses kDefault to the process-wide default; identity otherwise.
DeviceEval resolve_device_eval(DeviceEval requested);

// Parses "scalar" / "batch" (the user-facing spellings).  Returns false —
// leaving *out untouched — on anything else.
bool parse_device_eval(std::string_view text, DeviceEval* out);

const char* to_string(DeviceEval mode);

// TranMode selects the transient time-stepping strategy.  Unlike
// DeviceEval, the choice is semantically meaningful: the adaptive
// integrator's results agree with fixed-step only within the configured
// error tolerances, never bit-for-bit.  It therefore participates in
// request fingerprints and the shard/serve wire config, so fixed and
// adaptive runs can never share a cache entry or a golden pin.
//
// Resolution mirrors DeviceEval:
//   1. an explicit kFixed/kAdaptive in the per-call options wins;
//   2. kDefault falls back to the process-wide default, which is kFixed
//      (the permanent reference) unless overridden by
//      set_tran_mode_default() or, at first use, by the environment
//      variable OASYS_TRAN_MODE=fixed|adaptive.
enum class TranMode {
  kDefault = 0,  // resolve via the process-wide default
  kFixed,        // fixed-step trap/BE (the permanent reference)
  kAdaptive,     // trap + embedded-BE error estimate, PI step controller
};

TranMode tran_mode_default();

// Overrides the process-wide default; kDefault restores the built-in
// default (kFixed).  Intended for CLI flags, worker config, and tests.
void set_tran_mode_default(TranMode mode);

// Collapses kDefault to the process-wide default; identity otherwise.
TranMode resolve_tran_mode(TranMode requested);

// Parses "fixed" / "adaptive" (the user-facing spellings).  Returns false
// — leaving *out untouched — on anything else.
bool parse_tran_mode(std::string_view text, TranMode* out);

const char* to_string(TranMode mode);

// Per-state-variable error tolerances for the adaptive integrator: a step
// is accepted when max_i |err_i| / (atol + rtol*|x_i|) <= 1.
struct TranTolerance {
  double rtol = 1e-3;
  double atol = 1e-6;
};

// Process-wide defaults used wherever TranOptions carries rtol/atol <= 0.
// The first read consults OASYS_TRAN_RTOL / OASYS_TRAN_ATOL.
TranTolerance tran_tolerance_default();

// Overrides the process-wide tolerance defaults.  A non-positive
// component restores that component's initial (built-in or
// environment-supplied) default.
void set_tran_tolerance_default(double rtol, double atol);

}  // namespace oasys::sim
