// Runtime simulation-engine options shared by every analysis.
//
// DeviceEval selects how MOS devices are evaluated inside the MNA
// assembly: one at a time through the scalar reference
// (`mos::evaluate_core`) or all at once through the SoA batch kernel
// (`mos::evaluate_core_batch`).  The two paths are bit-for-bit identical —
// pinned by the golden-equivalence suites — so the choice is purely a
// performance knob: it is deliberately excluded from request fingerprints
// and wire protocols, and flipping it never invalidates caches, golden
// results, or shard/serve conformance.
//
// Resolution order for an analysis call:
//   1. an explicit kScalar/kBatch in the per-call options wins;
//   2. kDefault falls back to the process-wide default, which is kBatch
//      unless overridden by set_device_eval_default() or, at first use,
//      by the environment variable OASYS_DEVICE_EVAL=scalar|batch.
#pragma once

#include <string_view>

namespace oasys::sim {

enum class DeviceEval {
  kDefault = 0,  // resolve via the process-wide default
  kScalar,       // per-device mos::evaluate_terminal (reference path)
  kBatch,        // SoA mos::evaluate_core_batch via the device table
};

// Process-wide default used wherever an analysis is invoked with kDefault.
// Thread-safe (relaxed atomic); the first read consults OASYS_DEVICE_EVAL.
DeviceEval device_eval_default();

// Overrides the process-wide default; kDefault restores the built-in
// default (kBatch).  Intended for CLI flags and tests.
void set_device_eval_default(DeviceEval mode);

// Collapses kDefault to the process-wide default; identity otherwise.
DeviceEval resolve_device_eval(DeviceEval requested);

// Parses "scalar" / "batch" (the user-facing spellings).  Returns false —
// leaving *out untouched — on anything else.
bool parse_device_eval(std::string_view text, DeviceEval* out);

const char* to_string(DeviceEval mode);

}  // namespace oasys::sim
