#include "spice/dc.h"

#include <algorithm>
#include <cmath>

#include "numeric/linear.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace oasys::sim {

namespace {

// Registry handles for the DC solver, resolved once per process.
struct DcMetrics {
  obs::Counter& solves = obs::Registry::global().counter("sim.newton.solves");
  obs::Counter& iterations =
      obs::Registry::global().counter("sim.newton.iterations");
  obs::Counter& nonconverged =
      obs::Registry::global().counter("sim.newton.nonconverged");
  obs::Counter& op_calls = obs::Registry::global().counter("sim.op.calls");
  obs::Counter& gmin_escalations =
      obs::Registry::global().counter("sim.op.gmin_escalations");
  obs::Counter& source_escalations =
      obs::Registry::global().counter("sim.op.source_escalations");
  obs::Counter& op_failures =
      obs::Registry::global().counter("sim.op.nonconverged");
  obs::Histogram& iters_per_op = obs::Registry::global().count_histogram(
      "sim.op.iterations_per_solve",
      obs::Histogram::exponential_bounds(1.0, 512.0, 2.0));

  static DcMetrics& get() {
    static DcMetrics m;
    return m;
  }
};

// One Newton solve at fixed (source_scale, gmin).  Returns true on
// convergence; x is updated in place with the best iterate either way.
// All scratch lives in `ws` — including the batch device table when
// `device_eval` is kBatch — so a warm iteration allocates nothing.
bool newton_solve(const NonlinearSystem& sys, double source_scale,
                  double gmin, const OpOptions& opts, DeviceEval device_eval,
                  SimWorkspace* ws, std::vector<double>* x,
                  int* iterations_used) {
  DcMetrics& metrics = DcMetrics::get();
  metrics.solves.add();
  const std::size_t n = sys.layout().size();
  const std::size_t nv = sys.layout().num_node_unknowns();
  num::RealMatrix& jac = ws->jac;          // eval sizes and refills
  std::vector<double>& f = ws->residual;
  std::vector<double>& dx = ws->step;

  NonlinearSystem::EvalOptions eval_opts;
  eval_opts.source_scale = source_scale;
  eval_opts.gmin = gmin;
  eval_opts.device_eval = device_eval;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ++*iterations_used;
    metrics.iterations.add();
    sys.eval(*x, eval_opts, &jac, &f, nullptr, &ws->devices);

    num::lu_factor_in_place(&jac, &ws->lu);
    if (ws->lu.singular) {
      metrics.nonconverged.add();
      return false;
    }
    // Newton step: J dx = -f, solved in place in the RHS buffer.
    dx.resize(n);
    for (std::size_t i = 0; i < n; ++i) dx[i] = -f[i];
    num::lu_solve_in_place(ws->lu, &dx);

    // Damping: cap the largest node-voltage change per iteration.  Branch
    // currents are left unscaled unless voltages needed scaling.
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nv; ++i) {
      max_dv = std::max(max_dv, std::abs(dx[i]));
    }
    double scale = 1.0;
    if (max_dv > opts.vlimit_step) scale = opts.vlimit_step / max_dv;
    for (std::size_t i = 0; i < n; ++i) (*x)[i] += scale * dx[i];

    // Converged when the (undamped) voltage update and the residual are
    // both small.
    if (max_dv < opts.vntol) {
      sys.eval(*x, eval_opts, nullptr, &f, nullptr, &ws->devices);
      double max_node_residual = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        max_node_residual = std::max(max_node_residual, std::abs(f[i]));
      }
      if (max_node_residual < opts.abstol) return true;
    }
  }
  metrics.nonconverged.add();
  return false;
}

}  // namespace

OpResult dc_operating_point(const ckt::Circuit& c, const tech::Technology& t,
                            const OpOptions& opts, SimWorkspace* workspace) {
  DcMetrics& metrics = DcMetrics::get();
  metrics.op_calls.add();
  OBS_SPAN("sim/dc_operating_point");
  NonlinearSystem sys(c, t);
  const std::size_t n = sys.layout().size();
  SimWorkspace local_ws;
  SimWorkspace* ws = workspace != nullptr ? workspace : &local_ws;

  // Resolve the MOS evaluation path once per solve and, for the batch
  // path, (re)build the SoA device table into the workspace.  Workspaces
  // may be reused across different circuits, so the table is always
  // rebuilt here — a constant fill that allocates only when it grows.
  const DeviceEval device_eval = resolve_device_eval(opts.device_eval);
  if (device_eval == DeviceEval::kBatch) {
    sys.build_device_table(&ws->devices);
  }

  OpResult result;
  std::vector<double> x =
      opts.initial_guess.size() == n ? opts.initial_guess
                                     : std::vector<double>(n, 0.0);

  // Strategy 1: plain Newton.
  {
    std::vector<double> trial = x;
    int iters = 0;
    if (newton_solve(sys, 1.0, opts.gmin, opts, device_eval, ws, &trial,
                     &iters)) {
      result.converged = true;
      result.strategy = "newton";
      result.total_iterations = iters;
      result.solution = std::move(trial);
    } else {
      result.total_iterations += iters;
    }
  }

  // Strategy 2: gmin stepping, from strongly shunted to the floor.
  if (!result.converged && opts.try_gmin_stepping) {
    metrics.gmin_escalations.add();
    std::vector<double> trial(n, 0.0);
    bool ok = true;
    int iters = 0;
    for (double gmin = opts.gmin_step_start; gmin >= opts.gmin * 0.99;
         gmin *= opts.gmin_step_ratio) {
      if (!newton_solve(sys, 1.0, gmin, opts, device_eval, ws, &trial,
                        &iters)) {
        ok = false;
        break;
      }
    }
    if (ok && newton_solve(sys, 1.0, opts.gmin, opts, device_eval, ws,
                           &trial, &iters)) {
      result.converged = true;
      result.strategy = "gmin-step";
      result.solution = std::move(trial);
    }
    result.total_iterations += iters;
  }

  // Strategy 3: source stepping with adaptive increments.
  if (!result.converged && opts.try_source_stepping) {
    metrics.source_escalations.add();
    std::vector<double> trial(n, 0.0);
    double scale = 0.0;
    double step = opts.source_step_initial;
    bool ok = true;
    int iters = 0;
    while (scale < 1.0 && ok) {
      const double next = std::min(scale + step, 1.0);
      std::vector<double> attempt = trial;
      if (newton_solve(sys, next, opts.gmin, opts, device_eval, ws, &attempt,
                       &iters)) {
        trial = std::move(attempt);
        scale = next;
        step = std::min(step * 2.0, opts.source_step_max);
      } else {
        step *= 0.5;
        if (step < opts.source_step_min) ok = false;
      }
    }
    if (ok) {
      result.converged = true;
      result.strategy = "source-step";
      result.solution = std::move(trial);
    }
    result.total_iterations += iters;
  }

  metrics.iters_per_op.observe(static_cast<double>(result.total_iterations));
  if (result.converged) {
    // Final bookkeeping pass to capture per-device operating info.
    NonlinearSystem::EvalOptions eval_opts;
    eval_opts.gmin = opts.gmin;
    eval_opts.device_eval = device_eval;
    sys.eval(result.solution, eval_opts, nullptr, nullptr, &result.devices,
             &ws->devices);
  } else {
    metrics.op_failures.add();
    result.solution = std::move(x);
  }
  return result;
}

double supply_power(const ckt::Circuit& c, const MnaLayout& layout,
                    const OpResult& op) {
  double power = 0.0;
  for (std::size_t k = 0; k < c.vsources().size(); ++k) {
    const auto& v = c.vsources()[k];
    const double vbranch = layout.voltage(op.solution, v.pos) -
                           layout.voltage(op.solution, v.neg);
    // Branch current flows pos -> neg through the source; the power the
    // source *delivers* is -V*I in this convention.
    const double i = op.solution[layout.branch_index(k)];
    power += -vbranch * i;
  }
  for (const auto& isrc : c.isources()) {
    const double va = layout.voltage(op.solution, isrc.a);
    const double vb = layout.voltage(op.solution, isrc.b);
    // Current I flows a -> b through the source; the source delivers
    // I*(vb - va) to the circuit (positive when pushing current into the
    // higher-potential node).
    power += isrc.wave.dc_value() * (vb - va);
  }
  return power;
}

}  // namespace oasys::sim
