// Modified nodal analysis (MNA) assembly shared by the DC, AC, and
// transient analyses.
//
// Unknown ordering: node voltages for nodes 1..N-1 (ground excluded),
// followed by one branch current per independent voltage source.  The
// branch current flows from the source's `pos` terminal through the source
// to `neg`.
//
// The nonlinear residual convention is f(x) = 0 where each node equation
// sums the currents *leaving* the node.  Newton solves J dx = -f.
#pragma once

#include <cstdint>
#include <vector>

#include "mos/level1_batch.h"
#include "netlist/circuit.h"
#include "numeric/matrix.h"
#include "spice/sim_options.h"
#include "tech/technology.h"

namespace oasys::sim {

// Index map from circuit entities to MNA unknowns.
class MnaLayout {
 public:
  explicit MnaLayout(const ckt::Circuit& c);

  std::size_t size() const { return size_; }
  std::size_t num_node_unknowns() const { return num_nodes_ - 1; }

  // Row/column of a node voltage; -1 for ground.
  int node_index(ckt::NodeId n) const;
  // Row/column of a voltage-source branch current.
  std::size_t branch_index(std::size_t vsource_pos) const;

  // Voltage of node `n` given an unknown vector (0 for ground).
  double voltage(const std::vector<double>& x, ckt::NodeId n) const;
  std::complex<double> voltage(const std::vector<std::complex<double>>& x,
                               ckt::NodeId n) const;

 private:
  std::size_t num_nodes_ = 0;
  std::size_t num_vsources_ = 0;
  std::size_t size_ = 0;
};

// Per-MOSFET operating information captured during an evaluation; parallel
// to Circuit::mosfets().  Terminal-frame derivatives are kept so the AC
// analysis can stamp the small-signal model without re-deriving it.
struct DeviceOp {
  mos::Region region = mos::Region::kCutoff;
  double vgs = 0.0, vds = 0.0, vbs = 0.0;  // device-frame (sign-corrected)
  double id = 0.0;                         // magnitude of drain current
  double vth = 0.0, vov = 0.0, vdsat = 0.0;
  double gm = 0.0, gds = 0.0, gmb = 0.0;   // magnitudes
  // Terminal-frame current and derivatives (see mos::TerminalEval).
  double id_ds = 0.0;
  double di_dvg = 0.0, di_dvd = 0.0, di_dvs = 0.0, di_dvb = 0.0;
  // Small-signal capacitances at this bias [F].
  double cgs = 0.0, cgd = 0.0, cgb = 0.0, cdb = 0.0, csb = 0.0;
};

// Structure-of-arrays device table for the batched MOS evaluation path.
// Built once per (circuit, solve) by NonlinearSystem::build_device_table —
// device constants and MNA node indices in Circuit::mosfets() order — then
// re-biased in place every eval.  Lives inside sim::SimWorkspace so the
// arrays persist across Newton iterations, timesteps, and warm-started
// sweep points without reallocating (resize only grows capacity).
struct DeviceTable {
  mos::CoreEvalBatch batch;           // constants + per-eval bias/results
  std::vector<double> sign;           // +1 NMOS, -1 PMOS (frame flip)
  std::vector<int> d, g, s, b;        // MNA node indices; -1 = ground
  std::vector<std::uint8_t> swapped;  // per-eval scratch: D/S exchanged

  std::size_t size() const { return batch.size(); }
};

// Assembles residual/Jacobian for the resistive (non-capacitive) part of
// the circuit.  Capacitor companion models are added by the transient
// analysis on top of this.
class NonlinearSystem {
 public:
  NonlinearSystem(const ckt::Circuit& c, const tech::Technology& t);

  const MnaLayout& layout() const { return layout_; }
  const ckt::Circuit& circuit() const { return *circuit_; }
  const tech::Technology& technology() const { return *tech_; }

  struct EvalOptions {
    double source_scale = 1.0;  // multiplies every independent source
    double gmin = 1e-12;        // shunt conductance to ground on every node
    double time = -1.0;         // <0: DC values; >=0: waveform value(time)
    // Already-resolved MOS evaluation path (kDefault is treated as
    // kScalar here — callers resolve the process default up front).
    // kBatch requires a matching `devices` table in the eval call.
    DeviceEval device_eval = DeviceEval::kScalar;
  };

  // Computes f(x) into `residual` and J(x) into `jac` (either may be null).
  // When `device_ops` is non-null it is resized/filled with per-MOSFET
  // operating info including bias-dependent capacitances.
  //
  // With opts.device_eval == kBatch, `devices` must point at a table built
  // by build_device_table() for this circuit (throws std::logic_error
  // otherwise); its bias arrays and swapped flags are rewritten, the SoA
  // kernel runs once, and the stamps are applied from the flat outputs in
  // device index order — bit-for-bit identical to the scalar path.
  void eval(const std::vector<double>& x, const EvalOptions& opts,
            num::RealMatrix* jac, std::vector<double>* residual,
            std::vector<DeviceOp>* device_ops = nullptr,
            DeviceTable* devices = nullptr) const;

  // Fills `table` with this circuit's MOS devices (constants, effective
  // parameters including per-device mismatch, MNA node indices).  Validates
  // every geometry — throws std::invalid_argument naming the device on
  // w <= 0, l <= 0, or m < 1.  Only allocates when the table grows.
  void build_device_table(DeviceTable* table) const;

  // Lumped linear capacitance matrix contribution C (for transient): stamps
  // the circuit's explicit capacitors only.  Device capacitances are
  // bias-dependent and handled by the caller via DeviceOp.
  void stamp_linear_caps(num::RealMatrix* cmat) const;

 private:
  const ckt::Circuit* circuit_;
  const tech::Technology* tech_;
  MnaLayout layout_;
};

// Fills DeviceOp capacitances (gate + junction) at the given bias.
void fill_device_caps(const tech::Technology& t, const ckt::Mosfet& m,
                      double vd, double vg, double vs, double vb,
                      DeviceOp* op);

}  // namespace oasys::sim
