#include "spice/ac.h"

#include <cmath>

#include "exec/executor.h"
#include "numeric/linear.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "spice/small_signal.h"
#include "util/units.h"

namespace oasys::sim {

namespace {

// Registry handles for the AC engine, resolved once per process.
struct AcMetrics {
  obs::Counter& sweeps = obs::Registry::global().counter("sim.ac.sweeps");
  obs::Counter& points = obs::Registry::global().counter("sim.ac.points");

  static AcMetrics& get() {
    static AcMetrics m;
    return m;
  }
};

}  // namespace

void build_small_signal_matrices(const ckt::Circuit& c,
                                 const MnaLayout& layout, const OpResult& op,
                                 num::RealMatrix* g_out,
                                 num::RealMatrix* cap_out) {
  const std::size_t n = layout.size();
  num::RealMatrix& g = *g_out;
  num::RealMatrix& cap = *cap_out;
  g = num::RealMatrix(n, n);
  cap = num::RealMatrix(n, n);

  auto add_g = [&](int r, int col, double v) {
    if (r >= 0 && col >= 0) {
      g(static_cast<std::size_t>(r), static_cast<std::size_t>(col)) += v;
    }
  };
  auto add_c2 = [&](ckt::NodeId a, ckt::NodeId b, double value) {
    const int ia = layout.node_index(a);
    const int ib = layout.node_index(b);
    if (ia >= 0) cap(static_cast<std::size_t>(ia),
                     static_cast<std::size_t>(ia)) += value;
    if (ib >= 0) cap(static_cast<std::size_t>(ib),
                     static_cast<std::size_t>(ib)) += value;
    if (ia >= 0 && ib >= 0) {
      cap(static_cast<std::size_t>(ia), static_cast<std::size_t>(ib)) -=
          value;
      cap(static_cast<std::size_t>(ib), static_cast<std::size_t>(ia)) -=
          value;
    }
  };

  // Tiny shunt keeps floating small-signal nodes non-singular.
  for (std::size_t i = 0; i < layout.num_node_unknowns(); ++i) {
    add_g(static_cast<int>(i), static_cast<int>(i), 1e-12);
  }

  for (const auto& r : c.resistors()) {
    const double gr = 1.0 / r.resistance;
    const int ia = layout.node_index(r.a);
    const int ib = layout.node_index(r.b);
    add_g(ia, ia, gr);
    add_g(ib, ib, gr);
    add_g(ia, ib, -gr);
    add_g(ib, ia, -gr);
  }
  for (const auto& cc : c.capacitors()) {
    add_c2(cc.a, cc.b, cc.capacitance);
  }
  for (std::size_t k = 0; k < c.vsources().size(); ++k) {
    const auto& v = c.vsources()[k];
    const int ip = layout.node_index(v.pos);
    const int in = layout.node_index(v.neg);
    const int ibr = static_cast<int>(layout.branch_index(k));
    add_g(ip, ibr, 1.0);
    add_g(in, ibr, -1.0);
    add_g(ibr, ip, 1.0);
    add_g(ibr, in, -1.0);
  }
  for (std::size_t k = 0; k < c.mosfets().size(); ++k) {
    const auto& m = c.mosfets()[k];
    const DeviceOp& d = op.devices[k];
    const int id_ = layout.node_index(m.d);
    const int ig = layout.node_index(m.g);
    const int is = layout.node_index(m.s);
    const int ib = layout.node_index(m.b);
    // Terminal-frame derivatives stamp directly as a 2-row VCCS block.
    add_g(id_, ig, d.di_dvg);
    add_g(id_, id_, d.di_dvd);
    add_g(id_, is, d.di_dvs);
    add_g(id_, ib, d.di_dvb);
    add_g(is, ig, -d.di_dvg);
    add_g(is, id_, -d.di_dvd);
    add_g(is, is, -d.di_dvs);
    add_g(is, ib, -d.di_dvb);
    // Capacitances at the bias point.
    add_c2(m.g, m.s, d.cgs);
    add_c2(m.g, m.d, d.cgd);
    add_c2(m.g, m.b, d.cgb);
    add_c2(m.d, m.b, d.cdb);
    add_c2(m.s, m.b, d.csb);
  }
}

namespace {

// Per-lane scratch for the frequency fan-out: one complex matrix and one
// factorization, reused by every point the lane drains.
struct AcLaneWorkspace {
  num::ComplexMatrix y;
  num::LuFactors<std::complex<double>> lu;
};

}  // namespace

AcResult ac_analysis(const ckt::Circuit& c, const tech::Technology& t,
                     const OpResult& op, const std::vector<double>& freqs,
                     std::size_t jobs) {
  AcMetrics& metrics = AcMetrics::get();
  metrics.sweeps.add();
  OBS_SPAN("sim/ac_analysis");
  AcResult result;
  if (!op.converged) {
    result.error = "operating point did not converge";
    return result;
  }
  // Validate the sweep before any O(n^2) stamping work.
  for (const double f : freqs) {
    if (!(f > 0.0)) {
      result.error = "AC frequency must be positive";
      return result;
    }
  }
  NonlinearSystem sys(c, t);
  const MnaLayout& layout = sys.layout();
  const std::size_t n = layout.size();
  if (op.devices.size() != c.mosfets().size() || op.solution.size() != n) {
    result.error = "operating point does not match circuit";
    return result;
  }

  using Cplx = std::complex<double>;
  num::RealMatrix g;
  num::RealMatrix cap;
  build_small_signal_matrices(c, layout, op, &g, &cap);
  // Flat row-major views for the per-point fill loop.
  const double* g_flat = g.data();
  const double* cap_flat = cap.data();

  // AC excitation vector (frequency independent).
  std::vector<Cplx> rhs(n, Cplx{});
  for (std::size_t k = 0; k < c.vsources().size(); ++k) {
    const auto& v = c.vsources()[k];
    if (v.wave.ac_mag() != 0.0) {
      const double ph = util::rad(v.wave.ac_phase_deg());
      rhs[layout.branch_index(k)] = std::polar(v.wave.ac_mag(), ph);
    }
  }
  for (const auto& i : c.isources()) {
    if (i.wave.ac_mag() == 0.0) continue;
    const double ph = util::rad(i.wave.ac_phase_deg());
    const Cplx phasor = std::polar(i.wave.ac_mag(), ph);
    const int ia = layout.node_index(i.a);
    const int ib = layout.node_index(i.b);
    // Current flows a -> b: it leaves node a, so the injection at a is -I.
    if (ia >= 0) rhs[static_cast<std::size_t>(ia)] -= phasor;
    if (ib >= 0) rhs[static_cast<std::size_t>(ib)] += phasor;
  }

  // Every frequency point factors its own complex MNA matrix from the
  // shared G/C stamps — fully independent, so the points distribute over
  // `jobs` lanes with each solution landing in its own slot.  Each lane
  // reuses one matrix + factorization for all its points, and each point
  // solves in place into its preallocated solution slot, so the sweep loop
  // is allocation-free in steady state.  A lane's scratch is fully
  // overwritten per point, so results stay bit-for-bit identical at every
  // jobs setting.
  metrics.points.add(freqs.size());
  result.freqs = freqs;
  result.solutions.assign(freqs.size(), std::vector<Cplx>(n));
  std::vector<char> singular(freqs.size(), 0);
  std::vector<AcLaneWorkspace> lanes(exec::lane_count(freqs.size(), jobs));
  exec::parallel_for_lanes(
      freqs.size(),
      [&](std::size_t i, std::size_t lane) {
        AcLaneWorkspace& ws = lanes[lane];
        const double w = util::kTwoPi * freqs[i];
        if (ws.y.rows() != n || ws.y.cols() != n) {
          ws.y = num::ComplexMatrix(n, n);
        }
        fill_complex_mna(ws.y.data(), g_flat, cap_flat, w, n * n);
        num::lu_factor_in_place(&ws.y, &ws.lu);
        if (ws.lu.singular) {
          singular[i] = 1;
          return;
        }
        std::vector<Cplx>& x = result.solutions[i];
        x = rhs;  // copy into the preallocated slot, no reallocation
        num::lu_solve_in_place(ws.lu, &x);
      },
      jobs);
  for (const char s : singular) {
    if (s) {
      result.solutions.clear();
      result.error = "singular AC matrix";
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace oasys::sim
