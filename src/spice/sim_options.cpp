#include "spice/sim_options.h"

#include <atomic>
#include <cstdlib>

namespace oasys::sim {

namespace {

constexpr DeviceEval kBuiltInDefault = DeviceEval::kBatch;

DeviceEval initial_default() {
  const char* env = std::getenv("OASYS_DEVICE_EVAL");
  DeviceEval parsed = DeviceEval::kDefault;
  if (env != nullptr && parse_device_eval(env, &parsed)) {
    return parsed;
  }
  return kBuiltInDefault;
}

std::atomic<DeviceEval>& default_slot() {
  static std::atomic<DeviceEval> slot{initial_default()};
  return slot;
}

}  // namespace

bool parse_device_eval(std::string_view text, DeviceEval* out) {
  if (text == "scalar") {
    *out = DeviceEval::kScalar;
    return true;
  }
  if (text == "batch") {
    *out = DeviceEval::kBatch;
    return true;
  }
  return false;
}

const char* to_string(DeviceEval mode) {
  switch (mode) {
    case DeviceEval::kDefault:
      return "default";
    case DeviceEval::kScalar:
      return "scalar";
    case DeviceEval::kBatch:
      return "batch";
  }
  return "unknown";
}

DeviceEval device_eval_default() {
  return default_slot().load(std::memory_order_relaxed);
}

void set_device_eval_default(DeviceEval mode) {
  default_slot().store(mode == DeviceEval::kDefault ? kBuiltInDefault : mode,
                       std::memory_order_relaxed);
}

DeviceEval resolve_device_eval(DeviceEval requested) {
  return requested == DeviceEval::kDefault ? device_eval_default()
                                           : requested;
}

}  // namespace oasys::sim
