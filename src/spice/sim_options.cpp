#include "spice/sim_options.h"

#include <atomic>
#include <cstdlib>

namespace oasys::sim {

namespace {

constexpr DeviceEval kBuiltInDefault = DeviceEval::kBatch;

DeviceEval initial_default() {
  const char* env = std::getenv("OASYS_DEVICE_EVAL");
  DeviceEval parsed = DeviceEval::kDefault;
  if (env != nullptr && parse_device_eval(env, &parsed)) {
    return parsed;
  }
  return kBuiltInDefault;
}

std::atomic<DeviceEval>& default_slot() {
  static std::atomic<DeviceEval> slot{initial_default()};
  return slot;
}

}  // namespace

bool parse_device_eval(std::string_view text, DeviceEval* out) {
  if (text == "scalar") {
    *out = DeviceEval::kScalar;
    return true;
  }
  if (text == "batch") {
    *out = DeviceEval::kBatch;
    return true;
  }
  return false;
}

const char* to_string(DeviceEval mode) {
  switch (mode) {
    case DeviceEval::kDefault:
      return "default";
    case DeviceEval::kScalar:
      return "scalar";
    case DeviceEval::kBatch:
      return "batch";
  }
  return "unknown";
}

DeviceEval device_eval_default() {
  return default_slot().load(std::memory_order_relaxed);
}

void set_device_eval_default(DeviceEval mode) {
  default_slot().store(mode == DeviceEval::kDefault ? kBuiltInDefault : mode,
                       std::memory_order_relaxed);
}

DeviceEval resolve_device_eval(DeviceEval requested) {
  return requested == DeviceEval::kDefault ? device_eval_default()
                                           : requested;
}

// ---- TranMode ---------------------------------------------------------------

namespace {

constexpr TranMode kBuiltInTranMode = TranMode::kFixed;

TranMode initial_tran_mode() {
  const char* env = std::getenv("OASYS_TRAN_MODE");
  TranMode parsed = TranMode::kDefault;
  if (env != nullptr && parse_tran_mode(env, &parsed)) {
    return parsed;
  }
  return kBuiltInTranMode;
}

std::atomic<TranMode>& tran_mode_slot() {
  static std::atomic<TranMode> slot{initial_tran_mode()};
  return slot;
}

// Positive-finite environment override, or fall back to the built-in.
double tolerance_from_env(const char* name, double built_in) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0 && v < 1e300) return v;
  }
  return built_in;
}

double initial_tran_rtol() {
  static const double v = tolerance_from_env("OASYS_TRAN_RTOL", 1e-3);
  return v;
}

double initial_tran_atol() {
  static const double v = tolerance_from_env("OASYS_TRAN_ATOL", 1e-6);
  return v;
}

std::atomic<double>& tran_rtol_slot() {
  static std::atomic<double> slot{initial_tran_rtol()};
  return slot;
}

std::atomic<double>& tran_atol_slot() {
  static std::atomic<double> slot{initial_tran_atol()};
  return slot;
}

}  // namespace

bool parse_tran_mode(std::string_view text, TranMode* out) {
  if (text == "fixed") {
    *out = TranMode::kFixed;
    return true;
  }
  if (text == "adaptive") {
    *out = TranMode::kAdaptive;
    return true;
  }
  return false;
}

const char* to_string(TranMode mode) {
  switch (mode) {
    case TranMode::kDefault:
      return "default";
    case TranMode::kFixed:
      return "fixed";
    case TranMode::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

TranMode tran_mode_default() {
  return tran_mode_slot().load(std::memory_order_relaxed);
}

void set_tran_mode_default(TranMode mode) {
  tran_mode_slot().store(mode == TranMode::kDefault ? kBuiltInTranMode : mode,
                         std::memory_order_relaxed);
}

TranMode resolve_tran_mode(TranMode requested) {
  return requested == TranMode::kDefault ? tran_mode_default() : requested;
}

TranTolerance tran_tolerance_default() {
  TranTolerance tol;
  tol.rtol = tran_rtol_slot().load(std::memory_order_relaxed);
  tol.atol = tran_atol_slot().load(std::memory_order_relaxed);
  return tol;
}

void set_tran_tolerance_default(double rtol, double atol) {
  tran_rtol_slot().store(rtol > 0.0 ? rtol : initial_tran_rtol(),
                         std::memory_order_relaxed);
  tran_atol_slot().store(atol > 0.0 ? atol : initial_tran_atol(),
                         std::memory_order_relaxed);
}

}  // namespace oasys::sim
