// Shared small-signal MNA assembly for AC and noise analyses: the real
// conductance matrix G (device transconductances, resistors, source
// branches) and the capacitance matrix C, combined per frequency as
// Y = G + jwC.
#pragma once

#include <complex>
#include <cstddef>

#include "numeric/matrix.h"
#include "spice/dc.h"

namespace oasys::sim {

// Fills `g` and `cap` (resized to layout.size()); requires op.devices to
// match the circuit.  Includes the small stabilizing shunt on every node.
//
// The G stamps come from op.devices, so the small-signal model inherits
// whichever device-eval path (scalar or batch) produced the operating
// point — bit-identically, since the two paths agree bit-for-bit.
void build_small_signal_matrices(const ckt::Circuit& c,
                                 const MnaLayout& layout, const OpResult& op,
                                 num::RealMatrix* g, num::RealMatrix* cap);

// Per-point lane fill shared by the AC and noise loops: y[k] = g[k] +
// jw*cap[k] over the n^2 flat row-major slots.  Unit-stride, no aliasing
// between the three arrays — the loop auto-vectorizes under OASYS_SIMD.
inline void fill_complex_mna(std::complex<double>* y, const double* g,
                             const double* cap, double w, std::size_t n2) {
  for (std::size_t k = 0; k < n2; ++k) {
    y[k] = std::complex<double>(g[k], w * cap[k]);
  }
}

}  // namespace oasys::sim
