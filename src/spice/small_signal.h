// Shared small-signal MNA assembly for AC and noise analyses: the real
// conductance matrix G (device transconductances, resistors, source
// branches) and the capacitance matrix C, combined per frequency as
// Y = G + jwC.
#pragma once

#include "numeric/matrix.h"
#include "spice/dc.h"

namespace oasys::sim {

// Fills `g` and `cap` (resized to layout.size()); requires op.devices to
// match the circuit.  Includes the small stabilizing shunt on every node.
void build_small_signal_matrices(const ckt::Circuit& c,
                                 const MnaLayout& layout, const OpResult& op,
                                 num::RealMatrix* g, num::RealMatrix* cap);

}  // namespace oasys::sim
