#include "core/spec.h"

#include <sstream>
#include <vector>

#include "util/fingerprint.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::core {

util::DiagnosticLog OpAmpSpec::validate() const {
  util::DiagnosticLog log;
  if (!(cload > 0.0)) {
    log.error("spec-invalid", "load capacitance must be positive");
  }
  if (gain_min_db < 0.0) {
    log.error("spec-invalid", "gain_min_db must be non-negative");
  }
  if (gbw_min < 0.0 || slew_min < 0.0) {
    log.error("spec-invalid", "gbw_min and slew_min must be non-negative");
  }
  if (pm_min_deg < 0.0 || pm_min_deg >= 90.0) {
    log.error("spec-invalid",
              "phase margin spec must be in [0, 90) degrees");
  }
  if (swing_pos < 0.0 || swing_neg < 0.0) {
    log.error("spec-invalid", "swing bounds are magnitudes, must be >= 0");
  }
  if (offset_max < 0.0) {
    log.error("spec-invalid", "offset_max must be non-negative");
  }
  if (icmr_hi < icmr_lo) {
    log.error("spec-invalid", "icmr_hi must be >= icmr_lo");
  }
  if (power_max < 0.0 || area_max < 0.0) {
    log.error("spec-invalid", "power_max/area_max must be non-negative");
  }
  return log;
}

std::string OpAmpSpec::to_string() const {
  std::ostringstream os;
  os << "spec " << (name.empty() ? "(unnamed)" : name) << ":\n";
  os << util::format("  gain      >= %.1f dB\n", gain_min_db);
  os << util::format("  GBW       >= %.3g MHz\n", util::in_mhz(gbw_min));
  os << util::format("  PM        >= %.1f deg\n", pm_min_deg);
  os << util::format("  slew      >= %.3g V/us\n", util::in_v_per_us(slew_min));
  os << util::format("  CL         = %.3g pF\n", util::in_pf(cload));
  os << util::format("  swing     >= +%.2f / -%.2f V\n", swing_pos, swing_neg);
  if (offset_max > 0.0) {
    os << util::format("  offset    <= %.3g mV\n", util::in_mv(offset_max));
  }
  os << util::format("  ICMR       = [%.2f, %.2f] V\n", icmr_lo, icmr_hi);
  if (power_max > 0.0) {
    os << util::format("  power     <= %.3g mW\n", util::in_mw(power_max));
  }
  if (area_max > 0.0) {
    os << util::format("  area      <= %.0f um^2\n", util::in_um2(area_max));
  }
  if (noise_max > 0.0) {
    os << util::format("  noise     <= %.0f nV/rtHz\n", noise_max * 1e9);
  }
  return os.str();
}

std::string OpAmpSpec::canonical_string() const {
  util::Fingerprint fp;
  fp.field("name", name)
      .field("gain_min_db", gain_min_db)
      .field("gbw_min", gbw_min)
      .field("pm_min_deg", pm_min_deg)
      .field("slew_min", slew_min)
      .field("cload", cload)
      .field("swing_pos", swing_pos)
      .field("swing_neg", swing_neg)
      .field("offset_max", offset_max)
      .field("icmr_lo", icmr_lo)
      .field("icmr_hi", icmr_hi)
      .field("power_max", power_max)
      .field("area_max", area_max)
      .field("cmrr_min_db", cmrr_min_db)
      .field("psrr_min_db", psrr_min_db)
      .field("noise_max", noise_max);
  return fp.str();
}

std::uint64_t OpAmpSpec::hash() const {
  return util::fnv1a64(canonical_string());
}

std::string OpAmpPerformance::to_string() const {
  std::ostringstream os;
  os << util::format("  gain   = %.1f dB\n", gain_db);
  os << util::format("  GBW    = %.3g MHz\n", util::in_mhz(gbw));
  os << util::format("  PM     = %.1f deg\n", pm_deg);
  os << util::format("  slew   = %.3g V/us\n", util::in_v_per_us(slew));
  os << util::format("  swing  = +%.2f / -%.2f V\n", swing_pos, swing_neg);
  os << util::format("  offset = %.3g mV\n", util::in_mv(offset));
  os << util::format("  ICMR   = [%.2f, %.2f] V\n", icmr_lo, icmr_hi);
  os << util::format("  power  = %.3g mW\n", util::in_mw(power));
  os << util::format("  area   = %.0f um^2\n", util::in_um2(area));
  return os.str();
}

std::vector<SpecCheck> check_spec(const OpAmpSpec& spec,
                                  const OpAmpPerformance& perf,
                                  double tolerance_frac) {
  std::vector<SpecCheck> checks;
  const double tol = 1.0 - tolerance_frac;

  auto lower_bound_check = [&](const char* axis, double required,
                               double achieved, bool constrained) {
    SpecCheck c;
    c.axis = axis;
    c.required = required;
    c.achieved = achieved;
    c.constrained = constrained;
    c.satisfied = !constrained || achieved >= required * tol;
    checks.push_back(c);
  };
  auto upper_bound_check = [&](const char* axis, double required,
                               double achieved, bool constrained) {
    SpecCheck c;
    c.axis = axis;
    c.required = required;
    c.achieved = achieved;
    c.constrained = constrained;
    c.satisfied = !constrained || achieved <= required / tol;
    checks.push_back(c);
  };

  lower_bound_check("gain_db", spec.gain_min_db, perf.gain_db,
                    spec.gain_min_db > 0.0);
  lower_bound_check("gbw", spec.gbw_min, perf.gbw, spec.gbw_min > 0.0);
  lower_bound_check("pm_deg", spec.pm_min_deg, perf.pm_deg,
                    spec.pm_min_deg > 0.0);
  lower_bound_check("slew", spec.slew_min, perf.slew, spec.slew_min > 0.0);
  lower_bound_check("swing_pos", spec.swing_pos, perf.swing_pos,
                    spec.swing_pos > 0.0);
  lower_bound_check("swing_neg", spec.swing_neg, perf.swing_neg,
                    spec.swing_neg > 0.0);
  upper_bound_check("offset", spec.offset_max, perf.offset,
                    spec.offset_max > 0.0);
  // ICMR bounds are signed voltages, so the tolerance is additive (scaled
  // to 1 V) rather than multiplicative.
  const bool icmr_constrained = spec.icmr_lo != 0.0 || spec.icmr_hi != 0.0;
  const double vtol = tolerance_frac * 1.0;
  {
    SpecCheck c;
    c.axis = "icmr_lo";
    c.required = spec.icmr_lo;
    c.achieved = perf.icmr_lo;
    c.constrained = icmr_constrained;
    c.satisfied = !icmr_constrained || perf.icmr_lo <= spec.icmr_lo + vtol;
    checks.push_back(c);
  }
  {
    SpecCheck c;
    c.axis = "icmr_hi";
    c.required = spec.icmr_hi;
    c.achieved = perf.icmr_hi;
    c.constrained = icmr_constrained;
    c.satisfied = !icmr_constrained || perf.icmr_hi >= spec.icmr_hi - vtol;
    checks.push_back(c);
  }
  upper_bound_check("power", spec.power_max, perf.power,
                    spec.power_max > 0.0);
  upper_bound_check("area", spec.area_max, perf.area, spec.area_max > 0.0);
  lower_bound_check("cmrr_db", spec.cmrr_min_db, perf.cmrr_db,
                    spec.cmrr_min_db > 0.0);
  lower_bound_check("psrr_db", spec.psrr_min_db, perf.psrr_db,
                    spec.psrr_min_db > 0.0);
  upper_bound_check("noise_in", spec.noise_max, perf.noise_in,
                    spec.noise_max > 0.0);
  return checks;
}

int violation_count(const std::vector<SpecCheck>& checks) {
  int count = 0;
  for (const auto& c : checks) {
    if (c.constrained && !c.satisfied) ++count;
  }
  return count;
}

}  // namespace oasys::core
