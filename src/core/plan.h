// The planning mechanism (paper Sections 3.3 and 4.2, Figure 3).
//
// Design knowledge for one topology template is codified as a Plan: an
// ordered list of PlanSteps, each a small program fragment that numerically
// manipulates circuit equations to achieve a set of goals.  When a step
// cannot meet its goals it reports a failure with a machine-matchable code.
// The executor then consults the plan's PatchRules — "rules fire at the end
// of each plan step to correct errors, and modify the dynamic flow of the
// plan" — which may adjust design variables and restart the plan from an
// earlier step, retry the failing step, or abort the style.
//
// Plans are templated on the concrete DesignContext type so that steps and
// rules get typed access to designer state; the execution trace and status
// types are shared and non-templated.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/context.h"

namespace oasys::core {

// Outcome of one plan-step execution.
struct StepStatus {
  bool ok = true;
  std::string failure_code;  // stable code rules match on, e.g. "gain-shortfall"
  std::string detail;

  static StepStatus success() { return {}; }
  static StepStatus fail(std::string code, std::string detail) {
    return {false, std::move(code), std::move(detail)};
  }
};

// What the executor hands to rules when a step fails.
struct StepFailure {
  std::size_t step_index = 0;
  std::string step_name;
  std::string code;
  std::string detail;
};

// What a fired rule tells the executor to do next.
struct PatchAction {
  enum class Kind { kRestartAt, kRetryStep, kContinue, kAbort };
  Kind kind = Kind::kAbort;
  std::size_t restart_index = 0;  // for kRestartAt
  std::string note;               // recorded in the trace

  static PatchAction restart_at(std::size_t index, std::string note) {
    return {Kind::kRestartAt, index, std::move(note)};
  }
  static PatchAction retry_step(std::string note) {
    return {Kind::kRetryStep, 0, std::move(note)};
  }
  static PatchAction proceed(std::string note) {
    return {Kind::kContinue, 0, std::move(note)};
  }
  static PatchAction abort(std::string note) {
    return {Kind::kAbort, 0, std::move(note)};
  }
};

// Execution trace: the full narrative of steps run and rules fired, used by
// tests, reports, and the ablation benches.
struct TraceEvent {
  enum class Kind { kStepOk, kStepFailed, kRuleFired, kAborted, kExhausted };
  Kind kind;
  std::size_t step_index = 0;
  std::string step_name;
  std::string code;    // failure code or rule name
  std::string detail;  // failure detail or patch note
};

struct ExecutionTrace {
  bool success = false;
  std::string abort_reason;
  int steps_executed = 0;
  int rules_fired = 0;
  std::vector<TraceEvent> events;

  bool rule_fired(const std::string& rule_name) const;
  std::string to_string() const;
};

// --- the plan -------------------------------------------------------------

template <typename Ctx>
struct PlanStep {
  std::string name;
  std::function<StepStatus(Ctx&)> run;
};

template <typename Ctx>
struct PatchRule {
  std::string name;
  // Returns the action to take if this rule applies to `failure`, nullopt
  // otherwise.  Rules are consulted in registration order; the first one
  // that returns an action wins.
  std::function<std::optional<PatchAction>(Ctx&, const StepFailure&)>
      try_patch;
};

template <typename Ctx>
class Plan {
 public:
  explicit Plan(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Returns the index of the added step, so designers can name restart
  // targets without counting by hand.
  std::size_t add_step(std::string step_name,
                       std::function<StepStatus(Ctx&)> body) {
    steps_.push_back({std::move(step_name), std::move(body)});
    return steps_.size() - 1;
  }
  void add_rule(std::string rule_name,
                std::function<std::optional<PatchAction>(Ctx&,
                                                         const StepFailure&)>
                    body) {
    rules_.push_back({std::move(rule_name), std::move(body)});
  }

  const std::vector<PlanStep<Ctx>>& steps() const { return steps_; }
  const std::vector<PatchRule<Ctx>>& rules() const { return rules_; }

  // Index of a step by name; throws std::out_of_range when absent.
  std::size_t step_index(const std::string& step_name) const {
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      if (steps_[i].name == step_name) return i;
    }
    throw std::out_of_range("plan '" + name_ + "' has no step '" +
                            step_name + "'");
  }

 private:
  std::string name_;
  std::vector<PlanStep<Ctx>> steps_;
  std::vector<PatchRule<Ctx>> rules_;
};

// --- the executor -----------------------------------------------------------

struct ExecutorOptions {
  int max_patches = 24;  // total rule firings before giving up
  bool rules_enabled = true;  // ablation hook: run plans without patching
};

template <typename Ctx>
ExecutionTrace execute_plan(const Plan<Ctx>& plan, Ctx& ctx,
                            const ExecutorOptions& opts = {}) {
  ExecutionTrace trace;
  const auto& steps = plan.steps();
  std::size_t i = 0;
  while (i < steps.size()) {
    const PlanStep<Ctx>& step = steps[i];
    StepStatus status = step.run(ctx);
    ++trace.steps_executed;
    if (status.ok) {
      trace.events.push_back({TraceEvent::Kind::kStepOk, i, step.name, "",
                              status.detail});
      ++i;
      continue;
    }
    trace.events.push_back({TraceEvent::Kind::kStepFailed, i, step.name,
                            status.failure_code, status.detail});

    StepFailure failure{i, step.name, status.failure_code, status.detail};
    std::optional<PatchAction> action;
    std::string fired_rule;
    if (opts.rules_enabled && trace.rules_fired < opts.max_patches) {
      for (const PatchRule<Ctx>& rule : plan.rules()) {
        action = rule.try_patch(ctx, failure);
        if (action) {
          fired_rule = rule.name;
          break;
        }
      }
    }
    if (!action) {
      trace.abort_reason =
          trace.rules_fired >= opts.max_patches
              ? "patch budget exhausted at step '" + step.name + "' (" +
                    status.failure_code + ")"
              : "no rule patches failure '" + status.failure_code +
                    "' at step '" + step.name + "'";
      trace.events.push_back({TraceEvent::Kind::kExhausted, i, step.name,
                              status.failure_code, trace.abort_reason});
      return trace;
    }

    ++trace.rules_fired;
    trace.events.push_back({TraceEvent::Kind::kRuleFired, i, step.name,
                            fired_rule, action->note});
    switch (action->kind) {
      case PatchAction::Kind::kRestartAt:
        i = action->restart_index;
        break;
      case PatchAction::Kind::kRetryStep:
        break;  // i unchanged
      case PatchAction::Kind::kContinue:
        ++i;
        break;
      case PatchAction::Kind::kAbort:
        trace.abort_reason = "rule '" + fired_rule + "' aborted: " +
                             action->note;
        trace.events.push_back({TraceEvent::Kind::kAborted, i, step.name,
                                fired_rule, action->note});
        return trace;
    }
  }
  trace.success = true;
  return trace;
}

}  // namespace oasys::core
