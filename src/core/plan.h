// The planning mechanism (paper Sections 3.3 and 4.2, Figure 3).
//
// Design knowledge for one topology template is codified as a Plan: an
// ordered list of PlanSteps, each a small program fragment that numerically
// manipulates circuit equations to achieve a set of goals.  When a step
// cannot meet its goals it reports a failure with a machine-matchable code.
// The executor then consults the plan's PatchRules — "rules fire at the end
// of each plan step to correct errors, and modify the dynamic flow of the
// plan" — which may adjust design variables and restart the plan from an
// earlier step, retry the failing step, or abort the style.
//
// Plans are templated on the concrete DesignContext type so that steps and
// rules get typed access to designer state; the execution trace and status
// types are shared and non-templated.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/context.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace oasys::core {

// Outcome of one plan-step execution.
struct StepStatus {
  bool ok = true;
  std::string failure_code;  // stable code rules match on, e.g. "gain-shortfall"
  std::string detail;

  static StepStatus success() { return {}; }
  static StepStatus fail(std::string code, std::string detail) {
    return {false, std::move(code), std::move(detail)};
  }
};

// What the executor hands to rules when a step fails.
struct StepFailure {
  std::size_t step_index = 0;
  std::string step_name;
  std::string code;
  std::string detail;
};

// What a fired rule tells the executor to do next.
struct PatchAction {
  enum class Kind { kRestartAt, kRetryStep, kContinue, kAbort };
  Kind kind = Kind::kAbort;
  std::size_t restart_index = 0;  // for kRestartAt
  std::string note;               // recorded in the trace

  static PatchAction restart_at(std::size_t index, std::string note) {
    return {Kind::kRestartAt, index, std::move(note)};
  }
  static PatchAction retry_step(std::string note) {
    return {Kind::kRetryStep, 0, std::move(note)};
  }
  static PatchAction proceed(std::string note) {
    return {Kind::kContinue, 0, std::move(note)};
  }
  static PatchAction abort(std::string note) {
    return {Kind::kAbort, 0, std::move(note)};
  }
};

// Execution trace: the full narrative of steps run and rules fired, used by
// tests, reports, and the ablation benches.
struct TraceEvent {
  enum class Kind { kStepOk, kStepFailed, kRuleFired, kAborted, kExhausted };
  Kind kind;
  std::size_t step_index = 0;
  std::string step_name;
  std::string code;    // failure code or rule name
  std::string detail;  // failure detail or patch note
};

struct ExecutionTrace {
  bool success = false;
  std::string abort_reason;
  int steps_executed = 0;
  int rules_fired = 0;
  std::vector<TraceEvent> events;

  bool rule_fired(const std::string& rule_name) const;
  std::string to_string() const;
};

// --- the plan -------------------------------------------------------------

template <typename Ctx>
struct PlanStep {
  std::string name;
  std::function<StepStatus(Ctx&)> run;
};

template <typename Ctx>
struct PatchRule {
  std::string name;
  // Returns the action to take if this rule applies to `failure`, nullopt
  // otherwise.  Rules are consulted in registration order; the first one
  // that returns an action wins.
  std::function<std::optional<PatchAction>(Ctx&, const StepFailure&)>
      try_patch;
};

template <typename Ctx>
class Plan {
 public:
  explicit Plan(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Returns the index of the added step, so designers can name restart
  // targets without counting by hand.
  std::size_t add_step(std::string step_name,
                       std::function<StepStatus(Ctx&)> body) {
    steps_.push_back({std::move(step_name), std::move(body)});
    return steps_.size() - 1;
  }
  void add_rule(std::string rule_name,
                std::function<std::optional<PatchAction>(Ctx&,
                                                         const StepFailure&)>
                    body) {
    rules_.push_back({std::move(rule_name), std::move(body)});
  }

  const std::vector<PlanStep<Ctx>>& steps() const { return steps_; }
  const std::vector<PatchRule<Ctx>>& rules() const { return rules_; }

  // Index of a step by name; throws std::out_of_range when absent.
  std::size_t step_index(const std::string& step_name) const {
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      if (steps_[i].name == step_name) return i;
    }
    throw std::out_of_range("plan '" + name_ + "' has no step '" +
                            step_name + "'");
  }

 private:
  std::string name_;
  std::vector<PlanStep<Ctx>> steps_;
  std::vector<PatchRule<Ctx>> rules_;
};

// --- the executor -----------------------------------------------------------

struct ExecutorOptions {
  int max_patches = 24;  // total rule firings before giving up
  bool rules_enabled = true;  // ablation hook: run plans without patching
};

namespace internal {

// Registry handles for the plan executor, resolved once per process (the
// executor template would otherwise re-resolve per context type).
struct PlanMetrics {
  obs::Counter& runs = obs::Registry::global().counter("plan.runs");
  obs::Counter& steps = obs::Registry::global().counter("plan.steps_executed");
  obs::Counter& failures =
      obs::Registry::global().counter("plan.step_failures");
  obs::Counter& rules = obs::Registry::global().counter("plan.rules_fired");
  obs::Counter& restarts = obs::Registry::global().counter("plan.restarts");
  obs::Counter& retries = obs::Registry::global().counter("plan.retries");
  obs::Counter& aborts = obs::Registry::global().counter("plan.aborts");
  obs::Counter& exhausted = obs::Registry::global().counter("plan.exhausted");
  obs::Counter& successes = obs::Registry::global().counter("plan.successes");

  static PlanMetrics& get() {
    static PlanMetrics m;
    return m;
  }
};

}  // namespace internal

template <typename Ctx>
ExecutionTrace execute_plan(const Plan<Ctx>& plan, Ctx& ctx,
                            const ExecutorOptions& opts = {}) {
  internal::PlanMetrics& metrics = internal::PlanMetrics::get();
  metrics.runs.add();
  obs::Span plan_span("plan", plan.name());

  ExecutionTrace trace;
  // Every narrative event flows through here exactly once: into the
  // ExecutionTrace (rendered by to_string, tests, and reports) and into
  // the span tracer (rendered by `--trace`'s timeline and the JSON
  // export).  One event stream, two renderers.
  const char* const kEventNames[] = {"step.ok", "step.failed", "rule.fired",
                                     "plan.aborted", "plan.exhausted"};
  auto record = [&](TraceEvent::Kind kind, std::size_t index,
                    const std::string& step_name, const std::string& code,
                    const std::string& detail) {
    trace.events.push_back({kind, index, step_name, code, detail});
    obs::emit_instant(kEventNames[static_cast<int>(kind)], step_name, code,
                      detail, index);
  };

  const auto& steps = plan.steps();
  std::size_t i = 0;
  while (i < steps.size()) {
    const PlanStep<Ctx>& step = steps[i];
    StepStatus status;
    {
      obs::Span step_span("step", step.name);
      status = step.run(ctx);
    }
    ++trace.steps_executed;
    metrics.steps.add();
    if (status.ok) {
      record(TraceEvent::Kind::kStepOk, i, step.name, "", status.detail);
      ++i;
      continue;
    }
    metrics.failures.add();
    record(TraceEvent::Kind::kStepFailed, i, step.name, status.failure_code,
           status.detail);

    StepFailure failure{i, step.name, status.failure_code, status.detail};
    std::optional<PatchAction> action;
    std::string fired_rule;
    if (opts.rules_enabled && trace.rules_fired < opts.max_patches) {
      for (const PatchRule<Ctx>& rule : plan.rules()) {
        action = rule.try_patch(ctx, failure);
        if (action) {
          fired_rule = rule.name;
          break;
        }
      }
    }
    if (!action) {
      trace.abort_reason =
          trace.rules_fired >= opts.max_patches
              ? "patch budget exhausted at step '" + step.name + "' (" +
                    status.failure_code + ")"
              : "no rule patches failure '" + status.failure_code +
                    "' at step '" + step.name + "'";
      metrics.exhausted.add();
      record(TraceEvent::Kind::kExhausted, i, step.name,
             status.failure_code, trace.abort_reason);
      plan_span.note(trace.abort_reason);
      return trace;
    }

    ++trace.rules_fired;
    metrics.rules.add();
    // Per-rule firing counts — the per-block attribution the registry
    // exists for.  Rule firings are rare (bounded by max_patches), so the
    // by-name lookup is off the hot path.
    obs::Registry::global().counter("plan.rule." + fired_rule).add();
    record(TraceEvent::Kind::kRuleFired, i, step.name, fired_rule,
           action->note);
    switch (action->kind) {
      case PatchAction::Kind::kRestartAt:
        metrics.restarts.add();
        i = action->restart_index;
        break;
      case PatchAction::Kind::kRetryStep:
        metrics.retries.add();
        break;  // i unchanged
      case PatchAction::Kind::kContinue:
        ++i;
        break;
      case PatchAction::Kind::kAbort:
        trace.abort_reason = "rule '" + fired_rule + "' aborted: " +
                             action->note;
        metrics.aborts.add();
        record(TraceEvent::Kind::kAborted, i, step.name, fired_rule,
               action->note);
        plan_span.note(trace.abort_reason);
        return trace;
    }
  }
  trace.success = true;
  metrics.successes.add();
  return trace;
}

}  // namespace oasys::core
