// Performance-specification file reader.
//
// Lets the CLI (and scripts) drive OASYS the way the paper describes its
// inputs: "a description of the fabrication process and a set of op amp
// performance specifications".  Line-oriented `key value` format with the
// designer-facing units spelled out in the key names, e.g.:
//
//   # case B
//   name        B
//   gain_db     70
//   gbw_mhz     2
//   pm_deg      45
//   slew_v_us   2
//   cload_pf    10
//   swing_pos_v 3.5
//   swing_neg_v 3.5
//   offset_mv   2
//   icmr_lo_v  -2
//   icmr_hi_v   2
//   power_mw    10
#pragma once

#include <string>
#include <string_view>

#include "core/spec.h"

namespace oasys::core {

struct SpecParseResult {
  OpAmpSpec spec;
  util::DiagnosticLog log;
  bool ok() const { return !log.has_errors(); }
};

// Parses spec text (file contents, not a path).
SpecParseResult parse_opamp_spec(std::string_view text);

// Reads and parses a spec file; I/O failure is an error diagnostic.
SpecParseResult load_opamp_spec_file(const std::string& path);

// Serializes a spec in the same format (round-trips through the parser).
std::string to_spec_text(const OpAmpSpec& spec);

}  // namespace oasys::core
