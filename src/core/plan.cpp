#include "core/plan.h"

#include <sstream>

namespace oasys::core {

bool ExecutionTrace::rule_fired(const std::string& rule_name) const {
  for (const auto& e : events) {
    if (e.kind == TraceEvent::Kind::kRuleFired && e.code == rule_name) {
      return true;
    }
  }
  return false;
}

std::string ExecutionTrace::to_string() const {
  std::ostringstream os;
  for (const auto& e : events) {
    switch (e.kind) {
      case TraceEvent::Kind::kStepOk:
        os << "  step " << e.step_index << " [" << e.step_name << "] ok";
        if (!e.detail.empty()) os << " — " << e.detail;
        os << "\n";
        break;
      case TraceEvent::Kind::kStepFailed:
        os << "  step " << e.step_index << " [" << e.step_name
           << "] FAILED (" << e.code << "): " << e.detail << "\n";
        break;
      case TraceEvent::Kind::kRuleFired:
        os << "    rule '" << e.code << "' fired: " << e.detail << "\n";
        break;
      case TraceEvent::Kind::kAborted:
        os << "  aborted by rule '" << e.code << "': " << e.detail << "\n";
        break;
      case TraceEvent::Kind::kExhausted:
        os << "  gave up: " << e.detail << "\n";
        break;
    }
  }
  os << (success ? "  => plan succeeded" : "  => plan failed") << "\n";
  return os.str();
}

}  // namespace oasys::core
