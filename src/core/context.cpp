#include "core/context.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace oasys::core {

int DesignContext::bump(const std::string& counter) {
  obs::Registry::global().counter("synth.ctx." + counter).add();
  return ++counters_[counter];
}

double DesignContext::get(const std::string& name) const {
  const auto it = vars_.find(name);
  if (it == vars_.end()) {
    throw std::out_of_range("design variable '" + name + "' is not set");
  }
  return it->second;
}

double DesignContext::get_or(const std::string& name,
                             double fallback) const {
  const auto it = vars_.find(name);
  return it == vars_.end() ? fallback : it->second;
}

int DesignContext::count(const std::string& counter) const {
  const auto it = counters_.find(counter);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace oasys::core
