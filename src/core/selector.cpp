#include "core/selector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/text.h"
#include "util/units.h"

namespace oasys::core {

SelectionResult select_style(const std::vector<StyleScore>& candidates) {
  SelectionResult result;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].feasible) result.ranking.push_back(i);
  }
  std::stable_sort(result.ranking.begin(), result.ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     const StyleScore& sa = candidates[a];
                     const StyleScore& sb = candidates[b];
                     if (sa.violations != sb.violations) {
                       return sa.violations < sb.violations;
                     }
                     // A degenerate designer can report a NaN/inf area;
                     // comparing it with `<` would break the strict weak
                     // ordering std::stable_sort requires (UB).  Rank any
                     // non-finite area behind every finite one and treat
                     // two non-finite areas as equivalent.
                     const bool fa = std::isfinite(sa.area);
                     const bool fb = std::isfinite(sb.area);
                     if (fa != fb) return fa;
                     if (!fa) return false;
                     return sa.area < sb.area;
                   });
  if (!result.ranking.empty()) result.best = result.ranking.front();

  std::ostringstream os;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const StyleScore& s = candidates[i];
    os << "  " << s.style_name << ": ";
    if (!s.feasible) {
      os << "infeasible\n";
      continue;
    }
    os << util::format("area %.0f um^2", util::in_um2(s.area));
    if (s.violations > 0) {
      os << util::format(", %d spec axis(es) missed (first-cut)",
                         s.violations);
    }
    if (result.best && *result.best == i) os << "  <== selected";
    os << "\n";
  }
  if (!result.best) os << "  no feasible style\n";
  result.summary = os.str();
  return result;
}

}  // namespace oasys::core
