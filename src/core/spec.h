// Performance specifications for analog functional blocks.
//
// OpAmpSpec is the paper's input (Table 2 left column): the behaviour the
// synthesized block must achieve.  Specs constrain continuous quantities,
// so every field is a bound, not a nominal value.  A value of 0 (or the
// noted sentinel) leaves that axis unconstrained.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/diagnostics.h"

namespace oasys::core {

struct OpAmpSpec {
  std::string name;  // label for reports, e.g. "A", "B", "C"

  double gain_min_db = 0.0;    // open-loop DC gain lower bound [dB]
  double gbw_min = 0.0;        // unity-gain bandwidth lower bound [Hz]
  double pm_min_deg = 0.0;     // phase-margin lower bound [degrees]
  double slew_min = 0.0;       // slew-rate lower bound [V/s]
  double cload = 0.0;          // load capacitance the block must drive [F]

  // Output swing: the output must reach at least `swing_pos` above and
  // `swing_neg` below the mid-supply point (both positive magnitudes).
  double swing_pos = 0.0;      // [V]
  double swing_neg = 0.0;      // [V]

  double offset_max = 0.0;     // systematic input offset upper bound [V];
                               // 0 = unconstrained
  // Input common-mode range the block must accept [V, absolute].
  double icmr_lo = 0.0;
  double icmr_hi = 0.0;

  double power_max = 0.0;      // quiescent power upper bound [W]; 0 = none
  double area_max = 0.0;       // active area upper bound [m^2]; 0 = none
  double cmrr_min_db = 0.0;    // optional; 0 = unconstrained
  double psrr_min_db = 0.0;    // optional; 0 = unconstrained
  // Input-referred noise density in the white region (measured at about a
  // third of the unity-gain frequency) [V/sqrt(Hz)]; 0 = unconstrained.
  double noise_max = 0.0;

  // Structural sanity (not feasibility): monotone bounds, positive load.
  util::DiagnosticLog validate() const;

  // Human-readable one-per-line rendering for reports.
  std::string to_string() const;

  // Canonical fingerprint for cache keys (see util/fingerprint.h): equal
  // specs render identical bytes however their fields were populated
  // (parsed from a permuted file, assigned in any order, NaN of any
  // payload, -0.0), and distinct specs never alias.  `name` is included:
  // results embed the spec, so a cached result is only exact for a request
  // with the same label.
  std::string canonical_string() const;
  std::uint64_t hash() const;
};

// Performance actually achieved by a design, in the same axes as the spec.
// Filled first with first-order predictions by the translation plans, then
// with simulator measurements by the verification layer.
struct OpAmpPerformance {
  double gain_db = 0.0;
  double gbw = 0.0;
  double pm_deg = 0.0;
  double slew = 0.0;
  double swing_pos = 0.0;
  double swing_neg = 0.0;
  double offset = 0.0;
  double icmr_lo = 0.0;
  double icmr_hi = 0.0;
  double power = 0.0;
  double area = 0.0;     // [m^2]
  double cmrr_db = 0.0;
  double psrr_db = 0.0;
  double noise_in = 0.0;  // input-referred density, white region [V/rtHz]

  std::string to_string() const;
};

// One spec axis compared against achieved performance.
struct SpecCheck {
  std::string axis;     // e.g. "gain", "pm"
  double required = 0.0;
  double achieved = 0.0;
  bool satisfied = false;
  bool constrained = true;  // false when the spec left this axis free
};

// Evaluates every constrained axis.  `tolerance_frac` loosens each bound by
// the given fraction (the paper accepts first-cut designs that are close;
// e.g. case C ships with PM below spec).
std::vector<SpecCheck> check_spec(const OpAmpSpec& spec,
                                  const OpAmpPerformance& perf,
                                  double tolerance_frac = 0.0);

// Count of constrained-and-violated axes in a check list.
int violation_count(const std::vector<SpecCheck>& checks);

}  // namespace oasys::core
