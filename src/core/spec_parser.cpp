#include "core/spec_parser.h"

#include <fstream>
#include <map>
#include <sstream>

#include "util/text.h"
#include "util/units.h"

namespace oasys::core {

namespace {

struct FieldSpec {
  double OpAmpSpec::* field;
  double scale;  // file units -> SI
};

const std::map<std::string, FieldSpec>& fields() {
  static const std::map<std::string, FieldSpec> kFields = {
      {"gain_db", {&OpAmpSpec::gain_min_db, 1.0}},
      {"gbw_mhz", {&OpAmpSpec::gbw_min, util::kMega}},
      {"pm_deg", {&OpAmpSpec::pm_min_deg, 1.0}},
      {"slew_v_us", {&OpAmpSpec::slew_min, util::kMega}},
      {"cload_pf", {&OpAmpSpec::cload, util::kPico}},
      {"swing_pos_v", {&OpAmpSpec::swing_pos, 1.0}},
      {"swing_neg_v", {&OpAmpSpec::swing_neg, 1.0}},
      {"offset_mv", {&OpAmpSpec::offset_max, util::kMilli}},
      {"icmr_lo_v", {&OpAmpSpec::icmr_lo, 1.0}},
      {"icmr_hi_v", {&OpAmpSpec::icmr_hi, 1.0}},
      {"power_mw", {&OpAmpSpec::power_max, util::kMilli}},
      {"area_um2", {&OpAmpSpec::area_max, 1e-12}},
      {"cmrr_db", {&OpAmpSpec::cmrr_min_db, 1.0}},
      {"psrr_db", {&OpAmpSpec::psrr_min_db, 1.0}},
      {"noise_nv_rthz", {&OpAmpSpec::noise_max, 1e-9}},
  };
  return kFields;
}

}  // namespace

SpecParseResult parse_opamp_spec(std::string_view text) {
  SpecParseResult result;
  int line_no = 0;
  for (const std::string& raw : util::split_lines(text)) {
    ++line_no;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto tokens = util::split(trimmed);
    if (tokens.size() != 2) {
      result.log.error("spec-parse",
                       util::format("line %d: expected 'key value'",
                                    line_no));
      continue;
    }
    const std::string key = util::to_lower(tokens[0]);
    if (key == "name") {
      result.spec.name = tokens[1];
      continue;
    }
    const auto it = fields().find(key);
    if (it == fields().end()) {
      result.log.error("spec-parse",
                       util::format("line %d: unknown key '%s'", line_no,
                                    key.c_str()));
      continue;
    }
    const auto value = util::parse_double(tokens[1]);
    if (!value) {
      result.log.error("spec-parse",
                       util::format("line %d: bad value '%s'", line_no,
                                    tokens[1].c_str()));
      continue;
    }
    result.spec.*(it->second.field) = *value * it->second.scale;
  }
  if (!result.log.has_errors()) {
    result.log.append(result.spec.validate());
  }
  return result;
}

SpecParseResult load_opamp_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    SpecParseResult r;
    r.log.error("spec-io",
                util::format("cannot open spec file '%s'", path.c_str()));
    return r;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_opamp_spec(buf.str());
}

std::string to_spec_text(const OpAmpSpec& spec) {
  std::ostringstream os;
  os << "name        " << (spec.name.empty() ? "unnamed" : spec.name)
     << "\n";
  os << util::format("gain_db     %.6g\n", spec.gain_min_db);
  os << util::format("gbw_mhz     %.6g\n", util::in_mhz(spec.gbw_min));
  os << util::format("pm_deg      %.6g\n", spec.pm_min_deg);
  os << util::format("slew_v_us   %.6g\n", util::in_v_per_us(spec.slew_min));
  os << util::format("cload_pf    %.6g\n", util::in_pf(spec.cload));
  os << util::format("swing_pos_v %.6g\n", spec.swing_pos);
  os << util::format("swing_neg_v %.6g\n", spec.swing_neg);
  os << util::format("offset_mv   %.6g\n", util::in_mv(spec.offset_max));
  os << util::format("icmr_lo_v   %.6g\n", spec.icmr_lo);
  os << util::format("icmr_hi_v   %.6g\n", spec.icmr_hi);
  os << util::format("power_mw    %.6g\n", util::in_mw(spec.power_max));
  if (spec.area_max > 0.0) {
    os << util::format("area_um2    %.6g\n", util::in_um2(spec.area_max));
  }
  if (spec.cmrr_min_db > 0.0) {
    os << util::format("cmrr_db     %.6g\n", spec.cmrr_min_db);
  }
  if (spec.psrr_min_db > 0.0) {
    os << util::format("psrr_db     %.6g\n", spec.psrr_min_db);
  }
  if (spec.noise_max > 0.0) {
    os << util::format("noise_nv_rthz %.6g\n", spec.noise_max * 1e9);
  }
  return os.str();
}

}  // namespace oasys::core
