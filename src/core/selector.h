// Design style selection (paper Sections 3.2 and 4.3).
//
// "All possible styles are designed and a selection among successful design
// styles is made based on comparison of final parameters such as estimated
// area" — breadth-first selection.  Candidates that fully meet the spec are
// preferred; among those, smallest estimated area wins.  When no candidate
// fully meets the spec, the one with the fewest violated axes is offered as
// a first-cut design (the paper ships case C with PM under spec), again
// tie-broken by area.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace oasys::core {

// Summary of one designed style entered into selection.
struct StyleScore {
  std::string style_name;
  bool feasible = false;   // the translation plan completed
  int violations = 0;      // spec axes missed by the completed design
  double area = 0.0;       // estimated area [m^2]
};

struct SelectionResult {
  // Index into the candidate vector, or nullopt when nothing was feasible.
  std::optional<std::size_t> best;
  // Candidate indices from best to worst (feasible ones only).
  std::vector<std::size_t> ranking;
  std::string summary;  // human-readable reasoning
};

SelectionResult select_style(const std::vector<StyleScore>& candidates);

}  // namespace oasys::core
