// DesignContext: the shared blackboard a translation plan executes against.
//
// A plan's steps communicate through named design variables (currents,
// overdrives, partitioned gains, ...) plus whatever typed state a concrete
// designer adds by deriving from DesignContext.  Patch rules read and write
// the same variables, which is what lets a rule "skew the gain partition
// and restart the plan from an earlier step" (paper Sec. 4.2).
//
// Counters track how many times each rule has fired so rules can bound
// their own retries ("cascode at most once per stage").
#pragma once

#include <map>
#include <string>

#include "tech/technology.h"
#include "util/diagnostics.h"

namespace oasys::core {

class DesignContext {
 public:
  explicit DesignContext(const tech::Technology& technology)
      : tech_(&technology) {}
  virtual ~DesignContext() = default;

  const tech::Technology& technology() const { return *tech_; }

  // --- design variables ---------------------------------------------------
  void set(const std::string& name, double value) { vars_[name] = value; }
  // Throws std::out_of_range when the variable was never set: reading an
  // unset variable is a plan-authoring bug, not a design failure.
  double get(const std::string& name) const;
  double get_or(const std::string& name, double fallback) const;
  bool has(const std::string& name) const { return vars_.count(name) > 0; }
  const std::map<std::string, double>& variables() const { return vars_; }

  // --- rule bookkeeping ----------------------------------------------------
  // Increments and returns the new count for `counter`.  The per-context
  // count bounds rule retries ("cascode at most once per stage"); the
  // increment is mirrored into the global metrics registry as
  // "synth.ctx.<counter>" so aggregate per-block attribution survives the
  // context's destruction (rules fire rarely, so the by-name lookup is off
  // the hot path).
  int bump(const std::string& counter);
  int count(const std::string& counter) const;

  // --- narrative ------------------------------------------------------------
  util::DiagnosticLog& log() { return log_; }
  const util::DiagnosticLog& log() const { return log_; }

 private:
  const tech::Technology* tech_;
  std::map<std::string, double> vars_;
  std::map<std::string, int> counters_;
  util::DiagnosticLog log_;
};

}  // namespace oasys::core
