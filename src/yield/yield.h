// Monte-Carlo yield analysis — statistical qualification of a synthesized
// design as a first-class workload.
//
// The paper synthesizes one nominal design per spec; real knowledge-based
// flows must also report *yield*: the fraction of fabricated instances
// that still meet the spec under random device mismatch.  This module
// draws N mismatch samples, re-measures each perturbed instance through
// the same open-loop bench the nominal verification uses (offset null by
// bisection, DC at the null, AC sweep, loop metrics), and reduces to
// yield / sigma / percentile statistics per spec metric.
//
// Determinism contract (the whole point of the design):
//  * sample i draws from util::RngStream(seed, i) — a pure function of
//    (seed, sample index), so any partitioning of the sample space over
//    `--jobs` threads, shard workers, or chunk sizes sees identical draws;
//  * every sample warm-starts from the *nominal* operating point, computed
//    once before the fan-out — no cross-sample solver state;
//  * the reduction runs in fixed sample-index order (exec::parallel_for
//    lands results by index), and percentiles sort converged values.
// Together: analyze_yield() is bit-for-bit identical at every jobs
// setting, every shard worker count, and daemon vs. local execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/spec.h"
#include "synth/oasys.h"
#include "tech/technology.h"

namespace oasys::yield {

struct YieldParams {
  int samples = 200;
  std::uint64_t seed = 1;
  // Threads for the sample fan-out (0 = exec::default_jobs()).  Excluded
  // from canonical_string(): jobs never changes the result bytes, so it
  // must never split the cache.
  std::size_t jobs = 0;

  // Canonical "samples=...;seed=...;" rendering for cache keys and wire
  // fingerprints (util::Fingerprint token rules).
  std::string canonical_string() const;
};

// Distribution of one measured metric over the converged samples, plus its
// spec bound when the spec constrains that axis.  `pass` counts converged
// samples meeting the bound (equal to the converged count for
// unconstrained axes).
struct MetricStats {
  std::string name;        // "offset" | "gain_db" | "gbw" | "pm_deg"
  bool constrained = false;
  double bound = 0.0;      // spec bound (0 when unconstrained)
  std::uint64_t pass = 0;
  double mean = 0.0;
  double sigma = 0.0;      // sample stddev (n-1)
  double min = 0.0;
  double max = 0.0;
  double p05 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

struct YieldResult {
  bool ok = false;
  std::string error;
  // The underlying synthesis (nominal design + candidates); rendered as
  // the base oasys.result.v1 document by yield_result_json.
  synth::SynthesisResult synthesis;
  int samples_requested = 0;
  int samples_converged = 0;
  std::uint64_t seed = 0;
  // Samples that converged AND met every constrained spec axis.
  std::uint64_t pass_count = 0;
  double yield = 0.0;  // pass_count / samples_requested
  std::vector<MetricStats> metrics;
};

// Monte-Carlo analysis of an already-synthesized result.  Fails (ok ==
// false, error set) when the synthesis selected no feasible design or
// params.samples < 1; zero converged samples is reported as yield 0, not
// an error.
YieldResult analyze_yield(const tech::Technology& t,
                          const synth::SynthesisResult& synthesis,
                          const YieldParams& params);

// Synthesize `spec` first (exactly synthesize_opamp), then analyze.
YieldResult run_yield(const tech::Technology& t, const core::OpAmpSpec& spec,
                      const YieldParams& params,
                      const synth::SynthOptions& opts = {});

// Canonical oasys.result.v1 document: synth::result_json(r.synthesis)
// extended with a "yield" block.  Deterministic bytes; what the golden
// suite, shard conformance, and bench self-checks compare.
std::string yield_result_json(const YieldResult& r);

}  // namespace oasys::yield
