// YieldService — mixed synthesis + yield traffic over one service stack.
//
// The realistic serving workload is not N independent syntheses: it is a
// stream where cheap statistical queries (yield of spec X at seed S)
// vastly outnumber the expensive syntheses they depend on.  YieldService
// layers that traffic shape onto SynthesisService: every request's
// underlying synthesis goes through the synthesis service (LRU +
// single-flight dedup, so a thousand yield queries against one spec pay
// for one synthesis), and completed yield analyses are cached in their
// own LRU keyed by (request key, yield params) — the same key the daemon
// shared-cache tier and the shard router use, so a repeated yield request
// is a cache hit at every layer.
//
// Threading: run_mixed computes yield analyses serially in submission
// order on the calling thread (the parallelism lives inside
// analyze_yield's sample fan-out); the yield cache is mutex-guarded, so
// concurrent callers are safe but may duplicate a computation — which is
// harmless, because results are pure functions of the key.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "service/lru_cache.h"
#include "service/service.h"
#include "yield/yield.h"

namespace oasys::yield {

// One unit of mixed traffic: a plain synthesis when is_yield is false, a
// Monte-Carlo yield run (synthesis + N samples) when true.
struct Request {
  core::OpAmpSpec spec;
  bool is_yield = false;
  YieldParams params;  // meaningful only when is_yield
  // Distributed-tracing correlation (0 = untraced).  Carried alongside the
  // request so run_mixed can install the per-request trace context around
  // the computation; never part of any cache or routing key, and never a
  // result byte — tracing on/off must not change `oasys.result.v1`.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

// Per-request outcome, mirroring service::BatchOutcome: `error` is empty
// when the request ran to completion (an infeasible spec is an ordinary
// result), and holds the exception's what() when the computation threw.
struct Outcome {
  bool is_yield = false;
  synth::SynthesisResult result;  // when !is_yield
  YieldResult yield;              // when is_yield
  std::string error;
  bool ok() const { return error.empty(); }
};

// Canonical oasys.result.v1 bytes for either kind of outcome.
std::string outcome_json(const Outcome& o);

class YieldService {
 public:
  explicit YieldService(tech::Technology tech,
                        synth::SynthOptions synth_opts = {},
                        service::ServiceOptions opts = {});

  // Runs a mixed batch; out[i] answers requests[i], in submission order.
  // Synthesis outcomes are bit-for-bit SynthesisService::run_batch_outcomes;
  // yield outcomes are bit-for-bit run_yield at every jobs setting, on the
  // cold and cached paths alike.
  std::vector<Outcome> run_mixed(const std::vector<Request>& requests);

  service::ServiceStats stats() const { return service_.stats(); }
  service::SynthesisService& service() { return service_; }
  const service::SynthesisService& service() const { return service_; }

  // Cache key for a yield request: the underlying synthesis request key
  // plus the canonical yield params.  The shard router deliberately routes
  // yield requests by the *plain* request key (see shard/coordinator.cpp)
  // so synth and yield traffic for one spec co-locate on one worker.
  std::string yield_key(const core::OpAmpSpec& spec,
                        const YieldParams& params) const;

 private:
  service::SynthesisService service_;
  mutable std::mutex mu_;
  service::LruCache<std::string, YieldResult> cache_;
};

}  // namespace oasys::yield
