#include "yield/yield.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "exec/executor.h"
#include "numeric/interpolate.h"
#include "numeric/rootfind.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/measure.h"
#include "spice/workspace.h"
#include "synth/netlist_builder.h"
#include "synth/result_json.h"
#include "util/fingerprint.h"
#include "util/rng.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::yield {

namespace {

// One perturbed instance's measurements.  Landed by sample index from the
// parallel fan-out, so the reduction order never depends on scheduling.
struct Sample {
  bool converged = false;
  bool pass = false;
  double offset = 0.0;
  double gain_db = 0.0;
  double gbw = 0.0;
  double pm_deg = 0.0;
};

// Constraint axes the spec can pin.  Lower bounds check value >= bound,
// the offset axis checks value <= bound; a bound of 0 means unconstrained
// (core/spec.h convention).
struct Axis {
  const char* name;
  bool upper;  // true: value must be <= bound
  double bound;
  double Sample::*value;
};

std::vector<Axis> spec_axes(const core::OpAmpSpec& spec) {
  return {
      {"offset", true, spec.offset_max, &Sample::offset},
      {"gain_db", false, spec.gain_min_db, &Sample::gain_db},
      {"gbw", false, spec.gbw_min, &Sample::gbw},
      {"pm_deg", false, spec.pm_min_deg, &Sample::pm_deg},
  };
}

bool axis_pass(const Axis& a, const Sample& s) {
  if (a.bound == 0.0) return true;
  const double v = s.*(a.value);
  return a.upper ? v <= a.bound : v >= a.bound;
}

// Linear-interpolated percentile of an ascending-sorted vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::string num(double v) { return util::format("%.17g", v); }

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += util::format("\\u%04x", static_cast<unsigned>(c));
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string YieldParams::canonical_string() const {
  return util::Fingerprint()
      .field("samples", static_cast<long long>(samples))
      .field("seed", static_cast<long long>(seed))
      .str();
}

YieldResult analyze_yield(const tech::Technology& t,
                          const synth::SynthesisResult& synthesis,
                          const YieldParams& params) {
  static obs::Counter& requests =
      obs::Registry::global().counter("yield.requests");
  static obs::Counter& samples_total =
      obs::Registry::global().counter("yield.samples");
  static obs::Counter& samples_converged =
      obs::Registry::global().counter("yield.samples_converged");
  static obs::Counter& samples_passed =
      obs::Registry::global().counter("yield.samples_passed");
  requests.add();
  OBS_SPAN("yield/analyze");

  YieldResult result;
  result.synthesis = synthesis;
  result.samples_requested = params.samples;
  result.seed = params.seed;
  if (params.samples < 1) {
    result.error = "samples must be >= 1";
    return result;
  }
  const synth::OpAmpDesign* best = synthesis.best();
  if (best == nullptr) {
    result.error = "no feasible design to analyze";
    return result;
  }
  const synth::OpAmpDesign& design = *best;

  // Shared open-loop bench, built once; samples copy it and only touch
  // the per-device dvt fields.  Same fixture as the nominal verification
  // and monte_carlo_offset: supplies, differential inputs at the spec's
  // common-mode midpoint, the spec load.
  ckt::Circuit base;
  const synth::BuiltOpAmp nodes = synth::build_opamp(design, t, base);
  base.add_vsource("VDD", nodes.vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
  base.add_vsource("VSS", nodes.vss, ckt::kGround, ckt::Waveform::dc(t.vss));
  const double vcm =
      design.spec.icmr_lo != 0.0 || design.spec.icmr_hi != 0.0
          ? 0.5 * (design.spec.icmr_lo + design.spec.icmr_hi)
          : t.mid_supply();
  base.add_vsource("VIP", nodes.inp, ckt::kGround,
                   ckt::Waveform::ac(vcm, 0.5, 0.0));
  base.add_vsource("VIN", nodes.inn, ckt::kGround,
                   ckt::Waveform::ac(vcm, 0.5, 180.0));
  if (design.spec.cload > 0.0) {
    base.add_capacitor("CL", nodes.out, ckt::kGround, design.spec.cload);
  }
  const sim::MnaLayout layout(base);
  const std::size_t vip = *base.find_vsource("VIP");
  const std::size_t vin = *base.find_vsource("VIN");
  const double mid = t.mid_supply();

  // Per-device sigma(VT) from the area law, in mosfets() order — the draw
  // order every sample replays.
  std::vector<double> sigma_vt;
  sigma_vt.reserve(base.mosfets().size());
  for (const auto& m : base.mosfets()) {
    const tech::MosParams& p =
        m.type == mos::MosType::kNmos ? t.nmos : t.pmos;
    sigma_vt.push_back(p.sigma_vt(m.geom.w * m.geom.m, m.geom.l));
  }

  // Nominal operating point, computed once before the fan-out: every
  // sample warm-starts its offset search from these bytes, so there is no
  // cross-sample solver state and no partitioning dependence.
  std::vector<double> nominal;
  {
    const sim::OpResult op = sim::dc_operating_point(base, t, {});
    if (op.converged) nominal = op.solution;
  }

  // AC grid, fixed for every sample (same pole-anchored fmin heuristic as
  // the nominal testbench).
  double fmin = 1.0;
  if (design.predicted.gain_db > 0.0 && design.predicted.gbw > 0.0) {
    const double pole_est =
        design.predicted.gbw / util::from_db20(design.predicted.gain_db);
    fmin = std::min(fmin, std::max(pole_est / 30.0, 1e-4));
  }
  const std::vector<double> freqs = num::logspace(fmin, 1e9, 121);

  const std::vector<Axis> axes = spec_axes(design.spec);
  const std::size_t n = static_cast<std::size_t>(params.samples);
  std::vector<Sample> samples(n);
  const std::size_t lanes = exec::lane_count(n, params.jobs);
  std::vector<sim::SimWorkspace> scratch(lanes);

  exec::parallel_for_lanes(
      n,
      [&](std::size_t i, std::size_t lane) {
        ckt::Circuit c = base;
        util::RngStream rng(params.seed, i);
        for (std::size_t k = 0; k < c.mosfets().size(); ++k) {
          c.set_mosfet_dvt(c.mosfets()[k].name,
                           sigma_vt[k] * rng.next_gauss());
        }

        Sample& s = samples[i];
        sim::SimWorkspace& ws = scratch[lane];
        std::vector<double> warm = nominal;
        auto out_error = [&](double vid) {
          c.vsource(vip).wave = c.vsource(vip).wave.with_dc(vcm + 0.5 * vid);
          c.vsource(vin).wave = c.vsource(vin).wave.with_dc(vcm - 0.5 * vid);
          sim::OpOptions o;
          o.initial_guess = warm;
          const sim::OpResult op = sim::dc_operating_point(c, t, o, &ws);
          if (!op.converged) return std::nan("");
          warm = op.solution;
          return op.voltage(layout, nodes.out) - mid;
        };
        const auto bracket = num::bracket_root(out_error, -0.05, 0.05, 8);
        if (!bracket) return;
        num::RootOptions ro;
        ro.xtol = 1e-9;
        const auto vid =
            num::bisect(out_error, bracket->first, bracket->second, ro);
        if (!vid) return;
        s.offset = std::abs(*vid);

        c.vsource(vip).wave = c.vsource(vip).wave.with_dc(vcm + 0.5 * *vid);
        c.vsource(vin).wave = c.vsource(vin).wave.with_dc(vcm - 0.5 * *vid);
        sim::OpOptions o;
        o.initial_guess = warm;
        const sim::OpResult op = sim::dc_operating_point(c, t, o, &ws);
        if (!op.converged) return;

        // Serial AC inside the sample: the fan-out is across samples.
        const sim::AcResult ac = sim::ac_analysis(c, t, op, freqs, 1);
        if (!ac.ok) return;
        const sim::BodeSeries bode = sim::bode_of_node(ac, layout, nodes.out);
        const sim::LoopMetrics lm = sim::loop_metrics(bode);
        s.gain_db = lm.dc_gain_db;
        s.gbw = lm.unity_gain_freq.value_or(0.0);
        s.pm_deg = lm.phase_margin_deg.value_or(0.0);
        s.converged = true;
        bool pass = true;
        for (const Axis& a : axes) pass = pass && axis_pass(a, s);
        s.pass = pass;
      },
      params.jobs);

  // Fixed-order reduction: everything below iterates samples in index
  // order (or sorts values), never in completion order.
  for (const Axis& a : axes) {
    MetricStats m;
    m.name = a.name;
    m.constrained = a.bound != 0.0;
    m.bound = a.bound;
    std::vector<double> values;
    values.reserve(n);
    for (const Sample& s : samples) {
      if (!s.converged) continue;
      values.push_back(s.*(a.value));
      if (axis_pass(a, s)) ++m.pass;
    }
    if (!values.empty()) {
      double mean = 0.0;
      for (const double v : values) mean += v;
      mean /= static_cast<double>(values.size());
      double var = 0.0;
      for (const double v : values) var += (v - mean) * (v - mean);
      m.mean = mean;
      m.sigma = values.size() > 1
                    ? std::sqrt(var / static_cast<double>(values.size() - 1))
                    : 0.0;
      std::vector<double> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      m.min = sorted.front();
      m.max = sorted.back();
      m.p05 = percentile(sorted, 0.05);
      m.p50 = percentile(sorted, 0.50);
      m.p95 = percentile(sorted, 0.95);
    }
    result.metrics.push_back(std::move(m));
  }

  for (const Sample& s : samples) {
    if (s.converged) ++result.samples_converged;
    if (s.pass) ++result.pass_count;
  }
  result.yield = static_cast<double>(result.pass_count) /
                 static_cast<double>(params.samples);
  result.ok = true;

  samples_total.add(static_cast<std::uint64_t>(params.samples));
  samples_converged.add(static_cast<std::uint64_t>(result.samples_converged));
  samples_passed.add(result.pass_count);
  return result;
}

YieldResult run_yield(const tech::Technology& t, const core::OpAmpSpec& spec,
                      const YieldParams& params,
                      const synth::SynthOptions& opts) {
  return analyze_yield(t, synthesize_opamp(t, spec, opts), params);
}

std::string yield_result_json(const YieldResult& r) {
  const std::string base = synth::result_json(r.synthesis);
  std::ostringstream os;
  // Splice the yield block into the base document before its closing
  // brace; the result is still one oasys.result.v1 object.
  os << base.substr(0, base.size() - 1) << ",\n \"yield\": {\"ok\": "
     << (r.ok ? "true" : "false");
  if (!r.ok) os << ", \"error\": " << quote(r.error);
  os << ", \"samples\": " << r.samples_requested << ", \"seed\": " << r.seed
     << ", \"converged\": " << r.samples_converged
     << ", \"pass\": " << r.pass_count << ", \"yield\": " << num(r.yield)
     << ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    const MetricStats& m = r.metrics[i];
    os << (i == 0 ? "\n   " : ",\n   ") << "{\"name\": " << quote(m.name)
       << ", \"constrained\": " << (m.constrained ? "true" : "false")
       << ", \"bound\": " << num(m.bound) << ", \"pass\": " << m.pass
       << ", \"mean\": " << num(m.mean) << ", \"sigma\": " << num(m.sigma)
       << ", \"min\": " << num(m.min) << ", \"max\": " << num(m.max)
       << ", \"p05\": " << num(m.p05) << ", \"p50\": " << num(m.p50)
       << ", \"p95\": " << num(m.p95) << "}";
  }
  os << "\n  ]}}";
  return os.str();
}

}  // namespace oasys::yield
