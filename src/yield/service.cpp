#include "yield/service.h"

#include "obs/span.h"
#include "synth/result_json.h"

namespace oasys::yield {

std::string outcome_json(const Outcome& o) {
  return o.is_yield ? yield_result_json(o.yield)
                    : synth::result_json(o.result);
}

YieldService::YieldService(tech::Technology tech,
                           synth::SynthOptions synth_opts,
                           service::ServiceOptions opts)
    : service_(std::move(tech), std::move(synth_opts), opts),
      cache_(opts.cache_enabled ? opts.cache_capacity : 0) {}

std::string YieldService::yield_key(const core::OpAmpSpec& spec,
                                    const YieldParams& params) const {
  return service_.request_key(spec) + "|yield;" + params.canonical_string();
}

std::vector<Outcome> YieldService::run_mixed(
    const std::vector<Request>& requests) {
  // Phase 1: every request's underlying synthesis, through the synthesis
  // service — repeats and yield-over-synth pairs dedup to one computation
  // per distinct spec.
  std::vector<core::OpAmpSpec> specs;
  specs.reserve(requests.size());
  for (const Request& r : requests) specs.push_back(r.spec);
  const std::vector<service::BatchOutcome> syn =
      service_.run_batch_outcomes(specs);

  // Phase 2: yield analyses, serially in submission order (the sample
  // fan-out inside analyze_yield is the parallel part).
  std::vector<Outcome> out(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    // Per-request trace context: events emitted while this request is
    // being answered (including inside analyze_yield on the calling
    // thread) carry its span id.  A no-op for untraced requests.
    obs::ScopedTraceContext trace_ctx(requests[i].trace_id,
                                      requests[i].span_id);
    obs::Span request_span("yield_service",
                           requests[i].is_yield ? "request.yield"
                                                : "request.synth");
    request_span.note(requests[i].spec.name);
    Outcome& o = out[i];
    o.is_yield = requests[i].is_yield;
    if (!syn[i].ok()) {
      o.error = syn[i].error;
      request_span.note("synthesis failed");
      continue;
    }
    if (!o.is_yield) {
      o.result = syn[i].result;
      continue;
    }
    // Workers and batch front-ends parallelize the sample loop with the
    // same jobs setting the synthesis ran at; jobs is excluded from the
    // cache key because it never changes the result bytes.
    YieldParams params = requests[i].params;
    params.jobs = service_.synth_options().jobs;
    const std::string key = yield_key(requests[i].spec, params);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const YieldResult* hit = cache_.get(key)) {
        o.yield = *hit;
        request_span.note("yield cache hit");
        continue;
      }
    }
    try {
      o.yield = analyze_yield(service_.technology(), syn[i].result, params);
    } catch (const std::exception& e) {
      o.error = e.what();
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    cache_.put(key, o.yield);
  }
  return out;
}

}  // namespace oasys::yield
