#include "baseline/random_sizer.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "blocks/block_common.h"
#include "mos/design_eqs.h"
#include "util/units.h"

namespace oasys::baseline {

core::OpAmpPerformance evaluate_flat_two_stage(const tech::Technology& t,
                                               const core::OpAmpSpec& spec,
                                               const FlatSizing& s) {
  core::OpAmpPerformance p;
  const double id1 = s.i5 / 2.0;
  const double mid = t.mid_supply();

  const double vov1 = mos::vov_from_current(t.nmos.kp, id1, s.w1 / s.l1);
  const double gm1 = mos::gm_from_id_vov(id1, vov1);
  const double vov3 = mos::vov_from_current(t.pmos.kp, id1, s.w3 / s.l3);
  const double vov6 = mos::vov_from_current(t.pmos.kp, s.i6, s.w6 / s.l6);
  const double gm6 = mos::gm_from_id_vov(s.i6, vov6);

  p.gbw = gm1 / (util::kTwoPi * s.cc);
  p.slew = std::min(s.i5 / s.cc, s.i6 / (s.cc + spec.cload));

  const double av1 =
      gm1 / ((t.nmos.lambda_at(s.l1) + t.pmos.lambda_at(s.l3)) * id1);
  const double av2 =
      gm6 / ((t.pmos.lambda_at(s.l6) + t.nmos.lambda_at(s.l7)) * s.i6);
  p.gain_db = util::db20(av1 * av2);

  // Phase margin: output pole, RHP zero, and the load-mirror pole.
  const double p2 = gm6 / (util::kTwoPi * spec.cload);
  const double z = gm6 / (util::kTwoPi * s.cc);
  const double gm3 = mos::gm_from_id_vov(id1, vov3);
  const double cgs3 = mos::cgs_sat(t, t.pmos, {s.w3, s.l3, 1});
  const double p_mirror = gm3 / (util::kTwoPi * 2.0 * cgs3);
  auto lag = [&](double pole) {
    return pole > 0.0 ? util::deg(std::atan(p.gbw / pole)) : 90.0;
  };
  p.pm_deg = 90.0 - lag(p2) - lag(z) - lag(p_mirror);

  p.swing_pos = t.vdd - vov6 - mid;
  const double vov7 = mos::vov_from_current(t.nmos.kp, s.i6, s.w7 / s.l7);
  p.swing_neg = mid - (t.vss + vov7);

  // Systematic offset: inter-stage DC mismatch referred to the input.
  const double vsg3 = mos::vgs_for(t.pmos, vov3, 0.0);
  const double vsg6 = mos::vgs_for(t.pmos, vov6, 0.0);
  p.offset = std::abs(vsg6 - vsg3) / std::max(av1, 1.0);

  const double vcm = 0.5 * (spec.icmr_lo + spec.icmr_hi);
  const double vgs1 = mos::vgs_for(
      t.nmos, vov1, std::max(vcm - t.vss - t.nmos.vt0 - vov1, 0.0));
  const double vov5 = mos::vov_from_current(t.nmos.kp, s.i5, s.w5 / s.l5);
  p.icmr_lo = t.vss + vgs1 + vov5;
  p.icmr_hi = t.vdd - vsg3 + (vgs1 - vov1);

  p.power = (s.i5 + s.i6 + std::min(s.i5, util::ua(25.0))) *
            t.supply_span();
  const double dev_area =
      t.device_area(2.0 * s.w1, s.l1) + t.device_area(2.0 * s.w3, s.l3) +
      t.device_area(s.w5 * 2.0, s.l5) + t.device_area(s.w6, s.l6) +
      t.device_area(s.w7, s.l7);
  p.area = dev_area + t.capacitor_area(s.cc);
  p.cmrr_db = p.gain_db;  // not scored
  p.psrr_db = p.gain_db;
  return p;
}

BaselineResult random_search_two_stage(const tech::Technology& t,
                                       const core::OpAmpSpec& spec,
                                       const BaselineOptions& opts) {
  BaselineResult result;
  std::mt19937_64 rng(opts.seed);
  auto log_uniform = [&](double lo, double hi) {
    std::uniform_real_distribution<double> u(std::log(lo), std::log(hi));
    return std::exp(u(rng));
  };

  const double wmin = t.wmin;
  const double wmax = blocks::max_width(t);
  const double lmin = t.lmin;
  const double lmax = blocks::max_length(t);

  result.best_violations = 1 << 20;
  for (int i = 0; i < opts.max_evaluations; ++i) {
    ++result.evaluations;
    FlatSizing s;
    s.w1 = log_uniform(wmin, wmax);
    s.l1 = log_uniform(lmin, lmax);
    s.w3 = log_uniform(wmin, wmax);
    s.l3 = log_uniform(lmin, lmax);
    s.w5 = log_uniform(wmin, wmax);
    s.l5 = log_uniform(lmin, lmax);
    s.w6 = log_uniform(wmin, wmax);
    s.l6 = log_uniform(lmin, lmax);
    s.w7 = log_uniform(wmin, wmax);
    s.l7 = log_uniform(lmin, lmax);
    s.i5 = log_uniform(util::ua(2.0), util::ua(500.0));
    s.i6 = log_uniform(util::ua(5.0), util::ma(2.0));
    s.cc = log_uniform(util::pf(0.5), util::pf(50.0));

    const core::OpAmpPerformance perf =
        evaluate_flat_two_stage(t, spec, s);
    const int violations =
        core::violation_count(core::check_spec(spec, perf));
    if (violations < result.best_violations ||
        (violations == result.best_violations &&
         perf.area < result.best_perf.area)) {
      result.best_violations = violations;
      result.best = s;
      result.best_perf = perf;
    }
    if (violations == 0) {
      ++result.feasible_found;
      if (!result.success) {
        result.success = true;
        // Keep sampling only if the caller wants statistics; stop here.
        break;
      }
    }
  }
  return result;
}

}  // namespace oasys::baseline
