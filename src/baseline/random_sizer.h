// Baseline sizer: flat random search, no hierarchy, no plans, no rules.
//
// The paper argues for knowledge-based synthesis over unstructured search;
// this module is the ablation comparator.  It sizes the *same* simple
// two-stage topology by sampling device geometries, currents and the
// compensation capacitor from log-uniform ranges and scoring each sample
// with the same first-order circuit equations the OASYS plans manipulate.
// The bench compares evaluations-to-feasible and success rate against the
// plan-based designer.
#pragma once

#include <cstdint>

#include "core/spec.h"
#include "tech/technology.h"

namespace oasys::baseline {

// One flat parameterization of the simple two-stage op amp.
struct FlatSizing {
  double w1 = 0.0, l1 = 0.0;  // input pair
  double w3 = 0.0, l3 = 0.0;  // load mirror
  double w5 = 0.0, l5 = 0.0;  // tail / bias mirror
  double w6 = 0.0, l6 = 0.0;  // gain device
  double w7 = 0.0, l7 = 0.0;  // output sink
  double i5 = 0.0;            // first-stage current [A]
  double i6 = 0.0;            // second-stage current [A]
  double cc = 0.0;            // compensation [F]
};

// First-order performance of a flat sizing (same equations as the plans).
core::OpAmpPerformance evaluate_flat_two_stage(const tech::Technology& t,
                                               const core::OpAmpSpec& spec,
                                               const FlatSizing& s);

struct BaselineOptions {
  std::uint64_t seed = 1;
  int max_evaluations = 20000;
};

struct BaselineResult {
  bool success = false;           // found a sizing meeting every axis
  int evaluations = 0;            // samples drawn (<= max on success)
  int feasible_found = 0;         // count of fully feasible samples seen
  FlatSizing best;
  core::OpAmpPerformance best_perf;
  int best_violations = 0;        // violated axes of the best sample
};

BaselineResult random_search_two_stage(const tech::Technology& t,
                                       const core::OpAmpSpec& spec,
                                       const BaselineOptions& opts = {});

}  // namespace oasys::baseline
