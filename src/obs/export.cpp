#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/table.h"
#include "util/text.h"

namespace oasys::obs {

namespace {

using util::format;

// Shortest round-trip decimal: integers (every deterministic value) render
// exactly, durations keep full precision.
std::string num(double v) { return format("%.17g", v); }

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void append_histogram(std::ostringstream* os, const HistogramSnapshot& h) {
  *os << "{\"count\": " << h.count << ", \"sum\": " << num(h.sum)
      << ", \"min\": " << num(h.min) << ", \"max\": " << num(h.max)
      << ", \"mean\": " << num(h.mean()) << ", \"p50\": "
      << num(h.quantile(0.5)) << ", \"p95\": " << num(h.quantile(0.95))
      << ", \"buckets\": [";
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    if (i > 0) *os << ", ";
    *os << "[" << num(h.bounds[i]) << ", " << h.counts[i] << "]";
  }
  *os << "], \"overflow\": " << h.counts.back() << "}";
}

void append_section(std::ostringstream* os,
                    const std::vector<const MetricEntry*>& entries) {
  *os << "{";
  bool first_kind = true;
  for (const MetricKind kind : {MetricKind::kCounter, MetricKind::kGauge,
                                MetricKind::kHistogram}) {
    const char* key = kind == MetricKind::kCounter   ? "counters"
                      : kind == MetricKind::kGauge   ? "gauges"
                                                     : "histograms";
    if (!first_kind) *os << ", ";
    first_kind = false;
    *os << quote(key) << ": {";
    bool first = true;
    for (const MetricEntry* e : entries) {
      if (e->kind != kind) continue;
      if (!first) *os << ", ";
      first = false;
      *os << quote(e->name) << ": ";
      switch (kind) {
        case MetricKind::kCounter:
          *os << e->counter;
          break;
        case MetricKind::kGauge:
          *os << num(e->gauge);
          break;
        case MetricKind::kHistogram:
          append_histogram(os, e->histogram);
          break;
      }
    }
    *os << "}";
  }
  *os << "}";
}

}  // namespace

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::vector<const MetricEntry*> det;
  std::vector<const MetricEntry*> timing;
  for (const auto& e : snapshot.entries) {
    (e.deterministic ? det : timing).push_back(&e);
  }
  std::ostringstream os;
  os << "{\"schema\": \"oasys.metrics.v1\", \"deterministic\": ";
  append_section(&os, det);
  os << ", \"timing\": ";
  append_section(&os, timing);
  os << "}";
  return os.str();
}

bool write_metrics_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write metrics JSON to '%s'\n", path.c_str());
    return false;
  }
  out << metrics_json(Registry::global().snapshot()) << "\n";
  return static_cast<bool>(out);
}

std::string metrics_table(const MetricsSnapshot& snapshot) {
  util::Table table({"metric", "kind", "value", "mean", "p50", "p95", "det"});
  for (std::size_t c = 2; c <= 5; ++c) table.set_align(c, util::Align::kRight);
  for (const auto& e : snapshot.entries) {
    switch (e.kind) {
      case MetricKind::kCounter:
        table.add_row({e.name, "counter", format("%llu",
                       static_cast<unsigned long long>(e.counter)),
                       "-", "-", "-", e.deterministic ? "yes" : "no"});
        break;
      case MetricKind::kGauge:
        table.add_row({e.name, "gauge", format("%g", e.gauge), "-", "-", "-",
                       e.deterministic ? "yes" : "no"});
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = e.histogram;
        table.add_row({e.name, "histogram",
                       format("%llu", static_cast<unsigned long long>(h.count)),
                       format("%g", h.mean()), format("%g", h.quantile(0.5)),
                       format("%g", h.quantile(0.95)),
                       e.deterministic ? "yes" : "no"});
        break;
      }
    }
  }
  return table.to_string();
}

namespace {

std::string hex_id(std::uint64_t id) {
  return format("%016llx", static_cast<unsigned long long>(id));
}

}  // namespace

std::string trace_chrome_json(const std::vector<TraceProcess>& processes,
                              std::uint64_t trace_id) {
  // Normalize to the earliest stamped event so the viewer opens at t=0.
  std::uint64_t min_ts = 0;
  bool have_ts = false;
  for (const auto& p : processes) {
    for (const auto& e : p.events) {
      if (e.ts_us == 0) continue;  // pre-tracing event, leave at origin
      if (!have_ts || e.ts_us < min_ts) {
        min_ts = e.ts_us;
        have_ts = true;
      }
    }
  }

  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n ";
    first = false;
  };
  for (const auto& p : processes) {
    sep();
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << p.pid
       << ", \"tid\": 0, \"args\": {\"name\": " << quote(p.name) << "}}";
    for (const auto& e : p.events) {
      const double rel_us =
          e.ts_us >= min_ts ? static_cast<double>(e.ts_us - min_ts) : 0.0;
      switch (e.kind) {
        case TraceEvent::Kind::kSpanBegin:
          // "X" complete events carry begin+duration from the kSpanEnd;
          // rendering begins too would double every span.
          break;
        case TraceEvent::Kind::kSpanEnd: {
          const double dur_us = e.seconds * 1e6;
          const double start_us = rel_us >= dur_us ? rel_us - dur_us : 0.0;
          sep();
          os << "{\"name\": " << quote(e.name)
             << ", \"ph\": \"X\", \"ts\": " << num(start_us)
             << ", \"dur\": " << num(dur_us) << ", \"pid\": " << p.pid
             << ", \"tid\": " << e.tid << ", \"args\": {\"span_id\": \""
             << hex_id(e.span_id) << "\"";
          if (!e.detail.empty()) os << ", \"detail\": " << quote(e.detail);
          os << "}}";
          break;
        }
        case TraceEvent::Kind::kInstant: {
          sep();
          os << "{\"name\": " << quote(e.name)
             << ", \"ph\": \"i\", \"ts\": " << num(rel_us)
             << ", \"pid\": " << p.pid << ", \"tid\": " << e.tid
             << ", \"s\": \"t\", \"args\": {\"span_id\": \""
             << hex_id(e.span_id) << "\"";
          if (!e.scope.empty()) {
            os << ", \"scope\": " << quote(e.scope) << ", \"index\": "
               << e.index;
          }
          if (!e.code.empty()) os << ", \"code\": " << quote(e.code);
          if (!e.detail.empty()) os << ", \"detail\": " << quote(e.detail);
          os << "}}";
          break;
        }
      }
    }
  }
  os << "],\n \"displayTimeUnit\": \"ms\", \"otherData\": {\"trace_id\": \""
     << hex_id(trace_id) << "\"}}";
  return os.str();
}

std::string trace_text(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  for (const auto& e : events) {
    for (int d = 0; d < e.depth; ++d) os << "  ";
    switch (e.kind) {
      case TraceEvent::Kind::kSpanBegin:
        os << "> " << e.name << "\n";
        break;
      case TraceEvent::Kind::kSpanEnd:
        os << "< " << e.name << format(" (%.3f ms)", e.seconds * 1e3);
        if (!e.detail.empty()) os << " — " << e.detail;
        os << "\n";
        break;
      case TraceEvent::Kind::kInstant:
        os << "* " << e.name;
        if (!e.scope.empty()) {
          os << " [" << e.scope << " #" << e.index << "]";
        }
        if (!e.code.empty()) os << " (" << e.code << ")";
        if (!e.detail.empty()) os << ": " << e.detail;
        os << "\n";
        break;
    }
  }
  return os.str();
}

}  // namespace oasys::obs
