// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms shared by every layer of the stack (plan execution, Newton
// solves, the executor, the service).
//
// Design constraints, in order:
//
//  1. Hot paths stay cheap.  Instrumentation sites cache a reference once
//     (function-local static) and then pay one relaxed atomic RMW per
//     update — no lock, no lookup, no allocation.
//  2. Deterministic values.  Counter totals and count-histogram contents
//     are sums of per-work-item contributions; addition of integers is
//     commutative, so the totals are bit-identical at every `--jobs`
//     setting.  Only *durations* (and gauges derived from scheduling, such
//     as lanes used) may vary; every metric carries a `deterministic` flag
//     and the exporters separate the two groups so the cross-jobs ctest
//     can compare the deterministic section exactly.
//  3. Values reset, objects persist.  Registry::reset() zeroes every
//     metric but keeps registrations, so cached references stay valid
//     across bench reps and test cases.
//
// Determinism fine print: count-kind histograms must observe integral
// values (iteration counts, batch sizes).  Integer-valued doubles sum
// exactly in any order up to 2^53, so bucket counts, sum, min, and max all
// stay bit-identical across thread interleavings; duration histograms make
// no such promise and are flagged accordingly.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace oasys::obs {

// Monotonic event count.  Deterministic whenever each unit of work adds a
// value that does not depend on scheduling.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-written / high-water / low-water value.  set_max (set_min) keeps
// the running maximum (minimum), which is order-independent (and
// therefore deterministic when the set of observed values is).  The reset
// value 0.0 doubles as "unset" for set_min, so low-water gauges must only
// observe strictly positive values (step sizes, durations, ...).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void set_max(double v) noexcept;
  void set_min(double v) noexcept;
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Point-in-time copy of a histogram, with quantile estimation.
struct HistogramSnapshot {
  std::vector<double> bounds;          // inclusive upper bounds, ascending
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  // Linear interpolation within the target bucket, clamped to [min, max].
  // q in [0, 1]; returns 0 for an empty histogram.
  double quantile(double q) const;
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
// overflow bucket catches the rest.  Thread-safe; every field is atomic.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  void observe(double v) noexcept;
  HistogramSnapshot snapshot() const;
  void reset() noexcept;

  // Geometric bucket ladder: lo, lo*factor, ... up to and including the
  // first bound >= hi.  Throws std::invalid_argument on a non-positive lo
  // or a factor <= 1.
  static std::vector<double> exponential_bounds(double lo, double hi,
                                                double factor);
  // The default ladder for wall-time histograms: 1 us .. ~100 s, x2 steps.
  static std::vector<double> duration_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// How a gauge combines across processes in merge_snapshots.  kMax suits
// high-water marks; kMin suits low-water marks (smallest accepted step
// size, ...).  Both are associative and commutative, so the merged value
// is invariant to how work was partitioned across workers.  The gauge
// reset value 0.0 means "unset" and never participates in a kMin merge.
enum class GaugeMerge { kMax = 0, kMin };

// One metric in a registry snapshot.
struct MetricEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  bool deterministic = true;
  GaugeMerge gauge_merge = GaugeMerge::kMax;  // kGauge only
  std::uint64_t counter = 0;     // kCounter
  double gauge = 0.0;            // kGauge
  HistogramSnapshot histogram;   // kHistogram
};

// Sorted-by-name copy of every registered metric.
struct MetricsSnapshot {
  std::vector<MetricEntry> entries;
  const MetricEntry* find(const std::string& name) const;
};

// Cross-process aggregation (the shard coordinator merges one snapshot per
// worker).  Entries are united by name: counters add, gauges combine per
// their declared GaugeMerge (maximum for high-water marks, minimum —
// ignoring the 0.0 unset value — for low-water marks), histograms add
// bucket-wise and combine count/sum/min/max.  A name registered with
// different kinds, different gauge merge modes, or different histogram
// bounds across parts throws std::logic_error (schema drift, never
// silent).  The merged `deterministic` flag is the AND of the parts'
// flags.  The result is name-sorted, so it renders through metrics_json
// like any snapshot.
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts);

// Name-keyed registry.  Registration (first call per name) takes a mutex;
// subsequent calls for the same name return the same object, so call sites
// hoist the lookup into a function-local static and the steady-state cost
// is a single atomic update.  Registering an existing name with a
// different kind throws std::logic_error; the deterministic flag and
// histogram bounds of the first registration win.
class Registry {
 public:
  Counter& counter(const std::string& name, bool deterministic = true);
  Gauge& gauge(const std::string& name, bool deterministic = false,
               GaugeMerge merge = GaugeMerge::kMax);
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       bool deterministic);
  // Count-valued histogram (iterations per solve, ...): deterministic.
  Histogram& count_histogram(const std::string& name,
                             std::vector<double> bounds);
  // Wall-time histogram on the default duration ladder: never compared
  // across jobs settings.
  Histogram& duration_histogram(const std::string& name);

  // Zeroes every metric value; registrations (and addresses) persist.
  void reset();
  MetricsSnapshot snapshot() const;

  // Process-wide instance, leaked on purpose so late worker threads can
  // never race static destruction.
  static Registry& global();

 private:
  struct Entry {
    MetricKind kind;
    bool deterministic;
    GaugeMerge gauge_merge = GaugeMerge::kMax;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(const std::string& name, MetricKind kind, bool deterministic);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace oasys::obs
