// Renderers over the observability state: machine JSON for `--metrics-json`
// and the bench records, a util::Table for humans, and the plain-text span
// timeline `oasys --trace` prints.
//
// JSON schema (oasys.metrics.v1): two top-level sections split by the
// determinism contract.  Everything under "deterministic" is bit-identical
// across `--jobs` settings (counters, count-histograms); everything under
// "timing" may vary run to run (durations, scheduling-derived gauges).
//
//   {
//     "schema": "oasys.metrics.v1",
//     "deterministic": {
//       "counters":   { "<name>": <uint>, ... },
//       "gauges":     { "<name>": <number>, ... },
//       "histograms": { "<name>": {
//           "count": <uint>, "sum": <number>, "min": <number>,
//           "max": <number>, "mean": <number>,
//           "p50": <number>, "p95": <number>,
//           "buckets": [[<upper-bound>, <count>], ...],
//           "overflow": <uint> }, ... }
//     },
//     "timing": { same shape }
//   }
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace oasys::obs {

// Compact one-object JSON document (no trailing newline).
std::string metrics_json(const MetricsSnapshot& snapshot);

// Convenience: snapshot the global registry and write it to `path`.
// Returns false (after perror-style stderr output) when the file cannot
// be written.
bool write_metrics_json(const std::string& path);

// Human rendering of a snapshot as a util::Table: one row per metric with
// kind, value / count, mean, p50/p95 where meaningful, and the
// determinism flag.
std::string metrics_table(const MetricsSnapshot& snapshot);

// Plain-text rendering of a trace-event stream (the `--trace` span
// timeline): spans indent with depth and print their wall time; instants
// print their narrative.
std::string trace_text(const std::vector<TraceEvent>& events);

}  // namespace oasys::obs
