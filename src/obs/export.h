// Renderers over the observability state: machine JSON for `--metrics-json`
// and the bench records, a util::Table for humans, and the plain-text span
// timeline `oasys --trace` prints.
//
// JSON schema (oasys.metrics.v1): two top-level sections split by the
// determinism contract.  Everything under "deterministic" is bit-identical
// across `--jobs` settings (counters, count-histograms); everything under
// "timing" may vary run to run (durations, scheduling-derived gauges).
//
//   {
//     "schema": "oasys.metrics.v1",
//     "deterministic": {
//       "counters":   { "<name>": <uint>, ... },
//       "gauges":     { "<name>": <number>, ... },
//       "histograms": { "<name>": {
//           "count": <uint>, "sum": <number>, "min": <number>,
//           "max": <number>, "mean": <number>,
//           "p50": <number>, "p95": <number>,
//           "buckets": [[<upper-bound>, <count>], ...],
//           "overflow": <uint> }, ... }
//     },
//     "timing": { same shape }
//   }
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace oasys::obs {

// Compact one-object JSON document (no trailing newline).
std::string metrics_json(const MetricsSnapshot& snapshot);

// Convenience: snapshot the global registry and write it to `path`.
// Returns false (after perror-style stderr output) when the file cannot
// be written.
bool write_metrics_json(const std::string& path);

// Human rendering of a snapshot as a util::Table: one row per metric with
// kind, value / count, mean, p50/p95 where meaningful, and the
// determinism flag.
std::string metrics_table(const MetricsSnapshot& snapshot);

// Plain-text rendering of a trace-event stream (the `--trace` span
// timeline): spans indent with depth and print their wall time; instants
// print their narrative.
std::string trace_text(const std::vector<TraceEvent>& events);

// One process lane of a distributed trace: the coordinator's own events
// plus one entry per worker, each rendered as a Chrome trace-event
// "process" so Perfetto shows a labelled swim lane per participant.
struct TraceProcess {
  std::uint64_t pid = 0;    // export lane, not the OS pid (0 = coordinator)
  std::string name;         // process_name metadata, e.g. "worker 2"
  std::vector<TraceEvent> events;
};

// Chrome trace-event JSON (chrome://tracing / Perfetto "JSON" format):
// kSpanEnd events become "X" complete events (begin events carry no
// duration and are skipped — "X" is robust to streams whose begins were
// lost with a crashed worker), instants become "i", and each process
// contributes a process_name metadata record.  Timestamps are normalized
// so the earliest event sits at t=0.  Like every trace payload this is
// timing-class data: bytes vary run to run.
std::string trace_chrome_json(const std::vector<TraceProcess>& processes,
                              std::uint64_t trace_id);

}  // namespace oasys::obs
