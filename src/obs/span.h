// Scoped-span tracer: the one event stream behind both the plan-execution
// narrative (`--trace`, rendered by core::ExecutionTrace) and the
// machine-readable span/metrics export.
//
// A Span is an RAII scope: construction emits kSpanBegin, destruction
// emits kSpanEnd with the measured wall time — including during stack
// unwinding, so spans close on throw.  Instant events carry the
// plan-executor narrative (step ok/failed, rule fired, abort) through the
// same stream.
//
// Event routing, per emission:
//   * the calling thread's installed sink (ScopedSink), if any — this is
//     how execute_plan captures its own narrative regardless of which
//     pool thread runs it; and
//   * the process-wide collector, when set_tracing_enabled(true) — this is
//     what `oasys --trace` renders as a span timeline.
//
// Overhead contract: when no sink is installed and tracing is disabled, a
// Span costs two thread-local reads plus one relaxed atomic load and
// performs no heap allocation (guarded by tests/test_obs_alloc.cpp).
// Compiling with OASYS_OBS_DISABLE removes OBS_SPAN sites entirely.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oasys::obs {

struct TraceEvent {
  enum class Kind { kSpanBegin, kSpanEnd, kInstant };
  Kind kind = Kind::kInstant;
  int depth = 0;        // nesting depth on the emitting thread
  std::string name;     // span name or instant-event name
  std::string scope;    // e.g. the plan step the event belongs to
  std::string code;     // classifier: failure code, rule name, ...
  std::string detail;   // free-text narrative
  std::uint64_t index = 0;  // e.g. plan step index
  double seconds = 0.0;     // kSpanEnd: measured wall time
  // Distributed-tracing correlation, stamped only while tracing is active.
  // ts_us is microseconds on the CLOCK_MONOTONIC timeline, which is
  // machine-wide on Linux — coordinator and worker timestamps from the
  // same host land on one comparable axis.  tid is a small per-process
  // thread ordinal (0 = first emitting thread), trace_id/span_id come
  // from the innermost ScopedTraceContext (0 = none).
  std::uint64_t ts_us = 0;
  std::uint64_t tid = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
};

// Vector-backed sink for single-threaded capture (plan execution, tests).
class TraceBuffer : public TraceSink {
 public:
  void on_event(const TraceEvent& e) override { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

// Installs `sink` as the calling thread's trace sink for its lifetime and
// restores the previous sink on destruction; sinks nest.
class ScopedSink {
 public:
  explicit ScopedSink(TraceSink* sink);
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  TraceSink* prev_;
};

// Process-wide collector toggle (off by default).  Draining returns and
// clears everything collected so far; events from concurrent threads
// interleave in completion order (durations vary by scheduling anyway).
void set_tracing_enabled(bool enabled);
bool tracing_enabled();
std::vector<TraceEvent> drain_global_trace();

// Fine-grained timing instrumentation toggle (per-task latency in the
// executor).  Off by default: the clock reads would tax sub-microsecond
// tasks on the simulation hot paths.
void set_timing_enabled(bool enabled);
bool timing_enabled();

// True when at least one destination would receive an event from this
// thread right now.
bool trace_active();

// --- Distributed-tracing correlation ------------------------------------
//
// A trace ID names one coordinator-level request batch; a span ID names
// one spec/request within it.  The coordinator mints both, ships them to
// workers in the wire-level trace context, and each process installs a
// ScopedTraceContext around the work so every emitted event carries the
// pair.  IDs are plain u64s: nonzero means "present".

// Mints a nonzero trace ID from the monotonic clock and pid — unique
// enough to correlate frames within one fleet run, and stable across the
// run (minted once by the coordinator, never re-derived).
std::uint64_t mint_trace_id();

// Deterministic per-request span ID: mixes the trace ID with the request
// sequence number so coordinator and worker agree without a round trip.
std::uint64_t span_id_for(std::uint64_t trace_id, std::uint64_t seq);

// Installs (trace_id, span_id) as the calling thread's trace context for
// its lifetime; contexts nest and restore the outer pair on destruction.
class ScopedTraceContext {
 public:
  ScopedTraceContext(std::uint64_t trace_id, std::uint64_t span_id);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  std::uint64_t prev_trace_;
  std::uint64_t prev_span_;
};

// The calling thread's current context (0 when none installed).
std::uint64_t current_trace_id();
std::uint64_t current_span_id();

// Microseconds now on the shared CLOCK_MONOTONIC timeline (the same
// clock Span durations use).
std::uint64_t monotonic_now_us();

// Emits one instant event to the active destinations; a no-op (and
// allocation-free) when none are active.
void emit_instant(std::string_view name, std::string_view scope,
                  std::string_view code, std::string_view detail,
                  std::uint64_t index = 0);

// RAII scoped span.  Both constructors are no-ops when inactive; the
// two-argument form joins "scope/name" only when the event is actually
// emitted, so call sites can pass runtime strings without paying for them
// in the disabled mode.
class Span {
 public:
  explicit Span(std::string_view name) : Span(std::string_view{}, name) {}
  Span(std::string_view scope, std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  // Attaches narrative to the closing kSpanEnd event; no-op when inactive.
  void note(std::string_view detail);

 private:
  bool active_ = false;
  std::string name_;
  std::string detail_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace oasys::obs

// Statement macro for static span names: OBS_SPAN("sim/dc_op");
// compile out every site with -DOASYS_OBS_DISABLE.
#ifdef OASYS_OBS_DISABLE
#define OBS_SPAN(name) \
  do {                 \
  } while (0)
#else
#define OBS_SPAN_CONCAT2(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::oasys::obs::Span OBS_SPAN_CONCAT(obs_span_, __LINE__) { name }
#endif
