#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace oasys::obs {

namespace {

// Relaxed CAS add for atomic<double>: commutative, so the total is
// order-independent whenever the addends are (exact for integral values
// below 2^53).
void atomic_add(std::atomic<double>* a, double v) noexcept {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>* a, double v) noexcept {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>* a, double v) noexcept {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

constexpr double kEmptyMin = 1e300;
constexpr double kEmptyMax = -1e300;

}  // namespace

void Gauge::set_max(double v) noexcept { atomic_max(&v_, v); }

void Gauge::set_min(double v) noexcept {
  // 0.0 is the reset value and means "unset": the first observation always
  // lands, after which only strictly smaller values do.
  double cur = v_.load(std::memory_order_relaxed);
  while ((cur == 0.0 || v < cur) &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  reset();
}

void Histogram::observe(double v) noexcept {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(&sum_, v);
  atomic_min(&min_, v);
  atomic_max(&max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const double mn = min_.load(std::memory_order_relaxed);
  const double mx = max_.load(std::memory_order_relaxed);
  s.min = s.count == 0 || mn == kEmptyMin ? 0.0 : mn;
  s.max = s.count == 0 || mx == kEmptyMax ? 0.0 : mx;
  return s;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(kEmptyMax, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  double factor) {
  if (!(lo > 0.0) || !(factor > 1.0)) {
    throw std::invalid_argument(
        "exponential_bounds needs lo > 0 and factor > 1");
  }
  std::vector<double> bounds;
  double b = lo;
  while (b < hi) {
    bounds.push_back(b);
    b *= factor;
  }
  bounds.push_back(b);  // first bound >= hi
  return bounds;
}

std::vector<double> Histogram::duration_bounds() {
  return exponential_bounds(1e-6, 100.0, 2.0);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double lo_edge = i == 0 ? min : bounds[i - 1];
    const double hi_edge = i < bounds.size() ? bounds[i] : max;
    const double lo = std::clamp(lo_edge, min, max);
    const double hi = std::clamp(hi_edge, min, max);
    const auto next = seen + counts[i];
    if (rank <= static_cast<double>(next)) {
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    seen = next;
  }
  return max;
}

// ---- Registry ---------------------------------------------------------------

const MetricEntry* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
  // std::map keeps the merged result name-sorted, matching Registry
  // snapshots (and therefore the JSON exporter's ordering contract).
  std::map<std::string, MetricEntry> merged;
  for (const MetricsSnapshot& part : parts) {
    for (const MetricEntry& e : part.entries) {
      auto [it, inserted] = merged.emplace(e.name, e);
      if (inserted) continue;
      MetricEntry& m = it->second;
      if (m.kind != e.kind) {
        throw std::logic_error("merge_snapshots: metric '" + e.name +
                               "' has conflicting kinds across parts");
      }
      m.deterministic = m.deterministic && e.deterministic;
      switch (e.kind) {
        case MetricKind::kCounter:
          m.counter += e.counter;
          break;
        case MetricKind::kGauge:
          if (m.gauge_merge != e.gauge_merge) {
            throw std::logic_error("merge_snapshots: gauge '" + e.name +
                                   "' has conflicting merge modes across "
                                   "parts");
          }
          if (e.gauge_merge == GaugeMerge::kMin) {
            // 0.0 is the unset sentinel: a worker that never observed the
            // gauge must not drag the merged minimum to zero.
            if (e.gauge != 0.0) {
              m.gauge = m.gauge == 0.0 ? e.gauge : std::min(m.gauge, e.gauge);
            }
          } else {
            m.gauge = std::max(m.gauge, e.gauge);
          }
          break;
        case MetricKind::kHistogram: {
          if (m.histogram.bounds != e.histogram.bounds) {
            throw std::logic_error("merge_snapshots: histogram '" + e.name +
                                   "' has conflicting bounds across parts");
          }
          for (std::size_t i = 0; i < m.histogram.counts.size(); ++i) {
            m.histogram.counts[i] += e.histogram.counts[i];
          }
          if (e.histogram.count > 0) {
            m.histogram.min = m.histogram.count == 0
                                  ? e.histogram.min
                                  : std::min(m.histogram.min, e.histogram.min);
            m.histogram.max = m.histogram.count == 0
                                  ? e.histogram.max
                                  : std::max(m.histogram.max, e.histogram.max);
          }
          m.histogram.count += e.histogram.count;
          m.histogram.sum += e.histogram.sum;
          break;
        }
      }
    }
  }
  MetricsSnapshot out;
  out.entries.reserve(merged.size());
  for (auto& [name, e] : merged) {
    (void)name;
    out.entries.push_back(std::move(e));
  }
  return out;
}

// Requires mu_ held by the caller.
Registry::Entry& Registry::entry(const std::string& name, MetricKind kind,
                                 bool deterministic) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = kind;
    e.deterministic = deterministic;
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + name +
                           "' already registered with a different kind");
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name, bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricKind::kCounter, deterministic);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, bool deterministic,
                       GaugeMerge merge) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricKind::kGauge, deterministic);
  if (!e.gauge) {
    e.gauge_merge = merge;
    e.gauge = std::make_unique<Gauge>();
  } else if (e.gauge_merge != merge) {
    throw std::logic_error("gauge '" + name +
                           "' already registered with a different merge "
                           "mode");
  }
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricKind::kHistogram, deterministic);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.histogram;
}

Histogram& Registry::count_histogram(const std::string& name,
                                     std::vector<double> bounds) {
  return histogram(name, std::move(bounds), /*deterministic=*/true);
}

Histogram& Registry::duration_histogram(const std::string& name) {
  return histogram(name, Histogram::duration_bounds(),
                   /*deterministic=*/false);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : metrics_) {
    (void)name;
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.entries.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {  // std::map: already name-sorted
    MetricEntry m;
    m.name = name;
    m.kind = e.kind;
    m.deterministic = e.deterministic;
    m.gauge_merge = e.gauge_merge;
    if (e.counter) m.counter = e.counter->value();
    if (e.gauge) m.gauge = e.gauge->value();
    if (e.histogram) m.histogram = e.histogram->snapshot();
    s.entries.push_back(std::move(m));
  }
  return s;
}

Registry& Registry::global() {
  // Leaked on purpose: worker threads must be able to bump counters from
  // any static destructor without racing the registry's teardown.
  static Registry* r = new Registry();
  return *r;
}

}  // namespace oasys::obs
