#include "obs/span.h"

#include <unistd.h>

#include <atomic>
#include <mutex>

#include "util/fingerprint.h"

namespace oasys::obs {

namespace {

thread_local TraceSink* t_sink = nullptr;
thread_local int t_depth = 0;
thread_local std::uint64_t t_trace_id = 0;
thread_local std::uint64_t t_span_id = 0;
// Lazily-assigned small thread ordinal for the tid lane in exports; -1
// until this thread first stamps an event.
thread_local std::int64_t t_tid = -1;

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_timing{false};
std::atomic<std::uint64_t> g_next_tid{0};

std::uint64_t thread_ordinal() {
  if (t_tid < 0) {
    t_tid = static_cast<std::int64_t>(
        g_next_tid.fetch_add(1, std::memory_order_relaxed));
  }
  return static_cast<std::uint64_t>(t_tid);
}

// Correlation stamp shared by spans and instants; only called on the
// active path, so the clock read and ordinal assignment never tax the
// disabled mode (and none of it allocates).
void stamp(TraceEvent& e) {
  e.ts_us = monotonic_now_us();
  e.tid = thread_ordinal();
  e.trace_id = t_trace_id;
  e.span_id = t_span_id;
}

// Global collector; leaked like Registry so late worker-thread events can
// never race static destruction.
struct Collector {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

Collector& collector() {
  static Collector* c = new Collector();
  return *c;
}

void dispatch(const TraceEvent& e) {
  if (t_sink != nullptr) t_sink->on_event(e);
  if (g_tracing.load(std::memory_order_relaxed)) {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    c.events.push_back(e);
  }
}

std::string join_name(std::string_view scope, std::string_view name) {
  if (scope.empty()) return std::string(name);
  std::string out;
  out.reserve(scope.size() + 1 + name.size());
  out.append(scope);
  out.push_back('/');
  out.append(name);
  return out;
}

}  // namespace

ScopedSink::ScopedSink(TraceSink* sink) : prev_(t_sink) { t_sink = sink; }
ScopedSink::~ScopedSink() { t_sink = prev_; }

void set_tracing_enabled(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}
bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

std::vector<TraceEvent> drain_global_trace() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  std::vector<TraceEvent> out = std::move(c.events);
  c.events.clear();
  return out;
}

void set_timing_enabled(bool enabled) {
  g_timing.store(enabled, std::memory_order_relaxed);
}
bool timing_enabled() { return g_timing.load(std::memory_order_relaxed); }

bool trace_active() {
  return t_sink != nullptr || g_tracing.load(std::memory_order_relaxed);
}

std::uint64_t mint_trace_id() {
  const std::uint64_t ticks = monotonic_now_us();
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
  std::uint64_t id = util::mix64(ticks ^ util::mix64(pid));
  if (id == 0) id = 1;  // 0 is the "no trace" sentinel
  return id;
}

std::uint64_t span_id_for(std::uint64_t trace_id, std::uint64_t seq) {
  std::uint64_t id = util::mix64(trace_id ^ (seq + 1));
  if (id == 0) id = 1;
  return id;
}

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_id,
                                       std::uint64_t span_id)
    : prev_trace_(t_trace_id), prev_span_(t_span_id) {
  t_trace_id = trace_id;
  t_span_id = span_id;
}

ScopedTraceContext::~ScopedTraceContext() {
  t_trace_id = prev_trace_;
  t_span_id = prev_span_;
}

std::uint64_t current_trace_id() { return t_trace_id; }
std::uint64_t current_span_id() { return t_span_id; }

std::uint64_t monotonic_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void emit_instant(std::string_view name, std::string_view scope,
                  std::string_view code, std::string_view detail,
                  std::uint64_t index) {
  if (!trace_active()) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInstant;
  e.depth = t_depth;
  e.name = std::string(name);
  e.scope = std::string(scope);
  e.code = std::string(code);
  e.detail = std::string(detail);
  e.index = index;
  stamp(e);
  dispatch(e);
}

Span::Span(std::string_view scope, std::string_view name) {
  if (!trace_active()) return;
  active_ = true;
  name_ = join_name(scope, name);
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpanBegin;
  e.depth = t_depth;
  e.name = name_;
  stamp(e);
  dispatch(e);
  ++t_depth;
  t0_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  --t_depth;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpanEnd;
  e.depth = t_depth;
  e.name = std::move(name_);
  e.detail = std::move(detail_);
  e.seconds = seconds;
  stamp(e);
  dispatch(e);
}

void Span::note(std::string_view detail) {
  if (!active_) return;
  if (!detail_.empty()) detail_.append("; ");
  detail_.append(detail);
}

}  // namespace oasys::obs
