#include "obs/span.h"

#include <atomic>
#include <mutex>

namespace oasys::obs {

namespace {

thread_local TraceSink* t_sink = nullptr;
thread_local int t_depth = 0;

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_timing{false};

// Global collector; leaked like Registry so late worker-thread events can
// never race static destruction.
struct Collector {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

Collector& collector() {
  static Collector* c = new Collector();
  return *c;
}

void dispatch(const TraceEvent& e) {
  if (t_sink != nullptr) t_sink->on_event(e);
  if (g_tracing.load(std::memory_order_relaxed)) {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    c.events.push_back(e);
  }
}

std::string join_name(std::string_view scope, std::string_view name) {
  if (scope.empty()) return std::string(name);
  std::string out;
  out.reserve(scope.size() + 1 + name.size());
  out.append(scope);
  out.push_back('/');
  out.append(name);
  return out;
}

}  // namespace

ScopedSink::ScopedSink(TraceSink* sink) : prev_(t_sink) { t_sink = sink; }
ScopedSink::~ScopedSink() { t_sink = prev_; }

void set_tracing_enabled(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}
bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

std::vector<TraceEvent> drain_global_trace() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  std::vector<TraceEvent> out = std::move(c.events);
  c.events.clear();
  return out;
}

void set_timing_enabled(bool enabled) {
  g_timing.store(enabled, std::memory_order_relaxed);
}
bool timing_enabled() { return g_timing.load(std::memory_order_relaxed); }

bool trace_active() {
  return t_sink != nullptr || g_tracing.load(std::memory_order_relaxed);
}

void emit_instant(std::string_view name, std::string_view scope,
                  std::string_view code, std::string_view detail,
                  std::uint64_t index) {
  if (!trace_active()) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInstant;
  e.depth = t_depth;
  e.name = std::string(name);
  e.scope = std::string(scope);
  e.code = std::string(code);
  e.detail = std::string(detail);
  e.index = index;
  dispatch(e);
}

Span::Span(std::string_view scope, std::string_view name) {
  if (!trace_active()) return;
  active_ = true;
  name_ = join_name(scope, name);
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpanBegin;
  e.depth = t_depth;
  e.name = name_;
  dispatch(e);
  ++t_depth;
  t0_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  --t_depth;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpanEnd;
  e.depth = t_depth;
  e.name = std::move(name_);
  e.detail = std::move(detail_);
  e.seconds = seconds;
  dispatch(e);
}

void Span::note(std::string_view detail) {
  if (!active_) return;
  if (!detail_.empty()) detail_.append("; ");
  detail_.append(detail);
}

}  // namespace oasys::obs
