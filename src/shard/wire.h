// Wire protocol for cross-process sharded serving.
//
// The coordinator and its worker processes exchange length-prefixed binary
// frames over pipes.  Every frame is
//
//   magic   u32   0x4f415359 ("OASY")
//   type    u32   FrameType
//   length  u64   payload byte count (sanity-capped, see kMaxPayload)
//   payload length bytes
//
// with all integers little-endian and every double carried as its exact
// IEEE-754 bit pattern (u64), so a value round-trips bit-for-bit — the
// determinism contract ("`oasys shard` output is byte-identical to `oasys
// batch`") starts here.  Malformed input (bad magic, oversized length,
// truncation mid-frame, a payload shorter than its fields claim) raises
// WireError; a clean EOF at a frame boundary is reported as absence of a
// frame, never as an error.  Readers must treat the peer as untrusted: a
// crashed worker can leave a half-written frame behind, and the coordinator
// has to reject it, not crash on it.
//
// Conversation (coordinator -> worker on the worker's stdin, worker ->
// coordinator on its stdout):
//
//   kConfig    technology + synthesis/service options (+ fingerprint
//              hashes the worker re-derives and verifies: schema drift
//              between serializer and struct fails loudly)
//   kRequest*  (sequence id, OpAmpSpec), in global submission order
//   kRun       end of requests; worker computes its batch
//   kResult*   (sequence id, outcome), in the order requests arrived
//   kMetrics   worker's obs registry snapshot + its service counters
//   kDone      clean end of stream
//
// The same frames double as the daemon's session protocol (src/serve/):
// a resident worker loops kRequest*..kRun -> kResult*..kMetrics..kDone
// cycles instead of exiting after the first, a client speaks the
// identical conversation to `oasys serve` over its unix socket, and
// kError carries a session-level refusal (e.g. a technology fingerprint
// that does not match the daemon's) back to the client.
#pragma once

#include <csignal>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/spec.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "service/service.h"
#include "synth/oasys.h"
#include "tech/technology.h"
#include "yield/yield.h"

namespace oasys::shard {

inline constexpr std::uint32_t kWireMagic = 0x4f415359u;  // "OASY"
// v2: SynthOptions carries tran_mode/tran_rtol/tran_atol; gauge metric
// entries carry their merge mode.
inline constexpr std::uint32_t kWireVersion = 2;
// Upper bound on one frame's payload.  A full SynthesisResult with traces
// is tens of kilobytes; anything near this cap is corruption, not data.
inline constexpr std::uint64_t kMaxPayload = 64ull << 20;  // 64 MiB

enum class FrameType : std::uint32_t {
  kConfig = 1,
  kRequest = 2,
  kRun = 3,
  kResult = 4,
  kMetrics = 5,
  kDone = 6,
  // Session-level refusal (payload: one string).  Daemon protocol only;
  // the batch-mode coordinator/worker conversation never sends it.
  kError = 7,
  // Yield traffic, interleaved with kRequest in the same cycle:
  // kYieldRequest carries (sequence id, OpAmpSpec, YieldParams) and is
  // answered by a kYieldResult (sequence id, outcome) in arrival order.
  // Routing uses the *plain* request key of the spec, so synth and yield
  // traffic for one spec co-locate on one worker and share its caches.
  kYieldRequest = 8,
  kYieldResult = 9,
  // Distributed tracing: a worker drains its obs::TraceEvent stream back
  // as kSpans frames (payload: SpanSet).  Sent only when the cycle's
  // requests carried a trace context; a cycle may carry several (the
  // worker flushes once after reading kRun — preserving the receive
  // markers even if it crashes mid-compute — and again after computing).
  kSpans = 10,
  // Daemon admin introspection: a client sends an empty-payload kStatus
  // and the daemon answers with a kStatus carrying a StatusReport.
  // Answerable before kConfig — `oasys stat` needs no technology.
  kStatus = 11,
};

// Malformed or truncated wire data.  Protocol errors are I/O-shaped and
// caller-recoverable (mark the worker dead, fail its requests), so they are
// exceptions, not diagnostics.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

// Append-only payload builder.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  // exact bit pattern
  void str(std::string_view v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Bounds-checked payload reader over one frame's bytes; every getter
// throws WireError instead of reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  bool boolean() { return u8() != 0; }

  bool at_end() const { return pos_ == bytes_.size(); }
  // Call after parsing a payload: trailing garbage is a malformed frame.
  void expect_end() const;

 private:
  void need(std::size_t n) const;
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// ---- struct serialization ---------------------------------------------------
// Field-complete by hand; the kConfig fingerprint check (the worker
// re-derives canonical hashes from the decoded structs and compares them to
// the coordinator's) catches a struct gaining a field without its
// serializer keeping up.

// kConfig payload.  The hashes are the coordinator's canonical fingerprints
// of the tech and options it serialized; the worker re-derives both from
// the decoded structs and refuses to serve on a mismatch, so a round-trip
// that loses a field can never silently produce divergent results.
struct WorkerConfig {
  std::uint32_t version = kWireVersion;
  std::uint64_t shard = 0;  // this worker's shard index (logs/diagnostics)
  tech::Technology tech;
  synth::SynthOptions synth;
  service::ServiceOptions service;
  std::uint64_t tech_hash = 0;  // fnv1a64(tech.canonical_string())
  std::uint64_t opts_hash = 0;  // fnv1a64(canonical_string(synth))
};

void put_config(Writer& w, const WorkerConfig& c);
WorkerConfig get_config(Reader& r);

void put_spec(Writer& w, const core::OpAmpSpec& spec);
core::OpAmpSpec get_spec(Reader& r);

void put_technology(Writer& w, const tech::Technology& t);
tech::Technology get_technology(Reader& r);

void put_synth_options(Writer& w, const synth::SynthOptions& o);
synth::SynthOptions get_synth_options(Reader& r);

void put_service_options(Writer& w, const service::ServiceOptions& o);
service::ServiceOptions get_service_options(Reader& r);

void put_result(Writer& w, const synth::SynthesisResult& result);
synth::SynthesisResult get_result(Reader& r);

// Yield params travel without their jobs field: jobs never changes result
// bytes, and each worker applies its own configured jobs setting.
void put_yield_params(Writer& w, const yield::YieldParams& p);
yield::YieldParams get_yield_params(Reader& r);

void put_yield_result(Writer& w, const yield::YieldResult& result);
yield::YieldResult get_yield_result(Reader& r);

// ---- distributed tracing ----------------------------------------------------

// Optional trailing block on kRequest/kYieldRequest payloads.  Version
// guarded: put_trace_context writes nothing when trace_id == 0, so a
// pre-tracing coordinator's payloads are byte-identical to today's and an
// old worker reading a traced payload fails loudly on the version byte
// rather than misparsing.  get_trace_context returns {0, 0} when the
// reader is already at the payload end (old peer, tracing off).
struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = no tracing for this request
  std::uint64_t span_id = 0;
  bool present() const { return trace_id != 0; }
};

inline constexpr std::uint8_t kTraceContextVersion = 1;

void put_trace_context(Writer& w, const TraceContext& ctx);
TraceContext get_trace_context(Reader& r);

// kSpans payload: one drained slice of a worker's trace-event stream.
struct SpanSet {
  std::uint64_t trace_id = 0;
  std::uint64_t shard = 0;  // emitting worker's shard index
  std::vector<obs::TraceEvent> events;
};

void put_span_set(Writer& w, const SpanSet& s);
SpanSet get_span_set(Reader& r);

void put_metrics_snapshot(Writer& w, const obs::MetricsSnapshot& s);
obs::MetricsSnapshot get_metrics_snapshot(Reader& r);

void put_service_stats(Writer& w, const service::ServiceStats& s);
service::ServiceStats get_service_stats(Reader& r);

// ---- frame I/O over file descriptors ---------------------------------------

struct Frame {
  FrameType type = FrameType::kDone;
  std::string payload;
};

// Writes one frame; retries short writes and EINTR.  Returns false when the
// peer is gone (EPIPE/closed fd) — callers treat that as a dead worker, so
// SIGPIPE must be ignored or blocked in the writing process.
bool write_frame(int fd, FrameType type, std::string_view payload);

// One frame as raw stream bytes (header + payload), for callers that
// buffer writes themselves (the serve event loop's non-blocking queues).
std::string frame_bytes(FrameType type, std::string_view payload);

// Reads one frame.  Returns false on clean EOF at a frame boundary; throws
// WireError on bad magic, an oversized length, or truncation mid-frame.
bool read_frame(int fd, Frame* out);

// Incremental frame parser for event-loop readers: feed() whatever bytes
// poll() made available, then drain complete frames with next().  Header
// validation (magic, type, length cap) happens as soon as the 16 header
// bytes are buffered, so garbage fails before its claimed payload is ever
// awaited.  Throws WireError exactly where read_frame would.
class FrameDecoder {
 public:
  void feed(std::string_view bytes) { buf_.append(bytes); }
  // Extracts the next complete frame; false when more bytes are needed.
  bool next(Frame* out);
  // True when buffered bytes end mid-frame — EOF here is a truncation,
  // not a clean close.
  bool mid_frame() const { return !buf_.empty(); }

 private:
  std::string buf_;
};

// read_frame with a progress deadline, for reading from a worker that may
// be alive but wedged.  Waits up to `timeout_s` for the *next* frame (the
// deadline re-arms per call, so a peer that keeps producing frames is
// never killed mid-stream).  Returns 1 with a frame, 0 on clean EOF at a
// frame boundary, -1 on deadline expiry; throws WireError on malformed or
// truncated input.  The decoder carries partial bytes across calls and
// must be reused for every read from the same fd.
int read_frame_deadline(int fd, FrameDecoder& decoder, Frame* out,
                        double timeout_s);

// Scoped SIGPIPE suppression for frame writers.  write_frame reports a
// vanished peer by returning false, which requires EPIPE instead of a
// fatal signal — but signal dispositions are process-global, and a
// library entry point must not clobber the embedding application's
// handler.  This saves the previous disposition and restores it on scope
// exit (run_sharded_batch and the serve client/server all write frames
// under one of these).
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() : prev_(std::signal(SIGPIPE, SIG_IGN)) {}
  ~ScopedSigpipeIgnore() {
    if (prev_ != SIG_ERR) std::signal(SIGPIPE, prev_);
  }
  ScopedSigpipeIgnore(const ScopedSigpipeIgnore&) = delete;
  ScopedSigpipeIgnore& operator=(const ScopedSigpipeIgnore&) = delete;

 private:
  void (*prev_)(int);
};

}  // namespace oasys::shard
