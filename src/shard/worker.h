// Worker half of cross-process sharded serving.
//
// One worker process serves one shard of the request key space.  It speaks
// the wire protocol (shard/wire.h) on a pair of file descriptors: reads
// kConfig, then kRequest frames until kRun, computes the batch through its
// own SynthesisService (private LRU cache, no cross-process locks), and
// replies kResult per request in arrival order, then kMetrics (its obs
// registry snapshot plus its service counters), then kDone.
//
// The kConfig fingerprint hashes are re-derived from the decoded structs
// and verified before any work runs, so serializer/struct schema drift
// fails loudly instead of silently diverging from `oasys batch`.
//
// Test hook: OASYS_SHARD_TEST_CRASH="<spec-name>" makes the worker
// _exit(57) immediately before writing that spec's kResult;
// "<spec-name>:recv" exits on receipt of the request instead, and
// "<spec-name>:wedge" hangs forever (alive but never writing) at the
// pre-result site.  The first two give the fault-path tests a
// deterministic mid-batch worker death; the last one exercises the
// worker-timeout deadline, which must kill the wedged process rather
// than let the coordinator hang.
#pragma once

namespace oasys::shard {

// Exit code of the crash-injection test hook.
inline constexpr int kCrashHookExitCode = 57;

// Runs one worker conversation over the given descriptors (the CLI's
// `shard-worker` mode passes stdin/stdout).  Returns the process exit
// code: 0 after a clean kDone, nonzero after a protocol or fatal error
// (diagnostics go to stderr, which the coordinator leaves inherited).
int worker_main(int in_fd, int out_fd);

// Session (daemon-pool) variant: reads kConfig once, then serves repeated
// [kRequest* kRun -> kResult* kMetrics kDone] cycles with one resident
// SynthesisService, so its private LRU cache stays warm across requests.
// The obs registry is reset at the start of every cycle (each kMetrics
// frame carries per-cycle deltas the coordinator can accumulate);
// ServiceStats are cumulative for the session.  EOF at a cycle boundary
// is a clean drain (returns 0); EOF mid-cycle is an error.
int worker_session_main(int in_fd, int out_fd);

}  // namespace oasys::shard
