// Worker half of cross-process sharded serving.
//
// One worker process serves one shard of the request key space.  It speaks
// the wire protocol (shard/wire.h) on a pair of file descriptors: reads
// kConfig, then kRequest frames until kRun, computes the batch through its
// own SynthesisService (private LRU cache, no cross-process locks), and
// replies kResult per request in arrival order, then kMetrics (its obs
// registry snapshot plus its service counters), then kDone.
//
// The kConfig fingerprint hashes are re-derived from the decoded structs
// and verified before any work runs, so serializer/struct schema drift
// fails loudly instead of silently diverging from `oasys batch`.
//
// Test hook: OASYS_SHARD_TEST_CRASH="<spec-name>" makes the worker
// _exit(57) immediately before writing that spec's kResult;
// "<spec-name>:recv" exits on receipt of the request instead.  Both give
// the fault-path tests a deterministic mid-batch worker death.
#pragma once

namespace oasys::shard {

// Exit code of the crash-injection test hook.
inline constexpr int kCrashHookExitCode = 57;

// Runs one worker conversation over the given descriptors (the CLI's
// `shard-worker` mode passes stdin/stdout).  Returns the process exit
// code: 0 after a clean kDone, nonzero after a protocol or fatal error
// (diagnostics go to stderr, which the coordinator leaves inherited).
int worker_main(int in_fd, int out_fd);

}  // namespace oasys::shard
