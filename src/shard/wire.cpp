#include "shard/wire.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/text.h"

namespace oasys::shard {

namespace {

// Upper bound for decoded vector lengths: each element costs at least
// `min_item_bytes` of payload and no payload exceeds kMaxPayload, so a
// larger count is corruption — caught before any allocation sized by
// peer-controlled data.  (Division, not multiplication: a hostile count
// must not overflow the check itself.)
std::uint64_t checked_len(std::uint64_t count, std::uint64_t min_item_bytes,
                          const char* what) {
  if (count > kMaxPayload / min_item_bytes) {
    throw WireError(util::format("wire: %s count %llu is implausible", what,
                                 static_cast<unsigned long long>(count)));
  }
  return count;
}

template <typename Enum>
Enum checked_enum(std::uint8_t v, std::uint8_t max, const char* what) {
  if (v > max) {
    throw WireError(util::format("wire: %s enum value %u out of range", what,
                                 static_cast<unsigned>(v)));
  }
  return static_cast<Enum>(v);
}

}  // namespace

// ---- Writer / Reader --------------------------------------------------------

void Writer::u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view v) {
  u64(v.size());
  buf_.append(v.data(), v.size());
}

void Reader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw WireError(util::format(
        "wire: payload truncated (need %zu bytes at offset %zu of %zu)", n,
        pos_, bytes_.size()));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint64_t n = u64();
  need(static_cast<std::size_t>(n));
  std::string s(bytes_.substr(pos_, static_cast<std::size_t>(n)));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void Reader::expect_end() const {
  if (!at_end()) {
    throw WireError(util::format(
        "wire: %zu trailing bytes after payload", bytes_.size() - pos_));
  }
}

// ---- struct serialization ---------------------------------------------------

void put_config(Writer& w, const WorkerConfig& c) {
  w.u32(c.version);
  w.u64(c.shard);
  put_technology(w, c.tech);
  put_synth_options(w, c.synth);
  put_service_options(w, c.service);
  w.u64(c.tech_hash);
  w.u64(c.opts_hash);
}

WorkerConfig get_config(Reader& r) {
  WorkerConfig c;
  c.version = r.u32();
  if (c.version != kWireVersion) {
    throw WireError(util::format("wire: protocol version %u, expected %u",
                                 c.version, kWireVersion));
  }
  c.shard = r.u64();
  c.tech = get_technology(r);
  c.synth = get_synth_options(r);
  c.service = get_service_options(r);
  c.tech_hash = r.u64();
  c.opts_hash = r.u64();
  return c;
}

void put_spec(Writer& w, const core::OpAmpSpec& s) {
  w.str(s.name);
  w.f64(s.gain_min_db);
  w.f64(s.gbw_min);
  w.f64(s.pm_min_deg);
  w.f64(s.slew_min);
  w.f64(s.cload);
  w.f64(s.swing_pos);
  w.f64(s.swing_neg);
  w.f64(s.offset_max);
  w.f64(s.icmr_lo);
  w.f64(s.icmr_hi);
  w.f64(s.power_max);
  w.f64(s.area_max);
  w.f64(s.cmrr_min_db);
  w.f64(s.psrr_min_db);
  w.f64(s.noise_max);
}

core::OpAmpSpec get_spec(Reader& r) {
  core::OpAmpSpec s;
  s.name = r.str();
  s.gain_min_db = r.f64();
  s.gbw_min = r.f64();
  s.pm_min_deg = r.f64();
  s.slew_min = r.f64();
  s.cload = r.f64();
  s.swing_pos = r.f64();
  s.swing_neg = r.f64();
  s.offset_max = r.f64();
  s.icmr_lo = r.f64();
  s.icmr_hi = r.f64();
  s.power_max = r.f64();
  s.area_max = r.f64();
  s.cmrr_min_db = r.f64();
  s.psrr_min_db = r.f64();
  s.noise_max = r.f64();
  return s;
}

namespace {

void put_mos(Writer& w, const tech::MosParams& p) {
  w.f64(p.vt0);
  w.f64(p.kp);
  w.f64(p.gamma);
  w.f64(p.phi);
  w.f64(p.lambda_l);
  w.f64(p.cgdo);
  w.f64(p.cgso);
  w.f64(p.cj);
  w.f64(p.cjsw);
  w.f64(p.pb);
  w.f64(p.mj);
  w.f64(p.mjsw);
  w.f64(p.mobility);
  w.f64(p.kf);
  w.f64(p.af);
  w.f64(p.avt);
}

tech::MosParams get_mos(Reader& r) {
  tech::MosParams p;
  p.vt0 = r.f64();
  p.kp = r.f64();
  p.gamma = r.f64();
  p.phi = r.f64();
  p.lambda_l = r.f64();
  p.cgdo = r.f64();
  p.cgso = r.f64();
  p.cj = r.f64();
  p.cjsw = r.f64();
  p.pb = r.f64();
  p.mj = r.f64();
  p.mjsw = r.f64();
  p.mobility = r.f64();
  p.kf = r.f64();
  p.af = r.f64();
  p.avt = r.f64();
  return p;
}

}  // namespace

void put_technology(Writer& w, const tech::Technology& t) {
  w.str(t.name);
  w.f64(t.vdd);
  w.f64(t.vss);
  w.f64(t.lmin);
  w.f64(t.wmin);
  w.f64(t.drain_ext);
  w.f64(t.tox);
  w.f64(t.cox);
  put_mos(w, t.nmos);
  put_mos(w, t.pmos);
}

tech::Technology get_technology(Reader& r) {
  tech::Technology t;
  t.name = r.str();
  t.vdd = r.f64();
  t.vss = r.f64();
  t.lmin = r.f64();
  t.wmin = r.f64();
  t.drain_ext = r.f64();
  t.tox = r.f64();
  t.cox = r.f64();
  t.nmos = get_mos(r);
  t.pmos = get_mos(r);
  return t;
}

void put_synth_options(Writer& w, const synth::SynthOptions& o) {
  w.boolean(o.rules_enabled);
  w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(o.max_patches)));
  w.u8(static_cast<std::uint8_t>(o.bias_style));
  w.f64(o.iref);
  w.f64(o.pm_grace_deg);
  w.u64(o.jobs);
  w.u8(static_cast<std::uint8_t>(o.tran_mode));
  w.f64(o.tran_rtol);
  w.f64(o.tran_atol);
}

synth::SynthOptions get_synth_options(Reader& r) {
  synth::SynthOptions o;
  o.rules_enabled = r.boolean();
  o.max_patches = static_cast<int>(static_cast<std::int64_t>(r.u64()));
  o.bias_style =
      checked_enum<blocks::BiasStyle>(r.u8(), 1, "SynthOptions.bias_style");
  o.iref = r.f64();
  o.pm_grace_deg = r.f64();
  o.jobs = static_cast<std::size_t>(r.u64());
  o.tran_mode =
      checked_enum<sim::TranMode>(r.u8(), 2, "SynthOptions.tran_mode");
  o.tran_rtol = r.f64();
  o.tran_atol = r.f64();
  return o;
}

void put_service_options(Writer& w, const service::ServiceOptions& o) {
  w.boolean(o.cache_enabled);
  w.u64(o.cache_capacity);
  w.u64(o.queue_capacity);
}

service::ServiceOptions get_service_options(Reader& r) {
  service::ServiceOptions o;
  o.cache_enabled = r.boolean();
  o.cache_capacity = static_cast<std::size_t>(r.u64());
  o.queue_capacity = static_cast<std::size_t>(r.u64());
  return o;
}

namespace {

void put_diag_log(Writer& w, const util::DiagnosticLog& log) {
  w.u64(log.size());
  for (const util::Diagnostic& d : log.entries()) {
    w.u8(static_cast<std::uint8_t>(d.severity));
    w.str(d.code);
    w.str(d.message);
  }
}

util::DiagnosticLog get_diag_log(Reader& r) {
  util::DiagnosticLog log;
  const std::uint64_t n = checked_len(r.u64(), 17, "diagnostic");
  for (std::uint64_t i = 0; i < n; ++i) {
    util::Diagnostic d;
    d.severity =
        checked_enum<util::Severity>(r.u8(), 2, "Diagnostic.severity");
    d.code = r.str();
    d.message = r.str();
    log.add(std::move(d));
  }
  return log;
}

void put_trace(Writer& w, const core::ExecutionTrace& t) {
  w.boolean(t.success);
  w.str(t.abort_reason);
  w.u64(static_cast<std::uint64_t>(t.steps_executed));
  w.u64(static_cast<std::uint64_t>(t.rules_fired));
  w.u64(t.events.size());
  for (const core::TraceEvent& e : t.events) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u64(e.step_index);
    w.str(e.step_name);
    w.str(e.code);
    w.str(e.detail);
  }
}

core::ExecutionTrace get_trace(Reader& r) {
  core::ExecutionTrace t;
  t.success = r.boolean();
  t.abort_reason = r.str();
  t.steps_executed = static_cast<int>(r.u64());
  t.rules_fired = static_cast<int>(r.u64());
  const std::uint64_t n = checked_len(r.u64(), 33, "trace event");
  t.events.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    core::TraceEvent e{};
    e.kind =
        checked_enum<core::TraceEvent::Kind>(r.u8(), 4, "TraceEvent.kind");
    e.step_index = static_cast<std::size_t>(r.u64());
    e.step_name = r.str();
    e.code = r.str();
    e.detail = r.str();
    t.events.push_back(std::move(e));
  }
  return t;
}

void put_performance(Writer& w, const core::OpAmpPerformance& p) {
  w.f64(p.gain_db);
  w.f64(p.gbw);
  w.f64(p.pm_deg);
  w.f64(p.slew);
  w.f64(p.swing_pos);
  w.f64(p.swing_neg);
  w.f64(p.offset);
  w.f64(p.icmr_lo);
  w.f64(p.icmr_hi);
  w.f64(p.power);
  w.f64(p.area);
  w.f64(p.cmrr_db);
  w.f64(p.psrr_db);
  w.f64(p.noise_in);
}

core::OpAmpPerformance get_performance(Reader& r) {
  core::OpAmpPerformance p;
  p.gain_db = r.f64();
  p.gbw = r.f64();
  p.pm_deg = r.f64();
  p.slew = r.f64();
  p.swing_pos = r.f64();
  p.swing_neg = r.f64();
  p.offset = r.f64();
  p.icmr_lo = r.f64();
  p.icmr_hi = r.f64();
  p.power = r.f64();
  p.area = r.f64();
  p.cmrr_db = r.f64();
  p.psrr_db = r.f64();
  p.noise_in = r.f64();
  return p;
}

void put_optional_f64(Writer& w, const std::optional<double>& v) {
  w.boolean(v.has_value());
  if (v) w.f64(*v);
}

std::optional<double> get_optional_f64(Reader& r) {
  if (!r.boolean()) return std::nullopt;
  return r.f64();
}

void put_design(Writer& w, const synth::OpAmpDesign& d) {
  put_spec(w, d.spec);
  w.u8(static_cast<std::uint8_t>(d.style));
  w.boolean(d.feasible);
  w.u64(static_cast<std::uint64_t>(d.soft_violations));
  w.boolean(d.stage1_cascode);
  w.boolean(d.stage2_cascode_load);
  w.boolean(d.stage2_cascode_gm);
  w.boolean(d.tail_cascode);
  w.boolean(d.has_level_shifter);
  w.u64(d.devices.size());
  for (const blocks::SizedDevice& dev : d.devices) {
    w.str(dev.role);
    w.u8(static_cast<std::uint8_t>(dev.type));
    w.f64(dev.w);
    w.f64(dev.l);
    w.u64(static_cast<std::uint64_t>(dev.m));
    w.f64(dev.id);
    w.f64(dev.vov);
  }
  w.f64(d.cc);
  w.f64(d.rref);
  w.boolean(d.ideal_bias_reference);
  w.u8(static_cast<std::uint8_t>(d.bias_style));
  w.f64(d.iref);
  w.f64(d.itail);
  w.f64(d.i2);
  w.f64(d.ils);
  put_optional_f64(w, d.vb_cascode_n);
  put_optional_f64(w, d.vb_cascode_p);
  put_performance(w, d.predicted);
  put_diag_log(w, d.log);
  put_trace(w, d.trace);
}

synth::OpAmpDesign get_design(Reader& r) {
  synth::OpAmpDesign d;
  d.spec = get_spec(r);
  d.style =
      checked_enum<synth::OpAmpStyle>(r.u8(), 2, "OpAmpDesign.style");
  d.feasible = r.boolean();
  d.soft_violations = static_cast<int>(r.u64());
  d.stage1_cascode = r.boolean();
  d.stage2_cascode_load = r.boolean();
  d.stage2_cascode_gm = r.boolean();
  d.tail_cascode = r.boolean();
  d.has_level_shifter = r.boolean();
  const std::uint64_t ndev = checked_len(r.u64(), 50, "device");
  d.devices.reserve(static_cast<std::size_t>(ndev));
  for (std::uint64_t i = 0; i < ndev; ++i) {
    blocks::SizedDevice dev;
    dev.role = r.str();
    dev.type = checked_enum<mos::MosType>(r.u8(), 1, "SizedDevice.type");
    dev.w = r.f64();
    dev.l = r.f64();
    dev.m = static_cast<int>(r.u64());
    dev.id = r.f64();
    dev.vov = r.f64();
    d.devices.push_back(std::move(dev));
  }
  d.cc = r.f64();
  d.rref = r.f64();
  d.ideal_bias_reference = r.boolean();
  d.bias_style =
      checked_enum<blocks::BiasStyle>(r.u8(), 1, "OpAmpDesign.bias_style");
  d.iref = r.f64();
  d.itail = r.f64();
  d.i2 = r.f64();
  d.ils = r.f64();
  d.vb_cascode_n = get_optional_f64(r);
  d.vb_cascode_p = get_optional_f64(r);
  d.predicted = get_performance(r);
  d.log = get_diag_log(r);
  d.trace = get_trace(r);
  return d;
}

}  // namespace

void put_result(Writer& w, const synth::SynthesisResult& result) {
  put_spec(w, result.spec);
  w.u64(result.candidates.size());
  for (const synth::OpAmpDesign& d : result.candidates) put_design(w, d);
  w.boolean(result.selection.best.has_value());
  w.u64(result.selection.best.value_or(0));
  w.u64(result.selection.ranking.size());
  for (const std::size_t idx : result.selection.ranking) w.u64(idx);
  w.str(result.selection.summary);
}

synth::SynthesisResult get_result(Reader& r) {
  synth::SynthesisResult result;
  result.spec = get_spec(r);
  const std::uint64_t nc = checked_len(r.u64(), 200, "candidate");
  result.candidates.reserve(static_cast<std::size_t>(nc));
  for (std::uint64_t i = 0; i < nc; ++i) {
    result.candidates.push_back(get_design(r));
  }
  const bool has_best = r.boolean();
  const std::uint64_t best = r.u64();
  if (has_best) {
    if (best >= result.candidates.size()) {
      throw WireError("wire: selection.best out of range");
    }
    result.selection.best = static_cast<std::size_t>(best);
  }
  const std::uint64_t nrank = checked_len(r.u64(), 8, "ranking entry");
  result.selection.ranking.reserve(static_cast<std::size_t>(nrank));
  for (std::uint64_t i = 0; i < nrank; ++i) {
    const std::uint64_t idx = r.u64();
    if (idx >= result.candidates.size()) {
      throw WireError("wire: selection.ranking index out of range");
    }
    result.selection.ranking.push_back(static_cast<std::size_t>(idx));
  }
  result.selection.summary = r.str();
  return result;
}

void put_yield_params(Writer& w, const yield::YieldParams& p) {
  w.u64(static_cast<std::uint64_t>(p.samples));
  w.u64(p.seed);
}

yield::YieldParams get_yield_params(Reader& r) {
  yield::YieldParams p;
  const std::uint64_t samples = r.u64();
  // Sample counts are caller-chosen but bounded: anything above 2^31-1
  // cannot have come from the CLI's int parse and is corruption.
  if (samples == 0 || samples > 0x7fffffffull) {
    throw WireError("wire: YieldParams.samples out of range");
  }
  p.samples = static_cast<int>(samples);
  p.seed = r.u64();
  return p;
}

void put_yield_result(Writer& w, const yield::YieldResult& result) {
  w.boolean(result.ok);
  w.str(result.error);
  put_result(w, result.synthesis);
  w.u64(static_cast<std::uint64_t>(result.samples_requested));
  w.u64(static_cast<std::uint64_t>(result.samples_converged));
  w.u64(result.seed);
  w.u64(result.pass_count);
  w.f64(result.yield);
  w.u64(result.metrics.size());
  for (const yield::MetricStats& m : result.metrics) {
    w.str(m.name);
    w.boolean(m.constrained);
    w.f64(m.bound);
    w.u64(m.pass);
    w.f64(m.mean);
    w.f64(m.sigma);
    w.f64(m.min);
    w.f64(m.max);
    w.f64(m.p05);
    w.f64(m.p50);
    w.f64(m.p95);
  }
}

yield::YieldResult get_yield_result(Reader& r) {
  yield::YieldResult result;
  result.ok = r.boolean();
  result.error = r.str();
  result.synthesis = get_result(r);
  result.samples_requested = static_cast<int>(r.u64());
  result.samples_converged = static_cast<int>(r.u64());
  result.seed = r.u64();
  result.pass_count = r.u64();
  result.yield = r.f64();
  const std::uint64_t nm = checked_len(r.u64(), 75, "yield metric");
  result.metrics.reserve(static_cast<std::size_t>(nm));
  for (std::uint64_t i = 0; i < nm; ++i) {
    yield::MetricStats m;
    m.name = r.str();
    m.constrained = r.boolean();
    m.bound = r.f64();
    m.pass = r.u64();
    m.mean = r.f64();
    m.sigma = r.f64();
    m.min = r.f64();
    m.max = r.f64();
    m.p05 = r.f64();
    m.p50 = r.f64();
    m.p95 = r.f64();
    result.metrics.push_back(std::move(m));
  }
  return result;
}

void put_trace_context(Writer& w, const TraceContext& ctx) {
  if (!ctx.present()) return;  // absent block = untraced request
  w.u8(kTraceContextVersion);
  w.u64(ctx.trace_id);
  w.u64(ctx.span_id);
}

TraceContext get_trace_context(Reader& r) {
  TraceContext ctx;
  if (r.at_end()) return ctx;  // old coordinator or tracing off
  const std::uint8_t version = r.u8();
  if (version != kTraceContextVersion) {
    throw WireError(util::format(
        "wire: unsupported trace-context version %u",
        static_cast<unsigned>(version)));
  }
  ctx.trace_id = r.u64();
  ctx.span_id = r.u64();
  if (ctx.trace_id == 0) {
    throw WireError("wire: trace context with zero trace id");
  }
  return ctx;
}

void put_span_set(Writer& w, const SpanSet& s) {
  w.u64(s.trace_id);
  w.u64(s.shard);
  w.u64(s.events.size());
  for (const obs::TraceEvent& e : s.events) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u64(static_cast<std::uint64_t>(e.depth));
    w.str(e.name);
    w.str(e.scope);
    w.str(e.code);
    w.str(e.detail);
    w.u64(e.index);
    w.f64(e.seconds);
    w.u64(e.ts_us);
    w.u64(e.tid);
    w.u64(e.trace_id);
    w.u64(e.span_id);
  }
}

SpanSet get_span_set(Reader& r) {
  SpanSet s;
  s.trace_id = r.u64();
  s.shard = r.u64();
  const std::uint64_t n = checked_len(r.u64(), 65, "trace span event");
  s.events.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    obs::TraceEvent e;
    e.kind =
        checked_enum<obs::TraceEvent::Kind>(r.u8(), 2, "TraceEvent.kind");
    e.depth = static_cast<int>(r.u64());
    e.name = r.str();
    e.scope = r.str();
    e.code = r.str();
    e.detail = r.str();
    e.index = r.u64();
    e.seconds = r.f64();
    e.ts_us = r.u64();
    e.tid = r.u64();
    e.trace_id = r.u64();
    e.span_id = r.u64();
    s.events.push_back(std::move(e));
  }
  return s;
}

void put_metrics_snapshot(Writer& w, const obs::MetricsSnapshot& s) {
  w.u64(s.entries.size());
  for (const obs::MetricEntry& e : s.entries) {
    w.str(e.name);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.boolean(e.deterministic);
    switch (e.kind) {
      case obs::MetricKind::kCounter:
        w.u64(e.counter);
        break;
      case obs::MetricKind::kGauge:
        w.u8(static_cast<std::uint8_t>(e.gauge_merge));
        w.f64(e.gauge);
        break;
      case obs::MetricKind::kHistogram: {
        w.u64(e.histogram.bounds.size());
        for (const double b : e.histogram.bounds) w.f64(b);
        w.u64(e.histogram.counts.size());
        for (const std::uint64_t c : e.histogram.counts) w.u64(c);
        w.u64(e.histogram.count);
        w.f64(e.histogram.sum);
        w.f64(e.histogram.min);
        w.f64(e.histogram.max);
        break;
      }
    }
  }
}

obs::MetricsSnapshot get_metrics_snapshot(Reader& r) {
  obs::MetricsSnapshot s;
  const std::uint64_t n = checked_len(r.u64(), 10, "metric entry");
  s.entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    obs::MetricEntry e;
    e.name = r.str();
    e.kind = checked_enum<obs::MetricKind>(r.u8(), 2, "MetricEntry.kind");
    e.deterministic = r.boolean();
    switch (e.kind) {
      case obs::MetricKind::kCounter:
        e.counter = r.u64();
        break;
      case obs::MetricKind::kGauge:
        e.gauge_merge = checked_enum<obs::GaugeMerge>(
            r.u8(), 1, "MetricEntry.gauge_merge");
        e.gauge = r.f64();
        break;
      case obs::MetricKind::kHistogram: {
        const std::uint64_t nb = checked_len(r.u64(), 8, "bucket bound");
        e.histogram.bounds.reserve(static_cast<std::size_t>(nb));
        for (std::uint64_t b = 0; b < nb; ++b) {
          e.histogram.bounds.push_back(r.f64());
        }
        const std::uint64_t ncnt = checked_len(r.u64(), 8, "bucket count");
        if (ncnt != nb + 1) {
          throw WireError("wire: histogram bucket/bound count mismatch");
        }
        e.histogram.counts.reserve(static_cast<std::size_t>(ncnt));
        for (std::uint64_t c = 0; c < ncnt; ++c) {
          e.histogram.counts.push_back(r.u64());
        }
        e.histogram.count = r.u64();
        e.histogram.sum = r.f64();
        e.histogram.min = r.f64();
        e.histogram.max = r.f64();
        break;
      }
    }
    s.entries.push_back(std::move(e));
  }
  return s;
}

void put_service_stats(Writer& w, const service::ServiceStats& s) {
  w.u64(s.requests);
  w.u64(s.hits);
  w.u64(s.misses);
  w.u64(s.dedup_joins);
  w.u64(s.evictions);
  w.u64(s.queue_depth);
  w.u64(s.queue_high_water);
  w.u64(s.cache_size);
  w.u64(s.latency.count);
  w.f64(s.latency.min_s);
  w.f64(s.latency.mean_s);
  w.f64(s.latency.max_s);
  w.f64(s.latency.p50_s);
  w.f64(s.latency.p95_s);
}

service::ServiceStats get_service_stats(Reader& r) {
  service::ServiceStats s;
  s.requests = r.u64();
  s.hits = r.u64();
  s.misses = r.u64();
  s.dedup_joins = r.u64();
  s.evictions = r.u64();
  s.queue_depth = static_cast<std::size_t>(r.u64());
  s.queue_high_water = static_cast<std::size_t>(r.u64());
  s.cache_size = static_cast<std::size_t>(r.u64());
  s.latency.count = r.u64();
  s.latency.min_s = r.f64();
  s.latency.mean_s = r.f64();
  s.latency.max_s = r.f64();
  s.latency.p50_s = r.f64();
  s.latency.p95_s = r.f64();
  return s;
}

// ---- frame I/O --------------------------------------------------------------

namespace {

// Writes all of `data`; false on a gone peer (EPIPE with SIGPIPE ignored).
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t k = ::write(fd, data, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

// 0 = clean EOF before any byte, 1 = read exactly n bytes; throws on a
// truncation after the first byte.
int read_exact(int fd, char* data, std::size_t n, const char* what) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::read(fd, data + got, n - got);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw WireError(util::format("wire: read error in %s: %s", what,
                                   std::strerror(errno)));
    }
    if (k == 0) {
      if (got == 0) return 0;
      throw WireError(util::format(
          "wire: stream truncated in %s (%zu of %zu bytes)", what, got, n));
    }
    got += static_cast<std::size_t>(k);
  }
  return 1;
}

// Validates the 16 header bytes shared by every reader path.
void parse_frame_header(std::string_view header, FrameType* type,
                        std::uint64_t* len) {
  Reader r(header);
  const std::uint32_t magic = r.u32();
  if (magic != kWireMagic) {
    throw WireError(util::format("wire: bad frame magic 0x%08x", magic));
  }
  const std::uint32_t t = r.u32();
  if (t < static_cast<std::uint32_t>(FrameType::kConfig) ||
      t > static_cast<std::uint32_t>(FrameType::kStatus)) {
    throw WireError(util::format("wire: unknown frame type %u", t));
  }
  const std::uint64_t n = r.u64();
  if (n > kMaxPayload) {
    throw WireError(util::format("wire: frame length %llu exceeds cap",
                                 static_cast<unsigned long long>(n)));
  }
  *type = static_cast<FrameType>(t);
  *len = n;
}

}  // namespace

bool write_frame(int fd, FrameType type, std::string_view payload) {
  const std::string buf = frame_bytes(type, payload);
  return write_all(fd, buf.data(), buf.size());
}

std::string frame_bytes(FrameType type, std::string_view payload) {
  Writer header;
  header.u32(kWireMagic);
  header.u32(static_cast<std::uint32_t>(type));
  header.u64(payload.size());
  std::string buf = header.take();
  buf.append(payload.data(), payload.size());
  return buf;
}

bool read_frame(int fd, Frame* out) {
  char header[16];
  if (read_exact(fd, header, sizeof(header), "frame header") == 0) {
    return false;  // clean EOF at a frame boundary
  }
  FrameType type;
  std::uint64_t len = 0;
  parse_frame_header(std::string_view(header, sizeof(header)), &type, &len);
  out->type = type;
  out->payload.resize(static_cast<std::size_t>(len));
  if (len > 0 &&
      read_exact(fd, out->payload.data(), out->payload.size(),
                 "frame payload") == 0) {
    throw WireError("wire: stream truncated before frame payload");
  }
  return true;
}

bool FrameDecoder::next(Frame* out) {
  constexpr std::size_t kHeader = 16;
  if (buf_.size() < kHeader) return false;
  FrameType type;
  std::uint64_t len = 0;
  parse_frame_header(std::string_view(buf_.data(), kHeader), &type, &len);
  if (buf_.size() - kHeader < len) return false;
  out->type = type;
  out->payload.assign(buf_, kHeader, static_cast<std::size_t>(len));
  buf_.erase(0, kHeader + static_cast<std::size_t>(len));
  return true;
}

int read_frame_deadline(int fd, FrameDecoder& decoder, Frame* out,
                        double timeout_s) {
  using clock = std::chrono::steady_clock;
  const clock::time_point deadline =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  char buf[65536];
  for (;;) {
    if (decoder.next(out)) return 1;
    const auto remaining = deadline - clock::now();
    if (remaining <= clock::duration::zero()) return -1;
    const int remaining_ms = static_cast<int>(std::min<std::int64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
                .count() +
            1,
        60'000));
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, remaining_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw WireError(util::format("wire: poll failed: %s",
                                   std::strerror(errno)));
    }
    if (pr == 0) continue;  // re-check the deadline, then give up
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(util::format("wire: read error: %s",
                                   std::strerror(errno)));
    }
    if (n == 0) {
      if (decoder.mid_frame()) {
        throw WireError("wire: stream truncated mid-frame");
      }
      return 0;  // clean EOF at a frame boundary
    }
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

}  // namespace oasys::shard
