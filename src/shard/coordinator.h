// Coordinator half of cross-process sharded serving.
//
// run_sharded_batch partitions a batch of specs across N worker processes
// by canonical request key: the same (technology, options, spec)
// fingerprint the service layer caches under, finalized through
// util::mix64 and reduced modulo the worker count.  Identical requests
// therefore always co-locate — each worker's private LRU cache sees
// exactly the hits, misses, and dedup joins the key stream implies, with
// no cross-process locks and no shared state beyond the pipes.
//
// Determinism contract: outcomes are merged in global submission order,
// and each ok() outcome is bit-for-bit what a single SynthesisService
// (and therefore a direct synthesize_opamp call) returns for that spec —
// at every worker count.  The conformance suite pins `oasys shard
// --workers k` stdout byte-identical to `oasys batch` for k in {1,2,4}.
//
// Fault model: a worker that dies mid-batch (crash, kill, malformed
// frame) never hangs the coordinator and never masquerades as success —
// its unreturned specs get deterministic per-spec errors, its summary
// records the decoded exit status, and ShardReport::infra_ok() goes
// false.  Workers are spawned fork+exec (`<worker_command> shard-worker`)
// rather than bare fork so sanitizer runtimes (TSan) see a clean process.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/spec.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "shard/wire.h"
#include "synth/oasys.h"
#include "tech/technology.h"
#include "yield/service.h"

namespace oasys::shard {

struct ShardOptions {
  // Worker process count (>= 1).  Results are identical at every value;
  // only wall time and per-shard load change.
  std::size_t workers = 2;
  // Executable spawned per worker, invoked as `<worker_command>
  // shard-worker` with the wire conversation on its stdin/stdout.  The
  // CLI passes its own binary path.
  std::string worker_command;
  // Per-worker service configuration (each worker owns a private cache).
  service::ServiceOptions service;
  // Per-worker progress deadline [s]; 0 disables it.  When set, a worker
  // that produces no frame for this long is presumed wedged (alive but
  // never writing): it is killed, its unreturned specs become
  // deterministic per-spec errors, and the batch completes instead of
  // hanging.  The deadline re-arms on every frame received, so a slow but
  // progressing worker is never killed.
  double worker_timeout_s = 0.0;
  // Distributed-tracing id for this batch (obs::mint_trace_id); 0 keeps
  // tracing off and every request payload byte-identical to an untraced
  // run.  When set, each request carries a trace context (span id =
  // obs::span_id_for(trace_id, submission index)) and workers stream
  // their span sets back.  Never affects results, routing, or the
  // deterministic metrics section.
  std::uint64_t trace_id = 0;
};

// Per-request outcome, in global submission order.  Mirrors
// yield::Outcome plus the shard that served (or lost) the request:
// `result` answers a synthesis request, `yield` answers a yield request.
struct ShardOutcome {
  bool is_yield = false;
  synth::SynthesisResult result;
  yield::YieldResult yield;
  std::string error;       // empty <=> the answer field is valid
  std::size_t shard = 0;   // worker index the request was routed to
  bool ok() const { return error.empty(); }
};

// What happened to one worker process, end to end.
struct WorkerSummary {
  std::size_t shard = 0;
  long pid = -1;
  std::size_t requests = 0;       // specs routed to this worker
  bool protocol_ok = false;       // full conversation through kDone
  bool timed_out = false;         // killed by the worker_timeout_s deadline
  int exit_status = -1;           // raw waitpid() status
  std::string error;              // empty when clean; first failure wins
  service::ServiceStats stats;    // worker-reported service counters
  bool ok() const { return error.empty(); }
};

struct ShardReport {
  std::vector<ShardOutcome> outcomes;  // one per spec, submission order
  std::vector<WorkerSummary> workers;
  // merge_snapshots over the worker registries, with `exec.regions`
  // reflagged non-deterministic (it counts one drain per worker, so it is
  // the one deterministic counter that varies with the worker count) and
  // per-shard `shard.<i>.*` counters plus a shard-tagged copy of each
  // worker's service.latency_seconds appended in the timing section.
  // The deterministic section is worker-count-invariant and matches a
  // single-process `oasys batch` run of the same specs.
  obs::MetricsSnapshot merged_metrics;
  // Worker span sets, in arrival order, when ShardOptions::trace_id was
  // set.  Partial by design under faults: a worker flushes its receive
  // markers before computing, so a crashed or wedge-killed worker's sets
  // still frame the failure window.  Coordinator-side events stay in the
  // process-global obs collector (the caller owns draining it).
  std::vector<SpanSet> worker_spans;

  // Every worker completed the protocol and exited 0.  Per-spec synthesis
  // failures (an outcome with ok() false under a healthy worker) are
  // ordinary results at this level; callers combine both for exit codes.
  bool infra_ok() const;
};

// The canonical routing rule, exposed for tests: which worker serves a
// request key, for a given worker count.  Must stay in lockstep with
// SynthesisService::request_key so co-location (and thus cache behavior)
// is exact.
std::size_t route(const std::string& request_key, std::size_t workers);

// One fork+exec'd worker process and the coordinator ends of its pipes
// (to_fd = its stdin, from_fd = its stdout; both CLOEXEC so siblings
// spawned later cannot hold a dead worker's pipe open and mask its EOF).
// `session` spawns `<command> shard-worker --session` (the resident
// daemon-pool mode, src/serve/) instead of the one-shot batch worker.
// Throws std::runtime_error when pipe() or fork() fails; an exec or
// stdio-wiring failure in the child surfaces as exit status 127.
struct SpawnedWorker {
  pid_t pid = -1;
  int to_fd = -1;
  int from_fd = -1;
};
SpawnedWorker spawn_worker_process(const std::string& command, bool session);

// Spawns options.workers processes, routes and runs a mixed batch of
// synthesis and yield requests, merges results and metrics, reaps every
// child.  Yield requests are routed by their spec's plain request key —
// the same key a synthesis of that spec routes by — so the two kinds of
// traffic for one spec always co-locate on one worker and share its
// caches (which is also what keeps the merged deterministic counters
// worker-count-invariant).  Throws std::invalid_argument on workers == 0
// or an empty worker_command; worker failures are reported in the
// ShardReport, never thrown.
ShardReport run_sharded_requests(const tech::Technology& tech,
                                 const synth::SynthOptions& synth_opts,
                                 const std::vector<yield::Request>& requests,
                                 const ShardOptions& options);

// Synthesis-only convenience wrapper over run_sharded_requests.
ShardReport run_sharded_batch(const tech::Technology& tech,
                              const synth::SynthOptions& synth_opts,
                              const std::vector<core::OpAmpSpec>& specs,
                              const ShardOptions& options);

}  // namespace oasys::shard
