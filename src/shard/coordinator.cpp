#include "shard/coordinator.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/span.h"
#include "shard/wire.h"
#include "synth/opamp_design.h"
#include "util/fingerprint.h"
#include "util/text.h"

namespace oasys::shard {

namespace {

struct WorkerProc {
  pid_t pid = -1;
  int to_fd = -1;    // coordinator -> worker stdin
  int from_fd = -1;  // worker stdout -> coordinator
  bool write_ok = true;
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// Parent-held pipe ends must not leak into later-spawned workers: a sibling
// holding the write end of a crashed worker's stdout would keep the
// coordinator's read from ever seeing EOF, turning a dead worker into a
// hang.  CLOEXEC closes them at the sibling's exec.
void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

// dup2 with EINTR retry; < 0 on any other failure (EMFILE and friends).
int dup2_retry(int oldfd, int newfd) {
  int rc;
  do {
    rc = ::dup2(oldfd, newfd);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

// Child-side exit note: async-signal-safe (write(2) only), since we are
// between fork and exec in a possibly multi-threaded parent's child.
void child_die(const char* msg) {
  const ssize_t ignored = ::write(STDERR_FILENO, msg, std::strlen(msg));
  (void)ignored;
  std::_Exit(127);
}

}  // namespace

SpawnedWorker spawn_worker_process(const std::string& command,
                                   bool session) {
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (::pipe(to_child) != 0) {
    throw std::runtime_error("shard: pipe() failed");
  }
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw std::runtime_error("shard: pipe() failed");
  }
  set_cloexec(to_child[1]);
  set_cloexec(from_child[0]);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    throw std::runtime_error("shard: fork() failed");
  }
  if (pid == 0) {
    // Child: wire the conversation onto stdin/stdout and become a worker.
    // stderr stays inherited so worker diagnostics reach the operator.
    // A failed dup2 (EMFILE, ...) must not exec with mis-wired stdio —
    // the frame protocol would desync on whatever fd 0/1 happened to be.
    if (dup2_retry(to_child[0], STDIN_FILENO) < 0 ||
        dup2_retry(from_child[1], STDOUT_FILENO) < 0) {
      child_die("oasys shard: dup2 failed wiring worker stdio\n");
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    if (session) {
      ::execl(command.c_str(), command.c_str(), "shard-worker",
              "--session", static_cast<char*>(nullptr));
    } else {
      ::execl(command.c_str(), command.c_str(), "shard-worker",
              static_cast<char*>(nullptr));
    }
    child_die("oasys shard: exec of worker command failed\n");
  }

  SpawnedWorker p;
  p.pid = pid;
  p.to_fd = to_child[1];
  p.from_fd = from_child[0];
  ::close(to_child[0]);
  ::close(from_child[1]);
  return p;
}

namespace {

WorkerProc spawn_worker(const std::string& command) {
  const SpawnedWorker s = spawn_worker_process(command, /*session=*/false);
  WorkerProc p;
  p.pid = s.pid;
  p.to_fd = s.to_fd;
  p.from_fd = s.from_fd;
  return p;
}

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return util::format("exited with status %d", WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return util::format("killed by signal %d", WTERMSIG(status));
  }
  return util::format("ended with raw wait status %d", status);
}

}  // namespace

bool ShardReport::infra_ok() const {
  for (const WorkerSummary& w : workers) {
    if (!w.ok()) return false;
  }
  return true;
}

std::size_t route(const std::string& request_key, std::size_t workers) {
  return util::shard_index(util::fnv1a64(request_key), workers);
}

ShardReport run_sharded_requests(const tech::Technology& tech,
                                 const synth::SynthOptions& synth_opts,
                                 const std::vector<yield::Request>& requests,
                                 const ShardOptions& options) {
  if (options.workers == 0) {
    throw std::invalid_argument("shard: workers must be >= 1");
  }
  if (options.worker_command.empty()) {
    throw std::invalid_argument("shard: worker_command must be set");
  }
  OBS_SPAN("shard/run_sharded_batch");
  // A worker that dies mid-send must surface as write_frame returning
  // false, not as SIGPIPE killing the coordinator.  Scoped: this is a
  // library entry point, so the embedding application's handler is
  // restored on every exit path.
  const ScopedSigpipeIgnore sigpipe_guard;

  const std::string tech_canon = tech.canonical_string();
  const std::string opts_canon = synth::canonical_string(synth_opts);
  // Must build the same bytes as SynthesisService::request_key, or routing
  // would stop co-locating identical requests.
  const std::string key_prefix = tech_canon + "|" + opts_canon + "|";

  ShardReport report;
  report.outcomes.resize(requests.size());
  report.workers.resize(options.workers);

  std::vector<WorkerProc> procs;
  procs.reserve(options.workers);
  for (std::size_t i = 0; i < options.workers; ++i) {
    procs.push_back(spawn_worker(options.worker_command));
    report.workers[i].shard = i;
    report.workers[i].pid = static_cast<long>(procs[i].pid);
  }

  const auto send = [&](std::size_t i, FrameType type,
                        std::string_view payload) {
    if (!procs[i].write_ok) return;
    if (!write_frame(procs[i].to_fd, type, payload)) {
      procs[i].write_ok = false;
    }
  };

  for (std::size_t i = 0; i < options.workers; ++i) {
    WorkerConfig config;
    config.shard = i;
    config.tech = tech;
    config.synth = synth_opts;
    config.service = options.service;
    config.tech_hash = util::fnv1a64(tech_canon);
    config.opts_hash = util::fnv1a64(opts_canon);
    Writer w;
    put_config(w, config);
    send(i, FrameType::kConfig, w.bytes());
  }

  // Route every request in global submission order; workers see their
  // subsequence in that same order, which is what makes per-shard cache
  // and dedup behavior independent of the worker count.  Yield requests
  // route by the same plain spec key as syntheses — deliberately ignoring
  // the yield params — so both traffic kinds for one spec co-locate.
  std::vector<std::size_t> spec_shard(requests.size(), 0);
  for (std::size_t s = 0; s < requests.size(); ++s) {
    const std::size_t i = route(
        key_prefix + requests[s].spec.canonical_string(), options.workers);
    spec_shard[s] = i;
    report.outcomes[s].shard = i;
    report.outcomes[s].is_yield = requests[s].is_yield;
    ++report.workers[i].requests;
    TraceContext ctx;
    if (options.trace_id != 0) {
      ctx.trace_id = options.trace_id;
      ctx.span_id = obs::span_id_for(options.trace_id, s);
      const obs::ScopedTraceContext scoped(ctx.trace_id, ctx.span_id);
      obs::emit_instant("request.route", requests[s].spec.name,
                        requests[s].is_yield ? "yield" : "synth",
                        util::format("shard %zu", i), s);
    }
    Writer w;
    w.u64(s);
    put_spec(w, requests[s].spec);
    if (requests[s].is_yield) {
      put_yield_params(w, requests[s].params);
      put_trace_context(w, ctx);
      send(i, FrameType::kYieldRequest, w.bytes());
    } else {
      put_trace_context(w, ctx);
      send(i, FrameType::kRequest, w.bytes());
    }
  }

  for (std::size_t i = 0; i < options.workers; ++i) {
    send(i, FrameType::kRun, {});
    // Nothing more flows downstream; EOF here also bounds a worker that
    // never got a complete kRun (it reads EOF and exits with an error).
    close_fd(procs[i].to_fd);
  }

  // Collect worker by worker.  Workers compute concurrently regardless of
  // read order — a not-yet-read worker parks on its full stdout pipe at
  // worst — and there is no circular wait: the coordinator always drains
  // the worker it is blocked on.
  std::vector<obs::MetricsSnapshot> worker_snaps(options.workers);
  std::vector<bool> have_snap(options.workers, false);
  std::vector<bool> have_result(requests.size(), false);
  for (std::size_t i = 0; i < options.workers; ++i) {
    WorkerSummary& ws = report.workers[i];
    bool done = false;
    try {
      Frame frame;
      FrameDecoder decoder;
      // With a deadline, a worker that stops producing frames (alive but
      // wedged) is killed and reported; read_frame alone would block the
      // coordinator forever.
      const auto next_frame = [&]() -> bool {
        if (options.worker_timeout_s <= 0.0) {
          return read_frame(procs[i].from_fd, &frame);
        }
        const int rc = read_frame_deadline(procs[i].from_fd, decoder,
                                           &frame,
                                           options.worker_timeout_s);
        if (rc < 0) {
          ::kill(procs[i].pid, SIGKILL);
          ws.timed_out = true;
          // The catch below prefixes "worker %zu: ".
          throw WireError(util::format(
              "produced no frame within its %.3g s deadline and was "
              "killed",
              options.worker_timeout_s));
        }
        return rc == 1;
      };
      while (!done && next_frame()) {
        switch (frame.type) {
          case FrameType::kResult:
          case FrameType::kYieldResult: {
            Reader r(frame.payload);
            const std::uint64_t seq = r.u64();
            if (seq >= requests.size() || spec_shard[seq] != i ||
                have_result[seq]) {
              throw WireError(util::format(
                  "worker %zu sent an unexpected sequence id %llu", i,
                  static_cast<unsigned long long>(seq)));
            }
            ShardOutcome& o = report.outcomes[seq];
            // A result frame of the wrong kind is protocol desync, not a
            // recoverable outcome.
            if (o.is_yield != (frame.type == FrameType::kYieldResult)) {
              throw WireError(util::format(
                  "worker %zu answered sequence id %llu with the wrong "
                  "result kind",
                  i, static_cast<unsigned long long>(seq)));
            }
            const bool result_ok = r.boolean();
            if (!result_ok) {
              o.error = r.str();
              if (o.error.empty()) o.error = "unspecified worker error";
            } else if (o.is_yield) {
              o.yield = get_yield_result(r);
            } else {
              o.result = get_result(r);
            }
            r.expect_end();
            have_result[seq] = true;
            break;
          }
          case FrameType::kSpans: {
            Reader r(frame.payload);
            SpanSet set = get_span_set(r);
            r.expect_end();
            if (set.shard != i) {
              throw WireError(util::format(
                  "worker %zu sent a span set claiming shard %llu", i,
                  static_cast<unsigned long long>(set.shard)));
            }
            report.worker_spans.push_back(std::move(set));
            break;
          }
          case FrameType::kMetrics: {
            Reader r(frame.payload);
            worker_snaps[i] = get_metrics_snapshot(r);
            ws.stats = get_service_stats(r);
            r.expect_end();
            have_snap[i] = true;
            break;
          }
          case FrameType::kDone: {
            Reader r(frame.payload);
            r.expect_end();
            done = true;
            break;
          }
          default:
            throw WireError(
                util::format("worker %zu sent unexpected frame type %u", i,
                             static_cast<unsigned>(frame.type)));
        }
      }
      if (done && have_snap[i]) {
        ws.protocol_ok = true;
      } else if (ws.error.empty()) {
        ws.error = util::format(
            "worker %zu closed its pipe before completing the protocol", i);
      }
    } catch (const WireError& e) {
      ws.error = util::format("worker %zu: %s", i, e.what());
    }
    close_fd(procs[i].from_fd);
  }

  for (std::size_t i = 0; i < options.workers; ++i) {
    WorkerSummary& ws = report.workers[i];
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(procs[i].pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
      if (ws.error.empty()) {
        ws.error = util::format("worker %zu: waitpid failed", i);
      }
      continue;
    }
    ws.exit_status = status;
    if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0) &&
        ws.error.empty()) {
      ws.error =
          util::format("worker %zu %s", i, describe_exit(status).c_str());
    }
  }

  // Worker failures become timeline instants so the merged trace shows
  // the failure window next to whatever span sets the worker managed to
  // flush before dying.
  if (options.trace_id != 0) {
    const obs::ScopedTraceContext scoped(options.trace_id, 0);
    for (const WorkerSummary& ws : report.workers) {
      if (ws.ok()) continue;
      obs::emit_instant("worker.failed", "shard",
                        ws.timed_out ? "timeout" : "died", ws.error,
                        ws.shard);
    }
  }

  // Deterministic per-spec errors for everything a dead worker never
  // returned: no pids, no exit statuses, so the text is stable run-to-run
  // (the WorkerSummary carries the forensic detail).  Wedged-and-killed
  // workers get their own text so operators can tell a crash from a hang.
  for (std::size_t s = 0; s < requests.size(); ++s) {
    if (have_result[s] || !report.outcomes[s].error.empty()) continue;
    report.outcomes[s].error =
        report.workers[spec_shard[s]].timed_out
            ? util::format("shard worker %zu timed out before returning a "
                           "result for this spec",
                           spec_shard[s])
            : util::format("shard worker %zu died before returning a "
                           "result for this spec",
                           spec_shard[s]);
  }

  std::vector<obs::MetricsSnapshot> parts;
  for (std::size_t i = 0; i < options.workers; ++i) {
    if (have_snap[i]) parts.push_back(worker_snaps[i]);
  }
  obs::MetricsSnapshot merged = obs::merge_snapshots(parts);
  // exec.regions counts parallel_for invocations — one batch drain per
  // worker — so it is the one deterministic counter whose merged total
  // varies with the worker count.  Reflag it; every other entry in the
  // deterministic section is worker-count-invariant.
  for (obs::MetricEntry& e : merged.entries) {
    if (e.name == "exec.regions") e.deterministic = false;
  }
  // Per-shard telemetry lives in the timing section by construction: the
  // split of one workload across k caches depends on k.
  for (std::size_t i = 0; i < options.workers; ++i) {
    const WorkerSummary& ws = report.workers[i];
    const std::string prefix = util::format("shard.%zu.", i);
    const auto counter = [&](const char* name, std::uint64_t v) {
      obs::MetricEntry e;
      e.name = prefix + name;
      e.kind = obs::MetricKind::kCounter;
      e.deterministic = false;
      e.counter = v;
      merged.entries.push_back(std::move(e));
    };
    counter("requests", ws.stats.requests);
    counter("hits", ws.stats.hits);
    counter("misses", ws.stats.misses);
    counter("dedup_joins", ws.stats.dedup_joins);
    counter("evictions", ws.stats.evictions);
    if (have_snap[i]) {
      if (const obs::MetricEntry* lat =
              worker_snaps[i].find("service.latency_seconds")) {
        obs::MetricEntry e = *lat;
        e.name = prefix + "latency_seconds";
        e.deterministic = false;
        merged.entries.push_back(std::move(e));
      }
    }
  }
  std::sort(merged.entries.begin(), merged.entries.end(),
            [](const obs::MetricEntry& a, const obs::MetricEntry& b) {
              return a.name < b.name;
            });
  report.merged_metrics = std::move(merged);
  return report;
}

ShardReport run_sharded_batch(const tech::Technology& tech,
                              const synth::SynthOptions& synth_opts,
                              const std::vector<core::OpAmpSpec>& specs,
                              const ShardOptions& options) {
  std::vector<yield::Request> requests;
  requests.reserve(specs.size());
  for (const core::OpAmpSpec& s : specs) {
    yield::Request r;
    r.spec = s;
    requests.push_back(std::move(r));
  }
  return run_sharded_requests(tech, synth_opts, requests, options);
}

}  // namespace oasys::shard
