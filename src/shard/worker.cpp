#include "shard/worker.h"

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/spec.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "shard/wire.h"
#include "spice/sim_options.h"
#include "synth/opamp_design.h"
#include "util/fingerprint.h"
#include "yield/service.h"

namespace oasys::shard {

namespace {

// Deterministic crash injection for the fault-path tests; see worker.h.
struct CrashHook {
  std::string spec_name;
  bool on_receive = false;
  bool wedge = false;

  bool hits(const std::string& name) const {
    return !spec_name.empty() && name == spec_name;
  }

  // Fires the pre-result hook: exits, or wedges (alive, never writing
  // again) so the coordinator's worker-timeout deadline has something
  // real to kill.
  [[noreturn]] void fire() const {
    if (wedge) {
      for (;;) ::pause();
    }
    std::_Exit(kCrashHookExitCode);
  }

  static CrashHook from_env() {
    CrashHook h;
    const char* v = std::getenv("OASYS_SHARD_TEST_CRASH");
    if (v == nullptr || *v == '\0') return h;
    std::string s(v);
    const auto strip = [&s](std::string_view suffix) {
      if (s.size() > suffix.size() &&
          std::string_view(s).substr(s.size() - suffix.size()) == suffix) {
        s.resize(s.size() - suffix.size());
        return true;
      }
      return false;
    };
    h.on_receive = strip(":recv");
    if (!h.on_receive) h.wedge = strip(":wedge");
    h.spec_name = std::move(s);
    return h;
  }
};

// The coordinator's transient-engine selection must govern every
// simulation this worker runs: TranOptions built deep inside measurement
// code resolve kDefault against the *process* default, which in a worker
// is this process — not the coordinator's environment or flags.
void apply_config_defaults(const WorkerConfig& config) {
  sim::set_tran_mode_default(sim::resolve_tran_mode(config.synth.tran_mode));
  sim::set_tran_tolerance_default(config.synth.tran_rtol,
                                  config.synth.tran_atol);
}

// stderr is inherited from the coordinator, so the operator sees why a
// worker refused; write(2) directly because the process is about to exit.
int die(const std::string& msg) {
  const std::string line = "oasys shard-worker: " + msg + "\n";
  const ssize_t ignored = ::write(2, line.data(), line.size());
  (void)ignored;
  return 3;
}

// Decodes one kRequest or kYieldRequest payload into (seq, mixed request).
void decode_request(const Frame& frame, std::uint64_t* seq,
                    yield::Request* req) {
  Reader r(frame.payload);
  *seq = r.u64();
  req->spec = get_spec(r);
  if (frame.type == FrameType::kYieldRequest) {
    req->is_yield = true;
    req->params = get_yield_params(r);
  }
  // Optional trailing trace context (version-guarded): absent on payloads
  // from an untraced coordinator, so those bytes parse exactly as before.
  const TraceContext ctx = get_trace_context(r);
  req->trace_id = ctx.trace_id;
  req->span_id = ctx.span_id;
  r.expect_end();
}

// The cycle's trace id: the first traced request's (the coordinator mints
// one id per batch, so they all agree); 0 when the cycle is untraced.
std::uint64_t cycle_trace_id(const std::vector<yield::Request>& requests) {
  for (const yield::Request& r : requests) {
    if (r.trace_id != 0) return r.trace_id;
  }
  return 0;
}

// Marks every request as received, under its own span id — flushed to the
// coordinator *before* compute starts, so a worker that crashes or wedges
// mid-batch has already delivered the receive markers that frame the
// failure window in the merged timeline.
void emit_recv_markers(const std::vector<std::uint64_t>& seqs,
                       const std::vector<yield::Request>& requests) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    obs::ScopedTraceContext ctx(requests[i].trace_id, requests[i].span_id);
    obs::emit_instant("request.recv", requests[i].spec.name,
                      requests[i].is_yield ? "yield" : "synth", "", seqs[i]);
  }
}

// Drains the global trace collector into one kSpans frame.  Empty drains
// write nothing; a false return means the peer is gone.
bool flush_spans(int out_fd, std::uint64_t trace_id, std::uint64_t shard) {
  SpanSet set;
  set.trace_id = trace_id;
  set.shard = shard;
  set.events = obs::drain_global_trace();
  if (set.events.empty()) return true;
  Writer w;
  put_span_set(w, set);
  return write_frame(out_fd, FrameType::kSpans, w.bytes());
}

// Scoped per-cycle tracing: enables the global collector only for traced
// cycles and clears any stale events on both ends, so an untraced cycle
// after a traced one never leaks the previous timeline.
class ScopedCycleTracing {
 public:
  explicit ScopedCycleTracing(bool enable) : enabled_(enable) {
    if (enabled_) {
      obs::drain_global_trace();
      obs::set_tracing_enabled(true);
    }
  }
  ~ScopedCycleTracing() {
    if (enabled_) {
      obs::set_tracing_enabled(false);
      obs::drain_global_trace();
    }
  }
  ScopedCycleTracing(const ScopedCycleTracing&) = delete;
  ScopedCycleTracing& operator=(const ScopedCycleTracing&) = delete;

 private:
  bool enabled_;
};

// Writes one outcome back: kResult for synthesis, kYieldResult for yield,
// both carrying (seq, ok, result-or-error).
bool write_outcome(int out_fd, std::uint64_t seq, const yield::Outcome& o) {
  Writer w;
  w.u64(seq);
  w.boolean(o.ok());
  if (!o.ok()) {
    w.str(o.error);
  } else if (o.is_yield) {
    put_yield_result(w, o.yield);
  } else {
    put_result(w, o.result);
  }
  return write_frame(
      out_fd, o.is_yield ? FrameType::kYieldResult : FrameType::kResult,
      w.bytes());
}

}  // namespace

int worker_main(int in_fd, int out_fd) {
  // write_frame reports a vanished peer by returning false; that only works
  // if a write to a closed pipe raises EPIPE instead of killing us.
  std::signal(SIGPIPE, SIG_IGN);
  const CrashHook crash = CrashHook::from_env();

  try {
    Frame frame;
    if (!read_frame(in_fd, &frame)) {
      return die("coordinator closed the pipe before sending kConfig");
    }
    if (frame.type != FrameType::kConfig) {
      return die("first frame was not kConfig");
    }
    Reader config_reader(frame.payload);
    const WorkerConfig config = get_config(config_reader);
    config_reader.expect_end();

    // Schema-drift guard: re-derive the canonical fingerprints from what
    // actually survived the round trip.  A serializer that dropped or
    // reordered a field produces a different canonical string here, and a
    // worker computing on drifted inputs must never serve.
    if (util::fnv1a64(config.tech.canonical_string()) != config.tech_hash ||
        util::fnv1a64(synth::canonical_string(config.synth)) !=
            config.opts_hash) {
      return die(
          "config fingerprint mismatch: decoded technology/options do not "
          "hash to the coordinator's canonical fingerprints (wire schema "
          "drift)");
    }
    apply_config_defaults(config);

    std::vector<std::uint64_t> seqs;
    std::vector<yield::Request> requests;
    for (;;) {
      if (!read_frame(in_fd, &frame)) {
        return die("coordinator closed the pipe before sending kRun");
      }
      if (frame.type == FrameType::kRun) {
        Reader r(frame.payload);
        r.expect_end();
        break;
      }
      if (frame.type != FrameType::kRequest &&
          frame.type != FrameType::kYieldRequest) {
        return die("unexpected frame before kRun");
      }
      std::uint64_t seq = 0;
      yield::Request req;
      decode_request(frame, &seq, &req);
      if (crash.on_receive && crash.hits(req.spec.name)) crash.fire();
      seqs.push_back(seq);
      requests.push_back(std::move(req));
    }

    const std::uint64_t trace_id = cycle_trace_id(requests);
    ScopedCycleTracing tracing(trace_id != 0);
    if (trace_id != 0) {
      emit_recv_markers(seqs, requests);
      // Early flush: the receive markers reach the coordinator before any
      // compute, surviving a mid-batch crash or wedge.
      if (!flush_spans(out_fd, trace_id, config.shard)) {
        return die("coordinator pipe closed while sending spans");
      }
    }

    yield::YieldService service(config.tech, config.synth, config.service);
    const std::vector<yield::Outcome> outcomes = service.run_mixed(requests);

    if (trace_id != 0 &&
        !flush_spans(out_fd, trace_id, config.shard)) {
      return die("coordinator pipe closed while sending spans");
    }

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (!crash.on_receive && crash.hits(requests[i].spec.name)) {
        crash.fire();
      }
      if (!write_outcome(out_fd, seqs[i], outcomes[i])) {
        return die("coordinator pipe closed while sending results");
      }
    }

    Writer w;
    put_metrics_snapshot(w, obs::Registry::global().snapshot());
    put_service_stats(w, service.stats());
    if (!write_frame(out_fd, FrameType::kMetrics, w.bytes()) ||
        !write_frame(out_fd, FrameType::kDone, {})) {
      return die("coordinator pipe closed while finishing");
    }
    return 0;
  } catch (const WireError& e) {
    return die(std::string("malformed frame from coordinator: ") + e.what());
  } catch (const std::exception& e) {
    return die(std::string("fatal: ") + e.what());
  }
}

int worker_session_main(int in_fd, int out_fd) {
  std::signal(SIGPIPE, SIG_IGN);
  const CrashHook crash = CrashHook::from_env();

  try {
    Frame frame;
    if (!read_frame(in_fd, &frame)) {
      return die("peer closed the pipe before sending kConfig");
    }
    if (frame.type != FrameType::kConfig) {
      return die("first frame was not kConfig");
    }
    Reader config_reader(frame.payload);
    const WorkerConfig config = get_config(config_reader);
    config_reader.expect_end();
    if (util::fnv1a64(config.tech.canonical_string()) != config.tech_hash ||
        util::fnv1a64(synth::canonical_string(config.synth)) !=
            config.opts_hash) {
      return die(
          "config fingerprint mismatch: decoded technology/options do not "
          "hash to the coordinator's canonical fingerprints (wire schema "
          "drift)");
    }
    apply_config_defaults(config);

    // One resident service for the whole session: its private LRU caches
    // (synthesis results and completed yield analyses) are the warm tier
    // that makes the daemon pay off across requests.
    yield::YieldService service(config.tech, config.synth, config.service);

    for (;;) {
      std::vector<std::uint64_t> seqs;
      std::vector<yield::Request> requests;
      bool cycle_started = false;
      for (;;) {
        if (!read_frame(in_fd, &frame)) {
          if (!cycle_started) return 0;  // clean drain at a cycle boundary
          return die("peer closed the pipe mid-cycle before kRun");
        }
        cycle_started = true;
        if (frame.type == FrameType::kRun) {
          Reader r(frame.payload);
          r.expect_end();
          break;
        }
        if (frame.type != FrameType::kRequest &&
            frame.type != FrameType::kYieldRequest) {
          return die("unexpected frame before kRun");
        }
        std::uint64_t seq = 0;
        yield::Request req;
        decode_request(frame, &seq, &req);
        if (crash.on_receive && crash.hits(req.spec.name)) crash.fire();
        seqs.push_back(seq);
        requests.push_back(std::move(req));
      }

      // Each kMetrics frame carries this cycle's deltas only, so the
      // coordinator can accumulate across cycles without double counting;
      // ServiceStats stay cumulative (the resident cache's whole history).
      obs::Registry::global().reset();

      const std::uint64_t trace_id = cycle_trace_id(requests);
      ScopedCycleTracing tracing(trace_id != 0);
      if (trace_id != 0) {
        emit_recv_markers(seqs, requests);
        // Early flush: the receive markers reach the daemon before any
        // compute, surviving a mid-batch crash or wedge.
        if (!flush_spans(out_fd, trace_id, config.shard)) {
          return die("peer pipe closed while sending spans");
        }
      }

      const std::vector<yield::Outcome> outcomes =
          service.run_mixed(requests);

      if (trace_id != 0 &&
          !flush_spans(out_fd, trace_id, config.shard)) {
        return die("peer pipe closed while sending spans");
      }

      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!crash.on_receive && crash.hits(requests[i].spec.name)) {
          crash.fire();
        }
        if (!write_outcome(out_fd, seqs[i], outcomes[i])) {
          return die("peer pipe closed while sending results");
        }
      }

      Writer w;
      put_metrics_snapshot(w, obs::Registry::global().snapshot());
      put_service_stats(w, service.stats());
      if (!write_frame(out_fd, FrameType::kMetrics, w.bytes()) ||
          !write_frame(out_fd, FrameType::kDone, {})) {
        return die("peer pipe closed while finishing a cycle");
      }
    }
  } catch (const WireError& e) {
    return die(std::string("malformed frame from peer: ") + e.what());
  } catch (const std::exception& e) {
    return die(std::string("fatal: ") + e.what());
  }
}

}  // namespace oasys::shard
