// Batched (structure-of-arrays) evaluation of the MOS Level-1 core.
//
// `evaluate_core` in level1.h is the scalar reference: one device, one
// bias, branchy region logic.  This header provides the same model as a
// flat-array batch: all devices of a netlist (or all lanes of a sweep
// fan-out) are evaluated by one loop whose region logic is expressed as
// mask-selects over per-region arithmetic, so the compiler can
// auto-vectorize the cutoff/triode/saturation math (see the OASYS_SIMD
// cmake option).
//
// Equivalence contract: for every slot, every output of
// `evaluate_core_batch` is bit-for-bit identical to the corresponding
// field of `evaluate_core(p, g, bias)` — each per-region expression is
// written as the exact expression tree of the scalar reference (including
// the `std::max` operand order, which fixes the sign of zero), and the
// selects only choose which result is stored.  The batch path is therefore
// interchangeable with the scalar path anywhere, at any jobs setting, and
// the golden-equivalence suites pin this forever.
//
// Inputs are split into bias arrays (rewritten every Newton iteration) and
// device-constant arrays (geometry + effective model parameters, loaded
// once per device table build).  All arrays are plain std::vector<double>
// sized by resize(); steady-state re-evaluation touches no allocator.
#pragma once

#include <cstdint>
#include <vector>

#include "mos/level1.h"

namespace oasys::mos {

struct CoreEvalBatch {
  // Per-iteration bias inputs, NMOS-like frame (see CoreBias): vds >= 0,
  // callers swap drain/source beforehand when needed.
  std::vector<double> vgs, vds, vbs;

  // Device-constant geometry inputs (m stored as double; it only ever
  // enters the model as a multiplier).
  std::vector<double> w, l, m;

  // Device-constant effective model parameters.  vt0 includes any
  // per-device mismatch shift; sqrt_phi = sqrt(phi) and
  // lambda = lambda_at(l) are precomputed at load time (both are exactly
  // the values the scalar path recomputes per call).
  std::vector<double> kp, vt0, gamma, phi, sqrt_phi, lambda;

  // Outputs, parallel to CoreEval fields.
  std::vector<double> id, gm, gds, gmb, vth, vov, vdsat;
  std::vector<std::uint8_t> region;  // static_cast<std::uint8_t>(Region)

  std::size_t size() const { return vgs.size(); }
  bool empty() const { return vgs.empty(); }

  // Sizes every array to n slots.  Only allocates when n grows past the
  // current capacity, so a table rebuilt at the same size is
  // allocation-free.
  void resize(std::size_t n);

  // Loads the device-constant slots for one device: validates the
  // geometry (throws std::invalid_argument on w <= 0, l <= 0, or m < 1;
  // see validate_geometry) and precomputes the derived parameters.  `dvt`
  // is the per-device threshold perturbation used by mismatch studies.
  void load_device(std::size_t i, const tech::MosParams& p,
                   const Geometry& g, double dvt = 0.0);

  Region region_at(std::size_t i) const {
    return static_cast<Region>(region[i]);
  }
};

// Evaluates every slot of `b`, writing the output arrays.  Branch-free in
// the region logic (mask-selects over per-region expressions); outputs are
// bit-for-bit identical to scalar evaluate_core per slot.
void evaluate_core_batch(CoreEvalBatch* b);

}  // namespace oasys::mos
