#include "mos/level1.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace oasys::mos {

const char* to_string(MosType t) {
  return t == MosType::kNmos ? "nmos" : "pmos";
}

void validate_geometry(const Geometry& g) {
  if (!std::isfinite(g.w) || g.w <= 0.0) {
    throw std::invalid_argument("mos geometry: w must be finite and > 0, got " +
                                std::to_string(g.w));
  }
  if (!std::isfinite(g.l) || g.l <= 0.0) {
    throw std::invalid_argument("mos geometry: l must be finite and > 0, got " +
                                std::to_string(g.l));
  }
  if (g.m < 1) {
    throw std::invalid_argument("mos geometry: m must be >= 1, got " +
                                std::to_string(g.m));
  }
}

double Geometry::wl_ratio() const {
  validate_geometry(*this);
  return (w / l) * m;
}

const char* to_string(Region r) {
  switch (r) {
    case Region::kCutoff:
      return "cutoff";
    case Region::kTriode:
      return "triode";
    case Region::kSaturation:
      return "saturation";
  }
  return "unknown";
}

double threshold(const tech::MosParams& p, double vsb) {
  // Clamp forward body bias so the sqrt stays real; the derivative is frozen
  // past the clamp, which keeps Newton iterations stable.
  const double kMinArg = 0.01;  // V
  const double arg = std::max(p.phi + vsb, kMinArg);
  return p.vt0 + p.gamma * (std::sqrt(arg) - std::sqrt(p.phi));
}

CoreEval evaluate_core(const tech::MosParams& p, const Geometry& g,
                       const CoreBias& bias) {
  CoreEval e;
  const double vsb = -bias.vbs;
  e.vth = threshold(p, vsb);
  e.vov = bias.vgs - e.vth;
  e.vdsat = std::max(e.vov, 0.0);

  const double beta = p.kp * g.wl_ratio();
  const double lambda = p.lambda_at(g.l);
  const double vds = bias.vds;

  if (e.vov <= 0.0 || beta <= 0.0) {
    e.region = Region::kCutoff;
    return e;
  }

  // dVth/dVbs = -gamma / (2 sqrt(phi + vsb)); gmb = -dId/dVth * dVth/dVbs.
  const double kMinArg = 0.01;
  const double sqrt_arg = std::sqrt(std::max(p.phi + vsb, kMinArg));
  const double body_factor =
      (p.phi + vsb > kMinArg) ? p.gamma / (2.0 * sqrt_arg) : 0.0;

  const double clm = 1.0 + lambda * vds;
  if (vds >= e.vov) {
    e.region = Region::kSaturation;
    e.id = 0.5 * beta * e.vov * e.vov * clm;
    e.gm = beta * e.vov * clm;
    e.gds = 0.5 * beta * e.vov * e.vov * lambda;
    e.gmb = e.gm * body_factor;
  } else {
    e.region = Region::kTriode;
    // The (1 + lambda*vds) factor is kept in triode so current and gds are
    // continuous across the triode/saturation boundary.
    const double core = (e.vov - 0.5 * vds) * vds;
    e.id = beta * core * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * ((e.vov - vds) * clm + core * lambda);
    e.gmb = e.gm * body_factor;
  }
  return e;
}

GateCaps gate_caps(const tech::MosParams& p, double cox, const Geometry& g,
                   Region region) {
  GateCaps c;
  const double w_total = g.w * g.m;
  const double cox_total = cox * w_total * g.l;
  const double cgso = p.cgso * w_total;
  const double cgdo = p.cgdo * w_total;
  switch (region) {
    case Region::kCutoff:
      c.cgs = cgso;
      c.cgd = cgdo;
      c.cgb = cox_total;
      break;
    case Region::kSaturation:
      c.cgs = (2.0 / 3.0) * cox_total + cgso;
      c.cgd = cgdo;
      c.cgb = 0.0;
      break;
    case Region::kTriode:
      c.cgs = 0.5 * cox_total + cgso;
      c.cgd = 0.5 * cox_total + cgdo;
      c.cgb = 0.0;
      break;
  }
  return c;
}

double junction_cap(const tech::MosParams& p, double area, double perim,
                    double vrev) {
  // Reverse bias increases depletion width and reduces capacitance.
  // Forward bias (vrev < 0) is clamped at half the built-in voltage, the
  // usual SPICE-style guard against the singularity at vrev = -pb.
  const double v = std::max(vrev, -0.5 * p.pb);
  const double denom_area = std::pow(1.0 + v / p.pb, p.mj);
  const double denom_sw = std::pow(1.0 + v / p.pb, p.mjsw);
  return p.cj * area / denom_area + p.cjsw * perim / denom_sw;
}

TerminalEval evaluate_terminal(const tech::MosParams& p, MosType type,
                               const Geometry& g, double vg, double vd,
                               double vs, double vb) {
  // Map to the NMOS-like frame: PMOS flips all voltages.
  const double sign = (type == MosType::kNmos) ? 1.0 : -1.0;
  double cvg = sign * vg;
  double cvd = sign * vd;
  double cvs = sign * vs;
  const double cvb = sign * vb;

  TerminalEval out;
  // The Level-1 channel is symmetric: if vds < 0 exchange drain and source.
  if (cvd < cvs) {
    std::swap(cvd, cvs);
    out.swapped = true;
  }

  CoreBias bias;
  bias.vgs = cvg - cvs;
  bias.vds = cvd - cvs;
  bias.vbs = cvb - cvs;
  const CoreEval core = evaluate_core(p, g, bias);

  out.region = core.region;
  out.vth = core.vth;
  out.vov = core.vov;
  out.vdsat = core.vdsat;
  out.gm = core.gm;
  out.gds = core.gds;
  out.gmb = core.gmb;

  // Current in the NMOS-like frame flows from the (possibly swapped) drain
  // to source.  Undo the swap, then undo the PMOS sign flip.
  double id = core.id;
  double di_dvg = core.gm;
  double di_dvd = core.gds;
  double di_dvs = -(core.gm + core.gds + core.gmb);
  double di_dvb = core.gmb;
  if (out.swapped) {
    id = -id;
    // Terminal roles exchanged: derivative wrt the *original* drain is the
    // core's source derivative, and the current sign flips.
    const double orig_dvd = -di_dvs;
    const double orig_dvs = -di_dvd;
    di_dvd = orig_dvd;
    di_dvs = orig_dvs;
    di_dvg = -di_dvg;
    di_dvb = -di_dvb;
  }
  // PMOS: node voltages were negated, so d/dv_node gains a sign; the current
  // direction in node terms also flips.
  out.id_ds = sign * id;
  out.di_dvg = di_dvg;   // sign * d(id)/d(cvg) * d(cvg)/d(vg) = sign*di*sign
  out.di_dvd = di_dvd;
  out.di_dvs = di_dvs;
  out.di_dvb = di_dvb;
  return out;
}

}  // namespace oasys::mos
