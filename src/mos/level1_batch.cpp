#include "mos/level1_batch.h"

#include <cmath>
#include <cstddef>

#include "tech/technology.h"

namespace oasys::mos {

void CoreEvalBatch::resize(std::size_t n) {
  vgs.resize(n);
  vds.resize(n);
  vbs.resize(n);
  w.resize(n);
  l.resize(n);
  m.resize(n);
  kp.resize(n);
  vt0.resize(n);
  gamma.resize(n);
  phi.resize(n);
  sqrt_phi.resize(n);
  lambda.resize(n);
  id.resize(n);
  gm.resize(n);
  gds.resize(n);
  gmb.resize(n);
  vth.resize(n);
  vov.resize(n);
  vdsat.resize(n);
  region.resize(n);
}

void CoreEvalBatch::load_device(std::size_t i, const tech::MosParams& p,
                                const Geometry& g, double dvt) {
  validate_geometry(g);
  w[i] = g.w;
  l[i] = g.l;
  m[i] = static_cast<double>(g.m);
  kp[i] = p.kp;
  vt0[i] = p.vt0 + dvt;
  gamma[i] = p.gamma;
  phi[i] = p.phi;
  sqrt_phi[i] = std::sqrt(p.phi);
  lambda[i] = p.lambda_at(g.l);
}

// One flat pass over every slot.  Each line mirrors the corresponding
// expression of scalar `evaluate_core` exactly (operand order included):
// both region results are computed unconditionally — the arithmetic is
// total, there is no division and the sqrt argument is clamped — and
// ternary selects pick the stored result, so the loop body is branchless
// and auto-vectorizable while staying bit-for-bit equal to the scalar
// reference per slot.
void evaluate_core_batch(CoreEvalBatch* b) {
  const std::size_t n = b->size();
  const double* __restrict vgs = b->vgs.data();
  const double* __restrict vds_a = b->vds.data();
  const double* __restrict vbs = b->vbs.data();
  const double* __restrict w = b->w.data();
  const double* __restrict l = b->l.data();
  const double* __restrict m = b->m.data();
  const double* __restrict kp = b->kp.data();
  const double* __restrict vt0 = b->vt0.data();
  const double* __restrict gamma = b->gamma.data();
  const double* __restrict phi = b->phi.data();
  const double* __restrict sqrt_phi = b->sqrt_phi.data();
  const double* __restrict lambda_a = b->lambda.data();
  double* __restrict out_id = b->id.data();
  double* __restrict out_gm = b->gm.data();
  double* __restrict out_gds = b->gds.data();
  double* __restrict out_gmb = b->gmb.data();
  double* __restrict out_vth = b->vth.data();
  double* __restrict out_vov = b->vov.data();
  double* __restrict out_vdsat = b->vdsat.data();
  std::uint8_t* __restrict out_region = b->region.data();

  constexpr double kMinArg = 0.01;  // V, same clamp as threshold()
  for (std::size_t i = 0; i < n; ++i) {
    const double vsb = -vbs[i];
    // threshold(): arg = std::max(phi + vsb, kMinArg), i.e. (a < b) ? b : a
    // — that operand order preserves the sign of zero exactly as std::max.
    const double phi_vsb = phi[i] + vsb;
    const double arg = (phi_vsb < kMinArg) ? kMinArg : phi_vsb;
    const double sqrt_arg = std::sqrt(arg);
    const double vth = vt0[i] + gamma[i] * (sqrt_arg - sqrt_phi[i]);
    const double vov = vgs[i] - vth;
    // std::max(vov, 0.0) with std::max's operand order.
    const double vdsat = (vov < 0.0) ? 0.0 : vov;

    const double beta = kp[i] * ((w[i] / l[i]) * m[i]);
    const double lambda = lambda_a[i];
    const double vds = vds_a[i];

    const double body_factor =
        (phi_vsb > kMinArg) ? gamma[i] / (2.0 * sqrt_arg) : 0.0;
    const double clm = 1.0 + lambda * vds;

    // Saturation-region results.
    const double id_sat = 0.5 * beta * vov * vov * clm;
    const double gm_sat = beta * vov * clm;
    const double gds_sat = 0.5 * beta * vov * vov * lambda;

    // Triode-region results.
    const double core = (vov - 0.5 * vds) * vds;
    const double id_tri = beta * core * clm;
    const double gm_tri = beta * vds * clm;
    const double gds_tri = beta * ((vov - vds) * clm + core * lambda);

    const bool off = (vov <= 0.0) || (beta <= 0.0);
    const bool sat = vds >= vov;

    const double id_on = sat ? id_sat : id_tri;
    const double gm_on = sat ? gm_sat : gm_tri;
    const double gds_on = sat ? gds_sat : gds_tri;
    const double gmb_on = gm_on * body_factor;

    out_vth[i] = vth;
    out_vov[i] = vov;
    out_vdsat[i] = vdsat;
    out_id[i] = off ? 0.0 : id_on;
    out_gm[i] = off ? 0.0 : gm_on;
    out_gds[i] = off ? 0.0 : gds_on;
    out_gmb[i] = off ? 0.0 : gmb_on;
    out_region[i] =
        off ? static_cast<std::uint8_t>(Region::kCutoff)
            : (sat ? static_cast<std::uint8_t>(Region::kSaturation)
                   : static_cast<std::uint8_t>(Region::kTriode));
  }
}

}  // namespace oasys::mos
