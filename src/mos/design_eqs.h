// First-order design equations for square-law MOS devices.
//
// These are the "simple algebraic descriptions of the relationships among
// circuit components" the paper stores with each topology template (Sec.
// 3.3).  Plan steps call them to turn performance targets (gm, current,
// overdrive, output resistance) into device sizes, and to predict the
// performance of a candidate sizing.  They deliberately match the Level-1
// simulator model at lambda*Vds << 1, so a design that satisfies them also
// verifies in simulation to first order.
#pragma once

#include "mos/level1.h"
#include "tech/technology.h"

namespace oasys::mos {

// --- square-law relations (saturation region) ----------------------------

// Id = 0.5 * kp * (W/L) * Vov^2  =>  W/L for a target current and overdrive.
double wl_for_current(double kp, double id, double vov);

// gm = sqrt(2 * kp * (W/L) * Id)  =>  W/L for a target gm at a current.
double wl_for_gm(double kp, double gm, double id);

// Overdrive implied by a current and W/L.
double vov_from_current(double kp, double id, double wl);

// gm of a device carrying `id` at overdrive `vov` (gm = 2 Id / Vov).
double gm_from_id_vov(double id, double vov);

// Current needed for a target gm at overdrive vov (Id = gm*Vov/2).
double id_for_gm_vov(double gm, double vov);

// Small-signal output resistance 1 / (lambda * Id).
double rout_sat(double lambda, double id);

// --- geometry helpers -----------------------------------------------------

// Width for a target current at given length and overdrive, clamped to the
// process minimum width.  Returns the clamped width; *clamped is set when
// the raw width fell below wmin (a plan-patch trigger).
double width_for_current(const tech::Technology& t, const tech::MosParams& p,
                         double l, double id, double vov,
                         bool* clamped = nullptr);

// Channel length needed for a per-device lambda target:
// lambda(L) = lambda_l / L  =>  L = lambda_l / lambda, clamped to lmin.
double length_for_lambda(const tech::Technology& t, const tech::MosParams& p,
                         double lambda_target);

// --- bias-point predictions used by translation plans ---------------------

// VGS = VT(vsb) + Vov for a device in saturation (NMOS-like frame).
double vgs_for(const tech::MosParams& p, double vov, double vsb = 0.0);

// Gate-source capacitance of a saturated device (2/3 Cox W L + overlap).
double cgs_sat(const tech::Technology& t, const tech::MosParams& p,
               const Geometry& g);

// Drain junction capacitance at a nominal reverse bias.
double cdb_at(const tech::Technology& t, const tech::MosParams& p, double w,
              double vrev);

// --- composite small-signal quantities ------------------------------------

// Output resistance looking into a cascode (common-gate on top of a
// common-source): ro_casc ~ gm_top * ro_top * ro_bottom.
double rout_cascode(double gm_top, double ro_top, double ro_bottom);

// Parallel resistance.
double parallel(double r1, double r2);

}  // namespace oasys::mos
