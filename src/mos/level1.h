// MOS Level-1 (Shichman-Hodges) device model.
//
// This is the device model of the paper's era: square-law drain current with
// channel-length modulation and body effect, Meyer gate capacitances, and
// bias-dependent junction capacitances.  It is used both by the circuit
// simulator (large-signal current + small-signal conductances + charges) and
// as the ground truth that the synthesis design equations approximate.
//
// Convention: the core is written for NMOS with source-referenced voltages
// (vgs, vds, vbs).  PMOS is evaluated by flipping all voltage signs; drain
// current is reported in the device's own reference (positive Id flows
// drain -> source for a conducting NMOS; for PMOS the reported Id is
// negative in node terms — the simulator stamps the sign).
#pragma once

#include "tech/technology.h"

namespace oasys::mos {

enum class MosType { kNmos, kPmos };

const char* to_string(MosType t);

enum class Region { kCutoff, kTriode, kSaturation };

const char* to_string(Region r);

// Geometry of one device.  `m` is the multiplicity (parallel fingers).
struct Geometry {
  double w = 0.0;  // channel width [m]
  double l = 0.0;  // channel length [m]
  int m = 1;

  // W/L including multiplicity.  Invalid geometry is a modelling error, not
  // a zero-ratio device: throws std::invalid_argument (via
  // validate_geometry) instead of the old silent `return 0.0` for l <= 0,
  // which let a dead device propagate into the MNA stamp.
  double wl_ratio() const;
};

// Throws std::invalid_argument naming the offending field when the
// geometry is unusable: w <= 0, l <= 0, m < 1, or a non-finite dimension.
void validate_geometry(const Geometry& g);

// Source-referenced terminal voltages in the *NMOS-like* frame, i.e. for a
// PMOS these are already sign-flipped so that vgs > vt means "on".
struct CoreBias {
  double vgs = 0.0;
  double vds = 0.0;  // must be >= 0 (caller swaps D/S if needed)
  double vbs = 0.0;  // <= 0 for reverse body bias
};

// Large-signal + small-signal evaluation at one bias.
struct CoreEval {
  Region region = Region::kCutoff;
  double id = 0.0;    // drain current [A], >= 0
  double vth = 0.0;   // threshold with body effect [V]
  double vov = 0.0;   // overdrive vgs - vth [V]
  double vdsat = 0.0; // saturation voltage [V]
  double gm = 0.0;    // dId/dVgs [S]
  double gds = 0.0;   // dId/dVds [S]
  double gmb = 0.0;   // dId/dVbs [S]
};

// Evaluates the Level-1 core.  `bias.vds` must be >= 0.
CoreEval evaluate_core(const tech::MosParams& p, const Geometry& g,
                       const CoreBias& bias);

// Threshold voltage with body effect at source-body reverse bias vsb >= 0
// (in the NMOS-like frame).  Forward body bias is clamped.
double threshold(const tech::MosParams& p, double vsb);

// Meyer gate capacitances plus overlaps, by region [F].
struct GateCaps {
  double cgs = 0.0;
  double cgd = 0.0;
  double cgb = 0.0;
};
GateCaps gate_caps(const tech::MosParams& p, double cox, const Geometry& g,
                   Region region);

// Junction (diffusion) capacitance at reverse bias `vrev` >= 0 [F].
// `area` in m^2, `perim` in m.  Forward bias is clamped near pb.
double junction_cap(const tech::MosParams& p, double area, double perim,
                    double vrev);

// Full terminal-frame evaluation used by the simulator.
//
// Inputs are absolute node voltages.  Output current `id_ds` is the current
// flowing from the drain node into the source node through the channel
// (negative for a conducting PMOS).  Conductances are in the terminal frame:
//   d(id_ds)/d(vg), d(id_ds)/d(vd), d(id_ds)/d(vs), d(id_ds)/d(vb)
// which the MNA stamper uses directly.
struct TerminalEval {
  Region region = Region::kCutoff;
  bool swapped = false;  // true when vds < 0 and D/S were exchanged
  double id_ds = 0.0;
  double di_dvg = 0.0;
  double di_dvd = 0.0;
  double di_dvs = 0.0;
  double di_dvb = 0.0;
  // Diagnostics in the device frame:
  double vth = 0.0;
  double vov = 0.0;
  double vdsat = 0.0;
  double gm = 0.0;   // magnitude
  double gds = 0.0;  // magnitude
  double gmb = 0.0;  // magnitude
};

TerminalEval evaluate_terminal(const tech::MosParams& p, MosType type,
                               const Geometry& g, double vg, double vd,
                               double vs, double vb);

}  // namespace oasys::mos
