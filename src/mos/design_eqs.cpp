#include "mos/design_eqs.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oasys::mos {

namespace {
void require_positive(double v, const char* what) {
  if (!(v > 0.0)) {
    throw std::invalid_argument(std::string(what) + " must be positive");
  }
}
}  // namespace

double wl_for_current(double kp, double id, double vov) {
  require_positive(kp, "kp");
  require_positive(id, "id");
  require_positive(vov, "vov");
  return 2.0 * id / (kp * vov * vov);
}

double wl_for_gm(double kp, double gm, double id) {
  require_positive(kp, "kp");
  require_positive(gm, "gm");
  require_positive(id, "id");
  return gm * gm / (2.0 * kp * id);
}

double vov_from_current(double kp, double id, double wl) {
  require_positive(kp, "kp");
  require_positive(id, "id");
  require_positive(wl, "wl");
  return std::sqrt(2.0 * id / (kp * wl));
}

double gm_from_id_vov(double id, double vov) {
  require_positive(vov, "vov");
  return 2.0 * id / vov;
}

double id_for_gm_vov(double gm, double vov) { return 0.5 * gm * vov; }

double rout_sat(double lambda, double id) {
  require_positive(lambda, "lambda");
  require_positive(id, "id");
  return 1.0 / (lambda * id);
}

double width_for_current(const tech::Technology& t, const tech::MosParams& p,
                         double l, double id, double vov, bool* clamped) {
  require_positive(l, "l");
  const double wl = wl_for_current(p.kp, id, vov);
  const double w = wl * l;
  if (clamped != nullptr) *clamped = w < t.wmin;
  return std::max(w, t.wmin);
}

double length_for_lambda(const tech::Technology& t, const tech::MosParams& p,
                         double lambda_target) {
  require_positive(lambda_target, "lambda_target");
  if (p.lambda_l <= 0.0) return t.lmin;
  return std::max(p.lambda_l / lambda_target, t.lmin);
}

double vgs_for(const tech::MosParams& p, double vov, double vsb) {
  return threshold(p, std::max(vsb, 0.0)) + vov;
}

double cgs_sat(const tech::Technology& t, const tech::MosParams& p,
               const Geometry& g) {
  return gate_caps(p, t.cox, g, Region::kSaturation).cgs;
}

double cdb_at(const tech::Technology& t, const tech::MosParams& p, double w,
              double vrev) {
  return junction_cap(p, t.diffusion_area(w), t.diffusion_perimeter(w),
                      std::max(vrev, 0.0));
}

double rout_cascode(double gm_top, double ro_top, double ro_bottom) {
  require_positive(ro_top, "ro_top");
  require_positive(ro_bottom, "ro_bottom");
  return ro_top + ro_bottom + gm_top * ro_top * ro_bottom;
}

double parallel(double r1, double r2) {
  require_positive(r1, "r1");
  require_positive(r2, "r2");
  return r1 * r2 / (r1 + r2);
}

}  // namespace oasys::mos
