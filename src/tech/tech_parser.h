// Technology-file reader and writer.
//
// The file format is line-oriented, mirroring the paper's Table 1.  Units in
// the file are the designer-facing ones from the paper; they are converted
// to SI on load.  Example:
//
//   # 5 micron CMOS, dual 5 V supplies
//   [process]
//   name        cmos5
//   vdd_v       5.0
//   vss_v      -5.0
//   lmin_um     5.0
//   wmin_um     5.0          # Table 1 item 3: process min width
//   drain_ext_um 7.0         # Table 1 item 5: min drain width
//   tox_a       850          # Table 1 item 7: oxide thickness, Angstrom
//   cox_ff_um2  0.406        # Table 1 item 9
//
//   [nmos]
//   vt0_v        0.8         # Table 1 item 1
//   kp_ua_v2    24.0         # Table 1 item 2: K'
//   gamma_sqrt_v 0.8
//   phi_v        0.6
//   lambda_l_um_v 0.10       # Table 1 item 14: lambda(L) = lambda_l / L
//   cgdo_ff_um   0.25        # Table 1 item 10
//   cgso_ff_um   0.25
//   cj_ff_um2    0.10        # Table 1 item 13
//   cjsw_ff_um   0.50        # Table 1 item 12
//   pb_v         0.70        # Table 1 item 4: built-in voltage
//   mj           0.5
//   mjsw         0.33
//   mobility_cm2_vs 600      # Table 1 item 8
//
//   [pmos]
//   ... same keys ...
#pragma once

#include <string>
#include <string_view>

#include "tech/technology.h"
#include "util/diagnostics.h"

namespace oasys::tech {

struct ParseResult {
  Technology technology;
  util::DiagnosticLog log;  // parse errors/warnings; check has_errors()
  bool ok() const { return !log.has_errors(); }
};

// Parses technology text (the file content, not a path).
ParseResult parse_tech(std::string_view text);

// Reads and parses a technology file from disk.  I/O failure is reported as
// an error diagnostic, not an exception.
ParseResult load_tech_file(const std::string& path);

// Serializes a Technology back to file text (round-trips through
// parse_tech).  Values are emitted in the file's designer-facing units.
std::string to_tech_text(const Technology& t);

}  // namespace oasys::tech
