// Built-in technologies.
//
// The paper evaluates OASYS against "a proprietary industrial 5 um CMOS
// process"; since those parameters are not published, `five_micron()` is a
// representative mid-1980s 5 um CMOS parameter set assembled from textbook
// values of that era (Allen & Holberg / Gray & Meyer ranges).  It exercises
// exactly the same Table-1 inputs and design trade-offs.  `three_micron()`
// is a scaled variant used by the process-migration example.
#pragma once

#include "tech/technology.h"

namespace oasys::tech {

// Representative 5 um CMOS, dual +/-5 V supplies.
Technology five_micron();

// Representative 3 um CMOS, dual +/-5 V supplies.
Technology three_micron();

// Process corners.  The paper stresses how strongly analog design depends
// on process parameters (Sec. 2.1); corner derating lets a synthesized
// design be re-verified against the spread a real fab would deliver:
// slow = weak transconductance + high thresholds, fast = the opposite.
enum class Corner { kTypical, kSlow, kFast };

const char* to_string(Corner c);

// Returns a copy of `t` with K' and VT0 derated for the corner
// (+/-15% K', +/-10% VT0) and the name suffixed ("-ss"/"-ff").
Technology at_corner(const Technology& t, Corner corner);

}  // namespace oasys::tech
