#include "tech/tech_parser.h"

#include <fstream>
#include <map>
#include <sstream>

#include "util/text.h"
#include "util/units.h"

namespace oasys::tech {

namespace {

using util::ff;
using util::format;
using util::um;

// A key in the tech file: where it lands in the Technology struct and the
// scale factor from file units to SI.
struct FieldSpec {
  double MosParams::* mos_field = nullptr;
  double Technology::* proc_field = nullptr;
  double scale = 1.0;
};

const std::map<std::string, FieldSpec>& process_fields() {
  static const std::map<std::string, FieldSpec> kFields = {
      {"vdd_v", {nullptr, &Technology::vdd, 1.0}},
      {"vss_v", {nullptr, &Technology::vss, 1.0}},
      {"lmin_um", {nullptr, &Technology::lmin, util::kMicro}},
      {"wmin_um", {nullptr, &Technology::wmin, util::kMicro}},
      {"drain_ext_um", {nullptr, &Technology::drain_ext, util::kMicro}},
      {"tox_a", {nullptr, &Technology::tox, 1e-10}},
      {"cox_ff_um2",
       {nullptr, &Technology::cox, util::kFemto / (util::kMicro * util::kMicro)}},
  };
  return kFields;
}

const std::map<std::string, FieldSpec>& mos_fields() {
  static const std::map<std::string, FieldSpec> kFields = {
      {"vt0_v", {&MosParams::vt0, nullptr, 1.0}},
      {"kp_ua_v2", {&MosParams::kp, nullptr, util::kMicro}},
      {"gamma_sqrt_v", {&MosParams::gamma, nullptr, 1.0}},
      {"phi_v", {&MosParams::phi, nullptr, 1.0}},
      {"lambda_l_um_v", {&MosParams::lambda_l, nullptr, util::kMicro}},
      {"cgdo_ff_um", {&MosParams::cgdo, nullptr, util::kFemto / util::kMicro}},
      {"cgso_ff_um", {&MosParams::cgso, nullptr, util::kFemto / util::kMicro}},
      {"cj_ff_um2",
       {&MosParams::cj, nullptr, util::kFemto / (util::kMicro * util::kMicro)}},
      {"cjsw_ff_um", {&MosParams::cjsw, nullptr, util::kFemto / util::kMicro}},
      {"pb_v", {&MosParams::pb, nullptr, 1.0}},
      {"mj", {&MosParams::mj, nullptr, 1.0}},
      {"mjsw", {&MosParams::mjsw, nullptr, 1.0}},
      {"mobility_cm2_vs", {&MosParams::mobility, nullptr, 1e-4}},
      {"kf", {&MosParams::kf, nullptr, 1.0}},
      {"af", {&MosParams::af, nullptr, 1.0}},
      // sigma(VT) = avt / sqrt(W*L); file unit mV*um -> V*m.
      {"avt_mv_um", {&MosParams::avt, nullptr, util::kMilli * util::kMicro}},
  };
  return kFields;
}

}  // namespace

ParseResult parse_tech(std::string_view text) {
  ParseResult result;
  Technology& t = result.technology;
  util::DiagnosticLog& log = result.log;

  enum class Section { kNone, kProcess, kNmos, kPmos };
  Section section = Section::kNone;

  int line_no = 0;
  for (const std::string& raw_line : util::split_lines(text)) {
    ++line_no;
    std::string line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;

    if (trimmed.front() == '[') {
      const std::string sec = util::to_lower(util::trim(
          trimmed.substr(1, trimmed.find(']') - 1)));
      if (sec == "process") section = Section::kProcess;
      else if (sec == "nmos") section = Section::kNmos;
      else if (sec == "pmos") section = Section::kPmos;
      else {
        log.error("tech-parse",
                  format("line %d: unknown section [%s]", line_no,
                         sec.c_str()));
        section = Section::kNone;
      }
      continue;
    }

    const auto tokens = util::split(trimmed);
    if (tokens.size() != 2) {
      log.error("tech-parse",
                format("line %d: expected 'key value', got '%s'", line_no,
                       std::string(trimmed).c_str()));
      continue;
    }
    const std::string key = util::to_lower(tokens[0]);

    if (section == Section::kProcess && key == "name") {
      t.name = tokens[1];
      continue;
    }

    const auto value = util::parse_double(tokens[1]);
    if (!value) {
      log.error("tech-parse",
                format("line %d: cannot parse value '%s' for key '%s'",
                       line_no, tokens[1].c_str(), key.c_str()));
      continue;
    }

    switch (section) {
      case Section::kProcess: {
        const auto& fields = process_fields();
        const auto it = fields.find(key);
        if (it == fields.end()) {
          log.error("tech-parse",
                    format("line %d: unknown [process] key '%s'", line_no,
                           key.c_str()));
          break;
        }
        t.*(it->second.proc_field) = *value * it->second.scale;
        break;
      }
      case Section::kNmos:
      case Section::kPmos: {
        const auto& fields = mos_fields();
        const auto it = fields.find(key);
        if (it == fields.end()) {
          log.error("tech-parse",
                    format("line %d: unknown device key '%s'", line_no,
                           key.c_str()));
          break;
        }
        MosParams& p = (section == Section::kNmos) ? t.nmos : t.pmos;
        p.*(it->second.mos_field) = *value * it->second.scale;
        break;
      }
      case Section::kNone:
        log.error("tech-parse",
                  format("line %d: key '%s' outside any section", line_no,
                         key.c_str()));
        break;
    }
  }

  if (!log.has_errors()) {
    log.append(t.validate());
  }
  return result;
}

ParseResult load_tech_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult r;
    r.log.error("tech-io", format("cannot open technology file '%s'",
                                  path.c_str()));
    return r;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_tech(buf.str());
}

namespace {

void emit_mos(std::ostringstream& os, const MosParams& p) {
  os << format("vt0_v           %.6g\n", p.vt0);
  os << format("kp_ua_v2        %.6g\n", p.kp / util::kMicro);
  os << format("gamma_sqrt_v    %.6g\n", p.gamma);
  os << format("phi_v           %.6g\n", p.phi);
  os << format("lambda_l_um_v   %.6g\n", p.lambda_l / util::kMicro);
  os << format("cgdo_ff_um      %.6g\n", p.cgdo * util::kMicro / util::kFemto);
  os << format("cgso_ff_um      %.6g\n", p.cgso * util::kMicro / util::kFemto);
  os << format("cj_ff_um2       %.6g\n",
               p.cj * util::kMicro * util::kMicro / util::kFemto);
  os << format("cjsw_ff_um      %.6g\n", p.cjsw * util::kMicro / util::kFemto);
  os << format("pb_v            %.6g\n", p.pb);
  os << format("mj              %.6g\n", p.mj);
  os << format("mjsw            %.6g\n", p.mjsw);
  os << format("mobility_cm2_vs %.6g\n", p.mobility / 1e-4);
  os << format("kf              %.6g\n", p.kf);
  os << format("af              %.6g\n", p.af);
  os << format("avt_mv_um       %.6g\n",
               p.avt / (util::kMilli * util::kMicro));
}

}  // namespace

std::string to_tech_text(const Technology& t) {
  std::ostringstream os;
  os << "# OASYS technology file (see tech_parser.h for units)\n";
  os << "[process]\n";
  os << "name            " << (t.name.empty() ? "unnamed" : t.name) << "\n";
  os << format("vdd_v           %.6g\n", t.vdd);
  os << format("vss_v           %.6g\n", t.vss);
  os << format("lmin_um         %.6g\n", t.lmin / util::kMicro);
  os << format("wmin_um         %.6g\n", t.wmin / util::kMicro);
  os << format("drain_ext_um    %.6g\n", t.drain_ext / util::kMicro);
  os << format("tox_a           %.6g\n", t.tox / 1e-10);
  os << format("cox_ff_um2      %.6g\n",
               t.cox * util::kMicro * util::kMicro / util::kFemto);
  os << "\n[nmos]\n";
  emit_mos(os, t.nmos);
  os << "\n[pmos]\n";
  emit_mos(os, t.pmos);
  return os.str();
}

}  // namespace oasys::tech
