// Fabrication-process description consumed by OASYS.
//
// This is the paper's Table 1: threshold voltages, transconductance
// parameters, minimum widths, junction built-in voltage, supply, oxide
// thickness, mobility, oxide/overlap/junction capacitances, and the
// channel-length-modulation model lambda(L).  OASYS reads these from a
// technology file (see tech_parser.h) so the tool "keeps pace with the
// rapid evolution of process technology" without code changes.
//
// All fields are SI; the file format uses the designer-friendly units from
// the paper (um, Angstrom, fF/um^2, uA/V^2) and the parser converts.
#pragma once

#include <cstdint>
#include <string>

#include "util/diagnostics.h"

namespace oasys::tech {

// Per-device-type (NMOS or PMOS) process parameters.  Voltages are stored
// as magnitudes; the device model applies signs for PMOS.
struct MosParams {
  double vt0 = 0.0;      // zero-bias threshold voltage magnitude [V]
  double kp = 0.0;       // transconductance parameter mu*Cox [A/V^2]
  double gamma = 0.0;    // body-effect coefficient [sqrt(V)]
  double phi = 0.6;      // surface potential 2*phi_F [V]
  double lambda_l = 0.0; // channel-length modulation: lambda = lambda_l / L [m/V]
  double cgdo = 0.0;     // gate-drain overlap capacitance per width [F/m]
  double cgso = 0.0;     // gate-source overlap capacitance per width [F/m]
  double cj = 0.0;       // junction area capacitance at zero bias [F/m^2]
  double cjsw = 0.0;     // junction sidewall capacitance at zero bias [F/m]
  double pb = 0.7;       // junction built-in voltage [V]
  double mj = 0.5;       // area grading coefficient
  double mjsw = 0.33;    // sidewall grading coefficient
  double mobility = 0.0; // carrier mobility [m^2/(V*s)] (informational)
  // Flicker-noise coefficients (SPICE convention):
  //   Sid_flicker = kf * Id^af / (Cox * Leff^2 * f)   [A^2/Hz]
  double kf = 0.0;
  double af = 1.0;
  // Threshold-mismatch area coefficient: sigma(VT) = avt / sqrt(W*L)
  // [V*m], the classic matching model for identically drawn devices.
  double avt = 0.0;

  // One-sigma threshold mismatch for a device of width w, length l [V].
  double sigma_vt(double w, double l) const;

  // lambda(L): longer channels modulate less.  The paper stores this as a
  // fitted function of L ("fe, fl for lambda = f(L)"); we use the standard
  // first-order 1/L fit.
  double lambda_at(double l_meters) const;
};

struct Technology {
  std::string name;

  double vdd = 0.0;        // positive supply [V]
  double vss = 0.0;        // negative supply [V]
  double lmin = 0.0;       // minimum channel length [m]
  double wmin = 0.0;       // minimum channel width [m]
  double drain_ext = 0.0;  // drain/source diffusion extent for parasitics [m]
  double tox = 0.0;        // gate-oxide thickness [m]
  double cox = 0.0;        // gate-oxide capacitance per area [F/m^2]

  MosParams nmos;
  MosParams pmos;

  double supply_span() const { return vdd - vss; }
  double mid_supply() const { return 0.5 * (vdd + vss); }

  // Drain/source diffusion area and perimeter for a device of width w,
  // used both for layout-area estimation and junction capacitances.
  double diffusion_area(double w) const { return w * drain_ext; }
  double diffusion_perimeter(double w) const {
    return 2.0 * (w + drain_ext);
  }

  // Active-area estimate for one device: gate area plus two diffusions.
  // This is the area model behind the paper's Figure 7 y-axis.
  double device_area(double w, double l) const {
    return w * l + 2.0 * diffusion_area(w);
  }

  // Area occupied by a capacitor built from gate oxide (the compensation
  // capacitor in the two-stage op amp; the paper includes it in area
  // estimates).
  double capacitor_area(double farads) const;

  // Sanity checks: positive supplies span, parameters in physical ranges.
  // Problems are reported as error diagnostics.
  util::DiagnosticLog validate() const;

  // Canonical fingerprint for cache keys (see util/fingerprint.h): covers
  // every model parameter of both device types, is independent of how the
  // struct was populated (file vs built-in), and is NaN/zero-sign safe.
  std::string canonical_string() const;
  std::uint64_t hash() const;
};

}  // namespace oasys::tech
