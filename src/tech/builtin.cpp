#include "tech/builtin.h"

#include "util/units.h"

namespace oasys::tech {

using util::ff;
using util::kFemto;
using util::kMicro;
using util::ua;
using util::um;

Technology five_micron() {
  Technology t;
  t.name = "cmos5";
  t.vdd = 5.0;
  t.vss = -5.0;
  t.lmin = um(5.0);
  t.wmin = um(5.0);
  t.drain_ext = um(7.0);
  t.tox = 850e-10;                                   // 850 Angstrom
  t.cox = 0.406 * kFemto / (kMicro * kMicro);        // eps_ox / tox

  // NMOS: mu_n ~ 600 cm^2/Vs -> K'n = mu_n * Cox ~ 24 uA/V^2.
  t.nmos.vt0 = 0.80;
  t.nmos.kp = ua(24.0);
  t.nmos.gamma = 0.40;
  t.nmos.phi = 0.60;
  t.nmos.lambda_l = um(0.175);  // lambda = 0.035 / V at L = 5 um
  t.nmos.cgdo = 0.25 * kFemto / kMicro;
  t.nmos.cgso = 0.25 * kFemto / kMicro;
  t.nmos.cj = 0.10 * kFemto / (kMicro * kMicro);
  t.nmos.cjsw = 0.50 * kFemto / kMicro;
  t.nmos.pb = 0.70;
  t.nmos.mj = 0.50;
  t.nmos.mjsw = 0.33;
  t.nmos.mobility = 600e-4;     // m^2/Vs
  t.nmos.kf = 2e-28;            // flicker corner ~ 100 kHz at 200 uS
  t.nmos.af = 1.0;
  t.nmos.avt = 30.0 * 1e-3 * kMicro;                      // 30 mV*um

  // PMOS: mu_p ~ 230 cm^2/Vs -> K'p ~ 9.3 uA/V^2.
  t.pmos.vt0 = 0.90;
  t.pmos.kp = ua(9.3);
  t.pmos.gamma = 0.40;
  t.pmos.phi = 0.60;
  t.pmos.lambda_l = um(0.225);  // lambda = 0.045 / V at L = 5 um
  t.pmos.cgdo = 0.25 * kFemto / kMicro;
  t.pmos.cgso = 0.25 * kFemto / kMicro;
  t.pmos.cj = 0.15 * kFemto / (kMicro * kMicro);
  t.pmos.cjsw = 0.60 * kFemto / kMicro;
  t.pmos.pb = 0.70;
  t.pmos.mj = 0.50;
  t.pmos.mjsw = 0.33;
  t.pmos.mobility = 230e-4;
  t.pmos.kf = 5e-29;            // buried-channel PMOS: quieter 1/f
  t.pmos.af = 1.0;
  t.pmos.avt = 35.0 * 1e-3 * kMicro;                      // 35 mV*um

  return t;
}

Technology three_micron() {
  Technology t = five_micron();
  t.name = "cmos3";
  t.lmin = um(3.0);
  t.wmin = um(3.0);
  t.drain_ext = um(4.5);
  t.tox = 500e-10;
  t.cox = 0.690 * kFemto / (kMicro * kMicro);

  t.nmos.vt0 = 0.75;
  t.nmos.kp = ua(40.0);
  t.nmos.gamma = 0.45;
  t.nmos.lambda_l = um(0.14);
  t.nmos.cgdo = 0.30 * kFemto / kMicro;
  t.nmos.cgso = 0.30 * kFemto / kMicro;

  t.pmos.vt0 = 0.85;
  t.pmos.kp = ua(15.0);
  t.pmos.gamma = 0.45;
  t.pmos.lambda_l = um(0.18);
  t.pmos.cgdo = 0.30 * kFemto / kMicro;
  t.pmos.cgso = 0.30 * kFemto / kMicro;

  return t;
}

const char* to_string(Corner c) {
  switch (c) {
    case Corner::kTypical:
      return "tt";
    case Corner::kSlow:
      return "ss";
    case Corner::kFast:
      return "ff";
  }
  return "??";
}

Technology at_corner(const Technology& t, Corner corner) {
  if (corner == Corner::kTypical) return t;
  Technology out = t;
  const double kp_scale = corner == Corner::kSlow ? 0.85 : 1.15;
  const double vt_scale = corner == Corner::kSlow ? 1.10 : 0.90;
  for (MosParams* p : {&out.nmos, &out.pmos}) {
    p->kp *= kp_scale;
    p->vt0 *= vt_scale;
  }
  out.name += corner == Corner::kSlow ? "-ss" : "-ff";
  return out;
}

}  // namespace oasys::tech
