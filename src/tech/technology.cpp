#include "tech/technology.h"

#include <cmath>

#include "util/fingerprint.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::tech {

double MosParams::lambda_at(double l_meters) const {
  if (l_meters <= 0.0) return 0.0;
  return lambda_l / l_meters;
}

double MosParams::sigma_vt(double w, double l) const {
  if (avt <= 0.0 || w <= 0.0 || l <= 0.0) return 0.0;
  return avt / std::sqrt(w * l);
}

double Technology::capacitor_area(double farads) const {
  if (cox <= 0.0) return 0.0;
  return farads / cox;
}

namespace {

void fingerprint_mos(util::Fingerprint& fp, const std::string& prefix,
                     const MosParams& p) {
  fp.field(prefix + ".vt0", p.vt0)
      .field(prefix + ".kp", p.kp)
      .field(prefix + ".gamma", p.gamma)
      .field(prefix + ".phi", p.phi)
      .field(prefix + ".lambda_l", p.lambda_l)
      .field(prefix + ".cgdo", p.cgdo)
      .field(prefix + ".cgso", p.cgso)
      .field(prefix + ".cj", p.cj)
      .field(prefix + ".cjsw", p.cjsw)
      .field(prefix + ".pb", p.pb)
      .field(prefix + ".mj", p.mj)
      .field(prefix + ".mjsw", p.mjsw)
      .field(prefix + ".mobility", p.mobility)
      .field(prefix + ".kf", p.kf)
      .field(prefix + ".af", p.af)
      .field(prefix + ".avt", p.avt);
}

}  // namespace

std::string Technology::canonical_string() const {
  util::Fingerprint fp;
  fp.field("name", name)
      .field("vdd", vdd)
      .field("vss", vss)
      .field("lmin", lmin)
      .field("wmin", wmin)
      .field("drain_ext", drain_ext)
      .field("tox", tox)
      .field("cox", cox);
  fingerprint_mos(fp, "nmos", nmos);
  fingerprint_mos(fp, "pmos", pmos);
  return fp.str();
}

std::uint64_t Technology::hash() const {
  return util::fnv1a64(canonical_string());
}

namespace {

void check_positive(util::DiagnosticLog& log, double v, const char* what) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    log.error("tech-invalid",
              util::format("%s must be positive and finite (got %g)", what, v));
  }
}

void check_mos(util::DiagnosticLog& log, const MosParams& p,
               const char* which) {
  check_positive(log, p.vt0, util::format("%s vt0", which).c_str());
  check_positive(log, p.kp, util::format("%s kp", which).c_str());
  check_positive(log, p.phi, util::format("%s phi", which).c_str());
  if (p.gamma < 0.0) {
    log.error("tech-invalid",
              util::format("%s gamma must be non-negative", which));
  }
  if (p.lambda_l < 0.0) {
    log.error("tech-invalid",
              util::format("%s lambda_l must be non-negative", which));
  }
  if (p.vt0 > 2.0) {
    log.warning("tech-suspicious",
                util::format("%s vt0 = %g V is unusually large", which,
                             p.vt0));
  }
}

}  // namespace

util::DiagnosticLog Technology::validate() const {
  util::DiagnosticLog log;
  if (!(vdd > vss)) {
    log.error("tech-invalid",
              util::format("vdd (%g) must exceed vss (%g)", vdd, vss));
  }
  check_positive(log, lmin, "lmin");
  check_positive(log, wmin, "wmin");
  check_positive(log, drain_ext, "drain_ext");
  check_positive(log, tox, "tox");
  check_positive(log, cox, "cox");
  check_mos(log, nmos, "nmos");
  check_mos(log, pmos, "pmos");

  // Consistency: Cox should match eps_ox / tox within a loose factor.
  if (tox > 0.0 && cox > 0.0) {
    const double cox_from_tox = util::kEpsSiO2 / tox;
    const double ratio = cox / cox_from_tox;
    if (ratio < 0.5 || ratio > 2.0) {
      log.warning("tech-suspicious",
                  util::format("cox (%g F/m^2) inconsistent with tox "
                               "(eps_ox/tox = %g F/m^2)",
                               cox, cox_from_tox));
    }
  }
  return log;
}

}  // namespace oasys::tech
