// Parallel work executor for synthesis and simulation sweeps.
//
// The synthesis workload is embarrassingly parallel at several levels —
// design styles per spec, specs per batch, frequency points per AC run,
// bias values per sweep, corners per robustness check — and every level
// shares one requirement: the numbers must not depend on the thread count.
// This module provides the substrate:
//
//  * ThreadPool      — fixed set of worker threads draining a task queue;
//  * parallel_for    — index-space loop over [0, n); bodies write their
//                      results into caller-owned slot `i`, so results land
//                      by index, never by completion order;
//  * parallel_invoke — a fixed set of heterogeneous tasks, same guarantee.
//
// Determinism guarantee: a body invoked for index i performs exactly the
// same arithmetic regardless of which thread runs it or how many threads
// exist, so `jobs = 1` and `jobs = N` produce bit-for-bit identical
// results.  `jobs = 1` (or a nested parallel region) runs inline on the
// calling thread in ascending index order — exactly the pre-executor
// serial code path.
//
// Exceptions thrown by a body are captured per index; after the loop the
// exception from the *lowest* throwing index is rethrown on the caller
// (again independent of scheduling).  Remaining indices still run.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace oasys::exec {

// Worker threads the hardware supports; always >= 1.
std::size_t hardware_jobs();

// Process-wide default parallelism, used whenever a `jobs` argument is 0.
// `set_default_jobs(0)` restores the hardware default; `set_default_jobs(1)`
// makes every parallel_* call run serially inline (the CLI's `--jobs 1`).
void set_default_jobs(std::size_t jobs);
std::size_t default_jobs();

// Resolves a user-facing jobs value: 0 -> default_jobs().
std::size_t resolve_jobs(std::size_t jobs);

// Fixed-size pool of worker threads draining a FIFO task queue.  Tasks must
// not block on other pool tasks; parallel_for handles nesting by running
// nested regions inline (see in_pool_worker).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const;
  // Enqueues a task; worker threads execute in FIFO order.
  void submit(std::function<void()> task);

  // Process-wide pool, created on first use with hardware_jobs() threads.
  // Never destroyed (workers detach at exit) so static-destruction order
  // cannot race a late parallel region.
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
};

// True when the calling thread is a ThreadPool worker.  parallel_for uses
// this to serialize nested parallel regions instead of deadlocking on pool
// capacity; callers may use it for diagnostics.
bool in_pool_worker();

// Runs body(0) .. body(n-1), distributing indices over up to `jobs`
// threads (0 = default_jobs()).  The caller participates, so `jobs = 1`
// never touches the pool.  Returns after every index has completed.
// Rethrows the exception of the lowest throwing index, if any.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t jobs = 0);

// Number of distinct lanes a parallel_for_lanes region with the same (n,
// jobs) arguments will use, called on the same thread: min(jobs, n), or 1
// when the region would run inline (nested region / jobs = 1).  Callers
// size per-lane scratch state (workspaces) with this before the loop.
std::size_t lane_count(std::size_t n, std::size_t jobs = 0);

// Lane-indexed parallel_for: body(i, lane) with lane < lane_count(n, jobs).
// All bodies on one lane run sequentially on a single thread, so `lane` can
// index caller-owned mutable scratch (e.g. a reused matrix) without
// synchronization or thread_local state.  The determinism guarantee is
// preserved as long as the body's *results* depend only on `i` — scratch
// reached through `lane` must be fully overwritten before use, never
// carried between indices.
void parallel_for_lanes(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t jobs = 0);

// Runs a fixed set of heterogeneous tasks with the same distribution,
// completion, and exception rules as parallel_for.
void parallel_invoke(std::vector<std::function<void()>> tasks,
                     std::size_t jobs = 0);

// Convenience: parallel_invoke over an argument pack of callables.
template <typename... Fns>
void invoke_all(std::size_t jobs, Fns&&... fns) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(sizeof...(fns));
  (tasks.emplace_back(std::forward<Fns>(fns)), ...);
  parallel_invoke(std::move(tasks), jobs);
}

}  // namespace oasys::exec
