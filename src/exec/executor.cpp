#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/span.h"

namespace oasys::exec {

namespace {

thread_local bool t_in_pool_worker = false;

std::atomic<std::size_t> g_default_jobs{0};  // 0 = hardware_jobs()

// Registry handles for the executor, resolved once per process.  Region and
// task counts depend only on the call structure, so they are deterministic;
// lane width and queue depth are scheduling artifacts and are not.
struct ExecMetrics {
  obs::Counter& regions = obs::Registry::global().counter("exec.regions");
  obs::Counter& tasks = obs::Registry::global().counter("exec.tasks");
  obs::Gauge& lanes = obs::Registry::global().gauge("exec.lanes_max");
  obs::Gauge& queue_depth =
      obs::Registry::global().gauge("exec.queue_depth_max");
  obs::Histogram& task_seconds =
      obs::Registry::global().duration_histogram("exec.task_seconds");

  static ExecMetrics& get() {
    static ExecMetrics m;
    return m;
  }
};

}  // namespace

std::size_t hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<std::size_t>(n) : 1;
}

void set_default_jobs(std::size_t jobs) {
  g_default_jobs.store(jobs, std::memory_order_relaxed);
}

std::size_t default_jobs() {
  const std::size_t j = g_default_jobs.load(std::memory_order_relaxed);
  return j > 0 ? j : hardware_jobs();
}

std::size_t resolve_jobs(std::size_t jobs) {
  return jobs > 0 ? jobs : default_jobs();
}

bool in_pool_worker() { return t_in_pool_worker; }

// ---- ThreadPool -------------------------------------------------------------

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  bool stop = false;
  std::vector<std::thread> workers;

  explicit Impl(std::size_t threads) {
    workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    t_in_pool_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return stop || !queue.empty(); });
        if (stop && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    for (auto& w : workers) w.join();
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(new Impl(std::max<std::size_t>(threads, 1))) {}

ThreadPool::~ThreadPool() {
  impl_->shutdown();
  delete impl_;
}

std::size_t ThreadPool::size() const { return impl_->workers.size(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(std::move(task));
    ExecMetrics::get().queue_depth.set_max(
        static_cast<double>(impl_->queue.size()));
  }
  impl_->cv.notify_one();
}

ThreadPool& ThreadPool::global() {
  // Leaked on purpose: worker threads must outlive every static destructor
  // that could still issue a parallel region.
  static ThreadPool* pool = new ThreadPool(hardware_jobs());
  return *pool;
}

// ---- parallel_for -----------------------------------------------------------

namespace {

// Shared state of one parallel_for region.  The caller and up to jobs-1
// pool helpers drain `next` cooperatively; `helpers_running` counts live
// helpers so the caller can wait for stragglers still inside `body`.
// Owned by shared_ptr: each helper task holds a reference, so the state
// (mutex and condition variable included) outlives every notify even if
// the caller's wait returns the instant the count hits zero.
struct ForState {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t n = 0;
  obs::Histogram* task_hist = nullptr;  // set when obs timing is enabled
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors;  // slot per index
  std::mutex mu;
  std::condition_variable cv;
  std::size_t helpers_running = 0;

  void drain(std::size_t lane) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        if (task_hist != nullptr) {
          const auto t0 = std::chrono::steady_clock::now();
          (*body)(i, lane);
          task_hist->observe(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
        } else {
          (*body)(i, lane);
        }
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  }
};

// Serial path with the same semantics as the parallel one: every index
// runs even if an earlier body throws, and the exception of the lowest
// throwing index (here simply the first) is rethrown afterwards.  The
// single inline lane is lane 0.
void run_serial(std::size_t n,
                const std::function<void(std::size_t, std::size_t)>& body,
                obs::Histogram* task_hist) {
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      if (task_hist != nullptr) {
        const auto t0 = std::chrono::steady_clock::now();
        body(i, 0);
        task_hist->observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
      } else {
        body(i, 0);
      }
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

std::size_t lane_count(std::size_t n, std::size_t jobs) {
  if (n == 0) return 0;
  if (in_pool_worker()) return 1;  // nested regions run inline
  return std::min(resolve_jobs(jobs), n);
}

void parallel_for_lanes(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t jobs) {
  if (n == 0) return;
  ExecMetrics& metrics = ExecMetrics::get();
  metrics.regions.add();
  metrics.tasks.add(n);
  // Per-task wall time is opt-in (obs::set_timing_enabled): two clock reads
  // per task are cheap but not free, and durations are never part of the
  // deterministic contract anyway.
  obs::Histogram* task_hist =
      obs::timing_enabled() ? &metrics.task_seconds : nullptr;
  const std::size_t effective = std::min(resolve_jobs(jobs), n);
  // Nested regions run inline: a pool worker waiting on further pool tasks
  // could deadlock once every worker does the same, and the serial path is
  // the determinism reference anyway.
  if (effective <= 1 || in_pool_worker()) {
    metrics.lanes.set_max(1.0);
    run_serial(n, body, task_hist);
    return;
  }
  metrics.lanes.set_max(static_cast<double>(effective));

  auto st = std::make_shared<ForState>();
  st->body = &body;
  st->n = n;
  st->task_hist = task_hist;
  st->errors.resize(n);
  const std::size_t helpers = effective - 1;  // caller is lane 0
  st->helpers_running = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    ThreadPool::global().submit([st, lane = h + 1] {
      st->drain(lane);
      // Notify under the lock: once helpers_running hits zero the caller
      // may stop waiting, and only the helpers' shared_ptr references keep
      // the state alive through the notification.
      std::lock_guard<std::mutex> lock(st->mu);
      --st->helpers_running;
      st->cv.notify_one();
    });
  }
  st->drain(0);
  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&st] { return st->helpers_running == 0; });
  }
  // Deterministic exception choice: lowest throwing index wins.
  for (std::size_t i = 0; i < n; ++i) {
    if (st->errors[i]) std::rethrow_exception(st->errors[i]);
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t jobs) {
  parallel_for_lanes(
      n, [&body](std::size_t i, std::size_t) { body(i); }, jobs);
}

void parallel_invoke(std::vector<std::function<void()>> tasks,
                     std::size_t jobs) {
  parallel_for(
      tasks.size(), [&tasks](std::size_t i) { tasks[i](); }, jobs);
}

}  // namespace oasys::exec
