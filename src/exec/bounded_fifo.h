// Bounded synchronized FIFO — the request-queue primitive of the service
// layer, kept in exec next to the executor that drains it.
//
// Deliberately non-blocking: try_push refuses when full and the *caller*
// decides the backpressure policy.  The synthesis service drains the queue
// inline (through exec::parallel_for) when it finds it full, so a bounded
// queue can never deadlock a single-threaded caller the way a blocking
// push with no independent consumer would.  Tracks the depth high-water
// mark for the service's observability surface.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace oasys::exec {

template <typename T>
class BoundedFifo {
 public:
  // Capacity 0 is clamped to 1: a queue that can hold nothing would turn
  // every push into a refusal loop.
  explicit BoundedFifo(std::size_t capacity)
      : capacity_(std::max<std::size_t>(capacity, 1)) {}

  std::size_t capacity() const { return capacity_; }

  // Enqueues at the back; false when the queue is at capacity.
  bool try_push(T value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    high_water_ = std::max(high_water_, items_.size());
    return true;
  }

  // Dequeues the front element; nullopt when empty.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> v(std::move(items_.front()));
    items_.pop_front();
    return v;
  }

  // Drains everything currently queued, in FIFO order.
  std::vector<T> pop_all() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<T> out(std::make_move_iterator(items_.begin()),
                       std::make_move_iterator(items_.end()));
    items_.clear();
    return out;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

  // Deepest the queue has ever been.
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
};

}  // namespace oasys::exec
