// Interpolation over sampled data series.
//
// The AC analysis produces (frequency, value) samples; the measurement layer
// interpolates these to extract crossings: unity-gain frequency, -3 dB
// bandwidth, phase at a given frequency, and the slew interval of a
// transient edge.
#pragma once

#include <optional>
#include <vector>

namespace oasys::num {

// Linear interpolation of y(x) on sorted xs; clamps outside the range.
// Throws std::invalid_argument if sizes differ or fewer than 1 point.
double interp_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys, double x);

// Like interp_linear but linear in log10(x); xs must be positive/sorted.
double interp_semilogx(const std::vector<double>& xs,
                       const std::vector<double>& ys, double x);

// First x (scanning left to right) where ys crosses `level`, linearly
// interpolated between samples; nullopt when no crossing exists.
std::optional<double> first_crossing(const std::vector<double>& xs,
                                     const std::vector<double>& ys,
                                     double level);

// Log-spaced points from `lo` to `hi` inclusive (lo, hi > 0, n >= 2).
std::vector<double> logspace(double lo, double hi, std::size_t n);

// Linearly spaced points from `lo` to `hi` inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace oasys::num
