// Scalar root finding and minimization.
//
// Used by the measurement layer (e.g. finding the input offset voltage that
// centers an op amp's output) and by design equations that have no closed
// form (e.g. solving for an overdrive voltage under a headroom constraint).
#pragma once

#include <functional>
#include <optional>
#include <utility>

namespace oasys::num {

struct RootOptions {
  double xtol = 1e-12;     // absolute tolerance on the root location
  double ftol = 0.0;       // |f| below this counts as converged
  int max_iterations = 200;
};

// Bisection on [lo, hi].  Requires f(lo) and f(hi) to have opposite signs
// (or one of them to be ~0); returns nullopt otherwise or on non-finite f.
std::optional<double> bisect(const std::function<double(double)>& f,
                             double lo, double hi,
                             const RootOptions& opts = {});

// Safeguarded Newton: Newton steps with numeric derivative, falling back to
// bisection when the step leaves [lo, hi] or the derivative vanishes.
std::optional<double> newton_bisect(const std::function<double(double)>& f,
                                    double lo, double hi,
                                    const RootOptions& opts = {});

// Expands [lo, hi] geometrically about its center until f changes sign or
// `max_expansions` is hit; returns the bracketing interval if found.
std::optional<std::pair<double, double>> bracket_root(
    const std::function<double(double)>& f, double lo, double hi,
    int max_expansions = 40);

// Golden-section minimization of a unimodal f on [lo, hi].
double golden_minimize(const std::function<double(double)>& f, double lo,
                       double hi, double xtol = 1e-9);

}  // namespace oasys::num
