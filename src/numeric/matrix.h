// Dense row-major matrix, templated over the element type.
//
// Circuit matrices in OASYS are small (tens of unknowns), so dense storage
// with partial-pivot LU is both simpler and faster than sparse machinery.
// Used with T = double (DC, transient) and T = std::complex<double> (AC).
#pragma once

#include <complex>
#include <stdexcept>
#include <vector>

namespace oasys::num {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  // Row pointer for the LU inner loops (bounds already validated).
  T* row(std::size_t r) { return data_.data() + r * cols_; }
  const T* row(std::size_t r) const { return data_.data() + r * cols_; }

  // Contiguous row-major storage (rows()*cols() elements), for kernels that
  // stream the whole matrix without per-element bounds checks.
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::vector<T> multiply(const std::vector<T>& x) const {
    if (x.size() != cols_) {
      throw std::invalid_argument("Matrix::multiply: size mismatch");
    }
    std::vector<T> y(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      const T* a = row(r);
      T acc{};
      for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
      y[r] = acc;
    }
    return y;
  }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("Matrix index out of range");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<std::complex<double>>;

}  // namespace oasys::num
