#include "numeric/rootfind.h"

#include <cmath>
#include <utility>

namespace oasys::num {

namespace {
bool finite(double x) { return std::isfinite(x); }
}  // namespace

std::optional<double> bisect(const std::function<double(double)>& f,
                             double lo, double hi, const RootOptions& opts) {
  if (!(lo <= hi)) std::swap(lo, hi);
  double flo = f(lo);
  double fhi = f(hi);
  if (!finite(flo) || !finite(fhi)) return std::nullopt;
  if (std::abs(flo) <= opts.ftol) return lo;
  if (std::abs(fhi) <= opts.ftol) return hi;
  if (flo * fhi > 0.0) return std::nullopt;
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (!finite(fmid)) return std::nullopt;
    if (std::abs(fmid) <= opts.ftol || (hi - lo) * 0.5 < opts.xtol) {
      return mid;
    }
    if (flo * fmid <= 0.0) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

std::optional<double> newton_bisect(const std::function<double(double)>& f,
                                    double lo, double hi,
                                    const RootOptions& opts) {
  if (!(lo <= hi)) std::swap(lo, hi);
  double flo = f(lo);
  double fhi = f(hi);
  if (!finite(flo) || !finite(fhi)) return std::nullopt;
  if (std::abs(flo) <= opts.ftol) return lo;
  if (std::abs(fhi) <= opts.ftol) return hi;
  if (flo * fhi > 0.0) return std::nullopt;

  double x = 0.5 * (lo + hi);
  double fx = f(x);
  for (int i = 0; i < opts.max_iterations; ++i) {
    if (!finite(fx)) return std::nullopt;
    if (std::abs(fx) <= opts.ftol || (hi - lo) < 2.0 * opts.xtol) return x;
    // Maintain the bracket.
    if (flo * fx <= 0.0) {
      hi = x;
      fhi = fx;
    } else {
      lo = x;
      flo = fx;
    }
    // Numeric derivative with a step scaled to the bracket.
    const double h = std::max(1e-9 * (hi - lo), 1e-14);
    const double fp = (f(x + h) - fx) / h;
    double next;
    if (finite(fp) && fp != 0.0) {
      next = x - fx / fp;
      if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    } else {
      next = 0.5 * (lo + hi);
    }
    x = next;
    fx = f(x);
  }
  return x;
}

std::optional<std::pair<double, double>> bracket_root(
    const std::function<double(double)>& f, double lo, double hi,
    int max_expansions) {
  if (!(lo <= hi)) std::swap(lo, hi);
  double flo = f(lo);
  double fhi = f(hi);
  for (int i = 0; i < max_expansions; ++i) {
    if (finite(flo) && finite(fhi) && flo * fhi <= 0.0) {
      return std::make_pair(lo, hi);
    }
    const double center = 0.5 * (lo + hi);
    const double half = std::max(0.75 * (hi - lo), 1e-12);
    lo = center - half * 2.0;
    hi = center + half * 2.0;
    flo = f(lo);
    fhi = f(hi);
  }
  return std::nullopt;
}

double golden_minimize(const std::function<double(double)>& f, double lo,
                       double hi, double xtol) {
  if (!(lo <= hi)) std::swap(lo, hi);
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while (b - a > xtol) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace oasys::num
