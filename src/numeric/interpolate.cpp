#include "numeric/interpolate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oasys::num {

namespace {

void validate(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("interpolation: xs/ys size mismatch");
  }
  if (xs.empty()) {
    throw std::invalid_argument("interpolation: empty series");
  }
}

}  // namespace

double interp_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys, double x) {
  validate(xs, ys);
  if (xs.size() == 1 || x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double span = xs[hi] - xs[lo];
  if (span == 0.0) return ys[lo];
  const double t = (x - xs[lo]) / span;
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

double interp_semilogx(const std::vector<double>& xs,
                       const std::vector<double>& ys, double x) {
  validate(xs, ys);
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0) {
      throw std::invalid_argument("interp_semilogx: xs must be positive");
    }
    lx[i] = std::log10(xs[i]);
  }
  if (x <= 0.0) return ys.front();
  return interp_linear(lx, ys, std::log10(x));
}

std::optional<double> first_crossing(const std::vector<double>& xs,
                                     const std::vector<double>& ys,
                                     double level) {
  validate(xs, ys);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double a = ys[i - 1] - level;
    const double b = ys[i] - level;
    if (a == 0.0) return xs[i - 1];
    if (a * b < 0.0) {
      const double t = a / (a - b);
      return xs[i - 1] + t * (xs[i] - xs[i - 1]);
    }
  }
  if (ys.back() == level) return xs.back();
  return std::nullopt;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  if (lo <= 0.0 || hi <= 0.0) {
    throw std::invalid_argument("logspace: bounds must be positive");
  }
  if (n < 2) throw std::invalid_argument("logspace: need n >= 2");
  std::vector<double> out(n);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = std::pow(10.0, llo + t * (lhi - llo));
  }
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n < 2) throw std::invalid_argument("linspace: need n >= 2");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = lo + t * (hi - lo);
  }
  return out;
}

}  // namespace oasys::num
