// Dense LU factorization with partial pivoting and linear solves.
//
// This is the single linear-algebra kernel behind every circuit analysis:
// Newton iterations (DC, transient) factor a real Jacobian; AC analysis
// factors a complex MNA matrix per frequency point.
#pragma once

#include <complex>
#include <stdexcept>
#include <vector>

#include "numeric/matrix.h"

namespace oasys::num {

// Thrown by every solve entry point (lu_solve on a singular factorization,
// one-shot solve on a singular matrix) so callers can catch one type
// regardless of which path they took.  Derives from std::runtime_error,
// which singular solves historically threw from solve().
class SingularMatrixError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Result of an in-place LU factorization (PA = LU).
template <typename T>
struct LuFactors {
  Matrix<T> lu;                // combined L (unit diagonal) and U
  std::vector<std::size_t> perm;  // row permutation
  bool singular = false;
  double min_pivot_magnitude = 0.0;  // smallest |pivot| encountered
};

// Factors `a`; never throws on singularity — callers must check .singular.
// (Singular circuit matrices are an expected runtime condition, e.g. a
// floating node, and are reported as analysis failures upstream.)
template <typename T>
LuFactors<T> lu_factor(Matrix<T> a);

// Solves LU x = Pb for x.  Throws SingularMatrixError if the factorization
// was singular and std::invalid_argument on rhs size mismatch.
template <typename T>
std::vector<T> lu_solve(const LuFactors<T>& f, const std::vector<T>& b);

// One-shot convenience: factor + solve.
// Throws SingularMatrixError if the matrix is singular.
template <typename T>
std::vector<T> solve(const Matrix<T>& a, const std::vector<T>& b);

// Max norm of a vector.
double max_abs(const std::vector<double>& v);
double max_abs(const std::vector<std::complex<double>>& v);

extern template LuFactors<double> lu_factor(Matrix<double>);
extern template LuFactors<std::complex<double>> lu_factor(
    Matrix<std::complex<double>>);
extern template std::vector<double> lu_solve(const LuFactors<double>&,
                                             const std::vector<double>&);
extern template std::vector<std::complex<double>> lu_solve(
    const LuFactors<std::complex<double>>&,
    const std::vector<std::complex<double>>&);
extern template std::vector<double> solve(const Matrix<double>&,
                                          const std::vector<double>&);
extern template std::vector<std::complex<double>> solve(
    const Matrix<std::complex<double>>&,
    const std::vector<std::complex<double>>&);

}  // namespace oasys::num
