// Dense LU factorization with partial pivoting and linear solves.
//
// This is the single linear-algebra kernel behind every circuit analysis:
// Newton iterations (DC, transient) factor a real Jacobian; AC analysis
// factors a complex MNA matrix per frequency point.
//
// Two API levels:
//  * in-place   — lu_factor_in_place / lu_solve_in_place reuse the caller's
//                 matrix storage, permutation vectors, and RHS buffer, so a
//                 hot loop (Newton iteration, per-frequency solve) performs
//                 zero heap allocations in steady state;
//  * by-value   — lu_factor / lu_solve / solve, thin wrappers over the
//                 in-place kernels for one-shot callers.  Both levels run
//                 the identical arithmetic, so results are bit-for-bit
//                 interchangeable.
#pragma once

#include <complex>
#include <stdexcept>
#include <vector>

#include "numeric/matrix.h"

namespace oasys::num {

// Thrown by every solve entry point (lu_solve on a singular factorization,
// one-shot solve on a singular matrix) so callers can catch one type
// regardless of which path they took.  Derives from std::runtime_error,
// which singular solves historically threw from solve().
class SingularMatrixError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Result of an in-place LU factorization (PA = LU).
template <typename T>
struct LuFactors {
  Matrix<T> lu;                   // combined L (unit diagonal) and U
  std::vector<std::size_t> perm;  // row permutation: row i reads b[perm[i]]
  // The same permutation as an in-order swap sequence (LAPACK ipiv style):
  // elimination step k exchanged rows k and pivots[k].  lu_solve_in_place
  // replays these swaps to permute the RHS without scratch storage.
  std::vector<std::size_t> pivots;
  bool singular = false;
  double min_pivot_magnitude = 0.0;  // smallest |pivot| encountered
};

// Factors the matrix held in `*a`, reusing `f`'s storage (matrix buffer and
// permutation vectors); allocation-free once `f` has been used for a system
// of the same size.  On return `f->lu` owns the factored storage and `*a`
// holds `f`'s previous (unspecified) buffer — refill it before the next
// call.  Never throws on singularity — callers must check f->singular.
// Throws std::invalid_argument if `*a` is not square.
template <typename T>
void lu_factor_in_place(Matrix<T>* a, LuFactors<T>* f);

// Solves LU x = Pb in place: `*b` holds the RHS on entry and the solution
// on return, with no allocation.  Throws SingularMatrixError if the
// factorization was singular and std::invalid_argument on size mismatch.
template <typename T>
void lu_solve_in_place(const LuFactors<T>& f, std::vector<T>* b);

// Factors `a`; never throws on singularity — callers must check .singular.
// (Singular circuit matrices are an expected runtime condition, e.g. a
// floating node, and are reported as analysis failures upstream.)
template <typename T>
LuFactors<T> lu_factor(Matrix<T> a);

// Solves LU x = Pb for x.  Throws SingularMatrixError if the factorization
// was singular and std::invalid_argument on rhs size mismatch.
template <typename T>
std::vector<T> lu_solve(const LuFactors<T>& f, const std::vector<T>& b);

// One-shot convenience: factor + solve.
// Throws SingularMatrixError if the matrix is singular.
template <typename T>
std::vector<T> solve(const Matrix<T>& a, const std::vector<T>& b);

// Max norm of a vector.
double max_abs(const std::vector<double>& v);
double max_abs(const std::vector<std::complex<double>>& v);

extern template void lu_factor_in_place(Matrix<double>*, LuFactors<double>*);
extern template void lu_factor_in_place(Matrix<std::complex<double>>*,
                                        LuFactors<std::complex<double>>*);
extern template void lu_solve_in_place(const LuFactors<double>&,
                                       std::vector<double>*);
extern template void lu_solve_in_place(
    const LuFactors<std::complex<double>>&,
    std::vector<std::complex<double>>*);
extern template LuFactors<double> lu_factor(Matrix<double>);
extern template LuFactors<std::complex<double>> lu_factor(
    Matrix<std::complex<double>>);
extern template std::vector<double> lu_solve(const LuFactors<double>&,
                                             const std::vector<double>&);
extern template std::vector<std::complex<double>> lu_solve(
    const LuFactors<std::complex<double>>&,
    const std::vector<std::complex<double>>&);
extern template std::vector<double> solve(const Matrix<double>&,
                                          const std::vector<double>&);
extern template std::vector<std::complex<double>> solve(
    const Matrix<std::complex<double>>&,
    const std::vector<std::complex<double>>&);

}  // namespace oasys::num
