#include "numeric/linear.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace oasys::num {

namespace {

double magnitude(double x) { return std::abs(x); }
double magnitude(const std::complex<double>& x) { return std::abs(x); }

}  // namespace

template <typename T>
void lu_factor_in_place(Matrix<T>* a, LuFactors<T>* f) {
  if (a->rows() != a->cols()) {
    throw std::invalid_argument("lu_factor: matrix must be square");
  }
  const std::size_t n = a->rows();
  // Adopt the caller's storage; `*a` gets the factorization's previous
  // buffer back (same size in steady state), ready for refilling.
  std::swap(f->lu, *a);
  Matrix<T>& lu = f->lu;
  f->perm.resize(n);
  f->pivots.resize(n);
  for (std::size_t i = 0; i < n; ++i) f->perm[i] = i;
  f->singular = false;
  f->min_pivot_magnitude =
      n > 0 ? std::numeric_limits<double>::infinity() : 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: pick the largest |a(i,k)| for i >= k.
    std::size_t pivot_row = k;
    double best = magnitude(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = magnitude(lu(i, k));
      if (m > best) {
        best = m;
        pivot_row = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      f->singular = true;
      f->min_pivot_magnitude = 0.0;
      for (std::size_t i = k; i < n; ++i) f->pivots[i] = i;
      return;
    }
    f->min_pivot_magnitude = std::min(f->min_pivot_magnitude, best);
    f->pivots[k] = pivot_row;
    if (pivot_row != k) {
      std::swap(f->perm[k], f->perm[pivot_row]);
      T* rk = lu.row(k);
      T* rp = lu.row(pivot_row);
      for (std::size_t c = 0; c < n; ++c) std::swap(rk[c], rp[c]);
    }
    const T pivot = lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      T* ri = lu.row(i);
      const T* rk = lu.row(k);
      const T factor = ri[k] / pivot;
      ri[k] = factor;  // store L entry in place
      if (factor != T{}) {
        for (std::size_t c = k + 1; c < n; ++c) ri[c] -= factor * rk[c];
      }
    }
  }
}

template <typename T>
void lu_solve_in_place(const LuFactors<T>& f, std::vector<T>* b) {
  if (f.singular) {
    throw SingularMatrixError("lu_solve: factorization is singular");
  }
  const std::size_t n = f.lu.rows();
  if (b->size() != n) {
    throw std::invalid_argument("lu_solve: rhs size mismatch");
  }
  T* x = b->data();
  // Replay the recorded row swaps: x <- Pb, no scratch needed.  After the
  // swaps, slot i holds b[perm[i]] — the same value the by-value solve
  // gathers — so both paths run identical arithmetic from here on.
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = f.pivots[k];
    if (p != k) std::swap(x[k], x[p]);
  }
  // Forward substitution in place (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    const T* ri = f.lu.row(i);
    T acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= ri[j] * x[j];
    x[i] = acc;
  }
  // Back substitution in place.
  for (std::size_t ii = n; ii-- > 0;) {
    const T* ri = f.lu.row(ii);
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= ri[j] * x[j];
    x[ii] = acc / ri[ii];
  }
}

template <typename T>
LuFactors<T> lu_factor(Matrix<T> a) {
  LuFactors<T> f;
  lu_factor_in_place(&a, &f);
  return f;
}

template <typename T>
std::vector<T> lu_solve(const LuFactors<T>& f, const std::vector<T>& b) {
  std::vector<T> x = b;
  lu_solve_in_place(f, &x);
  return x;
}

template <typename T>
std::vector<T> solve(const Matrix<T>& a, const std::vector<T>& b) {
  auto f = lu_factor(a);
  if (f.singular) {
    throw SingularMatrixError("solve: singular matrix");
  }
  return lu_solve(f, b);
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double max_abs(const std::vector<std::complex<double>>& v) {
  double m = 0.0;
  for (const auto& x : v) m = std::max(m, std::abs(x));
  return m;
}

template void lu_factor_in_place(Matrix<double>*, LuFactors<double>*);
template void lu_factor_in_place(Matrix<std::complex<double>>*,
                                 LuFactors<std::complex<double>>*);
template void lu_solve_in_place(const LuFactors<double>&,
                                std::vector<double>*);
template void lu_solve_in_place(const LuFactors<std::complex<double>>&,
                                std::vector<std::complex<double>>*);
template LuFactors<double> lu_factor(Matrix<double>);
template LuFactors<std::complex<double>> lu_factor(
    Matrix<std::complex<double>>);
template std::vector<double> lu_solve(const LuFactors<double>&,
                                      const std::vector<double>&);
template std::vector<std::complex<double>> lu_solve(
    const LuFactors<std::complex<double>>&,
    const std::vector<std::complex<double>>&);
template std::vector<double> solve(const Matrix<double>&,
                                   const std::vector<double>&);
template std::vector<std::complex<double>> solve(
    const Matrix<std::complex<double>>&,
    const std::vector<std::complex<double>>&);

}  // namespace oasys::num
