#include "numeric/linear.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace oasys::num {

namespace {

double magnitude(double x) { return std::abs(x); }
double magnitude(const std::complex<double>& x) { return std::abs(x); }

}  // namespace

template <typename T>
LuFactors<T> lu_factor(Matrix<T> a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("lu_factor: matrix must be square");
  }
  const std::size_t n = a.rows();
  LuFactors<T> f;
  f.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) f.perm[i] = i;
  f.min_pivot_magnitude = n > 0 ? std::numeric_limits<double>::infinity() : 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: pick the largest |a(i,k)| for i >= k.
    std::size_t pivot_row = k;
    double best = magnitude(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = magnitude(a(i, k));
      if (m > best) {
        best = m;
        pivot_row = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      f.singular = true;
      f.min_pivot_magnitude = 0.0;
      f.lu = std::move(a);
      return f;
    }
    f.min_pivot_magnitude = std::min(f.min_pivot_magnitude, best);
    if (pivot_row != k) {
      std::swap(f.perm[k], f.perm[pivot_row]);
      T* rk = a.row(k);
      T* rp = a.row(pivot_row);
      for (std::size_t c = 0; c < n; ++c) std::swap(rk[c], rp[c]);
    }
    const T pivot = a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      T* ri = a.row(i);
      const T* rk = a.row(k);
      const T factor = ri[k] / pivot;
      ri[k] = factor;  // store L entry in place
      if (factor != T{}) {
        for (std::size_t c = k + 1; c < n; ++c) ri[c] -= factor * rk[c];
      }
    }
  }
  f.lu = std::move(a);
  return f;
}

template <typename T>
std::vector<T> lu_solve(const LuFactors<T>& f, const std::vector<T>& b) {
  if (f.singular) {
    throw SingularMatrixError("lu_solve: factorization is singular");
  }
  const std::size_t n = f.lu.rows();
  if (b.size() != n) {
    throw std::invalid_argument("lu_solve: rhs size mismatch");
  }
  std::vector<T> x(n);
  // Forward substitution with permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    T acc = b[f.perm[i]];
    const T* ri = f.lu.row(i);
    for (std::size_t j = 0; j < i; ++j) acc -= ri[j] * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    const T* ri = f.lu.row(ii);
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= ri[j] * x[j];
    x[ii] = acc / ri[ii];
  }
  return x;
}

template <typename T>
std::vector<T> solve(const Matrix<T>& a, const std::vector<T>& b) {
  auto f = lu_factor(a);
  if (f.singular) {
    throw SingularMatrixError("solve: singular matrix");
  }
  return lu_solve(f, b);
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double max_abs(const std::vector<std::complex<double>>& v) {
  double m = 0.0;
  for (const auto& x : v) m = std::max(m, std::abs(x));
  return m;
}

template LuFactors<double> lu_factor(Matrix<double>);
template LuFactors<std::complex<double>> lu_factor(
    Matrix<std::complex<double>>);
template std::vector<double> lu_solve(const LuFactors<double>&,
                                      const std::vector<double>&);
template std::vector<std::complex<double>> lu_solve(
    const LuFactors<std::complex<double>>&,
    const std::vector<std::complex<double>>&);
template std::vector<double> solve(const Matrix<double>&,
                                   const std::vector<double>&);
template std::vector<std::complex<double>> solve(
    const Matrix<std::complex<double>>&,
    const std::vector<std::complex<double>>&);

}  // namespace oasys::num
