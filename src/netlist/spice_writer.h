// Serializes a Circuit to a Berkeley-SPICE-compatible deck.
//
// The paper verified OASYS output with SPICE; this writer lets a downstream
// user hand our synthesized schematics to any external SPICE for the same
// check.  MOS devices reference `.MODEL` cards generated from the
// Technology (Level-1 parameters).
#pragma once

#include <string>

#include "netlist/circuit.h"
#include "tech/technology.h"

namespace oasys::ckt {

struct SpiceWriterOptions {
  std::string title = "oasys synthesized circuit";
  bool include_op_card = true;  // append .OP and .END cards
};

// Renders the full deck: title, element lines, .MODEL cards, control cards.
std::string to_spice_deck(const Circuit& c, const tech::Technology& t,
                          const SpiceWriterOptions& opts = {});

// Just the .MODEL cards for the technology (model names "nmos1"/"pmos1").
std::string spice_model_cards(const tech::Technology& t);

}  // namespace oasys::ckt
