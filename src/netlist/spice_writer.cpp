#include "netlist/spice_writer.h"

#include <sstream>

#include "util/text.h"
#include "util/units.h"

namespace oasys::ckt {

namespace {

using util::eng;
using util::format;

std::string source_card(const std::string& prefix, const std::string& name,
                        const std::string& n1, const std::string& n2,
                        const Waveform& w) {
  std::ostringstream os;
  os << prefix << name << " " << n1 << " " << n2;
  os << " DC " << eng(w.dc_value());
  if (w.ac_mag() != 0.0) {
    os << " AC " << eng(w.ac_mag());
    if (w.ac_phase_deg() != 0.0) os << " " << eng(w.ac_phase_deg());
  }
  return os.str();
}

void emit_model(std::ostringstream& os, const char* name, const char* type,
                const tech::MosParams& p, const tech::Technology& t) {
  os << ".MODEL " << name << " " << type << " (LEVEL=1";
  os << format(" VTO=%s", eng(p.vt0).c_str());
  os << format(" KP=%s", eng(p.kp).c_str());
  os << format(" GAMMA=%s", eng(p.gamma).c_str());
  os << format(" PHI=%s", eng(p.phi).c_str());
  // SPICE Level-1 takes a single LAMBDA; emit the value at minimum length
  // and note the length dependence in a comment.
  os << format(" LAMBDA=%s", eng(p.lambda_at(t.lmin)).c_str());
  os << format(" TOX=%s", eng(t.tox).c_str());
  os << format(" CGDO=%s", eng(p.cgdo).c_str());
  os << format(" CGSO=%s", eng(p.cgso).c_str());
  os << format(" CJ=%s", eng(p.cj).c_str());
  os << format(" CJSW=%s", eng(p.cjsw).c_str());
  os << format(" PB=%s", eng(p.pb).c_str());
  os << format(" MJ=%s", eng(p.mj).c_str());
  os << format(" MJSW=%s", eng(p.mjsw).c_str());
  os << ")\n";
}

}  // namespace

std::string spice_model_cards(const tech::Technology& t) {
  std::ostringstream os;
  os << "* lambda is emitted at L=Lmin; OASYS internally uses lambda(L) = "
     << "lambda_l/L\n";
  emit_model(os, "nmos1", "NMOS", t.nmos, t);
  emit_model(os, "pmos1", "PMOS", t.pmos, t);
  return os.str();
}

std::string to_spice_deck(const Circuit& c, const tech::Technology& t,
                          const SpiceWriterOptions& opts) {
  std::ostringstream os;
  os << "* " << opts.title << "\n";
  os << "* technology: " << (t.name.empty() ? "unnamed" : t.name) << "\n";

  for (const auto& r : c.resistors()) {
    os << "R" << r.name << " " << c.node_name(r.a) << " " << c.node_name(r.b)
       << " " << eng(r.resistance) << "\n";
  }
  for (const auto& cap : c.capacitors()) {
    os << "C" << cap.name << " " << c.node_name(cap.a) << " "
       << c.node_name(cap.b) << " " << eng(cap.capacitance) << "\n";
  }
  for (const auto& v : c.vsources()) {
    os << source_card("V", v.name, c.node_name(v.pos), c.node_name(v.neg),
                      v.wave)
       << "\n";
  }
  for (const auto& i : c.isources()) {
    os << source_card("I", i.name, c.node_name(i.a), c.node_name(i.b),
                      i.wave)
       << "\n";
  }
  for (const auto& m : c.mosfets()) {
    const char* model = m.type == mos::MosType::kNmos ? "nmos1" : "pmos1";
    os << "M" << m.name << " " << c.node_name(m.d) << " " << c.node_name(m.g)
       << " " << c.node_name(m.s) << " " << c.node_name(m.b) << " " << model
       << " W=" << eng(m.geom.w) << " L=" << eng(m.geom.l);
    if (m.geom.m != 1) os << " M=" << m.geom.m;
    os << " AD=" << eng(t.diffusion_area(m.geom.w * m.geom.m))
       << " AS=" << eng(t.diffusion_area(m.geom.w * m.geom.m))
       << " PD=" << eng(t.diffusion_perimeter(m.geom.w * m.geom.m))
       << " PS=" << eng(t.diffusion_perimeter(m.geom.w * m.geom.m)) << "\n";
  }

  os << "\n" << spice_model_cards(t);
  if (opts.include_op_card) {
    os << "\n.OP\n.END\n";
  }
  return os.str();
}

}  // namespace oasys::ckt
