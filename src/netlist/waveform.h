// Source waveforms for independent voltage/current sources.
//
// A waveform carries a DC value (used by the operating-point and DC-sweep
// analyses), an AC phasor (used by the small-signal AC analysis), and an
// optional time shape (used by the transient analysis).
#pragma once

namespace oasys::ckt {

class Waveform {
 public:
  enum class Shape { kDc, kPulse, kSin };

  // Constant value for all analyses.
  static Waveform dc(double value);
  // DC bias plus an AC phasor (magnitude, phase in degrees).
  static Waveform ac(double dc_value, double ac_mag,
                     double ac_phase_deg = 0.0);
  // SPICE-style pulse: v1 -> v2 after `delay`, linear rise/fall.
  static Waveform pulse(double v1, double v2, double delay, double rise,
                        double fall, double width, double period);
  // Sinusoid: offset + ampl * sin(2*pi*freq*(t - delay)) for t >= delay.
  static Waveform sine(double offset, double ampl, double freq,
                       double delay = 0.0);

  double dc_value() const { return dc_; }
  double ac_mag() const { return ac_mag_; }
  double ac_phase_deg() const { return ac_phase_deg_; }
  Shape shape() const { return shape_; }

  // Instantaneous value at time t (transient analysis).
  double value(double t) const;

  // Returns a copy with the DC level replaced (used by DC sweeps).
  Waveform with_dc(double value) const;
  // Returns a copy with the AC phasor replaced.
  Waveform with_ac(double mag, double phase_deg = 0.0) const;

 private:
  Waveform() = default;

  Shape shape_ = Shape::kDc;
  double dc_ = 0.0;
  double ac_mag_ = 0.0;
  double ac_phase_deg_ = 0.0;
  // Pulse parameters.
  double v1_ = 0.0, v2_ = 0.0, delay_ = 0.0, rise_ = 0.0, fall_ = 0.0,
         width_ = 0.0, period_ = 0.0;
  // Sine parameters.
  double ampl_ = 0.0, freq_ = 0.0;
};

}  // namespace oasys::ckt
