#include "netlist/circuit.h"

#include <algorithm>
#include <cmath>

#include "util/text.h"

namespace oasys::ckt {

NodeId Circuit::node(std::string_view name) {
  const std::string lowered = util::to_lower(name);
  if (lowered == "0" || lowered == "gnd") return kGround;
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == lowered) return static_cast<NodeId>(i);
  }
  node_names_.push_back(lowered);
  return static_cast<NodeId>(node_names_.size() - 1);
}

std::optional<NodeId> Circuit::find_node(std::string_view name) const {
  const std::string lowered = util::to_lower(name);
  if (lowered == "0" || lowered == "gnd") return kGround;
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == lowered) return static_cast<NodeId>(i);
  }
  return std::nullopt;
}

const std::string& Circuit::node_name(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= node_names_.size()) {
    throw std::out_of_range("node_name: bad node id");
  }
  return node_names_[static_cast<std::size_t>(id)];
}

void Circuit::check_name(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument("element name must not be empty");
  }
  if (std::find(element_names_.begin(), element_names_.end(), name) !=
      element_names_.end()) {
    throw std::invalid_argument("duplicate element name: " + name);
  }
  element_names_.push_back(name);
}

void Circuit::check_node(NodeId n) const {
  if (n < 0 || static_cast<std::size_t>(n) >= node_names_.size()) {
    throw std::invalid_argument("element references unknown node id");
  }
}

void Circuit::add_resistor(std::string name, NodeId a, NodeId b,
                           double ohms) {
  if (!(ohms > 0.0) || !std::isfinite(ohms)) {
    throw std::invalid_argument("resistor value must be positive and finite");
  }
  check_node(a);
  check_node(b);
  check_name(name);
  resistors_.push_back({std::move(name), a, b, ohms});
}

void Circuit::add_capacitor(std::string name, NodeId a, NodeId b,
                            double farads) {
  if (!(farads > 0.0) || !std::isfinite(farads)) {
    throw std::invalid_argument(
        "capacitor value must be positive and finite");
  }
  check_node(a);
  check_node(b);
  check_name(name);
  capacitors_.push_back({std::move(name), a, b, farads});
}

void Circuit::add_vsource(std::string name, NodeId pos, NodeId neg,
                          Waveform w) {
  check_node(pos);
  check_node(neg);
  check_name(name);
  vsources_.push_back({std::move(name), pos, neg, w});
}

void Circuit::add_isource(std::string name, NodeId a, NodeId b, Waveform w) {
  check_node(a);
  check_node(b);
  check_name(name);
  isources_.push_back({std::move(name), a, b, w});
}

void Circuit::add_mosfet(std::string name, NodeId d, NodeId g, NodeId s,
                         NodeId b, mos::MosType type, double w, double l,
                         int m) {
  if (!(w > 0.0) || !(l > 0.0)) {
    throw std::invalid_argument("mosfet W and L must be positive");
  }
  if (m < 1) throw std::invalid_argument("mosfet multiplicity must be >= 1");
  check_node(d);
  check_node(g);
  check_node(s);
  check_node(b);
  check_name(name);
  mosfets_.push_back({std::move(name), d, g, s, b, type, {w, l, m}});
}

VSource& Circuit::vsource(std::size_t index) {
  if (index >= vsources_.size()) {
    throw std::out_of_range("vsource index out of range");
  }
  return vsources_[index];
}

ISource& Circuit::isource(std::size_t index) {
  if (index >= isources_.size()) {
    throw std::out_of_range("isource index out of range");
  }
  return isources_[index];
}

std::optional<std::size_t> Circuit::find_vsource(
    std::string_view name) const {
  for (std::size_t i = 0; i < vsources_.size(); ++i) {
    if (vsources_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> Circuit::find_isource(
    std::string_view name) const {
  for (std::size_t i = 0; i < isources_.size(); ++i) {
    if (isources_[i].name == name) return i;
  }
  return std::nullopt;
}

void Circuit::set_mosfet_dvt(std::string_view name, double dvt) {
  for (auto& m : mosfets_) {
    if (m.name == name) {
      m.dvt = dvt;
      return;
    }
  }
  throw std::invalid_argument("set_mosfet_dvt: no MOSFET named '" +
                              std::string(name) + "'");
}

std::size_t Circuit::num_elements() const {
  return resistors_.size() + capacitors_.size() + vsources_.size() +
         isources_.size() + mosfets_.size();
}

std::vector<std::string> Circuit::dangling_nodes() const {
  std::vector<int> touch_count(node_names_.size(), 0);
  auto touch = [&](NodeId n) { ++touch_count[static_cast<std::size_t>(n)]; };
  for (const auto& r : resistors_) {
    touch(r.a);
    touch(r.b);
  }
  for (const auto& c : capacitors_) {
    touch(c.a);
    touch(c.b);
  }
  for (const auto& v : vsources_) {
    touch(v.pos);
    touch(v.neg);
  }
  for (const auto& i : isources_) {
    touch(i.a);
    touch(i.b);
  }
  for (const auto& m : mosfets_) {
    touch(m.d);
    touch(m.g);
    touch(m.s);
    touch(m.b);
  }
  std::vector<std::string> out;
  for (std::size_t n = 1; n < node_names_.size(); ++n) {
    if (touch_count[n] < 2) out.push_back(node_names_[n]);
  }
  return out;
}

}  // namespace oasys::ckt
