#include "netlist/waveform.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace oasys::ckt {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.shape_ = Shape::kDc;
  w.dc_ = value;
  return w;
}

Waveform Waveform::ac(double dc_value, double ac_mag, double ac_phase_deg) {
  Waveform w = dc(dc_value);
  w.ac_mag_ = ac_mag;
  w.ac_phase_deg_ = ac_phase_deg;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise,
                         double fall, double width, double period) {
  if (rise < 0.0 || fall < 0.0 || width < 0.0) {
    throw std::invalid_argument("pulse: rise/fall/width must be >= 0");
  }
  Waveform w;
  w.shape_ = Shape::kPulse;
  w.dc_ = v1;  // DC analyses see the initial level
  w.v1_ = v1;
  w.v2_ = v2;
  w.delay_ = delay;
  w.rise_ = rise;
  w.fall_ = fall;
  w.width_ = width;
  w.period_ = period;
  return w;
}

Waveform Waveform::sine(double offset, double ampl, double freq,
                        double delay) {
  if (freq <= 0.0) throw std::invalid_argument("sine: freq must be > 0");
  Waveform w;
  w.shape_ = Shape::kSin;
  w.dc_ = offset;
  w.v1_ = offset;
  w.ampl_ = ampl;
  w.freq_ = freq;
  w.delay_ = delay;
  return w;
}

double Waveform::value(double t) const {
  switch (shape_) {
    case Shape::kDc:
      return dc_;
    case Shape::kSin: {
      if (t < delay_) return dc_;
      return dc_ + ampl_ * std::sin(util::kTwoPi * freq_ * (t - delay_));
    }
    case Shape::kPulse: {
      if (t < delay_) return v1_;
      double tl = t - delay_;
      if (period_ > 0.0) tl = std::fmod(tl, period_);
      if (tl < rise_) {
        return rise_ > 0.0 ? v1_ + (v2_ - v1_) * tl / rise_ : v2_;
      }
      tl -= rise_;
      if (tl < width_) return v2_;
      tl -= width_;
      if (tl < fall_) {
        return fall_ > 0.0 ? v2_ + (v1_ - v2_) * tl / fall_ : v1_;
      }
      return v1_;
    }
  }
  return dc_;
}

Waveform Waveform::with_dc(double value) const {
  Waveform w = *this;
  w.dc_ = value;
  if (w.shape_ == Shape::kPulse) w.v1_ = value;
  return w;
}

Waveform Waveform::with_ac(double mag, double phase_deg) const {
  Waveform w = *this;
  w.ac_mag_ = mag;
  w.ac_phase_deg_ = phase_deg;
  return w;
}

}  // namespace oasys::ckt
