// Flat transistor-level circuit netlist.
//
// OASYS builds these programmatically from synthesized designs; the
// simulator consumes them; the SPICE writer serializes them.  Node 0 is
// ground ("0"), matching SPICE convention.
//
// Element conventions:
//  * VSource: `pos`/`neg` terminals; the associated branch current flows
//    from pos through the source to neg (standard MNA convention), so a
//    battery sourcing current into the circuit has negative branch current.
//  * ISource: conventional current `wave.value()` flows from node `a`
//    through the source into node `b` (i.e. it is extracted from `a`).
//  * Mosfet: terminals drain, gate, source, bulk; geometry per mos::Geometry.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mos/level1.h"
#include "netlist/waveform.h"

namespace oasys::ckt {

using NodeId = int;
inline constexpr NodeId kGround = 0;

struct Resistor {
  std::string name;
  NodeId a = kGround, b = kGround;
  double resistance = 0.0;  // ohms, > 0
};

struct Capacitor {
  std::string name;
  NodeId a = kGround, b = kGround;
  double capacitance = 0.0;  // farads, > 0
};

struct VSource {
  std::string name;
  NodeId pos = kGround, neg = kGround;
  Waveform wave = Waveform::dc(0.0);
};

struct ISource {
  std::string name;
  NodeId a = kGround, b = kGround;  // current flows a -> b through the source
  Waveform wave = Waveform::dc(0.0);
};

struct Mosfet {
  std::string name;
  NodeId d = kGround, g = kGround, s = kGround, b = kGround;
  mos::MosType type = mos::MosType::kNmos;
  mos::Geometry geom;
  // Per-device threshold perturbation (magnitude shift) for mismatch
  // studies [V]; 0 for the nominal device.
  double dvt = 0.0;
};

class Circuit {
 public:
  // Returns the node id for `name`, creating it if needed.  Name "0" and
  // "gnd" map to ground.
  NodeId node(std::string_view name);
  // Lookup without creating.
  std::optional<NodeId> find_node(std::string_view name) const;
  const std::string& node_name(NodeId id) const;
  // Total node count including ground.
  std::size_t num_nodes() const { return node_names_.size(); }

  // Element constructors; all validate values and reject duplicate names.
  void add_resistor(std::string name, NodeId a, NodeId b, double ohms);
  void add_capacitor(std::string name, NodeId a, NodeId b, double farads);
  void add_vsource(std::string name, NodeId pos, NodeId neg, Waveform w);
  void add_isource(std::string name, NodeId a, NodeId b, Waveform w);
  void add_mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
                  mos::MosType type, double w, double l, int m = 1);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<ISource>& isources() const { return isources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }

  // Mutable access for analyses that modulate sources (DC sweep, testbench
  // reconfiguration).  Index by position in vsources()/isources().
  VSource& vsource(std::size_t index);
  ISource& isource(std::size_t index);
  // Locate a source by name; nullopt if absent.
  std::optional<std::size_t> find_vsource(std::string_view name) const;
  std::optional<std::size_t> find_isource(std::string_view name) const;

  // Sets a device's threshold perturbation (mismatch studies).  Throws
  // std::invalid_argument when no MOSFET has that name.
  void set_mosfet_dvt(std::string_view name, double dvt);

  std::size_t num_elements() const;

  // Every non-ground node should connect to at least two element terminals
  // and have a DC path to ground; returns names of suspicious nodes.
  std::vector<std::string> dangling_nodes() const;

 private:
  void check_name(const std::string& name);
  void check_node(NodeId n) const;

  std::vector<std::string> node_names_{"0"};
  std::vector<std::string> element_names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace oasys::ckt
