// Current-mirror designer (the paper's worked sub-block example, Sec. 4.2).
//
// Two styles: simple (2 devices) and cascode (4 devices, self-biased).
// Both are designed breadth-first; among the styles that meet the output
// resistance and compliance requirements, the smaller area wins ("selection
// is based primarily on area, as evaluated from circuit equations").  The
// cascode translation uses the paper's exact heuristic: "fix the length of
// two devices at their minimum size, and require the width of all four
// devices to be equal."
//
// Device roles: "<prefix>_in" (diode), "<prefix>_out", and for cascode
// additionally "<prefix>_inc", "<prefix>_outc" (stacked cascodes).
#pragma once

#include "blocks/block_common.h"
#include "core/plan.h"
#include "util/diagnostics.h"

namespace oasys::blocks {

enum class MirrorStyle { kSimple, kCascode };

const char* to_string(MirrorStyle s);

struct CurrentMirrorSpec {
  std::string role_prefix = "M";  // prefix for device role labels
  mos::MosType type = mos::MosType::kNmos;
  double iin = 0.0;        // input (reference branch) current [A]
  double iout = 0.0;       // output current [A]
  double rout_min = 0.0;   // required output resistance [ohm]; 0 = none
  // Maximum voltage from the mirror's rail the output may need to stay in
  // saturation (compliance budget) [V].
  double compliance_max = 0.0;
  // Nominal |Vds| at the output device, used to predict mirrored-current
  // systematic error (simple style only).
  double vds_out_nominal = 0.0;
};

struct CurrentMirrorDesign {
  bool feasible = false;
  MirrorStyle style = MirrorStyle::kSimple;
  std::vector<SizedDevice> devices;

  // Predicted performance (from the stored circuit equations):
  double rout = 0.0;        // [ohm]
  double compliance = 0.0;  // minimum |V| from rail at the output [V]
  double area = 0.0;        // [m^2]
  double vov = 0.0;         // mirror device overdrive [V]
  // Systematic output-current error fraction from Vds mismatch between the
  // diode and output devices (zero for cascode, which equalizes Vds).
  double current_error_frac = 0.0;

  util::DiagnosticLog log;
};

// Designs one specific style; feasibility reflects that style's limits.
CurrentMirrorDesign design_mirror_style(const tech::Technology& t,
                                        const CurrentMirrorSpec& spec,
                                        MirrorStyle style);

// Breadth-first over both styles, area-based selection (paper behaviour).
CurrentMirrorDesign design_current_mirror(const tech::Technology& t,
                                          const CurrentMirrorSpec& spec);

}  // namespace oasys::blocks
