#include "blocks/current_mirror.h"

#include <algorithm>
#include <cmath>

#include "mos/design_eqs.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::blocks {

const char* to_string(MirrorStyle s) {
  return s == MirrorStyle::kSimple ? "simple" : "cascode";
}

namespace {

using util::format;

// Context for the mirror's own (small) translation plan.
struct MirrorContext : core::DesignContext {
  MirrorContext(const tech::Technology& t, const CurrentMirrorSpec& s,
                MirrorStyle st)
      : core::DesignContext(t), spec(s), style(st) {}
  CurrentMirrorSpec spec;
  MirrorStyle style;
  CurrentMirrorDesign out;
};

const tech::MosParams& params_of(const tech::Technology& t,
                                 mos::MosType type) {
  return type == mos::MosType::kNmos ? t.nmos : t.pmos;
}

core::Plan<MirrorContext> build_mirror_plan() {
  core::Plan<MirrorContext> plan("current-mirror");

  plan.add_step("check-spec", [](MirrorContext& ctx) {
    const auto& s = ctx.spec;
    if (!(s.iin > 0.0) || !(s.iout > 0.0)) {
      return core::StepStatus::fail("mirror-bad-spec",
                                    "currents must be positive");
    }
    const double ratio = s.iout / s.iin;
    if (ratio < 0.05 || ratio > 20.0) {
      return core::StepStatus::fail(
          "mirror-bad-spec",
          format("mirror ratio %.3g outside matchable range", ratio));
    }
    return core::StepStatus::success();
  });

  plan.add_step("choose-overdrive", [](MirrorContext& ctx) {
    const auto& s = ctx.spec;
    // Spend the compliance budget: the simple mirror needs Vov of headroom
    // at the output; the cascode needs VT + 2*Vov.  A margin keeps devices
    // safely in saturation despite model error.
    const double kMargin = 0.9;
    double vov_budget;
    if (ctx.style == MirrorStyle::kSimple) {
      vov_budget = s.compliance_max * kMargin;
    } else {
      const double vt = params_of(ctx.technology(), s.type).vt0;
      vov_budget = (s.compliance_max * kMargin - vt) / 2.0;
    }
    if (s.compliance_max <= 0.0) vov_budget = 0.25;  // unconstrained default
    const double vov = std::clamp(vov_budget, 0.0, 0.4);
    if (vov < kMinOverdrive) {
      return core::StepStatus::fail(
          "mirror-compliance",
          format("%s style needs more than the %.2f V compliance budget",
                 to_string(ctx.style), s.compliance_max));
    }
    ctx.set("vov", vov);
    return core::StepStatus::success();
  });

  plan.add_step("choose-length", [](MirrorContext& ctx) {
    const auto& t = ctx.technology();
    const auto& p = params_of(t, ctx.spec.type);
    const double vov = ctx.get("vov");
    // Matching practice asks for >= 2x Lmin in the simple style; the
    // cascode gets its output resistance from stacking and equalizes the
    // mirror Vds, so it can stay at Lmin — which also keeps the mirror
    // pole (gm/Cgs) high, the reason the op-amp plans cascode for phase.
    double l = ctx.style == MirrorStyle::kSimple ? 2.0 * t.lmin : t.lmin;
    if (ctx.spec.rout_min > 0.0) {
      if (ctx.style == MirrorStyle::kSimple) {
        // rout = 1/(lambda * Iout), lambda = lambda_l / L.
        const double lambda_needed =
            1.0 / (ctx.spec.rout_min * ctx.spec.iout);
        l = std::max(l, p.lambda_l / lambda_needed);
      } else {
        // rout ~ gm_c * ro_c * ro_m; with the paper's heuristic the cascode
        // length is Lmin.  Solve for the mirror length L_m:
        // gm_c = 2 Iout / vov, ro = L/(lambda_l * Iout).
        const double gm_c = 2.0 * ctx.spec.iout / vov;
        const double ro_c = t.lmin / (p.lambda_l * ctx.spec.iout);
        const double ro_m_needed = ctx.spec.rout_min / (gm_c * ro_c);
        l = std::max(l, ro_m_needed * p.lambda_l * ctx.spec.iout);
      }
    }
    if (l > max_length(t)) {
      return core::StepStatus::fail(
          "mirror-rout",
          format("needs L = %.1f um > max %.1f um for rout %.3g ohm",
                 util::in_um(l), util::in_um(max_length(t)),
                 ctx.spec.rout_min));
    }
    ctx.set("l_mirror", l);
    return core::StepStatus::success();
  });

  plan.add_step("size-devices", [](MirrorContext& ctx) {
    const auto& t = ctx.technology();
    const auto& s = ctx.spec;
    const auto& p = params_of(t, s.type);
    const double vov = ctx.get("vov");
    const double l = ctx.get("l_mirror");

    bool clamped = false;
    const double w_in =
        mos::width_for_current(t, p, l, s.iin, vov, &clamped);
    const double w_out = w_in * (s.iout / s.iin);
    if (std::max(w_in, w_out) > max_width(t)) {
      return core::StepStatus::fail(
          "mirror-width",
          format("device width %.0f um exceeds limit",
                 util::in_um(std::max(w_in, w_out))));
    }
    if (clamped) {
      ctx.log().warning("mirror-minwidth",
                        "input device clamped to minimum width; the actual "
                        "overdrive will be smaller than targeted");
    }

    auto& d = ctx.out.devices;
    d.clear();
    const std::string& pre = s.role_prefix;
    d.push_back({pre + "_in", s.type, w_in, l, 1, s.iin, vov});
    d.push_back({pre + "_out", s.type, w_out, l, 1, s.iout, vov});
    if (ctx.style == MirrorStyle::kCascode) {
      // Paper heuristic: cascode devices at Lmin, all four widths equal
      // per-branch (the output branch scales with the ratio).
      d.push_back({pre + "_inc", s.type, w_in, t.lmin, 1, s.iin, vov});
      d.push_back({pre + "_outc", s.type, w_out, t.lmin, 1, s.iout, vov});
    }
    return core::StepStatus::success();
  });

  plan.add_step("predict-performance", [](MirrorContext& ctx) {
    const auto& t = ctx.technology();
    const auto& s = ctx.spec;
    const auto& p = params_of(t, s.type);
    const double vov = ctx.get("vov");
    const double l = ctx.get("l_mirror");
    auto& out = ctx.out;

    out.vov = vov;
    const double lambda_m = p.lambda_at(l);
    const double ro_m = mos::rout_sat(lambda_m, s.iout);
    if (ctx.style == MirrorStyle::kSimple) {
      out.rout = ro_m;
      out.compliance = vov;
      // Vds mismatch between diode (|Vds| = VT + Vov) and output device.
      const double vds_diode = p.vt0 + vov;
      const double vds_out =
          s.vds_out_nominal > 0.0 ? s.vds_out_nominal : vds_diode;
      out.current_error_frac = lambda_m * (vds_out - vds_diode);
    } else {
      const double gm_c = 2.0 * s.iout / vov;
      const double ro_c = mos::rout_sat(p.lambda_at(t.lmin), s.iout);
      out.rout = mos::rout_cascode(gm_c, ro_c, ro_m);
      out.compliance = p.vt0 + 2.0 * vov;
      out.current_error_frac = 0.0;  // cascode equalizes mirror Vds
    }
    out.area = devices_area(t, out.devices);

    // Tolerance: the length was solved from this bound, so equality minus
    // rounding must pass.
    if (s.rout_min > 0.0 && out.rout < s.rout_min * 0.999) {
      return core::StepStatus::fail(
          "mirror-rout",
          format("predicted rout %.3g below required %.3g", out.rout,
                 s.rout_min));
    }
    if (s.compliance_max > 0.0 && out.compliance > s.compliance_max) {
      return core::StepStatus::fail(
          "mirror-compliance",
          format("compliance %.2f V exceeds budget %.2f V", out.compliance,
                 s.compliance_max));
    }
    return core::StepStatus::success();
  });

  return plan;
}

}  // namespace

CurrentMirrorDesign design_mirror_style(const tech::Technology& t,
                                        const CurrentMirrorSpec& spec,
                                        MirrorStyle style) {
  MirrorContext ctx(t, spec, style);
  static const core::Plan<MirrorContext> plan = build_mirror_plan();
  const core::ExecutionTrace trace = core::execute_plan(plan, ctx);
  CurrentMirrorDesign design = std::move(ctx.out);
  design.style = style;
  design.feasible = trace.success;
  design.log.append(ctx.log());
  if (!trace.success) {
    design.log.error("mirror-infeasible", trace.abort_reason);
  }
  return design;
}

CurrentMirrorDesign design_current_mirror(const tech::Technology& t,
                                          const CurrentMirrorSpec& spec) {
  CurrentMirrorDesign simple =
      design_mirror_style(t, spec, MirrorStyle::kSimple);
  CurrentMirrorDesign cascode =
      design_mirror_style(t, spec, MirrorStyle::kCascode);

  if (simple.feasible && cascode.feasible) {
    // Area-based selection, per the paper.
    return simple.area <= cascode.area ? std::move(simple)
                                       : std::move(cascode);
  }
  if (simple.feasible) return simple;
  if (cascode.feasible) return cascode;
  // Neither style works; return the simple attempt with both logs merged
  // so the caller sees why.
  simple.log.append(cascode.log);
  return simple;
}

}  // namespace oasys::blocks
