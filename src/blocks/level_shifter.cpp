#include "blocks/level_shifter.h"

#include <algorithm>
#include <cmath>

#include "mos/design_eqs.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::blocks {

LevelShifterDesign design_level_shifter(const tech::Technology& t,
                                        const LevelShifterSpec& spec) {
  LevelShifterDesign d;
  const tech::MosParams& p =
      spec.type == mos::MosType::kNmos ? t.nmos : t.pmos;

  if (!(spec.shift > 0.0)) {
    d.log.error("ls-bad-spec", "shift must be positive");
    return d;
  }
  // A PMOS follower in its own well has no body effect; an NMOS follower's
  // threshold rises with the source-body bias.
  const double vt =
      spec.type == mos::MosType::kPmos
          ? p.vt0
          : mos::threshold(p, std::max(spec.vsb, 0.0));
  const double vov = spec.shift - vt;
  if (vov < kMinOverdrive) {
    d.log.error("ls-shift",
                util::format("shift %.2f V barely exceeds VT %.2f V; the "
                             "follower cannot realize it",
                             spec.shift, vt));
    return d;
  }
  if (vov > kMaxOverdrive) {
    d.log.error("ls-shift",
                util::format("shift %.2f V needs Vov %.2f V; too large for "
                             "one follower",
                             spec.shift, vov));
    return d;
  }

  // Bias current: enough that the follower pole clears pole_min.
  double ibias = util::ua(2.0);
  if (spec.pole_min > 0.0 && spec.cload > 0.0) {
    const double gm_needed = util::kTwoPi * spec.pole_min * spec.cload;
    ibias = std::max(ibias, mos::id_for_gm_vov(gm_needed, vov));
  }

  const double l = t.lmin;
  const double w =
      std::max(mos::width_for_current(t, p, l, ibias, vov), t.wmin);
  if (w > max_width(t)) {
    d.log.error("ls-width", "follower width exceeds limit");
    return d;
  }
  d.devices.push_back(
      {spec.role_prefix + "LS", spec.type, w, l, 1, ibias, vov});

  d.shift = vt + vov;
  d.ibias = ibias;
  d.vov = vov;
  d.gm = mos::gm_from_id_vov(ibias, vov);
  d.pole = spec.cload > 0.0 ? d.gm / (util::kTwoPi * spec.cload) : 0.0;
  d.area = devices_area(t, d.devices);
  d.feasible = true;
  return d;
}

}  // namespace oasys::blocks
