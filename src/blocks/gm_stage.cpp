#include "blocks/gm_stage.h"

#include <algorithm>
#include <cmath>

#include "mos/design_eqs.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::blocks {

const char* to_string(GmStageStyle s) {
  return s == GmStageStyle::kCommonSource ? "common-source" : "cascode";
}

GmStageDesign design_gm_stage(const tech::Technology& t,
                              const GmStageSpec& spec) {
  GmStageDesign d;
  d.style = spec.style;
  const tech::MosParams& p =
      spec.type == mos::MosType::kNmos ? t.nmos : t.pmos;

  if (!(spec.gm > 0.0) || !(spec.id > 0.0) || !(spec.l > 0.0)) {
    d.log.error("gmstage-bad-spec", "gm, id and l must be positive");
    return d;
  }
  const double vov = 2.0 * spec.id / spec.gm;
  if (vov < kMinOverdrive) {
    d.log.error("gmstage-gm",
                util::format("Vov = %.0f mV below square-law trust floor; "
                             "the gm target needs more current",
                             util::in_mv(vov)));
    return d;
  }
  if (spec.vov_max > 0.0 && vov > spec.vov_max) {
    d.log.error(
        "gmstage-swing",
        util::format("Vov %.2f V exceeds the %.2f V swing budget; raise gm "
                     "or lower the bias current",
                     vov, spec.vov_max));
    return d;
  }

  const double wl = mos::wl_for_gm(p.kp, spec.gm, spec.id);
  const double w = std::max(wl * spec.l, t.wmin);
  if (w > max_width(t)) {
    d.log.error("gmstage-width",
                util::format("gain device width %.0f um exceeds limit",
                             util::in_um(w)));
    return d;
  }

  const std::string& pre = spec.role_prefix;
  d.devices.push_back({pre + "6", spec.type, w, spec.l, 1, spec.id, vov});

  const double ro = mos::rout_sat(p.lambda_at(spec.l), spec.id);
  d.gm = spec.gm;
  d.vov = vov;
  d.vgs = mos::vgs_for(p, vov, 0.0);  // source at the rail
  d.rout = ro;
  d.swing_loss = vov;

  if (spec.style == GmStageStyle::kCascode) {
    const double lc = t.lmin;
    const double wc =
        std::max(mos::width_for_current(t, p, lc, spec.id, vov), t.wmin);
    d.devices.push_back({pre + "6C", spec.type, wc, lc, 1, spec.id, vov});
    const double gm_c = mos::gm_from_id_vov(spec.id, vov);
    const double ro_c = mos::rout_sat(p.lambda_at(lc), spec.id);
    d.rout = mos::rout_cascode(gm_c, ro_c, ro);
    d.swing_loss = 2.0 * vov;
  }

  d.cgs = mos::cgs_sat(t, p, {w, spec.l, 1});
  d.area = devices_area(t, d.devices);
  d.feasible = true;
  return d;
}

}  // namespace oasys::blocks
