// Differential-pair designer.
//
// Translates a transconductance target at a given tail current into sized
// input devices.  The cascode style stacks common-gate devices over the
// pair (the input half of a telescopic branch), multiplying the resistance
// seen looking into the pair's output drain — the lever the op-amp plans
// pull when a stage's gain target is unreachable with channel length alone.
//
// Device roles: "<prefix>1"/"<prefix>2" and, for cascode,
// "<prefix>1C"/"<prefix>2C".
#pragma once

#include "blocks/block_common.h"
#include "util/diagnostics.h"

namespace oasys::blocks {

enum class DiffPairStyle { kSimple, kCascode };

const char* to_string(DiffPairStyle s);

struct DiffPairSpec {
  std::string role_prefix = "M";
  mos::MosType type = mos::MosType::kNmos;
  double gm = 0.0;     // per-side transconductance target [S]
  double itail = 0.0;  // tail current (each side carries itail/2) [A]
  double l = 0.0;      // channel length for the pair [m]
  DiffPairStyle style = DiffPairStyle::kSimple;
  // Estimated reverse bias of the pair's source-body junction, for the
  // threshold/body-effect prediction [V].
  double vsb = 0.0;
};

struct DiffPairDesign {
  bool feasible = false;
  DiffPairStyle style = DiffPairStyle::kSimple;
  std::vector<SizedDevice> devices;

  double gm = 0.0;       // predicted per-side gm [S]
  double vov = 0.0;      // pair overdrive [V]
  double vgs = 0.0;      // |VGS| including body effect [V]
  double rout_drain = 0.0;  // resistance looking into one output drain [ohm]
  double cgs = 0.0;      // per-side gate-source capacitance [F]
  double area = 0.0;
  // Voltage headroom the input branch consumes above the tail node:
  // Vdsat for simple, Vdsat + (VT + Vov) of the cascode for cascode style.
  double branch_headroom = 0.0;

  util::DiagnosticLog log;
};

DiffPairDesign design_diff_pair(const tech::Technology& t,
                                const DiffPairSpec& spec);

}  // namespace oasys::blocks
